// Ablation: cold-start priming (Section 4.4.6). At the beginning of a
// workload the meta-strategy has no history to differentiate experts, so
// the first minutes can cost more than optimal. The paper suggests priming
// the history with an expected workload. This ablation runs the engine cold
// and primed (with the previous day's demand curve for the same workload
// shape) and compares early-window and total costs.

#include "bench/bench_common.h"
#include "engine/engine.h"

int main() {
  using namespace cackle;
  using namespace cackle::bench;
  PrintHeader("Ablation: cold-start priming of the meta-strategy",
              "Engine runs cold vs primed with the expected demand curve.");

  WorkloadOptions opts = DefaultWorkload();
  opts.num_queries = FastMode() ? 300 : 1000;
  opts.duration_ms = kMillisPerHour;
  opts.arrival_period_ms = 20 * kMillisPerMinute;
  WorkloadGenerator gen(&Library());
  const auto arrivals = gen.Generate(opts);

  // The "expected workload": the same generator with a different seed —
  // yesterday's traffic, shape-identical but not the actual arrivals.
  WorkloadOptions yesterday = opts;
  yesterday.seed = opts.seed + 1;
  const DemandCurve expected =
      DemandCurve::FromWorkload(gen.Generate(yesterday), Library());

  CostModel cost;
  TablePrinter table({"configuration", "compute_$", "vm_$", "elastic_$",
                      "p90_latency_s"});
  for (const bool primed : {false, true}) {
    EngineOptions engine_opts;
    engine_opts.dynamic = DefaultDynamicOptions();
    if (primed) engine_opts.primed_history = expected.tasks_per_second();
    CackleEngine engine(&cost, engine_opts);
    const EngineResult r = engine.Run(arrivals, Library());
    table.BeginRow();
    table.AddCell(primed ? "primed_with_expected_demand" : "cold_start");
    table.AddCell(r.compute_cost(), 2);
    table.AddCell(r.billing.CategoryDollars(CostCategory::kVm), 2);
    table.AddCell(r.billing.CategoryDollars(CostCategory::kElasticPool), 2);
    table.AddCell(r.latencies_s.Percentile(90), 2);
  }
  table.PrintText(std::cout);
  std::cout << "\n(latency is unaffected either way — cold starts only cost "
               "money, not time, because overflow runs on the elastic "
               "pool)\n";
  return 0;
}
