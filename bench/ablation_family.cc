// Ablation: how much does the breadth of the strategy family (Section
// 4.4.5) matter? Compares the dynamic meta-strategy with (a) the full
// family, (b) no boosted multipliers (>1x), and (c) a single lookback —
// on a steady sinusoidal workload and on a linearly increasing workload.
// The paper argues the family must include strategies that target above
// anything in the history to handle increasing workloads; this ablation
// quantifies that.

#include <cmath>

#include "bench/bench_common.h"

namespace {

using namespace cackle;
using namespace cackle::bench;

double RunDynamic(const DemandCurve& demand, const CostModel& cost,
                  const FamilyOptions& family) {
  DynamicStrategyOptions opts = DefaultDynamicOptions();
  opts.family = family;
  DynamicStrategy dynamic(&cost, opts);
  return EvaluateStrategy(&dynamic, demand.tasks_per_second(), cost).total();
}

DemandCurve IncreasingWorkload() {
  // Demand ramps steeply: 0 to ~3000 tasks over 90 minutes. Strategies
  // whose target never exceeds the observed history run the whole growth
  // edge on the elastic pool (the VM startup delay keeps them permanently
  // behind); the boosted multipliers provision ahead of the ramp.
  std::vector<int64_t> demand(90 * 60);
  for (size_t s = 0; s < demand.size(); ++s) {
    demand[s] = static_cast<int64_t>(3000.0 * static_cast<double>(s) /
                                     static_cast<double>(demand.size()));
  }
  return DemandCurve::FromSeries(std::move(demand));
}

}  // namespace

int main() {
  PrintHeader("Ablation: strategy family breadth",
              "dynamic with full family vs no >1x multipliers vs single "
              "lookback; lower is better.");

  WorkloadOptions opts = DefaultWorkload();
  opts.num_queries /= 4;
  const DemandCurve steady = BuildDemand(opts);
  const DemandCurve increasing = IncreasingWorkload();
  CostModel cost;

  FamilyOptions full;
  FamilyOptions no_boost;
  no_boost.boost_multipliers.clear();
  FamilyOptions single_lookback;
  single_lookback.lookbacks_s = {300};

  TablePrinter table({"workload", "full_family", "no_boost_multipliers",
                      "single_lookback", "oracle"});
  for (const auto& [name, demand] :
       std::initializer_list<std::pair<const char*, const DemandCurve*>>{
           {"sinusoidal", &steady}, {"linearly_increasing", &increasing}}) {
    table.BeginRow();
    table.AddCell(name);
    table.AddCell(RunDynamic(*demand, cost, full), 2);
    table.AddCell(RunDynamic(*demand, cost, no_boost), 2);
    table.AddCell(RunDynamic(*demand, cost, single_lookback), 2);
    table.AddCell(ComputeOracleCost(demand->tasks_per_second(), cost).total(),
                  2);
  }
  table.PrintText(std::cout);
  return 0;
}
