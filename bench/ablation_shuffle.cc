// Ablation: the shuffling-layer design of Section 5.6. Compares, per
// workload size: (a) the paper's policy (trailing-20-minute max of resident
// intermediate state, 16 GB floor), (b) pure cloud-storage shuffling
// (Starling/Lambada: every request billed), and (c) a heavily
// over-provisioned shuffle fleet. The paper's claim: per-request pricing is
// so expensive that over-provisioning nodes is almost always cheaper, which
// is why the shuffle layer does not use the cost-based dynamic strategy.

#include "bench/bench_common.h"

namespace {

using namespace cackle;
using namespace cackle::bench;

struct ShuffleCosts {
  double node_cost = 0;
  double store_cost = 0;
  double total() const { return node_cost + store_cost; }
};

ShuffleCosts PureS3(const std::vector<QueryArrival>& arrivals) {
  CostModel cost;
  ShuffleCosts out;
  for (const QueryArrival& qa : arrivals) {
    const QueryProfile& p = Library().at(qa.profile_index);
    out.store_cost += static_cast<double>(p.TotalObjectStorePuts()) *
                          cost.object_store_put_cost +
                      static_cast<double>(p.TotalObjectStoreGets()) *
                          cost.object_store_get_cost;
  }
  return out;
}

ShuffleCosts WithPolicy(const DemandCurve& demand, int64_t floor_bytes) {
  CostModel cost;
  AnalyticalModel model(&cost);
  // Temporarily emulate different floors by scaling: the analytical model's
  // shuffle policy uses the CostModel + ShuffleProvisioner defaults, so for
  // the over-provisioned variant we inflate the resident series instead.
  FixedStrategy fixed0(0);
  ModelOptions opts;
  opts.include_shuffle = true;
  if (floor_bytes <= 0) {
    const ModelResult r = model.Run(&fixed0, demand, opts);
    return {r.shuffle_node_cost, r.object_store_cost};
  }
  // Over-provisioned: pad the resident bytes so the provisioner holds
  // `floor_bytes` extra at all times.
  DemandCurve padded = demand;
  const ModelResult r = model.Run(&fixed0, padded, opts);
  const double extra_nodes = static_cast<double>(floor_bytes) /
                             static_cast<double>(cost.shuffle_node_memory_bytes);
  const double hours =
      static_cast<double>(demand.duration_seconds()) / 3600.0;
  return {r.shuffle_node_cost +
              extra_nodes * cost.shuffle_node_cost_per_hour * hours,
          0.0};
}

}  // namespace

int main() {
  PrintHeader("Ablation: shuffle layer provisioning",
              "paper policy vs pure cloud-storage shuffle vs "
              "over-provisioned fleet (shuffle costs only).");

  std::vector<int64_t> sweep = {512, 2048, 8192, 16384};
  if (FastMode()) sweep = {512, 4096};

  TablePrinter table({"queries", "policy_nodes", "policy_store",
                      "policy_total", "pure_s3_total",
                      "overprovisioned_total"});
  for (int64_t n : sweep) {
    WorkloadOptions opts = DefaultWorkload();
    opts.num_queries = FastMode() ? n / 4 : n;
    WorkloadGenerator gen(&Library());
    const auto arrivals = gen.Generate(opts);
    const DemandCurve demand = DemandCurve::FromWorkload(arrivals, Library());

    const ShuffleCosts policy = WithPolicy(demand, 0);
    const ShuffleCosts s3 = PureS3(arrivals);
    // Over-provision: an extra 512 GB of shuffle memory all the time.
    const ShuffleCosts over = WithPolicy(demand, 512LL << 30);

    table.BeginRow();
    table.AddCell(n);
    table.AddCell(policy.node_cost, 2);
    table.AddCell(policy.store_cost, 2);
    table.AddCell(policy.total(), 2);
    table.AddCell(s3.total(), 2);
    table.AddCell(over.total(), 2);
  }
  table.PrintText(std::cout);
  return 0;
}
