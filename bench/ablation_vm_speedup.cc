// Ablation: the equal-performance assumption (Sections 4.1 / 7.1.2). The
// algorithm assumes a task runs equally fast on a VM and on the elastic
// pool, but the paper measures spot VMs ~25% faster in practice. This
// ablation runs the engine with the assumption intact (1.0x) and violated
// (1.25x faster VMs) and shows the approach still achieves comparable cost
// and latency — the paper's claim that the divergence does not break the
// technique.

#include "bench/bench_common.h"
#include "engine/engine.h"

int main() {
  using namespace cackle;
  using namespace cackle::bench;
  PrintHeader("Ablation: VM vs elastic task-speed parity assumption",
              "vm_speedup 1.0 = the model's assumption; 1.25 = the paper's "
              "measured reality.");

  WorkloadOptions opts = DefaultWorkload();
  opts.num_queries = FastMode() ? 300 : 1000;
  opts.duration_ms = kMillisPerHour;
  opts.arrival_period_ms = 20 * kMillisPerMinute;
  WorkloadGenerator gen(&Library());
  const auto arrivals = gen.Generate(opts);
  CostModel cost;

  TablePrinter table({"vm_speedup", "compute_$", "vm_$", "elastic_$",
                      "p50_s", "p90_s"});
  for (double speedup : {1.0, 1.15, 1.25, 1.5}) {
    EngineOptions engine_opts;
    engine_opts.enable_shuffle = false;
    engine_opts.dynamic = DefaultDynamicOptions();
    engine_opts.vm_speedup = speedup;
    CackleEngine engine(&cost, engine_opts);
    const EngineResult r = engine.Run(arrivals, Library());
    table.BeginRow();
    table.AddCell(speedup, 2);
    table.AddCell(r.compute_cost(), 2);
    table.AddCell(r.billing.CategoryDollars(CostCategory::kVm), 2);
    table.AddCell(r.billing.CategoryDollars(CostCategory::kElasticPool), 2);
    table.AddCell(r.latencies_s.Percentile(50), 2);
    table.AddCell(r.latencies_s.Percentile(90), 2);
  }
  table.PrintText(std::cout);
  std::cout << "\n(faster VMs shorten VM-side busy time: cost falls "
               "slightly and latency improves; nothing breaks when the "
               "parity assumption is violated)\n";
  return 0;
}
