#ifndef CACKLE_BENCH_BENCH_COMMON_H_
#define CACKLE_BENCH_BENCH_COMMON_H_

// Shared helpers for the figure/table regeneration benches. Each bench
// binary prints the rows/series of one table or figure of the paper
// (EXPERIMENTS.md maps ids to binaries). Absolute dollar values depend on
// the simulated substrate; the comparisons and crossovers are the result.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cloud/cost_model.h"
#include "common/observability.h"
#include "common/table_printer.h"
#include "model/analytical_model.h"
#include "strategy/cost_calculator.h"
#include "strategy/dynamic_strategy.h"
#include "strategy/oracle.h"
#include "strategy/strategy.h"
#include "workload/demand.h"
#include "workload/profile_library.h"
#include "workload/workload_generator.h"

namespace cackle::bench {

/// Set CACKLE_FAST_BENCH=1 to shrink workloads (shorter durations, smaller
/// expert family) for quick iteration; default runs paper-scale parameters.
inline bool FastMode() {
  const char* env = std::getenv("CACKLE_FAST_BENCH");
  return env != nullptr && env[0] == '1';
}

/// Worker-thread count for SweepRunner-parallelized benches, from
/// CACKLE_SWEEP_THREADS (default 1). Output is byte-identical at any value
/// (that is the SweepRunner contract); the knob only trades wall-clock
/// time for cores.
inline int SweepThreads() {
  const char* env = std::getenv("CACKLE_SWEEP_THREADS");
  if (env == nullptr || env[0] == '\0') return 1;
  const int n = std::atoi(env);
  return n > 0 ? n : 1;
}

/// The paper's default workload (Table 1), scaled down in fast mode.
inline WorkloadOptions DefaultWorkload() {
  WorkloadOptions opts;
  opts.num_queries = 16384;
  opts.duration_ms = 12 * kMillisPerHour;
  opts.baseline_load = 0.30;
  opts.arrival_period_ms = 3 * kMillisPerHour;
  opts.seed = 42;
  if (FastMode()) {
    opts.num_queries /= 8;
    opts.duration_ms /= 4;
    opts.arrival_period_ms /= 4;
  }
  return opts;
}

inline DynamicStrategyOptions DefaultDynamicOptions() {
  DynamicStrategyOptions opts;
  if (FastMode()) opts.family.percentile_step = 5;
  return opts;
}

inline const ProfileLibrary& Library() {
  static const ProfileLibrary* lib =
      new ProfileLibrary(ProfileLibrary::BuiltinTpch());
  return *lib;
}

inline DemandCurve BuildDemand(const WorkloadOptions& opts) {
  WorkloadGenerator gen(&Library());
  return DemandCurve::FromWorkload(gen.Generate(opts), Library());
}

/// The strategy line-up of Section 5.1's figures. Fresh instances per call:
/// strategies are stateful across a run.
struct StrategySet {
  std::vector<std::unique_ptr<ProvisioningStrategy>> strategies;

  static StrategySet Paper(const CostModel* cost, bool include_mean_1 = false) {
    StrategySet s;
    s.strategies.push_back(std::make_unique<FixedStrategy>(0));
    s.strategies.push_back(std::make_unique<FixedStrategy>(500));
    if (include_mean_1) {
      s.strategies.push_back(std::make_unique<MeanStrategy>(1.0));
    }
    s.strategies.push_back(std::make_unique<MeanStrategy>(2.0));
    s.strategies.push_back(
        std::make_unique<PredictiveStrategy>(cost->vm_startup_ms));
    s.strategies.push_back(std::make_unique<DynamicStrategy>(
        cost, DefaultDynamicOptions()));
    return s;
  }
};

/// Evaluates the strategy set + oracle on a demand curve, returning
/// (name, cost) pairs with "oracle" appended.
inline std::vector<std::pair<std::string, double>> CostAllStrategies(
    const DemandCurve& demand, const CostModel& cost,
    bool include_mean_1 = false) {
  std::vector<std::pair<std::string, double>> out;
  StrategySet set = StrategySet::Paper(&cost, include_mean_1);
  for (auto& s : set.strategies) {
    const auto eval = EvaluateStrategy(s.get(), demand.tasks_per_second(),
                                       cost);
    out.emplace_back(s->name(), eval.total());
  }
  out.emplace_back(
      "oracle", ComputeOracleCost(demand.tasks_per_second(), cost).total());
  return out;
}

inline void PrintHeader(const std::string& title, const std::string& note) {
  std::cout << "=== " << title << " ===\n";
  if (!note.empty()) std::cout << note << "\n";
  std::cout << "\n";
}

/// Writes the machine-readable artifact `BENCH_<name>.json` (metrics
/// including per-query latency percentiles, the per-query cost-attribution
/// table, and a capped span sample) into the working directory, or into
/// $CACKLE_BENCH_OUT_DIR when set. EXPERIMENTS.md documents the schema.
/// Returns the path written.
inline std::string WriteBenchArtifact(const Observability& obs,
                                      const std::string& name,
                                      size_t max_spans = 2000) {
  std::string path = "BENCH_" + name + ".json";
  if (const char* dir = std::getenv("CACKLE_BENCH_OUT_DIR");
      dir != nullptr && dir[0] != '\0') {
    path = std::string(dir) + "/" + path;
  }
  std::ofstream out(path);
  WriteSnapshotJson(obs, name, out, max_spans);
  out << "\n";
  std::cout << "artifact: " << path << "\n";
  return path;
}

}  // namespace cackle::bench

#endif  // CACKLE_BENCH_BENCH_COMMON_H_
