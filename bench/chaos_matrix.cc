// Chaos matrix: fault level x provisioning strategy, plus the named chaos
// scenario suite. The paper's stability claim (latency independent of
// provisioning) is evaluated on a well-behaved substrate; this bench
// stresses it two ways:
//
//  1. The matrix sweeps memoryless fault profiles (elastic failures +
//     stragglers, a Lambda-style concurrency cap, object store transient
//     errors, VM launch failures, shuffle-node crashes) across the strategy
//     line-up. The invariant in every cell: all queries complete.
//  2. The scenario suite loads the named, seeded scenarios from
//     bench/scenarios/ — correlated temporal fault processes (outage
//     windows, reclamation storms, store brownouts, price shocks) against
//     the engine's graceful-degradation machinery (admission control, retry
//     budgets, circuit breaker, hedged reads). Each scenario runs against
//     its matched fault-free baseline; the emitted BENCH_chaos.json records
//     survived/shed counts, p99 degradation and cost overhead. The
//     invariant in every scenario: completed + shed == arrivals — queries
//     may finish late or be shed explicitly, never lost silently.
//
// Usage: chaos_matrix [--scenario=<name>]. With --scenario, only that one
// scenario (plus its baseline) runs and no artifact is written — the CI
// chaos-smoke mode.

#include <cstring>

#include "bench/bench_common.h"
#include "common/json_writer.h"
#include "engine/engine.h"
#include "engine/scenario.h"
#include "sim/sweep_runner.h"

namespace {

using namespace cackle;
using namespace cackle::bench;

const char* const kScenarioNames[] = {
    "diurnal_flash_crowd", "reclamation_storm", "store_brownout",
    "price_shock", "full_chaos"};

struct ScenarioOutcome {
  ChaosScenario scenario;
  int64_t arrivals = 0;
  EngineResult chaos;
  EngineResult fault_free;
  bool accounted = false;  // completed + shed == arrivals
};

ScenarioOutcome RunScenario(const ChaosScenario& scenario,
                            const CostModel& cost) {
  ScenarioOutcome outcome;
  outcome.scenario = scenario;
  WorkloadGenerator gen(&Library());
  const auto arrivals = gen.Generate(scenario.workload);
  outcome.arrivals = static_cast<int64_t>(arrivals.size());

  EngineOptions base_opts = scenario.ToFaultFreeEngineOptions();
  base_opts.dynamic = DefaultDynamicOptions();
  CackleEngine baseline(&cost, base_opts);
  outcome.fault_free = baseline.Run(arrivals, Library());

  EngineOptions chaos_opts = scenario.ToEngineOptions();
  chaos_opts.dynamic = DefaultDynamicOptions();
  CackleEngine engine(&cost, chaos_opts);
  outcome.chaos = engine.Run(arrivals, Library());

  outcome.accounted =
      outcome.chaos.queries_completed + outcome.chaos.queries_shed ==
          outcome.arrivals &&
      outcome.fault_free.queries_completed == outcome.arrivals;
  return outcome;
}

double Ratio(double value, double base) {
  return base > 0.0 ? value / base : 0.0;
}

void WriteChaosArtifact(const std::vector<ScenarioOutcome>& outcomes) {
  std::string path = "BENCH_chaos.json";
  if (const char* dir = std::getenv("CACKLE_BENCH_OUT_DIR");
      dir != nullptr && dir[0] != '\0') {
    path = std::string(dir) + "/" + path;
  }
  std::ofstream out(path);
  JsonWriter w(out);
  w.BeginObject();
  w.Field("schema_version", static_cast<int64_t>(1));
  w.Field("bench", "chaos");
  w.Field("fast_mode", FastMode());
  w.Key("scenarios");
  w.BeginArray();
  for (const ScenarioOutcome& o : outcomes) {
    const double p99 = o.chaos.latencies_s.Percentile(99);
    const double p99_base = o.fault_free.latencies_s.Percentile(99);
    w.BeginObject();
    w.Field("name", o.scenario.name);
    w.Field("description", o.scenario.description);
    w.Key("seed").Uint(o.scenario.seed);
    w.Field("arrivals", o.arrivals);
    w.Field("survived", o.chaos.queries_completed);
    w.Field("shed", o.chaos.queries_shed);
    w.Field("deferred", o.chaos.queries_deferred);
    w.Field("accounted", o.accounted);
    w.Field("p99_s", p99);
    w.Field("p99_fault_free_s", p99_base);
    w.Field("p99_degradation", Ratio(p99, p99_base));
    w.Field("total_cost", o.chaos.total_cost());
    w.Field("fault_free_cost", o.fault_free.total_cost());
    w.Field("cost_overhead",
            Ratio(o.chaos.total_cost(), o.fault_free.total_cost()));
    w.Key("counters");
    w.BeginObject();
    w.Field("elastic_throttled", o.chaos.elastic_throttled);
    w.Field("elastic_failures", o.chaos.elastic_failures);
    w.Field("store_retries", o.chaos.store_retries);
    w.Field("vm_launch_failures", o.chaos.vm_launch_failures);
    w.Field("vms_interrupted", o.chaos.vms_interrupted);
    w.Field("storm_reclaims", o.chaos.storm_reclaims);
    w.Field("tasks_retried", o.chaos.tasks_retried);
    w.Field("retry_budget_exhausted", o.chaos.retry_budget_exhausted);
    w.Field("admission_queue_peak", o.chaos.admission_queue_peak);
    w.Field("hedged_reads", o.chaos.hedged_reads);
    w.Field("hedged_wins", o.chaos.hedged_wins);
    w.Field("store_circuit_trips", o.chaos.store_circuit_trips);
    w.Field("store_circuit_rejections", o.chaos.store_circuit_rejections);
    w.Field("shuffle_nodes_crashed", o.chaos.shuffle_nodes_crashed);
    w.Field("stages_reexecuted", o.chaos.stages_reexecuted);
    w.Field("shuffle_written_bytes", o.chaos.shuffle_written_bytes);
    w.Field("shuffle_fallback_bytes", o.chaos.shuffle_fallback_bytes);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  out << "\n";
  std::cout << "artifact: " << path << "\n";
}

int RunMatrix() {
  WorkloadOptions opts = DefaultWorkload();
  opts.num_queries = FastMode() ? 200 : 600;
  opts.duration_ms = kMillisPerHour;
  opts.arrival_period_ms = 20 * kMillisPerMinute;
  WorkloadGenerator gen(&Library());
  const auto arrivals = gen.Generate(opts);
  CostModel cost;

  struct Level {
    const char* label;
    FaultProfile profile;
  };
  std::vector<Level> levels = {{"none", FaultProfile::None()},
                               {"light", FaultProfile::Light()},
                               {"moderate", FaultProfile::Moderate()},
                               {"heavy", FaultProfile::Heavy()}};
  // The presets leave the concurrency cap unbounded (it is workload
  // relative); bind it to a value below this workload's elastic peak so
  // throttling actually engages at nonzero levels.
  levels[1].profile.elastic_concurrency_limit = 400;
  levels[2].profile.elastic_concurrency_limit = 250;
  levels[3].profile.elastic_concurrency_limit = 150;

  struct Strat {
    const char* label;
    bool use_dynamic;
    int64_t fixed_target;
  };
  const std::vector<Strat> strategies = {{"fixed_0", false, 0},
                                         {"fixed_300", false, 300},
                                         {"dynamic", true, 0}};

  TablePrinter table({"faults", "strategy", "completed", "throttled",
                      "elastic_fail", "store_retry", "crashes", "stages_rex",
                      "speculated", "p90_s", "p99_s", "total_$"});
  // Per-strategy fault-free baselines for the degradation summary.
  std::vector<double> base_p99(strategies.size(), 0.0);
  std::vector<double> base_cost(strategies.size(), 0.0);

  // Every (level, strategy) cell is an independent simulation; fan them out
  // on the sweep pool and merge in cell-index order so the printed table is
  // byte-identical at any CACKLE_SWEEP_THREADS.
  SweepRunner runner(SweepThreads());
  const int num_cells =
      static_cast<int>(levels.size() * strategies.size());
  const std::vector<EngineResult> cells =
      runner.Map<EngineResult>(num_cells, [&](int cell) {
        const Level& level = levels[static_cast<size_t>(cell) /
                                    strategies.size()];
        const Strat& strat = strategies[static_cast<size_t>(cell) %
                                        strategies.size()];
        EngineOptions engine_opts;
        engine_opts.use_dynamic = strat.use_dynamic;
        engine_opts.fixed_target = strat.fixed_target;
        engine_opts.dynamic = DefaultDynamicOptions();
        engine_opts.faults = level.profile;
        CackleEngine engine(&cost, engine_opts);
        return engine.Run(arrivals, Library());
      });

  bool all_complete = true;
  for (size_t l = 0; l < levels.size(); ++l) {
    const Level& level = levels[l];
    for (size_t s = 0; s < strategies.size(); ++s) {
      const EngineResult& r = cells[l * strategies.size() + s];
      all_complete &=
          r.queries_completed == static_cast<int64_t>(arrivals.size());
      if (level.profile.any() == false) {
        base_p99[s] = r.latencies_s.Percentile(99);
        base_cost[s] = r.total_cost();
      }
      table.BeginRow();
      table.AddCell(level.label);
      table.AddCell(strategies[s].label);
      table.AddCell(r.queries_completed);
      table.AddCell(r.elastic_throttled);
      table.AddCell(r.elastic_failures);
      table.AddCell(r.store_retries);
      table.AddCell(r.shuffle_nodes_crashed);
      table.AddCell(r.stages_reexecuted);
      table.AddCell(r.tasks_speculated);
      table.AddCell(r.latencies_s.Percentile(90), 2);
      table.AddCell(r.latencies_s.Percentile(99), 2);
      table.AddCell(r.total_cost(), 2);

      if (level.profile.any()) {
        std::cout << "degradation[" << level.label << "/"
                  << strategies[s].label << "]: p99 "
                  << FormatDouble(base_p99[s] > 0.0
                                      ? r.latencies_s.Percentile(99) /
                                            base_p99[s]
                                      : 0.0,
                                  2)
                  << "x, cost "
                  << FormatDouble(
                         base_cost[s] > 0.0 ? r.total_cost() / base_cost[s]
                                            : 0.0,
                         2)
                  << "x\n";
      }
    }
  }
  std::cout << "\n";
  table.PrintText(std::cout);
  std::cout << "\nall queries completed under every fault profile: "
            << (all_complete ? "yes" : "NO — WORK WAS LOST") << "\n";
  return all_complete ? 0 : 1;
}

int RunScenarioSuite(const char* only_scenario) {
  CostModel cost;
  TablePrinter table({"scenario", "arrivals", "survived", "shed", "deferred",
                      "reclaims", "hedged", "trips", "p99_s", "p99_base_s",
                      "p99_x", "cost_x"});
  std::vector<ChaosScenario> scenarios;
  for (const char* name : kScenarioNames) {
    if (only_scenario != nullptr && std::strcmp(name, only_scenario) != 0) {
      continue;
    }
    auto loaded = LoadNamedScenario(name);
    if (!loaded.ok()) {
      std::cout << "FAILED to load scenario '" << name
                << "': " << loaded.status().ToString() << "\n";
      return 1;
    }
    scenarios.push_back(std::move(*loaded));
  }

  // Each scenario (chaos run + its fault-free baseline) is one sweep cell.
  SweepRunner runner(SweepThreads());
  const std::vector<ScenarioOutcome> outcomes = runner.Map<ScenarioOutcome>(
      static_cast<int>(scenarios.size()),
      [&](int cell) { return RunScenario(scenarios[cell], cost); });

  bool all_accounted = true;
  for (const ScenarioOutcome& o : outcomes) {
    all_accounted &= o.accounted;
    const double p99 = o.chaos.latencies_s.Percentile(99);
    const double p99_base = o.fault_free.latencies_s.Percentile(99);
    table.BeginRow();
    table.AddCell(o.scenario.name);
    table.AddCell(o.arrivals);
    table.AddCell(o.chaos.queries_completed);
    table.AddCell(o.chaos.queries_shed);
    table.AddCell(o.chaos.queries_deferred);
    table.AddCell(o.chaos.storm_reclaims);
    table.AddCell(o.chaos.hedged_reads);
    table.AddCell(o.chaos.store_circuit_trips);
    table.AddCell(p99, 2);
    table.AddCell(p99_base, 2);
    table.AddCell(Ratio(p99, p99_base), 2);
    table.AddCell(Ratio(o.chaos.total_cost(), o.fault_free.total_cost()), 2);
  }
  if (outcomes.empty()) {
    std::cout << "no scenario matched '"
              << (only_scenario != nullptr ? only_scenario : "") << "'\n";
    return 1;
  }
  table.PrintText(std::cout);
  std::cout << "\nevery arrival accounted for (completed + shed): "
            << (all_accounted ? "yes" : "NO — WORK WAS LOST SILENTLY")
            << "\n";
  if (only_scenario == nullptr) WriteChaosArtifact(outcomes);
  return all_accounted ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const char* only_scenario = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scenario=", 11) == 0) {
      only_scenario = argv[i] + 11;
    } else {
      std::cout << "usage: chaos_matrix [--scenario=<name>]\n";
      return 2;
    }
  }

  PrintHeader("Chaos matrix: fault level x provisioning strategy",
              "Escalating fault injection across provisioning strategies "
              "plus the named temporal chaos scenarios; every arrival must "
              "be completed or explicitly shed in every cell.");

  int matrix_rc = 0;
  if (only_scenario == nullptr) {
    matrix_rc = RunMatrix();
    std::cout << "\n=== Chaos scenario suite (bench/scenarios/) ===\n\n";
  }
  const int suite_rc = RunScenarioSuite(only_scenario);
  return matrix_rc != 0 ? matrix_rc : suite_rc;
}
