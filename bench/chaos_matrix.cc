// Chaos matrix: fault level x provisioning strategy. The paper's stability
// claim (latency independent of provisioning) is evaluated on a well-behaved
// substrate; this bench stresses it by sweeping injected fault profiles
// (elastic failures + stragglers, a Lambda-style concurrency cap, object
// store transient errors, VM launch failures, shuffle-node crashes) across
// the strategy line-up. The invariant under every cell: all queries
// complete. The output shows how cost and p99 degrade per strategy — the
// dynamic strategy's hedge (spare provisioned capacity) also buys fault
// headroom relative to pure-elastic execution.

#include "bench/bench_common.h"
#include "engine/engine.h"

int main() {
  using namespace cackle;
  using namespace cackle::bench;
  PrintHeader("Chaos matrix: fault level x provisioning strategy",
              "Escalating fault injection across provisioning strategies; "
              "queries_completed must equal arrivals in every cell.");

  WorkloadOptions opts = DefaultWorkload();
  opts.num_queries = FastMode() ? 200 : 600;
  opts.duration_ms = kMillisPerHour;
  opts.arrival_period_ms = 20 * kMillisPerMinute;
  WorkloadGenerator gen(&Library());
  const auto arrivals = gen.Generate(opts);
  CostModel cost;

  struct Level {
    const char* label;
    FaultProfile profile;
  };
  std::vector<Level> levels = {{"none", FaultProfile::None()},
                               {"light", FaultProfile::Light()},
                               {"moderate", FaultProfile::Moderate()},
                               {"heavy", FaultProfile::Heavy()}};
  // The presets leave the concurrency cap unbounded (it is workload
  // relative); bind it to a value below this workload's elastic peak so
  // throttling actually engages at nonzero levels.
  levels[1].profile.elastic_concurrency_limit = 400;
  levels[2].profile.elastic_concurrency_limit = 250;
  levels[3].profile.elastic_concurrency_limit = 150;

  struct Strat {
    const char* label;
    bool use_dynamic;
    int64_t fixed_target;
  };
  const std::vector<Strat> strategies = {{"fixed_0", false, 0},
                                         {"fixed_300", false, 300},
                                         {"dynamic", true, 0}};

  TablePrinter table({"faults", "strategy", "completed", "throttled",
                      "elastic_fail", "store_retry", "crashes", "stages_rex",
                      "speculated", "p90_s", "p99_s", "total_$"});
  // Per-strategy fault-free baselines for the degradation summary.
  std::vector<double> base_p99(strategies.size(), 0.0);
  std::vector<double> base_cost(strategies.size(), 0.0);

  bool all_complete = true;
  for (const Level& level : levels) {
    for (size_t s = 0; s < strategies.size(); ++s) {
      EngineOptions engine_opts;
      engine_opts.use_dynamic = strategies[s].use_dynamic;
      engine_opts.fixed_target = strategies[s].fixed_target;
      engine_opts.dynamic = DefaultDynamicOptions();
      engine_opts.faults = level.profile;
      CackleEngine engine(&cost, engine_opts);
      const EngineResult r = engine.Run(arrivals, Library());
      all_complete &=
          r.queries_completed == static_cast<int64_t>(arrivals.size());
      if (level.profile.any() == false) {
        base_p99[s] = r.latencies_s.Percentile(99);
        base_cost[s] = r.total_cost();
      }
      table.BeginRow();
      table.AddCell(level.label);
      table.AddCell(strategies[s].label);
      table.AddCell(r.queries_completed);
      table.AddCell(r.elastic_throttled);
      table.AddCell(r.elastic_failures);
      table.AddCell(r.store_retries);
      table.AddCell(r.shuffle_nodes_crashed);
      table.AddCell(r.stages_reexecuted);
      table.AddCell(r.tasks_speculated);
      table.AddCell(r.latencies_s.Percentile(90), 2);
      table.AddCell(r.latencies_s.Percentile(99), 2);
      table.AddCell(r.total_cost(), 2);

      if (level.profile.any()) {
        std::cout << "degradation[" << level.label << "/"
                  << strategies[s].label << "]: p99 "
                  << FormatDouble(base_p99[s] > 0.0
                                      ? r.latencies_s.Percentile(99) /
                                            base_p99[s]
                                      : 0.0,
                                  2)
                  << "x, cost "
                  << FormatDouble(
                         base_cost[s] > 0.0 ? r.total_cost() / base_cost[s]
                                            : 0.0,
                         2)
                  << "x\n";
      }
    }
  }
  std::cout << "\n";
  table.PrintText(std::cout);
  std::cout << "\nall queries completed under every fault profile: "
            << (all_complete ? "yes" : "NO — WORK WAS LOST") << "\n";
  return all_complete ? 0 : 1;
}
