// Extension experiment: query classes (Section 2.1). The paper observes
// that batch queries "can be executed on whatever spare, inexpensive
// resources are available" and benefit least from the elastic pool. This
// extension marks a fraction of the workload as delay-tolerant batch work
// that waits for idle provisioned VMs (with a 30-minute SLA escalation to
// the pool) and measures the cost saved versus treating everything as
// interactive — and what it costs in batch latency.

#include "bench/bench_common.h"
#include "engine/engine.h"

int main() {
  using namespace cackle;
  using namespace cackle::bench;
  PrintHeader("Extension: delay-tolerant batch query class",
              "Batch tasks wait for idle VMs instead of bursting to the "
              "elastic pool (30 min SLA).");

  WorkloadOptions opts = DefaultWorkload();
  opts.num_queries = FastMode() ? 300 : 1000;
  opts.duration_ms = kMillisPerHour;
  opts.arrival_period_ms = 20 * kMillisPerMinute;

  CostModel cost;
  TablePrinter table({"batch_fraction", "compute_$", "interactive_p90_s",
                      "batch_p90_s", "batch_delayed", "batch_escalated"});
  for (double fraction : {0.0, 0.15, 0.3, 0.5}) {
    WorkloadOptions wl = opts;
    wl.batch_fraction = fraction;
    WorkloadGenerator gen(&Library());
    const auto arrivals = gen.Generate(wl);
    EngineOptions engine_opts;
    engine_opts.enable_shuffle = false;
    engine_opts.dynamic = DefaultDynamicOptions();
    CackleEngine engine(&cost, engine_opts);
    const EngineResult r = engine.Run(arrivals, Library());
    table.BeginRow();
    table.AddCell(fraction, 2);
    table.AddCell(r.compute_cost(), 2);
    table.AddCell(r.latencies_s.Percentile(90), 1);
    table.AddCell(r.batch_latencies_s.empty()
                      ? std::string("-")
                      : FormatDouble(r.batch_latencies_s.Percentile(90), 1));
    table.AddCell(r.batch_tasks_delayed);
    table.AddCell(r.batch_tasks_escalated);
  }
  table.PrintText(std::cout);
  std::cout << "\n(batch work rides idle provisioned capacity: compute cost "
               "falls with the batch fraction while interactive p90 is "
               "unchanged; batch latency absorbs the delay)\n";
  return 0;
}
