// Extension experiment (Section 5.3's motivating scenario): the spot price
// of VMs nearly doubles halfway through the workload while the elastic pool
// price stays fixed — exactly what happened to c5a.large between January
// and March 2023. A sound strategy should shift work toward the (now
// relatively cheaper) elastic pool without being reconfigured. The dynamic
// meta-strategy re-prices its experts against the live cost model every
// round, so it adapts automatically; cost-blind strategies keep their
// allocation and overpay.

#include "bench/bench_common.h"

namespace {

using namespace cackle;
using namespace cackle::bench;

struct PhaseCosts {
  double first_half = 0.0;
  double second_half = 0.0;
  int64_t vm_seconds_second_half = 0;
};

/// Replays the demand with the VM price doubling at the halfway point.
PhaseCosts Replay(ProvisioningStrategy* strategy,
                  const std::vector<int64_t>& demand, CostModel* cost,
                  double price_factor) {
  const double original = cost->vm_cost_per_hour;
  WorkloadHistory history;
  AllocationModel model(cost);
  PhaseCosts out;
  const size_t half = demand.size() / 2;
  int64_t vm_seconds_late = 0;
  double spent = 0.0;
  for (size_t s = 0; s < demand.size(); ++s) {
    if (s == half) cost->vm_cost_per_hour = original * price_factor;
    history.Append(demand[s]);
    const int64_t target = strategy->Target(history);
    const auto step = model.Step(target, demand[s]);
    spent += step.vm_cost + step.elastic_cost;
    if (s == half - 1) {
      out.first_half = spent;
      spent = 0.0;
    }
    if (s >= half) vm_seconds_late += step.available;
  }
  model.Finish();
  out.second_half = model.total_cost() - out.first_half;
  out.vm_seconds_second_half = vm_seconds_late;
  cost->vm_cost_per_hour = original;
  return out;
}

}  // namespace

int main() {
  PrintHeader("Extension: VM price doubles mid-workload",
              "The dynamic strategy re-prices its experts live and shifts "
              "toward the elastic pool; cost-blind strategies do not.");

  WorkloadOptions opts = DefaultWorkload();
  opts.num_queries /= 2;
  const DemandCurve demand = BuildDemand(opts);

  TablePrinter table({"strategy", "cost_first_half", "cost_second_half",
                      "vm_seconds_second_half"});
  for (const char* which : {"mean_2", "predictive", "dynamic"}) {
    CostModel cost;
    std::unique_ptr<ProvisioningStrategy> s;
    if (std::string(which) == "mean_2") {
      s = std::make_unique<MeanStrategy>(2.0);
    } else if (std::string(which) == "predictive") {
      s = std::make_unique<PredictiveStrategy>(cost.vm_startup_ms);
    } else {
      s = std::make_unique<DynamicStrategy>(&cost, DefaultDynamicOptions());
    }
    const PhaseCosts pc =
        Replay(s.get(), demand.tasks_per_second(), &cost, 2.0);
    table.BeginRow();
    table.AddCell(which);
    table.AddCell(pc.first_half, 2);
    table.AddCell(pc.second_half, 2);
    table.AddCell(pc.vm_seconds_second_half);
  }
  table.PrintText(std::cout);
  std::cout << "\n(lower vm_seconds_second_half for dynamic = it moved work "
               "to the elastic pool after the price change)\n";
  return 0;
}
