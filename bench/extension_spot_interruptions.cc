// Extension experiment: spot-instance interruptions. The paper provisions
// the compute fleet with spot requests but does not evaluate reclamation;
// this extension injects exponentially distributed VM lifetimes and shows
// that Cackle's elastic pool doubles as an availability hedge — reclaimed
// tasks restart on the pool within milliseconds, so p90 latency barely
// moves even under absurd reclamation rates, with cost rising only by the
// retried work.

#include "bench/bench_common.h"
#include "engine/engine.h"

int main() {
  using namespace cackle;
  using namespace cackle::bench;
  PrintHeader("Extension: spot interruptions",
              "Exponential VM lifetimes; reclaimed tasks retry on the "
              "elastic pool.");

  WorkloadOptions opts = DefaultWorkload();
  opts.num_queries = FastMode() ? 250 : 800;
  opts.duration_ms = kMillisPerHour;
  opts.arrival_period_ms = 20 * kMillisPerMinute;
  WorkloadGenerator gen(&Library());
  const auto arrivals = gen.Generate(opts);
  CostModel cost;

  TablePrinter table({"mean_vm_lifetime", "vms_interrupted", "tasks_retried",
                      "p90_latency_s", "p99_latency_s", "compute_$"});
  struct Case {
    const char* label;
    double hours;
  };
  for (const Case& c : std::initializer_list<Case>{{"infinite", 0.0},
                                                   {"4h", 4.0},
                                                   {"1h", 1.0},
                                                   {"15min", 0.25},
                                                   {"5min", 1.0 / 12.0}}) {
    EngineOptions engine_opts;
    engine_opts.enable_shuffle = false;
    engine_opts.dynamic = DefaultDynamicOptions();
    engine_opts.spot_mean_lifetime_hours = c.hours;
    CackleEngine engine(&cost, engine_opts);
    const EngineResult r = engine.Run(arrivals, Library());
    table.BeginRow();
    table.AddCell(c.label);
    table.AddCell(r.vms_interrupted);
    table.AddCell(r.tasks_retried);
    table.AddCell(r.latencies_s.Percentile(90), 2);
    table.AddCell(r.latencies_s.Percentile(99), 2);
    table.AddCell(r.compute_cost(), 2);
  }
  table.PrintText(std::cout);
  return 0;
}
