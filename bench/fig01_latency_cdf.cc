// Figure 1: CDF of query latency in an hour-long workload of 1500 TPC-H
// queries — Cackle (starting from zero provisioned compute) vs a Databricks
// SQL small warehouse with five fixed clusters vs a small warehouse with
// auto-scaling. Expected shape: Cackle and the over-provisioned fixed
// warehouse have similar tight CDFs; the auto-scaler has a long tail (its
// 80th percentile is an order of magnitude slower) because queries queue
// while new clusters provision.

#include "bench/bench_common.h"
#include "engine/engine.h"
#include "model/warehouse_simulator.h"

int main() {
  using namespace cackle;
  using namespace cackle::bench;
  PrintHeader("Figure 1: latency CDF, 1500 queries in one hour",
              "Cackle autoscaling vs Databricks-small-5-clusters vs "
              "Databricks-small-autoscaling.");

  WorkloadOptions opts = DefaultWorkload();
  opts.num_queries = FastMode() ? 400 : 1500;
  opts.duration_ms = kMillisPerHour;
  opts.arrival_period_ms = 20 * kMillisPerMinute;
  WorkloadGenerator gen(&Library());
  const auto arrivals = gen.Generate(opts);
  CostModel cost;

  Observability obs;
  EngineOptions engine_opts;
  engine_opts.dynamic = DefaultDynamicOptions();
  engine_opts.observability = &obs;
  CackleEngine engine(&cost, engine_opts);
  const EngineResult cackle = engine.Run(arrivals, Library());
  WriteBenchArtifact(obs, "fig01_latency_cdf");
  const auto fixed5 =
      RunWarehouseSimulation(arrivals, Library(), DatabricksSmallFixed(5));
  const auto autosc =
      RunWarehouseSimulation(arrivals, Library(), DatabricksSmallAuto());

  TablePrinter table({"fraction", "cackle_latency_s", "dbx_small_5_s",
                      "dbx_small_auto_s"});
  const auto cackle_cdf = cackle.latencies_s.Cdf(20);
  const auto fixed_cdf = fixed5.latencies_s.Cdf(20);
  const auto auto_cdf = autosc.latencies_s.Cdf(20);
  for (size_t i = 0; i < cackle_cdf.size(); ++i) {
    table.BeginRow();
    table.AddCell(cackle_cdf[i].second, 2);
    table.AddCell(cackle_cdf[i].first, 2);
    table.AddCell(fixed_cdf[i].first, 2);
    table.AddCell(auto_cdf[i].first, 2);
  }
  table.PrintText(std::cout);
  std::cout << "\np80 latency -- cackle: "
            << FormatDouble(cackle.latencies_s.Percentile(80), 1)
            << "s, fixed5: " << FormatDouble(fixed5.latencies_s.Percentile(80), 1)
            << "s, autoscaling: "
            << FormatDouble(autosc.latencies_s.Percentile(80), 1) << "s\n";
  return 0;
}
