// Figures 2-4: the real-world workload traces of Section 2 (synthetic
// equivalents — see DESIGN.md). For each trace, prints an hourly summary
// of the full window plus a minute-granularity zoom of a two-hour window,
// mirroring the paper's full-trace + zoom presentation.

#include <algorithm>

#include "bench/bench_common.h"
#include "workload/trace_generator.h"

namespace {

using cackle::TablePrinter;

void Summarize(const std::string& title, const std::string& unit,
               const std::vector<int64_t>& series, int zoom_start_hour) {
  std::cout << "--- " << title << " ---\n";
  const int64_t hours = static_cast<int64_t>(series.size()) / 3600;
  TablePrinter full({"hour", unit + "_mean", unit + "_max"});
  for (int64_t h = 0; h < hours; h += 4) {
    int64_t max = 0;
    double sum = 0;
    for (int64_t s = h * 3600; s < (h + 4) * 3600; ++s) {
      max = std::max(max, series[static_cast<size_t>(s)]);
      sum += static_cast<double>(series[static_cast<size_t>(s)]);
    }
    full.BeginRow();
    full.AddCell(h);
    full.AddCell(sum / (4 * 3600.0), 1);
    full.AddCell(max);
  }
  full.PrintText(std::cout);
  std::cout << "\nzoom: hours " << zoom_start_hour << ".."
            << zoom_start_hour + 2 << " (5-minute buckets)\n";
  TablePrinter zoom({"minute", unit});
  for (int64_t m = 0; m < 120; m += 5) {
    const int64_t s = (zoom_start_hour * 60 + m) * 60;
    zoom.BeginRow();
    zoom.AddCell(zoom_start_hour * 60 + m);
    zoom.AddCell(series[static_cast<size_t>(s)]);
  }
  zoom.PrintText(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace cackle;
  using namespace cackle::bench;
  PrintHeader("Figures 2-4: workload traces",
              "Synthetic equivalents of the startup / Alibaba 2018 / Azure "
              "Synapse traces (periodicity + irregular spikes).");

  const int hours_startup = FastMode() ? 48 : 168;
  const int hours_alibaba = FastMode() ? 48 : 192;
  const int hours_azure = FastMode() ? 48 : 336;

  Summarize("Figure 2: startup workload (concurrent queries)", "queries",
            TraceGenerator::StartupConcurrency(1, hours_startup),
            /*zoom_start_hour=*/33);
  Summarize("Figure 3: Alibaba 2018 (concurrent CPUs, scaled 1:1000)",
            "cpus", TraceGenerator::AlibabaCpus(2, hours_alibaba),
            /*zoom_start_hour=*/20);
  Summarize("Figure 4: Azure Synapse 2023 (nodes requested)", "nodes",
            TraceGenerator::AzureNodes(3, hours_azure),
            /*zoom_start_hour=*/38);
  return 0;
}
