// Figure 5: cost of the query workload as the number of queries varies.
// Expected shape (paper): fixed_0 (pure elastic) is cheap for tiny
// workloads but an order of magnitude more expensive when queries arrive
// frequently; fixed_500 is flat and wasteful until demand exceeds its
// capacity; dynamic stays lowest-cost across the whole range, converging
// with mean as the workload becomes regular; oracle lower-bounds everyone.

#include "bench/bench_common.h"

int main() {
  using namespace cackle;
  using namespace cackle::bench;
  PrintHeader("Figure 5: Cost vs number of queries",
              "Workload: 12h window, 30% baseline load, 3h arrival period.");

  std::vector<int64_t> sweep = {512,   1024,  2048,  4096,   8192,
                                16384, 32768, 65536, 131072};
  if (FastMode()) sweep = {512, 2048, 8192, 16384};

  CostModel cost;
  TablePrinter table({"num_queries", "fixed_0", "fixed_500", "mean_2",
                      "predictive", "dynamic", "oracle"});
  for (int64_t n : sweep) {
    WorkloadOptions opts = DefaultWorkload();
    opts.num_queries = FastMode() ? n / 8 : n;
    const DemandCurve demand = BuildDemand(opts);
    const auto costs = CostAllStrategies(demand, cost);
    table.BeginRow();
    table.AddCell(n);
    for (const auto& [name, dollars] : costs) table.AddCell(dollars, 2);
  }
  table.PrintText(std::cout);
  return 0;
}
