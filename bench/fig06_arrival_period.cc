// Figure 6: cost of the query workload as the period of query arrivals
// varies. Expected shape: fixed strategies barely move; dynamic stays the
// cheapest non-oracle strategy across periods because the expert family
// contains a suitable lookback for every periodicity.

#include "bench/bench_common.h"

int main() {
  using namespace cackle;
  using namespace cackle::bench;
  PrintHeader("Figure 6: Cost vs period of query arrivals",
              "Workload: 16384 queries over 12h, 30% baseline load.");

  std::vector<int64_t> periods_s = {100,  300,   900,   3600,
                                    7200, 10800, 14400};
  if (FastMode()) periods_s = {300, 3600, 10800};

  CostModel cost;
  TablePrinter table({"period_s", "fixed_0", "fixed_500", "mean_2",
                      "predictive", "dynamic", "oracle"});
  for (int64_t p : periods_s) {
    WorkloadOptions opts = DefaultWorkload();
    opts.arrival_period_ms = p * 1000;
    const DemandCurve demand = BuildDemand(opts);
    const auto costs = CostAllStrategies(demand, cost);
    table.BeginRow();
    table.AddCell(p);
    for (const auto& [name, dollars] : costs) table.AddCell(dollars, 2);
  }
  table.PrintText(std::cout);
  return 0;
}
