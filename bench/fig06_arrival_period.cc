// Figure 6: cost of the query workload as the period of query arrivals
// varies. Expected shape: fixed strategies barely move; dynamic stays the
// cheapest non-oracle strategy across periods because the expert family
// contains a suitable lookback for every periodicity.

#include "bench/bench_common.h"
#include "sim/sweep_runner.h"

int main() {
  using namespace cackle;
  using namespace cackle::bench;
  PrintHeader("Figure 6: Cost vs period of query arrivals",
              "Workload: 16384 queries over 12h, 30% baseline load.");

  std::vector<int64_t> periods_s = {100,  300,   900,   3600,
                                    7200, 10800, 14400};
  if (FastMode()) periods_s = {300, 3600, 10800};

  CostModel cost;
  TablePrinter table({"period_s", "fixed_0", "fixed_500", "mean_2",
                      "predictive", "dynamic", "oracle"});
  // One sweep cell per arrival period; merged in cell order so the table is
  // byte-identical at any CACKLE_SWEEP_THREADS.
  using Row = std::vector<std::pair<std::string, double>>;
  SweepRunner runner(SweepThreads());
  const std::vector<Row> rows = runner.Map<Row>(
      static_cast<int>(periods_s.size()), [&](int cell) {
        WorkloadOptions opts = DefaultWorkload();
        opts.arrival_period_ms = periods_s[cell] * 1000;
        return CostAllStrategies(BuildDemand(opts), cost);
      });
  for (size_t i = 0; i < periods_s.size(); ++i) {
    table.BeginRow();
    table.AddCell(periods_s[i]);
    for (const auto& [name, dollars] : rows[i]) table.AddCell(dollars, 2);
  }
  table.PrintText(std::cout);
  return 0;
}
