// Figure 7: cost of the query workload as the baseline (uniform) load
// fraction varies from fully sinusoidal (0) to fully uniform (1).
// Expected shape: fixed strategies get cheaper as arrivals even out and
// fewer queries exceed their capacity; adaptive strategies barely move.

#include "bench/bench_common.h"

int main() {
  using namespace cackle;
  using namespace cackle::bench;
  PrintHeader("Figure 7: Cost vs baseline load",
              "Workload: 16384 queries over 12h, 3h arrival period.");

  std::vector<double> loads = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  if (FastMode()) loads = {0.0, 0.5, 1.0};

  CostModel cost;
  TablePrinter table({"baseline_load", "fixed_0", "fixed_500", "mean_2",
                      "predictive", "dynamic", "oracle"});
  for (double load : loads) {
    WorkloadOptions opts = DefaultWorkload();
    opts.baseline_load = load;
    const DemandCurve demand = BuildDemand(opts);
    const auto costs = CostAllStrategies(demand, cost);
    table.BeginRow();
    table.AddCell(load, 1);
    for (const auto& [name, dollars] : costs) table.AddCell(dollars, 2);
  }
  table.PrintText(std::cout);
  return 0;
}
