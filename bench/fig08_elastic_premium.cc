// Figure 8: cost of the query workload as the elastic pool's cost premium
// relative to VMs varies from 1x to 100x. Expected shape: at 1x, fixed_0
// (pure elastic) ties for cheapest and VM-heavy strategies overpay; as the
// premium grows, provisioning VMs wins and fixed_0 explodes. dynamic tracks
// the oracle until very large premiums, where any elastic use hurts; the
// (cost-insensitive) predictive strategy falls behind when the premium
// rises.

#include "bench/bench_common.h"

int main() {
  using namespace cackle;
  using namespace cackle::bench;
  PrintHeader("Figure 8: Cost vs elastic pool premium",
              "Default workload; elastic $/s swept as a multiple of VM $/s.");

  std::vector<double> premiums = {1, 2, 4, 6, 10, 20, 50, 100};
  if (FastMode()) premiums = {1, 6, 20};

  const WorkloadOptions opts = DefaultWorkload();
  const DemandCurve demand = BuildDemand(opts);
  TablePrinter table({"premium_x", "fixed_0", "fixed_500", "mean_2",
                      "predictive", "dynamic", "oracle"});
  for (double premium : premiums) {
    CostModel cost;
    cost.elastic_cost_per_hour = cost.vm_cost_per_hour * premium;
    const auto costs = CostAllStrategies(demand, cost);
    table.BeginRow();
    table.AddCell(premium, 0);
    for (const auto& [name, dollars] : costs) table.AddCell(dollars, 2);
  }
  table.PrintText(std::cout);
  return 0;
}
