// Figure 9: cost of the query workload as the VM startup time varies from
// 0 to 800 seconds. Expected shape: fixed strategies and the oracle are
// unaffected (the oracle starts VMs early enough); mean_2 beats mean_1 when
// VMs are slow to start (headroom covers the provisioning lag) but overpays
// when they start fast; dynamic stays near-optimal across the range by
// re-weighting its expert family.

#include "bench/bench_common.h"

int main() {
  using namespace cackle;
  using namespace cackle::bench;
  PrintHeader("Figure 9: Cost vs VM startup time",
              "Default workload; startup latency swept.");

  std::vector<int64_t> startups_s = {0, 60, 180, 300, 450, 600, 800};
  if (FastMode()) startups_s = {0, 180, 600};

  const WorkloadOptions opts = DefaultWorkload();
  const DemandCurve demand = BuildDemand(opts);
  TablePrinter table({"startup_s", "fixed_0", "fixed_500", "mean_1", "mean_2",
                      "predictive", "dynamic", "oracle"});
  for (int64_t startup : startups_s) {
    CostModel cost;
    cost.vm_startup_ms = startup * 1000;
    const auto costs =
        CostAllStrategies(demand, cost, /*include_mean_1=*/true);
    table.BeginRow();
    table.AddCell(startup);
    for (const auto& [name, dollars] : costs) table.AddCell(dollars, 2);
  }
  table.PrintText(std::cout);
  return 0;
}
