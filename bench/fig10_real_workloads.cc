// Figure 10: cost of strategies on the three real-world workloads of
// Section 2 (synthetic equivalents), normalized to fixed_0. The startup
// trace is replayed as query arrivals each running a random TPC-H profile
// (the paper's assumption); the Alibaba trace maps 1 CPU = 1 task; the
// Azure trace maps 1 node = 20 tasks. Expected shape: dynamic is the best
// or within ~1% of the best non-oracle strategy on every trace.

#include "bench/bench_common.h"
#include "common/rng.h"
#include "workload/trace_generator.h"

namespace {

using namespace cackle;
using namespace cackle::bench;

DemandCurve StartupDemand(int hours) {
  const std::vector<SimTimeMs> times = TraceGenerator::StartupArrivals(
      /*seed=*/1, hours);
  Rng rng(17);
  std::vector<QueryArrival> arrivals;
  arrivals.reserve(times.size());
  for (SimTimeMs t : times) {
    arrivals.push_back(QueryArrival{
        t, static_cast<size_t>(rng.NextBounded(Library().size()))});
  }
  return DemandCurve::FromWorkload(arrivals, Library());
}

}  // namespace

int main() {
  PrintHeader("Figure 10: real-world workloads, cost normalized to fixed_0",
              "Strategies: fixed_0 / mean_1 / predictive / dynamic / oracle.");

  const int hours_startup = FastMode() ? 48 : 168;
  const int hours_alibaba = FastMode() ? 48 : 192;
  const int hours_azure = FastMode() ? 48 : 336;

  struct TraceCase {
    std::string name;
    DemandCurve demand;
  };
  std::vector<TraceCase> cases;
  cases.push_back({"startup", StartupDemand(hours_startup)});
  cases.push_back({"alibaba_2018",
                   DemandCurve::FromSeries(
                       TraceGenerator::AlibabaCpus(2, hours_alibaba))});
  {
    std::vector<int64_t> nodes = TraceGenerator::AzureNodes(3, hours_azure);
    for (int64_t& n : nodes) n *= TraceGenerator::kTasksPerAzureNode;
    cases.push_back({"azure_synapse", DemandCurve::FromSeries(std::move(nodes))});
  }

  CostModel cost;
  TablePrinter table({"workload", "fixed_0", "mean_1", "predictive",
                      "dynamic", "oracle"});
  for (const TraceCase& c : cases) {
    FixedStrategy fixed0(0);
    MeanStrategy mean1(1.0);
    PredictiveStrategy predictive(cost.vm_startup_ms);
    DynamicStrategy dynamic(&cost, DefaultDynamicOptions());
    const double base =
        EvaluateStrategy(&fixed0, c.demand.tasks_per_second(), cost).total();
    table.BeginRow();
    table.AddCell(c.name);
    table.AddCell(1.0, 3);
    for (ProvisioningStrategy* s :
         std::initializer_list<ProvisioningStrategy*>{&mean1, &predictive,
                                                      &dynamic}) {
      const double dollars =
          EvaluateStrategy(s, c.demand.tasks_per_second(), cost).total();
      table.AddCell(dollars / base, 3);
    }
    table.AddCell(
        ComputeOracleCost(c.demand.tasks_per_second(), cost).total() / base,
        3);
  }
  table.PrintText(std::cout);
  return 0;
}
