// Figure 11: cost and 95th-percentile latency of work-delaying systems with
// fixed provisioning versus elastic-pool strategies. Expected shape: the
// fixed sweep traces a frontier (cheap-but-slow to fast-but-expensive); no
// fixed point reaches the bottom-left; the Cackle oracle (and the dynamic
// strategy) achieve the latency of an over-provisioned system below the
// cost of the work-delaying oracle, because the elastic pool's fine-grained
// billing beats the VMs' one-minute minimum for short bursts.

#include "bench/bench_common.h"
#include "model/work_delay_model.h"

int main() {
  using namespace cackle;
  using namespace cackle::bench;
  PrintHeader("Figure 11: cost vs p95 latency, delaying vs elastic",
              "Workload: 2048 queries over 12h, 30% baseline, 12h period.");

  WorkloadOptions opts = DefaultWorkload();
  opts.num_queries = FastMode() ? 512 : 2048;
  opts.arrival_period_ms = opts.duration_ms;
  WorkloadGenerator gen(&Library());
  const auto arrivals = gen.Generate(opts);
  const DemandCurve demand = DemandCurve::FromWorkload(arrivals, Library());
  CostModel cost;

  TablePrinter table({"system", "workers", "p95_latency_s", "cost_$"});

  std::vector<int64_t> fleet_sizes = {50,  75,  100, 125, 150, 175,
                                      200, 250, 300, 400, 450};
  if (FastMode()) fleet_sizes = {50, 150, 400};
  for (int64_t workers : fleet_sizes) {
    const auto r = RunWorkDelaySimulation(arrivals, Library(), workers, cost);
    table.BeginRow();
    table.AddCell("work_delaying_fixed");
    table.AddCell(workers);
    table.AddCell(r.latencies_s.Percentile(95), 2);
    table.AddCell(r.cost, 2);
  }

  // Cackle-side systems execute all tasks immediately: same p95 latency,
  // different allocation costs.
  const SampleSet unconstrained = UnconstrainedLatencies(arrivals, Library());
  const double p95 = unconstrained.Percentile(95);

  const OracleResult no_pool =
      ComputeOracleCost(demand.tasks_per_second(), cost,
                        /*allow_elastic=*/false);
  table.BeginRow();
  table.AddCell("cackle_oracle_without_elastic_pool");
  table.AddCell("-");
  table.AddCell(p95, 2);
  table.AddCell(no_pool.total(), 2);

  const OracleResult with_pool =
      ComputeOracleCost(demand.tasks_per_second(), cost);
  table.BeginRow();
  table.AddCell("cackle_oracle");
  table.AddCell("-");
  table.AddCell(p95, 2);
  table.AddCell(with_pool.total(), 2);

  DynamicStrategy dynamic(&cost, DefaultDynamicOptions());
  const auto dyn =
      EvaluateStrategy(&dynamic, demand.tasks_per_second(), cost);
  table.BeginRow();
  table.AddCell("cackle_cost_based_dynamic");
  table.AddCell("-");
  table.AddCell(p95, 2);
  table.AddCell(dyn.total(), 2);

  table.PrintText(std::cout);
  return 0;
}
