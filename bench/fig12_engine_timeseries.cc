// Figure 12: compute demand, VM target, active VMs, and model-predicted
// active VMs over an hour-long workload of 750 queries executed on the full
// Cackle engine (DES substrate). The model-predicted series comes from
// replaying the engine's recorded demand history through the analytical
// model with the same strategy configuration — the paper's validation
// methodology.

#include "bench/bench_common.h"
#include "engine/engine.h"

int main() {
  using namespace cackle;
  using namespace cackle::bench;
  PrintHeader("Figure 12: engine time series (750 queries / hour)",
              "demand, VM target, active VMs, model-predicted active VMs; "
              "one row per simulated minute (series max within the minute).");

  WorkloadOptions opts = DefaultWorkload();
  opts.num_queries = FastMode() ? 250 : 750;
  opts.duration_ms = kMillisPerHour;
  opts.arrival_period_ms = 20 * kMillisPerMinute;
  WorkloadGenerator gen(&Library());
  const auto arrivals = gen.Generate(opts);

  CostModel cost;
  Observability obs;
  EngineOptions engine_opts;
  engine_opts.record_series = true;
  engine_opts.dynamic = DefaultDynamicOptions();
  engine_opts.observability = &obs;
  CackleEngine engine(&cost, engine_opts);
  const EngineResult result = engine.Run(arrivals, Library());
  WriteBenchArtifact(obs, "fig12_engine_timeseries");

  // Replay the engine-observed demand through the analytical model.
  DemandCurve observed = DemandCurve::FromSeries(result.demand_series);
  DynamicStrategyOptions dyn_opts = DefaultDynamicOptions();
  dyn_opts.seed = engine_opts.seed ^ 0x5eed;  // same stream as the engine
  DynamicStrategy replay(&cost, dyn_opts);
  const auto model_eval = EvaluateStrategy(
      &replay, observed.tasks_per_second(), cost, /*record_series=*/true);

  TablePrinter table({"minute", "running_tasks", "vm_target", "active_vms",
                      "model_predicted_vms"});
  const size_t n = result.demand_series.size();
  for (size_t s = 0; s + 60 <= n; s += 60) {
    int64_t demand = 0;
    int64_t target = 0;
    int64_t active = 0;
    int64_t predicted = 0;
    for (size_t i = s; i < s + 60; ++i) {
      demand = std::max(demand, result.demand_series[i]);
      target = std::max(target, result.target_series[i]);
      active = std::max(active, result.active_vm_series[i]);
      if (i < model_eval.allocation_series.size()) {
        predicted = std::max(predicted, model_eval.allocation_series[i]);
      }
    }
    table.BeginRow();
    table.AddCell(static_cast<int64_t>(s / 60));
    table.AddCell(demand);
    table.AddCell(target);
    table.AddCell(active);
    table.AddCell(predicted);
  }
  table.PrintText(std::cout);

  std::cout << "\nengine compute cost: $"
            << FormatDouble(result.compute_cost(), 2)
            << " (vm $" << FormatDouble(
                   result.billing.CategoryDollars(CostCategory::kVm), 2)
            << ", elastic $"
            << FormatDouble(
                   result.billing.CategoryDollars(CostCategory::kElasticPool),
                   2)
            << ")\n";
  std::cout << "model-predicted compute cost: $"
            << FormatDouble(model_eval.total(), 2) << " (vm $"
            << FormatDouble(model_eval.vm_cost, 2) << ", elastic $"
            << FormatDouble(model_eval.elastic_cost, 2) << ")\n";
  const double gap = std::abs(result.compute_cost() - model_eval.total()) /
                     std::max(1e-9, model_eval.total());
  std::cout << "relative gap: " << FormatDouble(gap * 100, 1)
            << "% (paper reports 12% for its implementation)\n";
  return 0;
}
