// Figure 13: cost per query — analytical model vs real (engine) execution
// vs the oracle — split into VM and elastic-pool components, across
// hour-long workloads of varying size. Expected shape: the model tracks the
// engine-measured cost closely (including the VM/elastic split), and small
// workloads are dominated by elastic-pool cost even under the oracle, with
// the elastic share shrinking as workloads get busier.

#include "bench/bench_common.h"
#include "engine/engine.h"

int main() {
  using namespace cackle;
  using namespace cackle::bench;
  PrintHeader("Figure 13: cost per query, model vs engine vs oracle",
              "Hour-long workloads; costs split into VM / elastic-pool.");

  std::vector<int64_t> sweep = {60, 250, 500, 750, 1000, 1500, 2000};
  if (FastMode()) sweep = {60, 500, 1500};

  CostModel cost;
  TablePrinter table({"queries", "model_vm", "model_elastic", "real_vm",
                      "real_elastic", "oracle_vm", "oracle_elastic",
                      "model_total_per_q", "real_total_per_q"});
  for (int64_t n : sweep) {
    WorkloadOptions opts = DefaultWorkload();
    opts.num_queries = n;
    opts.duration_ms = kMillisPerHour;
    opts.arrival_period_ms = 20 * kMillisPerMinute;
    WorkloadGenerator gen(&Library());
    const auto arrivals = gen.Generate(opts);
    const DemandCurve demand = DemandCurve::FromWorkload(arrivals, Library());

    DynamicStrategy model_strategy(&cost, DefaultDynamicOptions());
    const auto model_eval = EvaluateStrategy(
        &model_strategy, demand.tasks_per_second(), cost);

    EngineOptions engine_opts;
    engine_opts.enable_shuffle = false;
    engine_opts.dynamic = DefaultDynamicOptions();
    CackleEngine engine(&cost, engine_opts);
    const EngineResult real = engine.Run(arrivals, Library());

    const OracleResult oracle =
        ComputeOracleCost(demand.tasks_per_second(), cost);

    const double q = static_cast<double>(n);
    table.BeginRow();
    table.AddCell(n);
    table.AddCell(model_eval.vm_cost, 2);
    table.AddCell(model_eval.elastic_cost, 2);
    table.AddCell(real.billing.CategoryDollars(CostCategory::kVm), 2);
    table.AddCell(real.billing.CategoryDollars(CostCategory::kElasticPool),
                  2);
    table.AddCell(oracle.vm_cost, 2);
    table.AddCell(oracle.elastic_cost, 2);
    table.AddCell(model_eval.total() / q, 4);
    table.AddCell(real.compute_cost() / q, 4);
  }
  table.PrintText(std::cout);
  return 0;
}
