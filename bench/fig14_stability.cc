// Figure 14: p90 query latency (left) and cost per query (right) across
// hour-long workloads of 60..2000 queries — Cackle vs Databricks-like fixed
// and auto-scaling warehouses (small & medium) and a Redshift-Serverless-
// like baseline. Expected shape: Cackle's p90 latency is flat across the
// sweep while autoscalers degrade multi-x as load grows; Cackle's cost per
// query is stable while fixed warehouses are very expensive per query at
// low volume.

#include "bench/bench_common.h"
#include "engine/engine.h"
#include "model/warehouse_simulator.h"
#include "sim/sweep_runner.h"

int main() {
  using namespace cackle;
  using namespace cackle::bench;
  PrintHeader("Figure 14: latency and cost-per-query stability",
              "Hour-long workloads; Cackle (engine, incl. shuffle) vs "
              "warehouse baselines.");

  std::vector<int64_t> sweep = {60, 250, 500, 750, 1000, 1500, 2000};
  if (FastMode()) sweep = {60, 500, 2000};

  const std::vector<WarehouseOptions> baselines = {
      RedshiftServerless8Rpu(), DatabricksSmallAuto(),
      DatabricksSmallFixed(5), DatabricksMediumAuto(),
      DatabricksMediumFixed(3)};

  CostModel cost;
  std::vector<std::string> headers = {"queries", "cackle_p90_s",
                                      "cackle_cost_per_q"};
  for (const auto& b : baselines) {
    headers.push_back(b.name + "_p90_s");
    headers.push_back(b.name + "_cost_per_q");
  }
  TablePrinter table(headers);

  // One sweep cell per workload size (Cackle engine + every warehouse
  // baseline); merged in cell order so the table is byte-identical at any
  // CACKLE_SWEEP_THREADS. Only the heaviest cell records observability (a
  // fresh sink per engine: the ledger finalizes once per run) and the
  // artifact is written after the sweep so stdout ordering stays fixed.
  Observability obs;
  struct Row {
    std::vector<double> values;
  };
  SweepRunner runner(SweepThreads());
  const std::vector<Row> rows = runner.Map<Row>(
      static_cast<int>(sweep.size()), [&](int cell) {
        const int64_t n = sweep[cell];
        WorkloadOptions opts = DefaultWorkload();
        opts.num_queries = n;
        opts.duration_ms = kMillisPerHour;
        opts.arrival_period_ms = 20 * kMillisPerMinute;
        WorkloadGenerator gen(&Library());
        const auto arrivals = gen.Generate(opts);
        const double q = static_cast<double>(n);

        EngineOptions engine_opts;
        engine_opts.dynamic = DefaultDynamicOptions();
        if (n == sweep.back()) engine_opts.observability = &obs;
        CackleEngine engine(&cost, engine_opts);
        const EngineResult cackle = engine.Run(arrivals, Library());

        Row row;
        row.values.push_back(cackle.latencies_s.Percentile(90));
        row.values.push_back(cackle.total_cost() / q);
        for (const auto& b : baselines) {
          const auto r = RunWarehouseSimulation(arrivals, Library(), b);
          row.values.push_back(r.latencies_s.Percentile(90));
          row.values.push_back(r.cost / q);
        }
        return row;
      });
  WriteBenchArtifact(obs, "fig14_stability");

  for (size_t i = 0; i < sweep.size(); ++i) {
    table.BeginRow();
    table.AddCell(sweep[i]);
    table.AddCell(rows[i].values[0], 2);
    table.AddCell(rows[i].values[1], 4);
    for (size_t v = 2; v < rows[i].values.size(); v += 2) {
      table.AddCell(rows[i].values[v], 2);
      table.AddCell(rows[i].values[v + 1], 4);
    }
  }
  table.PrintText(std::cout);
  return 0;
}
