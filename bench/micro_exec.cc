// Microbenchmarks of the executor's operators (google-benchmark): scans
// with predicates, hash joins, aggregations, partitioning, and a full
// TPC-H query.

#include <benchmark/benchmark.h>

#include "exec/datagen.h"
#include "exec/expr.h"
#include "exec/operators.h"
#include "exec/plan.h"
#include "exec/logical.h"
#include "exec/lowering.h"
#include "exec/optimizer.h"
#include "exec/storage.h"
#include "exec/tpch_queries.h"

namespace cackle::exec {
namespace {

const Catalog& BenchCatalog() {
  static const Catalog* cat = new Catalog(GenerateTpch(0.01));
  return *cat;
}

void BM_FilterLineitem(benchmark::State& state) {
  const Catalog& cat = BenchCatalog();
  const ExprPtr pred = And(Ge(Col("l_discount"), Lit(0.05)),
                           Le(Col("l_discount"), Lit(0.07)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Filter(cat.lineitem, pred));
  }
  state.SetItemsProcessed(state.iterations() * cat.lineitem.num_rows());
}
BENCHMARK(BM_FilterLineitem);

void BM_HashJoinOrdersLineitem(benchmark::State& state) {
  const Catalog& cat = BenchCatalog();
  const Table orders = SelectColumns(cat.orders, {"o_orderkey", "o_custkey"});
  const Table line = SelectColumns(cat.lineitem, {"l_orderkey", "l_quantity"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        HashJoin(line, {"l_orderkey"}, orders, {"o_orderkey"}));
  }
  state.SetItemsProcessed(state.iterations() * line.num_rows());
}
BENCHMARK(BM_HashJoinOrdersLineitem);

void BM_HashAggregateLineitem(benchmark::State& state) {
  const Catalog& cat = BenchCatalog();
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashAggregate(
        cat.lineitem, {"l_returnflag", "l_linestatus"},
        {{AggOp::kSum, Col("l_quantity"), "sum_qty"},
         {AggOp::kCount, nullptr, "cnt"}}));
  }
  state.SetItemsProcessed(state.iterations() * cat.lineitem.num_rows());
}
BENCHMARK(BM_HashAggregateLineitem);

void BM_PartitionByHash(benchmark::State& state) {
  const Catalog& cat = BenchCatalog();
  const Table line = SelectColumns(cat.lineitem, {"l_orderkey", "l_quantity"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionByHash(line, {"l_orderkey"}, 8));
  }
  state.SetItemsProcessed(state.iterations() * line.num_rows());
}
BENCHMARK(BM_PartitionByHash);

void BM_TpchQuery(benchmark::State& state) {
  const Catalog& cat = BenchCatalog();
  const int query = static_cast<int>(state.range(0));
  PlanExecutor executor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        executor.Execute(BuildTpchPlan(query, cat, PlanConfig{4})));
  }
}
BENCHMARK(BM_TpchQuery)->Arg(1)->Arg(3)->Arg(6)->Arg(9)->Arg(18)->Arg(21);

void BM_StorageEncodeLineitem(benchmark::State& state) {
  const Catalog& cat = BenchCatalog();
  for (auto _ : state) {
    benchmark::DoNotOptimize(WriteTableFile(cat.lineitem));
  }
  state.SetBytesProcessed(state.iterations() * cat.lineitem.EstimateBytes());
}
BENCHMARK(BM_StorageEncodeLineitem);

void BM_StorageScanWithPushdown(benchmark::State& state) {
  const Catalog& cat = BenchCatalog();
  const std::string bytes = WriteTableFile(cat.lineitem);
  ColumnRange range;
  range.column = "l_shipdate";
  range.lo = static_cast<double>(DateFromCivil(1994, 1, 1));
  range.hi = static_cast<double>(DateFromCivil(1994, 2, 1));
  for (auto _ : state) {
    auto r = ScanTableFile(bytes, {"l_extendedprice", "l_discount"}, {range});
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_StorageScanWithPushdown);

LogicalNodePtr AdHocQuery() {
  return LSort(
      LAggregate(
          LFilter(LJoin(LJoin(LScan("orders"), LScan("customer"),
                              {"o_custkey"}, {"c_custkey"}),
                        LScan("nation"), {"c_nationkey"}, {"n_nationkey"}),
                  Eq(Col("c_mktsegment"), Lit("BUILDING"))),
          {"n_name"}, {{AggOp::kSum, Col("o_totalprice"), "revenue"}}),
      {{"revenue", false}}, 10);
}

void BM_OptimizeAndLower(benchmark::State& state) {
  const Catalog& cat = BenchCatalog();
  const TableResolver resolver = TableResolver::ForCatalog(cat);
  for (auto _ : state) {
    auto optimized = Optimize(AdHocQuery(), resolver);
    auto lowered = LowerToStagePlan(*optimized, resolver, PlanConfig{4});
    benchmark::DoNotOptimize(lowered);
  }
}
BENCHMARK(BM_OptimizeAndLower);

void BM_LogicalQueryExecution(benchmark::State& state) {
  // arg 0: optimized or not — quantifies what pushdown+pruning+broadcast buy.
  const Catalog& cat = BenchCatalog();
  const TableResolver resolver = TableResolver::ForCatalog(cat);
  LogicalNodePtr plan = AdHocQuery();
  if (state.range(0) == 1) {
    plan = *Optimize(plan, resolver);
  }
  const StagePlan lowered = *LowerToStagePlan(plan, resolver, PlanConfig{4});
  PlanExecutor executor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Execute(lowered));
  }
}
BENCHMARK(BM_LogicalQueryExecution)->Arg(0)->Arg(1);

void BM_GenerateTpch(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateTpch(0.002));
  }
}
BENCHMARK(BM_GenerateTpch);

}  // namespace
}  // namespace cackle::exec

BENCHMARK_MAIN();
