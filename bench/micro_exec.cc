// Microbenchmarks of the executor's operators (google-benchmark): scans
// with predicates, hash joins, aggregations, partitioning, and a full
// TPC-H query.

#include <benchmark/benchmark.h>

#include "exec/datagen.h"
#include "exec/expr.h"
#include "exec/flat_hash.h"
#include "exec/operators.h"
#include "exec/plan.h"
#include "exec/logical.h"
#include "exec/lowering.h"
#include "exec/optimizer.h"
#include "exec/storage.h"
#include "exec/tpch_queries.h"

namespace cackle::exec {
namespace {

const Catalog& BenchCatalog() {
  static const Catalog* cat = new Catalog(GenerateTpch(0.01));
  return *cat;
}

void BM_FilterLineitem(benchmark::State& state) {
  const Catalog& cat = BenchCatalog();
  const ExprPtr pred = And(Ge(Col("l_discount"), Lit(0.05)),
                           Le(Col("l_discount"), Lit(0.07)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Filter(cat.lineitem, pred));
  }
  state.SetItemsProcessed(state.iterations() * cat.lineitem.num_rows());
}
BENCHMARK(BM_FilterLineitem);

void BM_HashJoinOrdersLineitem(benchmark::State& state) {
  const Catalog& cat = BenchCatalog();
  const Table orders = SelectColumns(cat.orders, {"o_orderkey", "o_custkey"});
  const Table line = SelectColumns(cat.lineitem, {"l_orderkey", "l_quantity"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        HashJoin(line, {"l_orderkey"}, orders, {"o_orderkey"}));
  }
  state.SetItemsProcessed(state.iterations() * line.num_rows());
}
BENCHMARK(BM_HashJoinOrdersLineitem);

void BM_HashAggregateLineitem(benchmark::State& state) {
  const Catalog& cat = BenchCatalog();
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashAggregate(
        cat.lineitem, {"l_returnflag", "l_linestatus"},
        {{AggOp::kSum, Col("l_quantity"), "sum_qty"},
         {AggOp::kCount, nullptr, "cnt"}}));
  }
  state.SetItemsProcessed(state.iterations() * cat.lineitem.num_rows());
}
BENCHMARK(BM_HashAggregateLineitem);

void BM_FilterDictStringPredicate(benchmark::State& state) {
  // String equality over a dictionary-encoded column: the predicate is
  // evaluated once per dictionary entry, then applied per row via codes.
  const Catalog& cat = BenchCatalog();
  const ExprPtr pred = Eq(Col("l_returnflag"), Lit(std::string("R")));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Filter(cat.lineitem, pred));
  }
  state.SetItemsProcessed(state.iterations() * cat.lineitem.num_rows());
}
BENCHMARK(BM_FilterDictStringPredicate);

void BM_FlatMapBuildProbe(benchmark::State& state) {
  // The flat open-addressing table in isolation: build 64k keys, probe 256k.
  std::vector<uint64_t> keys;
  keys.reserve(1 << 16);
  uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (int i = 0; i < (1 << 16); ++i) {
    x = Mix64(x + 0xbf58476d1ce4e5b9ULL);
    keys.push_back(x);
  }
  for (auto _ : state) {
    FlatMap64 map(static_cast<int64_t>(keys.size()));
    bool inserted = false;
    for (size_t i = 0; i < keys.size(); ++i) {
      map.FindOrInsert(keys[i], static_cast<int64_t>(i), &inserted);
    }
    int64_t hits = 0;
    for (int rep = 0; rep < 4; ++rep) {
      for (uint64_t k : keys) hits += map.Find(k) >= 0;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(keys.size()) * 5);
}
BENCHMARK(BM_FlatMapBuildProbe);

void BM_GatherRowsLineitem(benchmark::State& state) {
  // Bulk materialization kernel: copy every other lineitem row.
  const Catalog& cat = BenchCatalog();
  std::vector<int64_t> rows;
  rows.reserve(static_cast<size_t>(cat.lineitem.num_rows() / 2));
  for (int64_t r = 0; r < cat.lineitem.num_rows(); r += 2) rows.push_back(r);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cat.lineitem.GatherRows(rows));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(rows.size()));
}
BENCHMARK(BM_GatherRowsLineitem);

void BM_DictEncodeShipmode(benchmark::State& state) {
  // Dictionary construction over a low-cardinality string column.
  const Catalog& cat = BenchCatalog();
  const int col = cat.lineitem.ColumnIndex("l_shipmode");
  for (auto _ : state) {
    Column copy(DataType::kString);
    copy.strings() = cat.lineitem.column(col).strings();
    benchmark::DoNotOptimize(copy.DictEncode());
  }
  state.SetItemsProcessed(state.iterations() * cat.lineitem.num_rows());
}
BENCHMARK(BM_DictEncodeShipmode);

void BM_PartitionByHash(benchmark::State& state) {
  const Catalog& cat = BenchCatalog();
  const Table line = SelectColumns(cat.lineitem, {"l_orderkey", "l_quantity"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionByHash(line, {"l_orderkey"}, 8));
  }
  state.SetItemsProcessed(state.iterations() * line.num_rows());
}
BENCHMARK(BM_PartitionByHash);

void BM_TpchQuery(benchmark::State& state) {
  const Catalog& cat = BenchCatalog();
  const int query = static_cast<int>(state.range(0));
  PlanExecutor executor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        executor.Execute(BuildTpchPlan(query, cat, PlanConfig{4})));
  }
}
BENCHMARK(BM_TpchQuery)->Arg(1)->Arg(3)->Arg(6)->Arg(9)->Arg(18)->Arg(21);

void BM_StorageEncodeLineitem(benchmark::State& state) {
  const Catalog& cat = BenchCatalog();
  for (auto _ : state) {
    benchmark::DoNotOptimize(WriteTableFile(cat.lineitem));
  }
  state.SetBytesProcessed(state.iterations() * cat.lineitem.EstimateBytes());
}
BENCHMARK(BM_StorageEncodeLineitem);

void BM_StorageScanWithPushdown(benchmark::State& state) {
  const Catalog& cat = BenchCatalog();
  const std::string bytes = WriteTableFile(cat.lineitem);
  ColumnRange range;
  range.column = "l_shipdate";
  range.lo = static_cast<double>(DateFromCivil(1994, 1, 1));
  range.hi = static_cast<double>(DateFromCivil(1994, 2, 1));
  for (auto _ : state) {
    auto r = ScanTableFile(bytes, {"l_extendedprice", "l_discount"}, {range});
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_StorageScanWithPushdown);

LogicalNodePtr AdHocQuery() {
  return LSort(
      LAggregate(
          LFilter(LJoin(LJoin(LScan("orders"), LScan("customer"),
                              {"o_custkey"}, {"c_custkey"}),
                        LScan("nation"), {"c_nationkey"}, {"n_nationkey"}),
                  Eq(Col("c_mktsegment"), Lit("BUILDING"))),
          {"n_name"}, {{AggOp::kSum, Col("o_totalprice"), "revenue"}}),
      {{"revenue", false}}, 10);
}

void BM_OptimizeAndLower(benchmark::State& state) {
  const Catalog& cat = BenchCatalog();
  const TableResolver resolver = TableResolver::ForCatalog(cat);
  for (auto _ : state) {
    auto optimized = Optimize(AdHocQuery(), resolver);
    auto lowered = LowerToStagePlan(*optimized, resolver, PlanConfig{4});
    benchmark::DoNotOptimize(lowered);
  }
}
BENCHMARK(BM_OptimizeAndLower);

void BM_LogicalQueryExecution(benchmark::State& state) {
  // arg 0: optimized or not — quantifies what pushdown+pruning+broadcast buy.
  const Catalog& cat = BenchCatalog();
  const TableResolver resolver = TableResolver::ForCatalog(cat);
  LogicalNodePtr plan = AdHocQuery();
  if (state.range(0) == 1) {
    plan = *Optimize(plan, resolver);
  }
  const StagePlan lowered = *LowerToStagePlan(plan, resolver, PlanConfig{4});
  PlanExecutor executor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Execute(lowered));
  }
}
BENCHMARK(BM_LogicalQueryExecution)->Arg(0)->Arg(1);

void BM_GenerateTpch(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateTpch(0.002));
  }
}
BENCHMARK(BM_GenerateTpch);

}  // namespace
}  // namespace cackle::exec

BENCHMARK_MAIN();
