// Microbenchmarks of the executor's operators (google-benchmark): scans
// with predicates, hash joins, aggregations, partitioning, and a full
// TPC-H query.

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "common/thread_pool.h"
#include "exec/datagen.h"
#include "exec/expr.h"
#include "exec/flat_hash.h"
#include "exec/op_context.h"
#include "exec/operators.h"
#include "exec/plan.h"
#include "exec/logical.h"
#include "exec/lowering.h"
#include "exec/optimizer.h"
#include "exec/storage.h"
#include "exec/tpch_queries.h"

namespace cackle::exec {
namespace {

const Catalog& BenchCatalog() {
  static const Catalog* cat = new Catalog(GenerateTpch(0.01));
  return *cat;
}

void BM_FilterLineitem(benchmark::State& state) {
  const Catalog& cat = BenchCatalog();
  const ExprPtr pred = And(Ge(Col("l_discount"), Lit(0.05)),
                           Le(Col("l_discount"), Lit(0.07)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Filter(cat.lineitem, pred));
  }
  state.SetItemsProcessed(state.iterations() * cat.lineitem.num_rows());
}
BENCHMARK(BM_FilterLineitem);

void BM_HashJoinOrdersLineitem(benchmark::State& state) {
  const Catalog& cat = BenchCatalog();
  const Table orders = SelectColumns(cat.orders, {"o_orderkey", "o_custkey"});
  const Table line = SelectColumns(cat.lineitem, {"l_orderkey", "l_quantity"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        HashJoin(line, {"l_orderkey"}, orders, {"o_orderkey"}));
  }
  state.SetItemsProcessed(state.iterations() * line.num_rows());
}
BENCHMARK(BM_HashJoinOrdersLineitem);

void BM_HashAggregateLineitem(benchmark::State& state) {
  const Catalog& cat = BenchCatalog();
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashAggregate(
        cat.lineitem, {"l_returnflag", "l_linestatus"},
        {{AggOp::kSum, Col("l_quantity"), "sum_qty"},
         {AggOp::kCount, nullptr, "cnt"}}));
  }
  state.SetItemsProcessed(state.iterations() * cat.lineitem.num_rows());
}
BENCHMARK(BM_HashAggregateLineitem);

// ---------------------------------------------------------------------------
// Intra-operator knob variants of the join and aggregate kernels. Each
// variant name maps to its scalar sibling by dropping the suffix
// (bench_compare.py pairs them), so the artifact records what every knob
// buys — or costs — against the exact same workload in the same run. On a
// 1-core CI runner the MorselN variants mostly measure scheduling overhead
// and determinism, not speedup; the artifact header records available_cores
// so readers can tell which regime a number came from.
// ---------------------------------------------------------------------------

void JoinWithKnobs(benchmark::State& state, int pool_threads,
                   int64_t morsel_rows, int radix_bits, bool bloom) {
  const Catalog& cat = BenchCatalog();
  const Table orders = SelectColumns(cat.orders, {"o_orderkey", "o_custkey"});
  const Table line = SelectColumns(cat.lineitem, {"l_orderkey", "l_quantity"});
  std::unique_ptr<ThreadPool> pool;
  if (pool_threads > 1) pool = std::make_unique<ThreadPool>(pool_threads);
  OpExecContext ctx;
  ctx.pool = pool.get();
  ctx.morsel_rows = morsel_rows;
  ctx.radix_bits = radix_bits;
  ctx.bloom_pushdown = bloom;
  const ScopedOpExecContext scope(&ctx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        HashJoin(line, {"l_orderkey"}, orders, {"o_orderkey"}));
  }
  state.SetItemsProcessed(state.iterations() * line.num_rows());
}

void BM_HashJoinOrdersLineitemRadix(benchmark::State& state) {
  JoinWithKnobs(state, 1, 0, /*radix_bits=*/4, false);
}
BENCHMARK(BM_HashJoinOrdersLineitemRadix);

void BM_HashJoinOrdersLineitemBloom(benchmark::State& state) {
  JoinWithKnobs(state, 1, 0, 0, /*bloom=*/true);
}
BENCHMARK(BM_HashJoinOrdersLineitemBloom);

void BM_HashJoinOrdersLineitemMorsel2(benchmark::State& state) {
  JoinWithKnobs(state, 2, /*morsel_rows=*/4096, 0, false);
}
BENCHMARK(BM_HashJoinOrdersLineitemMorsel2);

void BM_HashJoinOrdersLineitemMorsel4(benchmark::State& state) {
  JoinWithKnobs(state, 4, /*morsel_rows=*/4096, /*radix_bits=*/4, false);
}
BENCHMARK(BM_HashJoinOrdersLineitemMorsel4);

void AggregateWithKnobs(benchmark::State& state, int pool_threads,
                        int64_t morsel_rows) {
  const Catalog& cat = BenchCatalog();
  ThreadPool pool(pool_threads);
  OpExecContext ctx;
  ctx.pool = &pool;
  ctx.morsel_rows = morsel_rows;
  const ScopedOpExecContext scope(&ctx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashAggregate(
        cat.lineitem, {"l_returnflag", "l_linestatus"},
        {{AggOp::kSum, Col("l_quantity"), "sum_qty"},
         {AggOp::kCount, nullptr, "cnt"}}));
  }
  state.SetItemsProcessed(state.iterations() * cat.lineitem.num_rows());
}

void BM_HashAggregateLineitemMorsel2(benchmark::State& state) {
  AggregateWithKnobs(state, 2, 4096);
}
BENCHMARK(BM_HashAggregateLineitemMorsel2);

void BM_HashAggregateLineitemMorsel4(benchmark::State& state) {
  AggregateWithKnobs(state, 4, 4096);
}
BENCHMARK(BM_HashAggregateLineitemMorsel4);

void BM_FilterDictStringPredicate(benchmark::State& state) {
  // String equality over a dictionary-encoded column: the predicate is
  // evaluated once per dictionary entry, then applied per row via codes.
  const Catalog& cat = BenchCatalog();
  const ExprPtr pred = Eq(Col("l_returnflag"), Lit(std::string("R")));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Filter(cat.lineitem, pred));
  }
  state.SetItemsProcessed(state.iterations() * cat.lineitem.num_rows());
}
BENCHMARK(BM_FilterDictStringPredicate);

void BM_FlatMapBuildProbe(benchmark::State& state) {
  // The flat open-addressing table in isolation: build 64k keys, probe 256k.
  std::vector<uint64_t> keys;
  keys.reserve(1 << 16);
  uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (int i = 0; i < (1 << 16); ++i) {
    x = Mix64(x + 0xbf58476d1ce4e5b9ULL);
    keys.push_back(x);
  }
  for (auto _ : state) {
    FlatMap64 map(static_cast<int64_t>(keys.size()));
    bool inserted = false;
    for (size_t i = 0; i < keys.size(); ++i) {
      map.FindOrInsert(keys[i], static_cast<int64_t>(i), &inserted);
    }
    int64_t hits = 0;
    for (int rep = 0; rep < 4; ++rep) {
      for (uint64_t k : keys) hits += map.Find(k) >= 0;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(keys.size()) * 5);
}
BENCHMARK(BM_FlatMapBuildProbe);

void BM_GatherRowsLineitem(benchmark::State& state) {
  // Bulk materialization kernel: copy every other lineitem row.
  const Catalog& cat = BenchCatalog();
  std::vector<int64_t> rows;
  rows.reserve(static_cast<size_t>(cat.lineitem.num_rows() / 2));
  for (int64_t r = 0; r < cat.lineitem.num_rows(); r += 2) rows.push_back(r);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cat.lineitem.GatherRows(rows));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(rows.size()));
}
BENCHMARK(BM_GatherRowsLineitem);

void BM_DictEncodeShipmode(benchmark::State& state) {
  // Dictionary construction over a low-cardinality string column.
  const Catalog& cat = BenchCatalog();
  const int col = cat.lineitem.ColumnIndex("l_shipmode");
  for (auto _ : state) {
    Column copy(DataType::kString);
    copy.strings() = cat.lineitem.column(col).strings();
    benchmark::DoNotOptimize(copy.DictEncode());
  }
  state.SetItemsProcessed(state.iterations() * cat.lineitem.num_rows());
}
BENCHMARK(BM_DictEncodeShipmode);

void BM_PartitionByHash(benchmark::State& state) {
  const Catalog& cat = BenchCatalog();
  const Table line = SelectColumns(cat.lineitem, {"l_orderkey", "l_quantity"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionByHash(line, {"l_orderkey"}, 8));
  }
  state.SetItemsProcessed(state.iterations() * line.num_rows());
}
BENCHMARK(BM_PartitionByHash);

void BM_TpchQuery(benchmark::State& state) {
  const Catalog& cat = BenchCatalog();
  const int query = static_cast<int>(state.range(0));
  PlanExecutor executor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        executor.Execute(BuildTpchPlan(query, cat, PlanConfig{4})));
  }
}
BENCHMARK(BM_TpchQuery)->Arg(1)->Arg(3)->Arg(6)->Arg(9)->Arg(18)->Arg(21);

// ---------------------------------------------------------------------------
// End-to-end multi-stage plan execution: persistent work-stealing pool vs
// the previous per-stage thread-spawn design. The plan is wide and deep with
// deliberately small tasks, so scheduling overhead — not operator work —
// dominates, which is exactly the regime where spawning fresh threads for
// every stage hurts.
// ---------------------------------------------------------------------------

/// Replica of the pre-pool executor: fresh std::threads per stage pulling
/// task indices from a shared counter, then a serial shuffle. Kept here as
/// the benchmark baseline the pool is measured against.
Table ExecuteSpawnPerStage(const StagePlan& plan, int num_threads) {
  std::vector<StageOutput> outputs(plan.stages.size());
  for (size_t i = 0; i < plan.stages.size(); ++i) {
    const PlanStage& stage = plan.stages[i];
    std::vector<Table> task_outputs(static_cast<size_t>(stage.num_tasks));
    auto run_one_task = [&](int t) {
      TaskInput input;
      input.tables.reserve(stage.deps.size());
      for (size_t d = 0; d < stage.deps.size(); ++d) {
        const StageOutput& up = outputs[static_cast<size_t>(stage.deps[d])];
        const size_t part = stage.broadcast[d] ? 0 : static_cast<size_t>(t);
        input.tables.push_back(&up.partitions[part]);
      }
      task_outputs[static_cast<size_t>(t)] = stage.run(t, input);
    };
    if (num_threads <= 1 || stage.num_tasks == 1) {
      for (int t = 0; t < stage.num_tasks; ++t) run_one_task(t);
    } else {
      std::atomic<int> next_task{0};
      const int workers = std::min(num_threads, stage.num_tasks);
      std::vector<std::thread> pool;
      pool.reserve(static_cast<size_t>(workers));
      for (int w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
          for (;;) {
            const int t = next_task.fetch_add(1);
            if (t >= stage.num_tasks) break;
            run_one_task(t);
          }
        });
      }
      for (std::thread& worker : pool) worker.join();
    }
    StageOutput& out = outputs[i];
    if (stage.output_partitions == 1) {
      out.partitions.push_back(Concat(task_outputs));
    } else {
      std::vector<std::vector<Table>> per_partition(
          static_cast<size_t>(stage.output_partitions));
      for (const Table& to : task_outputs) {
        std::vector<Table> parts =
            PartitionByHash(to, stage.output_keys, stage.output_partitions);
        for (size_t p = 0; p < parts.size(); ++p) {
          per_partition[p].push_back(std::move(parts[p]));
        }
      }
      for (auto& group : per_partition) {
        out.partitions.push_back(Concat(group));
      }
    }
  }
  return std::move(outputs.back().partitions[0]);
}

const Table& BenchPlanBase() {
  static const Table* base = [] {
    Table* t = new Table({{"k", DataType::kInt64}, {"v", DataType::kFloat64}});
    uint64_t x = 0x243f6a8885a308d3ULL;
    for (int64_t i = 0; i < 2000; ++i) {
      x = Mix64(x + 0x9e3779b97f4a7c15ULL);
      t->column(0).AppendInt(static_cast<int64_t>(x % 64));
      t->column(1).AppendDouble(static_cast<double>(x % 10007) / 97.0);
    }
    t->FinishBulkAppend();
    return t;
  }();
  return *base;
}

/// `width` independent chains of `depth` small aggregate stages feeding one
/// final combiner: width*depth + 1 stages, each inner stage `tasks`-way.
StagePlan MakeBenchPlan(int width, int depth, int tasks) {
  const Table& base = BenchPlanBase();
  StagePlan plan;
  plan.name = "bench_multistage";
  std::vector<int> chain_ends;
  for (int c = 0; c < width; ++c) {
    int prev = -1;
    for (int l = 0; l < depth; ++l) {
      PlanStage stage;
      stage.label = "c" + std::to_string(c) + "_l" + std::to_string(l);
      stage.num_tasks = tasks;
      const bool last_in_chain = (l + 1 == depth);
      stage.output_keys = last_in_chain ? std::vector<std::string>{}
                                        : std::vector<std::string>{"k"};
      stage.output_partitions = last_in_chain ? 1 : tasks;
      if (l == 0) {
        stage.run = [&base, tasks](int t, const TaskInput&) {
          const Table slice =
              base.Slice(base.num_rows() * t / tasks,
                         base.num_rows() * (t + 1) / tasks);
          return HashAggregate(slice, {"k"}, {{AggOp::kSum, Col("v"), "v"}});
        };
      } else {
        stage.deps = {prev};
        stage.broadcast = {false};
        stage.run = [](int, const TaskInput& in) {
          return HashAggregate(*in.tables[0], {"k"},
                               {{AggOp::kSum, Col("v"), "v"}});
        };
      }
      prev = static_cast<int>(plan.stages.size());
      plan.stages.push_back(std::move(stage));
    }
    chain_ends.push_back(prev);
  }
  PlanStage combine;
  combine.label = "combine";
  combine.deps = chain_ends;
  combine.broadcast.assign(chain_ends.size(), true);
  combine.num_tasks = 1;
  combine.output_partitions = 1;
  combine.run = [](int, const TaskInput& in) {
    std::vector<Table> all;
    all.reserve(in.tables.size());
    for (const Table* t : in.tables) all.push_back(*t);
    return HashAggregate(Concat(all), {"k"},
                         {{AggOp::kSum, Col("v"), "total"}});
  };
  plan.stages.push_back(std::move(combine));
  return plan;
}

void BM_MultiStagePlanSpawn(benchmark::State& state) {
  const StagePlan plan = MakeBenchPlan(4, 6, 4);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExecuteSpawnPerStage(plan, threads));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plan.stages.size()));
}
BENCHMARK(BM_MultiStagePlanSpawn)->Arg(4);

void BM_MultiStagePlanPool(benchmark::State& state) {
  // Persistent pool, per-stage barriers (pipeline off): isolates what
  // reusing workers buys over spawning them.
  const StagePlan plan = MakeBenchPlan(4, 6, 4);
  ExecutorOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  options.pipeline = false;
  PlanExecutor executor(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Execute(plan));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plan.stages.size()));
}
BENCHMARK(BM_MultiStagePlanPool)->Arg(4);

void BM_MultiStagePlanPipelined(benchmark::State& state) {
  // Full DAG pipelining: independent chains overlap, shuffle steps run as
  // pool tasks too.
  const StagePlan plan = MakeBenchPlan(4, 6, 4);
  ExecutorOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  options.pipeline = true;
  PlanExecutor executor(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Execute(plan));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plan.stages.size()));
}
BENCHMARK(BM_MultiStagePlanPipelined)->Arg(4);

void BM_StorageEncodeLineitem(benchmark::State& state) {
  const Catalog& cat = BenchCatalog();
  for (auto _ : state) {
    benchmark::DoNotOptimize(WriteTableFile(cat.lineitem));
  }
  state.SetBytesProcessed(state.iterations() * cat.lineitem.EstimateBytes());
}
BENCHMARK(BM_StorageEncodeLineitem);

void BM_StorageScanWithPushdown(benchmark::State& state) {
  const Catalog& cat = BenchCatalog();
  const std::string bytes = WriteTableFile(cat.lineitem);
  ColumnRange range;
  range.column = "l_shipdate";
  range.lo = static_cast<double>(DateFromCivil(1994, 1, 1));
  range.hi = static_cast<double>(DateFromCivil(1994, 2, 1));
  for (auto _ : state) {
    auto r = ScanTableFile(bytes, {"l_extendedprice", "l_discount"}, {range});
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_StorageScanWithPushdown);

LogicalNodePtr AdHocQuery() {
  return LSort(
      LAggregate(
          LFilter(LJoin(LJoin(LScan("orders"), LScan("customer"),
                              {"o_custkey"}, {"c_custkey"}),
                        LScan("nation"), {"c_nationkey"}, {"n_nationkey"}),
                  Eq(Col("c_mktsegment"), Lit("BUILDING"))),
          {"n_name"}, {{AggOp::kSum, Col("o_totalprice"), "revenue"}}),
      {{"revenue", false}}, 10);
}

void BM_OptimizeAndLower(benchmark::State& state) {
  const Catalog& cat = BenchCatalog();
  const TableResolver resolver = TableResolver::ForCatalog(cat);
  for (auto _ : state) {
    auto optimized = Optimize(AdHocQuery(), resolver);
    auto lowered = LowerToStagePlan(*optimized, resolver, PlanConfig{4});
    benchmark::DoNotOptimize(lowered);
  }
}
BENCHMARK(BM_OptimizeAndLower);

void BM_LogicalQueryExecution(benchmark::State& state) {
  // arg 0: optimized or not — quantifies what pushdown+pruning+broadcast buy.
  const Catalog& cat = BenchCatalog();
  const TableResolver resolver = TableResolver::ForCatalog(cat);
  LogicalNodePtr plan = AdHocQuery();
  if (state.range(0) == 1) {
    plan = *Optimize(plan, resolver);
  }
  const StagePlan lowered = *LowerToStagePlan(plan, resolver, PlanConfig{4});
  PlanExecutor executor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Execute(lowered));
  }
}
BENCHMARK(BM_LogicalQueryExecution)->Arg(0)->Arg(1);

void BM_GenerateTpch(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateTpch(0.002));
  }
}
BENCHMARK(BM_GenerateTpch);

}  // namespace
}  // namespace cackle::exec

#ifndef CACKLE_BENCH_CXX_FLAGS
#define CACKLE_BENCH_CXX_FLAGS "(unknown)"
#endif

int main(int argc, char** argv) {
  // Surface the execution environment in the JSON context: the committed
  // artifact must say on its face whether parallel-variant numbers came
  // from a 1-core CI runner (determinism coverage only) or a real machine.
  benchmark::AddCustomContext(
      "available_cores",
      std::to_string(std::thread::hardware_concurrency()));
  benchmark::AddCustomContext("cxx_flags", CACKLE_BENCH_CXX_FLAGS);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
