// Microbenchmarks of the strategy stack's hot paths (google-benchmark):
// Fenwick-backed sliding-window percentiles, the full expert family's
// per-second evaluation, multiplicative-weights updates, allocation-model
// stepping, and oracle computation.

#include <benchmark/benchmark.h>

#include <cmath>

#include "common/fenwick.h"
#include "common/rng.h"
#include "strategy/allocation_model.h"
#include "strategy/dynamic_strategy.h"
#include "strategy/multiplicative_weights.h"
#include "strategy/oracle.h"
#include "strategy/workload_history.h"

namespace cackle {
namespace {

void BM_FenwickInsertErase(benchmark::State& state) {
  FenwickCounter counter(1 << 20);
  Rng rng(1);
  std::vector<int64_t> values;
  for (int i = 0; i < 4096; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextBounded(1 << 20)));
    counter.Insert(values.back());
  }
  size_t i = 0;
  for (auto _ : state) {
    counter.Erase(values[i % values.size()]);
    counter.Insert(values[(i + 1) % values.size()]);
    ++i;
  }
}
BENCHMARK(BM_FenwickInsertErase);

void BM_FenwickPercentile(benchmark::State& state) {
  FenwickCounter counter(1 << 20);
  Rng rng(2);
  for (int i = 0; i < 3600; ++i) {
    counter.Insert(static_cast<int64_t>(rng.NextBounded(1 << 20)));
  }
  double p = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.Percentile(p));
    p = p >= 100.0 ? 1.0 : p + 1.0;
  }
}
BENCHMARK(BM_FenwickPercentile);

void BM_WorkloadHistoryAppend(benchmark::State& state) {
  WorkloadHistory history;
  Rng rng(3);
  int64_t demand = 500;
  for (auto _ : state) {
    demand = std::max<int64_t>(0, demand + rng.NextInt(-20, 20));
    history.Append(demand);
  }
}
BENCHMARK(BM_WorkloadHistoryAppend);

void BM_DynamicStrategySecond(benchmark::State& state) {
  CostModel cost;
  DynamicStrategy dynamic(&cost);
  WorkloadHistory history;
  Rng rng(4);
  int64_t demand = 500;
  // Warm the history so all lookbacks are populated.
  for (int i = 0; i < 4000; ++i) {
    demand = std::max<int64_t>(0, demand + rng.NextInt(-20, 20));
    history.Append(demand);
    dynamic.Target(history);
  }
  for (auto _ : state) {
    demand = std::max<int64_t>(0, demand + rng.NextInt(-20, 20));
    history.Append(demand);
    benchmark::DoNotOptimize(dynamic.Target(history));
  }
}
BENCHMARK(BM_DynamicStrategySecond);

void BM_MultiplicativeWeightsUpdate(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  MultiplicativeWeights mw(n, 0.25);
  Rng rng(5);
  std::vector<double> penalties(n);
  for (auto _ : state) {
    for (double& p : penalties) p = rng.NextDouble();
    mw.Update(penalties);
  }
}
BENCHMARK(BM_MultiplicativeWeightsUpdate)->Arg(64)->Arg(666);

void BM_AllocationModelStep(benchmark::State& state) {
  CostModel cost;
  AllocationModel model(&cost);
  Rng rng(6);
  int64_t demand = 500;
  int64_t target = 400;
  for (auto _ : state) {
    demand = std::max<int64_t>(0, demand + rng.NextInt(-20, 20));
    if ((model.now_s() & 7) == 0) target = rng.NextInt(0, 1000);
    benchmark::DoNotOptimize(model.Step(target, demand));
  }
}
BENCHMARK(BM_AllocationModelStep);

void BM_OracleOneHour(benchmark::State& state) {
  CostModel cost;
  Rng rng(7);
  std::vector<int64_t> demand(3600);
  int64_t d = 500;
  for (auto& v : demand) {
    d = std::max<int64_t>(0, d + rng.NextInt(-30, 30));
    v = d;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeOracleCost(demand, cost));
  }
}
BENCHMARK(BM_OracleOneHour);

}  // namespace
}  // namespace cackle

BENCHMARK_MAIN();
