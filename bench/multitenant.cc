// Multi-tenant sweep: 100 / 1k / 10k tenants sharing one engine under the
// default mixed workload. Reports per-tenant cost isolation (dispersion of
// per-query invoice cost across tenants — flat when attribution is fair)
// and p99 stability (global and worst-tenant p99 vs the single-tenant
// baseline). Emits BENCH_multitenant.json; EXPERIMENTS.md documents the
// schema.

#include <cmath>
#include <fstream>

#include "bench/bench_common.h"
#include "common/json_writer.h"
#include "common/stats.h"
#include "engine/engine.h"
#include "sim/sweep_runner.h"

namespace {

using namespace cackle;
using namespace cackle::bench;

struct CellResult {
  int64_t tenants_requested = 0;
  int64_t tenants_active = 0;  // tenants that actually received queries
  int64_t arrivals = 0;
  EngineResult result;
  // Per-tenant per-completed-query invoice cost, one entry per tenant with
  // at least one completed query.
  std::vector<double> cost_per_query;
  // Per-tenant interactive p99, one entry per tenant with samples.
  std::vector<double> tenant_p99_s;
};

CellResult RunCell(int64_t num_tenants, uint64_t seed) {
  WorkloadOptions wopts = DefaultWorkload();
  wopts.num_tenants = num_tenants;
  wopts.tenant_skew = 1.0;  // Zipf-ish: a few heavy tenants, a long tail
  wopts.seed = seed;
  WorkloadGenerator gen(&Library());
  const auto arrivals = gen.Generate(wopts);

  CostModel cost;
  // A fresh sink per cell: the ledger finalizes once per engine run, and
  // per-tenant invoices exist only when a ledger is attached.
  Observability obs;
  EngineOptions opts;
  opts.dynamic = DefaultDynamicOptions();
  opts.observability = &obs;
  // A generous admission cap keeps the weighted-fair (DRR) admission path
  // exercised at arrival peaks without turning the sweep into a queueing
  // benchmark (no shed SLO is set; the cap only trims the highest bursts).
  opts.admission.max_outstanding_tasks = 1'024;
  CackleEngine engine(&cost, opts);

  CellResult cell;
  cell.tenants_requested = num_tenants;
  cell.arrivals = static_cast<int64_t>(arrivals.size());
  cell.result = engine.Run(arrivals, Library());
  cell.tenants_active = static_cast<int64_t>(cell.result.tenants.size());
  for (const auto& [tenant, outcome] : cell.result.tenants) {
    if (outcome.queries_completed > 0) {
      cell.cost_per_query.push_back(
          outcome.invoice_dollars /
          static_cast<double>(outcome.queries_completed));
    }
    if (!outcome.latencies_s.samples().empty()) {
      cell.tenant_p99_s.push_back(outcome.latencies_s.Percentile(99));
    }
  }
  return cell;
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

// Coefficient of variation: the cost-isolation headline. 0 = every tenant
// pays exactly the same per completed query.
double CoefficientOfVariation(const std::vector<double>& v) {
  const double mean = Mean(v);
  if (v.size() < 2 || mean <= 0.0) return 0.0;
  double ss = 0.0;
  for (double x : v) ss += (x - mean) * (x - mean);
  return std::sqrt(ss / static_cast<double>(v.size() - 1)) / mean;
}

void WriteArtifact(const std::vector<CellResult>& cells, double baseline_p99) {
  std::string path = "BENCH_multitenant.json";
  if (const char* dir = std::getenv("CACKLE_BENCH_OUT_DIR");
      dir != nullptr && dir[0] != '\0') {
    path = std::string(dir) + "/" + path;
  }
  std::ofstream out(path);
  JsonWriter w(out);
  w.BeginObject();
  w.Field("schema_version", static_cast<int64_t>(1));
  w.Field("bench", "multitenant");
  w.Field("fast_mode", FastMode());
  w.Field("baseline_p99_s", baseline_p99);
  w.Key("cells");
  w.BeginArray();
  for (const CellResult& c : cells) {
    const EngineResult& r = c.result;
    const double p99 = r.latencies_s.Percentile(99);
    w.BeginObject();
    w.Field("tenants", c.tenants_requested);
    w.Field("tenants_active", c.tenants_active);
    w.Field("arrivals", c.arrivals);
    w.Field("completed", r.queries_completed);
    w.Field("shed", r.queries_shed);
    w.Field("deferred", r.queries_deferred);
    w.Field("total_cost", r.total_cost());
    w.Field("p99_s", p99);
    w.Field("p99_vs_single_tenant",
            baseline_p99 > 0.0 ? p99 / baseline_p99 : 0.0);
    w.Key("cost_isolation");
    w.BeginObject();
    w.Field("mean_cost_per_query", Mean(c.cost_per_query));
    w.Field("cost_per_query_cv", CoefficientOfVariation(c.cost_per_query));
    w.Field("cost_per_query_p99",
            Percentile(c.cost_per_query, 99));
    w.EndObject();
    w.Key("latency_isolation");
    w.BeginObject();
    w.Field("worst_tenant_p99_s", Percentile(c.tenant_p99_s, 100));
    w.Field("median_tenant_p99_s", Percentile(c.tenant_p99_s, 50));
    w.EndObject();
    w.Key("counters");
    w.BeginObject();
    w.Field("tenant_cap_deferrals", r.tenant_cap_deferrals);
    w.Field("tenant_queue_peak", r.tenant_queue_peak);
    w.Field("admission_queue_peak", r.admission_queue_peak);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  out << "\n";
  std::cout << "\nwrote " << path << "\n";
}

}  // namespace

int main() {
  PrintHeader("Multi-tenant sweep: cost isolation and p99 stability",
              "One engine shared by 100/1k/10k tenants under the default "
              "mixed workload; per-tenant invoices from the cost ledger.");

  std::vector<int64_t> sweep = {100, 1'000, 10'000};
  if (FastMode()) sweep = {50, 200, 1'000};

  // Cell 0 is the single-tenant baseline the stability ratios are against;
  // cells 1..N are the tenant-count sweep. Deterministic at any thread
  // count: seeds derive from the cell index.
  SweepRunner runner(SweepThreads());
  const std::vector<CellResult> cells = runner.Map<CellResult>(
      static_cast<int>(sweep.size()) + 1, [&](int cell) {
        const int64_t tenants = cell == 0 ? 1 : sweep[cell - 1];
        return RunCell(tenants, SweepRunner::CellSeed(1225, cell));
      });
  const double baseline_p99 = cells[0].result.latencies_s.Percentile(99);

  TablePrinter table({"tenants", "arrivals", "completed", "p99_s",
                      "p99_vs_1t", "cost_per_q_cv", "worst_tenant_p99_s",
                      "total_cost"});
  for (const CellResult& c : cells) {
    const double p99 = c.result.latencies_s.Percentile(99);
    table.BeginRow();
    table.AddCell(c.tenants_requested);
    table.AddCell(c.arrivals);
    table.AddCell(c.result.queries_completed);
    table.AddCell(p99, 2);
    table.AddCell(baseline_p99 > 0.0 ? p99 / baseline_p99 : 0.0, 3);
    table.AddCell(CoefficientOfVariation(c.cost_per_query), 4);
    table.AddCell(Percentile(c.tenant_p99_s, 100), 2);
    table.AddCell(c.result.total_cost(), 2);
  }
  table.PrintText(std::cout);

  WriteArtifact({cells.begin() + 1, cells.end()}, baseline_p99);
  return 0;
}
