// Simulation-kernel microbench: event throughput of the two schedulers,
// end-to-end engine queries/s, and parallel sweep speedup.
//
// Emits google-benchmark-compatible JSON (benchmarks carry
// events_per_second / items_per_second) so scripts/bench_compare.py can
// diff runs, plus a summary block with the Calendar-vs-Heap speedups, the
// sweep scaling curve, and a cross-scheduler checksum-identity bit. The
// committed artifact lives at bench/results/BENCH_sim_core.json.
//
// Scheduler mixes:
//  - Hold: the classic hold model — prime the queue with a large resident
//    population, then repeatedly (pop earliest, schedule a replacement a
//    random distance ahead). Steady-state schedule+pop cost at scale; this
//    is the figure the >=5x acceptance bar applies to.
//  - BurstDrain: schedule a full workload burst (duplicate-heavy near
//    timestamps), then drain. Insert-then-pop phases, like engine start-up.
//  - CancelChurn: schedule, cancel half by handle, drain the rest. The
//    tombstone/compaction path.
//
// Usage: sim_core [--fast]. CACKLE_BENCH_OUT_DIR picks the artifact dir;
// CACKLE_SWEEP_THREADS is intentionally ignored here — the sweep section
// measures 1/2/4 threads itself.

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/json_writer.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "sim/simulation.h"
#include "sim/sweep_runner.h"

namespace {

using namespace cackle;
using namespace cackle::bench;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

SimOptions MakeOptions(SimScheduler scheduler) {
  SimOptions opts;
  opts.scheduler = scheduler;
  return opts;
}

struct Measurement {
  std::string name;       // e.g. "SimCore/Hold/Calendar"
  double seconds = 0.0;
  double events_per_second = 0.0;  // 0 = report items_per_second instead
  double items_per_second = 0.0;
  int64_t iterations = 0;
};

/// Hold model: resident population `population`, `holds` pop+schedule
/// pairs. Each hold is 2 events of work (one executed, one scheduled).
Measurement RunHold(SimScheduler scheduler, const char* label,
                    int64_t population, int64_t holds) {
  Simulation sim(MakeOptions(scheduler));
  Rng rng(0xB0BACAFEULL);
  int64_t fired = 0;
  for (int64_t i = 0; i < population; ++i) {
    sim.ScheduleAt(static_cast<SimTimeMs>(rng.NextBounded(1 << 12)),
                   [&fired] { ++fired; });
  }
  const double start = NowSeconds();
  // Drive the hold loop from outside: run until at least one more event has
  // executed, then schedule one replacement per executed event so the
  // resident population stays constant.
  int64_t remaining = holds;
  while (remaining > 0) {
    const int64_t before = sim.executed_events();
    // The earliest event fires at its own timestamp; RunUntil with the
    // current frontier executes at least one event because the queue is
    // never empty here.
    while (sim.executed_events() == before) {
      sim.RunUntil(sim.NowMs() + 64);
    }
    const int64_t executed_now = sim.executed_events() - before;
    for (int64_t i = 0; i < executed_now; ++i) {
      sim.ScheduleAt(sim.NowMs() +
                         static_cast<SimTimeMs>(1 + rng.NextBounded(1 << 12)),
                     [&fired] { ++fired; });
    }
    remaining -= executed_now;
  }
  const double elapsed = NowSeconds() - start;
  Measurement m;
  m.name = std::string("SimCore/Hold/") + label;
  m.seconds = elapsed;
  m.iterations = holds;
  // One hold = one executed event + one schedule.
  m.events_per_second = elapsed > 0 ? 2.0 * static_cast<double>(holds) /
                                          elapsed
                                    : 0.0;
  return m;
}

Measurement RunBurstDrain(SimScheduler scheduler, const char* label,
                          int64_t events) {
  Simulation sim(MakeOptions(scheduler));
  Rng rng(0xDEADF00DULL);
  int64_t fired = 0;
  const double start = NowSeconds();
  for (int64_t i = 0; i < events; ++i) {
    // Duplicate-heavy: ~16 events per distinct millisecond.
    sim.ScheduleAt(static_cast<SimTimeMs>(rng.NextBounded(
                       static_cast<uint64_t>(events / 16 + 1))),
                   [&fired] { ++fired; });
  }
  sim.RunToCompletion();
  const double elapsed = NowSeconds() - start;
  Measurement m;
  m.name = std::string("SimCore/BurstDrain/") + label;
  m.seconds = elapsed;
  m.iterations = events;
  // One schedule + one execute per event.
  m.events_per_second =
      elapsed > 0 ? 2.0 * static_cast<double>(events) / elapsed : 0.0;
  return m;
}

Measurement RunCancelChurn(SimScheduler scheduler, const char* label,
                           int64_t events) {
  Simulation sim(MakeOptions(scheduler));
  Rng rng(0xC0FFEEULL);
  int64_t fired = 0;
  std::vector<uint64_t> ids;
  ids.reserve(static_cast<size_t>(events));
  const double start = NowSeconds();
  for (int64_t i = 0; i < events; ++i) {
    ids.push_back(sim.ScheduleAt(
        static_cast<SimTimeMs>(rng.NextBounded(1 << 20)),
        [&fired] { ++fired; }));
  }
  for (size_t i = 0; i < ids.size(); i += 2) sim.Cancel(ids[i]);
  sim.RunToCompletion();
  const double elapsed = NowSeconds() - start;
  Measurement m;
  m.name = std::string("SimCore/CancelChurn/") + label;
  m.seconds = elapsed;
  m.iterations = events;
  // Schedule + (cancel | execute) per event.
  m.events_per_second =
      elapsed > 0 ? 2.0 * static_cast<double>(events) / elapsed : 0.0;
  return m;
}

/// End-to-end: a small engine run; throughput in queries/s.
Measurement RunEndToEnd(SimScheduler scheduler, const char* label,
                        int64_t queries) {
  WorkloadOptions wl;
  wl.num_queries = queries;
  wl.duration_ms = kMillisPerHour / 6;
  wl.arrival_period_ms = kMillisPerHour / 18;
  wl.seed = 4242;
  WorkloadGenerator gen(&Library());
  const auto arrivals = gen.Generate(wl);
  CostModel cost;
  EngineOptions opts;
  opts.dynamic = DefaultDynamicOptions();
  opts.sim.scheduler = scheduler;
  const double start = NowSeconds();
  CackleEngine engine(&cost, opts);
  const EngineResult r = engine.Run(arrivals, Library());
  const double elapsed = NowSeconds() - start;
  Measurement m;
  m.name = std::string("SimCore/EngineQueries/") + label;
  m.seconds = elapsed;
  m.iterations = r.queries_completed;
  m.items_per_second =
      elapsed > 0 ? static_cast<double>(r.queries_completed) / elapsed : 0.0;
  return m;
}

/// One sweep cell for the parallel-speedup section: a small engine run.
uint64_t SweepCellChecksum(int cell, int64_t queries) {
  WorkloadOptions wl;
  wl.num_queries = queries;
  wl.duration_ms = kMillisPerHour / 12;
  wl.arrival_period_ms = kMillisPerHour / 36;
  wl.seed = SweepRunner::CellSeed(99, cell);
  WorkloadGenerator gen(&Library());
  const auto arrivals = gen.Generate(wl);
  CostModel cost;
  EngineOptions opts;
  opts.dynamic = DefaultDynamicOptions();
  CackleEngine engine(&cost, opts);
  const EngineResult r = engine.Run(arrivals, Library());
  uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h *= 1099511628211ULL;
  };
  mix(static_cast<uint64_t>(r.makespan_ms));
  mix(static_cast<uint64_t>(r.queries_completed));
  mix(static_cast<uint64_t>(r.tasks_on_elastic));
  return h;
}

struct SweepPoint {
  int threads = 1;
  double seconds = 0.0;
  double speedup = 1.0;
  uint64_t checksum = 0;
};

// EngineQueries throughput from the committed BENCH_sim_core.json measured
// BEFORE the task-countdown bookkeeping moved to a struct-of-arrays layout
// (per-query heap vectors inside QueryState back then). Kept here so the
// artifact carries an explicit before/after for that refactor instead of
// relying on readers diffing artifact history.
constexpr double kAosEngineQueriesHeap = 1790.1561532757273;
constexpr double kAosEngineQueriesCalendar = 2073.7827572520955;

}  // namespace

int main(int argc, char** argv) {
  bool fast = FastMode();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
  }

  PrintHeader("Simulation-kernel microbench",
              "Event throughput (hold / burst-drain / cancel-churn), "
              "engine queries/s, parallel sweep scaling.");

  const int64_t population = fast ? 20'000 : 1'000'000;
  const int64_t holds = fast ? 200'000 : 2'000'000;
  const int64_t burst = fast ? 200'000 : 2'000'000;
  const int64_t churn = fast ? 200'000 : 2'000'000;
  const int64_t e2e_queries = fast ? 40 : 150;

  std::vector<Measurement> ms;
  const struct {
    SimScheduler scheduler;
    const char* label;
  } schedulers[] = {{SimScheduler::kBinaryHeap, "Heap"},
                    {SimScheduler::kCalendarQueue, "Calendar"}};
  // Scheduler mixes run best-of-N: this is a single-core host, so one
  // repetition is at the mercy of OS jitter; the max throughput over a few
  // repetitions is the stable estimate of what the code can do.
  const int reps = fast ? 1 : 3;
  const auto best = [reps](const std::function<Measurement()>& run) {
    Measurement best_m = run();
    for (int r = 1; r < reps; ++r) {
      Measurement m = run();
      if (m.events_per_second > best_m.events_per_second) best_m = m;
    }
    return best_m;
  };
  for (const auto& s : schedulers) {
    ms.push_back(best(
        [&] { return RunHold(s.scheduler, s.label, population, holds); }));
    ms.push_back(
        best([&] { return RunBurstDrain(s.scheduler, s.label, burst); }));
    ms.push_back(
        best([&] { return RunCancelChurn(s.scheduler, s.label, churn); }));
    ms.push_back(RunEndToEnd(s.scheduler, s.label, e2e_queries));
  }

  // Parallel sweep: the same cell grid at 1/2/4 threads. Checksums prove
  // the merged results are thread-count invariant; the timing column is an
  // honest measurement on whatever cores this host actually has.
  const int sweep_cells = fast ? 8 : 16;
  const int64_t sweep_queries = fast ? 15 : 40;
  std::vector<SweepPoint> sweep;
  for (const int threads : {1, 2, 4}) {
    SweepRunner runner(threads);
    const double start = NowSeconds();
    const std::vector<uint64_t> cells = runner.Map<uint64_t>(
        sweep_cells,
        [&](int cell) { return SweepCellChecksum(cell, sweep_queries); });
    SweepPoint p;
    p.threads = threads;
    p.seconds = NowSeconds() - start;
    p.checksum = 1469598103934665603ULL;
    for (const uint64_t c : cells) {
      p.checksum = (p.checksum ^ c) * 1099511628211ULL;
    }
    if (!sweep.empty() && p.seconds > 0) {
      p.speedup = sweep.front().seconds / p.seconds;
    }
    sweep.push_back(p);
  }

  // Console report.
  double hold_speedup = 0.0, burst_speedup = 0.0, churn_speedup = 0.0;
  const auto find = [&ms](const std::string& name) -> const Measurement& {
    for (const Measurement& m : ms) {
      if (m.name == name) return m;
    }
    static const Measurement none;
    return none;
  };
  const auto ratio = [&find](const char* mix) {
    const double heap =
        find(std::string("SimCore/") + mix + "/Heap").events_per_second;
    const double cal =
        find(std::string("SimCore/") + mix + "/Calendar").events_per_second;
    return heap > 0 ? cal / heap : 0.0;
  };
  hold_speedup = ratio("Hold");
  burst_speedup = ratio("BurstDrain");
  churn_speedup = ratio("CancelChurn");
  for (const Measurement& m : ms) {
    const double v =
        m.events_per_second > 0 ? m.events_per_second : m.items_per_second;
    std::cout << m.name << ": "
              << static_cast<int64_t>(v) << (m.events_per_second > 0
                                                 ? " events/s"
                                                 : " queries/s")
              << "\n";
  }
  std::cout << "calendar vs heap: hold " << hold_speedup << "x, burst "
            << burst_speedup << "x, cancel-churn " << churn_speedup << "x\n";
  const double soa_heap =
      find("SimCore/EngineQueries/Heap").items_per_second;
  const double soa_calendar =
      find("SimCore/EngineQueries/Calendar").items_per_second;
  if (soa_heap > 0 && soa_calendar > 0) {
    std::cout << "engine queries vs pre-SoA bookkeeping: heap "
              << soa_heap / kAosEngineQueriesHeap << "x, calendar "
              << soa_calendar / kAosEngineQueriesCalendar << "x\n";
  }
  bool checksums_identical = true;
  for (const SweepPoint& p : sweep) {
    checksums_identical &= p.checksum == sweep.front().checksum;
    std::cout << "sweep " << p.threads << " threads: " << p.seconds
              << "s, speedup " << p.speedup << "x\n";
  }
  std::cout << "sweep checksums thread-count invariant: "
            << (checksums_identical ? "yes" : "NO") << "\n";

  // Artifact.
  std::string path = "BENCH_sim_core.json";
  if (const char* dir = std::getenv("CACKLE_BENCH_OUT_DIR");
      dir != nullptr && dir[0] != '\0') {
    path = std::string(dir) + "/" + path;
  }
  std::ofstream out(path);
  JsonWriter w(out);
  w.BeginObject();
  w.Field("schema_version", static_cast<int64_t>(1));
  w.Field("bench", "sim_core");
  w.Field("fast_mode", fast);
  w.Key("context");
  w.BeginObject();
  w.Field("available_cores",
          static_cast<int64_t>(std::thread::hardware_concurrency()));
  w.EndObject();
  w.Key("benchmarks");
  w.BeginArray();
  for (const Measurement& m : ms) {
    w.BeginObject();
    w.Field("name", m.name);
    w.Field("run_name", m.name);
    w.Field("run_type", "iteration");
    w.Field("iterations", m.iterations);
    w.Field("real_time", m.seconds * 1e9);
    w.Field("time_unit", "ns");
    if (m.events_per_second > 0) {
      w.Field("events_per_second", m.events_per_second);
    } else {
      w.Field("items_per_second", m.items_per_second);
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("summary");
  w.BeginObject();
  w.Field("calendar_vs_heap_hold", hold_speedup);
  w.Field("calendar_vs_heap_burst_drain", burst_speedup);
  w.Field("calendar_vs_heap_cancel_churn", churn_speedup);
  if (soa_heap > 0 && soa_calendar > 0) {
    // Before/after for the engine's task-countdown layout: the "before"
    // constants are the committed AoS numbers (see kAosEngineQueries*).
    w.Key("task_bookkeeping_soa");
    w.BeginObject();
    w.Field("before_aos_heap_queries_per_s", kAosEngineQueriesHeap);
    w.Field("before_aos_calendar_queries_per_s", kAosEngineQueriesCalendar);
    w.Field("after_soa_heap_queries_per_s", soa_heap);
    w.Field("after_soa_calendar_queries_per_s", soa_calendar);
    w.Field("heap_speedup_vs_aos", soa_heap / kAosEngineQueriesHeap);
    w.Field("calendar_speedup_vs_aos",
            soa_calendar / kAosEngineQueriesCalendar);
    w.EndObject();
  }
  w.Key("sweep");
  w.BeginArray();
  for (const SweepPoint& p : sweep) {
    w.BeginObject();
    w.Field("threads", p.threads);
    w.Field("seconds", p.seconds);
    w.Field("speedup_vs_1_thread", p.speedup);
    w.Key("checksum").Uint(p.checksum);
    w.EndObject();
  }
  w.EndArray();
  w.Field("sweep_checksums_identical", checksums_identical);
  w.EndObject();
  w.EndObject();
  out << "\n";
  std::cout << "artifact: " << path << "\n";

  return checksums_identical ? 0 : 1;
}
