// Table 1: default workload and environment parameters of the analytical
// model. Prints the configured defaults so they can be checked against the
// paper's table.

#include "bench/bench_common.h"

int main() {
  using namespace cackle;
  bench::PrintHeader(
      "Table 1: Default Workload and Environment Parameters",
      "Source: WorkloadOptions and CostModel defaults.");

  WorkloadOptions w;
  TablePrinter workload({"workload parameter", "value"});
  workload.BeginRow();
  workload.AddCell("Workload Duration");
  workload.AddCell(std::to_string(w.duration_ms / kMillisPerHour) + " hours");
  workload.BeginRow();
  workload.AddCell("# Queries");
  workload.AddCell(w.num_queries);
  workload.BeginRow();
  workload.AddCell("Baseline Load");
  workload.AddCell(FormatDouble(w.baseline_load * 100, 0) + "%");
  workload.BeginRow();
  workload.AddCell("Period Of Query Arrivals");
  workload.AddCell(std::to_string(w.arrival_period_ms / kMillisPerHour) +
                   " hours");
  workload.PrintText(std::cout);
  std::cout << "\n";

  CostModel c;
  TablePrinter env({"environment parameter", "value"});
  env.BeginRow();
  env.AddCell("VM Startup Latency");
  env.AddCell(std::to_string(c.vm_startup_ms / kMillisPerMinute) +
              " minutes");
  env.BeginRow();
  env.AddCell("Minimum VM Billing Time");
  env.AddCell(std::to_string(c.vm_min_billing_ms / kMillisPerMinute) +
              " minute");
  env.BeginRow();
  env.AddCell("Cost of VM (2vCPUs)");
  env.AddCell("$" + FormatDouble(c.vm_cost_per_hour, 2) + "/hour");
  env.BeginRow();
  env.AddCell("Cost of Elastic Pool (2vCPUs)");
  env.AddCell("$" + FormatDouble(c.elastic_cost_per_hour, 2) + "/hour");
  env.BeginRow();
  env.AddCell("Elastic Pool Cost Premium");
  env.AddCell(FormatDouble(c.ElasticPremium(), 1) + "x");
  env.PrintText(std::cout);
  return 0;
}
