file(REMOVE_RECURSE
  "CMakeFiles/ablation_family.dir/ablation_family.cc.o"
  "CMakeFiles/ablation_family.dir/ablation_family.cc.o.d"
  "ablation_family"
  "ablation_family.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
