file(REMOVE_RECURSE
  "CMakeFiles/ablation_vm_speedup.dir/ablation_vm_speedup.cc.o"
  "CMakeFiles/ablation_vm_speedup.dir/ablation_vm_speedup.cc.o.d"
  "ablation_vm_speedup"
  "ablation_vm_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vm_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
