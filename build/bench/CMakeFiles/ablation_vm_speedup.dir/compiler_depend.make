# Empty compiler generated dependencies file for ablation_vm_speedup.
# This may be replaced when dependencies are built.
