file(REMOVE_RECURSE
  "CMakeFiles/extension_batch_delay.dir/extension_batch_delay.cc.o"
  "CMakeFiles/extension_batch_delay.dir/extension_batch_delay.cc.o.d"
  "extension_batch_delay"
  "extension_batch_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_batch_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
