# Empty compiler generated dependencies file for extension_batch_delay.
# This may be replaced when dependencies are built.
