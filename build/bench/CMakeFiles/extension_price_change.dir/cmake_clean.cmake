file(REMOVE_RECURSE
  "CMakeFiles/extension_price_change.dir/extension_price_change.cc.o"
  "CMakeFiles/extension_price_change.dir/extension_price_change.cc.o.d"
  "extension_price_change"
  "extension_price_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_price_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
