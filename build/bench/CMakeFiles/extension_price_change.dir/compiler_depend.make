# Empty compiler generated dependencies file for extension_price_change.
# This may be replaced when dependencies are built.
