file(REMOVE_RECURSE
  "CMakeFiles/extension_spot_interruptions.dir/extension_spot_interruptions.cc.o"
  "CMakeFiles/extension_spot_interruptions.dir/extension_spot_interruptions.cc.o.d"
  "extension_spot_interruptions"
  "extension_spot_interruptions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_spot_interruptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
