# Empty dependencies file for extension_spot_interruptions.
# This may be replaced when dependencies are built.
