# Empty dependencies file for fig01_latency_cdf.
# This may be replaced when dependencies are built.
