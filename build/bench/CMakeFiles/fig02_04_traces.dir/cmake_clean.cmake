file(REMOVE_RECURSE
  "CMakeFiles/fig02_04_traces.dir/fig02_04_traces.cc.o"
  "CMakeFiles/fig02_04_traces.dir/fig02_04_traces.cc.o.d"
  "fig02_04_traces"
  "fig02_04_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_04_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
