# Empty dependencies file for fig02_04_traces.
# This may be replaced when dependencies are built.
