file(REMOVE_RECURSE
  "CMakeFiles/fig05_query_density.dir/fig05_query_density.cc.o"
  "CMakeFiles/fig05_query_density.dir/fig05_query_density.cc.o.d"
  "fig05_query_density"
  "fig05_query_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_query_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
