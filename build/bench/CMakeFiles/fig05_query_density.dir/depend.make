# Empty dependencies file for fig05_query_density.
# This may be replaced when dependencies are built.
