file(REMOVE_RECURSE
  "CMakeFiles/fig06_arrival_period.dir/fig06_arrival_period.cc.o"
  "CMakeFiles/fig06_arrival_period.dir/fig06_arrival_period.cc.o.d"
  "fig06_arrival_period"
  "fig06_arrival_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_arrival_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
