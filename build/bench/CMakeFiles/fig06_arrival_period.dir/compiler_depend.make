# Empty compiler generated dependencies file for fig06_arrival_period.
# This may be replaced when dependencies are built.
