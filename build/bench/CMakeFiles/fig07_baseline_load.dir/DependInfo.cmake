
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig07_baseline_load.cc" "bench/CMakeFiles/fig07_baseline_load.dir/fig07_baseline_load.cc.o" "gcc" "bench/CMakeFiles/fig07_baseline_load.dir/fig07_baseline_load.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/cackle_model.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/cackle_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/cackle_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/strategy/CMakeFiles/cackle_strategy.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/cackle_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cackle_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cackle_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cackle_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
