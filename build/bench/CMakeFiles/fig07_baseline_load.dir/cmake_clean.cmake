file(REMOVE_RECURSE
  "CMakeFiles/fig07_baseline_load.dir/fig07_baseline_load.cc.o"
  "CMakeFiles/fig07_baseline_load.dir/fig07_baseline_load.cc.o.d"
  "fig07_baseline_load"
  "fig07_baseline_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_baseline_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
