# Empty compiler generated dependencies file for fig07_baseline_load.
# This may be replaced when dependencies are built.
