file(REMOVE_RECURSE
  "CMakeFiles/fig08_elastic_premium.dir/fig08_elastic_premium.cc.o"
  "CMakeFiles/fig08_elastic_premium.dir/fig08_elastic_premium.cc.o.d"
  "fig08_elastic_premium"
  "fig08_elastic_premium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_elastic_premium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
