# Empty dependencies file for fig08_elastic_premium.
# This may be replaced when dependencies are built.
