file(REMOVE_RECURSE
  "CMakeFiles/fig09_vm_startup.dir/fig09_vm_startup.cc.o"
  "CMakeFiles/fig09_vm_startup.dir/fig09_vm_startup.cc.o.d"
  "fig09_vm_startup"
  "fig09_vm_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_vm_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
