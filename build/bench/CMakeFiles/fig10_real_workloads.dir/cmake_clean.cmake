file(REMOVE_RECURSE
  "CMakeFiles/fig10_real_workloads.dir/fig10_real_workloads.cc.o"
  "CMakeFiles/fig10_real_workloads.dir/fig10_real_workloads.cc.o.d"
  "fig10_real_workloads"
  "fig10_real_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_real_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
