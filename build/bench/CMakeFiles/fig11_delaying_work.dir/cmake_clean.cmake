file(REMOVE_RECURSE
  "CMakeFiles/fig11_delaying_work.dir/fig11_delaying_work.cc.o"
  "CMakeFiles/fig11_delaying_work.dir/fig11_delaying_work.cc.o.d"
  "fig11_delaying_work"
  "fig11_delaying_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_delaying_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
