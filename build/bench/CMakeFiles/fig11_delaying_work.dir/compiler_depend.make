# Empty compiler generated dependencies file for fig11_delaying_work.
# This may be replaced when dependencies are built.
