file(REMOVE_RECURSE
  "CMakeFiles/fig12_engine_timeseries.dir/fig12_engine_timeseries.cc.o"
  "CMakeFiles/fig12_engine_timeseries.dir/fig12_engine_timeseries.cc.o.d"
  "fig12_engine_timeseries"
  "fig12_engine_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_engine_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
