# Empty dependencies file for fig12_engine_timeseries.
# This may be replaced when dependencies are built.
