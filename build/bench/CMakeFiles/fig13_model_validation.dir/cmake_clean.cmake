file(REMOVE_RECURSE
  "CMakeFiles/fig13_model_validation.dir/fig13_model_validation.cc.o"
  "CMakeFiles/fig13_model_validation.dir/fig13_model_validation.cc.o.d"
  "fig13_model_validation"
  "fig13_model_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_model_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
