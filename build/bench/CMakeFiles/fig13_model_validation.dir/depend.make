# Empty dependencies file for fig13_model_validation.
# This may be replaced when dependencies are built.
