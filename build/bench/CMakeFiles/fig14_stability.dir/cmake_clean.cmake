file(REMOVE_RECURSE
  "CMakeFiles/fig14_stability.dir/fig14_stability.cc.o"
  "CMakeFiles/fig14_stability.dir/fig14_stability.cc.o.d"
  "fig14_stability"
  "fig14_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
