# Empty dependencies file for fig14_stability.
# This may be replaced when dependencies are built.
