# Empty dependencies file for micro_strategy.
# This may be replaced when dependencies are built.
