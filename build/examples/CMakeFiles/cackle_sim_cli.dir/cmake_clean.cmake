file(REMOVE_RECURSE
  "CMakeFiles/cackle_sim_cli.dir/cackle_sim.cpp.o"
  "CMakeFiles/cackle_sim_cli.dir/cackle_sim.cpp.o.d"
  "cackle_sim"
  "cackle_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cackle_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
