# Empty compiler generated dependencies file for cackle_sim_cli.
# This may be replaced when dependencies are built.
