file(REMOVE_RECURSE
  "CMakeFiles/elastic_warehouse.dir/elastic_warehouse.cpp.o"
  "CMakeFiles/elastic_warehouse.dir/elastic_warehouse.cpp.o.d"
  "elastic_warehouse"
  "elastic_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
