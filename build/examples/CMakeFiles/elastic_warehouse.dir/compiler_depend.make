# Empty compiler generated dependencies file for elastic_warehouse.
# This may be replaced when dependencies are built.
