file(REMOVE_RECURSE
  "CMakeFiles/logical_query.dir/logical_query.cpp.o"
  "CMakeFiles/logical_query.dir/logical_query.cpp.o.d"
  "logical_query"
  "logical_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logical_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
