# Empty compiler generated dependencies file for logical_query.
# This may be replaced when dependencies are built.
