file(REMOVE_RECURSE
  "CMakeFiles/profile_tpch.dir/profile_tpch.cpp.o"
  "CMakeFiles/profile_tpch.dir/profile_tpch.cpp.o.d"
  "profile_tpch"
  "profile_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
