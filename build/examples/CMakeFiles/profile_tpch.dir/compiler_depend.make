# Empty compiler generated dependencies file for profile_tpch.
# This may be replaced when dependencies are built.
