file(REMOVE_RECURSE
  "CMakeFiles/provisioning_playground.dir/provisioning_playground.cpp.o"
  "CMakeFiles/provisioning_playground.dir/provisioning_playground.cpp.o.d"
  "provisioning_playground"
  "provisioning_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provisioning_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
