# Empty compiler generated dependencies file for provisioning_playground.
# This may be replaced when dependencies are built.
