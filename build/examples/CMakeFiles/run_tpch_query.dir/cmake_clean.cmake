file(REMOVE_RECURSE
  "CMakeFiles/run_tpch_query.dir/run_tpch_query.cpp.o"
  "CMakeFiles/run_tpch_query.dir/run_tpch_query.cpp.o.d"
  "run_tpch_query"
  "run_tpch_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_tpch_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
