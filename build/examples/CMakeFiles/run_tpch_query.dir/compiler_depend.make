# Empty compiler generated dependencies file for run_tpch_query.
# This may be replaced when dependencies are built.
