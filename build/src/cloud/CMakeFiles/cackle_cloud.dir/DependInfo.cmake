
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/billing.cc" "src/cloud/CMakeFiles/cackle_cloud.dir/billing.cc.o" "gcc" "src/cloud/CMakeFiles/cackle_cloud.dir/billing.cc.o.d"
  "/root/repo/src/cloud/elastic_pool.cc" "src/cloud/CMakeFiles/cackle_cloud.dir/elastic_pool.cc.o" "gcc" "src/cloud/CMakeFiles/cackle_cloud.dir/elastic_pool.cc.o.d"
  "/root/repo/src/cloud/object_store.cc" "src/cloud/CMakeFiles/cackle_cloud.dir/object_store.cc.o" "gcc" "src/cloud/CMakeFiles/cackle_cloud.dir/object_store.cc.o.d"
  "/root/repo/src/cloud/spot_market.cc" "src/cloud/CMakeFiles/cackle_cloud.dir/spot_market.cc.o" "gcc" "src/cloud/CMakeFiles/cackle_cloud.dir/spot_market.cc.o.d"
  "/root/repo/src/cloud/vm_fleet.cc" "src/cloud/CMakeFiles/cackle_cloud.dir/vm_fleet.cc.o" "gcc" "src/cloud/CMakeFiles/cackle_cloud.dir/vm_fleet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cackle_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cackle_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
