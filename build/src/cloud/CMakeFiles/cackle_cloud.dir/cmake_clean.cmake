file(REMOVE_RECURSE
  "CMakeFiles/cackle_cloud.dir/billing.cc.o"
  "CMakeFiles/cackle_cloud.dir/billing.cc.o.d"
  "CMakeFiles/cackle_cloud.dir/elastic_pool.cc.o"
  "CMakeFiles/cackle_cloud.dir/elastic_pool.cc.o.d"
  "CMakeFiles/cackle_cloud.dir/object_store.cc.o"
  "CMakeFiles/cackle_cloud.dir/object_store.cc.o.d"
  "CMakeFiles/cackle_cloud.dir/spot_market.cc.o"
  "CMakeFiles/cackle_cloud.dir/spot_market.cc.o.d"
  "CMakeFiles/cackle_cloud.dir/vm_fleet.cc.o"
  "CMakeFiles/cackle_cloud.dir/vm_fleet.cc.o.d"
  "libcackle_cloud.a"
  "libcackle_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cackle_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
