file(REMOVE_RECURSE
  "libcackle_cloud.a"
)
