# Empty compiler generated dependencies file for cackle_cloud.
# This may be replaced when dependencies are built.
