file(REMOVE_RECURSE
  "CMakeFiles/cackle_common.dir/logging.cc.o"
  "CMakeFiles/cackle_common.dir/logging.cc.o.d"
  "CMakeFiles/cackle_common.dir/rng.cc.o"
  "CMakeFiles/cackle_common.dir/rng.cc.o.d"
  "CMakeFiles/cackle_common.dir/stats.cc.o"
  "CMakeFiles/cackle_common.dir/stats.cc.o.d"
  "CMakeFiles/cackle_common.dir/status.cc.o"
  "CMakeFiles/cackle_common.dir/status.cc.o.d"
  "CMakeFiles/cackle_common.dir/table_printer.cc.o"
  "CMakeFiles/cackle_common.dir/table_printer.cc.o.d"
  "libcackle_common.a"
  "libcackle_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cackle_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
