file(REMOVE_RECURSE
  "libcackle_common.a"
)
