# Empty dependencies file for cackle_common.
# This may be replaced when dependencies are built.
