file(REMOVE_RECURSE
  "CMakeFiles/cackle_engine.dir/engine.cc.o"
  "CMakeFiles/cackle_engine.dir/engine.cc.o.d"
  "CMakeFiles/cackle_engine.dir/shuffle_layer.cc.o"
  "CMakeFiles/cackle_engine.dir/shuffle_layer.cc.o.d"
  "libcackle_engine.a"
  "libcackle_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cackle_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
