file(REMOVE_RECURSE
  "libcackle_engine.a"
)
