# Empty compiler generated dependencies file for cackle_engine.
# This may be replaced when dependencies are built.
