
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/datagen.cc" "src/exec/CMakeFiles/cackle_exec.dir/datagen.cc.o" "gcc" "src/exec/CMakeFiles/cackle_exec.dir/datagen.cc.o.d"
  "/root/repo/src/exec/expr.cc" "src/exec/CMakeFiles/cackle_exec.dir/expr.cc.o" "gcc" "src/exec/CMakeFiles/cackle_exec.dir/expr.cc.o.d"
  "/root/repo/src/exec/logical.cc" "src/exec/CMakeFiles/cackle_exec.dir/logical.cc.o" "gcc" "src/exec/CMakeFiles/cackle_exec.dir/logical.cc.o.d"
  "/root/repo/src/exec/lowering.cc" "src/exec/CMakeFiles/cackle_exec.dir/lowering.cc.o" "gcc" "src/exec/CMakeFiles/cackle_exec.dir/lowering.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/exec/CMakeFiles/cackle_exec.dir/operators.cc.o" "gcc" "src/exec/CMakeFiles/cackle_exec.dir/operators.cc.o.d"
  "/root/repo/src/exec/optimizer.cc" "src/exec/CMakeFiles/cackle_exec.dir/optimizer.cc.o" "gcc" "src/exec/CMakeFiles/cackle_exec.dir/optimizer.cc.o.d"
  "/root/repo/src/exec/plan.cc" "src/exec/CMakeFiles/cackle_exec.dir/plan.cc.o" "gcc" "src/exec/CMakeFiles/cackle_exec.dir/plan.cc.o.d"
  "/root/repo/src/exec/profiler.cc" "src/exec/CMakeFiles/cackle_exec.dir/profiler.cc.o" "gcc" "src/exec/CMakeFiles/cackle_exec.dir/profiler.cc.o.d"
  "/root/repo/src/exec/storage.cc" "src/exec/CMakeFiles/cackle_exec.dir/storage.cc.o" "gcc" "src/exec/CMakeFiles/cackle_exec.dir/storage.cc.o.d"
  "/root/repo/src/exec/table.cc" "src/exec/CMakeFiles/cackle_exec.dir/table.cc.o" "gcc" "src/exec/CMakeFiles/cackle_exec.dir/table.cc.o.d"
  "/root/repo/src/exec/tpch_logical.cc" "src/exec/CMakeFiles/cackle_exec.dir/tpch_logical.cc.o" "gcc" "src/exec/CMakeFiles/cackle_exec.dir/tpch_logical.cc.o.d"
  "/root/repo/src/exec/tpch_queries.cc" "src/exec/CMakeFiles/cackle_exec.dir/tpch_queries.cc.o" "gcc" "src/exec/CMakeFiles/cackle_exec.dir/tpch_queries.cc.o.d"
  "/root/repo/src/exec/tpch_queries_17_25.cc" "src/exec/CMakeFiles/cackle_exec.dir/tpch_queries_17_25.cc.o" "gcc" "src/exec/CMakeFiles/cackle_exec.dir/tpch_queries_17_25.cc.o.d"
  "/root/repo/src/exec/tpch_queries_1_8.cc" "src/exec/CMakeFiles/cackle_exec.dir/tpch_queries_1_8.cc.o" "gcc" "src/exec/CMakeFiles/cackle_exec.dir/tpch_queries_1_8.cc.o.d"
  "/root/repo/src/exec/tpch_queries_9_16.cc" "src/exec/CMakeFiles/cackle_exec.dir/tpch_queries_9_16.cc.o" "gcc" "src/exec/CMakeFiles/cackle_exec.dir/tpch_queries_9_16.cc.o.d"
  "/root/repo/src/exec/types.cc" "src/exec/CMakeFiles/cackle_exec.dir/types.cc.o" "gcc" "src/exec/CMakeFiles/cackle_exec.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cackle_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cackle_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cackle_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
