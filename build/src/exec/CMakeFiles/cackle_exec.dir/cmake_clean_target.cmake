file(REMOVE_RECURSE
  "libcackle_exec.a"
)
