# Empty compiler generated dependencies file for cackle_exec.
# This may be replaced when dependencies are built.
