file(REMOVE_RECURSE
  "CMakeFiles/cackle_model.dir/analytical_model.cc.o"
  "CMakeFiles/cackle_model.dir/analytical_model.cc.o.d"
  "CMakeFiles/cackle_model.dir/warehouse_simulator.cc.o"
  "CMakeFiles/cackle_model.dir/warehouse_simulator.cc.o.d"
  "CMakeFiles/cackle_model.dir/work_delay_model.cc.o"
  "CMakeFiles/cackle_model.dir/work_delay_model.cc.o.d"
  "libcackle_model.a"
  "libcackle_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cackle_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
