file(REMOVE_RECURSE
  "libcackle_model.a"
)
