# Empty dependencies file for cackle_model.
# This may be replaced when dependencies are built.
