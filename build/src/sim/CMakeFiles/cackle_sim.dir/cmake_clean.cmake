file(REMOVE_RECURSE
  "CMakeFiles/cackle_sim.dir/simulation.cc.o"
  "CMakeFiles/cackle_sim.dir/simulation.cc.o.d"
  "libcackle_sim.a"
  "libcackle_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cackle_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
