file(REMOVE_RECURSE
  "libcackle_sim.a"
)
