# Empty dependencies file for cackle_sim.
# This may be replaced when dependencies are built.
