
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/strategy/allocation_model.cc" "src/strategy/CMakeFiles/cackle_strategy.dir/allocation_model.cc.o" "gcc" "src/strategy/CMakeFiles/cackle_strategy.dir/allocation_model.cc.o.d"
  "/root/repo/src/strategy/cost_calculator.cc" "src/strategy/CMakeFiles/cackle_strategy.dir/cost_calculator.cc.o" "gcc" "src/strategy/CMakeFiles/cackle_strategy.dir/cost_calculator.cc.o.d"
  "/root/repo/src/strategy/dynamic_strategy.cc" "src/strategy/CMakeFiles/cackle_strategy.dir/dynamic_strategy.cc.o" "gcc" "src/strategy/CMakeFiles/cackle_strategy.dir/dynamic_strategy.cc.o.d"
  "/root/repo/src/strategy/multiplicative_weights.cc" "src/strategy/CMakeFiles/cackle_strategy.dir/multiplicative_weights.cc.o" "gcc" "src/strategy/CMakeFiles/cackle_strategy.dir/multiplicative_weights.cc.o.d"
  "/root/repo/src/strategy/oracle.cc" "src/strategy/CMakeFiles/cackle_strategy.dir/oracle.cc.o" "gcc" "src/strategy/CMakeFiles/cackle_strategy.dir/oracle.cc.o.d"
  "/root/repo/src/strategy/shuffle_provisioner.cc" "src/strategy/CMakeFiles/cackle_strategy.dir/shuffle_provisioner.cc.o" "gcc" "src/strategy/CMakeFiles/cackle_strategy.dir/shuffle_provisioner.cc.o.d"
  "/root/repo/src/strategy/strategy.cc" "src/strategy/CMakeFiles/cackle_strategy.dir/strategy.cc.o" "gcc" "src/strategy/CMakeFiles/cackle_strategy.dir/strategy.cc.o.d"
  "/root/repo/src/strategy/workload_history.cc" "src/strategy/CMakeFiles/cackle_strategy.dir/workload_history.cc.o" "gcc" "src/strategy/CMakeFiles/cackle_strategy.dir/workload_history.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cackle_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/cackle_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cackle_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
