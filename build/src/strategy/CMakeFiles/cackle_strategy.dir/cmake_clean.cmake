file(REMOVE_RECURSE
  "CMakeFiles/cackle_strategy.dir/allocation_model.cc.o"
  "CMakeFiles/cackle_strategy.dir/allocation_model.cc.o.d"
  "CMakeFiles/cackle_strategy.dir/cost_calculator.cc.o"
  "CMakeFiles/cackle_strategy.dir/cost_calculator.cc.o.d"
  "CMakeFiles/cackle_strategy.dir/dynamic_strategy.cc.o"
  "CMakeFiles/cackle_strategy.dir/dynamic_strategy.cc.o.d"
  "CMakeFiles/cackle_strategy.dir/multiplicative_weights.cc.o"
  "CMakeFiles/cackle_strategy.dir/multiplicative_weights.cc.o.d"
  "CMakeFiles/cackle_strategy.dir/oracle.cc.o"
  "CMakeFiles/cackle_strategy.dir/oracle.cc.o.d"
  "CMakeFiles/cackle_strategy.dir/shuffle_provisioner.cc.o"
  "CMakeFiles/cackle_strategy.dir/shuffle_provisioner.cc.o.d"
  "CMakeFiles/cackle_strategy.dir/strategy.cc.o"
  "CMakeFiles/cackle_strategy.dir/strategy.cc.o.d"
  "CMakeFiles/cackle_strategy.dir/workload_history.cc.o"
  "CMakeFiles/cackle_strategy.dir/workload_history.cc.o.d"
  "libcackle_strategy.a"
  "libcackle_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cackle_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
