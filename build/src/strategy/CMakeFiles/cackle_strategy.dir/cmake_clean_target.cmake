file(REMOVE_RECURSE
  "libcackle_strategy.a"
)
