# Empty compiler generated dependencies file for cackle_strategy.
# This may be replaced when dependencies are built.
