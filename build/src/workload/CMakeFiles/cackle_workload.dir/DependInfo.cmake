
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/demand.cc" "src/workload/CMakeFiles/cackle_workload.dir/demand.cc.o" "gcc" "src/workload/CMakeFiles/cackle_workload.dir/demand.cc.o.d"
  "/root/repo/src/workload/profile_library.cc" "src/workload/CMakeFiles/cackle_workload.dir/profile_library.cc.o" "gcc" "src/workload/CMakeFiles/cackle_workload.dir/profile_library.cc.o.d"
  "/root/repo/src/workload/query_profile.cc" "src/workload/CMakeFiles/cackle_workload.dir/query_profile.cc.o" "gcc" "src/workload/CMakeFiles/cackle_workload.dir/query_profile.cc.o.d"
  "/root/repo/src/workload/trace_generator.cc" "src/workload/CMakeFiles/cackle_workload.dir/trace_generator.cc.o" "gcc" "src/workload/CMakeFiles/cackle_workload.dir/trace_generator.cc.o.d"
  "/root/repo/src/workload/trace_io.cc" "src/workload/CMakeFiles/cackle_workload.dir/trace_io.cc.o" "gcc" "src/workload/CMakeFiles/cackle_workload.dir/trace_io.cc.o.d"
  "/root/repo/src/workload/workload_generator.cc" "src/workload/CMakeFiles/cackle_workload.dir/workload_generator.cc.o" "gcc" "src/workload/CMakeFiles/cackle_workload.dir/workload_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cackle_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cackle_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
