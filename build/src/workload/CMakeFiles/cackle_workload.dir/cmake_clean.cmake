file(REMOVE_RECURSE
  "CMakeFiles/cackle_workload.dir/demand.cc.o"
  "CMakeFiles/cackle_workload.dir/demand.cc.o.d"
  "CMakeFiles/cackle_workload.dir/profile_library.cc.o"
  "CMakeFiles/cackle_workload.dir/profile_library.cc.o.d"
  "CMakeFiles/cackle_workload.dir/query_profile.cc.o"
  "CMakeFiles/cackle_workload.dir/query_profile.cc.o.d"
  "CMakeFiles/cackle_workload.dir/trace_generator.cc.o"
  "CMakeFiles/cackle_workload.dir/trace_generator.cc.o.d"
  "CMakeFiles/cackle_workload.dir/trace_io.cc.o"
  "CMakeFiles/cackle_workload.dir/trace_io.cc.o.d"
  "CMakeFiles/cackle_workload.dir/workload_generator.cc.o"
  "CMakeFiles/cackle_workload.dir/workload_generator.cc.o.d"
  "libcackle_workload.a"
  "libcackle_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cackle_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
