file(REMOVE_RECURSE
  "libcackle_workload.a"
)
