# Empty compiler generated dependencies file for cackle_workload.
# This may be replaced when dependencies are built.
