file(REMOVE_RECURSE
  "CMakeFiles/exec_query_test.dir/exec_query_test.cc.o"
  "CMakeFiles/exec_query_test.dir/exec_query_test.cc.o.d"
  "exec_query_test"
  "exec_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
