# Empty dependencies file for exec_query_test.
# This may be replaced when dependencies are built.
