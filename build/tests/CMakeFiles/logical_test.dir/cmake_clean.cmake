file(REMOVE_RECURSE
  "CMakeFiles/logical_test.dir/logical_test.cc.o"
  "CMakeFiles/logical_test.dir/logical_test.cc.o.d"
  "logical_test"
  "logical_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
