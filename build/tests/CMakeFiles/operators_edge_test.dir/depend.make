# Empty dependencies file for operators_edge_test.
# This may be replaced when dependencies are built.
