file(REMOVE_RECURSE
  "CMakeFiles/shuffle_layer_test.dir/shuffle_layer_test.cc.o"
  "CMakeFiles/shuffle_layer_test.dir/shuffle_layer_test.cc.o.d"
  "shuffle_layer_test"
  "shuffle_layer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shuffle_layer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
