// cackle_sim: the one-stop experiment driver. Configure the workload, the
// environment, and the strategy line-up from flags; run the analytical
// model (and optionally the full engine simulation) and print a result
// table or CSV.
//
//   $ ./build/examples/cackle_sim --queries=4096 --hours=4 --premium=6
//   $ ./build/examples/cackle_sim --trace=azure --strategies=dynamic,mean_2
//   $ ./build/examples/cackle_sim --queries=800 --hours=1 --engine --csv
//
// Flags (all optional):
//   --queries=N        generated workload size          (default 4096)
//   --hours=H          workload duration                (default 4)
//   --period_min=P     sinusoid period in minutes       (default 60)
//   --baseline=F       uniform-arrival fraction         (default 0.3)
//   --batch=F          delay-tolerant batch fraction    (default 0)
//   --trace=NAME       replay a trace instead: azure | alibaba | startup |
//                      a CSV path ("second,demand" rows)
//   --premium=X        elastic $/s as a multiple of VM  (default 6)
//   --startup_s=S      VM startup latency               (default 180)
//   --strategies=LIST  comma list: dynamic, predictive, fixed_N, mean_X
//                      (default "fixed_0,mean_2,predictive,dynamic")
//   --engine           also run the full engine simulation per strategy
//   --seed=N           workload seed                    (default 42)
//   --csv              CSV output instead of aligned text

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "common/table_printer.h"
#include "engine/engine.h"
#include "model/analytical_model.h"
#include "strategy/oracle.h"
#include "workload/trace_generator.h"
#include "workload/trace_io.h"

namespace {

using namespace cackle;

struct Flags {
  int64_t queries = 4096;
  double hours = 4;
  int64_t period_min = 60;
  double baseline = 0.3;
  double batch = 0.0;
  std::string trace;
  double premium = 6.0;
  int64_t startup_s = 180;
  std::string strategies = "fixed_0,mean_2,predictive,dynamic";
  bool engine = false;
  bool csv = false;
  uint64_t seed = 42;
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) == 0) {
    *value = arg.substr(prefix.size());
    return true;
  }
  return false;
}

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "queries", &value)) {
      flags.queries = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "hours", &value)) {
      flags.hours = std::atof(value.c_str());
    } else if (ParseFlag(arg, "period_min", &value)) {
      flags.period_min = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "baseline", &value)) {
      flags.baseline = std::atof(value.c_str());
    } else if (ParseFlag(arg, "batch", &value)) {
      flags.batch = std::atof(value.c_str());
    } else if (ParseFlag(arg, "trace", &value)) {
      flags.trace = value;
    } else if (ParseFlag(arg, "premium", &value)) {
      flags.premium = std::atof(value.c_str());
    } else if (ParseFlag(arg, "startup_s", &value)) {
      flags.startup_s = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "strategies", &value)) {
      flags.strategies = value;
    } else if (ParseFlag(arg, "seed", &value)) {
      flags.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (arg == "--engine") {
      flags.engine = true;
    } else if (arg == "--csv") {
      flags.csv = true;
    } else {
      std::cerr << "unknown flag: " << arg << " (see header comment)\n";
      std::exit(2);
    }
  }
  return flags;
}

std::unique_ptr<ProvisioningStrategy> MakeStrategy(const std::string& name,
                                                   const CostModel* cost) {
  if (name == "dynamic") return std::make_unique<DynamicStrategy>(cost);
  if (name == "predictive") {
    return std::make_unique<PredictiveStrategy>(cost->vm_startup_ms);
  }
  if (name.rfind("fixed_", 0) == 0) {
    return std::make_unique<FixedStrategy>(std::atoll(name.c_str() + 6));
  }
  if (name.rfind("mean_", 0) == 0) {
    return std::make_unique<MeanStrategy>(std::atof(name.c_str() + 5));
  }
  std::cerr << "unknown strategy: " << name
            << " (use dynamic | predictive | fixed_N | mean_X)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);

  CostModel cost;
  cost.elastic_cost_per_hour = cost.vm_cost_per_hour * flags.premium;
  cost.vm_startup_ms = flags.startup_s * 1000;

  const ProfileLibrary library = ProfileLibrary::BuiltinTpch();
  std::vector<QueryArrival> arrivals;
  DemandCurve demand(0);
  bool have_arrivals = false;
  if (flags.trace.empty()) {
    WorkloadGenerator gen(&library);
    WorkloadOptions opts;
    opts.num_queries = flags.queries;
    opts.duration_ms = static_cast<SimTimeMs>(flags.hours * kMillisPerHour);
    opts.arrival_period_ms = flags.period_min * kMillisPerMinute;
    opts.baseline_load = flags.baseline;
    opts.batch_fraction = flags.batch;
    opts.seed = flags.seed;
    arrivals = gen.Generate(opts);
    demand = DemandCurve::FromWorkload(arrivals, library);
    have_arrivals = true;
  } else {
    std::vector<int64_t> series;
    if (flags.trace == "azure") {
      series = TraceGenerator::AzureNodes(3, 72);
      for (int64_t& d : series) d *= TraceGenerator::kTasksPerAzureNode;
    } else if (flags.trace == "alibaba") {
      series = TraceGenerator::AlibabaCpus(2, 72);
    } else if (flags.trace == "startup") {
      series = TraceGenerator::StartupConcurrency(1, 72);
    } else {
      auto loaded = LoadDemandCsv(flags.trace);
      if (!loaded.ok()) {
        std::cerr << "failed to load trace: " << loaded.status().ToString()
                  << "\n";
        return 1;
      }
      series = std::move(loaded).value();
    }
    demand = DemandCurve::FromSeries(std::move(series));
  }
  if (flags.engine && !have_arrivals) {
    std::cerr << "--engine requires a generated workload (no --trace)\n";
    return 2;
  }

  std::vector<std::string> headers = {"strategy", "model_vm_$",
                                      "model_elastic_$", "model_total_$"};
  if (flags.engine) {
    headers.insert(headers.end(),
                   {"engine_total_$", "engine_p90_s", "engine_vm_share_%"});
  }
  TablePrinter table(headers);

  std::stringstream names(flags.strategies);
  std::string name;
  while (std::getline(names, name, ',')) {
    auto strategy = MakeStrategy(name, &cost);
    const auto eval =
        EvaluateStrategy(strategy.get(), demand.tasks_per_second(), cost);
    table.BeginRow();
    table.AddCell(strategy->name());
    table.AddCell(eval.vm_cost, 2);
    table.AddCell(eval.elastic_cost, 2);
    table.AddCell(eval.total(), 2);
    if (flags.engine) {
      EngineOptions engine_opts;
      engine_opts.enable_shuffle = false;
      engine_opts.seed = flags.seed;
      if (name == "dynamic") {
        engine_opts.use_dynamic = true;
      } else {
        engine_opts.use_dynamic = false;
        engine_opts.fixed_target =
            name.rfind("fixed_", 0) == 0 ? std::atoll(name.c_str() + 6) : 0;
      }
      CackleEngine engine(&cost, engine_opts);
      const EngineResult r = engine.Run(arrivals, library);
      const double share =
          100.0 * static_cast<double>(r.tasks_on_vms) /
          static_cast<double>(r.tasks_on_vms + r.tasks_on_elastic);
      table.AddCell(r.compute_cost(), 2);
      table.AddCell(r.latencies_s.Percentile(90), 2);
      table.AddCell(share, 1);
    }
  }
  table.BeginRow();
  const OracleResult oracle =
      ComputeOracleCost(demand.tasks_per_second(), cost);
  table.AddCell("oracle");
  table.AddCell(oracle.vm_cost, 2);
  table.AddCell(oracle.elastic_cost, 2);
  table.AddCell(oracle.total(), 2);
  if (flags.engine) {
    table.AddCell("-");
    table.AddCell("-");
    table.AddCell("-");
  }

  if (flags.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.PrintText(std::cout);
  }
  return 0;
}
