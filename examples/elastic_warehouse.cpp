// Elastic warehouse: run the full Cackle engine (coordinator + compute
// layer + shuffling layer on the simulated cloud) on an hour-long
// interactive workload, and contrast its latency and cost behaviour with a
// pure-elastic (Starling-style) and a big-fixed-fleet configuration.
//
//   $ ./build/examples/elastic_warehouse [num_queries]
//
// Demonstrates the headline behaviour: query latency is the same whichever
// way the fleet is provisioned (overflow runs immediately on the elastic
// pool), while cost differs sharply — the dynamic strategy gets elasticity
// without the pure-elastic premium or the fixed fleet's idle burn.

#include <cstdlib>
#include <iostream>

#include "common/table_printer.h"
#include "engine/engine.h"

int main(int argc, char** argv) {
  using namespace cackle;

  const int64_t num_queries = argc > 1 ? std::atoll(argv[1]) : 600;
  const ProfileLibrary library = ProfileLibrary::BuiltinTpch();
  WorkloadGenerator generator(&library);
  WorkloadOptions workload;
  workload.num_queries = num_queries;
  workload.duration_ms = kMillisPerHour;
  workload.arrival_period_ms = 20 * kMillisPerMinute;
  const auto arrivals = generator.Generate(workload);
  CostModel cost;

  struct Config {
    const char* label;
    EngineOptions options;
  };
  std::vector<Config> configs;
  {
    EngineOptions dynamic;
    configs.push_back({"cackle_dynamic", dynamic});
    EngineOptions elastic_only;
    elastic_only.use_dynamic = false;
    elastic_only.fixed_target = 0;
    configs.push_back({"pure_elastic (starling)", elastic_only});
    EngineOptions fixed;
    fixed.use_dynamic = false;
    fixed.fixed_target = 600;
    configs.push_back({"fixed_600_vms", fixed});
  }

  TablePrinter table({"configuration", "p50_s", "p90_s", "p99_s", "vm_$",
                      "elastic_$", "shuffle_$", "total_$", "tasks_on_vms_%"});
  for (const Config& config : configs) {
    CackleEngine engine(&cost, config.options);
    const EngineResult r = engine.Run(arrivals, library);
    const double vm_share =
        100.0 * static_cast<double>(r.tasks_on_vms) /
        static_cast<double>(r.tasks_on_vms + r.tasks_on_elastic);
    table.BeginRow();
    table.AddCell(config.label);
    table.AddCell(r.latencies_s.Percentile(50), 1);
    table.AddCell(r.latencies_s.Percentile(90), 1);
    table.AddCell(r.latencies_s.Percentile(99), 1);
    table.AddCell(r.billing.CategoryDollars(CostCategory::kVm), 2);
    table.AddCell(r.billing.CategoryDollars(CostCategory::kElasticPool), 2);
    table.AddCell(r.billing.ShuffleDollars(), 2);
    table.AddCell(r.total_cost(), 2);
    table.AddCell(vm_share, 1);
  }
  std::cout << num_queries << " TPC-H queries in one hour, hybrid execution:\n\n";
  table.PrintText(std::cout);
  std::cout << "\nNote the latency columns: provisioning only moves cost,\n"
               "never latency, because work overflows to the elastic pool\n"
               "instead of queueing.\n";
  return 0;
}
