// Build your own analytical query against the TPC-H catalog using the
// logical plan layer, watch the optimizer transform it, and execute the
// lowered stage plan.
//
//   $ ./build/examples/logical_query [scale_factor=0.01] [tasks=4]
//
// The query: revenue and order count per nation for BUILDING-segment
// customers in 1995, largest revenue first — a typical ad-hoc exploration
// query that does not exist among the canned TPC-H plans.

#include <cstdlib>
#include <iostream>

#include "exec/datagen.h"
#include "exec/logical.h"
#include "exec/lowering.h"
#include "exec/optimizer.h"
#include "exec/plan.h"

int main(int argc, char** argv) {
  using namespace cackle;
  using namespace cackle::exec;

  const double sf = argc > 1 ? std::atof(argv[1]) : 0.01;
  PlanConfig config;
  config.tasks = argc > 2 ? std::atoi(argv[2]) : 4;

  std::cout << "generating TPC-H at scale factor " << sf << "...\n\n";
  const Catalog catalog = GenerateTpch(sf);
  const TableResolver resolver = TableResolver::ForCatalog(catalog);

  // SELECT n_name, sum(o_totalprice) AS revenue, count(*) AS orders
  // FROM customer JOIN orders ON c_custkey = o_custkey
  //               JOIN nation ON c_nationkey = n_nationkey
  // WHERE c_mktsegment = 'BUILDING'
  //   AND o_orderdate >= '1995-01-01' AND o_orderdate < '1996-01-01'
  // GROUP BY n_name ORDER BY revenue DESC;
  LogicalNodePtr plan = LSort(
      LAggregate(
          LFilter(
              LFilter(
                  LFilter(LJoin(LJoin(LScan("orders"), LScan("customer"),
                                      {"o_custkey"}, {"c_custkey"}),
                                LScan("nation"), {"c_nationkey"},
                                {"n_nationkey"}),
                          Eq(Col("c_mktsegment"), Lit("BUILDING"))),
                  Ge(Col("o_orderdate"), Lit(DateFromCivil(1995, 1, 1)))),
              Lt(Col("o_orderdate"), Lit(DateFromCivil(1996, 1, 1)))),
          {"n_name"},
          {{AggOp::kSum, Col("o_totalprice"), "revenue"},
           {AggOp::kCount, nullptr, "orders"}}),
      {{"revenue", false}}, 10);

  std::cout << "logical plan (as written):\n" << LogicalToString(plan);

  auto optimized = Optimize(plan, resolver);
  if (!optimized.ok()) {
    std::cerr << "optimize failed: " << optimized.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nafter the optimizer (filters pushed into scans, small "
               "join sides broadcast, scans pruned):\n"
            << LogicalToString(*optimized);

  auto lowered = LowerToStagePlan(*optimized, resolver, config,
                                  "revenue_by_nation");
  if (!lowered.ok()) {
    std::cerr << "lowering failed: " << lowered.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nlowered to " << lowered->stages.size()
            << " physical stages x " << config.tasks << " tasks\n\n";

  PlanExecutor executor(/*num_threads=*/4);
  PlanRunStats stats;
  const Table result = executor.Execute(*lowered, &stats);
  std::cout << result.ToString(15);
  std::cout << "\nwall time: " << stats.total_micros / 1000 << " ms ("
            << executor.num_threads() << " threads)\n";
  return 0;
}
