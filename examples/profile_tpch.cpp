// Regenerate the Cackle query-profile library from real executions: run all
// 25 query plans on a freshly generated TPC-H dataset, capture stage DAGs,
// per-task durations and shuffle volumes, scale them to SF 10/50/100, and
// write them in the ProfileLibrary text format.
//
//   $ ./build/examples/profile_tpch [scale_factor=0.01] [out=profiles.txt]
//
// This is the reproduction of the paper's profile-collection step
// (Section 5.1 runs each query on AWS Lambda and keeps the median run's
// statistics). Load the output with ProfileLibrary::LoadText() to drive the
// analytical model with measured rather than builtin profiles.

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "exec/datagen.h"
#include "exec/profiler.h"

int main(int argc, char** argv) {
  using namespace cackle;
  using namespace cackle::exec;

  const double sf = argc > 1 ? std::atof(argv[1]) : 0.01;
  const std::string out_path = argc > 2 ? argv[2] : "profiles.txt";

  std::cout << "generating TPC-H data at scale factor " << sf << "...\n";
  const Catalog catalog = GenerateTpch(sf);

  ProfilerOptions options;
  options.measured_scale_factor = sf;
  options.plan_config.tasks = 4;
  std::cout << "profiling all " << AllTpchQueryIds().size()
            << " query plans...\n";
  const std::vector<QueryProfile> profiles =
      ProfileAllQueries(catalog, options);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << SerializeProfiles(profiles);
  std::cout << "wrote " << profiles.size() << " profiles to " << out_path
            << "\n";

  // Quick summary of what was captured.
  for (const QueryProfile& p : profiles) {
    if (p.scale_factor != 100) continue;
    std::cout << "  " << p.name << ": " << p.stages.size() << " stages, "
              << p.TotalTasks() << " tasks, "
              << p.TotalShuffleBytes() / (1024 * 1024) << " MiB shuffled, "
              << "critical path " << MsToSeconds(p.CriticalPathMs()) << "s\n";
  }
  return 0;
}
