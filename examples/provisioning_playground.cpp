// Provisioning playground: sweep environment knobs from the command line
// and watch how each provisioning strategy's cost responds.
//
//   $ ./build/examples/provisioning_playground [queries=4096] [hours=4]
//         [premium=6] [startup_s=180]
//
// Useful for reproducing the paper's Section 5.3 observations
// interactively: raise the elastic premium and watch fixed_0 blow up;
// stretch VM startup and watch mean_1 lose to mean_2; the dynamic strategy
// stays near the oracle without being told what changed.

#include <cstdlib>
#include <iostream>

#include "common/table_printer.h"
#include "strategy/cost_calculator.h"
#include "strategy/dynamic_strategy.h"
#include "strategy/oracle.h"
#include "workload/demand.h"
#include "workload/profile_library.h"
#include "workload/workload_generator.h"

int main(int argc, char** argv) {
  using namespace cackle;

  const int64_t queries = argc > 1 ? std::atoll(argv[1]) : 4096;
  const int64_t hours = argc > 2 ? std::atoll(argv[2]) : 4;
  const double premium = argc > 3 ? std::atof(argv[3]) : 6.0;
  const int64_t startup_s = argc > 4 ? std::atoll(argv[4]) : 180;

  const ProfileLibrary library = ProfileLibrary::BuiltinTpch();
  WorkloadGenerator generator(&library);
  WorkloadOptions workload;
  workload.num_queries = queries;
  workload.duration_ms = hours * kMillisPerHour;
  workload.arrival_period_ms = workload.duration_ms / 4;
  const DemandCurve demand =
      DemandCurve::FromWorkload(generator.Generate(workload), library);

  CostModel cost;
  cost.elastic_cost_per_hour = cost.vm_cost_per_hour * premium;
  cost.vm_startup_ms = startup_s * 1000;

  std::cout << "environment: elastic premium " << premium << "x, VM startup "
            << startup_s << "s\nworkload: " << queries << " queries over "
            << hours << "h, peak demand " << demand.MaxTasks()
            << " tasks\n\n";

  FixedStrategy fixed0(0);
  FixedStrategy fixed200(200);
  MeanStrategy mean1(1.0);
  MeanStrategy mean2(2.0);
  PredictiveStrategy predictive(cost.vm_startup_ms);
  DynamicStrategy dynamic(&cost);

  TablePrinter table({"strategy", "vm_$", "elastic_$", "total_$",
                      "vs_oracle"});
  const double oracle = ComputeOracleCost(demand.tasks_per_second(), cost)
                            .total();
  for (ProvisioningStrategy* s :
       std::initializer_list<ProvisioningStrategy*>{
           &fixed0, &fixed200, &mean1, &mean2, &predictive, &dynamic}) {
    const auto eval = EvaluateStrategy(s, demand.tasks_per_second(), cost);
    table.BeginRow();
    table.AddCell(s->name());
    table.AddCell(eval.vm_cost, 2);
    table.AddCell(eval.elastic_cost, 2);
    table.AddCell(eval.total(), 2);
    table.AddCell(FormatDouble(eval.total() / oracle, 2) + "x");
  }
  table.BeginRow();
  table.AddCell("oracle");
  table.AddCell("-");
  table.AddCell("-");
  table.AddCell(oracle, 2);
  table.AddCell("1.00x");
  table.PrintText(std::cout);
  return 0;
}
