// Quickstart: generate an analytical workload, let Cackle's dynamic
// cost-based strategy provision for it, and compare the resulting cost
// against naive strategies and the offline oracle.
//
//   $ ./build/examples/quickstart
//
// This exercises the core public API: ProfileLibrary / WorkloadGenerator /
// DemandCurve (workload), CostModel (environment), DynamicStrategy +
// EvaluateStrategy (the paper's contribution), and ComputeOracleCost.

#include <iostream>

#include "cloud/cost_model.h"
#include "common/table_printer.h"
#include "strategy/cost_calculator.h"
#include "strategy/dynamic_strategy.h"
#include "strategy/oracle.h"
#include "workload/demand.h"
#include "workload/profile_library.h"
#include "workload/workload_generator.h"

int main() {
  using namespace cackle;

  // 1. A workload: 2000 TPC-H(-profile) queries over two hours, 30% arriving
  //    uniformly and the rest in 30-minute sinusoidal waves.
  const ProfileLibrary library = ProfileLibrary::BuiltinTpch();
  WorkloadGenerator generator(&library);
  WorkloadOptions workload;
  workload.num_queries = 2000;
  workload.duration_ms = 2 * kMillisPerHour;
  workload.arrival_period_ms = 30 * kMillisPerMinute;
  workload.baseline_load = 0.3;
  const std::vector<QueryArrival> arrivals = generator.Generate(workload);

  // 2. Its second-by-second resource demand (tasks never queue in Cackle,
  //    so demand is the unconstrained schedule).
  const DemandCurve demand = DemandCurve::FromWorkload(arrivals, library);
  std::cout << "workload: " << arrivals.size() << " queries, peak demand "
            << demand.MaxTasks() << " concurrent tasks, "
            << demand.TotalTaskSeconds() << " task-seconds total\n\n";

  // 3. The environment: AWS-like prices (Table 1 of the paper).
  CostModel cost;

  // 4. Provisioning strategies.
  FixedStrategy pure_elastic(0);       // Starling: everything on Lambda
  FixedStrategy overprovisioned(800);  // a big fixed fleet
  MeanStrategy mean2(2.0);             // workload-adaptive, cost-blind
  DynamicStrategy dynamic(&cost);      // Cackle's meta-strategy

  TablePrinter table({"strategy", "vm_$", "elastic_$", "total_$"});
  for (ProvisioningStrategy* s :
       std::initializer_list<ProvisioningStrategy*>{
           &pure_elastic, &overprovisioned, &mean2, &dynamic}) {
    const StrategyEvaluation eval =
        EvaluateStrategy(s, demand.tasks_per_second(), cost);
    table.BeginRow();
    table.AddCell(s->name());
    table.AddCell(eval.vm_cost, 2);
    table.AddCell(eval.elastic_cost, 2);
    table.AddCell(eval.total(), 2);
  }
  const OracleResult oracle =
      ComputeOracleCost(demand.tasks_per_second(), cost);
  table.BeginRow();
  table.AddCell("oracle (full knowledge)");
  table.AddCell(oracle.vm_cost, 2);
  table.AddCell(oracle.elastic_cost, 2);
  table.AddCell(oracle.total(), 2);
  table.PrintText(std::cout);

  std::cout << "\nthe dynamic strategy chose expert \""
            << dynamic.chosen_expert_name() << "\" after "
            << dynamic.weights().rounds() << " multiplicative-weights "
            << "rounds (" << dynamic.expert_switches() << " switches)\n";
  return 0;
}
