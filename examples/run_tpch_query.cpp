// Run a single TPC-H query on the real in-process executor: generates the
// dataset, builds the Cackle-style stage plan, executes it task by task,
// and prints the result table and per-stage statistics.
//
//   $ ./build/examples/run_tpch_query [query=1] [scale_factor=0.01] [tasks=4]
//
// Query ids 1..22 are TPC-H; 23..25 are the DS-like additions.

#include <cstdlib>
#include <iostream>

#include "common/table_printer.h"
#include "exec/datagen.h"
#include "exec/plan.h"
#include "exec/tpch_queries.h"

int main(int argc, char** argv) {
  using namespace cackle;
  using namespace cackle::exec;

  const int query = argc > 1 ? std::atoi(argv[1]) : 1;
  const double sf = argc > 2 ? std::atof(argv[2]) : 0.01;
  PlanConfig config;
  config.tasks = argc > 3 ? std::atoi(argv[3]) : 4;

  std::cout << "generating TPC-H data at scale factor " << sf << "...\n";
  const Catalog catalog = GenerateTpch(sf);
  std::cout << catalog.TotalRows() << " rows / "
            << catalog.TotalBytes() / (1024 * 1024) << " MiB across 8 tables\n\n";

  const StagePlan plan = BuildTpchPlan(query, catalog, config);
  std::cout << "executing " << plan.name << " (" << plan.stages.size()
            << " stages, " << config.tasks << " tasks per parallel stage)\n\n";

  PlanExecutor executor;
  PlanRunStats stats;
  const Table result = executor.Execute(plan, &stats);

  std::cout << result.ToString(25) << "\n";

  TablePrinter stage_table({"stage", "tasks", "median_task_us", "out_rows",
                            "out_bytes"});
  for (const StageStats& s : stats.stages) {
    std::vector<int64_t> micros = s.task_micros;
    std::sort(micros.begin(), micros.end());
    stage_table.BeginRow();
    stage_table.AddCell(s.label);
    stage_table.AddCell(s.num_tasks);
    stage_table.AddCell(micros.empty() ? 0 : micros[micros.size() / 2]);
    stage_table.AddCell(s.output_rows);
    stage_table.AddCell(s.output_bytes);
  }
  stage_table.PrintText(std::cout);
  std::cout << "\ntotal wall time: " << stats.total_micros / 1000 << " ms\n";
  return 0;
}
