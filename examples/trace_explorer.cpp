// Trace explorer: replay a demand trace — your own CSV export or one of
// the built-in synthetic real-world traces — through every provisioning
// strategy and the oracle, under configurable prices.
//
//   $ ./build/examples/trace_explorer azure            # builtin trace
//   $ ./build/examples/trace_explorer my_trace.csv 8   # CSV + 8x premium
//
// CSV format: "second,demand" rows (header optional; gaps carry the
// previous value forward). This is how to answer "what would Cackle have
// cost on *my* cluster's last month?" — export the concurrency series and
// point this tool at it.

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table_printer.h"
#include "strategy/cost_calculator.h"
#include "strategy/dynamic_strategy.h"
#include "strategy/oracle.h"
#include "workload/trace_generator.h"
#include "workload/trace_io.h"

int main(int argc, char** argv) {
  using namespace cackle;

  const std::string source = argc > 1 ? argv[1] : "azure";
  const double premium = argc > 2 ? std::atof(argv[2]) : 6.0;

  std::vector<int64_t> demand;
  if (source == "azure") {
    demand = TraceGenerator::AzureNodes(3, 72);
    for (int64_t& d : demand) d *= TraceGenerator::kTasksPerAzureNode;
  } else if (source == "alibaba") {
    demand = TraceGenerator::AlibabaCpus(2, 72);
  } else if (source == "startup") {
    demand = TraceGenerator::StartupConcurrency(1, 72);
    for (int64_t& d : demand) d *= 20;  // queries -> tasks, roughly
  } else {
    auto loaded = LoadDemandCsv(source);
    if (!loaded.ok()) {
      std::cerr << "failed to load " << source << ": "
                << loaded.status().ToString() << "\n";
      return 1;
    }
    demand = std::move(loaded).value();
  }

  CostModel cost;
  cost.elastic_cost_per_hour = cost.vm_cost_per_hour * premium;

  int64_t peak = 0;
  int64_t total = 0;
  for (int64_t d : demand) {
    peak = std::max(peak, d);
    total += d;
  }
  std::cout << "trace: " << demand.size() / 3600 << "h, peak " << peak
            << " tasks, mean " << total / static_cast<int64_t>(demand.size())
            << " tasks; elastic premium " << premium << "x\n\n";

  FixedStrategy fixed0(0);
  FixedStrategy fixed_peak(peak);
  MeanStrategy mean1(1.0);
  MeanStrategy mean2(2.0);
  PredictiveStrategy predictive(cost.vm_startup_ms);
  DynamicStrategy dynamic(&cost);

  TablePrinter table({"strategy", "vm_$", "elastic_$", "total_$",
                      "normalized_to_fixed_0"});
  const double base =
      EvaluateStrategy(&fixed0, demand, cost).total();
  FixedStrategy fixed0_again(0);
  for (ProvisioningStrategy* s :
       std::initializer_list<ProvisioningStrategy*>{
           &fixed0_again, &fixed_peak, &mean1, &mean2, &predictive,
           &dynamic}) {
    const auto eval = EvaluateStrategy(s, demand, cost);
    table.BeginRow();
    table.AddCell(s->name());
    table.AddCell(eval.vm_cost, 2);
    table.AddCell(eval.elastic_cost, 2);
    table.AddCell(eval.total(), 2);
    table.AddCell(eval.total() / base, 3);
  }
  const OracleResult oracle = ComputeOracleCost(demand, cost);
  table.BeginRow();
  table.AddCell("oracle");
  table.AddCell(oracle.vm_cost, 2);
  table.AddCell(oracle.elastic_cost, 2);
  table.AddCell(oracle.total(), 2);
  table.AddCell(oracle.total() / base, 3);
  table.PrintText(std::cout);
  return 0;
}
