#!/usr/bin/env python3
"""Compare two google-benchmark JSON outputs and print old-vs-new throughput.

Usage:
  bench_compare.py BASELINE.json NEW.json [--out COMBINED.json]

Both inputs are google-benchmark's JSON format (--benchmark_format=json or
--benchmark_out_format=json), with or without repetitions. When a file
contains repetition aggregates, the `mean` aggregate is used; otherwise the
raw per-benchmark entry is. Throughput is items_per_second when the
benchmark reports it, else bytes_per_second, else runs/second derived from
real_time.

With --out, also writes a combined JSON artifact holding the baseline and
new numbers plus the speedup per benchmark (the committed
bench/results/BENCH_micro_exec.json is produced this way).
"""

import argparse
import json
import sys

_TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def _throughput(entry):
    """(value, metric-name) for one benchmark entry."""
    if "events_per_second" in entry:
        return entry["events_per_second"], "events/s"
    if "items_per_second" in entry:
        return entry["items_per_second"], "items/s"
    if "bytes_per_second" in entry:
        return entry["bytes_per_second"], "bytes/s"
    ns = entry["real_time"] * _TIME_UNIT_NS.get(entry.get("time_unit", "ns"))
    return (1e9 / ns if ns else 0.0), "runs/s"


def load(path):
    """{benchmark-name: entry}, preferring the `mean` aggregate."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for entry in doc.get("benchmarks", []):
        name = entry.get("run_name", entry.get("name", ""))
        if entry.get("run_type") == "aggregate":
            if entry.get("aggregate_name") == "mean":
                out[name] = entry
        else:
            out.setdefault(name, entry)
    return out


def environment_header(path):
    """Execution-environment header for the combined artifact.

    Pulls available_cores / cxx_flags out of google-benchmark's context
    block (micro_exec registers them via AddCustomContext) so the committed
    artifact states on its face how many cores the numbers were measured
    on. On a 1-core runner the morsel variants only prove determinism, not
    speedup — the caveat spells that out rather than leaving a misleading
    ~1.0x in the record.
    """
    with open(path) as f:
        ctx = json.load(f).get("context", {})
    cores = ctx.get("available_cores") or ctx.get("num_cpus")
    try:
        cores = int(cores)
    except (TypeError, ValueError):
        cores = None
    header = {
        "available_cores": cores,
        "cxx_flags": ctx.get("cxx_flags"),
        "library_build_type": ctx.get("library_build_type"),
    }
    if cores is not None and cores <= 1:
        header["caveat"] = (
            "measured on a 1-core runner: MorselN variants exercise "
            "scheduling determinism, not parallel speedup")
    return header


def spawn_speedups(run):
    """{name: speedup} vs the baseline-variant sibling within one run.

    Benchmarks come in variant families measured in the same invocation:
    the multi-stage plan benchmarks as Spawn/Pool/Pipelined (per-stage
    thread-spawn baseline vs pool scheduling), the simulation-kernel
    benchmarks as Heap/Calendar (binary-heap baseline vs calendar-queue
    scheduler), and the intra-operator knob variants as Radix/Bloom/MorselN
    suffixes whose scalar sibling is the same name with the suffix dropped.
    For each non-baseline variant this reports how much faster it runs than
    its baseline sibling of the same invocation, so the artifact records
    the win even when the committed cross-run baseline predates these
    benchmarks.
    """
    pairs = (("Pool", "Spawn"), ("Pipelined", "Spawn"),
             ("Calendar", "Heap"),
             ("Radix", ""), ("Bloom", ""), ("Morsel2", ""), ("Morsel4", ""))
    out = {}
    for name, entry in run.items():
        for variant, baseline in pairs:
            if variant in name:
                sibling = name.replace(variant, baseline)
                if sibling in run and sibling != name:
                    value, _ = _throughput(entry)
                    base, _ = _throughput(run[sibling])
                    if base:
                        out[name] = value / base
                break
    return out


def fmt(value):
    for scale, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if value >= scale:
            return f"{value / scale:.2f}{suffix}"
    return f"{value:.1f}"


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("new")
    parser.add_argument("--out", help="write combined JSON artifact here")
    args = parser.parse_args(argv)

    old = load(args.baseline)
    new = load(args.new)
    shared = [name for name in new if name in old]
    if not shared:
        print("no overlapping benchmarks between the two files",
              file=sys.stderr)
        return 1

    vs_spawn = spawn_speedups(new)

    def annotate(name):
        if name in vs_spawn:
            return f"  [{vs_spawn[name]:.2f}x vs baseline]"
        return ""

    width = max(len(n) for n in new)
    print(f"{'benchmark':<{width}}  {'old':>10}  {'new':>10}  speedup")
    combined = []
    for name in shared:
        old_v, metric = _throughput(old[name])
        new_v, _ = _throughput(new[name])
        speedup = new_v / old_v if old_v else float("inf")
        print(f"{name:<{width}}  {fmt(old_v):>10}  {fmt(new_v):>10}  "
              f"{speedup:6.2f}x  ({metric}){annotate(name)}")
        combined.append({
            "name": name,
            "metric": metric,
            "baseline": old_v,
            "after": new_v,
            "speedup": round(speedup, 4),
            "speedup_vs_spawn": round(vs_spawn[name], 4)
            if name in vs_spawn else None,
        })
    only_new = sorted(set(new) - set(old))
    for name in only_new:
        new_v, metric = _throughput(new[name])
        print(f"{name:<{width}}  {'-':>10}  {fmt(new_v):>10}      new  "
              f"({metric}){annotate(name)}")
        combined.append({
            "name": name,
            "metric": metric,
            "baseline": None,
            "after": new_v,
            "speedup": None,
            "speedup_vs_spawn": round(vs_spawn[name], 4)
            if name in vs_spawn else None,
        })

    if args.out:
        with open(args.out, "w") as f:
            json.dump({
                "baseline_file": args.baseline,
                "new_file": args.new,
                "environment": environment_header(args.new),
                "benchmarks": combined,
            }, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
