#!/usr/bin/env bash
# CI entry point: builds and tests the Release configuration and an
# AddressSanitizer+UBSan configuration. Any test failure or sanitizer
# report (sanitizers run with -fno-sanitize-recover=all) fails the script.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_config() {
  local dir="$1"
  shift
  echo "=== configure ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@"
  echo "=== build ${dir} ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== test ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

# (No -DCACKLE_WERROR=ON: GCC 12's -O3 -Wrestrict false-positive on
# std::string operator+ in strategy.cc would fail the build.)
run_config build-release -DCMAKE_BUILD_TYPE=Release
run_config build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  "-DCACKLE_SANITIZE=address;undefined"

echo "CI passed: Release and address;undefined configurations are green."
