#!/usr/bin/env bash
# CI entry point: builds and tests three configurations — Release,
# AddressSanitizer+UBSan, and ThreadSanitizer — and smoke-runs the executor
# microbenchmarks to produce a BENCH_micro_exec.json artifact. Any test
# failure or sanitizer report (sanitizers run with
# -fno-sanitize-recover=all) fails the script.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

# run_config <dir> <ctest-regex|-> [cmake args...]
# "-" runs the whole suite; anything else is passed to ctest -R.
run_config() {
  local dir="$1"
  local filter="$2"
  shift 2
  echo "=== configure ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@"
  echo "=== build ${dir} ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== test ${dir} ==="
  local ctest_args=(--test-dir "${dir}" --output-on-failure -j "${JOBS}")
  if [[ "${filter}" != "-" ]]; then
    ctest_args+=(-R "${filter}")
  fi
  ctest "${ctest_args[@]}"
}

# (No -DCACKLE_WERROR=ON: GCC 12's -O3 -Wrestrict false-positive on
# std::string operator+ in strategy.cc would fail the build.)
run_config build-release - -DCMAKE_BUILD_TYPE=Release
run_config build-asan - -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  "-DCACKLE_SANITIZE=address;undefined"
# TSan covers the only genuinely multithreaded code (the work-stealing
# ThreadPool and the PlanExecutor running on it, including the vectorized
# kernels pooled tasks call into); the DES engine is single-threaded by
# construction, so rerunning it under TSan buys nothing.
run_config build-tsan \
  "thread_pool|exec|golden|operators|logical|storage|vectorized" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCACKLE_SANITIZE=thread

# Bench smoke: a short microbenchmark pass that both exercises the bench
# binaries and leaves a machine-readable artifact for trend tracking.
echo "=== bench smoke (micro_exec) ==="
./build-release/bench/micro_exec \
  --benchmark_min_time=0.01 \
  --benchmark_out=build-release/BENCH_micro_exec_smoke.json \
  --benchmark_out_format=json
echo "bench artifact: build-release/BENCH_micro_exec_smoke.json"

# Kernel benchmarks with repetitions, compared against the committed
# baseline (bench/results/.baseline_raw.json, captured before the
# vectorized executor landed). Prints old-vs-new throughput and refreshes
# the combined bench/results/BENCH_micro_exec.json artifact.
echo "=== bench kernels (micro_exec, 3 repetitions) ==="
./build-release/bench/micro_exec \
  --benchmark_filter='BM_Filter|BM_HashJoin|BM_HashAggregate|BM_PartitionByHash|BM_FlatMap|BM_GatherRows|BM_DictEncode|BM_MultiStagePlan' \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  > build-release/BENCH_micro_exec_raw.json
python3 scripts/bench_compare.py \
  bench/results/.baseline_raw.json \
  build-release/BENCH_micro_exec_raw.json \
  --out bench/results/BENCH_micro_exec.json

echo "CI passed: Release, address;undefined, and thread configurations" \
  "are green."
