#!/usr/bin/env bash
# CI entry point. Stage zero is static analysis — the project-invariant lint
# engine (tools/lint/) runs before anything is compiled and fails the script
# on any non-baselined violation. Then three build/test configurations —
# Release (with -Werror), AddressSanitizer+UBSan, and ThreadSanitizer — and
# a microbenchmark smoke pass that produces BENCH_micro_exec.json. Any test
# failure or sanitizer report (sanitizers run with
# -fno-sanitize-recover=all) fails the script.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

# ---------------------------------------------------------------- stage zero
# Project-invariant lint: determinism, layering, Status discipline, raw
# threads, unordered-iteration output, metric-name registry, pointer-order,
# float-merge, rng-stream, lock-annotation. Gating. lint.sh reconfigures a
# stale compile_commands.json first, so the AST pass (when clang.cindex is
# installed) and the clang-tidy gate below see the current tree.
echo "=== lint (stage 0) ==="
./scripts/lint.sh

# The selftest runs twice: once in the ambient environment (AST mode when
# libclang is importable) and once with the AST layer forced off, pinning
# the contract that degraded token-level findings are a subset of AST-mode
# findings — an environment without libclang loses recall, not soundness.
echo "=== lint selftest (ambient, then forced degraded) ==="
python3 tools/lint/selftest.py
CACKLE_LINT_NO_CLANG=1 python3 tools/lint/selftest.py

# NOLINT suppression audit: the justified-suppression inventory is a count
# ratchet against the committed baseline, so suppressions cannot silently
# accumulate; adding one means consciously regenerating the baseline in the
# same review.
echo "=== suppression audit (count ratchet) ==="
python3 tools/lint/cackle_lint.py --root . --suppressions \
  --suppressions-baseline tools/lint/suppressions_baseline.txt

# Gating clang-tidy over the curated families (bugprone-*, concurrency-*,
# performance-move-*) with a committed fingerprint baseline; the full
# .clang-tidy profile stays advisory. Self-skips with a notice when
# clang-tidy is absent (this repo's supported toolchain is GCC-only).
echo "=== clang-tidy gate (curated subset) ==="
python3 tools/lint/clang_tidy_gate.py --root . \
  --baseline tools/lint/clang_tidy_baseline.txt

# Format-diff check on files changed by the latest commit: warning-only for
# pre-existing code (the tree predates .clang-format), gating for anything
# under tools/lint/. Skipped with a notice when clang-format is absent.
echo "=== format check ==="
if command -v clang-format >/dev/null 2>&1; then
  mapfile -t changed < <(git diff --name-only HEAD~1 -- '*.cc' '*.h' \
    2>/dev/null || true)
  format_bad=0
  for f in "${changed[@]}"; do
    [[ -f "$f" ]] || continue
    if ! clang-format --dry-run --Werror "$f" >/dev/null 2>&1; then
      case "$f" in
        tools/lint/*)
          echo "format ERROR (gating): $f"
          format_bad=1
          ;;
        *)
          echo "format warning (non-gating): $f"
          ;;
      esac
    fi
  done
  [[ "${format_bad}" -eq 0 ]] || exit 1
else
  echo "clang-format not installed; skipping format check"
fi

# run_config <dir> <ctest-regex|-> [cmake args...]
# "-" runs the whole suite; anything else is passed to ctest -R.
run_config() {
  local dir="$1"
  local filter="$2"
  shift 2
  echo "=== configure ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@"
  echo "=== build ${dir} ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== test ${dir} ==="
  local ctest_args=(--test-dir "${dir}" --output-on-failure -j "${JOBS}")
  if [[ "${filter}" != "-" ]]; then
    ctest_args+=(-R "${filter}")
  fi
  ctest "${ctest_args[@]}"
}

run_config build-release - -DCMAKE_BUILD_TYPE=Release -DCACKLE_WERROR=ON
run_config build-asan - -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  "-DCACKLE_SANITIZE=address;undefined"
# TSan covers the genuinely multithreaded code: the work-stealing
# ThreadPool, the PlanExecutor running on it (including the vectorized
# kernels pooled tasks call into, and the morsel-parallel join/aggregate
# paths — the `exec` pattern pulls in morsel_exec_test and the golden
# suite runs the 1/4/8-thread knob matrix), and the SweepRunner fan-out. Each
# Simulation instance is single-threaded by construction, but the sweep
# harness runs many of them on pool threads, so the simulation and
# scheduler suites run here too.
run_config build-tsan \
  "thread_pool|exec|golden|operators|logical|storage|vectorized|simulation|sim_scheduler|sim_differential|sweep_runner|multitenant" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCACKLE_SANITIZE=thread

# ------------------------------------------------------------- chaos smoke
# One correlated-failure storm scenario end to end in the TSan build: the
# driver exits non-zero unless every arrival is accounted for (completed +
# shed). Bit-identity of the chaos engine's zero-fault configuration
# against the 25 seed golden checksums is gated by golden_results_test,
# which runs in the Release suite and again in the TSan filter above.
echo "=== chaos smoke (reclamation_storm, TSan build) ==="
CACKLE_FAST_BENCH=1 ./build-tsan/bench/chaos_matrix \
  --scenario=reclamation_storm

# Multi-tenant smoke: the tenant-count sweep (fast grid) in the TSan build.
# Exercises weighted-fair admission, per-tenant invoicing, and the sweep
# fan-out under the race detector; multitenant_test above gates the exact
# invoice-closure and thread-count bit-identity properties.
echo "=== multitenant smoke (fast sweep, TSan build) ==="
CACKLE_FAST_BENCH=1 CACKLE_BENCH_OUT_DIR=build-tsan \
  ./build-tsan/bench/multitenant

# Bench smoke: a short microbenchmark pass that both exercises the bench
# binaries and leaves a machine-readable artifact for trend tracking.
echo "=== bench smoke (micro_exec) ==="
./build-release/bench/micro_exec \
  --benchmark_min_time=0.01 \
  --benchmark_out=build-release/BENCH_micro_exec_smoke.json \
  --benchmark_out_format=json
echo "bench artifact: build-release/BENCH_micro_exec_smoke.json"

# Kernel benchmarks with repetitions, compared against the committed
# baseline (bench/results/.baseline_raw.json, captured before the
# vectorized executor landed). Prints old-vs-new throughput and refreshes
# the combined bench/results/BENCH_micro_exec.json artifact.
echo "=== bench kernels (micro_exec, 3 repetitions) ==="
./build-release/bench/micro_exec \
  --benchmark_filter='BM_Filter|BM_HashJoin|BM_HashAggregate|BM_PartitionByHash|BM_FlatMap|BM_GatherRows|BM_DictEncode|BM_MultiStagePlan' \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  > build-release/BENCH_micro_exec_raw.json
python3 scripts/bench_compare.py \
  bench/results/.baseline_raw.json \
  build-release/BENCH_micro_exec_raw.json \
  --out bench/results/BENCH_micro_exec.json

# Simulation-kernel smoke: the scheduler microbench in fast mode, compared
# against the committed full-scale artifact. The committed numbers come
# from paper-scale populations, so the fast-mode run is a smoke test (does
# it run, does it emit well-formed JSON, do the Calendar/Heap pairs still
# resolve), not a regression gate.
echo "=== bench smoke (sim_core, fast) ==="
CACKLE_FAST_BENCH=1 CACKLE_BENCH_OUT_DIR=build-release \
  ./build-release/bench/sim_core
python3 scripts/bench_compare.py \
  bench/results/BENCH_sim_core.json \
  build-release/BENCH_sim_core.json

echo "CI passed: lint, Release (-Werror), address;undefined, and thread" \
  "configurations are green."
