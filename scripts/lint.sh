#!/usr/bin/env bash
# Runs the project-invariant lint engine over src/ exactly as CI does
# (scripts/ci.sh stage zero). Exits non-zero on any non-baselined violation.
#
# The engine derives its file set (and, when clang.cindex is installed, its
# AST translation units) from compile_commands.json. A database that
# predates a CMakeLists.txt edit can mis-describe the tree — wrong flags,
# missing translation units — so a missing or stale database (older than any
# CMakeLists.txt) is reconfigured here before the engine runs.
#
# Usage: scripts/lint.sh [extra cackle_lint.py args]
set -euo pipefail

cd "$(dirname "$0")/.."

# Pick the newest compilation database among the usual build dirs.
cc_json=""
for dir in build build-release build-rel build-asan build-tsan; do
  f="${dir}/compile_commands.json"
  [[ -f "$f" ]] || continue
  if [[ -z "$cc_json" || "$f" -nt "$cc_json" ]]; then
    cc_json="$f"
  fi
done

# Stale when any CMakeLists.txt is newer than the database.
stale=0
if [[ -z "$cc_json" ]]; then
  stale=1
else
  while IFS= read -r -d '' cml; do
    if [[ "$cml" -nt "$cc_json" ]]; then
      stale=1
      break
    fi
  done < <(find . -name CMakeLists.txt -not -path './build*' -print0)
fi

if [[ "$stale" -eq 1 ]]; then
  dir="${cc_json%/compile_commands.json}"
  dir="${dir:-build}"
  echo "lint.sh: ${dir}/compile_commands.json missing or older than a" \
    "CMakeLists.txt; reconfiguring ${dir}" >&2
  cmake -B "$dir" -S . >/dev/null
  cc_json="${dir}/compile_commands.json"
fi

exec python3 tools/lint/cackle_lint.py \
  --root . \
  --baseline tools/lint/baseline.txt \
  --compile-commands "$cc_json" \
  "$@"
