#!/usr/bin/env bash
# Runs the project-invariant lint engine over src/ exactly as CI does
# (scripts/ci.sh stage zero). Exits non-zero on any non-baselined violation.
#
# Usage: scripts/lint.sh [extra cackle_lint.py args]
set -euo pipefail

cd "$(dirname "$0")/.."
exec python3 tools/lint/cackle_lint.py \
  --root . \
  --baseline tools/lint/baseline.txt \
  "$@"
