#include "cloud/billing.h"

#include <sstream>

#include "common/table_printer.h"

namespace cackle {

std::string_view CostCategoryName(CostCategory category) {
  switch (category) {
    case CostCategory::kVm:
      return "vm";
    case CostCategory::kElasticPool:
      return "elastic_pool";
    case CostCategory::kShuffleNode:
      return "shuffle_node";
    case CostCategory::kObjectStorePut:
      return "object_store_put";
    case CostCategory::kObjectStoreGet:
      return "object_store_get";
    case CostCategory::kCoordinator:
      return "coordinator";
    case CostCategory::kNumCategories:
      break;
  }
  return "unknown";
}

std::string BillingMeter::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < kN; ++i) {
    const auto cat = static_cast<CostCategory>(i);
    os << CostCategoryName(cat) << ": $" << FormatDouble(dollars_[i], 6)
       << " (" << events_[i] << " events)\n";
  }
  os << "total: $" << FormatDouble(TotalDollars(), 6) << "\n";
  return os.str();
}

}  // namespace cackle
