#ifndef CACKLE_CLOUD_BILLING_H_
#define CACKLE_CLOUD_BILLING_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace cackle {

/// \brief Cost categories tracked by the billing ledger.
enum class CostCategory : int {
  kVm = 0,
  kElasticPool = 1,
  kShuffleNode = 2,
  kObjectStorePut = 3,
  kObjectStoreGet = 4,
  kCoordinator = 5,
  kNumCategories = 6,
};

std::string_view CostCategoryName(CostCategory category);

/// \brief Per-category dollar ledger plus usage counters.
///
/// Each simulated cloud component charges its usage here; experiments read
/// totals and splits (e.g. Figure 13's VM-vs-elastic-pool cost split).
class BillingMeter {
 public:
  void Charge(CostCategory category, double dollars) {
    dollars_[static_cast<size_t>(category)] += dollars;
    ++events_[static_cast<size_t>(category)];
  }

  double CategoryDollars(CostCategory category) const {
    return dollars_[static_cast<size_t>(category)];
  }
  int64_t CategoryEvents(CostCategory category) const {
    return events_[static_cast<size_t>(category)];
  }

  /// Sum over all categories.
  double TotalDollars() const {
    double total = 0.0;
    for (double d : dollars_) total += d;
    return total;
  }

  /// Execution-layer compute only (VM + elastic pool).
  double ComputeDollars() const {
    return CategoryDollars(CostCategory::kVm) +
           CategoryDollars(CostCategory::kElasticPool);
  }

  /// Shuffle layer (shuffle nodes + object store requests).
  double ShuffleDollars() const {
    return CategoryDollars(CostCategory::kShuffleNode) +
           CategoryDollars(CostCategory::kObjectStorePut) +
           CategoryDollars(CostCategory::kObjectStoreGet);
  }

  void Reset() {
    dollars_.fill(0.0);
    events_.fill(0);
  }

  /// Multi-line human-readable breakdown.
  std::string ToString() const;

 private:
  static constexpr size_t kN =
      static_cast<size_t>(CostCategory::kNumCategories);
  std::array<double, kN> dollars_{};
  std::array<int64_t, kN> events_{};
};

}  // namespace cackle

#endif  // CACKLE_CLOUD_BILLING_H_
