#include "cloud/chaos_timeline.h"

#include <algorithm>

#include "common/logging.h"

namespace cackle {

namespace {
// One named sub-stream per chaos process: enabling one process never
// shifts the windows another generates from the same seed (tag values
// unchanged from the historical XOR constants).
constexpr uint64_t kOutageStreamTag = 0x0007a9e0ULL;
constexpr uint64_t kStormStreamTag = 0x57072137ULL;
constexpr uint64_t kBrownoutStreamTag = 0xb7070a07ULL;
constexpr uint64_t kPriceStreamTag = 0x971ce5b0ULL;
}  // namespace

ChaosTimeline::ChaosTimeline(const ChaosTimelineOptions& options, uint64_t seed)
    : options_(options) {
  CACKLE_CHECK_GE(options_.horizon_ms, 0);
  CACKLE_CHECK_GE(options_.outage.windows_per_hour, 0.0);
  CACKLE_CHECK_GE(options_.outage.elastic_failure_fraction, 0.0);
  CACKLE_CHECK_LE(options_.outage.elastic_failure_fraction, 1.0);
  CACKLE_CHECK_GE(options_.storm.storms_per_hour, 0.0);
  CACKLE_CHECK_GE(options_.storm.reclaim_fraction_per_minute, 0.0);
  CACKLE_CHECK_LE(options_.storm.reclaim_fraction_per_minute, 1.0);
  CACKLE_CHECK_GE(options_.brownout.windows_per_hour, 0.0);
  CACKLE_CHECK_GE(options_.brownout.store_error_rate, 0.0);
  // Transient errors must stay transient, same bound as FaultProfile.
  CACKLE_CHECK_LE(options_.brownout.store_error_rate, 0.95);
  CACKLE_CHECK_GE(options_.price_shock.shocks_per_hour, 0.0);
  CACKLE_CHECK_GT(options_.price_shock.price_multiplier, 0.0);

  // One stream per process: enabling one process never shifts the windows
  // another process generates from the same seed.
  Rng outage_rng = Rng::Stream(seed, kOutageStreamTag);
  Rng storm_rng = Rng::Stream(seed, kStormStreamTag);
  Rng brownout_rng = Rng::Stream(seed, kBrownoutStreamTag);
  Rng price_rng = Rng::Stream(seed, kPriceStreamTag);
  if (options_.outage.enabled()) {
    outage_windows_ =
        GenerateWindows(options_.outage.windows_per_hour,
                        options_.outage.mean_window_ms, options_.horizon_ms,
                        &outage_rng);
  }
  if (options_.storm.enabled()) {
    storm_windows_ =
        GenerateWindows(options_.storm.storms_per_hour,
                        options_.storm.mean_storm_ms, options_.horizon_ms,
                        &storm_rng);
  }
  if (options_.brownout.enabled()) {
    brownout_windows_ =
        GenerateWindows(options_.brownout.windows_per_hour,
                        options_.brownout.mean_window_ms, options_.horizon_ms,
                        &brownout_rng);
  }
  if (options_.price_shock.enabled()) {
    price_shock_windows_ =
        GenerateWindows(options_.price_shock.shocks_per_hour,
                        options_.price_shock.mean_shock_ms, options_.horizon_ms,
                        &price_rng);
  }
}

std::vector<ChaosWindow> ChaosTimeline::GenerateWindows(double per_hour,
                                                        SimTimeMs mean_ms,
                                                        SimTimeMs horizon_ms,
                                                        Rng* rng) {
  CACKLE_CHECK_GT(per_hour, 0.0);
  CACKLE_CHECK_GT(mean_ms, 0);
  std::vector<ChaosWindow> windows;
  const double gap_rate_per_ms =
      per_hour / static_cast<double>(kMillisPerHour);
  const double duration_rate_per_ms = 1.0 / static_cast<double>(mean_ms);
  SimTimeMs t = 0;
  while (true) {
    t += std::max<SimTimeMs>(
        1, static_cast<SimTimeMs>(rng->NextExponential(gap_rate_per_ms)));
    if (t >= horizon_ms) break;
    const SimTimeMs duration = std::max<SimTimeMs>(
        1, static_cast<SimTimeMs>(rng->NextExponential(duration_rate_per_ms)));
    ChaosWindow window;
    window.start_ms = t;
    window.end_ms = std::min(horizon_ms, t + duration);
    windows.push_back(window);
    t = window.end_ms;
  }
  return windows;
}

bool ChaosTimeline::Contains(const std::vector<ChaosWindow>& windows,
                             SimTimeMs now) {
  // Windows are sorted and disjoint: find the first window starting after
  // `now`; its predecessor is the only candidate.
  auto it = std::upper_bound(
      windows.begin(), windows.end(), now,
      [](SimTimeMs t, const ChaosWindow& w) { return t < w.start_ms; });
  if (it == windows.begin()) return false;
  return std::prev(it)->Contains(now);
}

double ChaosTimeline::PriceMultiplierAt(SimTimeMs now) const {
  return Contains(price_shock_windows_, now)
             ? options_.price_shock.price_multiplier
             : 1.0;
}

SimTimeMs ChaosTimeline::TotalMs(const std::vector<ChaosWindow>& windows) {
  SimTimeMs total = 0;
  for (const ChaosWindow& w : windows) total += w.duration_ms();
  return total;
}

std::vector<std::pair<SimTimeMs, double>> ChaosTimeline::PriceBreakpoints(
    double base_price_per_hour) const {
  std::vector<std::pair<SimTimeMs, double>> breakpoints;
  breakpoints.emplace_back(0, base_price_per_hour);
  for (const ChaosWindow& w : price_shock_windows_) {
    breakpoints.emplace_back(
        w.start_ms, base_price_per_hour * options_.price_shock.price_multiplier);
    breakpoints.emplace_back(w.end_ms, base_price_per_hour);
  }
  return breakpoints;
}

}  // namespace cackle
