#ifndef CACKLE_CLOUD_CHAOS_TIMELINE_H_
#define CACKLE_CLOUD_CHAOS_TIMELINE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sim/simulation.h"

namespace cackle {

/// \brief A closed-open interval of simulated time during which one fault
/// process is active.
struct ChaosWindow {
  SimTimeMs start_ms = 0;
  SimTimeMs end_ms = 0;

  SimTimeMs duration_ms() const { return end_ms - start_ms; }
  bool Contains(SimTimeMs t) const { return t >= start_ms && t < end_ms; }
};

/// \brief AZ-wide outage windows: every VM launch fails while a window is
/// active, and a configurable fraction of elastic invocations die mid-run.
struct OutageProcessOptions {
  /// Poisson arrival rate of outage windows; 0 disables the process.
  double windows_per_hour = 0.0;
  /// Mean window length (exponentially distributed).
  SimTimeMs mean_window_ms = 2 * kMillisPerMinute;
  /// Fraction of elastic invocations failing while a window is active.
  double elastic_failure_fraction = 0.5;

  bool enabled() const { return windows_per_hour > 0.0; }
};

/// \brief Spot-reclamation storms: a two-state Markov-modulated process
/// (calm / storm, exponential sojourn times in both states). While a storm
/// is active the provider reclaims a fraction of the ready fleet per minute
/// — busy VMs included — in bursts the per-VM exponential-lifetime model
/// cannot produce.
struct StormProcessOptions {
  /// Calm -> storm transition rate; 0 disables the process.
  double storms_per_hour = 0.0;
  /// Mean storm length (exponential sojourn in the storm state).
  SimTimeMs mean_storm_ms = 5 * kMillisPerMinute;
  /// Expected fraction of the ready fleet reclaimed per storm minute.
  double reclaim_fraction_per_minute = 0.25;

  bool enabled() const {
    return storms_per_hour > 0.0 && reclaim_fraction_per_minute > 0.0;
  }
};

/// \brief Object-store brownouts: windows of elevated transient-error rate
/// and inflated read latency (the S3 "elevated error rates" incident shape).
struct BrownoutProcessOptions {
  /// Poisson arrival rate of brownout windows; 0 disables the process.
  double windows_per_hour = 0.0;
  /// Mean window length (exponentially distributed).
  SimTimeMs mean_window_ms = 3 * kMillisPerMinute;
  /// Transient-error rate while a window is active (replaces the base rate
  /// when higher).
  double store_error_rate = 0.25;
  /// Nominal store read latency during a brownout, before inflation: the
  /// fault-free model treats store reads as instantaneous, so this is the
  /// first moment latency becomes visible at all.
  SimTimeMs base_read_latency_ms = 200;
  /// Multiplier on the nominal latency while a window is active.
  double latency_inflation = 5.0;
  /// Probability a read lands in the heavy tail (on top of inflation).
  double tail_probability = 0.1;
  /// Multiplier applied to tail reads.
  double tail_multiplier = 10.0;

  bool enabled() const { return windows_per_hour > 0.0; }
};

/// \brief Spot price shocks: windows during which the spot price is
/// multiplied (Section 5.3 of the paper observes the c5a.large spot price
/// nearly doubling while the Lambda price stayed fixed).
struct PriceShockProcessOptions {
  /// Poisson arrival rate of shock windows; 0 disables the process.
  double shocks_per_hour = 0.0;
  /// Mean shock length (exponentially distributed).
  SimTimeMs mean_shock_ms = 30 * kMillisPerMinute;
  /// Price multiplier while a shock is active.
  double price_multiplier = 2.0;

  bool enabled() const { return shocks_per_hour > 0.0 && price_multiplier != 1.0; }
};

/// \brief Configuration of the temporal fault processes. All processes
/// default to disabled; a default-constructed options struct produces no
/// timeline at all and is bit-identical to the memoryless-only injector.
struct ChaosTimelineOptions {
  /// Horizon over which windows are generated. 0 disables every process
  /// regardless of their rates (the engine defaults it to cover the
  /// workload when a scenario enables a process without setting it).
  SimTimeMs horizon_ms = 0;
  OutageProcessOptions outage;
  StormProcessOptions storm;
  BrownoutProcessOptions brownout;
  PriceShockProcessOptions price_shock;

  bool any() const {
    return horizon_ms > 0 &&
           (outage.enabled() || storm.enabled() || brownout.enabled() ||
            price_shock.enabled());
  }
};

/// \brief Deterministic, precomputed schedule of correlated fault windows.
///
/// All windows are generated at construction from per-process RNG streams
/// derived from one seed, so the timeline never interacts with the event
/// queue: querying it at any simulated time consumes no randomness and two
/// runs with the same seed see exactly the same storms. Processes are
/// renewal processes — exponential gaps between windows, exponential window
/// lengths — which for the storm process is precisely a two-state
/// Markov-modulated intensity (calm/storm sojourns).
class ChaosTimeline {
 public:
  ChaosTimeline(const ChaosTimelineOptions& options, uint64_t seed);

  const ChaosTimelineOptions& options() const { return options_; }

  bool InOutage(SimTimeMs now) const { return Contains(outage_windows_, now); }
  bool InStorm(SimTimeMs now) const { return Contains(storm_windows_, now); }
  bool InBrownout(SimTimeMs now) const {
    return Contains(brownout_windows_, now);
  }

  /// Spot-price multiplier in effect at `now` (1.0 outside shocks).
  double PriceMultiplierAt(SimTimeMs now) const;

  const std::vector<ChaosWindow>& outage_windows() const {
    return outage_windows_;
  }
  const std::vector<ChaosWindow>& storm_windows() const {
    return storm_windows_;
  }
  const std::vector<ChaosWindow>& brownout_windows() const {
    return brownout_windows_;
  }
  const std::vector<ChaosWindow>& price_shock_windows() const {
    return price_shock_windows_;
  }

  static SimTimeMs TotalMs(const std::vector<ChaosWindow>& windows);

  /// Piecewise-constant spot price breakpoints for a SpotMarket: the base
  /// price, multiplied during each shock window.
  std::vector<std::pair<SimTimeMs, double>> PriceBreakpoints(
      double base_price_per_hour) const;

 private:
  /// Renewal-process window generation: exponential gaps at `per_hour`,
  /// exponential lengths with mean `mean_ms`, clipped to [0, horizon).
  static std::vector<ChaosWindow> GenerateWindows(double per_hour,
                                                  SimTimeMs mean_ms,
                                                  SimTimeMs horizon_ms,
                                                  Rng* rng);
  static bool Contains(const std::vector<ChaosWindow>& windows, SimTimeMs now);

  ChaosTimelineOptions options_;
  std::vector<ChaosWindow> outage_windows_;
  std::vector<ChaosWindow> storm_windows_;
  std::vector<ChaosWindow> brownout_windows_;
  std::vector<ChaosWindow> price_shock_windows_;
};

}  // namespace cackle

#endif  // CACKLE_CLOUD_CHAOS_TIMELINE_H_
