#ifndef CACKLE_CLOUD_COST_MODEL_H_
#define CACKLE_CLOUD_COST_MODEL_H_

#include <cstdint>

#include "sim/simulation.h"

namespace cackle {

/// \brief Prices and billing rules of the (simulated) cloud provider.
///
/// Defaults reproduce Table 1 of the paper and the AWS constants quoted in
/// Sections 2.2, 5.1 and 7.1: a 2-vCPU spot VM at $0.03/hour with a 3-minute
/// startup latency and 1-minute minimum billing, an elastic pool slot (AWS
/// Lambda, 3 GB) at $0.18/hour billed per millisecond, S3 request pricing,
/// and c5.xlarge-class shuffle nodes at $0.08/hour.
///
/// Everything is sweepable; the environment-change experiments (Figures 8
/// and 9) vary `elastic_cost_per_hour` and `vm_startup_ms`.
struct CostModel {
  // --- Execution layer: provisioned VMs (2 vCPUs, >= 4 GB) ---
  double vm_cost_per_hour = 0.03;
  SimTimeMs vm_startup_ms = 3 * kMillisPerMinute;
  SimTimeMs vm_min_billing_ms = 1 * kMillisPerMinute;
  /// VMs are billed per second (AWS Linux spot behaviour).
  SimTimeMs vm_billing_granularity_ms = kMillisPerSecond;

  // --- Execution layer: elastic pool (cloud functions, 2-vCPU-equivalent) ---
  double elastic_cost_per_hour = 0.18;
  /// Milliseconds-granularity billing, no minimum.
  SimTimeMs elastic_billing_granularity_ms = 1;
  /// Typical time between invoking a function and it running; the paper
  /// measures 99% of Lambdas starting within 200 ms.
  SimTimeMs elastic_startup_typical_ms = 100;
  SimTimeMs elastic_startup_tail_ms = 200;

  // --- Shuffling layer ---
  /// Provisioned shuffle node: 4 vCPUs, 8 GB DRAM (c5.xlarge-class).
  double shuffle_node_cost_per_hour = 0.08;
  int64_t shuffle_node_memory_bytes = 8LL * 1024 * 1024 * 1024;
  SimTimeMs shuffle_node_startup_ms = 3 * kMillisPerMinute;
  SimTimeMs shuffle_node_min_billing_ms = 1 * kMillisPerMinute;

  // --- Cloud object storage (S3-like), the shuffle layer's elastic pool ---
  /// $0.005 per 1000 PUT requests.
  double object_store_put_cost = 0.000005;
  /// $0.0004 per 1000 GET requests.
  double object_store_get_cost = 0.0000004;

  // --- Coordinator ---
  /// Single on-demand c5a.xlarge.
  double coordinator_cost_per_hour = 0.154;

  /// Cost premium of the elastic pool relative to a VM (the paper's
  /// measured default is 6x).
  double ElasticPremium() const {
    return elastic_cost_per_hour / vm_cost_per_hour;
  }

  /// Dollars for one VM billed for `ms` of runtime, applying the minimum
  /// billing time and per-second rounding.
  double VmCost(SimTimeMs ms) const {
    if (ms < vm_min_billing_ms) ms = vm_min_billing_ms;
    const SimTimeMs g = vm_billing_granularity_ms;
    const SimTimeMs rounded = (ms + g - 1) / g * g;
    return vm_cost_per_hour * static_cast<double>(rounded) /
           static_cast<double>(kMillisPerHour);
  }

  /// Dollars for one elastic-pool slot held for `ms` (no minimum,
  /// millisecond granularity).
  double ElasticCost(SimTimeMs ms) const {
    const SimTimeMs g = elastic_billing_granularity_ms;
    const SimTimeMs rounded = (ms + g - 1) / g * g;
    return elastic_cost_per_hour * static_cast<double>(rounded) /
           static_cast<double>(kMillisPerHour);
  }

  /// Dollars for one shuffle node billed for `ms`.
  double ShuffleNodeCost(SimTimeMs ms) const {
    if (ms < shuffle_node_min_billing_ms) ms = shuffle_node_min_billing_ms;
    return shuffle_node_cost_per_hour * static_cast<double>(ms) /
           static_cast<double>(kMillisPerHour);
  }

  /// Per-second VM price (convenience for second-granularity accounting).
  double VmCostPerSecond() const { return vm_cost_per_hour / 3600.0; }
  double ElasticCostPerSecond() const { return elastic_cost_per_hour / 3600.0; }
};

}  // namespace cackle

#endif  // CACKLE_CLOUD_COST_MODEL_H_
