#include "cloud/elastic_pool.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metric_names.h"

namespace cackle {

ElasticPool::ElasticPool(Simulation* sim, const CostModel* cost,
                         BillingMeter* meter, Rng rng)
    : sim_(sim), cost_(cost), meter_(meter), rng_(rng) {}

SimTimeMs ElasticPool::SampleStartupLatency() {
  // 99% of invocations start within the tail bound (uniform between half the
  // typical latency and the tail); 1% straggle up to 5x the tail.
  const SimTimeMs typical = cost_->elastic_startup_typical_ms;
  const SimTimeMs tail = cost_->elastic_startup_tail_ms;
  if (rng_.NextBernoulli(0.99)) {
    return rng_.NextInt(std::max<SimTimeMs>(1, typical / 2),
                        std::max<SimTimeMs>(1, tail));
  }
  return rng_.NextInt(tail, 5 * std::max<SimTimeMs>(1, tail));
}

Status ElasticPool::TryAcquire(std::function<void(ElasticSlotId)> granted) {
  return TryAcquire(/*tenant=*/0, std::move(granted));
}

void ElasticPool::SetTenantLimit(int32_t tenant, int64_t limit) {
  CACKLE_CHECK_GE(limit, 0);
  if (limit == 0) {
    tenant_limits_.erase(tenant);
  } else {
    tenant_limits_[tenant] = limit;
  }
}

int64_t ElasticPool::TenantInflight(int32_t tenant) const {
  auto it = tenant_inflight_.find(tenant);
  return it == tenant_inflight_.end() ? 0 : it->second;
}

Status ElasticPool::TryAcquire(int32_t tenant,
                               std::function<void(ElasticSlotId)> granted) {
  // Lambda-style throttling: admission is decided at request time against
  // everything the provider considers in flight (running + starting).
  const int64_t limit =
      injector_ != nullptr ? injector_->profile().elastic_concurrency_limit : 0;
  if (limit > 0 && num_active_ + num_starting_ >= limit) {
    ++total_throttled_;
    return Status::ResourceExhausted("elastic pool concurrency limit");
  }
  const bool tenant_caps = !tenant_limits_.empty();
  if (tenant_caps) {
    const auto cap = tenant_limits_.find(tenant);
    if (cap != tenant_limits_.end() && TenantInflight(tenant) >= cap->second) {
      ++total_tenant_throttled_;
      return Status::ResourceExhausted("per-tenant elastic carve-out");
    }
    ++tenant_inflight_[tenant];
  }
  ++num_starting_;
  const SimTimeMs latency = SampleStartupLatency();
  sim_->ScheduleAfter(
      latency, [this, tenant, tenant_caps, granted = std::move(granted)] {
        const ElasticSlotId id = next_id_++;
        active_.emplace(id, sim_->NowMs());
        if (tenant_caps) slot_tenant_.emplace(id, tenant);
        --num_starting_;
        ++num_active_;
        ++total_invocations_;
        peak_active_ = std::max(peak_active_, num_active_);
        granted(id);
      });
  return Status::OK();
}

void ElasticPool::Acquire(std::function<void(ElasticSlotId)> granted) {
  const Status status = TryAcquire(std::move(granted));
  CACKLE_CHECK(status.ok()) << "Acquire throttled: " << status.ToString();
}

void ElasticPool::Release(ElasticSlotId id) {
  auto it = active_.find(id);
  CACKLE_CHECK(it != active_.end()) << "release of unknown elastic slot";
  const SimTimeMs held = sim_->NowMs() - it->second;
  active_.erase(it);
  --num_active_;
  const auto owner = slot_tenant_.find(id);
  if (owner != slot_tenant_.end()) {
    auto inflight = tenant_inflight_.find(owner->second);
    if (inflight != tenant_inflight_.end() && --inflight->second == 0) {
      tenant_inflight_.erase(inflight);
    }
    slot_tenant_.erase(owner);
  }
  total_billed_ms_ += held;
  meter_->Charge(CostCategory::kElasticPool, cost_->ElasticCost(held));
}

void ElasticPool::ExportMetrics(MetricsRegistry* metrics,
                                const std::string& prefix) const {
  namespace mn = metric_names;
  metrics->SetCounter(prefix + mn::kSuffixInvocations, total_invocations_);
  metrics->SetCounter(prefix + mn::kSuffixThrottled, total_throttled_);
  metrics->SetCounter(prefix + mn::kSuffixTenantThrottled,
                      total_tenant_throttled_);
  metrics->SetCounter(prefix + mn::kSuffixBilledMs, total_billed_ms_);
  metrics->SetGauge(prefix + mn::kSuffixPeakActive,
                    static_cast<double>(peak_active_));
}

void ElasticPool::Invoke(SimTimeMs duration_ms, std::function<void()> done) {
  Acquire([this, duration_ms, done = std::move(done)](ElasticSlotId id) {
    sim_->ScheduleAfter(duration_ms, [this, id, done] {
      Release(id);
      if (done) done();
    });
  });
}

}  // namespace cackle
