#ifndef CACKLE_CLOUD_ELASTIC_POOL_H_
#define CACKLE_CLOUD_ELASTIC_POOL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>

#include "cloud/billing.h"
#include "cloud/cost_model.h"
#include "cloud/fault_injector.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "sim/simulation.h"

namespace cackle {

using ElasticSlotId = int64_t;

/// \brief An AWS-Lambda-like elastic pool of compute inside the simulation.
///
/// The two properties the paper requires of an elastic pool (Section 2.2):
///  1. Immediate availability — requests are granted after a sub-second
///     startup latency (the paper measures 99% of Lambdas within 200 ms).
///  2. Fine-grained usage — slots are billed per millisecond from grant to
///     release with no minimum.
/// Capacity is unbounded by default; the premium relative to VMs lives in
/// CostModel. A FaultInjector can impose a Lambda-style account concurrency
/// limit, in which case requests above the limit are throttled (rejected at
/// request time) and the caller must back off and retry.
class CACKLE_THREAD_CONFINED(
    "slot and tenant carve-out state mutate only from simulation "
    "callbacks on the owning thread")
ElasticPool {
 public:
  ElasticPool(Simulation* sim, const CostModel* cost, BillingMeter* meter,
              Rng rng);

  /// Attaches a fault injector whose profile may impose a concurrency limit.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  /// Requests a slot; `granted` runs after the sampled startup latency with
  /// the slot id. The caller must eventually Release() the slot. Returns
  /// ResourceExhausted (and does not run `granted`) when the request is
  /// throttled by the concurrency limit.
  [[nodiscard]] Status TryAcquire(std::function<void(ElasticSlotId)> granted);

  /// Tenant-aware variant: additionally throttled when `tenant` is at its
  /// per-tenant concurrency carve-out (SetTenantLimit). With no per-tenant
  /// limits configured this is exactly TryAcquire above.
  [[nodiscard]] Status TryAcquire(int32_t tenant,
                                  std::function<void(ElasticSlotId)> granted);

  /// Shared-vs-dedicated policy: caps `tenant`'s in-flight invocations
  /// (running + starting) at `limit`; 0 removes the cap. Per-tenant
  /// bookkeeping is only maintained while at least one cap exists, so the
  /// default configuration stays bit-identical to the uncapped pool.
  void SetTenantLimit(int32_t tenant, int64_t limit);

  /// Like TryAcquire but aborts on throttling; for callers that have not
  /// configured a concurrency limit.
  void Acquire(std::function<void(ElasticSlotId)> granted);

  /// Ends a slot's billing period.
  void Release(ElasticSlotId id);

  /// Convenience: acquire, hold for `duration_ms` after grant, release, then
  /// invoke `done` (may be null).
  void Invoke(SimTimeMs duration_ms, std::function<void()> done);

  int64_t num_active() const { return num_active_; }
  int64_t peak_active() const { return peak_active_; }
  int64_t total_invocations() const { return total_invocations_; }
  int64_t total_throttled() const { return total_throttled_; }
  /// Requests rejected by a per-tenant carve-out (not the account limit).
  int64_t total_tenant_throttled() const { return total_tenant_throttled_; }
  /// In-flight (running + starting) invocations for `tenant`; only tracked
  /// while per-tenant limits are configured.
  int64_t TenantInflight(int32_t tenant) const;
  SimTimeMs total_billed_ms() const { return total_billed_ms_; }

  /// Samples the invocation startup latency (exposed for tests).
  SimTimeMs SampleStartupLatency();

  /// Exports lifetime totals into a metrics registry under `prefix`.
  void ExportMetrics(MetricsRegistry* metrics,
                     const std::string& prefix) const;

 private:
  Simulation* sim_;
  const CostModel* cost_;
  BillingMeter* meter_;
  Rng rng_;
  FaultInjector* injector_ = nullptr;

  std::unordered_map<ElasticSlotId, SimTimeMs> active_;  // id -> grant time
  /// Owner of each live slot; maintained only while per-tenant limits are
  /// configured (lookup/erase only — never iterated, so determinism holds).
  std::unordered_map<ElasticSlotId, int32_t> slot_tenant_;
  std::map<int32_t, int64_t> tenant_limits_;
  std::map<int32_t, int64_t> tenant_inflight_;
  ElasticSlotId next_id_ = 0;
  int64_t num_active_ = 0;
  /// Requests granted admission but still inside their startup latency;
  /// counted against the concurrency limit.
  int64_t num_starting_ = 0;
  int64_t peak_active_ = 0;
  int64_t total_invocations_ = 0;
  int64_t total_throttled_ = 0;
  int64_t total_tenant_throttled_ = 0;
  SimTimeMs total_billed_ms_ = 0;
};

}  // namespace cackle

#endif  // CACKLE_CLOUD_ELASTIC_POOL_H_
