#include "cloud/fault_injector.h"

#include <algorithm>

#include "common/logging.h"

namespace cackle {

FaultProfile FaultProfile::Light() {
  FaultProfile p;
  p.elastic_failure_rate = 0.005;
  p.elastic_straggler_rate = 0.005;
  p.store_error_rate = 0.005;
  p.vm_launch_failure_rate = 0.01;
  p.shuffle_crash_rate_per_hour = 0.1;
  return p;
}

FaultProfile FaultProfile::Moderate() {
  FaultProfile p;
  p.elastic_failure_rate = 0.02;
  p.elastic_straggler_rate = 0.02;
  p.store_error_rate = 0.02;
  p.vm_launch_failure_rate = 0.05;
  p.shuffle_crash_rate_per_hour = 0.5;
  return p;
}

FaultProfile FaultProfile::Heavy() {
  FaultProfile p;
  p.elastic_failure_rate = 0.08;
  p.elastic_straggler_rate = 0.05;
  p.store_error_rate = 0.10;
  p.vm_launch_failure_rate = 0.15;
  p.shuffle_crash_rate_per_hour = 2.0;
  return p;
}

FaultInjector::FaultInjector(const FaultProfile& profile, uint64_t seed)
    : profile_(profile),
      elastic_rng_(seed ^ 0xe1a5711cULL),
      store_rng_(seed ^ 0x5707e000ULL),
      vm_rng_(seed ^ 0x00ff1ee7ULL),
      shuffle_rng_(seed ^ 0x5a0ff1e5ULL) {
  CACKLE_CHECK_GE(profile_.elastic_failure_rate, 0.0);
  CACKLE_CHECK_GE(profile_.elastic_concurrency_limit, 0);
  CACKLE_CHECK_GE(profile_.elastic_straggler_rate, 0.0);
  CACKLE_CHECK_GT(profile_.elastic_straggler_slowdown, 0.0);
  CACKLE_CHECK_GE(profile_.store_error_rate, 0.0);
  CACKLE_CHECK_GE(profile_.vm_launch_failure_rate, 0.0);
  CACKLE_CHECK_GE(profile_.shuffle_crash_rate_per_hour, 0.0);
  // Transient errors must stay transient: a retry loop with error rate ~1
  // never terminates.
  CACKLE_CHECK_LE(profile_.store_error_rate, 0.95);
  CACKLE_CHECK_LE(profile_.elastic_failure_rate, 0.95);
  CACKLE_CHECK_LE(profile_.vm_launch_failure_rate, 0.95);
}

std::optional<SimTimeMs> FaultInjector::SampleElasticFailure(
    SimTimeMs duration_ms) {
  if (profile_.elastic_failure_rate <= 0.0) return std::nullopt;
  if (!elastic_rng_.NextBernoulli(profile_.elastic_failure_rate)) {
    return std::nullopt;
  }
  return elastic_rng_.NextInt(1, std::max<SimTimeMs>(1, duration_ms));
}

bool FaultInjector::SampleElasticStraggler() {
  if (profile_.elastic_straggler_rate <= 0.0) return false;
  return elastic_rng_.NextBernoulli(profile_.elastic_straggler_rate);
}

bool FaultInjector::SampleStoreError() {
  if (profile_.store_error_rate <= 0.0) return false;
  return store_rng_.NextBernoulli(profile_.store_error_rate);
}

bool FaultInjector::SampleVmLaunchFailure() {
  if (profile_.vm_launch_failure_rate <= 0.0) return false;
  return vm_rng_.NextBernoulli(profile_.vm_launch_failure_rate);
}

int64_t FaultInjector::SampleShuffleCrashes(int64_t num_nodes,
                                            SimTimeMs window_ms) {
  if (profile_.shuffle_crash_rate_per_hour <= 0.0 || num_nodes <= 0) return 0;
  const double p = std::min(
      1.0, profile_.shuffle_crash_rate_per_hour * static_cast<double>(window_ms) /
               static_cast<double>(kMillisPerHour));
  int64_t crashes = 0;
  for (int64_t i = 0; i < num_nodes; ++i) {
    if (shuffle_rng_.NextBernoulli(p)) ++crashes;
  }
  return crashes;
}

}  // namespace cackle
