#include "cloud/fault_injector.h"

#include <algorithm>

#include "common/logging.h"

namespace cackle {

namespace {
// One named sub-stream per fault source, so sampling one source never
// perturbs another (tag values unchanged from the historical XOR
// constants). The timeline tag seeds the correlated ChaosTimeline, whose
// own process streams fork from it.
constexpr uint64_t kElasticStreamTag = 0xe1a5711cULL;
constexpr uint64_t kStoreStreamTag = 0x5707e000ULL;
constexpr uint64_t kVmStreamTag = 0x00ff1ee7ULL;
constexpr uint64_t kShuffleStreamTag = 0x5a0ff1e5ULL;
constexpr uint64_t kOutageStreamTag = 0x007a9e00ULL;
constexpr uint64_t kBrownoutStreamTag = 0xb70a0077ULL;
constexpr uint64_t kStormStreamTag = 0x57079997ULL;
constexpr uint64_t kTimelineStreamTag = 0xca05a11eULL;
}  // namespace

FaultProfile FaultProfile::Light() {
  FaultProfile p;
  p.elastic_failure_rate = 0.005;
  p.elastic_straggler_rate = 0.005;
  p.store_error_rate = 0.005;
  p.vm_launch_failure_rate = 0.01;
  p.shuffle_crash_rate_per_hour = 0.1;
  return p;
}

FaultProfile FaultProfile::Moderate() {
  FaultProfile p;
  p.elastic_failure_rate = 0.02;
  p.elastic_straggler_rate = 0.02;
  p.store_error_rate = 0.02;
  p.vm_launch_failure_rate = 0.05;
  p.shuffle_crash_rate_per_hour = 0.5;
  return p;
}

FaultProfile FaultProfile::Heavy() {
  FaultProfile p;
  p.elastic_failure_rate = 0.08;
  p.elastic_straggler_rate = 0.05;
  p.store_error_rate = 0.10;
  p.vm_launch_failure_rate = 0.15;
  p.shuffle_crash_rate_per_hour = 2.0;
  return p;
}

FaultInjector::FaultInjector(const FaultProfile& profile, uint64_t seed)
    : FaultInjector(profile, ChaosTimelineOptions{}, seed) {}

FaultInjector::FaultInjector(const FaultProfile& profile,
                             const ChaosTimelineOptions& chaos, uint64_t seed)
    : profile_(profile),
      elastic_rng_(Rng::StreamSeed(seed, kElasticStreamTag)),
      store_rng_(Rng::StreamSeed(seed, kStoreStreamTag)),
      vm_rng_(Rng::StreamSeed(seed, kVmStreamTag)),
      shuffle_rng_(Rng::StreamSeed(seed, kShuffleStreamTag)),
      outage_rng_(Rng::StreamSeed(seed, kOutageStreamTag)),
      brownout_rng_(Rng::StreamSeed(seed, kBrownoutStreamTag)),
      storm_rng_(Rng::StreamSeed(seed, kStormStreamTag)) {
  CACKLE_CHECK_GE(profile_.elastic_failure_rate, 0.0);
  CACKLE_CHECK_GE(profile_.elastic_concurrency_limit, 0);
  CACKLE_CHECK_GE(profile_.elastic_straggler_rate, 0.0);
  CACKLE_CHECK_GT(profile_.elastic_straggler_slowdown, 0.0);
  CACKLE_CHECK_GE(profile_.store_error_rate, 0.0);
  CACKLE_CHECK_GE(profile_.vm_launch_failure_rate, 0.0);
  CACKLE_CHECK_GE(profile_.shuffle_crash_rate_per_hour, 0.0);
  // Transient errors must stay transient: a retry loop with error rate ~1
  // never terminates.
  CACKLE_CHECK_LE(profile_.store_error_rate, 0.95);
  CACKLE_CHECK_LE(profile_.elastic_failure_rate, 0.95);
  CACKLE_CHECK_LE(profile_.vm_launch_failure_rate, 0.95);
  if (chaos.any()) {
    timeline_ = std::make_unique<ChaosTimeline>(
        chaos, Rng::StreamSeed(seed, kTimelineStreamTag));
  }
}

std::optional<SimTimeMs> FaultInjector::SampleElasticFailure(
    SimTimeMs now, SimTimeMs duration_ms) {
  // Correlated outage deaths first, from the outage stream, so the base
  // stream stays aligned with a timeline-free run.
  if (timeline_ != nullptr && timeline_->InOutage(now) &&
      timeline_->options().outage.elastic_failure_fraction > 0.0) {
    if (outage_rng_.NextBernoulli(
            timeline_->options().outage.elastic_failure_fraction)) {
      return outage_rng_.NextInt(1, std::max<SimTimeMs>(1, duration_ms));
    }
  }
  if (profile_.elastic_failure_rate <= 0.0) return std::nullopt;
  if (!elastic_rng_.NextBernoulli(profile_.elastic_failure_rate)) {
    return std::nullopt;
  }
  return elastic_rng_.NextInt(1, std::max<SimTimeMs>(1, duration_ms));
}

bool FaultInjector::SampleElasticStraggler() {
  if (profile_.elastic_straggler_rate <= 0.0) return false;
  return elastic_rng_.NextBernoulli(profile_.elastic_straggler_rate);
}

bool FaultInjector::SampleStoreError(SimTimeMs now) {
  // During a brownout the elevated rate replaces the base rate when higher;
  // the brownout stream owns the draw so the base stream stays aligned.
  if (timeline_ != nullptr && timeline_->InBrownout(now)) {
    const double brownout_rate = timeline_->options().brownout.store_error_rate;
    if (brownout_rate > profile_.store_error_rate) {
      return brownout_rng_.NextBernoulli(brownout_rate);
    }
  }
  if (profile_.store_error_rate <= 0.0) return false;
  return store_rng_.NextBernoulli(profile_.store_error_rate);
}

bool FaultInjector::SampleVmLaunchFailure(SimTimeMs now) {
  // An outage window kills every launch: deterministic, no draw.
  if (timeline_ != nullptr && timeline_->InOutage(now)) return true;
  if (profile_.vm_launch_failure_rate <= 0.0) return false;
  return vm_rng_.NextBernoulli(profile_.vm_launch_failure_rate);
}

int64_t FaultInjector::SampleShuffleCrashes(int64_t num_nodes,
                                            SimTimeMs window_ms) {
  if (profile_.shuffle_crash_rate_per_hour <= 0.0 || num_nodes <= 0) return 0;
  const double p = std::min(
      1.0, profile_.shuffle_crash_rate_per_hour * static_cast<double>(window_ms) /
               static_cast<double>(kMillisPerHour));
  int64_t crashes = 0;
  for (int64_t i = 0; i < num_nodes; ++i) {
    if (shuffle_rng_.NextBernoulli(p)) ++crashes;
  }
  return crashes;
}

bool FaultInjector::HasStorms() const {
  return timeline_ != nullptr && timeline_->options().storm.enabled();
}

int64_t FaultInjector::SampleStormReclaims(int64_t num_ready, SimTimeMs now,
                                           SimTimeMs window_ms) {
  if (!HasStorms() || num_ready <= 0) return 0;
  if (!timeline_->InStorm(now)) return 0;
  const double p =
      std::min(1.0, timeline_->options().storm.reclaim_fraction_per_minute *
                        static_cast<double>(window_ms) /
                        static_cast<double>(kMillisPerMinute));
  int64_t reclaims = 0;
  for (int64_t i = 0; i < num_ready; ++i) {
    if (storm_rng_.NextBernoulli(p)) ++reclaims;
  }
  return reclaims;
}

SimTimeMs FaultInjector::SampleBrownoutReadLatency(SimTimeMs now) {
  if (timeline_ == nullptr || !timeline_->InBrownout(now)) return 0;
  const BrownoutProcessOptions& b = timeline_->options().brownout;
  double latency = static_cast<double>(b.base_read_latency_ms) *
                   b.latency_inflation * brownout_rng_.NextDouble(0.75, 1.25);
  if (b.tail_probability > 0.0 &&
      brownout_rng_.NextBernoulli(b.tail_probability)) {
    latency *= b.tail_multiplier;
  }
  return std::max<SimTimeMs>(1, static_cast<SimTimeMs>(latency));
}

}  // namespace cackle
