#ifndef CACKLE_CLOUD_FAULT_INJECTOR_H_
#define CACKLE_CLOUD_FAULT_INJECTOR_H_

#include <cstdint>
#include <optional>

#include "common/rng.h"
#include "sim/simulation.h"

namespace cackle {

/// \brief Per-service fault rates of the simulated cloud substrate.
///
/// All rates default to zero, which must leave every component bit-identical
/// to a run without fault injection: a zero rate consumes no randomness and
/// takes no alternative code path. Nonzero rates model the failure modes the
/// paper's substrate abstracts away (Starling Section 5, Smartpick's
/// serverless unreliability model):
///  - Elastic invocations fail mid-run and must be re-placed.
///  - The elastic pool enforces a Lambda-style account concurrency limit;
///    requests above it are throttled and the caller must back off.
///  - Object-store requests return transient errors; failed requests are
///    still billed (S3 bills errored requests).
///  - VM launches fail after the startup delay (spot capacity errors).
///  - Shuffle nodes crash, destroying their share of resident partitions.
///  - A fraction of elastic invocations straggle (run `straggler_slowdown`
///    times slower), motivating speculative re-execution.
struct FaultProfile {
  /// Probability an elastic invocation fails partway through its run.
  double elastic_failure_rate = 0.0;
  /// Max concurrent elastic slots (granted + in flight); 0 = unbounded.
  int64_t elastic_concurrency_limit = 0;
  /// Probability an elastic invocation runs `elastic_straggler_slowdown`
  /// times slower than its nominal duration.
  double elastic_straggler_rate = 0.0;
  double elastic_straggler_slowdown = 4.0;
  /// Probability an object-store PUT or GET fails transiently (still billed).
  double store_error_rate = 0.0;
  /// Probability a requested VM fails to launch (no charge; re-requested).
  double vm_launch_failure_rate = 0.0;
  /// Crash intensity per shuffle node per hour of uptime.
  double shuffle_crash_rate_per_hour = 0.0;

  bool any() const {
    return elastic_failure_rate > 0.0 || elastic_concurrency_limit > 0 ||
           elastic_straggler_rate > 0.0 || store_error_rate > 0.0 ||
           vm_launch_failure_rate > 0.0 || shuffle_crash_rate_per_hour > 0.0;
  }

  /// Presets for the chaos_matrix bench: escalating fault levels. The
  /// concurrency limit stays unbounded in the presets (it depends on the
  /// workload's peak demand); benches set it explicitly.
  static FaultProfile None() { return FaultProfile{}; }
  static FaultProfile Light();
  static FaultProfile Moderate();
  static FaultProfile Heavy();
};

/// \brief Seeded, deterministic fault sampler shared by the cloud substrate.
///
/// Each service samples from its own independent stream so one service's
/// fault draws never perturb another's. Every Sample* method is guarded:
/// when the corresponding rate is zero it returns the no-fault answer
/// without consuming randomness, so a zero profile is bit-identical to no
/// injector at all.
class FaultInjector {
 public:
  FaultInjector(const FaultProfile& profile, uint64_t seed);

  const FaultProfile& profile() const { return profile_; }

  /// If this elastic invocation fails mid-run, the simulated time (uniform
  /// in [1, duration_ms]) at which it dies; nullopt when it survives.
  std::optional<SimTimeMs> SampleElasticFailure(SimTimeMs duration_ms);

  /// Whether this elastic invocation straggles.
  bool SampleElasticStraggler();

  /// Whether this object-store request fails transiently.
  bool SampleStoreError();

  /// Whether this VM launch fails.
  bool SampleVmLaunchFailure();

  /// Number of shuffle nodes (out of `num_nodes`) crashing within a window
  /// of `window_ms` simulated milliseconds.
  int64_t SampleShuffleCrashes(int64_t num_nodes, SimTimeMs window_ms);

 private:
  FaultProfile profile_;
  Rng elastic_rng_;
  Rng store_rng_;
  Rng vm_rng_;
  Rng shuffle_rng_;
};

}  // namespace cackle

#endif  // CACKLE_CLOUD_FAULT_INJECTOR_H_
