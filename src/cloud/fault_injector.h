#ifndef CACKLE_CLOUD_FAULT_INJECTOR_H_
#define CACKLE_CLOUD_FAULT_INJECTOR_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "cloud/chaos_timeline.h"
#include "common/rng.h"
#include "sim/simulation.h"

namespace cackle {

/// \brief Per-service fault rates of the simulated cloud substrate.
///
/// All rates default to zero, which must leave every component bit-identical
/// to a run without fault injection: a zero rate consumes no randomness and
/// takes no alternative code path. Nonzero rates model the failure modes the
/// paper's substrate abstracts away (Starling Section 5, Smartpick's
/// serverless unreliability model):
///  - Elastic invocations fail mid-run and must be re-placed.
///  - The elastic pool enforces a Lambda-style account concurrency limit;
///    requests above it are throttled and the caller must back off.
///  - Object-store requests return transient errors; failed requests are
///    still billed (S3 bills errored requests).
///  - VM launches fail after the startup delay (spot capacity errors).
///  - Shuffle nodes crash, destroying their share of resident partitions.
///  - A fraction of elastic invocations straggle (run `straggler_slowdown`
///    times slower), motivating speculative re-execution.
///
/// Zero-consumption audit (which fields burn randomness when nonzero):
///  - `elastic_failure_rate`, `elastic_straggler_rate`, `store_error_rate`,
///    `vm_launch_failure_rate`, `shuffle_crash_rate_per_hour`: randomized —
///    a nonzero value draws from the owning stream per request/window.
///  - `elastic_concurrency_limit`: deterministic throttling only. The pool
///    compares active+starting slots against the limit and rejects the
///    overflow; no stream is ever consumed. It perturbs results purely by
///    forcing backoff/retry scheduling.
///  - `elastic_straggler_slowdown`: a multiplier, inert unless
///    `elastic_straggler_rate` is nonzero; alone it changes nothing.
/// `randomized()` captures the first group; `any()` additionally includes
/// the deterministic throttle because either kind of field makes a run
/// diverge from the fault-free baseline.
struct FaultProfile {
  /// Probability an elastic invocation fails partway through its run.
  double elastic_failure_rate = 0.0;
  /// Max concurrent elastic slots (granted + in flight); 0 = unbounded.
  int64_t elastic_concurrency_limit = 0;
  /// Probability an elastic invocation runs `elastic_straggler_slowdown`
  /// times slower than its nominal duration.
  double elastic_straggler_rate = 0.0;
  double elastic_straggler_slowdown = 4.0;
  /// Probability an object-store PUT or GET fails transiently (still billed).
  double store_error_rate = 0.0;
  /// Probability a requested VM fails to launch (no charge; re-requested).
  double vm_launch_failure_rate = 0.0;
  /// Crash intensity per shuffle node per hour of uptime.
  double shuffle_crash_rate_per_hour = 0.0;

  /// True when any randomness-consuming fault rate is nonzero. The
  /// concurrency limit is deliberately excluded: it is a deterministic
  /// throttle that consumes no randomness (see the audit above).
  bool randomized() const {
    return elastic_failure_rate > 0.0 || elastic_straggler_rate > 0.0 ||
           store_error_rate > 0.0 || vm_launch_failure_rate > 0.0 ||
           shuffle_crash_rate_per_hour > 0.0;
  }

  /// True when any field can make the run diverge from the fault-free
  /// baseline, whether by randomness (`randomized()`) or by deterministic
  /// throttling (`elastic_concurrency_limit`).
  bool any() const { return randomized() || elastic_concurrency_limit > 0; }

  /// Presets for the chaos_matrix bench: escalating fault levels. The
  /// concurrency limit stays unbounded in the presets (it depends on the
  /// workload's peak demand); benches set it explicitly.
  static FaultProfile None() { return FaultProfile{}; }
  static FaultProfile Light();
  static FaultProfile Moderate();
  static FaultProfile Heavy();
};

/// \brief Seeded, deterministic fault sampler shared by the cloud substrate.
///
/// Each service samples from its own independent stream so one service's
/// fault draws never perturb another's. Every Sample* method is guarded:
/// when the corresponding rate is zero it returns the no-fault answer
/// without consuming randomness, so a zero profile is bit-identical to no
/// injector at all.
///
/// On top of the memoryless per-request rates, an optional ChaosTimeline
/// adds *correlated* temporal fault processes (outage windows, reclamation
/// storms, store brownouts, price shocks). Timeline windows are precomputed
/// at construction; the time-dependent samplers consult them before the
/// memoryless rates. Window draws come from dedicated streams, so enabling
/// a timeline process never shifts the base-rate streams, and a disabled
/// timeline (the default) adds no draws anywhere.
class FaultInjector {
 public:
  FaultInjector(const FaultProfile& profile, uint64_t seed);
  FaultInjector(const FaultProfile& profile, const ChaosTimelineOptions& chaos,
                uint64_t seed);

  const FaultProfile& profile() const { return profile_; }

  /// Non-null when a chaos timeline is configured.
  const ChaosTimeline* timeline() const { return timeline_.get(); }

  /// If this elastic invocation (granted at `now`) fails mid-run, the
  /// simulated time offset (uniform in [1, duration_ms]) at which it dies;
  /// nullopt when it survives. During an outage window an additional
  /// `elastic_failure_fraction` of invocations die.
  std::optional<SimTimeMs> SampleElasticFailure(SimTimeMs now,
                                                SimTimeMs duration_ms);

  /// Whether this elastic invocation straggles.
  bool SampleElasticStraggler();

  /// Whether this object-store request issued at `now` fails transiently.
  /// During a brownout window the elevated brownout error rate replaces the
  /// base rate when higher.
  bool SampleStoreError(SimTimeMs now);

  /// Whether this VM launch completing at `now` fails. During an outage
  /// window every launch fails, deterministically and without a draw.
  bool SampleVmLaunchFailure(SimTimeMs now);

  /// Number of shuffle nodes (out of `num_nodes`) crashing within a window
  /// of `window_ms` simulated milliseconds.
  int64_t SampleShuffleCrashes(int64_t num_nodes, SimTimeMs window_ms);

  /// True when the timeline has a reclamation-storm process, i.e.
  /// SampleStormReclaims can ever return nonzero.
  bool HasStorms() const;

  /// Number of ready VMs (out of `num_ready`) the provider reclaims in the
  /// `window_ms` ending at `now`. Zero — with no draws — outside storm
  /// windows.
  int64_t SampleStormReclaims(int64_t num_ready, SimTimeMs now,
                              SimTimeMs window_ms);

  /// Extra object-store read latency for a stage reading shuffle data at
  /// `now`. Zero — with no draws — outside brownout windows; inside one, the
  /// inflated nominal latency with a heavy tail.
  SimTimeMs SampleBrownoutReadLatency(SimTimeMs now);

 private:
  FaultProfile profile_;
  Rng elastic_rng_;
  Rng store_rng_;
  Rng vm_rng_;
  Rng shuffle_rng_;
  // Streams for timeline-window draws, separate from the base-rate streams.
  Rng outage_rng_;
  Rng brownout_rng_;
  Rng storm_rng_;
  std::unique_ptr<ChaosTimeline> timeline_;
};

}  // namespace cackle

#endif  // CACKLE_CLOUD_FAULT_INJECTOR_H_
