#include "cloud/object_store.h"

#include <algorithm>

#include "common/logging.h"

namespace cackle {

void ObjectStore::Put(const std::string& key, int64_t bytes) {
  CACKLE_CHECK_GE(bytes, 0);
  ++num_puts_;
  meter_->Charge(CostCategory::kObjectStorePut, cost_->object_store_put_cost);
  auto [it, inserted] = objects_.try_emplace(key, bytes);
  if (!inserted) {
    bytes_stored_ -= it->second;
    it->second = bytes;
  }
  bytes_stored_ += bytes;
  peak_bytes_stored_ = std::max(peak_bytes_stored_, bytes_stored_);
}

std::optional<int64_t> ObjectStore::Get(const std::string& key) {
  ++num_gets_;
  meter_->Charge(CostCategory::kObjectStoreGet, cost_->object_store_get_cost);
  auto it = objects_.find(key);
  if (it == objects_.end()) return std::nullopt;
  return it->second;
}

bool ObjectStore::Delete(const std::string& key) {
  auto it = objects_.find(key);
  if (it == objects_.end()) return false;
  bytes_stored_ -= it->second;
  objects_.erase(it);
  return true;
}

}  // namespace cackle
