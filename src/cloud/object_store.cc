#include "cloud/object_store.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metric_names.h"

namespace cackle {

Status ObjectStore::TryPut(const std::string& key, int64_t bytes) {
  CACKLE_CHECK_GE(bytes, 0);
  ++num_puts_;
  meter_->Charge(CostCategory::kObjectStorePut, cost_->object_store_put_cost);
  if (injector_ != nullptr && injector_->SampleStoreError(NowMs())) {
    return Status::IoError("transient object store PUT failure");
  }
  auto [it, inserted] = objects_.try_emplace(key, bytes);
  if (!inserted) {
    bytes_stored_ -= it->second;
    it->second = bytes;
  }
  bytes_stored_ += bytes;
  peak_bytes_stored_ = std::max(peak_bytes_stored_, bytes_stored_);
  return Status::OK();
}

StatusOr<int64_t> ObjectStore::TryGet(const std::string& key) {
  ++num_gets_;
  meter_->Charge(CostCategory::kObjectStoreGet, cost_->object_store_get_cost);
  if (injector_ != nullptr && injector_->SampleStoreError(NowMs())) {
    return Status::IoError("transient object store GET failure");
  }
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return Status::NotFound("no such object: " + key);
  }
  return it->second;
}

void ObjectStore::EnableCircuitBreaker(const CircuitBreakerOptions& options) {
  if (options.failure_threshold <= 0) return;
  breaker_ = std::make_unique<CircuitBreaker>(options);
}

Status ObjectStore::ExecuteWithBreaker(const std::function<Status()>& op,
                                       int* attempts_out) {
  // Same backoff ladder and attempt bound as RetryPolicy::Execute; the
  // breaker adds a gate before each attempt. Rejected attempts are neither
  // issued nor billed — the loop fast-forwards its virtual clock to the
  // cooldown expiry, where the breaker half-opens and admits a probe.
  int64_t now = NowMs();
  int attempt = 0;
  int64_t elapsed_ms = 0;
  Status status;
  while (true) {
    if (!breaker_->AllowRequest(now)) {
      const int64_t wait = std::max<int64_t>(1, breaker_->RetryAtMs() - now);
      now += wait;
      elapsed_ms += wait;
      continue;
    }
    ++attempt;
    status = op();
    if (status.ok()) {
      breaker_->RecordSuccess(now);
      break;
    }
    breaker_->RecordFailure(now);
    const int64_t backoff = retry_policy_.BackoffMs(attempt);
    now += backoff;
    elapsed_ms += backoff;
    if (!retry_policy_.ShouldRetry(attempt, elapsed_ms)) break;
  }
  if (attempts_out != nullptr) *attempts_out = attempt;
  return status;
}

void ObjectStore::Put(const std::string& key, int64_t bytes) {
  int attempts = 0;
  const auto op = [&] { return TryPut(key, bytes); };
  const Status status = breaker_ != nullptr
                            ? ExecuteWithBreaker(op, &attempts)
                            : retry_policy_.Execute(op, &attempts);
  num_retries_ += attempts - 1;
  CACKLE_CHECK(status.ok()) << "object store PUT failed after " << attempts
                            << " attempts: " << status.ToString();
}

std::optional<int64_t> ObjectStore::Get(const std::string& key) {
  std::optional<int64_t> result;
  int attempts = 0;
  const auto op = [&]() -> Status {
    StatusOr<int64_t> got = TryGet(key);
    if (got.ok()) {
      result = got.value();
      return Status::OK();
    }
    // A 404 is a definitive answer, not a transient error; billed but
    // not retried.
    if (got.status().code() == StatusCode::kNotFound) return Status::OK();
    return got.status();
  };
  const Status status = breaker_ != nullptr
                            ? ExecuteWithBreaker(op, &attempts)
                            : retry_policy_.Execute(op, &attempts);
  num_retries_ += attempts - 1;
  CACKLE_CHECK(status.ok()) << "object store GET failed after " << attempts
                            << " attempts: " << status.ToString();
  return result;
}

bool ObjectStore::Delete(const std::string& key) {
  auto it = objects_.find(key);
  if (it == objects_.end()) return false;
  bytes_stored_ -= it->second;
  objects_.erase(it);
  return true;
}

void ObjectStore::ExportMetrics(MetricsRegistry* metrics,
                                const std::string& prefix) const {
  namespace mn = metric_names;
  metrics->SetCounter(prefix + mn::kSuffixPuts, num_puts_);
  metrics->SetCounter(prefix + mn::kSuffixGets, num_gets_);
  metrics->SetCounter(prefix + mn::kSuffixRetries, num_retries_);
  metrics->SetCounter(prefix + mn::kSuffixObjects, num_objects());
  metrics->SetGauge(prefix + mn::kSuffixBytesStored,
                    static_cast<double>(bytes_stored_));
  metrics->SetGauge(prefix + mn::kSuffixPeakBytesStored,
                    static_cast<double>(peak_bytes_stored_));
  // Breaker metrics only exist when a breaker is configured, keeping the
  // fault-free registry (and its serialized snapshots) unchanged.
  if (breaker_ != nullptr) {
    metrics->SetCounter(prefix + mn::kSuffixCircuitOpen, breaker_->trips());
    metrics->SetCounter(prefix + mn::kSuffixCircuitRejections,
                        breaker_->rejections());
    metrics->SetCounter(prefix + mn::kSuffixCircuitHalfOpens,
                        breaker_->half_opens());
  }
}

}  // namespace cackle
