#include "cloud/object_store.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metric_names.h"

namespace cackle {

Status ObjectStore::TryPut(const std::string& key, int64_t bytes) {
  CACKLE_CHECK_GE(bytes, 0);
  ++num_puts_;
  meter_->Charge(CostCategory::kObjectStorePut, cost_->object_store_put_cost);
  if (injector_ != nullptr && injector_->SampleStoreError()) {
    return Status::IoError("transient object store PUT failure");
  }
  auto [it, inserted] = objects_.try_emplace(key, bytes);
  if (!inserted) {
    bytes_stored_ -= it->second;
    it->second = bytes;
  }
  bytes_stored_ += bytes;
  peak_bytes_stored_ = std::max(peak_bytes_stored_, bytes_stored_);
  return Status::OK();
}

StatusOr<int64_t> ObjectStore::TryGet(const std::string& key) {
  ++num_gets_;
  meter_->Charge(CostCategory::kObjectStoreGet, cost_->object_store_get_cost);
  if (injector_ != nullptr && injector_->SampleStoreError()) {
    return Status::IoError("transient object store GET failure");
  }
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return Status::NotFound("no such object: " + key);
  }
  return it->second;
}

void ObjectStore::Put(const std::string& key, int64_t bytes) {
  int attempts = 0;
  const Status status = retry_policy_.Execute(
      [&] { return TryPut(key, bytes); }, &attempts);
  num_retries_ += attempts - 1;
  CACKLE_CHECK(status.ok()) << "object store PUT failed after " << attempts
                            << " attempts: " << status.ToString();
}

std::optional<int64_t> ObjectStore::Get(const std::string& key) {
  std::optional<int64_t> result;
  int attempts = 0;
  const Status status = retry_policy_.Execute(
      [&]() -> Status {
        StatusOr<int64_t> got = TryGet(key);
        if (got.ok()) {
          result = got.value();
          return Status::OK();
        }
        // A 404 is a definitive answer, not a transient error; billed but
        // not retried.
        if (got.status().code() == StatusCode::kNotFound) return Status::OK();
        return got.status();
      },
      &attempts);
  num_retries_ += attempts - 1;
  CACKLE_CHECK(status.ok()) << "object store GET failed after " << attempts
                            << " attempts: " << status.ToString();
  return result;
}

bool ObjectStore::Delete(const std::string& key) {
  auto it = objects_.find(key);
  if (it == objects_.end()) return false;
  bytes_stored_ -= it->second;
  objects_.erase(it);
  return true;
}

void ObjectStore::ExportMetrics(MetricsRegistry* metrics,
                                const std::string& prefix) const {
  namespace mn = metric_names;
  metrics->SetCounter(prefix + mn::kSuffixPuts, num_puts_);
  metrics->SetCounter(prefix + mn::kSuffixGets, num_gets_);
  metrics->SetCounter(prefix + mn::kSuffixRetries, num_retries_);
  metrics->SetCounter(prefix + mn::kSuffixObjects, num_objects());
  metrics->SetGauge(prefix + mn::kSuffixBytesStored,
                    static_cast<double>(bytes_stored_));
  metrics->SetGauge(prefix + mn::kSuffixPeakBytesStored,
                    static_cast<double>(peak_bytes_stored_));
}

}  // namespace cackle
