#ifndef CACKLE_CLOUD_OBJECT_STORE_H_
#define CACKLE_CLOUD_OBJECT_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "cloud/billing.h"
#include "cloud/cost_model.h"
#include "cloud/fault_injector.h"
#include "common/circuit_breaker.h"
#include "common/metrics.h"
#include "common/retry_policy.h"
#include "common/status.h"
#include "sim/simulation.h"

namespace cackle {

/// \brief An S3-like cloud object store billed per request.
///
/// Serves as the elastic pool of the shuffle layer (Section 3 / 7.1.3 of the
/// paper): unbounded capacity, every PUT and GET charged individually. The
/// simulation only needs object sizes, not payloads, so values are byte
/// counts. Deletes are free (matching S3) and are issued when intermediate
/// shuffle state is garbage-collected after a query finishes.
///
/// A FaultInjector can make requests fail transiently. Failed requests are
/// still billed (S3 charges for errored and 404 requests alike). TryPut /
/// TryGet surface the error as a Status; the infallible Put / Get wrappers
/// retry under the store's RetryPolicy — the store has no modelled latency,
/// so backoff is virtual — and count retries in num_retries().
class ObjectStore {
 public:
  ObjectStore(const CostModel* cost, BillingMeter* meter)
      : cost_(cost), meter_(meter), retry_policy_(DefaultRetryOptions()) {}

  /// Attaches a fault injector providing the transient-error rate.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  /// Attaches the simulation clock so time-dependent fault processes
  /// (brownout windows) and the circuit breaker see simulated time. Without
  /// it requests are sampled at time 0, which is only correct for tests
  /// that never enable a timeline.
  void SetSimulation(const Simulation* sim) { sim_ = sim; }

  /// Enables a circuit breaker on the retrying Put/Get wrappers. While the
  /// breaker is open, attempts are rejected without being issued or billed;
  /// the retry loop waits out the cooldown in virtual time and probes again
  /// when the breaker half-opens. A zero failure_threshold is a no-op.
  void EnableCircuitBreaker(const CircuitBreakerOptions& options);

  /// Non-null once EnableCircuitBreaker has been called with a nonzero
  /// threshold.
  const CircuitBreaker* circuit_breaker() const { return breaker_.get(); }

  /// Single attempt to store (or overwrite) an object of `bytes` bytes.
  /// Bills one PUT even on injected failure.
  [[nodiscard]] Status TryPut(const std::string& key, int64_t bytes);

  /// Single attempt to fetch an object's size. Bills one GET even on
  /// injected failure or 404 (S3 charges for 404s). NotFound when absent.
  [[nodiscard]] StatusOr<int64_t> TryGet(const std::string& key);

  /// Stores (or overwrites) an object, retrying transient errors. Every
  /// attempt bills one PUT.
  void Put(const std::string& key, int64_t bytes);

  /// Returns the object's size, retrying transient errors; nullopt (still
  /// billed) when absent. Every attempt bills one GET.
  std::optional<int64_t> Get(const std::string& key);

  /// Removes an object; free of charge (S3 deletes are free, and failed
  /// deletes are indistinguishable from missing keys). Returns whether it
  /// existed.
  bool Delete(const std::string& key);

  bool Contains(const std::string& key) const {
    return objects_.count(key) > 0;
  }

  int64_t num_puts() const { return num_puts_; }
  int64_t num_gets() const { return num_gets_; }
  /// Attempts beyond the first across all retried Put/Get calls.
  int64_t num_retries() const { return num_retries_; }
  int64_t num_objects() const { return static_cast<int64_t>(objects_.size()); }
  int64_t bytes_stored() const { return bytes_stored_; }
  int64_t peak_bytes_stored() const { return peak_bytes_stored_; }

  /// Exports lifetime totals into a metrics registry under `prefix`.
  void ExportMetrics(MetricsRegistry* metrics,
                     const std::string& prefix) const;

 private:
  static RetryPolicyOptions DefaultRetryOptions() {
    RetryPolicyOptions opts;
    // Generous cap: transient errors at the clamped maximum rate (0.95)
    // still terminate with overwhelming probability, and the simulation
    // must not lose writes.
    opts.max_attempts = 100;
    opts.jitter = 0.0;  // no clock here; jitter would burn randomness
    return opts;
  }

  /// Breaker-aware retry loop: same backoff schedule as RetryPolicy::Execute
  /// but consults the breaker before every attempt, clocked on simulated
  /// time plus virtual backoff.
  [[nodiscard]] Status ExecuteWithBreaker(const std::function<Status()>& op,
                                          int* attempts_out);

  SimTimeMs NowMs() const { return sim_ != nullptr ? sim_->NowMs() : 0; }

  const CostModel* cost_;
  BillingMeter* meter_;
  FaultInjector* injector_ = nullptr;
  const Simulation* sim_ = nullptr;
  std::unique_ptr<CircuitBreaker> breaker_;
  RetryPolicy retry_policy_;
  std::unordered_map<std::string, int64_t> objects_;
  int64_t num_puts_ = 0;
  int64_t num_gets_ = 0;
  int64_t num_retries_ = 0;
  int64_t bytes_stored_ = 0;
  int64_t peak_bytes_stored_ = 0;
};

}  // namespace cackle

#endif  // CACKLE_CLOUD_OBJECT_STORE_H_
