#ifndef CACKLE_CLOUD_OBJECT_STORE_H_
#define CACKLE_CLOUD_OBJECT_STORE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "cloud/billing.h"
#include "cloud/cost_model.h"

namespace cackle {

/// \brief An S3-like cloud object store billed per request.
///
/// Serves as the elastic pool of the shuffle layer (Section 3 / 7.1.3 of the
/// paper): unbounded capacity, every PUT and GET charged individually. The
/// simulation only needs object sizes, not payloads, so values are byte
/// counts. Deletes are free (matching S3) and are issued when intermediate
/// shuffle state is garbage-collected after a query finishes.
class ObjectStore {
 public:
  ObjectStore(const CostModel* cost, BillingMeter* meter)
      : cost_(cost), meter_(meter) {}

  /// Stores (or overwrites) an object of `bytes` bytes. Bills one PUT.
  void Put(const std::string& key, int64_t bytes);

  /// Returns the object's size, billing one GET; nullopt (still billed, as
  /// S3 charges for 404s) when absent.
  std::optional<int64_t> Get(const std::string& key);

  /// Removes an object; free of charge. Returns whether it existed.
  bool Delete(const std::string& key);

  bool Contains(const std::string& key) const {
    return objects_.count(key) > 0;
  }

  int64_t num_puts() const { return num_puts_; }
  int64_t num_gets() const { return num_gets_; }
  int64_t num_objects() const { return static_cast<int64_t>(objects_.size()); }
  int64_t bytes_stored() const { return bytes_stored_; }
  int64_t peak_bytes_stored() const { return peak_bytes_stored_; }

 private:
  const CostModel* cost_;
  BillingMeter* meter_;
  std::unordered_map<std::string, int64_t> objects_;
  int64_t num_puts_ = 0;
  int64_t num_gets_ = 0;
  int64_t bytes_stored_ = 0;
  int64_t peak_bytes_stored_ = 0;
};

}  // namespace cackle

#endif  // CACKLE_CLOUD_OBJECT_STORE_H_
