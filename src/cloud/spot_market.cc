#include "cloud/spot_market.h"

#include <algorithm>

#include "common/logging.h"

namespace cackle {

SpotMarket::SpotMarket(double price_per_hour) {
  CACKLE_CHECK_GT(price_per_hour, 0.0);
  breakpoints_.emplace_back(0, price_per_hour);
}

SpotMarket::SpotMarket(std::vector<std::pair<SimTimeMs, double>> breakpoints)
    : breakpoints_(std::move(breakpoints)) {
  CACKLE_CHECK(!breakpoints_.empty());
  CACKLE_CHECK_EQ(breakpoints_.front().first, 0);
  for (size_t i = 1; i < breakpoints_.size(); ++i) {
    CACKLE_CHECK_GT(breakpoints_[i].first, breakpoints_[i - 1].first);
    CACKLE_CHECK_GT(breakpoints_[i].second, 0.0);
  }
}

SpotMarket SpotMarket::RandomWalk(double start, double floor, double cap,
                                  double volatility, SimTimeMs step,
                                  SimTimeMs horizon, Rng* rng) {
  CACKLE_CHECK_GT(step, 0);
  CACKLE_CHECK_LE(floor, cap);
  std::vector<std::pair<SimTimeMs, double>> points;
  double price = std::clamp(start, floor, cap);
  for (SimTimeMs t = 0; t <= horizon; t += step) {
    points.emplace_back(t, price);
    const double factor = rng->NextDouble(1.0 - volatility, 1.0 + volatility);
    price = std::clamp(price * factor, floor, cap);
  }
  return SpotMarket(std::move(points));
}

double SpotMarket::PriceAt(SimTimeMs t) const {
  // Last breakpoint with time <= t.
  auto it = std::upper_bound(
      breakpoints_.begin(), breakpoints_.end(), t,
      [](SimTimeMs value, const auto& bp) { return value < bp.first; });
  CACKLE_CHECK(it != breakpoints_.begin());
  return std::prev(it)->second;
}

double SpotMarket::PriceIntegral(SimTimeMs t0, SimTimeMs t1) const {
  if (t1 <= t0) return 0.0;
  double total = 0.0;
  // Find first segment overlapping [t0, t1).
  auto it = std::upper_bound(
      breakpoints_.begin(), breakpoints_.end(), t0,
      [](SimTimeMs value, const auto& bp) { return value < bp.first; });
  CACKLE_CHECK(it != breakpoints_.begin());
  --it;
  SimTimeMs cursor = t0;
  while (cursor < t1) {
    const double price = it->second;
    const SimTimeMs seg_end =
        (std::next(it) == breakpoints_.end()) ? t1
                                              : std::min(t1, std::next(it)->first);
    total += price * static_cast<double>(seg_end - cursor);
    cursor = seg_end;
    if (std::next(it) != breakpoints_.end()) ++it;
  }
  return total;
}

}  // namespace cackle
