#ifndef CACKLE_CLOUD_SPOT_MARKET_H_
#define CACKLE_CLOUD_SPOT_MARKET_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sim/simulation.h"

namespace cackle {

/// \brief Piecewise-constant spot price timeline in dollars per hour.
///
/// Section 5.3 of the paper observes the spot price of a c5a.large nearly
/// doubling within a quarter while the Lambda price stayed fixed; this class
/// lets experiments replay such fluctuations. The default timeline is a
/// single constant price.
class SpotMarket {
 public:
  /// Constant price forever.
  explicit SpotMarket(double price_per_hour);

  /// Explicit breakpoints: (time, price) pairs; times must be ascending and
  /// start at 0. The last price extends to infinity.
  SpotMarket(std::vector<std::pair<SimTimeMs, double>> breakpoints);

  /// Generates a bounded random-walk price timeline: starts at `start`,
  /// multiplies by a factor in [1-volatility, 1+volatility] every `step`,
  /// clamped to [floor, cap].
  static SpotMarket RandomWalk(double start, double floor, double cap,
                               double volatility, SimTimeMs step,
                               SimTimeMs horizon, Rng* rng);

  /// Price in effect at time `t`.
  double PriceAt(SimTimeMs t) const;

  /// Integral of price over [t0, t1) in dollar·ms/hour units; divide by
  /// kMillisPerHour for dollars of one instance over that window.
  double PriceIntegral(SimTimeMs t0, SimTimeMs t1) const;

  /// Dollars for one instance running over [t0, t1).
  double DollarsOver(SimTimeMs t0, SimTimeMs t1) const {
    return PriceIntegral(t0, t1) / static_cast<double>(kMillisPerHour);
  }

  const std::vector<std::pair<SimTimeMs, double>>& breakpoints() const {
    return breakpoints_;
  }

 private:
  std::vector<std::pair<SimTimeMs, double>> breakpoints_;
};

}  // namespace cackle

#endif  // CACKLE_CLOUD_SPOT_MARKET_H_
