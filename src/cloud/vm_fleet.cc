#include "cloud/vm_fleet.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metric_names.h"

namespace cackle {

VmFleet::VmFleet(Simulation* sim, const CostModel* cost, BillingMeter* meter,
                 const SpotMarket* market, CostCategory category)
    : sim_(sim), cost_(cost), meter_(meter), market_(market),
      category_(category) {}

SimTimeMs VmFleet::startup_ms() const {
  return category_ == CostCategory::kShuffleNode ? cost_->shuffle_node_startup_ms
                                                 : cost_->vm_startup_ms;
}

SimTimeMs VmFleet::min_billing_ms() const {
  return category_ == CostCategory::kShuffleNode
             ? cost_->shuffle_node_min_billing_ms
             : cost_->vm_min_billing_ms;
}

void VmFleet::SetTarget(int64_t target) {
  CACKLE_CHECK_GE(target, 0);
  target_ = target;
  while (num_allocated() < target_) {
    const VmId id = static_cast<VmId>(vms_.size());
    vms_.push_back(Vm{});
    Vm& vm = vms_.back();
    vm.state = VmState::kPending;
    vm.pending_event =
        sim_->ScheduleAfter(startup_ms(), [this, id] { OnVmStarted(id); });
    pending_.push_back(id);
  }
  ReconcileDown();
}

void VmFleet::OnVmStarted(VmId id) {
  Vm& vm = vms_[static_cast<size_t>(id)];
  CACKLE_CHECK(vm.state == VmState::kPending);
  // Remove from the pending queue (it is usually at the front because
  // startup delays are uniform, but cancellation may have reordered).
  auto it = std::find(pending_.begin(), pending_.end(), id);
  CACKLE_CHECK(it != pending_.end());
  pending_.erase(it);
  if (injector_ != nullptr && injector_->SampleVmLaunchFailure(sim_->NowMs())) {
    // Spot capacity error: the launch never completes and is not billed; a
    // maintained target re-requests the capacity (another startup delay).
    vm.state = VmState::kTerminated;
    ++total_launch_failures_;
    if (num_allocated() < target_) {
      const int64_t t = target_;
      SetTarget(t);
    }
    return;
  }
  vm.state = VmState::kIdle;
  vm.ready_time = sim_->NowMs();
  idle_.push_back(id);
  ++num_idle_;
  ++total_started_;
  if (mean_lifetime_hours_ > 0.0) {
    const double lifetime_hours =
        interruption_rng_.NextExponential(1.0 / mean_lifetime_hours_);
    const SimTimeMs lifetime = std::max<SimTimeMs>(
        kMillisPerSecond,
        static_cast<SimTimeMs>(lifetime_hours *
                               static_cast<double>(kMillisPerHour)));
    sim_->ScheduleAfter(lifetime, [this, id] { Interrupt(id); });
  }
  if (on_vm_ready_) on_vm_ready_(id);
  // The target may have dropped while this VM was starting.
  ReconcileDown();
}

void VmFleet::SetTenantReservation(int32_t tenant, int64_t vms) {
  CACKLE_CHECK_GE(vms, 0);
  auto it = reserved_.find(tenant);
  reserved_total_ -= it == reserved_.end() ? 0 : it->second;
  if (vms == 0) {
    if (it != reserved_.end()) reserved_.erase(it);
  } else {
    reserved_[tenant] = vms;
  }
  reserved_total_ += vms;
}

bool VmFleet::TenantMayAcquire(int32_t tenant) const {
  // Idle capacity held back for *other* reserved tenants that have not yet
  // consumed their reservation. A tenant with its own unused reservation is
  // entitled to that headroom regardless of what is held back for others.
  int64_t held_back = 0;
  for (const auto& [t, reserved] : reserved_) {
    if (t == tenant) continue;
    const auto busy_it = busy_by_tenant_.find(t);
    const int64_t busy = busy_it == busy_by_tenant_.end() ? 0
                                                          : busy_it->second;
    held_back += std::max<int64_t>(0, reserved - busy);
  }
  return num_idle_ - held_back > 0;
}

std::optional<VmId> VmFleet::TryAcquire(int32_t tenant) {
  if (!reserved_.empty() && num_idle_ > 0 && !TenantMayAcquire(tenant)) {
    ++total_reservation_denials_;
    return std::nullopt;
  }
  while (!idle_.empty()) {
    const VmId id = idle_.front();
    idle_.pop_front();
    Vm& vm = vms_[static_cast<size_t>(id)];
    if (vm.state != VmState::kIdle) continue;  // stale entry
    vm.state = VmState::kBusy;
    vm.tenant = tenant;
    --num_idle_;
    ++num_busy_;
    if (!reserved_.empty()) ++busy_by_tenant_[tenant];
    return id;
  }
  return std::nullopt;
}

void VmFleet::Release(VmId id) {
  Vm& vm = vms_[static_cast<size_t>(id)];
  CACKLE_CHECK(vm.state == VmState::kBusy);
  vm.state = VmState::kIdle;
  --num_busy_;
  if (!busy_by_tenant_.empty()) {
    auto it = busy_by_tenant_.find(vm.tenant);
    if (it != busy_by_tenant_.end() && --it->second == 0) {
      busy_by_tenant_.erase(it);
    }
  }
  ++num_idle_;
  idle_.push_back(id);
  ReconcileDown();
}

void VmFleet::BillAndRetire(VmId id) {
  Vm& vm = vms_[static_cast<size_t>(id)];
  CACKLE_CHECK(vm.state != VmState::kTerminated);
  CACKLE_CHECK(vm.state != VmState::kPending);
  vm.state = VmState::kTerminated;
  ++total_terminated_;
  const SimTimeMs runtime = sim_->NowMs() - vm.ready_time;
  total_runtime_ms_ += runtime;
  double dollars = 0.0;
  const SimTimeMs billed = std::max(runtime, min_billing_ms());
  if (market_ != nullptr) {
    dollars = market_->DollarsOver(vm.ready_time, vm.ready_time + billed);
  } else if (category_ == CostCategory::kShuffleNode) {
    dollars = cost_->ShuffleNodeCost(runtime);
  } else {
    dollars = cost_->VmCost(runtime);
  }
  meter_->Charge(category_, dollars);
}

void VmFleet::Terminate(VmId id) {
  Vm& vm = vms_[static_cast<size_t>(id)];
  CACKLE_CHECK(vm.state == VmState::kIdle);
  --num_idle_;
  BillAndRetire(id);
}

void VmFleet::EnableInterruptions(uint64_t seed, double mean_lifetime_hours) {
  CACKLE_CHECK_GT(mean_lifetime_hours, 0.0);
  mean_lifetime_hours_ = mean_lifetime_hours;
  interruption_rng_ = Rng(seed);
}

void VmFleet::Interrupt(VmId id) {
  Vm& vm = vms_[static_cast<size_t>(id)];
  if (vm.state == VmState::kTerminated || vm.state == VmState::kPending) {
    return;
  }
  ++total_interrupted_;
  if (vm.state == VmState::kBusy) {
    // Let the scheduler rescue the task before the VM disappears.
    if (on_vm_interrupted_) on_vm_interrupted_(id);
    --num_busy_;
    if (!busy_by_tenant_.empty()) {
      auto it = busy_by_tenant_.find(vm.tenant);
      if (it != busy_by_tenant_.end() && --it->second == 0) {
        busy_by_tenant_.erase(it);
      }
    }
    BillAndRetire(id);
  } else {
    auto it = std::find(idle_.begin(), idle_.end(), id);
    if (it != idle_.end()) idle_.erase(it);
    --num_idle_;
    BillAndRetire(id);
  }
  // A maintained spot request replaces reclaimed capacity.
  if (num_allocated() < target_) {
    const int64_t t = target_;
    SetTarget(t);
  }
}

bool VmFleet::InterruptOneIdle() {
  VmId victim = -1;
  for (VmId id : idle_) {
    if (vms_[static_cast<size_t>(id)].state == VmState::kIdle) {
      victim = id;
      break;
    }
  }
  if (victim < 0) return false;
  Interrupt(victim);
  return true;
}

int64_t VmFleet::InterruptN(int64_t count) {
  if (count <= 0) return 0;
  // Pick victims by ascending id for determinism, then interrupt outside
  // the scan: rescuing a busy victim's task may acquire an idle VM, and
  // Interrupt tolerates (skips) victims whose state changed meanwhile.
  std::vector<VmId> victims;
  for (VmId id = 0;
       id < static_cast<VmId>(vms_.size()) &&
       static_cast<int64_t>(victims.size()) < count;
       ++id) {
    const VmState state = vms_[static_cast<size_t>(id)].state;
    if (state == VmState::kIdle || state == VmState::kBusy) {
      victims.push_back(id);
    }
  }
  int64_t reclaimed = 0;
  for (VmId id : victims) {
    const VmState state = vms_[static_cast<size_t>(id)].state;
    if (state != VmState::kIdle && state != VmState::kBusy) continue;
    Interrupt(id);
    ++reclaimed;
  }
  return reclaimed;
}

void VmFleet::ReconcileDown() {
  // 1. Withdraw pending requests (newest first) at no cost — a spot
  //    request modification. Strategies hold their target between meta
  //    updates, so this does not starve the fleet on per-second noise.
  while (num_allocated() > target_ && !pending_.empty()) {
    const VmId id = pending_.back();
    pending_.pop_back();
    Vm& vm = vms_[static_cast<size_t>(id)];
    CACKLE_CHECK(vm.state == VmState::kPending);
    vm.state = VmState::kTerminated;
    sim_->Cancel(vm.pending_event);
  }
  // 2. Terminate idle VMs past their minimum billing window; defer others.
  //    Busy VMs are handled when they are released.
  if (num_allocated() <= target_) return;
  std::deque<VmId> still_idle;
  while (num_allocated() > target_ && !idle_.empty()) {
    const VmId id = idle_.front();
    idle_.pop_front();
    Vm& vm = vms_[static_cast<size_t>(id)];
    if (vm.state != VmState::kIdle) continue;
    if (sim_->NowMs() - vm.ready_time >= min_billing_ms()) {
      Terminate(id);
    } else {
      // Not worth terminating yet: re-check when the minimum billing time
      // has elapsed. Keep the VM acquirable in the meantime.
      still_idle.push_back(id);
      const SimTimeMs when = vm.ready_time + min_billing_ms();
      sim_->ScheduleAt(when, [this, id] { DeferredTerminationCheck(id); });
    }
  }
  for (VmId id : still_idle) idle_.push_back(id);
}

void VmFleet::DeferredTerminationCheck(VmId id) {
  Vm& vm = vms_[static_cast<size_t>(id)];
  if (vm.state != VmState::kIdle) return;        // got busy or terminated
  if (num_allocated() <= target_) return;        // target recovered
  auto it = std::find(idle_.begin(), idle_.end(), id);
  if (it != idle_.end()) idle_.erase(it);
  Terminate(id);
}

void VmFleet::TerminateAll() {
  target_ = 0;
  while (!pending_.empty()) {
    const VmId id = pending_.back();
    pending_.pop_back();
    Vm& vm = vms_[static_cast<size_t>(id)];
    vm.state = VmState::kTerminated;
    sim_->Cancel(vm.pending_event);
  }
  CACKLE_CHECK_EQ(num_busy_, 0) << "TerminateAll with busy VMs";
  while (!idle_.empty()) {
    const VmId id = idle_.front();
    idle_.pop_front();
    Vm& vm = vms_[static_cast<size_t>(id)];
    if (vm.state == VmState::kIdle) Terminate(id);
  }
  CACKLE_CHECK_EQ(num_idle_, 0);
}

void VmFleet::ExportMetrics(MetricsRegistry* metrics,
                            const std::string& prefix) const {
  namespace mn = metric_names;
  metrics->SetCounter(prefix + mn::kSuffixVmsStarted, total_started_);
  metrics->SetCounter(prefix + mn::kSuffixVmsTerminated, total_terminated_);
  metrics->SetCounter(prefix + mn::kSuffixVmsInterrupted,
                      total_interrupted_);
  metrics->SetCounter(prefix + mn::kSuffixLaunchFailures,
                      total_launch_failures_);
  metrics->SetCounter(prefix + mn::kSuffixRuntimeMs, total_runtime_ms_);
  metrics->SetGauge(prefix + mn::kSuffixTarget, static_cast<double>(target_));
  metrics->SetGauge(prefix + mn::kSuffixReady,
                    static_cast<double>(num_ready()));
  metrics->SetGauge(prefix + mn::kSuffixReserved,
                    static_cast<double>(reserved_total_));
  metrics->SetCounter(prefix + mn::kSuffixReservationDenials,
                      total_reservation_denials_);
}

}  // namespace cackle
