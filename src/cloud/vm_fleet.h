#ifndef CACKLE_CLOUD_VM_FLEET_H_
#define CACKLE_CLOUD_VM_FLEET_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "cloud/billing.h"
#include "cloud/cost_model.h"
#include "cloud/fault_injector.h"
#include "cloud/spot_market.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "sim/simulation.h"

namespace cackle {

using VmId = int64_t;

/// \brief A fleet of provisioned (spot) virtual machines inside the
/// discrete-event simulation.
///
/// Mirrors the behaviour Cackle relies on (Sections 3 and 4.1 of the paper):
///  - The coordinator sets a *target* count (a spot-request modification).
///  - New VMs become READY only after the startup latency.
///  - Acquire/Release move a READY VM between IDLE and BUSY; tasks are never
///    queued on the fleet — callers fall back to the elastic pool when no
///    idle VM exists.
///  - When the target drops, pending (not yet started) VMs are cancelled
///    first at no cost; surplus VMs are terminated *once idle*, and never
///    before their minimum billing time has elapsed (there is no value in
///    doing so).
///  - Billing covers READY to termination at per-second granularity with a
///    one-minute minimum, priced by the spot market (constant by default).
class CACKLE_THREAD_CONFINED(
    "fleet and tenant-reservation state mutate only from simulation "
    "callbacks on the owning thread")
VmFleet {
 public:
  /// `market` may be null, in which case `cost->vm_cost_per_hour` applies.
  /// `category` lets the shuffle layer reuse this class for shuffle nodes.
  VmFleet(Simulation* sim, const CostModel* cost, BillingMeter* meter,
          const SpotMarket* market = nullptr,
          CostCategory category = CostCategory::kVm);

  /// Updates the spot-request target. May start new VMs (after the startup
  /// delay) or cancel pending / terminate idle ones.
  void SetTarget(int64_t target);

  /// Attempts to take an idle READY VM for `tenant`; returns its id or
  /// nullopt. With no reservations configured every tenant draws from the
  /// shared pool exactly as before. With reservations, idle capacity that
  /// would be needed to honour *other* tenants' unused reservations is held
  /// back: a tenant can always use up to its own reservation, and anyone
  /// can use the shared surplus beyond the sum of unused reservations.
  std::optional<VmId> TryAcquire(int32_t tenant = 0);

  /// Shared-vs-dedicated fleet policy: dedicates `vms` of the fleet to
  /// `tenant` (0 removes the reservation). Reservations carve the idle pool
  /// into per-tenant headroom; they do not by themselves raise the target —
  /// the coordinator floors its target at reserved_total(). The default (no
  /// reservations) is a fully shared fleet, bit-identical to the previous
  /// behaviour.
  void SetTenantReservation(int32_t tenant, int64_t vms);
  /// Sum of all per-tenant reservations.
  int64_t reserved_total() const { return reserved_total_; }
  /// Acquisitions denied because the idle capacity was held back for other
  /// tenants' reservations.
  int64_t total_reservation_denials() const {
    return total_reservation_denials_;
  }

  /// Returns a BUSY VM to IDLE. If the fleet is above target, the VM may be
  /// terminated (subject to the minimum billing rule).
  void Release(VmId id);

  /// Registers a callback invoked every time a VM becomes READY. Used by the
  /// coordinator: a newly started VM announces itself and immediately
  /// accepts work.
  void SetOnVmReady(std::function<void(VmId)> cb) {
    on_vm_ready_ = std::move(cb);
  }

  /// Enables spot interruptions: each VM is reclaimed by the provider after
  /// an exponentially distributed lifetime with the given mean. A reclaimed
  /// BUSY VM triggers the interruption callback (the scheduler must retry
  /// its task — in Cackle, typically on the elastic pool); reclaimed idle
  /// VMs just terminate. Runtime until reclamation is billed normally.
  void EnableInterruptions(uint64_t seed, double mean_lifetime_hours);

  /// Called when a BUSY VM is reclaimed, before it is torn down.
  void SetOnVmInterrupted(std::function<void(VmId)> cb) {
    on_vm_interrupted_ = std::move(cb);
  }

  /// Attaches a fault injector: each launch may fail after the startup
  /// delay (a spot capacity error). Failed launches are not billed and a
  /// maintained target re-requests the capacity.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  /// Force-reclaims one idle READY VM (injected node crash). Billing and
  /// replacement behave exactly like a provider interruption. Returns false
  /// when no idle VM exists.
  bool InterruptOneIdle();

  /// Force-reclaims up to `count` READY VMs — idle *and* busy — in
  /// ascending id order (a reclamation-storm burst; the provider does not
  /// care whether a VM is working). Busy victims fire the interruption
  /// callback so the scheduler can rescue their tasks. Returns how many
  /// VMs were actually reclaimed.
  int64_t InterruptN(int64_t count);

  /// Terminates every VM (end of workload) and flushes billing.
  void TerminateAll();

  /// Exports lifetime totals into a metrics registry under `prefix`
  /// (e.g. "vm_fleet"). Read-only; call at any point.
  void ExportMetrics(MetricsRegistry* metrics,
                     const std::string& prefix) const;

  int64_t target() const { return target_; }
  /// Started and not terminated (idle + busy).
  int64_t num_ready() const { return num_idle_ + num_busy_; }
  int64_t num_idle() const { return num_idle_; }
  int64_t num_busy() const { return num_busy_; }
  int64_t num_pending() const { return static_cast<int64_t>(pending_.size()); }
  /// Ready + pending: what the provider considers allocated.
  int64_t num_allocated() const { return num_ready() + num_pending(); }

  int64_t total_vms_started() const { return total_started_; }
  int64_t total_vms_terminated() const { return total_terminated_; }
  int64_t total_vms_interrupted() const { return total_interrupted_; }
  int64_t total_launch_failures() const { return total_launch_failures_; }
  /// Total READY-to-termination milliseconds across terminated VMs.
  SimTimeMs total_runtime_ms() const { return total_runtime_ms_; }

 private:
  enum class VmState { kPending, kIdle, kBusy, kTerminated };

  struct Vm {
    VmState state = VmState::kPending;
    SimTimeMs ready_time = 0;
    uint64_t pending_event = 0;  // startup event id while kPending
    int32_t tenant = 0;          // tenant running on it while kBusy
  };

  /// Whether `tenant` may take an idle VM under the reservation policy.
  bool TenantMayAcquire(int32_t tenant) const;

  void OnVmStarted(VmId id);
  void Terminate(VmId id);
  void Interrupt(VmId id);
  /// Bills the VM's runtime and marks it terminated (any non-pending state).
  void BillAndRetire(VmId id);
  /// Enforces target: cancels pending VMs, terminates eligible idle VMs,
  /// schedules deferred termination checks for idle VMs still inside their
  /// minimum billing window.
  void ReconcileDown();
  void DeferredTerminationCheck(VmId id);

  Simulation* sim_;
  const CostModel* cost_;
  BillingMeter* meter_;
  const SpotMarket* market_;
  CostCategory category_;

  std::vector<Vm> vms_;
  std::deque<VmId> idle_;     // FIFO for deterministic acquisition order
  std::deque<VmId> pending_;  // newest at the back; cancelled LIFO
  int64_t target_ = 0;
  int64_t num_idle_ = 0;
  int64_t num_busy_ = 0;
  int64_t total_started_ = 0;
  int64_t total_terminated_ = 0;
  int64_t total_interrupted_ = 0;
  int64_t total_launch_failures_ = 0;
  /// Shared-vs-dedicated policy state: per-tenant reservations and busy
  /// counts (busy counts are maintained only while reservations exist).
  std::map<int32_t, int64_t> reserved_;
  std::map<int32_t, int64_t> busy_by_tenant_;
  int64_t reserved_total_ = 0;
  int64_t total_reservation_denials_ = 0;
  FaultInjector* injector_ = nullptr;
  SimTimeMs total_runtime_ms_ = 0;
  std::function<void(VmId)> on_vm_ready_;
  std::function<void(VmId)> on_vm_interrupted_;
  // Spot interruption model (disabled when lifetime <= 0).
  double mean_lifetime_hours_ = 0.0;
  Rng interruption_rng_{0};

  SimTimeMs startup_ms() const;
  SimTimeMs min_billing_ms() const;
};

}  // namespace cackle

#endif  // CACKLE_CLOUD_VM_FLEET_H_
