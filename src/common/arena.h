#ifndef CACKLE_COMMON_ARENA_H_
#define CACKLE_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.h"

namespace cackle {

/// \brief Slab allocator handing out stable slots of a single node type.
///
/// Nodes are default-constructed once per slab and *recycled in place*: a
/// freed slot keeps its node alive (so the type can cache capacity, hold a
/// generation counter, etc.) and goes onto a free list for O(1) reuse. The
/// caller addresses nodes by dense `uint32_t` slot index — which packs into
/// external handles far better than a pointer — and slabs are never
/// deallocated before the pool itself, so `at()` references stay valid
/// across any interleaving of Alloc/Free.
///
/// This is the event-node backing store for the simulation's calendar
/// scheduler: one Alloc per scheduled event instead of one `new`, one
/// free-list push per fired/cancelled event instead of one `delete`.
///
/// T must be default-constructible. Not thread-safe (one pool per owner,
/// like every other single-threaded structure in the simulation core).
template <typename T>
class SlabPool {
 public:
  /// `slab_capacity` is rounded up to a power of two so slot->slab mapping
  /// is a shift+mask.
  explicit SlabPool(size_t slab_capacity = 1024) {
    slab_shift_ = 0;
    while ((size_t{1} << slab_shift_) < slab_capacity) ++slab_shift_;
    slab_mask_ = (size_t{1} << slab_shift_) - 1;
  }

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// Returns a slot index whose node is ready for (re)use. O(1) amortized.
  uint32_t Alloc() {
    if (free_.empty()) Grow();
    const uint32_t slot = free_.back();
    free_.pop_back();
    ++live_;
    return slot;
  }

  /// Recycles a slot. The node is left constructed; the caller is
  /// responsible for clearing any per-use state it cares about.
  void Free(uint32_t slot) {
    CACKLE_CHECK_GT(live_, 0u) << "Free without matching Alloc";
    free_.push_back(slot);
    --live_;
  }

  T& at(uint32_t slot) {
    return slabs_[slot >> slab_shift_][slot & slab_mask_];
  }
  const T& at(uint32_t slot) const {
    return slabs_[slot >> slab_shift_][slot & slab_mask_];
  }

  /// Total slots ever created (live + free).
  size_t size() const { return slabs_.size() << slab_shift_; }
  size_t live() const { return live_; }
  size_t slabs() const { return slabs_.size(); }

 private:
  void Grow() {
    const size_t cap = slab_mask_ + 1;
    CACKLE_CHECK_LT((slabs_.size() + 1) * cap, size_t{1} << 32)
        << "SlabPool slot space exhausted";
    const uint32_t base = static_cast<uint32_t>(slabs_.size() << slab_shift_);
    slabs_.push_back(std::make_unique<T[]>(cap));
    // Push in reverse so slots are handed out in ascending order, which
    // keeps allocation patterns (and anything keyed on slot numbers)
    // deterministic and cache-friendly.
    free_.reserve(free_.size() + cap);
    for (size_t i = cap; i > 0; --i) {
      free_.push_back(base + static_cast<uint32_t>(i - 1));
    }
  }

  std::vector<std::unique_ptr<T[]>> slabs_;
  std::vector<uint32_t> free_;
  size_t slab_shift_ = 0;
  size_t slab_mask_ = 0;
  size_t live_ = 0;
};

}  // namespace cackle

#endif  // CACKLE_COMMON_ARENA_H_
