#include "common/circuit_breaker.h"

#include "common/logging.h"

namespace cackle {

CircuitBreaker::CircuitBreaker(const CircuitBreakerOptions& options)
    : options_(options) {
  CACKLE_CHECK_GE(options_.failure_threshold, 0);
  CACKLE_CHECK_GT(options_.open_ms, 0);
  CACKLE_CHECK_GE(options_.success_threshold, 1);
}

bool CircuitBreaker::AllowRequest(int64_t now_ms) {
  if (options_.failure_threshold == 0) return true;
  switch (state_) {
    case State::kClosed:
    case State::kHalfOpen:
      return true;
    case State::kOpen:
      if (now_ms >= open_until_ms_) {
        state_ = State::kHalfOpen;
        half_open_successes_ = 0;
        ++half_opens_;
        return true;
      }
      ++rejections_;
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess(int64_t now_ms) {
  (void)now_ms;
  if (options_.failure_threshold == 0) return;
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    if (++half_open_successes_ >= options_.success_threshold) {
      state_ = State::kClosed;
    }
  }
}

void CircuitBreaker::RecordFailure(int64_t now_ms) {
  if (options_.failure_threshold == 0) return;
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        TripOpen(now_ms);
      }
      break;
    case State::kHalfOpen:
      // A failed trial re-opens immediately.
      TripOpen(now_ms);
      break;
    case State::kOpen:
      // Failures while open can only come from requests admitted before the
      // trip; they extend nothing.
      break;
  }
}

void CircuitBreaker::TripOpen(int64_t now_ms) {
  state_ = State::kOpen;
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  open_until_ms_ = now_ms + options_.open_ms;
  ++trips_;
}

}  // namespace cackle
