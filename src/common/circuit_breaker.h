#ifndef CACKLE_COMMON_CIRCUIT_BREAKER_H_
#define CACKLE_COMMON_CIRCUIT_BREAKER_H_

#include <cstdint>

#include "common/thread_annotations.h"

namespace cackle {

/// \brief Tunables of a circuit breaker. A zero `failure_threshold`
/// disables the breaker entirely (it never trips and never rejects).
struct CircuitBreakerOptions {
  /// Consecutive failures that trip the breaker open; 0 = disabled.
  int failure_threshold = 0;
  /// How long the breaker stays open before half-opening. Interpreted in
  /// whatever clock the caller passes to the methods (the simulated object
  /// store passes simulated or virtual-retry milliseconds).
  int64_t open_ms = 30'000;
  /// Consecutive half-open successes required to close again.
  int success_threshold = 1;
};

/// \brief Deterministic circuit breaker (closed -> open -> half-open).
///
/// Entirely clock-driven and free of randomness: the caller passes the
/// current time to every method, so the breaker behaves identically across
/// reruns of a seeded simulation. State machine:
///  - kClosed: requests flow; `failure_threshold` consecutive failures trip
///    the breaker open (a success resets the streak).
///  - kOpen: requests are rejected until `open_ms` has elapsed since the
///    trip, then the next request transitions to half-open and is allowed
///    through as a trial.
///  - kHalfOpen: trial requests flow; `success_threshold` consecutive
///    successes close the breaker, any failure re-opens it for another
///    `open_ms`.
class CACKLE_THREAD_CONFINED(
    "clock-driven state machine owned by one simulated object store")
CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(const CircuitBreakerOptions& options);

  const CircuitBreakerOptions& options() const { return options_; }

  /// Whether a request issued at `now_ms` may proceed. Transitions open ->
  /// half-open when the cooldown has elapsed.
  bool AllowRequest(int64_t now_ms);

  /// Earliest time a rejected request could be allowed again (the open
  /// cooldown expiry). Only meaningful while open.
  int64_t RetryAtMs() const { return open_until_ms_; }

  void RecordSuccess(int64_t now_ms);
  void RecordFailure(int64_t now_ms);

  State state() const { return state_; }
  /// Closed -> open transitions observed so far.
  int64_t trips() const { return trips_; }
  /// Open -> half-open transitions observed so far.
  int64_t half_opens() const { return half_opens_; }
  /// Requests rejected while open.
  int64_t rejections() const { return rejections_; }

 private:
  void TripOpen(int64_t now_ms);

  CircuitBreakerOptions options_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  int64_t open_until_ms_ = 0;
  int64_t trips_ = 0;
  int64_t half_opens_ = 0;
  int64_t rejections_ = 0;
};

}  // namespace cackle

#endif  // CACKLE_COMMON_CIRCUIT_BREAKER_H_
