#include "common/cost_ledger.h"

#include <cmath>
#include <limits>

#include "common/json_writer.h"
#include "common/logging.h"

namespace cackle {

void CostLedger::EnsureCategories(const std::vector<std::string>& names) {
  if (category_names_.empty()) {
    category_names_ = names;
    attributed_.assign(names.size(), 0.0);
    return;
  }
  CACKLE_CHECK(category_names_ == names)
      << "cost ledger reused with a different category schema";
}

CostLedger::Row& CostLedger::RowFor(int64_t query_id) {
  Row& row = rows_[query_id];
  if (row.dollars.empty()) {
    row.dollars.assign(num_categories(), 0.0);
    row.usage.assign(num_categories(), 0.0);
  }
  return row;
}

void CostLedger::Attribute(int64_t query_id, size_t category, double dollars,
                           double usage) {
  CACKLE_CHECK(!finalized_) << "attribution after FinalizeAgainst";
  CACKLE_CHECK_LT(category, num_categories());
  Row& row = RowFor(query_id);
  row.dollars[category] += dollars;
  row.usage[category] += usage;
  attributed_[category] += dollars;
}

void CostLedger::Touch(int64_t query_id) {
  CACKLE_CHECK(!finalized_) << "attribution after FinalizeAgainst";
  RowFor(query_id);
}

void CostLedger::AddUsage(int64_t query_id, size_t category, double usage) {
  CACKLE_CHECK(!finalized_) << "attribution after FinalizeAgainst";
  CACKLE_CHECK_LT(category, num_categories());
  RowFor(query_id).usage[category] += usage;
}

void CostLedger::SetTenant(int64_t query_id, int64_t tenant_id) {
  CACKLE_CHECK(!finalized_) << "tenant assignment after FinalizeAgainst";
  CACKLE_CHECK_NE(query_id, kOverheadQueryId)
      << "the overhead row belongs to the overhead pseudo-tenant";
  CACKLE_CHECK_GE(tenant_id, 0);
  if (tenant_id == 0) return;  // the default; keep the map sparse
  tenant_of_[query_id] = tenant_id;
}

int64_t CostLedger::TenantOf(int64_t query_id) const {
  if (query_id == kOverheadQueryId) return kOverheadTenantId;
  auto it = tenant_of_.find(query_id);
  return it == tenant_of_.end() ? 0 : it->second;
}

double CostLedger::CategoryAttributed(size_t category) const {
  CACKLE_CHECK_LT(category, num_categories());
  return attributed_[category];
}

double CostLedger::CanonicalFold(
    const std::map<int64_t, std::vector<Row*>>& by_tenant,
    size_t category) const {
  // Real tenants fold in ascending id order; the overhead pseudo-tenant
  // folds LAST. The order matters for exactness forcing: with overhead
  // last, the fold is fl(S + overhead) for a fixed prefix S, and single-ulp
  // steps of the overhead slot sweep every representable value near the
  // target. Were overhead folded first, the nudge would propagate through
  // one rounded addition per tenant and the fold's image could skip the
  // billed amount entirely (observed with ~1000 tenants).
  double total = 0.0;
  for (const auto& [tenant, tenant_rows] : by_tenant) {
    if (tenant == kOverheadTenantId) continue;
    double subtotal = 0.0;
    for (const Row* row : tenant_rows) subtotal += row->dollars[category];
    total += subtotal;
  }
  auto overhead = by_tenant.find(kOverheadTenantId);
  if (overhead != by_tenant.end()) {
    double subtotal = 0.0;
    for (const Row* row : overhead->second) subtotal += row->dollars[category];
    total += subtotal;
  }
  return total;
}

void CostLedger::FinalizeAgainst(
    const std::vector<double>& billed_per_category) {
  CACKLE_CHECK(!finalized_) << "FinalizeAgainst called twice";
  CACKLE_CHECK_EQ(billed_per_category.size(), num_categories());
  // The overhead row is materialized up front: it receives usage-less
  // residuals and absorbs the exact closure remainder for every category.
  Row& overhead = RowFor(kOverheadQueryId);
  finalized_ = true;

  // Group rows by tenant once, ascending query id within each tenant (the
  // row map iterates in ascending order). This grouping defines the
  // canonical fold the exactness invariant is stated in.
  std::map<int64_t, std::vector<Row*>> by_tenant;
  for (auto& [query_id, row] : rows_) {
    by_tenant[TenantOf(query_id)].push_back(&row);
  }

  for (size_t c = 0; c < num_categories(); ++c) {
    const double target = billed_per_category[c];
    const double residual = target - attributed_[c];
    if (residual != 0.0) {
      // Residual distribution is hierarchical: tenants split the residual
      // proportionally to their recorded usage, then each tenant's share is
      // split across its own queries — so one tenant's idle-capacity share
      // never leaks into another tenant's invoice. The last usage-bearing
      // tenant (and, within a tenant, its last usage-bearing query) takes
      // the arithmetic remainder; sub-ulp drift left by that arithmetic is
      // forced onto the overhead row below.
      std::map<int64_t, double> tenant_usage;
      double total_usage = 0.0;
      for (const auto& [query_id, row] : rows_) {
        if (row.usage[c] > 0.0) {
          tenant_usage[TenantOf(query_id)] += row.usage[c];
          total_usage += row.usage[c];
        }
      }
      if (total_usage <= 0.0) {
        // Nothing to key the split on: overhead (e.g. coordinator rental).
        overhead.dollars[c] += residual;
      } else {
        const int64_t last_tenant = tenant_usage.rbegin()->first;
        double distributed_tenants = 0.0;
        for (const auto& [tenant, usage_t] : tenant_usage) {
          double tenant_share;
          if (tenant == last_tenant) {
            tenant_share = residual - distributed_tenants;
          } else {
            tenant_share = residual * (usage_t / total_usage);
            distributed_tenants += tenant_share;
          }
          // Within-tenant split over this tenant's usage-bearing rows.
          Row* last_user = nullptr;
          for (Row* row : by_tenant.at(tenant)) {
            if (row->usage[c] > 0.0) last_user = row;
          }
          double distributed_rows = 0.0;
          for (Row* row : by_tenant.at(tenant)) {
            if (row->usage[c] <= 0.0) continue;
            double share;
            if (row == last_user) {
              share = tenant_share - distributed_rows;
            } else {
              share = tenant_share * (row->usage[c] / usage_t);
              distributed_rows += share;
            }
            row->dollars[c] += share;
          }
        }
      }
    }
    // Exactness forcing: the canonical fold (per-tenant row folds, then the
    // tenant folds, all in ascending order) must reproduce the bill bit for
    // bit. The fold is monotone non-decreasing in the overhead row's value,
    // so nudging it by the observed defect converges in a few steps; when
    // the defect underflows the addition, step by single ulps instead.
    double& slot = overhead.dollars[c];
    for (int iter = 0; iter < 200; ++iter) {
      const double fold = CanonicalFold(by_tenant, c);
      if (fold == target) break;
      const double delta = target - fold;
      const double next = slot + delta;
      slot = next == slot
                 ? std::nextafter(
                       slot, delta > 0.0
                                 ? std::numeric_limits<double>::infinity()
                                 : -std::numeric_limits<double>::infinity())
                 : next;
    }
    CACKLE_CHECK(CanonicalFold(by_tenant, c) == target)
        << "category " << category_names_[c]
        << " failed to close exactly against the bill";
    attributed_[c] = target;
  }

  // Materialize the per-tenant invoices from the closed rows. Each invoice
  // entry is exactly the canonical row fold, so "invoice == sum of the
  // tenant's rows" holds by construction and "sum of invoices == bill"
  // holds by the forcing above.
  tenant_invoices_.clear();
  for (const auto& [tenant, tenant_rows] : by_tenant) {
    Invoice& invoice = tenant_invoices_[tenant];
    invoice.dollars.assign(num_categories(), 0.0);
    invoice.num_queries = static_cast<int64_t>(tenant_rows.size());
    for (size_t c = 0; c < num_categories(); ++c) {
      double subtotal = 0.0;
      for (const Row* row : tenant_rows) subtotal += row->dollars[c];
      invoice.dollars[c] = subtotal;
    }
  }
}

double CostLedger::QueryDollars(int64_t query_id) const {
  auto it = rows_.find(query_id);
  return it == rows_.end() ? 0.0 : it->second.Total();
}

double CostLedger::TenantDollars(int64_t tenant_id) const {
  auto it = tenant_invoices_.find(tenant_id);
  return it == tenant_invoices_.end() ? 0.0 : it->second.Total();
}

double CostLedger::TotalDollars() const {
  double total = 0.0;
  for (const auto& [query_id, row] : rows_) total += row.Total();
  return total;
}

void CostLedger::WriteJson(JsonWriter& json) const {
  json.BeginObject();
  json.Field("finalized", finalized_);
  json.Key("categories").BeginArray();
  for (const std::string& name : category_names_) json.String(name);
  json.EndArray();
  json.Key("attributed_per_category").BeginArray();
  for (double d : attributed_) json.Double(d);
  json.EndArray();
  json.Key("rows").BeginArray();
  for (const auto& [query_id, row] : rows_) {
    json.BeginObject();
    json.Field("query_id", query_id);
    json.Field("tenant", TenantOf(query_id));
    json.Field("total", row.Total());
    json.Key("by_category").BeginArray();
    for (double d : row.dollars) json.Double(d);
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.Key("tenant_invoices").BeginArray();
  for (const auto& [tenant, invoice] : tenant_invoices_) {
    json.BeginObject();
    json.Field("tenant", tenant);
    json.Field("num_queries", invoice.num_queries);
    json.Field("total", invoice.Total());
    json.Key("by_category").BeginArray();
    for (double d : invoice.dollars) json.Double(d);
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.Field("total", TotalDollars());
  json.EndObject();
}

}  // namespace cackle
