#include "common/cost_ledger.h"

#include "common/json_writer.h"
#include "common/logging.h"

namespace cackle {

void CostLedger::EnsureCategories(const std::vector<std::string>& names) {
  if (category_names_.empty()) {
    category_names_ = names;
    attributed_.assign(names.size(), 0.0);
    return;
  }
  CACKLE_CHECK(category_names_ == names)
      << "cost ledger reused with a different category schema";
}

CostLedger::Row& CostLedger::RowFor(int64_t query_id) {
  Row& row = rows_[query_id];
  if (row.dollars.empty()) {
    row.dollars.assign(num_categories(), 0.0);
    row.usage.assign(num_categories(), 0.0);
  }
  return row;
}

void CostLedger::Attribute(int64_t query_id, size_t category, double dollars,
                           double usage) {
  CACKLE_CHECK(!finalized_) << "attribution after FinalizeAgainst";
  CACKLE_CHECK_LT(category, num_categories());
  Row& row = RowFor(query_id);
  row.dollars[category] += dollars;
  row.usage[category] += usage;
  attributed_[category] += dollars;
}

void CostLedger::Touch(int64_t query_id) {
  CACKLE_CHECK(!finalized_) << "attribution after FinalizeAgainst";
  RowFor(query_id);
}

void CostLedger::AddUsage(int64_t query_id, size_t category, double usage) {
  CACKLE_CHECK(!finalized_) << "attribution after FinalizeAgainst";
  CACKLE_CHECK_LT(category, num_categories());
  RowFor(query_id).usage[category] += usage;
}

double CostLedger::CategoryAttributed(size_t category) const {
  CACKLE_CHECK_LT(category, num_categories());
  return attributed_[category];
}

void CostLedger::FinalizeAgainst(
    const std::vector<double>& billed_per_category) {
  CACKLE_CHECK(!finalized_) << "FinalizeAgainst called twice";
  CACKLE_CHECK_EQ(billed_per_category.size(), num_categories());
  finalized_ = true;
  for (size_t c = 0; c < num_categories(); ++c) {
    const double residual = billed_per_category[c] - attributed_[c];
    if (residual == 0.0) continue;
    double total_usage = 0.0;
    int64_t last_user = kOverheadQueryId;
    for (const auto& [query_id, row] : rows_) {
      if (row.usage[c] > 0.0) {
        total_usage += row.usage[c];
        last_user = query_id;
      }
    }
    if (total_usage <= 0.0) {
      // Nothing to key the split on: overhead (e.g. coordinator rental).
      RowFor(kOverheadQueryId).dollars[c] += residual;
      attributed_[c] += residual;
      continue;
    }
    // Proportional split; the heaviest-indexed user takes the exact
    // remainder so the category closes to the bill.
    double distributed = 0.0;
    for (auto& [query_id, row] : rows_) {
      if (row.usage[c] <= 0.0) continue;
      double share;
      if (query_id == last_user) {
        share = residual - distributed;
      } else {
        share = residual * (row.usage[c] / total_usage);
        distributed += share;
      }
      row.dollars[c] += share;
      attributed_[c] += share;
    }
  }
}

double CostLedger::QueryDollars(int64_t query_id) const {
  auto it = rows_.find(query_id);
  return it == rows_.end() ? 0.0 : it->second.Total();
}

double CostLedger::TotalDollars() const {
  double total = 0.0;
  for (const auto& [query_id, row] : rows_) total += row.Total();
  return total;
}

void CostLedger::WriteJson(JsonWriter& json) const {
  json.BeginObject();
  json.Field("finalized", finalized_);
  json.Key("categories").BeginArray();
  for (const std::string& name : category_names_) json.String(name);
  json.EndArray();
  json.Key("attributed_per_category").BeginArray();
  for (double d : attributed_) json.Double(d);
  json.EndArray();
  json.Key("rows").BeginArray();
  for (const auto& [query_id, row] : rows_) {
    json.BeginObject();
    json.Field("query_id", query_id);
    json.Field("total", row.Total());
    json.Key("by_category").BeginArray();
    for (double d : row.dollars) json.Double(d);
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.Field("total", TotalDollars());
  json.EndObject();
}

}  // namespace cackle
