#ifndef CACKLE_COMMON_COST_LEDGER_H_
#define CACKLE_COMMON_COST_LEDGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace cackle {

class JsonWriter;

/// \brief Per-query cost attribution ledger with per-tenant invoices.
///
/// Splits every billed cent across the queries that incurred it. Categories
/// are small integer indices with display names (the engine uses its
/// CostCategory enum; the ledger itself is layer-agnostic so it can live in
/// common/ below the cloud substrate).
///
/// Usage pattern:
///  1. Instrumented code calls Attribute(query, category, dollars[, usage])
///     with the exact dollar amounts it simultaneously charges to the
///     BillingMeter (elastic slot-milliseconds, object-store requests), or
///     marginal amounts for shared resources (a task's VM-milliseconds at
///     the hourly rate).
///  2. Code that cannot attribute directly records AddUsage() weights
///     (e.g. shuffle bytes a query parked on shared shuffle nodes).
///  3. SetTenant() assigns queries to tenants (every query defaults to
///     tenant 0, so a single-tenant caller never touches the tenant API).
///  4. FinalizeAgainst(billed) closes the books: for every category the
///     residual between the real bill and the directly attributed sum
///     (idle VM capacity, startup time, minimum-billing rounding) is
///     distributed hierarchically — first across tenants proportionally to
///     each tenant's recorded usage, then within each tenant across its
///     queries — so an invoice reflects only its own tenant's activity.
///     Categories with no recorded usage anywhere (e.g. the coordinator
///     rental) fall to the overhead row, query id -1 (pseudo-tenant -1).
///
/// Exactness invariant (no epsilon): after finalization, summing the
/// per-tenant invoices for a category in canonical order — real tenants in
/// ascending id order, then the overhead pseudo-tenant (-1) last — yields
/// the billed amount for that category *bit for bit*, where each invoice is
/// itself the fold of the tenant's rows in ascending query order. (Overhead
/// folds last so the closure-forcing nudge lands on the final addition,
/// where single-ulp steps reach every representable value; folded first,
/// the nudge would round through every later tenant subtotal.) Naive
/// last-row-takes-the-remainder arithmetic cannot guarantee this (the fold
/// of `d` and `fl(S - d)` may differ from `S` by an ulp, and with 10k rows
/// the attribution-order running sum drifts further); FinalizeAgainst
/// therefore *forces* the canonical fold onto the bill by nudging the
/// overhead row until the fold closes, which converges in a couple of
/// iterations because the fold is monotone in any single row.
///
/// Like the other observability sinks, attribution is pure arithmetic on
/// already-computed amounts: it cannot perturb a simulation.
class CACKLE_THREAD_CONFINED(
    "tenant shards are plain maps: one ledger per Simulation, and the "
    "canonical invoice fold runs after the run completes")
CostLedger {
 public:
  /// The pseudo-query that absorbs cost attributable to no query.
  static constexpr int64_t kOverheadQueryId = -1;
  /// The pseudo-tenant owning the overhead row.
  static constexpr int64_t kOverheadTenantId = -1;

  struct Row {
    std::vector<double> dollars;  // per category
    std::vector<double> usage;    // per category, attribution weight

    double Total() const {
      double t = 0.0;
      for (double d : dollars) t += d;
      return t;
    }
  };

  /// A tenant's finalized invoice: for each category, the fold of the
  /// tenant's rows in ascending query order (so the invoice is exactly the
  /// sum of its own rows by construction).
  struct Invoice {
    std::vector<double> dollars;  // per category, canonical row fold
    int64_t num_queries = 0;      // rows owned by this tenant

    double Total() const {
      double t = 0.0;
      for (double d : dollars) t += d;
      return t;
    }
  };

  CostLedger() = default;

  /// Sets the category names on first call; CHECKs they match on reuse (so
  /// an externally provided ledger and the engine agree on the schema).
  void EnsureCategories(const std::vector<std::string>& names);

  size_t num_categories() const { return category_names_.size(); }
  const std::vector<std::string>& category_names() const {
    return category_names_;
  }

  /// Adds `dollars` of category `category` to `query_id`'s row, plus an
  /// optional attribution weight for residual distribution.
  void Attribute(int64_t query_id, size_t category, double dollars,
                 double usage = 0.0);

  /// Records an attribution weight without dollars.
  void AddUsage(int64_t query_id, size_t category, double usage);

  /// Materializes `query_id`'s row with zero dollars and zero usage. Shed
  /// queries call this so the books show them as first-class outcomes — a
  /// row proving they cost nothing — rather than omitting them entirely.
  void Touch(int64_t query_id);

  /// Assigns `query_id` to `tenant_id` (>= 0). Unassigned queries belong to
  /// tenant 0; the overhead row always belongs to pseudo-tenant -1.
  void SetTenant(int64_t query_id, int64_t tenant_id);

  /// The tenant owning `query_id` (0 unless SetTenant said otherwise; -1
  /// for the overhead row).
  int64_t TenantOf(int64_t query_id) const;

  /// Sum attributed to `category` so far, accumulated in attribution order.
  /// After finalization this equals the billed amount exactly.
  double CategoryAttributed(size_t category) const;

  /// Distributes each category's residual (billed - attributed) as
  /// described above and forces the exactness invariant. Call exactly once,
  /// after the final bill is known.
  void FinalizeAgainst(const std::vector<double>& billed_per_category);
  bool finalized() const { return finalized_; }

  /// Rows ordered by query id; the overhead row (-1) sorts first.
  const std::map<int64_t, Row>& rows() const { return rows_; }

  /// Per-tenant invoices, keyed ascending (the overhead tenant -1 sorts
  /// first in the map; the exactness invariant's canonical fold sums real
  /// tenants ascending, then overhead last). Populated by FinalizeAgainst.
  const std::map<int64_t, Invoice>& tenant_invoices() const {
    return tenant_invoices_;
  }

  double QueryDollars(int64_t query_id) const;
  /// Finalized total for one tenant (fold of its invoice categories).
  double TenantDollars(int64_t tenant_id) const;
  double TotalDollars() const;

  /// {"categories": [...], "rows": [{"query_id", "tenant", "total",
  /// "by_category"}...], "tenant_invoices": [...], "total": ...}
  void WriteJson(JsonWriter& json) const;

 private:
  Row& RowFor(int64_t query_id);
  /// Canonical closure sum for one category: fold rows within each tenant
  /// in ascending query order, then fold the tenant subtotals in ascending
  /// tenant order. This is the exact expression the invariant is stated in.
  double CanonicalFold(const std::map<int64_t, std::vector<Row*>>& by_tenant,
                       size_t category) const;

  std::vector<std::string> category_names_;
  std::map<int64_t, Row> rows_;
  std::map<int64_t, int64_t> tenant_of_;  // query -> tenant, sparse
  std::map<int64_t, Invoice> tenant_invoices_;
  std::vector<double> attributed_;  // per category, attribution order
  bool finalized_ = false;
};

}  // namespace cackle

#endif  // CACKLE_COMMON_COST_LEDGER_H_
