#ifndef CACKLE_COMMON_COST_LEDGER_H_
#define CACKLE_COMMON_COST_LEDGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cackle {

class JsonWriter;

/// \brief Per-query cost attribution ledger.
///
/// Splits every billed cent across the queries that incurred it. Categories
/// are small integer indices with display names (the engine uses its
/// CostCategory enum; the ledger itself is layer-agnostic so it can live in
/// common/ below the cloud substrate).
///
/// Usage pattern:
///  1. Instrumented code calls Attribute(query, category, dollars[, usage])
///     with the exact dollar amounts it simultaneously charges to the
///     BillingMeter (elastic slot-milliseconds, object-store requests), or
///     marginal amounts for shared resources (a task's VM-milliseconds at
///     the hourly rate).
///  2. Code that cannot attribute directly records AddUsage() weights
///     (e.g. shuffle bytes a query parked on shared shuffle nodes).
///  3. FinalizeAgainst(billed) closes the books: for every category the
///     residual between the real bill and the directly attributed sum
///     (idle VM capacity, startup time, minimum-billing rounding) is
///     distributed across queries proportionally to their recorded usage —
///     the last query receives the exact remainder so the per-category
///     attributed total equals the bill to the last floating-point bit of
///     the residual. Categories with no recorded usage (e.g. the
///     coordinator rental) fall to the overhead row, query id -1.
///
/// Like the other observability sinks, attribution is pure arithmetic on
/// already-computed amounts: it cannot perturb a simulation.
class CostLedger {
 public:
  /// The pseudo-query that absorbs cost attributable to no query.
  static constexpr int64_t kOverheadQueryId = -1;

  struct Row {
    std::vector<double> dollars;  // per category
    std::vector<double> usage;    // per category, attribution weight

    double Total() const {
      double t = 0.0;
      for (double d : dollars) t += d;
      return t;
    }
  };

  CostLedger() = default;

  /// Sets the category names on first call; CHECKs they match on reuse (so
  /// an externally provided ledger and the engine agree on the schema).
  void EnsureCategories(const std::vector<std::string>& names);

  size_t num_categories() const { return category_names_.size(); }
  const std::vector<std::string>& category_names() const {
    return category_names_;
  }

  /// Adds `dollars` of category `category` to `query_id`'s row, plus an
  /// optional attribution weight for residual distribution.
  void Attribute(int64_t query_id, size_t category, double dollars,
                 double usage = 0.0);

  /// Records an attribution weight without dollars.
  void AddUsage(int64_t query_id, size_t category, double usage);

  /// Materializes `query_id`'s row with zero dollars and zero usage. Shed
  /// queries call this so the books show them as first-class outcomes — a
  /// row proving they cost nothing — rather than omitting them entirely.
  void Touch(int64_t query_id);

  /// Sum attributed to `category` so far, accumulated in attribution order.
  double CategoryAttributed(size_t category) const;

  /// Distributes each category's residual (billed - attributed) as
  /// described above. Call exactly once, after the final bill is known.
  void FinalizeAgainst(const std::vector<double>& billed_per_category);
  bool finalized() const { return finalized_; }

  /// Rows ordered by query id; the overhead row (-1) sorts first.
  const std::map<int64_t, Row>& rows() const { return rows_; }

  double QueryDollars(int64_t query_id) const;
  double TotalDollars() const;

  /// {"categories": [...], "rows": [{"query_id", "total", "by_category",
  /// "usage"}...], "total": ...}
  void WriteJson(JsonWriter& json) const;

 private:
  Row& RowFor(int64_t query_id);

  std::vector<std::string> category_names_;
  std::map<int64_t, Row> rows_;
  std::vector<double> attributed_;  // per category, attribution order
  bool finalized_ = false;
};

}  // namespace cackle

#endif  // CACKLE_COMMON_COST_LEDGER_H_
