#ifndef CACKLE_COMMON_FENWICK_H_
#define CACKLE_COMMON_FENWICK_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace cackle {

/// \brief Fenwick (binary indexed) tree over counts of integer values in
/// [0, domain). Supports O(log domain) insert/erase of a value and
/// O(log domain) rank ("smallest value v such that at least k items are
/// <= v") queries.
///
/// The dynamic provisioning strategy evaluates hundreds of percentile
/// strategies over sliding windows of the demand history every few simulated
/// seconds; this structure makes each percentile query logarithmic in the
/// demand domain instead of linear in the window length.
class FenwickCounter {
 public:
  /// `domain` is one past the largest representable value.
  explicit FenwickCounter(int64_t domain)
      : domain_(domain), tree_(static_cast<size_t>(domain) + 1, 0), size_(0) {
    CACKLE_CHECK_GT(domain, 0);
  }

  int64_t domain() const { return domain_; }
  int64_t size() const { return size_; }

  /// Inserts one occurrence of `value` (0 <= value < domain).
  void Insert(int64_t value) { Update(value, +1); }

  /// Removes one occurrence of `value`; the value must be present.
  void Erase(int64_t value) { Update(value, -1); }

  /// Number of stored items with value <= `value`.
  int64_t CountLessEqual(int64_t value) const {
    if (value < 0) return 0;
    if (value >= domain_) return size_;
    int64_t idx = value + 1;  // 1-based
    int64_t total = 0;
    while (idx > 0) {
      total += tree_[static_cast<size_t>(idx)];
      idx -= idx & (-idx);
    }
    return total;
  }

  /// Returns the k-th smallest stored value (k is 1-based, 1 <= k <= size).
  int64_t KthSmallest(int64_t k) const {
    CACKLE_CHECK_GE(k, 1);
    CACKLE_CHECK_LE(k, size_);
    int64_t idx = 0;
    int64_t bit = 1;
    while ((bit << 1) <= domain_) bit <<= 1;
    int64_t remaining = k;
    for (; bit > 0; bit >>= 1) {
      const int64_t next = idx + bit;
      if (next <= domain_ &&
          tree_[static_cast<size_t>(next)] < remaining) {
        idx = next;
        remaining -= tree_[static_cast<size_t>(next)];
      }
    }
    return idx;  // 0-based value (idx is the count of the 1-based prefix)
  }

  /// Returns the p-th percentile (p in (0, 100]) of the stored values using
  /// the nearest-rank definition: the smallest value v such that at least
  /// ceil(p/100 * size) values are <= v. Returns 0 for an empty container.
  int64_t Percentile(double p) const {
    if (size_ == 0) return 0;
    CACKLE_CHECK_GT(p, 0.0);
    CACKLE_CHECK_LE(p, 100.0);
    int64_t k = static_cast<int64_t>(
        (p / 100.0) * static_cast<double>(size_) + 0.9999999);
    if (k < 1) k = 1;
    if (k > size_) k = size_;
    return KthSmallest(k);
  }

  /// Largest stored value; container must be non-empty.
  int64_t Max() const { return KthSmallest(size_); }

 private:
  void Update(int64_t value, int64_t delta) {
    CACKLE_CHECK_GE(value, 0);
    CACKLE_CHECK_LT(value, domain_);
    size_ += delta;
    CACKLE_CHECK_GE(size_, 0);
    int64_t idx = value + 1;
    while (idx <= domain_) {
      tree_[static_cast<size_t>(idx)] += delta;
      idx += idx & (-idx);
    }
  }

  int64_t domain_;
  std::vector<int64_t> tree_;
  int64_t size_;
};

}  // namespace cackle

#endif  // CACKLE_COMMON_FENWICK_H_
