#ifndef CACKLE_COMMON_INLINE_FUNCTION_H_
#define CACKLE_COMMON_INLINE_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cackle {

/// \brief Small-buffer-optimized, move-only `void()` callable.
///
/// A drop-in replacement for `std::function<void()>` on hot paths that
/// allocate one closure per unit of work (the discrete-event simulation
/// schedules millions of these per run). Callables whose state fits in
/// `kInlineBytes` and whose move constructor cannot throw are stored
/// directly inside the wrapper — no heap allocation, no pointer chase on
/// invocation. Larger or throwing-move callables fall back to a single
/// heap allocation, so any callable still works.
///
/// Differences from std::function, on purpose:
///  - move-only (a copyable type-erased closure forces every captured
///    state to be copyable and costs an extra vtable branch);
///  - no target-type introspection, no allocator support;
///  - invoking an empty InlineFunction is undefined behavior (callers in
///    this codebase always install a callback before invoking).
template <size_t kInlineBytes = 48>
class InlineFunction {
  static_assert(kInlineBytes >= sizeof(void*),
                "inline storage must at least hold a pointer");

 public:
  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (StoredInline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      *HeapSlot() = new Fn(std::forward<F>(f));
      ops_ = &kHeapOps<Fn>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  /// Destroys the held callable (freeing its heap block if it spilled).
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True when the held callable lives in the inline buffer (test hook).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_stored; }

  static constexpr size_t inline_capacity() { return kInlineBytes; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs the callable from `src` storage into `dst` storage
    /// and destroys the source (heap spill just moves the pointer).
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void* storage);
    bool inline_stored;
  };

  template <typename Fn>
  static constexpr bool StoredInline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      /*invoke=*/[](void* s) { (*std::launder(static_cast<Fn*>(s)))(); },
      /*relocate=*/
      [](void* src, void* dst) {
        Fn* from = std::launder(static_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      /*destroy=*/[](void* s) { std::launder(static_cast<Fn*>(s))->~Fn(); },
      /*inline_stored=*/true,
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      /*invoke=*/[](void* s) { (**static_cast<Fn**>(s))(); },
      /*relocate=*/
      [](void* src, void* dst) {
        *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
      },
      /*destroy=*/[](void* s) { delete *static_cast<Fn**>(s); },
      /*inline_stored=*/false,
  };

  void** HeapSlot() { return reinterpret_cast<void**>(storage_); }

  void MoveFrom(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace cackle

#endif  // CACKLE_COMMON_INLINE_FUNCTION_H_
