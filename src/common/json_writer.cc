#include "common/json_writer.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace cackle {

std::string JsonDoubleToString(double value) {
  // JSON has no NaN/Inf literals; clamp them to null-adjacent sentinels so a
  // stray non-finite metric cannot produce an unparseable artifact.
  if (std::isnan(value)) return "null";
  if (std::isinf(value)) return value > 0 ? "1e308" : "-1e308";
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  CACKLE_CHECK(ec == std::errc());
  std::string s(buf, static_cast<size_t>(ptr - buf));
  // Bare integers are valid JSON numbers, but keep them distinguishable from
  // int fields for schema consumers? No — shortest form is fine as-is.
  return s;
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) {
    CACKLE_CHECK(!wrote_top_level_) << "multiple top-level JSON values";
    wrote_top_level_ = true;
    return;
  }
  if (stack_.back() == Scope::kObject) {
    CACKLE_CHECK(key_pending_) << "JSON object value without a key";
    key_pending_ = false;
    return;
  }
  if (!first_.back()) os_ << ',';
  first_.back() = false;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  CACKLE_CHECK(!stack_.empty() && stack_.back() == Scope::kObject)
      << "JSON key outside an object";
  CACKLE_CHECK(!key_pending_) << "JSON key after key";
  if (!first_.back()) os_ << ',';
  first_.back() = false;
  os_ << '"';
  WriteEscaped(key);
  os_ << "\":";
  key_pending_ = true;
  return *this;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  os_ << '{';
  stack_.push_back(Scope::kObject);
  first_.push_back(true);
}

void JsonWriter::EndObject() {
  CACKLE_CHECK(!stack_.empty() && stack_.back() == Scope::kObject);
  CACKLE_CHECK(!key_pending_) << "JSON object closed with dangling key";
  stack_.pop_back();
  first_.pop_back();
  os_ << '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  os_ << '[';
  stack_.push_back(Scope::kArray);
  first_.push_back(true);
}

void JsonWriter::EndArray() {
  CACKLE_CHECK(!stack_.empty() && stack_.back() == Scope::kArray);
  stack_.pop_back();
  first_.pop_back();
  os_ << ']';
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  os_ << '"';
  WriteEscaped(value);
  os_ << '"';
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  os_ << value;
}

void JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  os_ << value;
}

void JsonWriter::Double(double value) {
  BeforeValue();
  os_ << JsonDoubleToString(value);
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  os_ << (value ? "true" : "false");
}

void JsonWriter::Null() {
  BeforeValue();
  os_ << "null";
}

void JsonWriter::WriteEscaped(std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os_ << "\\\"";
        break;
      case '\\':
        os_ << "\\\\";
        break;
      case '\n':
        os_ << "\\n";
        break;
      case '\r':
        os_ << "\\r";
        break;
      case '\t':
        os_ << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
}

}  // namespace cackle
