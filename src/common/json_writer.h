#ifndef CACKLE_COMMON_JSON_WRITER_H_
#define CACKLE_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace cackle {

/// \brief Minimal streaming JSON writer for metrics/trace snapshots.
///
/// Emits deterministic output: doubles are printed with the shortest
/// round-trip representation (std::to_chars), so two runs that produce
/// bit-identical values produce byte-identical JSON — the property the
/// observability determinism tests assert on.
///
/// Commas and nesting are managed by an internal state stack; misuse (e.g.
/// a value without a pending key inside an object) aborts.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Object member key; must be followed by exactly one value or container.
  JsonWriter& Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void Uint(uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  // Convenience: Key(k) + value.
  void Field(std::string_view key, std::string_view value) {
    Key(key).String(value);
  }
  // A string literal would otherwise convert to bool, silently emitting
  // `true` instead of the string; route const char* to the string overload.
  void Field(std::string_view key, const char* value) {
    Key(key).String(value);
  }
  void Field(std::string_view key, int64_t value) { Key(key).Int(value); }
  void Field(std::string_view key, int value) {
    Key(key).Int(static_cast<int64_t>(value));
  }
  void Field(std::string_view key, double value) { Key(key).Double(value); }
  void Field(std::string_view key, bool value) { Key(key).Bool(value); }

  /// All containers must be closed before the writer is destroyed.
  bool Done() const { return stack_.empty() && wrote_top_level_; }

 private:
  enum class Scope { kObject, kArray };

  void BeforeValue();
  void WriteEscaped(std::string_view s);

  std::ostream& os_;
  std::vector<Scope> stack_;
  std::vector<bool> first_;  // parallel to stack_: no comma needed yet
  bool key_pending_ = false;
  bool wrote_top_level_ = false;
};

/// Formats a double with the shortest round-trip representation.
std::string JsonDoubleToString(double value);

}  // namespace cackle

#endif  // CACKLE_COMMON_JSON_WRITER_H_
