#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace cackle {
namespace internal {
namespace {

LogLevel g_log_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

thread_local std::string g_log_context;

}  // namespace

LogLevel GetLogLevel() { return g_log_level; }
void SetLogLevel(LogLevel level) { g_log_level = level; }

const std::string& ThreadLogContext() { return g_log_context; }

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal), enabled_(fatal || level >= g_log_level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
    if (!g_log_context.empty()) stream_ << "(" << g_log_context << ") ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
  }
  if (fatal_) std::abort();
}

}  // namespace internal

ScopedLogContext::ScopedLogContext(std::string context) {
  saved_ = std::move(internal::g_log_context);
  internal::g_log_context = std::move(context);
}

ScopedLogContext::~ScopedLogContext() {
  internal::g_log_context = std::move(saved_);
}

}  // namespace cackle
