#ifndef CACKLE_COMMON_LOGGING_H_
#define CACKLE_COMMON_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

#include "common/status.h"

namespace cackle {

/// \brief Severity levels for the logging macros below.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Installs a thread-local context string that every log line (and,
/// critically, every fatal CACKLE_CHECK message) emitted by this thread is
/// tagged with while the scope is alive. Scopes nest: the previous context
/// is restored on destruction.
///
/// The thread pool installs the owning task group's context around each
/// task, so a check failure deep inside a pooled task still reports which
/// plan/stage it was executing ("(q8/join_ps) Check failed: ...").
class ScopedLogContext {
 public:
  explicit ScopedLogContext(std::string context);
  ~ScopedLogContext();

  ScopedLogContext(const ScopedLogContext&) = delete;
  ScopedLogContext& operator=(const ScopedLogContext&) = delete;

 private:
  std::string saved_;
};

namespace internal {

/// Current thread's log context ("" when none is installed).
const std::string& ThreadLogContext();

/// Minimum level actually emitted; default kInfo. Not thread-safe to change
/// while logging concurrently (set it once at startup).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Stream-style log sink. Writes the accumulated message to stderr on
/// destruction; if `fatal`, aborts the process afterwards.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
  LogLevel level_;
  bool fatal_;
  bool enabled_;
};

}  // namespace internal
}  // namespace cackle

/// Stream-style logging: CACKLE_LOG(INFO) << "message " << value;
#define CACKLE_LOG(severity)                                          \
  ::cackle::internal::LogMessage(::cackle::LogLevel::k##severity,     \
                                 __FILE__, __LINE__)

/// \brief Invariant check: aborts with a message when `condition` is false.
///
/// Used for programming errors (broken invariants), not for recoverable
/// conditions — those return Status.
#define CACKLE_CHECK(condition)                                             \
  if (!(condition))                                                         \
  ::cackle::internal::LogMessage(::cackle::LogLevel::kError, __FILE__,      \
                                 __LINE__, /*fatal=*/true)                  \
      << "Check failed: " #condition " "

#define CACKLE_CHECK_OK(expr)                                               \
  do {                                                                      \
    const ::cackle::Status _cackle_check_status = (expr);                   \
    CACKLE_CHECK(_cackle_check_status.ok()) << _cackle_check_status.ToString(); \
  } while (false)

#define CACKLE_CHECK_EQ(a, b) CACKLE_CHECK((a) == (b))
#define CACKLE_CHECK_NE(a, b) CACKLE_CHECK((a) != (b))
#define CACKLE_CHECK_LT(a, b) CACKLE_CHECK((a) < (b))
#define CACKLE_CHECK_LE(a, b) CACKLE_CHECK((a) <= (b))
#define CACKLE_CHECK_GT(a, b) CACKLE_CHECK((a) > (b))
#define CACKLE_CHECK_GE(a, b) CACKLE_CHECK((a) >= (b))

#endif  // CACKLE_COMMON_LOGGING_H_
