#ifndef CACKLE_COMMON_METRIC_NAMES_H_
#define CACKLE_COMMON_METRIC_NAMES_H_

#include <string>

namespace cackle {

/// \brief Central registry of every metric name literal in the codebase.
///
/// All counter/gauge/histogram names passed to MetricsRegistry must come
/// from this header (enforced by the cackle-metric-name lint check). A name
/// that exists only as an inline string literal can typo-split into two
/// counters — "engine.tasks_retried" written, "engine.task_retried" read —
/// and nothing would notice; routing both the writer and every reader
/// through one constant makes that impossible.
///
/// Conventions:
///  - kPrefix* are export prefixes ("engine", "vm_fleet"); components whose
///    ExportMetrics takes a prefix append a kSuffix* constant (which carries
///    its leading dot) to form the full name.
///  - Full-name constants are spelled out for metrics registered under a
///    fixed name.
///  - Readers of prefixed metrics compose the same constants via
///    JoinMetricName rather than re-spelling the dotted string.
namespace metric_names {

// ---------------------------------------------------------------- prefixes
inline constexpr char kPrefixEngine[] = "engine";
inline constexpr char kPrefixVmFleet[] = "vm_fleet";
inline constexpr char kPrefixElasticPool[] = "elastic_pool";
inline constexpr char kPrefixObjectStore[] = "object_store";
inline constexpr char kPrefixShuffle[] = "shuffle";
inline constexpr char kPrefixExecPool[] = "exec.pool";

// ------------------------------------------------------------ engine.* names
inline constexpr char kEngineTasksOnVms[] = "engine.tasks_on_vms";
inline constexpr char kEngineTasksOnElastic[] = "engine.tasks_on_elastic";
inline constexpr char kEngineTasksRetried[] = "engine.tasks_retried";
inline constexpr char kEngineTasksSpeculated[] = "engine.tasks_speculated";
inline constexpr char kEngineBatchTasksDelayed[] = "engine.batch_tasks_delayed";
inline constexpr char kEngineBatchTasksEscalated[] =
    "engine.batch_tasks_escalated";
inline constexpr char kEngineElasticFailures[] = "engine.elastic_failures";
inline constexpr char kEngineStagesReexecuted[] = "engine.stages_reexecuted";
inline constexpr char kEngineShufflePartitionsLost[] =
    "engine.shuffle_partitions_lost";
inline constexpr char kEngineQueriesCompleted[] = "engine.queries_completed";
inline constexpr char kEngineQueryLatencyS[] = "engine.query_latency_s";
inline constexpr char kEngineBatchLatencyS[] = "engine.batch_latency_s";
inline constexpr char kEngineMakespanMs[] = "engine.makespan_ms";
inline constexpr char kEnginePeakConcurrentTasks[] =
    "engine.peak_concurrent_tasks";
inline constexpr char kEngineShedQueries[] = "engine.shed_queries";
inline constexpr char kEngineDeferredQueries[] = "engine.deferred_queries";
inline constexpr char kEngineAdmissionQueuePeak[] =
    "engine.admission_queue_peak";
inline constexpr char kEngineRetryBudgetExhausted[] =
    "engine.retry_budget_exhausted";
inline constexpr char kEngineHedgedReads[] = "engine.hedged_reads";
inline constexpr char kEngineHedgedWins[] = "engine.hedged_wins";
inline constexpr char kEngineStormReclaims[] = "engine.storm_reclaims";
// Multi-tenant scheduling counters (all zero / 1 in single-tenant runs).
inline constexpr char kEngineTenantCount[] = "engine.tenant.count";
inline constexpr char kEngineTenantDrrRounds[] = "engine.tenant.drr_rounds";
inline constexpr char kEngineTenantCapDeferrals[] =
    "engine.tenant.cap_deferrals";
inline constexpr char kEngineTenantQueuePeak[] = "engine.tenant.queue_peak";

// --------------------------------------------------------------- sim.* names
// Simulation-kernel counters exported at the end of every engine run. These
// describe scheduler internals (not workload outcomes), so they may differ
// between the kBinaryHeap and kCalendarQueue backends even though the
// workload results are bit-identical.
inline constexpr char kSimEventsScheduled[] = "sim.events_scheduled";
inline constexpr char kSimEventsExecuted[] = "sim.events_executed";
inline constexpr char kSimEventsCancelled[] = "sim.events_cancelled";
inline constexpr char kSimCompactions[] = "sim.compactions";
inline constexpr char kSimTombstonesPurged[] = "sim.tombstones_purged";
inline constexpr char kSimCalendarResizes[] = "sim.calendar.resizes";
inline constexpr char kSimOverflowMigrations[] =
    "sim.calendar.overflow_migrations";
inline constexpr char kSimPeakQueueEntries[] = "sim.peak_queue_entries";

// ------------------------------------------------------------- chaos.* names
// Gauges describing the precomputed fault-process timeline of a run; only
// registered when a chaos timeline is configured.
inline constexpr char kChaosOutageWindows[] = "chaos.outage_windows";
inline constexpr char kChaosOutageMs[] = "chaos.outage_ms";
inline constexpr char kChaosStormWindows[] = "chaos.storm_windows";
inline constexpr char kChaosStormMs[] = "chaos.storm_ms";
inline constexpr char kChaosBrownoutWindows[] = "chaos.brownout_windows";
inline constexpr char kChaosBrownoutMs[] = "chaos.brownout_ms";
inline constexpr char kChaosPriceShockWindows[] = "chaos.price_shock_windows";
inline constexpr char kChaosPriceShockMs[] = "chaos.price_shock_ms";

// ---------------------------------------------------------- strategy.* names
inline constexpr char kStrategyUpdates[] = "strategy.updates";
inline constexpr char kStrategyExpertSwitches[] = "strategy.expert_switches";
inline constexpr char kStrategyChosenExpert[] = "strategy.chosen_expert";
inline constexpr char kStrategyChosenProbability[] =
    "strategy.chosen_probability";
inline constexpr char kStrategyTarget[] = "strategy.target";

// -------------------------------------------------------------- exec.* names
inline constexpr char kExecFlatTableBuilds[] = "exec.flat_table.builds";
inline constexpr char kExecFlatTableResizes[] = "exec.flat_table.resizes";
inline constexpr char kExecKeysPacked[] = "exec.keys.packed";
inline constexpr char kExecKeysFallback[] = "exec.keys.fallback";
inline constexpr char kExecDictColumnsEncoded[] = "exec.dict.columns_encoded";
inline constexpr char kExecDictEncodesAbandoned[] =
    "exec.dict.encodes_abandoned";
inline constexpr char kExecDictTotalEntries[] = "exec.dict.total_entries";
inline constexpr char kExecGatherRows[] = "exec.gather.rows";
inline constexpr char kExecFilterSelectionVectors[] =
    "exec.filter.selection_vectors";
inline constexpr char kExecFilterDictPredicates[] =
    "exec.filter.dict_predicates";
// Intra-operator parallelism counters (morsel scheduling, radix-partitioned
// join builds, bloom pushdown). The exec.morsel.* / exec.radix.* /
// exec.bloom.* prefixes are reserved to this header by the
// cackle-metric-prefix lint check.
inline constexpr char kExecMorselTasks[] = "exec.morsel.tasks";
inline constexpr char kExecMorselOperators[] = "exec.morsel.operators";
inline constexpr char kExecRadixJoins[] = "exec.radix.joins";
inline constexpr char kExecRadixPartitions[] = "exec.radix.partitions";
inline constexpr char kExecRadixMaxPartitionRows[] =
    "exec.radix.max_partition_rows";
inline constexpr char kExecBloomBuilds[] = "exec.bloom.builds";
inline constexpr char kExecBloomProbes[] = "exec.bloom.probes";
inline constexpr char kExecBloomHits[] = "exec.bloom.hits";
inline constexpr char kExecBloomFalsePositives[] =
    "exec.bloom.false_positives";

// ------------------------------------------- PlanExecutor suffixes (+prefix)
inline constexpr char kSuffixPlansRun[] = ".plans_run";
inline constexpr char kSuffixStagesRun[] = ".stages_run";

// --------------------------------------------- ThreadPool suffixes (+prefix)
inline constexpr char kSuffixWorkers[] = ".workers";
inline constexpr char kSuffixTasksSubmitted[] = ".tasks_submitted";
inline constexpr char kSuffixTasksRun[] = ".tasks_run";
inline constexpr char kSuffixSteals[] = ".steals";
inline constexpr char kSuffixTasksStolen[] = ".tasks_stolen";
inline constexpr char kSuffixHelperRuns[] = ".helper_runs";
inline constexpr char kSuffixBusyMicros[] = ".busy_micros";
inline constexpr char kSuffixMaxQueueDepth[] = ".max_queue_depth";

// ------------------------------------------- ShuffleLayer suffixes (+prefix)
inline constexpr char kSuffixWrittenBytes[] = ".written_bytes";
inline constexpr char kSuffixFallbackBytes[] = ".fallback_bytes";
inline constexpr char kSuffixNodesCrashed[] = ".nodes_crashed";
inline constexpr char kSuffixPartitionsLost[] = ".partitions_lost";
inline constexpr char kSuffixUnmatchedReads[] = ".unmatched_reads";
inline constexpr char kSuffixResidentBytes[] = ".resident_bytes";
inline constexpr char kSuffixFleet[] = ".fleet";

// -------------------------------------------- ElasticPool suffixes (+prefix)
inline constexpr char kSuffixInvocations[] = ".invocations";
inline constexpr char kSuffixThrottled[] = ".throttled";
inline constexpr char kSuffixTenantThrottled[] = ".tenant_throttled";
inline constexpr char kSuffixBilledMs[] = ".billed_ms";
inline constexpr char kSuffixPeakActive[] = ".peak_active";

// ------------------------------------------------ VmFleet suffixes (+prefix)
inline constexpr char kSuffixVmsStarted[] = ".vms_started";
inline constexpr char kSuffixVmsTerminated[] = ".vms_terminated";
inline constexpr char kSuffixVmsInterrupted[] = ".vms_interrupted";
inline constexpr char kSuffixLaunchFailures[] = ".launch_failures";
inline constexpr char kSuffixRuntimeMs[] = ".runtime_ms";
inline constexpr char kSuffixTarget[] = ".target";
inline constexpr char kSuffixReady[] = ".ready";
inline constexpr char kSuffixReserved[] = ".reserved";
inline constexpr char kSuffixReservationDenials[] = ".reservation_denials";

// -------------------------------------------- ObjectStore suffixes (+prefix)
inline constexpr char kSuffixPuts[] = ".puts";
inline constexpr char kSuffixGets[] = ".gets";
inline constexpr char kSuffixRetries[] = ".retries";
inline constexpr char kSuffixObjects[] = ".objects";
inline constexpr char kSuffixBytesStored[] = ".bytes_stored";
inline constexpr char kSuffixPeakBytesStored[] = ".peak_bytes_stored";
inline constexpr char kSuffixCircuitOpen[] = ".circuit_open";
inline constexpr char kSuffixCircuitRejections[] = ".circuit_rejections";
inline constexpr char kSuffixCircuitHalfOpens[] = ".circuit_half_opens";

}  // namespace metric_names

/// \brief Composes "prefix" + ".suffix" from registry constants so readers
/// and writers of a prefixed metric share the exact same tokens.
inline std::string JoinMetricName(const char* prefix, const char* suffix) {
  std::string name(prefix);
  name += suffix;
  return name;
}

}  // namespace cackle

#endif  // CACKLE_COMMON_METRIC_NAMES_H_
