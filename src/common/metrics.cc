#include "common/metrics.h"

#include "common/json_writer.h"

namespace cackle {

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

int64_t MetricsRegistry::CounterValue(const std::string& name,
                                      int64_t fallback) const {
  const Counter* c = FindCounter(name);
  return c == nullptr ? fallback : c->value();
}

void MetricsRegistry::WriteJson(JsonWriter& json) const {
  json.BeginObject();
  json.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    json.Field(name, counter->value());
  }
  json.EndObject();
  json.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    json.Field(name, gauge->value());
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    const SampleSet& s = histogram->samples();
    json.Key(name).BeginObject();
    json.Field("count", static_cast<int64_t>(s.size()));
    json.Field("mean", s.Mean());
    json.Field("min", s.Min());
    json.Field("max", s.Max());
    json.Field("p50", s.Percentile(50));
    json.Field("p90", s.Percentile(90));
    json.Field("p99", s.Percentile(99));
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
}

}  // namespace cackle
