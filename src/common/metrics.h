#ifndef CACKLE_COMMON_METRICS_H_
#define CACKLE_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/stats.h"
#include "common/thread_annotations.h"

namespace cackle {

class JsonWriter;

/// \brief A monotonically growing event count.
class Counter {
 public:
  void Increment(int64_t delta = 1) { value_ += delta; }
  void Set(int64_t value) { value_ = value; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

/// \brief A point-in-time value (last write wins).
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  void Max(double value) { value_ = value_ > value ? value_ : value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// \brief A distribution of observations backed by SampleSet, so the full
/// percentile/CDF machinery used for the paper's latency figures applies to
/// any registered metric.
class Histogram {
 public:
  void Observe(double value) { samples_.Add(value); }
  const SampleSet& samples() const { return samples_; }

 private:
  SampleSet samples_;
};

/// \brief A named registry of counters, gauges, and histograms.
///
/// This is the spine of the observability layer: the engine and the cloud
/// substrate register their event counts here instead of growing one-off
/// struct fields, and the JSON snapshot exporter walks the registry to emit
/// machine-readable bench artifacts. Names are hierarchical by convention
/// ("engine.tasks_on_vms", "vm_fleet.launch_failures").
///
/// Determinism: the registry is pure bookkeeping — it never consumes
/// randomness or schedules simulation events, so recording (or not
/// recording) metrics cannot perturb an engine run. Iteration order is the
/// lexicographic name order (std::map), so exports are deterministic.
/// Handles returned by Counter()/Gauge()/Histogram() are stable for the
/// registry's lifetime (hot paths cache the pointer).
class CACKLE_THREAD_CONFINED(
    "one registry per Simulation/sweep cell; the multithreaded executor "
    "records into the separate atomic ExecKernelMetrics instead")
MetricsRegistry {
 public:
  class Counter* GetCounter(const std::string& name);
  class Gauge* GetGauge(const std::string& name);
  class Histogram* GetHistogram(const std::string& name);

  /// Convenience one-shot writers.
  void AddCounter(const std::string& name, int64_t delta) {
    GetCounter(name)->Increment(delta);
  }
  void SetCounter(const std::string& name, int64_t value) {
    GetCounter(name)->Set(value);
  }
  void SetGauge(const std::string& name, double value) {
    GetGauge(name)->Set(value);
  }
  void Observe(const std::string& name, double value) {
    GetHistogram(name)->Observe(value);
  }

  /// Lookup without creation; nullptr when absent.
  const class Counter* FindCounter(const std::string& name) const;
  const class Gauge* FindGauge(const std::string& name) const;
  const class Histogram* FindHistogram(const std::string& name) const;

  /// Value of a counter, or `fallback` when the counter was never touched.
  int64_t CounterValue(const std::string& name, int64_t fallback = 0) const;

  const std::map<std::string, std::unique_ptr<class Counter>>& counters()
      const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<class Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<class Histogram>>& histograms()
      const {
    return histograms_;
  }

  /// Emits {"counters": {...}, "gauges": {...}, "histograms": {...}} with
  /// histograms summarized as count/mean/min/max/p50/p90/p99.
  void WriteJson(JsonWriter& json) const;

 private:
  std::map<std::string, std::unique_ptr<class Counter>> counters_;
  std::map<std::string, std::unique_ptr<class Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<class Histogram>> histograms_;
};

}  // namespace cackle

#endif  // CACKLE_COMMON_METRICS_H_
