#include "common/observability.h"

#include <sstream>

#include "common/json_writer.h"

namespace cackle {

void WriteSnapshotJson(const Observability& obs, std::string_view name,
                       std::ostream& os, size_t max_spans) {
  JsonWriter json(os);
  json.BeginObject();
  json.Field("name", name);
  json.Field("schema_version", static_cast<int64_t>(1));
  json.Key("metrics");
  obs.metrics.WriteJson(json);
  json.Key("cost_attribution");
  obs.ledger.WriteJson(json);
  json.Field("num_spans", static_cast<int64_t>(obs.tracer.size()));
  json.Field("spans_truncated",
             max_spans != 0 && obs.tracer.size() > max_spans);
  json.Key("spans");
  obs.tracer.WriteJson(json, max_spans);
  json.EndObject();
}

std::string SnapshotJson(const Observability& obs, std::string_view name,
                         size_t max_spans) {
  std::ostringstream os;
  WriteSnapshotJson(obs, name, os, max_spans);
  return os.str();
}

}  // namespace cackle
