#ifndef CACKLE_COMMON_OBSERVABILITY_H_
#define CACKLE_COMMON_OBSERVABILITY_H_

#include <ostream>
#include <string>
#include <string_view>

#include "common/cost_ledger.h"
#include "common/metrics.h"
#include "common/tracer.h"

namespace cackle {

/// \brief The observability sink: metrics + per-query trace + cost ledger.
///
/// Callers (tests, bench binaries) construct one and hand it to the engine
/// via EngineOptions::observability. The engine treats a null pointer as
/// "recording disabled" — the zero-cost guard mirroring the fault
/// injector's contract: a run without a sink is bit-identical to a run
/// that never had the instrumentation, and a run *with* a sink is also
/// bit-identical, because every sink is pure bookkeeping (no randomness,
/// no scheduled events).
struct Observability {
  Observability() : tracer(/*enabled=*/true) {}

  MetricsRegistry metrics;
  Tracer tracer;
  CostLedger ledger;
};

/// \brief Serializes a full observability snapshot as one JSON document:
///
///   {"name": ..., "schema_version": 1,
///    "metrics": {...}, "cost_attribution": {...},
///    "spans": [...], "num_spans": N, "spans_truncated": bool}
///
/// `max_spans` caps the exported span array (0 = all); the true count is
/// always reported so truncation is visible. Output is byte-deterministic
/// for identical recorded state (EXPERIMENTS.md documents the schema).
void WriteSnapshotJson(const Observability& obs, std::string_view name,
                       std::ostream& os, size_t max_spans = 0);

/// Convenience: snapshot to a string (the determinism tests compare these).
std::string SnapshotJson(const Observability& obs, std::string_view name,
                         size_t max_spans = 0);

}  // namespace cackle

#endif  // CACKLE_COMMON_OBSERVABILITY_H_
