#include "common/retry_policy.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cackle {

RetryPolicy::RetryPolicy(RetryPolicyOptions options, Rng* rng)
    : options_(options), rng_(rng) {
  CACKLE_CHECK_GE(options_.max_attempts, 0);
  CACKLE_CHECK_GT(options_.initial_backoff_ms, 0);
  CACKLE_CHECK_GE(options_.multiplier, 1.0);
  CACKLE_CHECK_GE(options_.max_backoff_ms, options_.initial_backoff_ms);
  CACKLE_CHECK_GE(options_.jitter, 0.0);
  CACKLE_CHECK_LT(options_.jitter, 1.0);
  CACKLE_CHECK_GE(options_.deadline_ms, 0);
  CACKLE_CHECK_GE(options_.max_elapsed_ms, 0);
}

int64_t RetryPolicy::BackoffMs(int attempt) {
  CACKLE_CHECK_GE(attempt, 1);
  double backoff = static_cast<double>(options_.initial_backoff_ms) *
                   std::pow(options_.multiplier, attempt - 1);
  backoff = std::min(backoff, static_cast<double>(options_.max_backoff_ms));
  if (rng_ != nullptr && options_.jitter > 0.0) {
    backoff *= rng_->NextDouble(1.0 - options_.jitter, 1.0 + options_.jitter);
    // The cap is a hard bound, not a pre-jitter nominal value: positive
    // jitter must never push a backoff past max_backoff_ms.
    backoff = std::min(backoff, static_cast<double>(options_.max_backoff_ms));
  }
  return std::max<int64_t>(1, static_cast<int64_t>(backoff));
}

bool RetryPolicy::ShouldRetry(int attempt, int64_t elapsed_ms) const {
  if (options_.max_attempts > 0 && attempt >= options_.max_attempts) {
    return false;
  }
  if (options_.deadline_ms > 0 && elapsed_ms >= options_.deadline_ms) {
    return false;
  }
  if (options_.max_elapsed_ms > 0 && elapsed_ms >= options_.max_elapsed_ms) {
    return false;
  }
  return true;
}

Status RetryPolicy::Execute(const std::function<Status()>& op,
                            int* attempts_out) {
  int attempt = 0;
  int64_t elapsed_ms = 0;
  Status status;
  do {
    ++attempt;
    status = op();
    if (status.ok()) break;
    elapsed_ms += BackoffMs(attempt);
  } while (ShouldRetry(attempt, elapsed_ms));
  if (attempts_out != nullptr) *attempts_out = attempt;
  return status;
}

}  // namespace cackle
