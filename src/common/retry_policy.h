#ifndef CACKLE_COMMON_RETRY_POLICY_H_
#define CACKLE_COMMON_RETRY_POLICY_H_

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "common/status.h"

namespace cackle {

/// \brief Tunables of a retry loop: capped exponential backoff with
/// deterministic jitter, bounded attempts, and an overall deadline.
struct RetryPolicyOptions {
  /// Total attempts allowed (first try included); 0 = unlimited.
  int max_attempts = 5;
  /// Backoff before the second attempt; doubles (times `multiplier`) after
  /// each further failure, capped at `max_backoff_ms`.
  int64_t initial_backoff_ms = 100;
  double multiplier = 2.0;
  int64_t max_backoff_ms = 10'000;
  /// Uniform jitter of +/- this fraction applied to each backoff, drawn
  /// from the policy's Rng so sequences are reproducible. 0 disables.
  double jitter = 0.25;
  /// Overall budget across all backoffs; 0 = none. Once the cumulative
  /// backoff would exceed the deadline, the operation is abandoned.
  int64_t deadline_ms = 0;
  /// Cumulative max-elapsed budget; 0 = none. Unlike `deadline_ms`, which
  /// only counts the policy's own backoffs, this caps whatever elapsed time
  /// the caller reports to `ShouldRetry` — wall time in simulation for the
  /// engine's elastic placement loop, so an operation stuck behind a
  /// throttle eventually yields instead of backing off forever.
  int64_t max_elapsed_ms = 0;
};

/// \brief Reusable retry/backoff engine returning Status.
///
/// Two usage modes:
///  - `BackoffMs(attempt)` + `ShouldRetry(...)` for callers that own their
///    own clock (the engine schedules backoffs in simulated time).
///  - `Execute(op)` for services with no modelled latency (the simulated
///    object store): retries synchronously, accounting backoff as virtual
///    elapsed time against the deadline.
///
/// A null Rng (or zero jitter) makes the policy consume no randomness, so a
/// fault-free configuration stays bit-identical with or without it.
class RetryPolicy {
 public:
  explicit RetryPolicy(RetryPolicyOptions options, Rng* rng = nullptr);

  const RetryPolicyOptions& options() const { return options_; }

  /// Backoff to wait after the `attempt`-th failure (1-based), jittered.
  int64_t BackoffMs(int attempt);

  /// Whether a further attempt is allowed after `attempt` failures with
  /// `elapsed_ms` already spent waiting.
  bool ShouldRetry(int attempt, int64_t elapsed_ms) const;

  /// Runs `op` until it returns OK, attempts run out, or the deadline is
  /// exceeded; returns the final status. `attempts_out` (optional) receives
  /// the number of attempts made.
  [[nodiscard]] Status Execute(const std::function<Status()>& op,
                 int* attempts_out = nullptr);

 private:
  RetryPolicyOptions options_;
  Rng* rng_;
};

}  // namespace cackle

#endif  // CACKLE_COMMON_RETRY_POLICY_H_
