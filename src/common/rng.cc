#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace cackle {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  CACKLE_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  CACKLE_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_gaussian_spare_) {
    has_gaussian_spare_ = false;
    return gaussian_spare_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  gaussian_spare_ = radius * std::sin(theta);
  has_gaussian_spare_ = true;
  return radius * std::cos(theta);
}

double Rng::NextExponential(double rate) {
  CACKLE_CHECK_GT(rate, 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace cackle
