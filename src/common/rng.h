#ifndef CACKLE_COMMON_RNG_H_
#define CACKLE_COMMON_RNG_H_

#include <cstdint>

namespace cackle {

/// \brief Deterministic pseudo-random number generator (xoshiro256++).
///
/// Every source of randomness in the library is an explicitly seeded Rng so
/// that experiments and tests are reproducible bit-for-bit. The generator is
/// not cryptographically secure and is not thread-safe; use one instance per
/// logical stream.
class Rng {
 public:
  /// Seeds the generator via splitmix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next 64 uniformly random bits.
  uint64_t NextUint64();

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  /// Uses rejection sampling so the result is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns a uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Returns a sample from the standard normal distribution (Box-Muller).
  double NextGaussian();

  /// Returns a sample from Exp(rate); rate must be > 0.
  double NextExponential(double rate);

  /// Forks an independent generator whose seed derives from this one's
  /// stream; useful for giving each sub-component its own stream.
  Rng Fork();

  /// Derives the seed of a named sub-stream from a base seed. This (plus
  /// Fork() and SweepRunner::CellSeed) is the only sanctioned way to mint
  /// stream seeds: ad-hoc `seed ^ 0x...` arithmetic at call sites is banned
  /// by the cackle-rng-stream lint check, so every derivation names its tag
  /// constant and the full stream map stays greppable and collision-
  /// reviewable. The fold is a plain XOR — deliberately, so migrating a
  /// call site from `seed ^ kTag` to `StreamSeed(seed, kTag)` is
  /// bit-identical.
  static constexpr uint64_t StreamSeed(uint64_t base_seed,
                                       uint64_t stream_tag) {
    return base_seed ^ stream_tag;
  }

  /// Constructs the generator for a named sub-stream directly.
  static Rng Stream(uint64_t base_seed, uint64_t stream_tag) {
    return Rng(StreamSeed(base_seed, stream_tag));
  }

 private:
  uint64_t state_[4];
  // Cached second Box-Muller variate.
  double gaussian_spare_ = 0.0;
  bool has_gaussian_spare_ = false;
};

}  // namespace cackle

#endif  // CACKLE_COMMON_RNG_H_
