#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cackle {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  // Catastrophic cancellation can drive m2_ a hair below zero for
  // near-constant inputs; clamping keeps stddev() NaN-free.
  return std::max(0.0, m2_) / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double PercentileSorted(const std::vector<double>& sorted, double p) {
  // Validate p before the empty-input early-out so an out-of-range (or NaN)
  // percentile is caught regardless of the data; NaN fails both comparisons.
  CACKLE_CHECK(p >= 0.0 && p <= 100.0) << "percentile out of range: " << p;
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  return PercentileSorted(values, p);
}

void SampleSet::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::Percentile(double p) const {
  EnsureSorted();
  return PercentileSorted(samples_, p);
}

double SampleSet::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::Min() const {
  EnsureSorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double SampleSet::Max() const {
  EnsureSorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

std::vector<std::pair<double, double>> SampleSet::Cdf(int points) const {
  EnsureSorted();
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points <= 0) return out;
  out.reserve(static_cast<size_t>(points));
  for (int i = 1; i <= points; ++i) {
    const double frac = static_cast<double>(i) / points;
    const double value = PercentileSorted(samples_, frac * 100.0);
    out.emplace_back(value, frac);
  }
  return out;
}

LinearFit FitLine(const std::vector<double>& xs,
                  const std::vector<double>& ys) {
  CACKLE_CHECK_EQ(xs.size(), ys.size());
  LinearFit fit;
  const size_t n = xs.size();
  if (n == 0) return fit;
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_x += xs[i];
    mean_y += ys[i];
  }
  mean_x /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);
  double cov = 0.0;
  double var_x = 0.0;
  for (size_t i = 0; i < n; ++i) {
    cov += (xs[i] - mean_x) * (ys[i] - mean_y);
    var_x += (xs[i] - mean_x) * (xs[i] - mean_x);
  }
  if (var_x <= 0.0) {
    fit.slope = 0.0;
    fit.intercept = mean_y;
  } else {
    fit.slope = cov / var_x;
    fit.intercept = mean_y - fit.slope * mean_x;
  }
  return fit;
}

}  // namespace cackle
