#ifndef CACKLE_COMMON_STATS_H_
#define CACKLE_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cackle {

/// \brief Streaming summary statistics (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  /// Clamped at 0 so stddev() never returns NaN from rounding residue.
  double variance() const;
  double stddev() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// \brief Returns the p-th percentile (p in [0, 100]) of `values` using
/// linear interpolation between closest ranks. `values` need not be sorted;
/// a sorted copy is made. Returns 0 for an empty input. An out-of-range or
/// NaN `p` aborts (even on empty input); for finite samples the result is
/// NaN-free, with p=0 / p=100 returning the exact min / max.
double Percentile(std::vector<double> values, double p);

/// \brief Percentile for data that is already sorted ascending (no copy).
double PercentileSorted(const std::vector<double>& sorted, double p);

/// \brief Collects samples and extracts percentiles / CDF points.
///
/// Used for query latency distributions (Figure 1's CDF, Figure 14's p90).
class SampleSet {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void Reserve(size_t n) { samples_.reserve(n); }

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// p in [0, 100].
  double Percentile(double p) const;
  double Mean() const;
  double Min() const;
  double Max() const;

  /// Returns `points` (value, cumulative_fraction) pairs evenly spaced in
  /// rank, suitable for plotting a CDF.
  std::vector<std::pair<double, double>> Cdf(int points) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  // Sorting is a cache refresh, not an observable mutation.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// \brief Simple ordinary least squares fit y = slope * x + intercept.
///
/// Used by the predictive provisioning strategy (Section 5.1 of the paper):
/// a linear regression over the recent demand history extrapolated to the
/// VM startup horizon. Returns {slope, intercept}; a single point or
/// degenerate x yields slope 0.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;

  double At(double x) const { return slope * x + intercept; }
};
LinearFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace cackle

#endif  // CACKLE_COMMON_STATS_H_
