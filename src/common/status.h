#ifndef CACKLE_COMMON_STATUS_H_
#define CACKLE_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace cackle {

/// \brief Error codes used across the library.
///
/// Cackle follows the RocksDB / Arrow idiom: fallible operations return a
/// Status (or StatusOr<T>) instead of throwing. Exceptions are not used on
/// library paths.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kInternal = 7,
  kUnimplemented = 8,
  kIoError = 9,
};

/// \brief Returns a human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief A lightweight success-or-error value.
///
/// The OK status carries no allocation; error statuses carry a code and a
/// message. Status is cheap to copy and move.
///
/// The class is [[nodiscard]]: ignoring a returned Status is a compile error
/// (-Werror=unused-result), which is what makes the Status-returning idiom
/// trustworthy — a dropped error cannot silently disappear. Intentionally
/// discarded results must be spelled `(void)expr;` with a comment, or routed
/// through a logging helper.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Early-return helper: propagates a non-OK Status to the caller.
#define CACKLE_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::cackle::Status _cackle_status = (expr);       \
    if (!_cackle_status.ok()) return _cackle_status; \
  } while (false)

/// \brief A value or an error Status.
///
/// Accessing the value of an errored StatusOr aborts the process (programming
/// error); check ok() or status() first on fallible paths.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from an error status. Must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT
  /// Constructs from a value; status is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return value_;
  }
  T& value() & {
    AbortIfError();
    return value_;
  }
  T&& value() && {
    AbortIfError();
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  Status status_;
  T value_{};
};

namespace internal {
[[noreturn]] void AbortWithStatus(const Status& status);
}  // namespace internal

template <typename T>
void StatusOr<T>::AbortIfError() const {
  if (!status_.ok()) internal::AbortWithStatus(status_);
}

/// \brief Early-return helper for StatusOr: assigns the value or propagates
/// the error. The temporary's name embeds the line number so multiple uses
/// can share a scope.
#define CACKLE_STATUS_CONCAT_INNER_(a, b) a##b
#define CACKLE_STATUS_CONCAT_(a, b) CACKLE_STATUS_CONCAT_INNER_(a, b)
#define CACKLE_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                                  \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(var).value()
#define CACKLE_ASSIGN_OR_RETURN(lhs, expr)                                  \
  CACKLE_ASSIGN_OR_RETURN_IMPL_(                                            \
      CACKLE_STATUS_CONCAT_(_cackle_statusor_, __LINE__), lhs, expr)

}  // namespace cackle

#endif  // CACKLE_COMMON_STATUS_H_
