#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/logging.h"

namespace cackle {

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::BeginRow() { rows_.emplace_back(); }

void TablePrinter::AddCell(std::string value) {
  CACKLE_CHECK(!rows_.empty()) << "BeginRow() before AddCell()";
  CACKLE_CHECK_LT(rows_.back().size(), headers_.size());
  rows_.back().push_back(std::move(value));
}

void TablePrinter::AddCell(const char* value) { AddCell(std::string(value)); }
void TablePrinter::AddCell(int64_t value) { AddCell(std::to_string(value)); }
void TablePrinter::AddCell(uint64_t value) { AddCell(std::to_string(value)); }
void TablePrinter::AddCell(int value) { AddCell(std::to_string(value)); }
void TablePrinter::AddCell(double value, int decimals) {
  AddCell(FormatDouble(value, decimals));
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  CACKLE_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::PrintText(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << cell;
      if (c + 1 < headers_.size()) {
        os << std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    os << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ",";
      os << escape(cells[c]);
    }
    os << "\n";
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace cackle
