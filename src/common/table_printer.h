#ifndef CACKLE_COMMON_TABLE_PRINTER_H_
#define CACKLE_COMMON_TABLE_PRINTER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace cackle {

/// \brief Accumulates rows of a result table and renders it either as
/// aligned human-readable text or as CSV.
///
/// Every bench binary regenerating one of the paper's tables/figures prints
/// its series through this class, so output is uniform and machine-parsable.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Starts a new row. Subsequent Add* calls fill its cells left to right.
  void BeginRow();
  void AddCell(std::string value);
  void AddCell(const char* value);
  void AddCell(int64_t value);
  void AddCell(uint64_t value);
  void AddCell(int value);
  /// `decimals` controls fixed-point formatting.
  void AddCell(double value, int decimals = 4);

  /// Convenience: adds an entire row at once.
  void AddRow(std::vector<std::string> cells);

  size_t num_rows() const { return rows_.size(); }

  /// Renders aligned text with a header rule.
  void PrintText(std::ostream& os) const;
  /// Renders RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Formats `value` with fixed `decimals` digits.
std::string FormatDouble(double value, int decimals);

}  // namespace cackle

#endif  // CACKLE_COMMON_TABLE_PRINTER_H_
