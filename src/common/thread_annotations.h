#ifndef CACKLE_COMMON_THREAD_ANNOTATIONS_H_
#define CACKLE_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

/// \file
/// Clang thread-safety annotations (-Wthread-safety) for every
/// lock-protected structure in the tree, plus the annotated `Mutex` /
/// `MutexLock` / `CondVar` wrappers they require.
///
/// The repo's headline invariant — bit-identical results at any thread
/// count, under either scheduler — depends on parallel code touching shared
/// state only under the locks the comments claim. These macros turn those
/// comments into compile-time proofs: with a Clang toolchain every build
/// configuration compiles with `-Wthread-safety -Werror=thread-safety`
/// (see the top-level CMakeLists), so an unguarded access to a
/// `CACKLE_GUARDED_BY` member is a build failure, not a latent race for
/// TSan to hopefully tickle. Under GCC (no thread-safety analysis) the
/// macros expand to nothing and the wrappers are zero-cost shims over the
/// std primitives.
///
/// Conventions (enforced by the `cackle-lock-annotation` lint check):
///  - every `std::mutex` / `Mutex` member must guard something: at least
///    one sibling member carries `CACKLE_GUARDED_BY(that_mutex)`, or the
///    mutex carries a justified `NOLINT(cackle-lock-annotation)` (the only
///    accepted justification is a pure condition-variable handshake mutex
///    that orders atomics, guarding no plain data);
///  - classes that are deliberately lock-free because each instance is
///    confined to one thread (one Simulation, one sweep cell) say so with
///    `CACKLE_THREAD_CONFINED("why")` at the class head, so a reader — or a
///    future reviewer adding cross-thread sharing — knows the absence of
///    locks is a contract, not an oversight.

// Raw attribute spelling, active only under Clang's analysis.
#if defined(__clang__) && !defined(SWIG)
#define CACKLE_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define CACKLE_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside Clang
#endif

/// Declares a type to be a capability (lockable). Used on `Mutex`.
#define CACKLE_CAPABILITY(x) \
  CACKLE_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII type that acquires a capability at construction and
/// releases it at destruction. Used on `MutexLock`.
#define CACKLE_SCOPED_CAPABILITY \
  CACKLE_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// A data member readable/writable only while holding `x`.
#define CACKLE_GUARDED_BY(x) \
  CACKLE_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// A pointer member whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define CACKLE_PT_GUARDED_BY(x) \
  CACKLE_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// The function may only be called while holding all listed capabilities
/// exclusively (it neither acquires nor releases them).
#define CACKLE_REQUIRES(...) \
  CACKLE_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Shared (reader) variant of CACKLE_REQUIRES.
#define CACKLE_REQUIRES_SHARED(...) \
  CACKLE_THREAD_ANNOTATION_ATTRIBUTE__( \
      requires_shared_capability(__VA_ARGS__))

/// The function acquires the listed capabilities and holds them on return.
#define CACKLE_ACQUIRE(...) \
  CACKLE_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define CACKLE_ACQUIRE_SHARED(...) \
  CACKLE_THREAD_ANNOTATION_ATTRIBUTE__( \
      acquire_shared_capability(__VA_ARGS__))

/// The function releases the listed capabilities (which must be held).
#define CACKLE_RELEASE(...) \
  CACKLE_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define CACKLE_RELEASE_SHARED(...) \
  CACKLE_THREAD_ANNOTATION_ATTRIBUTE__( \
      release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `b`.
#define CACKLE_TRY_ACQUIRE(b, ...) \
  CACKLE_THREAD_ANNOTATION_ATTRIBUTE__( \
      try_acquire_capability(b, __VA_ARGS__))

/// The caller must NOT hold the listed capabilities (deadlock guard for
/// functions that acquire them internally).
#define CACKLE_EXCLUDES(...) \
  CACKLE_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Static lock-ordering declarations on mutex members.
#define CACKLE_ACQUIRED_BEFORE(...) \
  CACKLE_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define CACKLE_ACQUIRED_AFTER(...) \
  CACKLE_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// Asserts (at analysis level) that the capability is already held.
#define CACKLE_ASSERT_CAPABILITY(x) \
  CACKLE_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// The function returns a reference to the named capability.
#define CACKLE_RETURN_CAPABILITY(x) \
  CACKLE_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables analysis inside one function. Every use needs a
/// comment explaining why the analysis cannot express the pattern.
#define CACKLE_NO_THREAD_SAFETY_ANALYSIS \
  CACKLE_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

/// Documentation-only marker for classes that are deliberately lock-free
/// because every instance is confined to one thread for its whole life
/// (one Simulation, one sweep cell, one bench driver). Expands to nothing
/// under every compiler; it exists so the thread-confinement claim is
/// explicit, greppable, and reviewed when such a class grows cross-thread
/// callers. Place between `class` and the class name:
///   class CACKLE_THREAD_CONFINED("one registry per Simulation")
///   MetricsRegistry { ... };
#define CACKLE_THREAD_CONFINED(reason)

namespace cackle {

/// \brief An annotated exclusive lock: `std::mutex` made visible to Clang's
/// thread-safety analysis.
///
/// All lock-protected structures in the tree use this wrapper (never a bare
/// `std::mutex`) so their guarded members can carry `CACKLE_GUARDED_BY` and
/// misuse fails the build. Lock it via `MutexLock` (scoped) or
/// `Lock()`/`Unlock()` when the critical section cannot be a lexical scope.
class CACKLE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CACKLE_ACQUIRE() { mu_.lock(); }
  void Unlock() CACKLE_RELEASE() { mu_.unlock(); }
  bool TryLock() CACKLE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief Scoped lock holder for `Mutex` (the annotated analogue of
/// `std::lock_guard`). The analysis sees the capability held for exactly
/// the guard's lexical scope.
class CACKLE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) CACKLE_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() CACKLE_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// \brief Condition variable paired with `Mutex`.
///
/// The wait methods require the mutex held (annotated), adopt it into a
/// `std::unique_lock` for the underlying `std::condition_variable`, and
/// hand it back on return — so a `MutexLock` in the caller's scope stays
/// the single owner the analysis reasons about.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  /// Blocks until `pred()` holds. `pred` runs with `mu` held.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) CACKLE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  /// Blocks until `pred()` holds or `timeout` elapses; returns `pred()`.
  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout,
               Pred pred) CACKLE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_for(lock, timeout, std::move(pred));
    lock.release();
    return satisfied;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace cackle

#endif  // CACKLE_COMMON_THREAD_ANNOTATIONS_H_
