#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/metric_names.h"
#include "common/metrics.h"

namespace cackle {
namespace {

/// Identifies the pool (and queue index) the current thread works for, so
/// submissions from inside a task land on the submitting worker's own deque
/// and cross-pool nesting cannot mis-route.
thread_local const ThreadPool* g_worker_pool = nullptr;
thread_local int g_worker_index = -1;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  CACKLE_CHECK_GE(num_threads, 1);
  queues_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    // Empty critical section: pairs with the predicate check under idle_mu_
    // so no worker can miss the stop signal between check and wait.
    MutexLock lock(&idle_mu_);
  }
  idle_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  CACKLE_CHECK_EQ(queued_.load(std::memory_order_acquire), 0)
      << "thread pool destroyed with queued tasks";
}

void ThreadPool::Submit(Task task) {
  size_t target;
  if (g_worker_pool == this) {
    target = static_cast<size_t>(g_worker_index);
  } else {
    target = static_cast<size_t>(
        next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size());
  }
  int64_t depth;
  {
    WorkerQueue& q = *queues_[target];
    MutexLock lock(&q.mu);
    q.tasks.push_back(std::move(task));
    depth = static_cast<int64_t>(q.tasks.size());
  }
  queued_.fetch_add(1, std::memory_order_release);
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  int64_t seen = max_queue_depth_.load(std::memory_order_relaxed);
  while (depth > seen &&
         !max_queue_depth_.compare_exchange_weak(seen, depth,
                                                 std::memory_order_relaxed)) {
  }
  idle_cv_.NotifyOne();
}

bool ThreadPool::PopOwn(int worker, Task* out) {
  WorkerQueue& q = *queues_[static_cast<size_t>(worker)];
  MutexLock lock(&q.mu);
  if (q.tasks.empty()) return false;
  *out = std::move(q.tasks.back());
  q.tasks.pop_back();
  queued_.fetch_sub(1, std::memory_order_release);
  return true;
}

bool ThreadPool::StealTasks(int thief, Task* out) {
  const size_t n = queues_.size();
  const size_t start = thief >= 0 ? static_cast<size_t>(thief) + 1
                                  : static_cast<size_t>(next_queue_.load(
                                        std::memory_order_relaxed));
  for (size_t v = 0; v < n; ++v) {
    const size_t victim = (start + v) % n;
    if (thief >= 0 && victim == static_cast<size_t>(thief)) continue;
    std::vector<Task> taken;
    {
      WorkerQueue& q = *queues_[victim];
      MutexLock lock(&q.mu);
      const size_t avail = q.tasks.size();
      if (avail == 0) continue;
      // Steal half (at least one), from the front: the oldest work, which
      // the owner — popping LIFO at the back — would reach last.
      const size_t take = thief >= 0 ? (avail + 1) / 2 : 1;
      taken.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        taken.push_back(std::move(q.tasks.front()));
        q.tasks.pop_front();
      }
      queued_.fetch_sub(static_cast<int64_t>(take), std::memory_order_release);
    }
    steals_.fetch_add(1, std::memory_order_relaxed);
    tasks_stolen_.fetch_add(static_cast<int64_t>(taken.size()),
                            std::memory_order_relaxed);
    *out = std::move(taken.front());
    if (taken.size() > 1) {
      // Re-home the rest onto the thief's own deque.
      const size_t home = static_cast<size_t>(thief);
      {
        WorkerQueue& q = *queues_[home];
        MutexLock lock(&q.mu);
        for (size_t i = 1; i < taken.size(); ++i) {
          q.tasks.push_back(std::move(taken[i]));
        }
      }
      queued_.fetch_add(static_cast<int64_t>(taken.size()) - 1,
                        std::memory_order_release);
      idle_cv_.NotifyOne();
    }
    return true;
  }
  return false;
}

void ThreadPool::Execute(Task task, bool helper) {
  const ScopedLogContext ctx(task.group != nullptr ? task.group->context()
                                                   : std::string());
  const auto t0 = std::chrono::steady_clock::now();
  task.fn();
  const int64_t micros = std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  busy_micros_.fetch_add(micros, std::memory_order_relaxed);
  tasks_run_.fetch_add(1, std::memory_order_relaxed);
  if (helper) helper_runs_.fetch_add(1, std::memory_order_relaxed);
  // TaskDone last: it may release a waiter that destroys the group.
  if (task.group != nullptr) task.group->TaskDone();
}

bool ThreadPool::RunOneTask(int worker) {
  Task task;
  if (worker >= 0 && PopOwn(worker, &task)) {
    Execute(std::move(task), /*helper=*/false);
    return true;
  }
  if (StealTasks(worker, &task)) {
    Execute(std::move(task), /*helper=*/worker < 0);
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(int worker) {
  g_worker_pool = this;
  g_worker_index = worker;
  for (;;) {
    if (RunOneTask(worker)) continue;
    MutexLock lock(&idle_mu_);
    // The timeout self-heals the rare window where stolen tasks are being
    // re-homed (invisible to queued_) while every other worker dozes off.
    idle_cv_.WaitFor(idle_mu_, std::chrono::milliseconds(50), [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) <= 0) {
      return;
    }
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.tasks_submitted = tasks_submitted_.load(std::memory_order_relaxed);
  s.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.tasks_stolen = tasks_stolen_.load(std::memory_order_relaxed);
  s.helper_runs = helper_runs_.load(std::memory_order_relaxed);
  s.busy_micros = busy_micros_.load(std::memory_order_relaxed);
  s.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::ExportMetrics(MetricsRegistry* metrics,
                               const std::string& prefix) const {
  namespace mn = metric_names;
  const Stats s = stats();
  metrics->SetCounter(prefix + mn::kSuffixWorkers, num_threads());
  metrics->SetCounter(prefix + mn::kSuffixTasksSubmitted, s.tasks_submitted);
  metrics->SetCounter(prefix + mn::kSuffixTasksRun, s.tasks_run);
  metrics->SetCounter(prefix + mn::kSuffixSteals, s.steals);
  metrics->SetCounter(prefix + mn::kSuffixTasksStolen, s.tasks_stolen);
  metrics->SetCounter(prefix + mn::kSuffixHelperRuns, s.helper_runs);
  metrics->SetCounter(prefix + mn::kSuffixBusyMicros, s.busy_micros);
  metrics->SetCounter(prefix + mn::kSuffixMaxQueueDepth, s.max_queue_depth);
}

TaskGroup::TaskGroup(ThreadPool* pool, std::string context)
    : pool_(pool), context_(std::move(context)) {
  CACKLE_CHECK(pool_ != nullptr);
}

TaskGroup::~TaskGroup() {
  CACKLE_CHECK_EQ(outstanding_.load(std::memory_order_acquire), 0)
      << "task group '" << context_ << "' destroyed with outstanding tasks";
}

void TaskGroup::Submit(std::function<void()> fn) {
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  pool_->Submit(ThreadPool::Task{std::move(fn), this});
}

void TaskGroup::TaskDone() {
  // Decrement under mu_: Wait() only returns after observing zero while
  // holding mu_, which therefore happens-after this critical section — the
  // last touch of the group by any pool thread — so the caller may destroy
  // the group the moment Wait() returns.
  MutexLock lock(&mu_);
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    cv_.NotifyAll();
  }
}

void TaskGroup::Wait() {
  for (;;) {
    // Help drain the pool instead of idling: the waiter acts as one more
    // executor, which also makes nested waits from pool threads safe.
    if (outstanding_.load(std::memory_order_acquire) > 0 &&
        pool_->RunOneTask(g_worker_pool == pool_ ? g_worker_index : -1)) {
      continue;
    }
    MutexLock lock(&mu_);
    if (outstanding_.load(std::memory_order_acquire) == 0) return;
    cv_.WaitFor(mu_, std::chrono::milliseconds(1), [this] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
    if (outstanding_.load(std::memory_order_acquire) == 0) return;
  }
}

}  // namespace cackle
