#ifndef CACKLE_COMMON_THREAD_POOL_H_
#define CACKLE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace cackle {

class MetricsRegistry;
class TaskGroup;

/// \brief A persistent work-stealing thread pool (morsel-style execution
/// substrate for the query executor).
///
/// Each worker owns a deque: the owner pushes and pops at the back (LIFO,
/// cache-friendly for task chains that spawn subtasks), thieves steal half
/// of a victim's queue from the front (FIFO end, the oldest work). Tasks
/// submitted from a pool thread land on that worker's own deque; external
/// submissions are spread round-robin. Idle workers sleep on a condition
/// variable and are woken per submission.
///
/// Tasks are plain closures grouped into TaskGroups; a group's context
/// string is installed as the thread-local log context while its tasks run,
/// so fatal CACKLE_CHECK messages from pooled work identify their origin.
///
/// The pool never aborts tasks and has no notion of priorities or
/// cancellation — callers sequence work by submitting successor tasks from
/// inside predecessors (see PlanExecutor's DAG pipelining).
///
/// Thread safety: all public methods are safe to call from any thread.
class ThreadPool {
 public:
  /// Lifetime totals, readable at any time (values are monotone; a
  /// concurrent snapshot can be mid-update but never torn).
  struct Stats {
    int64_t tasks_submitted = 0;
    int64_t tasks_run = 0;
    /// Steal operations that moved at least one task / tasks moved by them.
    int64_t steals = 0;
    int64_t tasks_stolen = 0;
    /// Tasks executed by threads helping from TaskGroup::Wait.
    int64_t helper_runs = 0;
    /// Summed wall-clock microseconds spent inside task bodies.
    int64_t busy_micros = 0;
    /// Deepest any single worker deque has been.
    int64_t max_queue_depth = 0;
  };

  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(queues_.size()); }

  Stats stats() const;

  /// Exports the lifetime totals as counters under `prefix` (e.g.
  /// "exec.pool" -> exec.pool.tasks_run, exec.pool.steals, ...).
  void ExportMetrics(MetricsRegistry* metrics,
                     const std::string& prefix) const;

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  struct WorkerQueue {
    Mutex mu;
    std::deque<Task> tasks CACKLE_GUARDED_BY(mu);
  };

  /// Enqueues a task (group-owned; called by TaskGroup::Submit).
  void Submit(Task task);
  /// Runs one queued task if any is available. `worker` is the caller's
  /// own queue index, or -1 for non-worker helpers. Returns false when
  /// every queue was observed empty.
  bool RunOneTask(int worker);
  bool PopOwn(int worker, Task* out);
  bool StealTasks(int thief, Task* out);
  void Execute(Task task, bool helper);
  void WorkerLoop(int worker);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  /// Pure park/unpark handshake: pairs stop_/queued_ (atomics) with
  /// idle_cv_ so a worker cannot miss a wakeup between its predicate check
  /// and the wait. Guards no plain data by design.
  Mutex idle_mu_;  // NOLINT(cackle-lock-annotation): condvar handshake only; stop_/queued_ stay atomics so the submit fast path never takes this lock.
  CondVar idle_cv_;
  std::atomic<bool> stop_{false};
  /// Round-robin cursor for external submissions.
  std::atomic<uint64_t> next_queue_{0};
  /// Tasks currently sitting in queues (not yet popped).
  std::atomic<int64_t> queued_{0};

  std::atomic<int64_t> tasks_submitted_{0};
  std::atomic<int64_t> tasks_run_{0};
  std::atomic<int64_t> steals_{0};
  std::atomic<int64_t> tasks_stolen_{0};
  std::atomic<int64_t> helper_runs_{0};
  std::atomic<int64_t> busy_micros_{0};
  std::atomic<int64_t> max_queue_depth_{0};
};

/// \brief A batch of pool tasks that can be awaited together.
///
/// Submit() enqueues a closure; Wait() blocks until every task submitted to
/// the group (including tasks submitted by other group tasks while waiting)
/// has finished. The waiting thread does not idle: it helps execute queued
/// pool work, so a group wait from the only runnable thread still makes
/// progress and a 1-worker pool plus a waiting caller behaves like two
/// executors.
///
/// `context` propagates to fatal-check/log messages of every task in the
/// group via ScopedLogContext.
///
/// A group may be reused for several submit/wait waves. It must outlive its
/// outstanding tasks (destruction checks the count is zero).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool, std::string context = "");
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Submit(std::function<void()> fn);
  void Wait();

  const std::string& context() const { return context_; }
  int64_t outstanding() const {
    return outstanding_.load(std::memory_order_acquire);
  }

 private:
  friend class ThreadPool;

  /// Called by the pool after a task body finishes.
  void TaskDone();

  ThreadPool* pool_;
  std::string context_;
  std::atomic<int64_t> outstanding_{0};
  /// Pure completion handshake: TaskDone() decrements outstanding_ under
  /// this lock so Wait()'s zero observation happens-after the last pool
  /// touch of the group. Guards no plain data by design.
  Mutex mu_;  // NOLINT(cackle-lock-annotation): condvar handshake only; outstanding_ stays atomic so outstanding() and the Wait fast path read it lock-free.
  CondVar cv_;
};

}  // namespace cackle

#endif  // CACKLE_COMMON_THREAD_POOL_H_
