#include "common/tracer.h"

#include "common/json_writer.h"
#include "common/logging.h"

namespace cackle {

Span* Tracer::Find(SpanId id) {
  if (id == kInvalidSpan) return nullptr;
  CACKLE_CHECK_GE(id, 1);
  CACKLE_CHECK_LE(static_cast<size_t>(id), spans_.size());
  return &spans_[static_cast<size_t>(id - 1)];
}

SpanId Tracer::Begin(std::string_view name, int64_t start_ms, SpanId parent,
                     int64_t query_id) {
  if (!enabled_) return kInvalidSpan;
  Span span;
  span.id = static_cast<SpanId>(spans_.size()) + 1;
  span.parent = parent;
  span.name.assign(name);
  span.query_id = query_id;
  span.start_ms = start_ms;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::End(SpanId id, int64_t end_ms) {
  Span* span = Find(id);
  if (span == nullptr) return;
  CACKLE_CHECK(!span->closed()) << "span ended twice: " << span->name;
  CACKLE_CHECK_GE(end_ms, span->start_ms) << span->name;
  span->end_ms = end_ms;
}

void Tracer::Tag(SpanId id, std::string_view key, std::string_view value) {
  Span* span = Find(id);
  if (span == nullptr) return;
  span->tags.emplace_back(std::string(key), std::string(value));
}

SpanId Tracer::Instant(std::string_view name, int64_t at_ms, SpanId parent,
                       int64_t query_id) {
  const SpanId id = Begin(name, at_ms, parent, query_id);
  End(id, at_ms);
  return id;
}

void Tracer::WriteJson(JsonWriter& json, size_t max_spans) const {
  const size_t n = max_spans == 0 ? spans_.size()
                                  : std::min(max_spans, spans_.size());
  json.BeginArray();
  for (size_t i = 0; i < n; ++i) {
    const Span& s = spans_[i];
    json.BeginObject();
    json.Field("id", s.id);
    if (s.parent != kInvalidSpan) json.Field("parent", s.parent);
    json.Field("name", s.name);
    if (s.query_id >= 0) json.Field("query_id", s.query_id);
    json.Field("start_ms", s.start_ms);
    json.Field("end_ms", s.end_ms);
    if (!s.tags.empty()) {
      json.Key("tags").BeginObject();
      for (const auto& [k, v] : s.tags) json.Field(k, v);
      json.EndObject();
    }
    json.EndObject();
  }
  json.EndArray();
}

}  // namespace cackle
