#ifndef CACKLE_COMMON_TRACER_H_
#define CACKLE_COMMON_TRACER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cackle {

class JsonWriter;

/// Identifies a span within one Tracer; 0 = "no span" (the id a disabled
/// tracer hands out, accepted as a no-op by every other call).
using SpanId = int64_t;
constexpr SpanId kInvalidSpan = 0;

/// \brief One timed interval keyed on *simulated* time.
///
/// Spans form a forest: a query span owns stage spans, which own task
/// spans. `end_ms` is -1 while the span is open. Instant events are spans
/// with end == start.
struct Span {
  SpanId id = kInvalidSpan;
  SpanId parent = kInvalidSpan;
  std::string name;
  /// The query this span belongs to; -1 for infrastructure spans.
  int64_t query_id = -1;
  int64_t start_ms = 0;
  int64_t end_ms = -1;
  std::vector<std::pair<std::string, std::string>> tags;

  bool closed() const { return end_ms >= 0; }
};

/// \brief Lightweight span recorder for per-query execution traces.
///
/// Like the metrics registry this is pure bookkeeping on simulated
/// timestamps: recording never consumes randomness or schedules events, so
/// tracing on/off cannot change an engine run's results. A disabled tracer
/// (the default-constructed state used when no observability sink is
/// attached) returns kInvalidSpan from Begin() and ignores every other
/// call — the zero-cost guard mirrors the fault injector's all-rates-zero
/// contract.
class Tracer {
 public:
  explicit Tracer(bool enabled = false) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  /// Opens a span; returns kInvalidSpan when disabled.
  SpanId Begin(std::string_view name, int64_t start_ms,
               SpanId parent = kInvalidSpan, int64_t query_id = -1);

  /// Closes a span at `end_ms` (ignored for kInvalidSpan).
  void End(SpanId id, int64_t end_ms);

  /// Attaches a key/value tag (ignored for kInvalidSpan).
  void Tag(SpanId id, std::string_view key, std::string_view value);

  /// Records a zero-duration event.
  SpanId Instant(std::string_view name, int64_t at_ms,
                 SpanId parent = kInvalidSpan, int64_t query_id = -1);

  const std::vector<Span>& spans() const { return spans_; }
  size_t size() const { return spans_.size(); }
  void Clear() { spans_.clear(); }

  /// Emits an array of span objects, at most `max_spans` (0 = all), in
  /// recording order.
  void WriteJson(JsonWriter& json, size_t max_spans = 0) const;

 private:
  Span* Find(SpanId id);

  bool enabled_;
  std::vector<Span> spans_;
};

}  // namespace cackle

#endif  // CACKLE_COMMON_TRACER_H_
