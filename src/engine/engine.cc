#include "engine/engine.h"

#include <algorithm>

#include "common/logging.h"

namespace cackle {

struct CackleEngine::QueryState {
  const QueryProfile* profile = nullptr;
  SimTimeMs arrival_ms = 0;
  bool batch = false;
  std::vector<int> deps_remaining;
  std::vector<int> tasks_remaining;
  int stages_remaining = 0;
  bool done = false;
};

CackleEngine::CackleEngine(const CostModel* cost, EngineOptions options)
    : cost_(cost), options_(std::move(options)),
      chaos_rng_(options_.seed ^ 0xbac0ffULL) {
  injector_ = std::make_unique<FaultInjector>(options_.faults,
                                              options_.seed ^ 0xfa017ULL);
  elastic_retry_policy_ =
      std::make_unique<RetryPolicy>(options_.elastic_retry, &chaos_rng_);
  fleet_ = std::make_unique<VmFleet>(&sim_, cost_, &meter_);
  pool_ = std::make_unique<ElasticPool>(&sim_, cost_, &meter_,
                                        Rng(options_.seed));
  object_store_ = std::make_unique<ObjectStore>(cost_, &meter_);
  shuffle_ = std::make_unique<ShuffleLayer>(&sim_, cost_, &meter_,
                                            object_store_.get());
  fleet_->SetFaultInjector(injector_.get());
  pool_->SetFaultInjector(injector_.get());
  object_store_->SetFaultInjector(injector_.get());
  shuffle_->SetFaultInjector(injector_.get());
  shuffle_->SetOnPartitionsLost(
      [this](int64_t query_id, int stage_id, int64_t lost_bytes,
             int64_t lost_partitions) {
        OnShufflePartitionsLost(query_id, stage_id, lost_bytes,
                                lost_partitions);
      });
  if (options_.use_dynamic) {
    DynamicStrategyOptions dyn = options_.dynamic;
    dyn.seed = options_.seed ^ 0x5eed;
    strategy_ = std::make_unique<DynamicStrategy>(cost_, dyn);
  } else {
    strategy_ = std::make_unique<FixedStrategy>(options_.fixed_target);
  }
  if (options_.spot_mean_lifetime_hours > 0.0) {
    fleet_->EnableInterruptions(options_.seed ^ 0xdead,
                                options_.spot_mean_lifetime_hours);
    fleet_->SetOnVmInterrupted([this](VmId vm) { OnVmInterrupted(vm); });
  }
}

CackleEngine::~CackleEngine() = default;

void CackleEngine::CoordinatorTick() {
  // Record this second's peak concurrent task demand.
  const int64_t demand = std::max(second_max_tasks_, running_tasks_);
  second_max_tasks_ = running_tasks_;
  history_.Append(demand);
  result_.peak_concurrent_tasks =
      std::max(result_.peak_concurrent_tasks, demand);

  // A tick scheduled before the workload drained may still fire once after
  // completion; it must not re-raise the target or (with spot
  // interruptions) the reclaim-replenish loop would run forever.
  const int64_t target = workload_done_ ? 0 : strategy_->Target(history_);
  fleet_->SetTarget(target);
  if (options_.enable_shuffle) shuffle_->Tick();
  DrainBatchQueue();

  if (options_.record_series) {
    result_.demand_series.push_back(demand);
    result_.target_series.push_back(target);
    result_.active_vm_series.push_back(fleet_->num_ready());
  }

  if (!workload_done_) {
    sim_.ScheduleAfter(kMillisPerSecond, [this] { CoordinatorTick(); });
  }
}

void CackleEngine::OnQueryArrival(int64_t query_id) {
  QueryState& state = queries_[static_cast<size_t>(query_id)];
  for (size_t s = 0; s < state.profile->stages.size(); ++s) {
    if (state.deps_remaining[s] == 0) {
      ScheduleStage(query_id, static_cast<int>(s));
    }
  }
}

void CackleEngine::ScheduleStage(int64_t query_id, int stage_id) {
  QueryState& state = queries_[static_cast<size_t>(query_id)];
  const StageProfile& stage =
      state.profile->stages[static_cast<size_t>(stage_id)];
  // Consumer side of the shuffle: read upstream stage outputs.
  if (options_.enable_shuffle) {
    for (int dep : stage.dependencies) {
      const StageProfile& upstream =
          state.profile->stages[static_cast<size_t>(dep)];
      shuffle_->Read(query_id, dep, upstream.object_store_gets);
    }
  }
  for (int t = 0; t < stage.num_tasks; ++t) {
    RunTask(TaskRef{query_id, stage_id, /*recovery=*/false},
            stage.TaskDuration(t));
  }
}

void CackleEngine::RunTask(TaskRef ref, SimTimeMs duration_ms) {
  const QueryState& state = queries_[static_cast<size_t>(ref.query_id)];
  if (state.batch) {
    // Batch work (Section 2.1) tolerates delay: run on an idle VM if one
    // exists, otherwise wait for spare provisioned capacity instead of
    // paying the elastic premium.
    if (TryPlaceOnVm(ref, duration_ms)) {
      ++running_tasks_;
      second_max_tasks_ = std::max(second_max_tasks_, running_tasks_);
    } else {
      ++result_.batch_tasks_delayed;
      batch_queue_.push_back(BatchTask{ref, duration_ms, sim_.NowMs()});
    }
    return;
  }
  ++running_tasks_;
  second_max_tasks_ = std::max(second_max_tasks_, running_tasks_);
  PlaceTask(ref, duration_ms);
}

bool CackleEngine::TryPlaceOnVm(TaskRef ref, SimTimeMs duration_ms) {
  const auto vm = fleet_->TryAcquire();
  if (!vm.has_value()) return false;
  ++result_.tasks_on_vms;
  const SimTimeMs dur = std::max<SimTimeMs>(
      1, static_cast<SimTimeMs>(static_cast<double>(duration_ms) /
                                options_.vm_speedup));
  const uint64_t event =
      sim_.ScheduleAfter(dur, [this, ref, vm_id = *vm] {
        vm_tasks_.erase(vm_id);
        fleet_->Release(vm_id);
        OnTaskDone(ref);
      });
  vm_tasks_[*vm] = VmTask{ref, duration_ms, event};
  return true;
}

void CackleEngine::PlaceTask(TaskRef ref, SimTimeMs duration_ms,
                             int attempt) {
  if (TryPlaceOnVm(ref, duration_ms)) return;
  PlaceOnElastic(ref, duration_ms, attempt);
}

void CackleEngine::PlaceOnElastic(TaskRef ref, SimTimeMs duration_ms,
                                  int attempt) {
  const int64_t run_id = next_elastic_run_id_++;
  const Status admitted = pool_->TryAcquire(
      [this, run_id](ElasticSlotId slot) { OnElasticGranted(run_id, slot); });
  if (!admitted.ok()) {
    // Throttled by the concurrency limit: queue behind a deterministic
    // exponential backoff, then try a full placement again (a VM may have
    // freed up in the meantime). Attempts are unlimited — graceful
    // degradation is late work, never lost work.
    const SimTimeMs backoff = elastic_retry_policy_->BackoffMs(attempt + 1);
    sim_.ScheduleAfter(backoff, [this, ref, duration_ms, attempt] {
      PlaceTask(ref, duration_ms, attempt + 1);
    });
    return;
  }
  ++result_.tasks_on_elastic;
  ElasticRun& run = elastic_runs_[run_id];
  run.ref = ref;
  run.duration_ms = duration_ms;
  run.starting = 1;
}

void CackleEngine::OnElasticGranted(int64_t run_id, ElasticSlotId slot) {
  auto it = elastic_runs_.find(run_id);
  if (it == elastic_runs_.end()) {
    // The task completed (or failed over) while this speculative copy was
    // still starting; give the slot straight back.
    pool_->Release(slot);
    return;
  }
  ElasticRun& run = it->second;
  --run.starting;
  SimTimeMs dur = run.duration_ms;
  if (injector_->SampleElasticStraggler()) {
    dur = std::max<SimTimeMs>(
        1, static_cast<SimTimeMs>(
               static_cast<double>(dur) *
               options_.faults.elastic_straggler_slowdown));
  }
  const auto fail_at = injector_->SampleElasticFailure(dur);
  uint64_t event;
  if (fail_at.has_value()) {
    event = sim_.ScheduleAfter(*fail_at, [this, run_id, slot] {
      OnElasticAttemptFailed(run_id, slot);
    });
  } else {
    event = sim_.ScheduleAfter(dur, [this, run_id, slot] {
      OnElasticAttemptDone(run_id, slot);
    });
  }
  const bool first_attempt = run.live.empty() && !run.speculated;
  run.live.emplace_back(slot, event);
  if (first_attempt && SpeculationEnabled()) {
    // Straggler timeout: if the task is still running well past its
    // expected duration (allowing for startup jitter), launch a copy.
    const SimTimeMs timeout =
        std::max<SimTimeMs>(
            1, static_cast<SimTimeMs>(
                   static_cast<double>(run.duration_ms) *
                   options_.straggler_timeout_multiplier)) +
        2 * cost_->elastic_startup_tail_ms;
    sim_.ScheduleAfter(timeout, [this, run_id] { MaybeSpeculate(run_id); });
  }
}

void CackleEngine::OnElasticAttemptDone(int64_t run_id, ElasticSlotId slot) {
  auto it = elastic_runs_.find(run_id);
  CACKLE_CHECK(it != elastic_runs_.end());
  ElasticRun& run = it->second;
  pool_->Release(slot);
  // First finisher wins: cancel and release the speculation loser.
  for (auto& [other_slot, other_event] : run.live) {
    if (other_slot == slot) continue;
    sim_.Cancel(other_event);
    pool_->Release(other_slot);
  }
  const TaskRef ref = run.ref;
  elastic_runs_.erase(it);
  OnTaskDone(ref);
}

void CackleEngine::OnElasticAttemptFailed(int64_t run_id, ElasticSlotId slot) {
  auto it = elastic_runs_.find(run_id);
  CACKLE_CHECK(it != elastic_runs_.end());
  ElasticRun& run = it->second;
  // The invocation died mid-run; its runtime until failure is still billed.
  pool_->Release(slot);
  ++result_.elastic_failures;
  run.live.erase(std::find_if(run.live.begin(), run.live.end(),
                              [slot](const auto& p) {
                                return p.first == slot;
                              }));
  if (!run.live.empty() || run.starting > 0) {
    // A speculative sibling is still running (or starting); it carries the
    // task to completion.
    return;
  }
  const TaskRef ref = run.ref;
  const SimTimeMs duration_ms = run.duration_ms;
  elastic_runs_.erase(it);
  // Re-place from scratch, same path as a spot interruption: an idle VM if
  // one appeared, otherwise the pool again.
  PlaceTask(ref, duration_ms);
}

void CackleEngine::MaybeSpeculate(int64_t run_id) {
  auto it = elastic_runs_.find(run_id);
  if (it == elastic_runs_.end()) return;  // task already finished
  ElasticRun& run = it->second;
  if (run.speculated || run.live.size() + run.starting != 1) return;
  run.speculated = true;
  const Status admitted = pool_->TryAcquire(
      [this, run_id](ElasticSlotId slot) { OnElasticGranted(run_id, slot); });
  // A throttled speculative copy is simply skipped — the primary attempt is
  // still running and speculation is best-effort.
  if (!admitted.ok()) return;
  ++run.starting;
  ++result_.tasks_speculated;
  ++result_.tasks_on_elastic;
}

void CackleEngine::DrainBatchQueue() {
  while (!batch_queue_.empty()) {
    const BatchTask task = batch_queue_.front();
    if (TryPlaceOnVm(task.ref, task.duration_ms)) {
      batch_queue_.pop_front();
    } else if (sim_.NowMs() - task.enqueued_ms >=
               options_.max_batch_delay_ms) {
      // SLA escalation: overdue batch work runs on the elastic pool.
      batch_queue_.pop_front();
      ++result_.batch_tasks_escalated;
      PlaceTask(task.ref, task.duration_ms);
    } else {
      break;
    }
    ++running_tasks_;
    second_max_tasks_ = std::max(second_max_tasks_, running_tasks_);
  }
}

void CackleEngine::OnVmInterrupted(VmId vm) {
  auto it = vm_tasks_.find(vm);
  CACKLE_CHECK(it != vm_tasks_.end()) << "interrupted busy VM without task";
  const VmTask task = it->second;
  vm_tasks_.erase(it);
  sim_.Cancel(task.completion_event);
  ++result_.tasks_retried;
  if (queries_[static_cast<size_t>(task.ref.query_id)].batch) {
    // Batch work goes back to waiting for spare capacity.
    --running_tasks_;
    batch_queue_.push_front(
        BatchTask{task.ref, task.duration_ms, sim_.NowMs()});
    return;
  }
  // Retry from scratch; the fleet has already retired the VM, so this
  // lands on another idle VM or (typically) the elastic pool.
  PlaceTask(task.ref, task.duration_ms);
}

void CackleEngine::OnShufflePartitionsLost(int64_t query_id, int stage_id,
                                           int64_t lost_bytes,
                                           int64_t lost_partitions) {
  result_.shuffle_partitions_lost += lost_partitions;
  QueryState& state = queries_[static_cast<size_t>(query_id)];
  if (state.done) return;  // released queries hold no shuffle state
  Recovery& rec = recoveries_[{query_id, stage_id}];
  const bool already_running = rec.tasks_remaining > 0;
  rec.lost_bytes += lost_bytes;
  rec.lost_partitions += lost_partitions;
  if (already_running) return;  // fold further losses into the in-flight run
  ++result_.stages_reexecuted;
  const StageProfile& stage =
      state.profile->stages[static_cast<size_t>(stage_id)];
  rec.tasks_remaining = stage.num_tasks;
  for (int t = 0; t < stage.num_tasks; ++t) {
    ++running_tasks_;
    second_max_tasks_ = std::max(second_max_tasks_, running_tasks_);
    PlaceTask(TaskRef{query_id, stage_id, /*recovery=*/true},
              stage.TaskDuration(t));
  }
}

void CackleEngine::OnRecoveryTaskDone(TaskRef ref) {
  auto it = recoveries_.find({ref.query_id, ref.stage_id});
  CACKLE_CHECK(it != recoveries_.end());
  if (--it->second.tasks_remaining > 0) return;
  const Recovery rec = it->second;
  recoveries_.erase(it);
  QueryState& state = queries_[static_cast<size_t>(ref.query_id)];
  // If every consumer finished while we were re-executing, the regenerated
  // partitions are no longer needed.
  if (state.done || !options_.enable_shuffle) return;
  const StageProfile& stage =
      state.profile->stages[static_cast<size_t>(ref.stage_id)];
  // Rewrite the regenerated partitions through the shuffle layer (they land
  // on nodes or spill to the store like any write), billing PUTs
  // proportional to the regenerated share of the stage's output.
  const int64_t puts = std::max<int64_t>(
      1, stage.object_store_puts * rec.lost_bytes /
             std::max<int64_t>(1, stage.shuffle_bytes_out));
  shuffle_->Write(ref.query_id, ref.stage_id, rec.lost_bytes,
                  std::max<int64_t>(1, rec.lost_partitions), puts);
}

void CackleEngine::OnTaskDone(TaskRef ref) {
  --running_tasks_;
  // A slot just freed up; queued batch work can use it.
  if (!batch_queue_.empty()) DrainBatchQueue();
  if (ref.recovery) {
    OnRecoveryTaskDone(ref);
    return;
  }
  QueryState& state = queries_[static_cast<size_t>(ref.query_id)];
  if (--state.tasks_remaining[static_cast<size_t>(ref.stage_id)] == 0) {
    OnStageDone(ref.query_id, ref.stage_id);
  }
}

void CackleEngine::OnStageDone(int64_t query_id, int stage_id) {
  QueryState& state = queries_[static_cast<size_t>(query_id)];
  const StageProfile& stage =
      state.profile->stages[static_cast<size_t>(stage_id)];
  if (options_.enable_shuffle && stage.shuffle_bytes_out > 0) {
    // Producer side: write this stage's output through the shuffle layer.
    int64_t consumer_tasks = 0;
    for (const StageProfile& s : state.profile->stages) {
      for (int dep : s.dependencies) {
        if (dep == stage_id) consumer_tasks += s.num_tasks;
      }
    }
    shuffle_->Write(query_id, stage_id, stage.shuffle_bytes_out,
                    std::max<int64_t>(1, consumer_tasks),
                    stage.object_store_puts);
  }
  if (--state.stages_remaining == 0) {
    OnQueryDone(query_id);
    return;
  }
  for (size_t s = 0; s < state.profile->stages.size(); ++s) {
    for (int dep : state.profile->stages[s].dependencies) {
      if (dep == stage_id && --state.deps_remaining[s] == 0) {
        ScheduleStage(query_id, static_cast<int>(s));
      }
    }
  }
}

void CackleEngine::OnQueryDone(int64_t query_id) {
  QueryState& state = queries_[static_cast<size_t>(query_id)];
  CACKLE_CHECK(!state.done);
  state.done = true;
  if (state.batch) {
    result_.batch_latencies_s.Add(
        MsToSeconds(sim_.NowMs() - state.arrival_ms));
  } else {
    result_.latencies_s.Add(MsToSeconds(sim_.NowMs() - state.arrival_ms));
  }
  result_.makespan_ms = std::max(result_.makespan_ms, sim_.NowMs());
  ++result_.queries_completed;
  if (options_.enable_shuffle) shuffle_->ReleaseQuery(query_id);
  if (--queries_remaining_ == 0) {
    workload_done_ = true;
    // Stop maintaining capacity so the fleet (and any spot-interruption
    // replacement loop) drains.
    fleet_->SetTarget(0);
  }
}

EngineResult CackleEngine::Run(const std::vector<QueryArrival>& arrivals,
                               const ProfileLibrary& library) {
  queries_.resize(arrivals.size());
  queries_remaining_ = static_cast<int64_t>(arrivals.size());
  for (size_t q = 0; q < arrivals.size(); ++q) {
    QueryState& state = queries_[q];
    state.profile = &library.at(arrivals[q].profile_index);
    state.arrival_ms = arrivals[q].arrival_ms;
    state.batch = arrivals[q].batch;
    state.stages_remaining = static_cast<int>(state.profile->stages.size());
    state.deps_remaining.resize(state.profile->stages.size());
    state.tasks_remaining.resize(state.profile->stages.size());
    for (size_t s = 0; s < state.profile->stages.size(); ++s) {
      state.deps_remaining[s] =
          static_cast<int>(state.profile->stages[s].dependencies.size());
      state.tasks_remaining[s] = state.profile->stages[s].num_tasks;
    }
    sim_.ScheduleAt(state.arrival_ms, [this, q] {
      OnQueryArrival(static_cast<int64_t>(q));
    });
  }
  if (arrivals.empty()) workload_done_ = true;

  // Cold-start priming: replay the expected demand through the history and
  // the strategy so expert weights are differentiated before t=0. The
  // replay is bookkeeping only — no resources are provisioned for it.
  for (int64_t expected : options_.primed_history) {
    history_.Append(std::max<int64_t>(0, expected));
    strategy_->Target(history_);
  }

  // The coordinator ticks from t=0 until the workload drains.
  sim_.ScheduleAt(0, [this] { CoordinatorTick(); });
  sim_.RunToCompletion();
  CACKLE_CHECK_EQ(result_.queries_completed,
                  static_cast<int64_t>(arrivals.size()));
  CACKLE_CHECK_EQ(running_tasks_, 0);
  CACKLE_CHECK(batch_queue_.empty());
  // End-of-run leak invariants: every resource the engine acquired must
  // have been returned — a leaked slot or in-flight retry is a bug, not a
  // rounding error.
  CACKLE_CHECK_EQ(pool_->num_active(), 0) << "leaked elastic slots";
  CACKLE_CHECK(elastic_runs_.empty()) << "leaked elastic task state";
  CACKLE_CHECK(vm_tasks_.empty()) << "leaked VM task state";
  CACKLE_CHECK(recoveries_.empty()) << "unfinished shuffle recovery";

  // Drain fleets and flush billing.
  fleet_->SetTarget(0);
  fleet_->TerminateAll();
  if (options_.enable_shuffle) shuffle_->Shutdown();
  // Coordinator rental for the workload duration.
  meter_.Charge(CostCategory::kCoordinator,
                cost_->coordinator_cost_per_hour *
                    MsToSeconds(result_.makespan_ms) / 3600.0);
  result_.shuffle_fallback_bytes = shuffle_->total_fallback_bytes();
  result_.shuffle_written_bytes = shuffle_->total_written_bytes();
  result_.vms_interrupted = fleet_->total_vms_interrupted();
  result_.elastic_throttled = pool_->total_throttled();
  result_.store_retries = object_store_->num_retries();
  result_.vm_launch_failures =
      fleet_->total_launch_failures() + shuffle_->node_launch_failures();
  result_.shuffle_nodes_crashed = shuffle_->total_nodes_crashed();
  result_.billing = meter_;
  return result_;
}

}  // namespace cackle
