#include "engine/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metric_names.h"

namespace cackle {

namespace mn = metric_names;

namespace {
// Named RNG sub-stream tags (folded into the run seed via Rng::StreamSeed).
// The values are the historical ad-hoc XOR constants, kept verbatim so the
// migration to named streams is bit-identical.
constexpr uint64_t kChaosStreamTag = 0xbac0ffULL;
constexpr uint64_t kFaultInjectorStreamTag = 0xfa017ULL;
constexpr uint64_t kDynamicStrategyStreamTag = 0x5eedULL;
constexpr uint64_t kSpotInterruptionStreamTag = 0xdeadULL;
}  // namespace

struct CackleEngine::QueryState {
  const QueryProfile* profile = nullptr;
  SimTimeMs arrival_ms = 0;
  bool batch = false;
  int32_t tenant = 0;
  // Per-stage deps/tasks countdowns live in the engine-level flat arrays
  // (deps_remaining_/tasks_remaining_ via stage_offsets_), not here: the
  // struct-of-arrays layout keeps the per-task hot path off per-query heap
  // allocations.
  int stages_remaining = 0;
  bool done = false;
  SpanId span = kInvalidSpan;
  std::vector<SpanId> stage_spans;
};

CackleEngine::CackleEngine(const CostModel* cost, EngineOptions options)
    : cost_(cost), options_(std::move(options)), sim_(options_.sim),
      chaos_rng_(Rng::StreamSeed(options_.seed, kChaosStreamTag)) {
  obs_ = options_.observability;
  metrics_ = obs_ != nullptr ? &obs_->metrics : &own_metrics_;
  tracer_ = obs_ != nullptr ? &obs_->tracer : &disabled_tracer_;
  tasks_on_vms_ = metrics_->GetCounter(mn::kEngineTasksOnVms);
  tasks_on_elastic_ = metrics_->GetCounter(mn::kEngineTasksOnElastic);
  tasks_retried_ = metrics_->GetCounter(mn::kEngineTasksRetried);
  tasks_speculated_ = metrics_->GetCounter(mn::kEngineTasksSpeculated);
  batch_tasks_delayed_ = metrics_->GetCounter(mn::kEngineBatchTasksDelayed);
  batch_tasks_escalated_ =
      metrics_->GetCounter(mn::kEngineBatchTasksEscalated);
  elastic_failures_ = metrics_->GetCounter(mn::kEngineElasticFailures);
  stages_reexecuted_ = metrics_->GetCounter(mn::kEngineStagesReexecuted);
  shuffle_partitions_lost_ =
      metrics_->GetCounter(mn::kEngineShufflePartitionsLost);
  queries_completed_ = metrics_->GetCounter(mn::kEngineQueriesCompleted);
  queries_shed_ = metrics_->GetCounter(mn::kEngineShedQueries);
  queries_deferred_ = metrics_->GetCounter(mn::kEngineDeferredQueries);
  retry_budget_exhausted_ =
      metrics_->GetCounter(mn::kEngineRetryBudgetExhausted);
  hedged_reads_ = metrics_->GetCounter(mn::kEngineHedgedReads);
  hedged_wins_ = metrics_->GetCounter(mn::kEngineHedgedWins);
  storm_reclaims_ = metrics_->GetCounter(mn::kEngineStormReclaims);
  query_latency_s_ = metrics_->GetHistogram(mn::kEngineQueryLatencyS);
  batch_latency_s_ = metrics_->GetHistogram(mn::kEngineBatchLatencyS);
  injector_ = std::make_unique<FaultInjector>(
      options_.faults, options_.chaos,
      Rng::StreamSeed(options_.seed, kFaultInjectorStreamTag));
  elastic_retry_policy_ =
      std::make_unique<RetryPolicy>(options_.elastic_retry, &chaos_rng_);
  if (injector_->timeline() != nullptr &&
      !injector_->timeline()->price_shock_windows().empty()) {
    // Price shocks re-price the main fleet through a spot market built from
    // the precomputed shock windows. Without shocks the market stays null
    // and the flat CostModel rate applies, exactly as before.
    spot_market_ = std::make_unique<SpotMarket>(
        injector_->timeline()->PriceBreakpoints(cost_->vm_cost_per_hour));
  }
  fleet_ = std::make_unique<VmFleet>(&sim_, cost_, &meter_,
                                     spot_market_.get());
  pool_ = std::make_unique<ElasticPool>(&sim_, cost_, &meter_,
                                        Rng(options_.seed));
  object_store_ = std::make_unique<ObjectStore>(cost_, &meter_);
  object_store_->SetSimulation(&sim_);
  object_store_->EnableCircuitBreaker(options_.store_breaker);
  shuffle_ = std::make_unique<ShuffleLayer>(&sim_, cost_, &meter_,
                                            object_store_.get());
  // Dedicated-capacity policy: both maps are empty by default, leaving the
  // fleet and pool in pure shared mode.
  for (const auto& [tenant, vms] : options_.tenant_reserved_vms) {
    fleet_->SetTenantReservation(tenant, vms);
  }
  for (const auto& [tenant, limit] : options_.tenant_elastic_limits) {
    pool_->SetTenantLimit(tenant, limit);
  }
  fleet_->SetFaultInjector(injector_.get());
  pool_->SetFaultInjector(injector_.get());
  object_store_->SetFaultInjector(injector_.get());
  shuffle_->SetFaultInjector(injector_.get());
  if (obs_ != nullptr) {
    // The ledger schema mirrors the BillingMeter categories one-to-one so
    // FinalizeAgainst can close the books against the real bill.
    std::vector<std::string> category_names;
    for (int c = 0; c < static_cast<int>(CostCategory::kNumCategories); ++c) {
      category_names.emplace_back(
          CostCategoryName(static_cast<CostCategory>(c)));
    }
    obs_->ledger.EnsureCategories(category_names);
    ledger_ = &obs_->ledger;
    shuffle_->SetCostLedger(ledger_);
  }
  shuffle_->SetOnPartitionsLost(
      [this](int64_t query_id, int stage_id, int64_t lost_bytes,
             int64_t lost_partitions) {
        OnShufflePartitionsLost(query_id, stage_id, lost_bytes,
                                lost_partitions);
      });
  if (options_.use_dynamic) {
    DynamicStrategyOptions dyn = options_.dynamic;
    dyn.seed = Rng::StreamSeed(options_.seed, kDynamicStrategyStreamTag);
    strategy_ = std::make_unique<DynamicStrategy>(cost_, dyn);
  } else {
    strategy_ = std::make_unique<FixedStrategy>(options_.fixed_target);
  }
  strategy_->SetObservability(metrics_, tracer_);
  if (options_.spot_mean_lifetime_hours > 0.0) {
    fleet_->EnableInterruptions(
        Rng::StreamSeed(options_.seed, kSpotInterruptionStreamTag),
        options_.spot_mean_lifetime_hours);
  }
  // Reclamation storms interrupt busy VMs even without the per-VM lifetime
  // model, so the rescue callback is always installed (installing it is
  // pure bookkeeping; it only fires on interruptions).
  fleet_->SetOnVmInterrupted([this](VmId vm) { OnVmInterrupted(vm); });
}

CackleEngine::~CackleEngine() = default;

int32_t CackleEngine::QueryTenant(int64_t query_id) const {
  return queries_[static_cast<size_t>(query_id)].tenant;
}

int64_t CackleEngine::TenantWeight(int32_t tenant) const {
  const auto it = options_.admission.per_tenant.find(tenant);
  if (it != options_.admission.per_tenant.end() && it->second.weight > 0) {
    return it->second.weight;
  }
  return std::max<int64_t>(1, options_.admission.default_tenant_weight);
}

SimTimeMs CackleEngine::TenantShedAfter(int32_t tenant) const {
  const auto it = options_.admission.per_tenant.find(tenant);
  if (it != options_.admission.per_tenant.end() &&
      it->second.shed_after_ms >= 0) {
    return it->second.shed_after_ms;
  }
  return options_.admission.shed_after_ms;
}

int64_t CackleEngine::TenantMaxOutstanding(int32_t tenant) const {
  const auto it = options_.admission.per_tenant.find(tenant);
  return it == options_.admission.per_tenant.end()
             ? 0
             : it->second.max_outstanding_tasks;
}

int64_t CackleEngine::RunningOf(int32_t tenant) const {
  const auto it = running_by_tenant_.find(tenant);
  return it == running_by_tenant_.end() ? 0 : it->second;
}

void CackleEngine::TaskStarted(int64_t query_id) {
  ++running_tasks_;
  second_max_tasks_ = std::max(second_max_tasks_, running_tasks_);
  if (multi_tenant_) {
    const int32_t tenant = QueryTenant(query_id);
    const int64_t running = ++running_by_tenant_[tenant];
    int64_t& peak = second_max_by_tenant_[tenant];
    peak = std::max(peak, running);
  }
}

void CackleEngine::TaskFinished(int64_t query_id) {
  --running_tasks_;
  if (multi_tenant_) {
    const auto it = running_by_tenant_.find(QueryTenant(query_id));
    CACKLE_CHECK(it != running_by_tenant_.end());
    if (--it->second == 0) running_by_tenant_.erase(it);
  }
}

void CackleEngine::CoordinatorTick() {
  // Record this second's peak concurrent task demand.
  const int64_t demand = std::max(second_max_tasks_, running_tasks_);
  second_max_tasks_ = running_tasks_;
  history_.Append(demand);
  result_.peak_concurrent_tasks =
      std::max(result_.peak_concurrent_tasks, demand);
  if (multi_tenant_) {
    // Per-tenant breakdown of the same demand sample for tenant-aware
    // strategies (ascending tenant order, zero-demand tenants omitted).
    // Never fed in single-tenant runs, so those stay bit-identical.
    std::map<int32_t, int64_t> tenant_demand = second_max_by_tenant_;
    for (const auto& [tenant, running] : running_by_tenant_) {
      int64_t& d = tenant_demand[tenant];
      d = std::max(d, running);
    }
    second_max_by_tenant_ = running_by_tenant_;
    if (!workload_done_) {
      std::vector<TenantDemand> mix;
      mix.reserve(tenant_demand.size());
      for (const auto& [tenant, tenant_peak] : tenant_demand) {
        if (tenant_peak > 0) mix.push_back(TenantDemand{tenant, tenant_peak});
      }
      if (!mix.empty()) strategy_->ObserveTenantDemand(mix);
    }
  }

  // A tick scheduled before the workload drained may still fire once after
  // completion; it must not re-raise the target or (with spot
  // interruptions) the reclaim-replenish loop would run forever.
  int64_t target = workload_done_ ? 0 : strategy_->Target(history_);
  if (!workload_done_ && fleet_->reserved_total() > 0) {
    // Dedicated carve-outs: while the workload is live, never provision
    // below the sum of per-tenant reservations.
    target = std::max(target, fleet_->reserved_total());
  }
  fleet_->SetTarget(target);
  if (injector_->HasStorms()) {
    // Reclamation-storm burst: the provider claws back a fraction of the
    // ready fleet this second, busy VMs included (their tasks are rescued
    // through the normal interruption path).
    const int64_t reclaims = injector_->SampleStormReclaims(
        fleet_->num_ready(), sim_.NowMs(), kMillisPerSecond);
    if (reclaims > 0) {
      storm_reclaims_->Increment(fleet_->InterruptN(reclaims));
    }
  }
  if (options_.enable_shuffle) shuffle_->Tick();
  DrainAdmissionQueue();
  DrainBatchQueue();

  if (options_.record_series) {
    result_.demand_series.push_back(demand);
    result_.target_series.push_back(target);
    result_.active_vm_series.push_back(fleet_->num_ready());
  }

  if (!workload_done_) {
    sim_.ScheduleAfter(kMillisPerSecond, [this] { CoordinatorTick(); });
  }
}

void CackleEngine::OnQueryArrival(int64_t query_id) {
  if (options_.admission.enabled()) {
    const int32_t tenant = QueryTenant(query_id);
    const bool global_full =
        running_tasks_ >= options_.admission.max_outstanding_tasks;
    // Map presence == non-empty queue (empty tenant queues are erased).
    const bool tenant_queued = admission_queues_.count(tenant) > 0;
    const int64_t cap = TenantMaxOutstanding(tenant);
    const bool tenant_full = cap > 0 && RunningOf(tenant) >= cap;
    if (global_full || tenant_queued || tenant_full) {
      // Over the survivability threshold (or behind earlier deferred
      // arrivals of the same tenant, or over the tenant's own cap): defer
      // instead of piling more tasks onto a melting substrate. Per-tenant
      // FIFO order is preserved — a query never overtakes an earlier
      // deferred one from its own tenant. A query enters the admission
      // queue at most once, so this counter is incremented at most once per
      // query (deferred-then-shed queries count in both tallies).
      if (tenant_full && !global_full && !tenant_queued) {
        ++tenant_cap_deferrals_;
      }
      queries_deferred_->Increment();
      ++result_.tenants[tenant].queries_deferred;
      TenantQueue& tq = admission_queues_[tenant];
      tq.entries.push_back(AdmissionEntry{query_id, sim_.NowMs()});
      ++admission_queued_total_;
      admission_queue_peak_ =
          std::max(admission_queue_peak_, admission_queued_total_);
      tenant_queue_peak_ = std::max(
          tenant_queue_peak_, static_cast<int64_t>(tq.entries.size()));
      return;
    }
  }
  StartQuery(query_id);
}

void CackleEngine::StartQuery(int64_t query_id) {
  QueryState& state = queries_[static_cast<size_t>(query_id)];
  state.span = tracer_->Begin("query", sim_.NowMs(), kInvalidSpan, query_id);
  tracer_->Tag(state.span, "type", state.batch ? "batch" : "interactive");
  state.stage_spans.assign(state.profile->stages.size(), kInvalidSpan);
  for (size_t s = 0; s < state.profile->stages.size(); ++s) {
    if (DepsRemaining(query_id, s) == 0) {
      ScheduleStage(query_id, static_cast<int>(s));
    }
  }
}

void CackleEngine::ShedQuery(int64_t query_id) {
  QueryState& state = queries_[static_cast<size_t>(query_id)];
  CACKLE_CHECK(!state.done);
  CACKLE_CHECK(!state.batch) << "batch queries are deferred, never shed";
  state.done = true;
  queries_shed_->Increment();
  ++result_.tenants[state.tenant].queries_shed;
  const SpanId span =
      tracer_->Begin("query", sim_.NowMs(), kInvalidSpan, query_id);
  tracer_->Tag(span, "type", "interactive");
  tracer_->Tag(span, "outcome", "shed");
  tracer_->End(span, sim_.NowMs());
  // A shed query is a first-class outcome in the books: a zero-cost row,
  // not a missing one.
  if (ledger_ != nullptr) ledger_->Touch(query_id);
  result_.makespan_ms = std::max(result_.makespan_ms, sim_.NowMs());
  if (--queries_remaining_ == 0) {
    workload_done_ = true;
    fleet_->SetTarget(0);
  }
}

void CackleEngine::DrainAdmissionQueue() {
  if (admission_queued_total_ == 0) return;
  // SLO pass first: overdue interactive queries anywhere in any tenant's
  // queue are shed (against the tenant's effective SLO); batch entries just
  // keep waiting (delay-tolerant by contract). Tenants are visited in
  // ascending id order and entries in FIFO order, so the pass is
  // deterministic across scheduler backends.
  for (auto qit = admission_queues_.begin(); qit != admission_queues_.end();) {
    const SimTimeMs shed_after = TenantShedAfter(qit->first);
    auto& entries = qit->second.entries;
    if (shed_after > 0) {
      for (auto it = entries.begin(); it != entries.end();) {
        const QueryState& state = queries_[static_cast<size_t>(it->query_id)];
        if (!state.batch && sim_.NowMs() - it->arrival_ms >= shed_after) {
          ShedQuery(it->query_id);
          it = entries.erase(it);
          --admission_queued_total_;
        } else {
          ++it;
        }
      }
    }
    qit = entries.empty() ? admission_queues_.erase(qit) : ++qit;
  }
  // Weighted deficit-round-robin admission across the tenant queues,
  // resuming at the cursor where the previous drain stopped. Each turn
  // grants a tenant up to `weight` admissions (unit cost per query); with a
  // single tenant of weight 1 this serves one query per turn in FIFO order
  // — exactly the old global drain loop.
  int64_t fruitless_turns = 0;
  while (admission_queued_total_ > 0 &&
         running_tasks_ < options_.admission.max_outstanding_tasks &&
         fruitless_turns <= static_cast<int64_t>(admission_queues_.size())) {
    auto it = admission_queues_.lower_bound(drr_cursor_);
    if (it == admission_queues_.end()) it = admission_queues_.begin();
    const int32_t tenant = it->first;
    TenantQueue& tq = it->second;
    ++drr_rounds_;
    // A fresh turn refills the quantum; a positive deficit means the last
    // turn was cut short by the global capacity limit and resumes here.
    if (tq.deficit <= 0) tq.deficit = TenantWeight(tenant);
    const int64_t cap = TenantMaxOutstanding(tenant);
    bool served = false;
    while (tq.deficit > 0 && !tq.entries.empty() &&
           running_tasks_ < options_.admission.max_outstanding_tasks &&
           (cap <= 0 || RunningOf(tenant) < cap)) {
      const AdmissionEntry entry = tq.entries.front();
      tq.entries.pop_front();
      --admission_queued_total_;
      --tq.deficit;
      served = true;
      StartQuery(entry.query_id);
    }
    fruitless_turns = served ? 0 : fruitless_turns + 1;
    if (tq.entries.empty()) {
      admission_queues_.erase(it);
      drr_cursor_ = tenant + 1;
    } else if (running_tasks_ >= options_.admission.max_outstanding_tasks) {
      // Global capacity ran out mid-turn: keep the remaining deficit and
      // resume at this tenant on the next drain, the same way the old
      // global loop resumed at the queue front.
      drr_cursor_ = tenant;
    } else {
      // Quantum spent or per-tenant cap reached: this turn is over; unused
      // credit does not accumulate across turns.
      tq.deficit = 0;
      drr_cursor_ = tenant + 1;
    }
  }
}

void CackleEngine::DrainDeferredTasks() {
  if (deferred_tasks_.empty()) return;
  std::deque<DeferredTask> parked;
  parked.swap(deferred_tasks_);
  for (const DeferredTask& task : parked) {
    // Fresh attempt counter and budget: the point of parking was to stop
    // the exponential ladder, not to drop the task.
    PlaceTask(task.ref, task.duration_ms);
  }
}

void CackleEngine::ScheduleStage(int64_t query_id, int stage_id) {
  QueryState& state = queries_[static_cast<size_t>(query_id)];
  const StageProfile& stage =
      state.profile->stages[static_cast<size_t>(stage_id)];
  const SpanId stage_span =
      tracer_->Begin("stage", sim_.NowMs(), state.span, query_id);
  tracer_->Tag(stage_span, "stage", std::to_string(stage_id));
  state.stage_spans[static_cast<size_t>(stage_id)] = stage_span;
  // Consumer side of the shuffle: read upstream stage outputs. The
  // store-resident share determines the stage's exposure to brownouts.
  double max_store_fraction = 0.0;
  if (options_.enable_shuffle) {
    for (int dep : stage.dependencies) {
      const StageProfile& upstream =
          state.profile->stages[static_cast<size_t>(dep)];
      max_store_fraction =
          std::max(max_store_fraction,
                   shuffle_->Read(query_id, dep, upstream.object_store_gets));
      const SpanId read_ev =
          tracer_->Instant("shuffle.read", sim_.NowMs(), stage_span, query_id);
      tracer_->Tag(read_ev, "from_stage", std::to_string(dep));
    }
  }
  // Outside brownouts (and always in the fault-free configuration) the
  // sampled delay is zero and the tasks launch synchronously, preserving
  // bit-identity with the pre-hedging scheduler.
  SimTimeMs read_delay_ms = 0;
  if (max_store_fraction > 0.0) {
    read_delay_ms = injector_->SampleBrownoutReadLatency(sim_.NowMs());
    if (read_delay_ms > 0 && options_.hedge_after_ms > 0 &&
        read_delay_ms > options_.hedge_after_ms) {
      // Hedge the slow read: after hedge_after_ms, issue a duplicate GET
      // (real store traffic — billed and attributed) and take the faster.
      hedged_reads_->Increment();
      const SimTimeMs duplicate_ms =
          options_.hedge_after_ms +
          injector_->SampleBrownoutReadLatency(sim_.NowMs());
      meter_.Charge(CostCategory::kObjectStoreGet,
                    cost_->object_store_get_cost);
      if (ledger_ != nullptr) {
        ledger_->Attribute(query_id,
                           static_cast<size_t>(CostCategory::kObjectStoreGet),
                           cost_->object_store_get_cost, 1.0);
      }
      if (duplicate_ms < read_delay_ms) {
        hedged_wins_->Increment();
        read_delay_ms = duplicate_ms;
      }
      const SpanId hedge_ev = tracer_->Instant("shuffle.hedged_read",
                                               sim_.NowMs(), stage_span,
                                               query_id);
      tracer_->Tag(hedge_ev, "delay_ms", std::to_string(read_delay_ms));
    }
  }
  if (read_delay_ms > 0) {
    sim_.ScheduleAfter(read_delay_ms, [this, query_id, stage_id] {
      LaunchStageTasks(query_id, stage_id);
    });
  } else {
    LaunchStageTasks(query_id, stage_id);
  }
}

void CackleEngine::LaunchStageTasks(int64_t query_id, int stage_id) {
  const QueryState& state = queries_[static_cast<size_t>(query_id)];
  const StageProfile& stage =
      state.profile->stages[static_cast<size_t>(stage_id)];
  for (int t = 0; t < stage.num_tasks; ++t) {
    RunTask(TaskRef{query_id, stage_id, /*recovery=*/false},
            stage.TaskDuration(t));
  }
}

void CackleEngine::RunTask(TaskRef ref, SimTimeMs duration_ms) {
  const QueryState& state = queries_[static_cast<size_t>(ref.query_id)];
  if (state.batch) {
    // Batch work (Section 2.1) tolerates delay: run on an idle VM if one
    // exists, otherwise wait for spare provisioned capacity instead of
    // paying the elastic premium.
    if (TryPlaceOnVm(ref, duration_ms)) {
      TaskStarted(ref.query_id);
    } else {
      batch_tasks_delayed_->Increment();
      const SpanId queued = tracer_->Begin("queued", sim_.NowMs(),
                                           TaskParentSpan(ref), ref.query_id);
      batch_queue_.push_back(BatchTask{ref, duration_ms, sim_.NowMs(), queued});
    }
    return;
  }
  TaskStarted(ref.query_id);
  PlaceTask(ref, duration_ms);
}

bool CackleEngine::TryPlaceOnVm(TaskRef ref, SimTimeMs duration_ms) {
  const auto vm = fleet_->TryAcquire(QueryTenant(ref.query_id));
  if (!vm.has_value()) return false;
  tasks_on_vms_->Increment();
  const SimTimeMs dur = std::max<SimTimeMs>(
      1, static_cast<SimTimeMs>(static_cast<double>(duration_ms) /
                                options_.vm_speedup));
  const SpanId span = BeginTaskSpan(ref, "vm", /*speculative=*/false);
  const uint64_t event =
      sim_.ScheduleAfter(dur, [this, ref, vm_id = *vm, dur, span] {
        vm_tasks_.erase(vm_id);
        fleet_->Release(vm_id);
        if (ledger_ != nullptr) {
          // Marginal attribution at the hourly rate for the task's runtime;
          // idle capacity, startup, and minimum-billing rounding stay in
          // the category residual and are distributed by task-milliseconds
          // at finalization.
          ledger_->Attribute(ref.query_id,
                             static_cast<size_t>(CostCategory::kVm),
                             cost_->vm_cost_per_hour *
                                 static_cast<double>(dur) /
                                 static_cast<double>(kMillisPerHour),
                             static_cast<double>(dur));
        }
        tracer_->End(span, sim_.NowMs());
        OnTaskDone(ref);
      });
  vm_tasks_[*vm] = VmTask{ref, duration_ms, event, span};
  return true;
}

SpanId CackleEngine::TaskParentSpan(const TaskRef& ref) const {
  if (ref.recovery) return kInvalidSpan;
  const QueryState& state = queries_[static_cast<size_t>(ref.query_id)];
  if (state.stage_spans.empty()) return kInvalidSpan;
  return state.stage_spans[static_cast<size_t>(ref.stage_id)];
}

SpanId CackleEngine::BeginTaskSpan(const TaskRef& ref, const char* placement,
                                   bool speculative) {
  const SpanId span =
      tracer_->Begin("task", sim_.NowMs(), TaskParentSpan(ref), ref.query_id);
  tracer_->Tag(span, "placement", placement);
  if (ref.recovery) tracer_->Tag(span, "recovery", "true");
  if (speculative) tracer_->Tag(span, "speculative", "true");
  return span;
}

void CackleEngine::AttributeElastic(int64_t query_id, SimTimeMs held_ms) {
  if (ledger_ == nullptr) return;
  // The exact expression ElasticPool::Release bills for the same slot, so
  // direct elastic attribution matches the meter bit for bit.
  ledger_->Attribute(query_id, static_cast<size_t>(CostCategory::kElasticPool),
                     cost_->ElasticCost(held_ms),
                     static_cast<double>(held_ms));
}

void CackleEngine::PlaceTask(TaskRef ref, SimTimeMs duration_ms, int attempt,
                             SimTimeMs backoff_elapsed_ms) {
  if (TryPlaceOnVm(ref, duration_ms)) return;
  PlaceOnElastic(ref, duration_ms, attempt, backoff_elapsed_ms);
}

void CackleEngine::PlaceOnElastic(TaskRef ref, SimTimeMs duration_ms,
                                  int attempt,
                                  SimTimeMs backoff_elapsed_ms) {
  const int64_t run_id = next_elastic_run_id_++;
  const Status admitted = pool_->TryAcquire(
      QueryTenant(ref.query_id),
      [this, run_id](ElasticSlotId slot) { OnElasticGranted(run_id, slot); });
  if (!admitted.ok()) {
    // Throttled by the concurrency limit. With a retry budget configured
    // (elastic_retry.max_elapsed_ms) a task that has already waited out its
    // cumulative budget parks in the deferred queue — the coordinator
    // re-places it a second later with a fresh ladder, so the pool is not
    // hammered by deep-backoff retries during a long outage. Without a
    // budget (the default): queue behind a deterministic exponential
    // backoff, then try a full placement again (a VM may have freed up in
    // the meantime). Either way work is late, never lost.
    if (!elastic_retry_policy_->ShouldRetry(attempt + 1, backoff_elapsed_ms)) {
      retry_budget_exhausted_->Increment();
      deferred_tasks_.push_back(DeferredTask{ref, duration_ms});
      sim_.ScheduleAfter(kMillisPerSecond, [this] { DrainDeferredTasks(); });
      return;
    }
    const SimTimeMs backoff = elastic_retry_policy_->BackoffMs(attempt + 1);
    sim_.ScheduleAfter(
        backoff, [this, ref, duration_ms, attempt, backoff_elapsed_ms,
                  backoff] {
          PlaceTask(ref, duration_ms, attempt + 1,
                    backoff_elapsed_ms + backoff);
        });
    return;
  }
  tasks_on_elastic_->Increment();
  ElasticRun& run = elastic_runs_[run_id];
  run.ref = ref;
  run.duration_ms = duration_ms;
  run.starting = 1;
}

void CackleEngine::OnElasticGranted(int64_t run_id, ElasticSlotId slot) {
  auto it = elastic_runs_.find(run_id);
  if (it == elastic_runs_.end()) {
    // The task completed (or failed over) while this speculative copy was
    // still starting; give the slot straight back. The (zero-duration)
    // charge belongs to no live query — it lands on the overhead row.
    AttributeElastic(CostLedger::kOverheadQueryId, 0);
    pool_->Release(slot);
    return;
  }
  ElasticRun& run = it->second;
  --run.starting;
  SimTimeMs dur = run.duration_ms;
  if (injector_->SampleElasticStraggler()) {
    dur = std::max<SimTimeMs>(
        1, static_cast<SimTimeMs>(
               static_cast<double>(dur) *
               options_.faults.elastic_straggler_slowdown));
  }
  const auto fail_at = injector_->SampleElasticFailure(sim_.NowMs(), dur);
  uint64_t event;
  if (fail_at.has_value()) {
    event = sim_.ScheduleAfter(*fail_at, [this, run_id, slot] {
      OnElasticAttemptFailed(run_id, slot);
    });
  } else {
    event = sim_.ScheduleAfter(dur, [this, run_id, slot] {
      OnElasticAttemptDone(run_id, slot);
    });
  }
  const bool first_attempt = run.live.empty() && !run.speculated;
  const SpanId span =
      BeginTaskSpan(run.ref, "elastic", /*speculative=*/!first_attempt);
  run.live.push_back(ElasticAttempt{slot, event, sim_.NowMs(), span});
  if (first_attempt && SpeculationEnabled()) {
    // Straggler timeout: if the task is still running well past its
    // expected duration (allowing for startup jitter), launch a copy.
    const SimTimeMs timeout =
        std::max<SimTimeMs>(
            1, static_cast<SimTimeMs>(
                   static_cast<double>(run.duration_ms) *
                   options_.straggler_timeout_multiplier)) +
        2 * cost_->elastic_startup_tail_ms;
    sim_.ScheduleAfter(timeout, [this, run_id] { MaybeSpeculate(run_id); });
  }
}

void CackleEngine::OnElasticAttemptDone(int64_t run_id, ElasticSlotId slot) {
  auto it = elastic_runs_.find(run_id);
  CACKLE_CHECK(it != elastic_runs_.end());
  ElasticRun& run = it->second;
  pool_->Release(slot);
  // First finisher wins: cancel and release the speculation loser. Both
  // attempts' slot-time is attributed to the query — the loser's bill is
  // real money the query's straggler mitigation spent.
  for (ElasticAttempt& attempt : run.live) {
    if (attempt.slot != slot) {
      sim_.Cancel(attempt.event);
      pool_->Release(attempt.slot);
      tracer_->Tag(attempt.span, "cancelled", "true");
    }
    AttributeElastic(run.ref.query_id, sim_.NowMs() - attempt.grant_ms);
    tracer_->End(attempt.span, sim_.NowMs());
  }
  const TaskRef ref = run.ref;
  elastic_runs_.erase(it);
  OnTaskDone(ref);
}

void CackleEngine::OnElasticAttemptFailed(int64_t run_id, ElasticSlotId slot) {
  auto it = elastic_runs_.find(run_id);
  CACKLE_CHECK(it != elastic_runs_.end());
  ElasticRun& run = it->second;
  // The invocation died mid-run; its runtime until failure is still billed.
  pool_->Release(slot);
  elastic_failures_->Increment();
  const auto attempt = std::find_if(
      run.live.begin(), run.live.end(),
      [slot](const ElasticAttempt& a) { return a.slot == slot; });
  AttributeElastic(run.ref.query_id, sim_.NowMs() - attempt->grant_ms);
  tracer_->Tag(attempt->span, "failed", "true");
  tracer_->End(attempt->span, sim_.NowMs());
  run.live.erase(attempt);
  if (!run.live.empty() || run.starting > 0) {
    // A speculative sibling is still running (or starting); it carries the
    // task to completion.
    return;
  }
  const TaskRef ref = run.ref;
  const SimTimeMs duration_ms = run.duration_ms;
  elastic_runs_.erase(it);
  // Re-place from scratch, same path as a spot interruption: an idle VM if
  // one appeared, otherwise the pool again.
  PlaceTask(ref, duration_ms);
}

void CackleEngine::MaybeSpeculate(int64_t run_id) {
  auto it = elastic_runs_.find(run_id);
  if (it == elastic_runs_.end()) return;  // task already finished
  ElasticRun& run = it->second;
  if (run.speculated || run.live.size() + run.starting != 1) return;
  run.speculated = true;
  const Status admitted = pool_->TryAcquire(
      QueryTenant(run.ref.query_id),
      [this, run_id](ElasticSlotId slot) { OnElasticGranted(run_id, slot); });
  // A throttled speculative copy is simply skipped — the primary attempt is
  // still running and speculation is best-effort.
  if (!admitted.ok()) return;
  ++run.starting;
  tasks_speculated_->Increment();
  tasks_on_elastic_->Increment();
}

void CackleEngine::DrainBatchQueue() {
  while (!batch_queue_.empty()) {
    const BatchTask task = batch_queue_.front();
    if (TryPlaceOnVm(task.ref, task.duration_ms)) {
      batch_queue_.pop_front();
      tracer_->End(task.queued_span, sim_.NowMs());
    } else if (sim_.NowMs() - task.enqueued_ms >=
               options_.max_batch_delay_ms) {
      // SLA escalation: overdue batch work runs on the elastic pool.
      batch_queue_.pop_front();
      batch_tasks_escalated_->Increment();
      tracer_->Tag(task.queued_span, "escalated", "true");
      tracer_->End(task.queued_span, sim_.NowMs());
      PlaceTask(task.ref, task.duration_ms);
    } else {
      break;
    }
    TaskStarted(task.ref.query_id);
  }
}

void CackleEngine::OnVmInterrupted(VmId vm) {
  auto it = vm_tasks_.find(vm);
  CACKLE_CHECK(it != vm_tasks_.end()) << "interrupted busy VM without task";
  const VmTask task = it->second;
  vm_tasks_.erase(it);
  sim_.Cancel(task.completion_event);
  tasks_retried_->Increment();
  tracer_->Tag(task.span, "interrupted", "true");
  tracer_->End(task.span, sim_.NowMs());
  if (queries_[static_cast<size_t>(task.ref.query_id)].batch) {
    // Batch work goes back to waiting for spare capacity.
    TaskFinished(task.ref.query_id);
    const SpanId queued =
        tracer_->Begin("queued", sim_.NowMs(), TaskParentSpan(task.ref),
                       task.ref.query_id);
    batch_queue_.push_front(
        BatchTask{task.ref, task.duration_ms, sim_.NowMs(), queued});
    return;
  }
  // Retry from scratch; the fleet has already retired the VM, so this
  // lands on another idle VM or (typically) the elastic pool.
  PlaceTask(task.ref, task.duration_ms);
}

void CackleEngine::OnShufflePartitionsLost(int64_t query_id, int stage_id,
                                           int64_t lost_bytes,
                                           int64_t lost_partitions) {
  shuffle_partitions_lost_->Increment(lost_partitions);
  QueryState& state = queries_[static_cast<size_t>(query_id)];
  if (state.done) return;  // released queries hold no shuffle state
  Recovery& rec = recoveries_[{query_id, stage_id}];
  const bool already_running = rec.tasks_remaining > 0;
  rec.lost_bytes += lost_bytes;
  rec.lost_partitions += lost_partitions;
  if (already_running) return;  // fold further losses into the in-flight run
  stages_reexecuted_->Increment();
  const StageProfile& stage =
      state.profile->stages[static_cast<size_t>(stage_id)];
  rec.tasks_remaining = stage.num_tasks;
  for (int t = 0; t < stage.num_tasks; ++t) {
    TaskStarted(query_id);
    PlaceTask(TaskRef{query_id, stage_id, /*recovery=*/true},
              stage.TaskDuration(t));
  }
}

void CackleEngine::OnRecoveryTaskDone(TaskRef ref) {
  auto it = recoveries_.find({ref.query_id, ref.stage_id});
  CACKLE_CHECK(it != recoveries_.end());
  if (--it->second.tasks_remaining > 0) return;
  const Recovery rec = it->second;
  recoveries_.erase(it);
  QueryState& state = queries_[static_cast<size_t>(ref.query_id)];
  // If every consumer finished while we were re-executing, the regenerated
  // partitions are no longer needed.
  if (state.done || !options_.enable_shuffle) return;
  const StageProfile& stage =
      state.profile->stages[static_cast<size_t>(ref.stage_id)];
  // Rewrite the regenerated partitions through the shuffle layer (they land
  // on nodes or spill to the store like any write), billing PUTs
  // proportional to the regenerated share of the stage's output.
  const int64_t puts = std::max<int64_t>(
      1, stage.object_store_puts * rec.lost_bytes /
             std::max<int64_t>(1, stage.shuffle_bytes_out));
  shuffle_->Write(ref.query_id, ref.stage_id, rec.lost_bytes,
                  std::max<int64_t>(1, rec.lost_partitions), puts);
  // Root-level instant: the owning stage span closed when the stage first
  // finished, long before this recovery rewrite.
  const SpanId rewrite_ev = tracer_->Instant("shuffle.rewrite", sim_.NowMs(),
                                             kInvalidSpan, ref.query_id);
  tracer_->Tag(rewrite_ev, "bytes", std::to_string(rec.lost_bytes));
}

void CackleEngine::OnTaskDone(TaskRef ref) {
  TaskFinished(ref.query_id);
  // A slot just freed up; queued batch work can use it.
  if (!batch_queue_.empty()) DrainBatchQueue();
  if (ref.recovery) {
    OnRecoveryTaskDone(ref);
    return;
  }
  if (--TasksRemaining(ref.query_id, static_cast<size_t>(ref.stage_id)) ==
      0) {
    OnStageDone(ref.query_id, ref.stage_id);
  }
}

void CackleEngine::OnStageDone(int64_t query_id, int stage_id) {
  QueryState& state = queries_[static_cast<size_t>(query_id)];
  const StageProfile& stage =
      state.profile->stages[static_cast<size_t>(stage_id)];
  if (options_.enable_shuffle && stage.shuffle_bytes_out > 0) {
    // Producer side: write this stage's output through the shuffle layer.
    int64_t consumer_tasks = 0;
    for (const StageProfile& s : state.profile->stages) {
      for (int dep : s.dependencies) {
        if (dep == stage_id) consumer_tasks += s.num_tasks;
      }
    }
    shuffle_->Write(query_id, stage_id, stage.shuffle_bytes_out,
                    std::max<int64_t>(1, consumer_tasks),
                    stage.object_store_puts);
    const SpanId write_ev = tracer_->Instant(
        "shuffle.write", sim_.NowMs(),
        state.stage_spans[static_cast<size_t>(stage_id)], query_id);
    tracer_->Tag(write_ev, "bytes", std::to_string(stage.shuffle_bytes_out));
  }
  tracer_->End(state.stage_spans[static_cast<size_t>(stage_id)],
               sim_.NowMs());
  if (--state.stages_remaining == 0) {
    OnQueryDone(query_id);
    return;
  }
  for (size_t s = 0; s < state.profile->stages.size(); ++s) {
    for (int dep : state.profile->stages[s].dependencies) {
      if (dep == stage_id && --DepsRemaining(query_id, s) == 0) {
        ScheduleStage(query_id, static_cast<int>(s));
      }
    }
  }
}

void CackleEngine::OnQueryDone(int64_t query_id) {
  QueryState& state = queries_[static_cast<size_t>(query_id)];
  CACKLE_CHECK(!state.done);
  state.done = true;
  const double latency_s = MsToSeconds(sim_.NowMs() - state.arrival_ms);
  EngineResult::TenantOutcome& tenant_outcome = result_.tenants[state.tenant];
  ++tenant_outcome.queries_completed;
  if (state.batch) {
    result_.batch_latencies_s.Add(latency_s);
    batch_latency_s_->Observe(latency_s);
  } else {
    result_.latencies_s.Add(latency_s);
    query_latency_s_->Observe(latency_s);
    tenant_outcome.latencies_s.Add(latency_s);
  }
  tracer_->End(state.span, sim_.NowMs());
  result_.makespan_ms = std::max(result_.makespan_ms, sim_.NowMs());
  queries_completed_->Increment();
  if (options_.enable_shuffle) shuffle_->ReleaseQuery(query_id);
  if (--queries_remaining_ == 0) {
    workload_done_ = true;
    // Stop maintaining capacity so the fleet (and any spot-interruption
    // replacement loop) drains.
    fleet_->SetTarget(0);
  }
}

EngineResult CackleEngine::Run(const std::vector<QueryArrival>& arrivals,
                               const ProfileLibrary& library) {
  queries_.resize(arrivals.size());
  queries_remaining_ = static_cast<int64_t>(arrivals.size());
  // Two passes: offsets first, then one exact allocation for each flat
  // countdown array (SoA layout shared by every query's stages).
  stage_offsets_.resize(arrivals.size());
  int64_t total_stages = 0;
  for (size_t q = 0; q < arrivals.size(); ++q) {
    stage_offsets_[q] = total_stages;
    total_stages += static_cast<int64_t>(
        library.at(arrivals[q].profile_index).stages.size());
  }
  deps_remaining_.resize(static_cast<size_t>(total_stages));
  tasks_remaining_.resize(static_cast<size_t>(total_stages));
  // Multi-tenant bookkeeping is engaged by any nonzero tenant id or any
  // per-tenant knob; otherwise every per-tenant code path stays dormant and
  // the run is bit-identical to the single-tenant engine.
  multi_tenant_ = !options_.admission.per_tenant.empty() ||
                  !options_.tenant_reserved_vms.empty() ||
                  !options_.tenant_elastic_limits.empty();
  for (size_t q = 0; q < arrivals.size(); ++q) {
    QueryState& state = queries_[q];
    state.profile = &library.at(arrivals[q].profile_index);
    state.arrival_ms = arrivals[q].arrival_ms;
    state.batch = arrivals[q].batch;
    state.tenant = arrivals[q].tenant;
    CACKLE_CHECK_GE(state.tenant, 0) << "negative tenant id";
    if (state.tenant != 0) {
      multi_tenant_ = true;
      if (ledger_ != nullptr) {
        ledger_->SetTenant(static_cast<int64_t>(q), state.tenant);
      }
    }
    state.stages_remaining = static_cast<int>(state.profile->stages.size());
    for (size_t s = 0; s < state.profile->stages.size(); ++s) {
      DepsRemaining(static_cast<int64_t>(q), s) = static_cast<int32_t>(
          state.profile->stages[s].dependencies.size());
      TasksRemaining(static_cast<int64_t>(q), s) =
          static_cast<int32_t>(state.profile->stages[s].num_tasks);
    }
    sim_.ScheduleAt(state.arrival_ms, [this, q] {
      OnQueryArrival(static_cast<int64_t>(q));
    });
  }
  if (arrivals.empty()) workload_done_ = true;

  // Cold-start priming: replay the expected demand through the history and
  // the strategy so expert weights are differentiated before t=0. The
  // replay is bookkeeping only — no resources are provisioned for it.
  for (int64_t expected : options_.primed_history) {
    history_.Append(std::max<int64_t>(0, expected));
    strategy_->Target(history_);
  }

  // The coordinator ticks from t=0 until the workload drains.
  sim_.ScheduleAt(0, [this] { CoordinatorTick(); });
  sim_.RunToCompletion();
  // Every arrival is accounted for: completed, or explicitly shed by
  // admission control. Degradation is late or shed work — never silent loss.
  CACKLE_CHECK_EQ(queries_completed_->value() + queries_shed_->value(),
                  static_cast<int64_t>(arrivals.size()));
  CACKLE_CHECK_EQ(running_tasks_, 0);
  CACKLE_CHECK(batch_queue_.empty());
  CACKLE_CHECK(admission_queues_.empty()) << "queries stuck in admission";
  CACKLE_CHECK_EQ(admission_queued_total_, 0);
  CACKLE_CHECK(deferred_tasks_.empty()) << "tasks stuck in deferral";
  // End-of-run leak invariants: every resource the engine acquired must
  // have been returned — a leaked slot or in-flight retry is a bug, not a
  // rounding error.
  CACKLE_CHECK_EQ(pool_->num_active(), 0) << "leaked elastic slots";
  CACKLE_CHECK(elastic_runs_.empty()) << "leaked elastic task state";
  CACKLE_CHECK(vm_tasks_.empty()) << "leaked VM task state";
  CACKLE_CHECK(recoveries_.empty()) << "unfinished shuffle recovery";

  // Drain fleets and flush billing.
  fleet_->SetTarget(0);
  fleet_->TerminateAll();
  if (options_.enable_shuffle) shuffle_->Shutdown();
  // Coordinator rental for the workload duration.
  meter_.Charge(CostCategory::kCoordinator,
                cost_->coordinator_cost_per_hour *
                    MsToSeconds(result_.makespan_ms) / 3600.0);

  // Fold every component's lifetime totals into the registry, then fill the
  // result struct from it — the registry is the single source of truth for
  // event counts (EngineResult keeps its fields for callers and plots).
  fleet_->ExportMetrics(metrics_, mn::kPrefixVmFleet);
  pool_->ExportMetrics(metrics_, mn::kPrefixElasticPool);
  object_store_->ExportMetrics(metrics_, mn::kPrefixObjectStore);
  if (options_.enable_shuffle) {
    shuffle_->ExportMetrics(metrics_, mn::kPrefixShuffle);
  }
  metrics_->SetCounter(mn::kEngineMakespanMs, result_.makespan_ms);
  metrics_->SetGauge(mn::kEnginePeakConcurrentTasks,
                     static_cast<double>(result_.peak_concurrent_tasks));
  {
    // Scheduler internals: implementation-dependent (heap vs calendar), so
    // these are observability only and excluded from golden comparisons.
    const Simulation::Stats& ss = sim_.stats();
    metrics_->SetCounter(mn::kSimEventsScheduled, ss.scheduled);
    metrics_->SetCounter(mn::kSimEventsExecuted, sim_.executed_events());
    metrics_->SetCounter(mn::kSimEventsCancelled, ss.cancelled);
    metrics_->SetCounter(mn::kSimCompactions, ss.compactions);
    metrics_->SetCounter(mn::kSimTombstonesPurged, ss.tombstones_purged);
    metrics_->SetCounter(mn::kSimCalendarResizes, ss.calendar_resizes);
    metrics_->SetCounter(mn::kSimOverflowMigrations, ss.overflow_migrations);
    metrics_->SetGauge(mn::kSimPeakQueueEntries,
                       static_cast<double>(ss.peak_queue_entries));
  }
  metrics_->SetGauge(mn::kEngineAdmissionQueuePeak,
                     static_cast<double>(admission_queue_peak_));
  metrics_->SetGauge(mn::kEngineTenantCount,
                     static_cast<double>(result_.tenants.size()));
  metrics_->SetCounter(mn::kEngineTenantDrrRounds, drr_rounds_);
  metrics_->SetCounter(mn::kEngineTenantCapDeferrals, tenant_cap_deferrals_);
  metrics_->SetGauge(mn::kEngineTenantQueuePeak,
                     static_cast<double>(tenant_queue_peak_));
  if (const ChaosTimeline* timeline = injector_->timeline()) {
    // Timeline shape gauges: how much chaos this run was exposed to.
    metrics_->SetGauge(mn::kChaosOutageWindows,
                       static_cast<double>(timeline->outage_windows().size()));
    metrics_->SetGauge(mn::kChaosOutageMs,
                       static_cast<double>(
                           ChaosTimeline::TotalMs(timeline->outage_windows())));
    metrics_->SetGauge(mn::kChaosStormWindows,
                       static_cast<double>(timeline->storm_windows().size()));
    metrics_->SetGauge(mn::kChaosStormMs,
                       static_cast<double>(
                           ChaosTimeline::TotalMs(timeline->storm_windows())));
    metrics_->SetGauge(
        mn::kChaosBrownoutWindows,
        static_cast<double>(timeline->brownout_windows().size()));
    metrics_->SetGauge(mn::kChaosBrownoutMs,
                       static_cast<double>(ChaosTimeline::TotalMs(
                           timeline->brownout_windows())));
    metrics_->SetGauge(
        mn::kChaosPriceShockWindows,
        static_cast<double>(timeline->price_shock_windows().size()));
    metrics_->SetGauge(mn::kChaosPriceShockMs,
                       static_cast<double>(ChaosTimeline::TotalMs(
                           timeline->price_shock_windows())));
  }

  result_.tasks_on_vms = tasks_on_vms_->value();
  result_.tasks_on_elastic = tasks_on_elastic_->value();
  result_.tasks_retried = tasks_retried_->value();
  result_.tasks_speculated = tasks_speculated_->value();
  result_.batch_tasks_delayed = batch_tasks_delayed_->value();
  result_.batch_tasks_escalated = batch_tasks_escalated_->value();
  result_.elastic_failures = elastic_failures_->value();
  result_.stages_reexecuted = stages_reexecuted_->value();
  result_.shuffle_partitions_lost = shuffle_partitions_lost_->value();
  result_.queries_completed = queries_completed_->value();
  result_.queries_shed = queries_shed_->value();
  result_.queries_deferred = queries_deferred_->value();
  result_.admission_queue_peak = admission_queue_peak_;
  result_.tenant_cap_deferrals = tenant_cap_deferrals_;
  result_.tenant_queue_peak = tenant_queue_peak_;
  result_.retry_budget_exhausted = retry_budget_exhausted_->value();
  result_.hedged_reads = hedged_reads_->value();
  result_.hedged_wins = hedged_wins_->value();
  result_.storm_reclaims = storm_reclaims_->value();
  if (object_store_->circuit_breaker() != nullptr) {
    result_.store_circuit_trips = object_store_->circuit_breaker()->trips();
    result_.store_circuit_rejections =
        object_store_->circuit_breaker()->rejections();
  }
  result_.shuffle_fallback_bytes = metrics_->CounterValue(
      JoinMetricName(mn::kPrefixShuffle, mn::kSuffixFallbackBytes));
  result_.shuffle_written_bytes = metrics_->CounterValue(
      JoinMetricName(mn::kPrefixShuffle, mn::kSuffixWrittenBytes));
  result_.shuffle_nodes_crashed = metrics_->CounterValue(
      JoinMetricName(mn::kPrefixShuffle, mn::kSuffixNodesCrashed));
  result_.vms_interrupted = metrics_->CounterValue(
      JoinMetricName(mn::kPrefixVmFleet, mn::kSuffixVmsInterrupted));
  result_.elastic_throttled = metrics_->CounterValue(
      JoinMetricName(mn::kPrefixElasticPool, mn::kSuffixThrottled));
  result_.store_retries = metrics_->CounterValue(
      JoinMetricName(mn::kPrefixObjectStore, mn::kSuffixRetries));
  result_.vm_launch_failures =
      metrics_->CounterValue(
          JoinMetricName(mn::kPrefixVmFleet, mn::kSuffixLaunchFailures)) +
      metrics_->CounterValue(
          JoinMetricName(mn::kPrefixShuffle, mn::kSuffixFleet) +
          mn::kSuffixLaunchFailures);

  if (ledger_ != nullptr) {
    // Close the attribution books against the final bill. Directly
    // unattributable spend (VM idle/startup/rounding, the shuffle-node
    // fleet, interrupted partial runs) distributes over per-query usage
    // weights; the coordinator rental, with no usage, falls to overhead.
    std::vector<double> billed(
        static_cast<size_t>(CostCategory::kNumCategories));
    for (size_t c = 0; c < billed.size(); ++c) {
      billed[c] = meter_.CategoryDollars(static_cast<CostCategory>(c));
    }
    ledger_->FinalizeAgainst(billed);
    // Per-tenant invoices: each tenant's exact share of the final bill
    // (overhead — idle capacity, coordinator rental — is its own invoice
    // under the ledger's overhead tenant, not silently spread here).
    for (auto& [tenant, outcome] : result_.tenants) {
      outcome.invoice_dollars = ledger_->TenantDollars(tenant);
    }
  }
  result_.billing = meter_;
  return result_;
}

}  // namespace cackle
