#ifndef CACKLE_ENGINE_ENGINE_H_
#define CACKLE_ENGINE_ENGINE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cloud/billing.h"
#include "cloud/cost_model.h"
#include "cloud/elastic_pool.h"
#include "cloud/fault_injector.h"
#include "cloud/object_store.h"
#include "cloud/vm_fleet.h"
#include "common/observability.h"
#include "common/retry_policy.h"
#include "common/stats.h"
#include "engine/shuffle_layer.h"
#include "sim/simulation.h"
#include "strategy/dynamic_strategy.h"
#include "strategy/workload_history.h"
#include "workload/profile_library.h"
#include "workload/workload_generator.h"

namespace cackle {

/// \brief Configuration of an engine run.
struct EngineOptions {
  /// Provisioning policy for the compute fleet. When `use_dynamic` is false,
  /// a fixed target of `fixed_target` VMs is used instead (fixed_0 = pure
  /// elastic execution, i.e. Starling).
  bool use_dynamic = true;
  int64_t fixed_target = 0;
  DynamicStrategyOptions dynamic;

  /// Model the shuffling layer (shuffle nodes + object-store fallback).
  bool enable_shuffle = true;

  /// Relative task speed on provisioned VMs. The paper's algorithm assumes
  /// parity (1.0) but measures VMs ~25% faster in practice (Section 7.1.2);
  /// set 1.25 to reproduce that divergence.
  double vm_speedup = 1.0;

  /// Record per-second series (demand, target, active VMs) for Figure 12.
  bool record_series = false;

  /// Upper bound on how long a batch task waits for an idle VM before it
  /// escalates to the elastic pool anyway (batch work tolerates delay but
  /// still has an SLA).
  SimTimeMs max_batch_delay_ms = 30 * kMillisPerMinute;

  /// Spot interruptions: mean VM lifetime in hours before the provider
  /// reclaims it (exponentially distributed); 0 disables. Tasks running on
  /// a reclaimed VM are retried immediately (usually on the elastic pool).
  double spot_mean_lifetime_hours = 0.0;

  /// Injected fault rates for the cloud substrate (all zero by default,
  /// which is bit-identical to a fault-free run).
  FaultProfile faults;

  /// Backoff policy for elastic placements rejected by the concurrency
  /// limit. Unlimited attempts: a task is never dropped, it keeps backing
  /// off (capped) until the pool admits it or a VM frees up.
  RetryPolicyOptions elastic_retry{/*max_attempts=*/0,
                                   /*initial_backoff_ms=*/200,
                                   /*multiplier=*/2.0,
                                   /*max_backoff_ms=*/10'000,
                                   /*jitter=*/0.25,
                                   /*deadline_ms=*/0};

  /// Straggler mitigation: an elastic task still running after
  /// `straggler_timeout_multiplier` times its expected duration gets a
  /// speculative second copy; first finisher wins. Active only when the
  /// fault profile injects stragglers; 0 disables speculation entirely.
  double straggler_timeout_multiplier = 2.0;

  /// Cold-start priming (Section 4.4.6): an expected demand curve appended
  /// to the workload history before execution begins, so the meta-strategy
  /// starts with differentiated expert weights instead of fluctuating
  /// through the first minutes. Empty = cold start.
  std::vector<int64_t> primed_history;

  /// Observability sink (not owned; must outlive the engine). When set, the
  /// engine records metrics, per-query spans, and per-query cost
  /// attribution into it; null disables recording. Either way the run is
  /// bit-identical — every sink is pure bookkeeping (no randomness, no
  /// scheduled events), the same zero-cost contract as the fault injector.
  Observability* observability = nullptr;

  uint64_t seed = 1234;
};

/// \brief Result of an engine run.
struct EngineResult {
  /// Interactive query latencies; batch queries are tracked separately.
  SampleSet latencies_s;
  SampleSet batch_latencies_s;
  BillingMeter billing;
  SimTimeMs makespan_ms = 0;
  int64_t tasks_on_vms = 0;
  int64_t tasks_on_elastic = 0;
  int64_t queries_completed = 0;
  int64_t peak_concurrent_tasks = 0;
  /// Tasks restarted because their VM was reclaimed mid-run.
  int64_t tasks_retried = 0;
  int64_t vms_interrupted = 0;
  /// Batch tasks that waited in the batch queue for an idle VM.
  int64_t batch_tasks_delayed = 0;
  /// Batch tasks that hit max_batch_delay and ran on the elastic pool.
  int64_t batch_tasks_escalated = 0;
  int64_t shuffle_fallback_bytes = 0;
  int64_t shuffle_written_bytes = 0;
  // --- Chaos counters (all zero when no faults are injected) ---
  /// Elastic requests rejected by the concurrency limit (then backed off).
  int64_t elastic_throttled = 0;
  /// Elastic invocations that failed mid-run and were re-placed.
  int64_t elastic_failures = 0;
  /// Object-store request attempts beyond the first (transient errors).
  int64_t store_retries = 0;
  /// VM/shuffle-node launches that failed and were re-requested.
  int64_t vm_launch_failures = 0;
  /// Shuffle nodes crashed by fault injection.
  int64_t shuffle_nodes_crashed = 0;
  /// Node-resident shuffle partitions destroyed by crashes.
  int64_t shuffle_partitions_lost = 0;
  /// Producing stages re-executed to regenerate lost partitions.
  int64_t stages_reexecuted = 0;
  /// Speculative copies launched for straggling elastic tasks.
  int64_t tasks_speculated = 0;
  /// Per-second series (when requested).
  std::vector<int64_t> demand_series;
  std::vector<int64_t> target_series;
  std::vector<int64_t> active_vm_series;

  double compute_cost() const { return billing.ComputeDollars(); }
  double total_cost() const { return billing.TotalDollars(); }
};

/// \brief The Cackle engine running against the simulated cloud substrate.
///
/// This is the "real execution" track that validates the analytical model
/// (Figures 12/13): a coordinator receives query DAGs, schedules every task
/// the moment its stage is ready — on an idle provisioned VM if one exists,
/// otherwise on the elastic pool — keeps the second-granularity workload
/// history, and re-runs the provisioning strategy every second (the dynamic
/// meta-strategy re-selects its expert every five). The shuffling layer
/// stores stage outputs on shuffle nodes with object-store fallback.
///
/// Graceful degradation under injected faults: throttled elastic requests
/// back off and retry, mid-run invocation failures re-place the task (same
/// path as spot interruptions), lost shuffle partitions re-execute their
/// producing stage, and straggling elastic tasks get a speculative copy.
/// Every fault path preserves the invariant that all queries complete.
class CackleEngine {
 public:
  CackleEngine(const CostModel* cost, EngineOptions options);
  ~CackleEngine();

  /// Runs the workload to completion and returns measurements.
  EngineResult Run(const std::vector<QueryArrival>& arrivals,
                   const ProfileLibrary& library);

 private:
  struct QueryState;

  /// Identifies the logical task a placement belongs to. `recovery` marks
  /// re-execution of an already-finished stage to regenerate shuffle
  /// partitions lost to a node crash; recovery completions feed the
  /// recovery bookkeeping instead of the stage DAG.
  struct TaskRef {
    int64_t query_id = 0;
    int stage_id = 0;
    bool recovery = false;
  };

  void CoordinatorTick();
  void OnQueryArrival(int64_t query_id);
  void ScheduleStage(int64_t query_id, int stage_id);
  void RunTask(TaskRef ref, SimTimeMs duration_ms);
  /// Places a (possibly retried) task on a VM or the elastic pool without
  /// touching the running-task accounting. `attempt` counts elastic
  /// throttle rejections for backoff growth.
  void PlaceTask(TaskRef ref, SimTimeMs duration_ms, int attempt = 0);
  /// VM-only placement; returns false when no idle VM exists.
  bool TryPlaceOnVm(TaskRef ref, SimTimeMs duration_ms);
  /// Elastic placement with throttle backoff, fault sampling, and
  /// speculative re-execution.
  void PlaceOnElastic(TaskRef ref, SimTimeMs duration_ms, int attempt);
  void OnElasticGranted(int64_t run_id, ElasticSlotId slot);
  void OnElasticAttemptDone(int64_t run_id, ElasticSlotId slot);
  void OnElasticAttemptFailed(int64_t run_id, ElasticSlotId slot);
  void MaybeSpeculate(int64_t run_id);
  bool SpeculationEnabled() const {
    return options_.straggler_timeout_multiplier > 0.0 &&
           options_.faults.elastic_straggler_rate > 0.0;
  }
  /// Starts queued batch tasks on idle VMs (escalating overdue ones).
  void DrainBatchQueue();
  /// Parent span for a task of `ref`: its stage span, except recovery
  /// re-executions, which can outlive the query span and therefore trace
  /// as roots (tagged with their query).
  SpanId TaskParentSpan(const TaskRef& ref) const;
  /// Opens a "task" span tagged with its placement; no-op when disabled.
  SpanId BeginTaskSpan(const TaskRef& ref, const char* placement,
                       bool speculative);
  /// Attributes one elastic slot's bill (the exact ElasticCost the pool
  /// charges for `held_ms`) to `query_id`.
  void AttributeElastic(int64_t query_id, SimTimeMs held_ms);
  void OnVmInterrupted(VmId vm);
  void OnShufflePartitionsLost(int64_t query_id, int stage_id,
                               int64_t lost_bytes, int64_t lost_partitions);
  void OnRecoveryTaskDone(TaskRef ref);
  void OnTaskDone(TaskRef ref);
  void OnStageDone(int64_t query_id, int stage_id);
  void OnQueryDone(int64_t query_id);

  const CostModel* cost_;
  EngineOptions options_;

  Simulation sim_;
  BillingMeter meter_;
  std::unique_ptr<FaultInjector> injector_;
  Rng chaos_rng_;
  std::unique_ptr<RetryPolicy> elastic_retry_policy_;
  std::unique_ptr<VmFleet> fleet_;
  std::unique_ptr<ElasticPool> pool_;
  std::unique_ptr<ObjectStore> object_store_;
  std::unique_ptr<ShuffleLayer> shuffle_;
  std::unique_ptr<ProvisioningStrategy> strategy_;
  WorkloadHistory history_;

  struct VmTask {
    TaskRef ref;
    SimTimeMs duration_ms;
    uint64_t completion_event;
    SpanId span = kInvalidSpan;
  };

  struct BatchTask {
    TaskRef ref;
    SimTimeMs duration_ms;
    SimTimeMs enqueued_ms;
    SpanId queued_span = kInvalidSpan;
  };

  /// One granted elastic slot executing (one attempt of) a task.
  struct ElasticAttempt {
    ElasticSlotId slot = 0;
    uint64_t event = 0;       // completion/failure event, cancellable
    SimTimeMs grant_ms = 0;   // when the slot started (and began billing)
    SpanId span = kInvalidSpan;
  };

  /// One logical elastic task: its primary attempt plus (at most) one
  /// speculative copy. Slots in `live` are granted and running; `starting`
  /// counts admitted requests still inside their startup latency.
  struct ElasticRun {
    TaskRef ref;
    SimTimeMs duration_ms = 0;
    int starting = 0;
    bool speculated = false;
    std::vector<ElasticAttempt> live;
  };

  /// Re-execution of a producing stage after a shuffle-node crash.
  struct Recovery {
    int tasks_remaining = 0;
    int64_t lost_bytes = 0;
    int64_t lost_partitions = 0;
  };

  /// Observability plumbing. `metrics_` always points at a live registry —
  /// the external sink's when one is attached, otherwise `own_metrics_` —
  /// so the hot-path counters below are unconditional. `tracer_` likewise
  /// points at a disabled tracer when no sink is attached (Begin() then
  /// returns kInvalidSpan and every other call no-ops). `ledger_` is null
  /// when disabled.
  Observability* obs_ = nullptr;
  MetricsRegistry own_metrics_;
  Tracer disabled_tracer_;
  MetricsRegistry* metrics_ = nullptr;
  Tracer* tracer_ = nullptr;
  CostLedger* ledger_ = nullptr;
  /// Cached handles into `metrics_` (the registry is the source of truth
  /// for these counts; EngineResult is filled from it at the end of Run).
  Counter* tasks_on_vms_ = nullptr;
  Counter* tasks_on_elastic_ = nullptr;
  Counter* tasks_retried_ = nullptr;
  Counter* tasks_speculated_ = nullptr;
  Counter* batch_tasks_delayed_ = nullptr;
  Counter* batch_tasks_escalated_ = nullptr;
  Counter* elastic_failures_ = nullptr;
  Counter* stages_reexecuted_ = nullptr;
  Counter* shuffle_partitions_lost_ = nullptr;
  Counter* queries_completed_ = nullptr;
  Histogram* query_latency_s_ = nullptr;
  Histogram* batch_latency_s_ = nullptr;

  std::vector<QueryState> queries_;
  std::deque<BatchTask> batch_queue_;
  std::unordered_map<VmId, VmTask> vm_tasks_;
  std::unordered_map<int64_t, ElasticRun> elastic_runs_;
  int64_t next_elastic_run_id_ = 0;
  std::map<std::pair<int64_t, int>, Recovery> recoveries_;
  EngineResult result_;
  int64_t running_tasks_ = 0;
  int64_t second_max_tasks_ = 0;
  int64_t queries_remaining_ = 0;
  bool workload_done_ = false;
};

}  // namespace cackle

#endif  // CACKLE_ENGINE_ENGINE_H_
