#ifndef CACKLE_ENGINE_ENGINE_H_
#define CACKLE_ENGINE_ENGINE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cloud/billing.h"
#include "cloud/chaos_timeline.h"
#include "cloud/cost_model.h"
#include "cloud/elastic_pool.h"
#include "cloud/fault_injector.h"
#include "cloud/object_store.h"
#include "cloud/spot_market.h"
#include "cloud/vm_fleet.h"
#include "common/circuit_breaker.h"
#include "common/observability.h"
#include "common/retry_policy.h"
#include "common/stats.h"
#include "common/thread_annotations.h"
#include "engine/shuffle_layer.h"
#include "sim/simulation.h"
#include "strategy/dynamic_strategy.h"
#include "strategy/workload_history.h"
#include "workload/profile_library.h"
#include "workload/workload_generator.h"

namespace cackle {

/// \brief Per-tenant overrides for admission control. Every field has an
/// "inherit the global knob" default, so an empty policy changes nothing.
struct TenantAdmissionPolicy {
  /// DRR quantum: queries this tenant may admit per round-robin turn. A
  /// tenant with weight 3 admits (up to) three queries for every one a
  /// weight-1 tenant admits when both have backlogs. 0 = inherit
  /// `default_tenant_weight`.
  int64_t weight = 0;
  /// Cap on this tenant's concurrently running tasks; arrivals beyond it
  /// are deferred even when the global threshold has room. 0 = no cap.
  int64_t max_outstanding_tasks = 0;
  /// Per-tenant shed SLO; -1 = inherit the global `shed_after_ms`.
  SimTimeMs shed_after_ms = -1;
};

/// \brief Admission control for graceful degradation under chaos. Disabled
/// by default: every arriving query starts immediately, exactly as before.
struct AdmissionControlOptions {
  /// Survivability threshold: a query arriving while at least this many
  /// tasks are running (or while earlier arrivals of its tenant are already
  /// queued) is deferred to the admission queue instead of started. 0
  /// disables admission control entirely.
  int64_t max_outstanding_tasks = 0;
  /// SLO deadline for queued *interactive* queries: one still waiting for
  /// admission this long after arrival is shed — a first-class outcome, not
  /// lost work. Batch queries are never shed (they tolerate delay by
  /// definition). 0 = defer indefinitely, never shed.
  SimTimeMs shed_after_ms = 0;
  /// DRR quantum for tenants without a per_tenant override. With a single
  /// tenant the weighted round-robin degenerates to the plain FIFO queue,
  /// bit-identical to the pre-multi-tenant scheduler.
  int64_t default_tenant_weight = 1;
  /// Per-tenant overrides (weight, outstanding-task cap, shed SLO).
  std::map<int32_t, TenantAdmissionPolicy> per_tenant;

  bool enabled() const { return max_outstanding_tasks > 0; }
};

/// \brief Configuration of an engine run.
struct EngineOptions {
  /// Provisioning policy for the compute fleet. When `use_dynamic` is false,
  /// a fixed target of `fixed_target` VMs is used instead (fixed_0 = pure
  /// elastic execution, i.e. Starling).
  bool use_dynamic = true;
  int64_t fixed_target = 0;
  DynamicStrategyOptions dynamic;

  /// Model the shuffling layer (shuffle nodes + object-store fallback).
  bool enable_shuffle = true;

  /// Relative task speed on provisioned VMs. The paper's algorithm assumes
  /// parity (1.0) but measures VMs ~25% faster in practice (Section 7.1.2);
  /// set 1.25 to reproduce that divergence.
  double vm_speedup = 1.0;

  /// Record per-second series (demand, target, active VMs) for Figure 12.
  bool record_series = false;

  /// Upper bound on how long a batch task waits for an idle VM before it
  /// escalates to the elastic pool anyway (batch work tolerates delay but
  /// still has an SLA).
  SimTimeMs max_batch_delay_ms = 30 * kMillisPerMinute;

  /// Spot interruptions: mean VM lifetime in hours before the provider
  /// reclaims it (exponentially distributed); 0 disables. Tasks running on
  /// a reclaimed VM are retried immediately (usually on the elastic pool).
  double spot_mean_lifetime_hours = 0.0;

  /// Injected fault rates for the cloud substrate (all zero by default,
  /// which is bit-identical to a fault-free run).
  FaultProfile faults;

  /// Temporal fault processes (outage windows, reclamation storms, store
  /// brownouts, price shocks) layered on top of the memoryless rates. The
  /// default (no processes) adds no timeline and is bit-identical.
  ChaosTimelineOptions chaos;

  /// Backoff policy for elastic placements rejected by the concurrency
  /// limit. Unlimited attempts: a task is never dropped, it keeps backing
  /// off (capped) until the pool admits it or a VM frees up. Setting
  /// `max_elapsed_ms` adds a retry *budget*: a task throttled for that much
  /// cumulative simulated time stops hammering the pool and parks in a
  /// deferred queue the coordinator re-admits later (still never lost).
  RetryPolicyOptions elastic_retry{/*max_attempts=*/0,
                                   /*initial_backoff_ms=*/200,
                                   /*multiplier=*/2.0,
                                   /*max_backoff_ms=*/10'000,
                                   /*jitter=*/0.25,
                                   /*deadline_ms=*/0};

  /// Admission control / load shedding (disabled by default).
  AdmissionControlOptions admission;

  /// Shared-vs-dedicated fleet policy (both empty by default = one shared
  /// fleet, exactly the single-tenant behaviour). `tenant_reserved_vms`
  /// carves dedicated capacity out of the provisioned fleet: idle VMs are
  /// held back from other tenants until each reserving tenant runs at least
  /// its reservation, and the provisioning target is floored at the sum of
  /// reservations while the workload is live. `tenant_elastic_limits` caps
  /// a tenant's in-flight elastic slots (its requests beyond the cap are
  /// throttled and follow the normal backoff/deferral path).
  std::map<int32_t, int64_t> tenant_reserved_vms;
  std::map<int32_t, int64_t> tenant_elastic_limits;

  /// Circuit breaker on the object store's retrying Put/Get wrappers
  /// (disabled by default: zero failure_threshold).
  CircuitBreakerOptions store_breaker;

  /// Hedged shuffle reads: when a brownout inflates a stage's store-read
  /// latency beyond this, issue (and bill) a duplicate GET and take the
  /// faster of the two. 0 disables hedging.
  SimTimeMs hedge_after_ms = 0;

  /// Straggler mitigation: an elastic task still running after
  /// `straggler_timeout_multiplier` times its expected duration gets a
  /// speculative second copy; first finisher wins. Active only when the
  /// fault profile injects stragglers; 0 disables speculation entirely.
  double straggler_timeout_multiplier = 2.0;

  /// Cold-start priming (Section 4.4.6): an expected demand curve appended
  /// to the workload history before execution begins, so the meta-strategy
  /// starts with differentiated expert weights instead of fluctuating
  /// through the first minutes. Empty = cold start.
  std::vector<int64_t> primed_history;

  /// Observability sink (not owned; must outlive the engine). When set, the
  /// engine records metrics, per-query spans, and per-query cost
  /// attribution into it; null disables recording. Either way the run is
  /// bit-identical — every sink is pure bookkeeping (no randomness, no
  /// scheduled events), the same zero-cost contract as the fault injector.
  Observability* observability = nullptr;

  /// Event-scheduler backend and tuning for the simulation kernel. Both
  /// schedulers are bit-identical by contract (sim_differential_test); the
  /// knob exists so tests and benches can run the same workload under each.
  SimOptions sim;

  uint64_t seed = 1234;
};

/// \brief Result of an engine run.
struct EngineResult {
  /// Interactive query latencies; batch queries are tracked separately.
  SampleSet latencies_s;
  SampleSet batch_latencies_s;
  BillingMeter billing;
  SimTimeMs makespan_ms = 0;
  int64_t tasks_on_vms = 0;
  int64_t tasks_on_elastic = 0;
  int64_t queries_completed = 0;
  int64_t peak_concurrent_tasks = 0;
  /// Tasks restarted because their VM was reclaimed mid-run.
  int64_t tasks_retried = 0;
  int64_t vms_interrupted = 0;
  /// Batch tasks that waited in the batch queue for an idle VM.
  int64_t batch_tasks_delayed = 0;
  /// Batch tasks that hit max_batch_delay and ran on the elastic pool.
  int64_t batch_tasks_escalated = 0;
  int64_t shuffle_fallback_bytes = 0;
  int64_t shuffle_written_bytes = 0;
  // --- Chaos counters (all zero when no faults are injected) ---
  /// Elastic requests rejected by the concurrency limit (then backed off).
  int64_t elastic_throttled = 0;
  /// Elastic invocations that failed mid-run and were re-placed.
  int64_t elastic_failures = 0;
  /// Object-store request attempts beyond the first (transient errors).
  int64_t store_retries = 0;
  /// VM/shuffle-node launches that failed and were re-requested.
  int64_t vm_launch_failures = 0;
  /// Shuffle nodes crashed by fault injection.
  int64_t shuffle_nodes_crashed = 0;
  /// Node-resident shuffle partitions destroyed by crashes.
  int64_t shuffle_partitions_lost = 0;
  /// Producing stages re-executed to regenerate lost partitions.
  int64_t stages_reexecuted = 0;
  /// Speculative copies launched for straggling elastic tasks.
  int64_t tasks_speculated = 0;
  // --- Graceful-degradation outcomes (all zero without chaos knobs) ---
  /// Interactive queries shed by admission control after missing their
  /// queueing SLO. Shed queries are first-class outcomes: they appear in
  /// the cost ledger (as zero-cost rows) and queries_completed +
  /// queries_shed always equals the arrival count.
  int64_t queries_shed = 0;
  /// Queries that waited in the admission queue before starting.
  int64_t queries_deferred = 0;
  /// Peak admission-queue length observed.
  int64_t admission_queue_peak = 0;
  /// Elastic placements that exhausted their cumulative retry budget and
  /// were parked for later re-admission.
  int64_t retry_budget_exhausted = 0;
  /// Brownout-delayed shuffle reads that issued a hedged duplicate GET.
  int64_t hedged_reads = 0;
  /// Hedged duplicates that beat the original read.
  int64_t hedged_wins = 0;
  /// VMs reclaimed by reclamation-storm bursts (also in vms_interrupted).
  int64_t storm_reclaims = 0;
  /// Object-store circuit breaker: closed->open trips.
  int64_t store_circuit_trips = 0;
  /// Attempts rejected (unbilled) while the breaker was open.
  int64_t store_circuit_rejections = 0;
  // --- Multi-tenant outcomes ---
  /// Per-tenant slice of the run, keyed by tenant id (a single-tenant run
  /// has one entry, for tenant 0). Latencies are interactive-only,
  /// mirroring `latencies_s`; `invoice_dollars` is the tenant's exact share
  /// of the final bill (the ledger's tenant invoice total; 0 when no
  /// observability ledger is attached).
  struct TenantOutcome {
    int64_t queries_completed = 0;
    int64_t queries_shed = 0;
    int64_t queries_deferred = 0;
    double invoice_dollars = 0.0;
    SampleSet latencies_s;
  };
  std::map<int32_t, TenantOutcome> tenants;
  /// Arrivals deferred purely by their tenant's outstanding-task cap (the
  /// global survivability threshold still had room).
  int64_t tenant_cap_deferrals = 0;
  /// Peak length of any single tenant's admission queue.
  int64_t tenant_queue_peak = 0;
  /// Per-second series (when requested).
  std::vector<int64_t> demand_series;
  std::vector<int64_t> target_series;
  std::vector<int64_t> active_vm_series;

  double compute_cost() const { return billing.ComputeDollars(); }
  double total_cost() const { return billing.TotalDollars(); }
};

/// \brief The Cackle engine running against the simulated cloud substrate.
///
/// This is the "real execution" track that validates the analytical model
/// (Figures 12/13): a coordinator receives query DAGs, schedules every task
/// the moment its stage is ready — on an idle provisioned VM if one exists,
/// otherwise on the elastic pool — keeps the second-granularity workload
/// history, and re-runs the provisioning strategy every second (the dynamic
/// meta-strategy re-selects its expert every five). The shuffling layer
/// stores stage outputs on shuffle nodes with object-store fallback.
///
/// Graceful degradation under injected faults: throttled elastic requests
/// back off and retry, mid-run invocation failures re-place the task (same
/// path as spot interruptions), lost shuffle partitions re-execute their
/// producing stage, and straggling elastic tasks get a speculative copy.
/// Every fault path preserves the invariant that all queries complete.
class CACKLE_THREAD_CONFINED(
    "admission queues and all scheduling state belong to one "
    "single-threaded Simulation; sweeps parallelize across engines, "
    "never within one")
CackleEngine {
 public:
  CackleEngine(const CostModel* cost, EngineOptions options);
  ~CackleEngine();

  /// Runs the workload to completion and returns measurements.
  EngineResult Run(const std::vector<QueryArrival>& arrivals,
                   const ProfileLibrary& library);

 private:
  struct QueryState;

  /// Identifies the logical task a placement belongs to. `recovery` marks
  /// re-execution of an already-finished stage to regenerate shuffle
  /// partitions lost to a node crash; recovery completions feed the
  /// recovery bookkeeping instead of the stage DAG.
  struct TaskRef {
    int64_t query_id = 0;
    int stage_id = 0;
    bool recovery = false;
  };

  void CoordinatorTick();
  /// Arrival entry point: starts the query immediately, or defers it to the
  /// admission queue when admission control is on and the engine is over
  /// its survivability threshold.
  void OnQueryArrival(int64_t query_id);
  /// Opens the query span and schedules its ready stages.
  void StartQuery(int64_t query_id);
  /// Sheds a queued interactive query that missed its queueing SLO: a
  /// first-class outcome (counted, traced, zero-cost ledger row), never
  /// silent loss.
  void ShedQuery(int64_t query_id);
  /// Sheds overdue queued queries (per-tenant SLO), then admits across the
  /// tenant queues by weighted deficit round robin while below the
  /// survivability threshold. With one tenant this is exactly the old
  /// global FIFO drain.
  void DrainAdmissionQueue();
  /// Re-places tasks parked by an exhausted elastic retry budget.
  void DrainDeferredTasks();
  void ScheduleStage(int64_t query_id, int stage_id);
  /// Launches every task of a scheduled stage (split out of ScheduleStage
  /// so brownout-delayed shuffle reads can defer the launch).
  void LaunchStageTasks(int64_t query_id, int stage_id);
  void RunTask(TaskRef ref, SimTimeMs duration_ms);
  /// Places a (possibly retried) task on a VM or the elastic pool without
  /// touching the running-task accounting. `attempt` counts elastic
  /// throttle rejections for backoff growth; `backoff_elapsed_ms` is the
  /// cumulative throttle backoff already spent, charged against the elastic
  /// retry budget when one is configured.
  void PlaceTask(TaskRef ref, SimTimeMs duration_ms, int attempt = 0,
                 SimTimeMs backoff_elapsed_ms = 0);
  /// VM-only placement; returns false when no idle VM exists.
  bool TryPlaceOnVm(TaskRef ref, SimTimeMs duration_ms);
  /// Elastic placement with throttle backoff, fault sampling, and
  /// speculative re-execution.
  void PlaceOnElastic(TaskRef ref, SimTimeMs duration_ms, int attempt,
                      SimTimeMs backoff_elapsed_ms);
  void OnElasticGranted(int64_t run_id, ElasticSlotId slot);
  void OnElasticAttemptDone(int64_t run_id, ElasticSlotId slot);
  void OnElasticAttemptFailed(int64_t run_id, ElasticSlotId slot);
  void MaybeSpeculate(int64_t run_id);
  bool SpeculationEnabled() const {
    return options_.straggler_timeout_multiplier > 0.0 &&
           options_.faults.elastic_straggler_rate > 0.0;
  }
  /// Starts queued batch tasks on idle VMs (escalating overdue ones).
  void DrainBatchQueue();
  /// Parent span for a task of `ref`: its stage span, except recovery
  /// re-executions, which can outlive the query span and therefore trace
  /// as roots (tagged with their query).
  SpanId TaskParentSpan(const TaskRef& ref) const;
  /// Opens a "task" span tagged with its placement; no-op when disabled.
  SpanId BeginTaskSpan(const TaskRef& ref, const char* placement,
                       bool speculative);
  /// Attributes one elastic slot's bill (the exact ElasticCost the pool
  /// charges for `held_ms`) to `query_id`.
  void AttributeElastic(int64_t query_id, SimTimeMs held_ms);
  void OnVmInterrupted(VmId vm);
  void OnShufflePartitionsLost(int64_t query_id, int stage_id,
                               int64_t lost_bytes, int64_t lost_partitions);
  void OnRecoveryTaskDone(TaskRef ref);
  void OnTaskDone(TaskRef ref);
  void OnStageDone(int64_t query_id, int stage_id);
  void OnQueryDone(int64_t query_id);
  int32_t QueryTenant(int64_t query_id) const;
  /// Effective per-tenant admission knobs: the per_tenant override when one
  /// is set, otherwise the global default.
  int64_t TenantWeight(int32_t tenant) const;
  SimTimeMs TenantShedAfter(int32_t tenant) const;
  int64_t TenantMaxOutstanding(int32_t tenant) const;
  int64_t RunningOf(int32_t tenant) const;
  /// Running-task accounting: the global counter plus (in multi-tenant runs
  /// only) the per-tenant mirror feeding caps and the demand mix.
  void TaskStarted(int64_t query_id);
  void TaskFinished(int64_t query_id);

  const CostModel* cost_;
  EngineOptions options_;

  Simulation sim_;
  BillingMeter meter_;
  std::unique_ptr<FaultInjector> injector_;
  Rng chaos_rng_;
  std::unique_ptr<RetryPolicy> elastic_retry_policy_;
  /// Non-null only when the chaos timeline has price shocks: the main
  /// fleet's VMs are then priced by this market instead of the flat rate.
  std::unique_ptr<SpotMarket> spot_market_;
  std::unique_ptr<VmFleet> fleet_;
  std::unique_ptr<ElasticPool> pool_;
  std::unique_ptr<ObjectStore> object_store_;
  std::unique_ptr<ShuffleLayer> shuffle_;
  std::unique_ptr<ProvisioningStrategy> strategy_;
  WorkloadHistory history_;

  struct VmTask {
    TaskRef ref;
    SimTimeMs duration_ms;
    uint64_t completion_event;
    SpanId span = kInvalidSpan;
  };

  struct BatchTask {
    TaskRef ref;
    SimTimeMs duration_ms;
    SimTimeMs enqueued_ms;
    SpanId queued_span = kInvalidSpan;
  };

  /// A query waiting in the admission queue.
  struct AdmissionEntry {
    int64_t query_id = 0;
    SimTimeMs arrival_ms = 0;
  };

  /// A task parked after exhausting its elastic retry budget; re-placed by
  /// the next coordinator drain with a fresh budget.
  struct DeferredTask {
    TaskRef ref;
    SimTimeMs duration_ms = 0;
  };

  /// One granted elastic slot executing (one attempt of) a task.
  struct ElasticAttempt {
    ElasticSlotId slot = 0;
    uint64_t event = 0;       // completion/failure event, cancellable
    SimTimeMs grant_ms = 0;   // when the slot started (and began billing)
    SpanId span = kInvalidSpan;
  };

  /// One logical elastic task: its primary attempt plus (at most) one
  /// speculative copy. Slots in `live` are granted and running; `starting`
  /// counts admitted requests still inside their startup latency.
  struct ElasticRun {
    TaskRef ref;
    SimTimeMs duration_ms = 0;
    int starting = 0;
    bool speculated = false;
    std::vector<ElasticAttempt> live;
  };

  /// Re-execution of a producing stage after a shuffle-node crash.
  struct Recovery {
    int tasks_remaining = 0;
    int64_t lost_bytes = 0;
    int64_t lost_partitions = 0;
  };

  /// Observability plumbing. `metrics_` always points at a live registry —
  /// the external sink's when one is attached, otherwise `own_metrics_` —
  /// so the hot-path counters below are unconditional. `tracer_` likewise
  /// points at a disabled tracer when no sink is attached (Begin() then
  /// returns kInvalidSpan and every other call no-ops). `ledger_` is null
  /// when disabled.
  Observability* obs_ = nullptr;
  MetricsRegistry own_metrics_;
  Tracer disabled_tracer_;
  MetricsRegistry* metrics_ = nullptr;
  Tracer* tracer_ = nullptr;
  CostLedger* ledger_ = nullptr;
  /// Cached handles into `metrics_` (the registry is the source of truth
  /// for these counts; EngineResult is filled from it at the end of Run).
  Counter* tasks_on_vms_ = nullptr;
  Counter* tasks_on_elastic_ = nullptr;
  Counter* tasks_retried_ = nullptr;
  Counter* tasks_speculated_ = nullptr;
  Counter* batch_tasks_delayed_ = nullptr;
  Counter* batch_tasks_escalated_ = nullptr;
  Counter* elastic_failures_ = nullptr;
  Counter* stages_reexecuted_ = nullptr;
  Counter* shuffle_partitions_lost_ = nullptr;
  Counter* queries_completed_ = nullptr;
  Counter* queries_shed_ = nullptr;
  Counter* queries_deferred_ = nullptr;
  Counter* retry_budget_exhausted_ = nullptr;
  Counter* hedged_reads_ = nullptr;
  Counter* hedged_wins_ = nullptr;
  Counter* storm_reclaims_ = nullptr;
  Histogram* query_latency_s_ = nullptr;
  Histogram* batch_latency_s_ = nullptr;

  std::vector<QueryState> queries_;
  /// Stage countdown bookkeeping in struct-of-arrays layout: one flat
  /// int32 array per counter kind for ALL queries' stages, indexed by
  /// `stage_offsets_[query] + stage`. OnTaskDone/OnStageDone decrement
  /// these on every simulated task completion; keeping them contiguous
  /// (instead of a per-query heap vector inside QueryState) removes a
  /// pointer chase from the hottest loop in the simulator and keeps
  /// neighbouring queries' counters on shared cache lines.
  std::vector<int32_t> deps_remaining_;
  std::vector<int32_t> tasks_remaining_;
  std::vector<int64_t> stage_offsets_;
  int32_t& DepsRemaining(int64_t query_id, size_t stage) {
    return deps_remaining_[static_cast<size_t>(
                               stage_offsets_[static_cast<size_t>(query_id)]) +
                           stage];
  }
  int32_t& TasksRemaining(int64_t query_id, size_t stage) {
    return tasks_remaining_[static_cast<size_t>(stage_offsets_[static_cast<
                                size_t>(query_id)]) +
                            stage];
  }
  std::deque<BatchTask> batch_queue_;
  /// One admission queue per tenant, present only while non-empty (map
  /// order gives the deterministic tenant visit order). `deficit` is the
  /// DRR credit left in the tenant's current turn; it resets when the queue
  /// drains or the turn ends, and only carries across drains when a turn is
  /// cut short by the global capacity limit.
  struct TenantQueue {
    std::deque<AdmissionEntry> entries;
    int64_t deficit = 0;
  };
  std::map<int32_t, TenantQueue> admission_queues_;
  int64_t admission_queued_total_ = 0;
  /// Resume point of the round-robin scan: the first tenant with id >= the
  /// cursor is served next (wrapping past the largest id).
  int32_t drr_cursor_ = 0;
  std::deque<DeferredTask> deferred_tasks_;
  int64_t admission_queue_peak_ = 0;
  int64_t tenant_queue_peak_ = 0;
  int64_t drr_rounds_ = 0;
  int64_t tenant_cap_deferrals_ = 0;
  std::unordered_map<VmId, VmTask> vm_tasks_;
  std::unordered_map<int64_t, ElasticRun> elastic_runs_;
  int64_t next_elastic_run_id_ = 0;
  std::map<std::pair<int64_t, int>, Recovery> recoveries_;
  EngineResult result_;
  int64_t running_tasks_ = 0;
  int64_t second_max_tasks_ = 0;
  /// True when any arrival carries a nonzero tenant id or any per-tenant
  /// knob is set; gates the per-tenant mirrors below so single-tenant hot
  /// paths never touch them.
  bool multi_tenant_ = false;
  std::map<int32_t, int64_t> running_by_tenant_;
  std::map<int32_t, int64_t> second_max_by_tenant_;
  int64_t queries_remaining_ = 0;
  bool workload_done_ = false;
};

}  // namespace cackle

#endif  // CACKLE_ENGINE_ENGINE_H_
