#include "engine/scenario.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace cackle {

namespace {

// Source-tree default for the scenario library; targets that consume
// scenarios compile it in, and the CACKLE_SCENARIO_DIR environment variable
// overrides it at runtime (e.g. for out-of-tree test harnesses).
#ifndef CACKLE_SCENARIO_DIR
#define CACKLE_SCENARIO_DIR "bench/scenarios"
#endif

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool ParseInt64Value(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* parse_end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &parse_end, 10);
  if (errno != 0 || parse_end != s.c_str() + s.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseUint64Value(const std::string& s, uint64_t* out) {
  if (s.empty() || s[0] == '-') return false;
  char* parse_end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &parse_end, 10);
  if (errno != 0 || parse_end != s.c_str() + s.size()) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseDoubleValue(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* parse_end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &parse_end);
  if (errno != 0 || parse_end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

// One settable field: dotted key plus a typed destination in the scenario.
// A table keeps the parser exhaustive and the error message for an unknown
// key trivially correct.
struct FieldBinding {
  const char* key;
  enum Kind { kInt64, kUint64, kDouble, kString } kind;
  void* dest;
};

Status ApplyBinding(const FieldBinding& binding, const std::string& value) {
  switch (binding.kind) {
    case FieldBinding::kInt64:
      if (!ParseInt64Value(value, static_cast<int64_t*>(binding.dest))) {
        return Status::InvalidArgument("scenario key '" +
                                       std::string(binding.key) +
                                       "': bad integer '" + value + "'");
      }
      return Status::OK();
    case FieldBinding::kUint64:
      if (!ParseUint64Value(value, static_cast<uint64_t*>(binding.dest))) {
        return Status::InvalidArgument(
            "scenario key '" + std::string(binding.key) +
            "': bad unsigned integer '" + value + "'");
      }
      return Status::OK();
    case FieldBinding::kDouble:
      if (!ParseDoubleValue(value, static_cast<double*>(binding.dest))) {
        return Status::InvalidArgument("scenario key '" +
                                       std::string(binding.key) +
                                       "': bad number '" + value + "'");
      }
      return Status::OK();
    case FieldBinding::kString:
      *static_cast<std::string*>(binding.dest) = value;
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

std::vector<FieldBinding> Bindings(ChaosScenario* s) {
  return {
      {"name", FieldBinding::kString, &s->name},
      {"description", FieldBinding::kString, &s->description},
      {"seed", FieldBinding::kUint64, &s->seed},
      {"workload.num_queries", FieldBinding::kInt64,
       &s->workload.num_queries},
      {"workload.duration_ms", FieldBinding::kInt64,
       &s->workload.duration_ms},
      {"workload.baseline_load", FieldBinding::kDouble,
       &s->workload.baseline_load},
      {"workload.arrival_period_ms", FieldBinding::kInt64,
       &s->workload.arrival_period_ms},
      {"workload.batch_fraction", FieldBinding::kDouble,
       &s->workload.batch_fraction},
      {"workload.seed", FieldBinding::kUint64, &s->workload.seed},
      {"faults.elastic_failure_rate", FieldBinding::kDouble,
       &s->faults.elastic_failure_rate},
      {"faults.elastic_concurrency_limit", FieldBinding::kInt64,
       &s->faults.elastic_concurrency_limit},
      {"faults.elastic_straggler_rate", FieldBinding::kDouble,
       &s->faults.elastic_straggler_rate},
      {"faults.elastic_straggler_slowdown", FieldBinding::kDouble,
       &s->faults.elastic_straggler_slowdown},
      {"faults.store_error_rate", FieldBinding::kDouble,
       &s->faults.store_error_rate},
      {"faults.vm_launch_failure_rate", FieldBinding::kDouble,
       &s->faults.vm_launch_failure_rate},
      {"faults.shuffle_crash_rate_per_hour", FieldBinding::kDouble,
       &s->faults.shuffle_crash_rate_per_hour},
      {"chaos.horizon_ms", FieldBinding::kInt64, &s->chaos.horizon_ms},
      {"chaos.outage.windows_per_hour", FieldBinding::kDouble,
       &s->chaos.outage.windows_per_hour},
      {"chaos.outage.mean_window_ms", FieldBinding::kInt64,
       &s->chaos.outage.mean_window_ms},
      {"chaos.outage.elastic_failure_fraction", FieldBinding::kDouble,
       &s->chaos.outage.elastic_failure_fraction},
      {"chaos.storm.storms_per_hour", FieldBinding::kDouble,
       &s->chaos.storm.storms_per_hour},
      {"chaos.storm.mean_storm_ms", FieldBinding::kInt64,
       &s->chaos.storm.mean_storm_ms},
      {"chaos.storm.reclaim_fraction_per_minute", FieldBinding::kDouble,
       &s->chaos.storm.reclaim_fraction_per_minute},
      {"chaos.brownout.windows_per_hour", FieldBinding::kDouble,
       &s->chaos.brownout.windows_per_hour},
      {"chaos.brownout.mean_window_ms", FieldBinding::kInt64,
       &s->chaos.brownout.mean_window_ms},
      {"chaos.brownout.store_error_rate", FieldBinding::kDouble,
       &s->chaos.brownout.store_error_rate},
      {"chaos.brownout.base_read_latency_ms", FieldBinding::kInt64,
       &s->chaos.brownout.base_read_latency_ms},
      {"chaos.brownout.latency_inflation", FieldBinding::kDouble,
       &s->chaos.brownout.latency_inflation},
      {"chaos.brownout.tail_probability", FieldBinding::kDouble,
       &s->chaos.brownout.tail_probability},
      {"chaos.brownout.tail_multiplier", FieldBinding::kDouble,
       &s->chaos.brownout.tail_multiplier},
      {"chaos.price_shock.shocks_per_hour", FieldBinding::kDouble,
       &s->chaos.price_shock.shocks_per_hour},
      {"chaos.price_shock.mean_shock_ms", FieldBinding::kInt64,
       &s->chaos.price_shock.mean_shock_ms},
      {"chaos.price_shock.price_multiplier", FieldBinding::kDouble,
       &s->chaos.price_shock.price_multiplier},
      {"spot_mean_lifetime_hours", FieldBinding::kDouble,
       &s->spot_mean_lifetime_hours},
      {"admission.max_outstanding_tasks", FieldBinding::kInt64,
       &s->admission.max_outstanding_tasks},
      {"admission.shed_after_ms", FieldBinding::kInt64,
       &s->admission.shed_after_ms},
      {"retry_budget_ms", FieldBinding::kInt64, &s->retry_budget_ms},
      {"hedge_after_ms", FieldBinding::kInt64, &s->hedge_after_ms},
      {"breaker.failure_threshold", FieldBinding::kInt64,
       &s->store_breaker.failure_threshold},
      {"breaker.open_ms", FieldBinding::kInt64, &s->store_breaker.open_ms},
      {"breaker.success_threshold", FieldBinding::kInt64,
       &s->store_breaker.success_threshold},
  };
}

bool AnyChaosProcess(const ChaosTimelineOptions& chaos) {
  return chaos.outage.enabled() || chaos.storm.enabled() ||
         chaos.brownout.enabled() || chaos.price_shock.enabled();
}

}  // namespace

EngineOptions ChaosScenario::ToEngineOptions() const {
  EngineOptions opts;
  opts.seed = seed;
  opts.faults = faults;
  opts.chaos = chaos;
  if (opts.chaos.horizon_ms == 0 && AnyChaosProcess(chaos)) {
    // Cover the arrival window plus a short drain tail. The tail is kept
    // modest on purpose: the renewal processes spread their windows over
    // the whole horizon, so a horizon much longer than the run would
    // silently dilute the per-hour rates the scenario asked for.
    opts.chaos.horizon_ms = workload.duration_ms + kMillisPerHour / 2;
  }
  opts.spot_mean_lifetime_hours = spot_mean_lifetime_hours;
  opts.admission = admission;
  opts.elastic_retry.max_elapsed_ms = retry_budget_ms;
  opts.hedge_after_ms = hedge_after_ms;
  opts.store_breaker = store_breaker;
  return opts;
}

EngineOptions ChaosScenario::ToFaultFreeEngineOptions() const {
  EngineOptions opts = ToEngineOptions();
  opts.faults = FaultProfile{};
  opts.chaos = ChaosTimelineOptions{};
  opts.spot_mean_lifetime_hours = 0.0;
  // No admission control either: the baseline answers "what would these
  // queries have cost/taken on a healthy substrate", so nothing is shed.
  opts.admission = AdmissionControlOptions{};
  opts.store_breaker = CircuitBreakerOptions{};
  opts.hedge_after_ms = 0;
  opts.elastic_retry.max_elapsed_ms = 0;
  return opts;
}

StatusOr<ChaosScenario> ParseScenario(const std::string& text) {
  ChaosScenario scenario;
  const std::vector<FieldBinding> bindings = Bindings(&scenario);
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("scenario line " +
                                     std::to_string(line_number) +
                                     ": expected 'key = value', got '" +
                                     line + "'");
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    if (key.empty()) {
      return Status::InvalidArgument("scenario line " +
                                     std::to_string(line_number) +
                                     ": empty key");
    }
    bool matched = false;
    for (const FieldBinding& binding : bindings) {
      if (key == binding.key) {
        Status status = ApplyBinding(binding, value);
        if (!status.ok()) return status;
        matched = true;
        break;
      }
    }
    if (!matched) {
      // Unknown keys are hard errors: a typo must not silently weaken the
      // fault environment a test believes it is running under.
      return Status::InvalidArgument("scenario line " +
                                     std::to_string(line_number) +
                                     ": unknown key '" + key + "'");
    }
  }
  if (scenario.name.empty()) {
    return Status::InvalidArgument("scenario is missing a 'name'");
  }
  return scenario;
}

StatusOr<ChaosScenario> LoadScenarioFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open scenario file " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseScenario(buffer.str());
}

std::string ScenarioDir() {
  const char* env = std::getenv("CACKLE_SCENARIO_DIR");
  if (env != nullptr && env[0] != '\0') return env;
  return CACKLE_SCENARIO_DIR;
}

StatusOr<ChaosScenario> LoadNamedScenario(const std::string& name) {
  return LoadScenarioFile(ScenarioDir() + "/" + name + ".scenario");
}

}  // namespace cackle
