#ifndef CACKLE_ENGINE_SCENARIO_H_
#define CACKLE_ENGINE_SCENARIO_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "engine/engine.h"
#include "workload/workload_generator.h"

namespace cackle {

/// \brief A named, seeded chaos scenario: one workload plus one fault
/// environment plus the engine's survival knobs, loadable from the data
/// files in bench/scenarios/.
///
/// Scenarios are data, not code, so the adversarial library can grow
/// without recompiling: each `<name>.scenario` file is a flat list of
/// `key = value` lines (`#` comments, blank lines ignored) with dotted keys
/// mirroring this struct. Unknown keys are an error — a typo must not
/// silently weaken a scenario.
struct ChaosScenario {
  std::string name;
  std::string description;
  uint64_t seed = 1234;

  /// Workload shape (arrival process, size, batch mix).
  WorkloadOptions workload;

  /// Memoryless fault rates.
  FaultProfile faults;
  /// Temporal fault processes. A zero horizon is defaulted by
  /// ToEngineOptions to cover the workload (duration + 2h drain).
  ChaosTimelineOptions chaos;

  /// Per-VM exponential-lifetime spot interruptions; 0 disables.
  double spot_mean_lifetime_hours = 0.0;
  /// Admission control / shedding.
  AdmissionControlOptions admission;
  /// Cumulative elastic retry budget (elastic_retry.max_elapsed_ms).
  SimTimeMs retry_budget_ms = 0;
  /// Hedged-read threshold; 0 disables.
  SimTimeMs hedge_after_ms = 0;
  /// Object-store circuit breaker; zero threshold disables.
  CircuitBreakerOptions store_breaker;

  /// Engine options for the chaos run (dynamic strategy; callers may adjust
  /// strategy/observability afterwards).
  EngineOptions ToEngineOptions() const;

  /// The matched fault-free baseline: same workload, same seed, same
  /// strategy, but no faults, no chaos timeline, no spot interruptions and
  /// no admission control — the run this scenario's p99/cost degradation is
  /// measured against.
  EngineOptions ToFaultFreeEngineOptions() const;
};

/// Parses scenario text (the `key = value` format described above).
[[nodiscard]] StatusOr<ChaosScenario> ParseScenario(const std::string& text);

/// Reads and parses one scenario file.
[[nodiscard]] StatusOr<ChaosScenario> LoadScenarioFile(
    const std::string& path);

/// Directory holding the checked-in scenario library: the
/// CACKLE_SCENARIO_DIR environment variable when set, otherwise the
/// source-tree path compiled into the library.
std::string ScenarioDir();

/// Loads `<ScenarioDir()>/<name>.scenario`.
[[nodiscard]] StatusOr<ChaosScenario> LoadNamedScenario(
    const std::string& name);

}  // namespace cackle

#endif  // CACKLE_ENGINE_SCENARIO_H_
