#include "engine/shuffle_layer.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metric_names.h"

namespace cackle {

ShuffleLayer::ShuffleLayer(Simulation* sim, const CostModel* cost,
                           BillingMeter* meter, ObjectStore* object_store)
    : sim_(sim), cost_(cost), meter_(meter), object_store_(object_store),
      fleet_(sim, cost, meter, /*market=*/nullptr,
             CostCategory::kShuffleNode),
      provisioner_(cost) {}

void ShuffleLayer::SetFaultInjector(FaultInjector* injector) {
  injector_ = injector;
  fleet_.SetFaultInjector(injector);
}

void ShuffleLayer::Tick() {
  if (injector_ != nullptr) {
    const int64_t crashes = injector_->SampleShuffleCrashes(
        fleet_.num_ready(), kMillisPerSecond);
    for (int64_t c = 0; c < crashes; ++c) CrashOneNode();
  }
  const int64_t target = provisioner_.Step(resident_bytes_);
  fleet_.SetTarget(target);
}

void ShuffleLayer::CrashOneNode() {
  const int64_t nodes_before = fleet_.num_ready();
  if (nodes_before <= 0) return;
  if (!fleet_.InterruptOneIdle()) return;
  ++total_nodes_crashed_;

  // With uniform hash placement the crashed node held ~1/n of every stage's
  // node-resident partitions. Collect losses first (sorted for
  // deterministic callback order), then mutate and notify.
  struct Loss {
    int64_t query_id;
    int stage_id;
    int64_t bytes;
    int64_t partitions;
  };
  std::vector<Loss> losses;
  for (auto& [query_id, stages] : queries_) {
    for (auto& [stage_id, state] : stages) {
      if (state.node_partitions <= 0 || state.node_bytes <= 0) continue;
      int64_t lost_partitions =
          std::max<int64_t>(1, state.node_partitions / nodes_before);
      lost_partitions = std::min(lost_partitions, state.node_partitions);
      const int64_t lost_bytes =
          state.node_bytes * lost_partitions / state.node_partitions;
      losses.push_back(Loss{query_id, stage_id, lost_bytes, lost_partitions});
    }
  }
  std::sort(losses.begin(), losses.end(), [](const Loss& a, const Loss& b) {
    return a.query_id != b.query_id ? a.query_id < b.query_id
                                    : a.stage_id < b.stage_id;
  });
  for (const Loss& loss : losses) {
    StageState& state = queries_[loss.query_id][loss.stage_id];
    state.node_partitions -= loss.partitions;
    state.node_bytes -= loss.bytes;
    node_used_bytes_ -= loss.bytes;
    resident_bytes_ -= loss.bytes;
    total_partitions_lost_ += loss.partitions;
  }
  CACKLE_CHECK_GE(node_used_bytes_, 0);
  CACKLE_CHECK_GE(resident_bytes_, 0);
  if (on_partitions_lost_) {
    for (const Loss& loss : losses) {
      on_partitions_lost_(loss.query_id, loss.stage_id, loss.bytes,
                          loss.partitions);
    }
  }
}

double ShuffleLayer::Write(int64_t query_id, int stage_id,
                           int64_t total_bytes, int64_t num_partitions,
                           int64_t object_store_puts) {
  CACKLE_CHECK_GE(total_bytes, 0);
  CACKLE_CHECK_GT(num_partitions, 0);
  StageState& state = queries_[query_id][stage_id];
  total_written_bytes_ += total_bytes;

  // Each partition is hashed to a node and spills to the object store when
  // the node (modelled as a share of the aggregate fleet memory) is full.
  // Writing partition-by-partition against the aggregate capacity gives the
  // same proportional spill behaviour as per-node occupancy with uniform
  // hashing, without tracking one counter per node per stage.
  const int64_t capacity = node_capacity_bytes();
  const int64_t partition_bytes =
      (total_bytes + num_partitions - 1) / num_partitions;
  int64_t written_to_nodes = 0;
  int64_t node_partitions = 0;
  int64_t written_to_store = 0;
  for (int64_t p = 0; p < num_partitions; ++p) {
    const int64_t bytes =
        std::min(partition_bytes, total_bytes - p * partition_bytes);
    if (bytes <= 0) break;
    if (node_used_bytes_ + bytes <= capacity) {
      node_used_bytes_ += bytes;
      written_to_nodes += bytes;
      ++node_partitions;
    } else {
      written_to_store += bytes;
    }
  }
  state.node_bytes += written_to_nodes;
  state.node_partitions += node_partitions;
  state.store_bytes += written_to_store;
  resident_bytes_ += written_to_nodes + written_to_store;
  total_fallback_bytes_ += written_to_store;

  double fallback_fraction = 0.0;
  if (total_bytes > 0) {
    fallback_fraction = static_cast<double>(written_to_store) /
                        static_cast<double>(total_bytes);
  }
  if (written_to_nodes > 0 && ledger_ != nullptr) {
    // Usage weight for splitting the shared shuffle-node bill: bytes this
    // query parked on provisioned node memory.
    ledger_->AddUsage(query_id,
                      static_cast<size_t>(CostCategory::kShuffleNode),
                      static_cast<double>(written_to_nodes));
  }
  if (written_to_store > 0) {
    // Bill the object-store PUTs proportional to the spilled share.
    const int64_t puts = std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(object_store_puts) *
                                    fallback_fraction +
                                0.5));
    const std::string key = "shuffle/q" + std::to_string(query_id) + "/s" +
                            std::to_string(stage_id) + "/t" +
                            std::to_string(sim_->NowMs()) + "/n" +
                            std::to_string(state.store_keys.size());
    const double put_dollars_before =
        meter_->CategoryDollars(CostCategory::kObjectStorePut);
    object_store_->Put(key, written_to_store);
    state.store_keys.push_back(key);
    // The single tracked object stands in for `puts` request charges.
    for (int64_t i = 1; i < puts; ++i) {
      meter_->Charge(CostCategory::kObjectStorePut,
                     cost_->object_store_put_cost);
    }
    if (ledger_ != nullptr) {
      // The meter delta captures retried attempts inside Put() too, so the
      // attribution matches the bill cent for cent.
      ledger_->Attribute(
          query_id, static_cast<size_t>(CostCategory::kObjectStorePut),
          meter_->CategoryDollars(CostCategory::kObjectStorePut) -
              put_dollars_before,
          static_cast<double>(puts));
    }
  }
  return fallback_fraction;
}

double ShuffleLayer::Read(int64_t query_id, int stage_id,
                          int64_t object_store_gets) {
  auto qit = queries_.find(query_id);
  if (qit == queries_.end()) {
    // A read for state this layer never saw written is an engine
    // bookkeeping bug in the making; count it instead of hiding it so
    // tests (and dashboards) can assert the counter stays zero.
    ++total_unmatched_reads_;
    return 0.0;
  }
  auto sit = qit->second.find(stage_id);
  if (sit == qit->second.end()) {
    ++total_unmatched_reads_;
    return 0.0;
  }
  const StageState& state = sit->second;
  const int64_t total = state.node_bytes + state.store_bytes;
  if (total == 0 || state.store_bytes == 0) return 0.0;
  const double store_fraction =
      static_cast<double>(state.store_bytes) / static_cast<double>(total);
  const int64_t gets = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(object_store_gets) *
                                  store_fraction +
                              0.5));
  for (int64_t i = 0; i < gets; ++i) {
    meter_->Charge(CostCategory::kObjectStoreGet,
                   cost_->object_store_get_cost);
  }
  if (ledger_ != nullptr) {
    ledger_->Attribute(query_id,
                       static_cast<size_t>(CostCategory::kObjectStoreGet),
                       static_cast<double>(gets) *
                           cost_->object_store_get_cost,
                       static_cast<double>(gets));
  }
  return store_fraction;
}

void ShuffleLayer::ReleaseQuery(int64_t query_id) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) return;
  for (auto& [stage_id, state] : it->second) {
    node_used_bytes_ -= state.node_bytes;
    resident_bytes_ -= state.node_bytes + state.store_bytes;
    for (const std::string& key : state.store_keys) {
      object_store_->Delete(key);
    }
  }
  CACKLE_CHECK_GE(node_used_bytes_, 0);
  CACKLE_CHECK_GE(resident_bytes_, 0);
  queries_.erase(it);
}

void ShuffleLayer::Shutdown() {
  // Leak invariants: all intermediate state must have been released by
  // ReleaseQuery before the layer drains; a nonzero residue means a query
  // leaked bytes (or the engine shut down with live queries).
  CACKLE_CHECK(queries_.empty())
      << "shuffle layer shut down with " << queries_.size()
      << " unreleased queries";
  CACKLE_CHECK_EQ(resident_bytes_, 0) << "resident shuffle bytes leaked";
  CACKLE_CHECK_EQ(node_used_bytes_, 0) << "shuffle node bytes leaked";
  fleet_.SetTarget(0);
  // Remaining terminations happen as the simulation drains; TerminateAll
  // flushes billing for nodes past their minimum billing window.
  fleet_.TerminateAll();
}

void ShuffleLayer::ExportMetrics(MetricsRegistry* metrics,
                                 const std::string& prefix) const {
  namespace mn = metric_names;
  metrics->SetCounter(prefix + mn::kSuffixWrittenBytes, total_written_bytes_);
  metrics->SetCounter(prefix + mn::kSuffixFallbackBytes,
                      total_fallback_bytes_);
  metrics->SetCounter(prefix + mn::kSuffixNodesCrashed, total_nodes_crashed_);
  metrics->SetCounter(prefix + mn::kSuffixPartitionsLost,
                      total_partitions_lost_);
  metrics->SetCounter(prefix + mn::kSuffixUnmatchedReads,
                      total_unmatched_reads_);
  metrics->SetGauge(prefix + mn::kSuffixResidentBytes,
                    static_cast<double>(resident_bytes_));
  fleet_.ExportMetrics(metrics, prefix + mn::kSuffixFleet);
}

}  // namespace cackle
