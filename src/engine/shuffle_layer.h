#ifndef CACKLE_ENGINE_SHUFFLE_LAYER_H_
#define CACKLE_ENGINE_SHUFFLE_LAYER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloud/billing.h"
#include "cloud/cost_model.h"
#include "cloud/fault_injector.h"
#include "cloud/object_store.h"
#include "cloud/vm_fleet.h"
#include "common/cost_ledger.h"
#include "common/metrics.h"
#include "sim/simulation.h"
#include "strategy/shuffle_provisioner.h"

namespace cackle {

/// \brief Cackle's shuffling layer (Sections 3 and 7.1.3): a fleet of
/// provisioned shuffle nodes acting as bounded in-memory key-value stores,
/// with cloud object storage as the per-request-billed elastic fallback.
///
/// Writers hash each shuffle partition's destination to pick a node, try two
/// more nodes when the first is full, then fall back to the object store —
/// the same policy as the implementation the paper describes. Intermediate
/// state lives until the owning query completes, then is garbage collected
/// (object-store deletes are free).
///
/// Node provisioning follows the Section 5.6 policy via ShuffleProvisioner
/// and the shared VmFleet lifecycle (spot startup delay, minimum billing).
///
/// With a FaultInjector attached, shuffle nodes crash at the profile's rate.
/// A crash reclaims the node (the maintained fleet target replaces it) and
/// destroys its uniform-hashing share of every stage's node-resident
/// partitions; the loss callback lets the engine re-execute the producing
/// stage. Object-store-resident partitions survive crashes.
class ShuffleLayer {
 public:
  /// Invoked once per (query, stage) whose node-resident partitions were
  /// destroyed by a crash, with the lost byte count and partition count.
  using PartitionLossCallback =
      std::function<void(int64_t query_id, int stage_id, int64_t lost_bytes,
                         int64_t lost_partitions)>;

  ShuffleLayer(Simulation* sim, const CostModel* cost, BillingMeter* meter,
               ObjectStore* object_store);

  /// Attaches a fault injector (node crash rate + launch failures).
  void SetFaultInjector(FaultInjector* injector);

  void SetOnPartitionsLost(PartitionLossCallback cb) {
    on_partitions_lost_ = std::move(cb);
  }

  /// Attaches a cost-attribution ledger (may be null = disabled). The layer
  /// attributes the exact object-store dollars each Write/Read bills to the
  /// owning query, and records node-resident bytes as the usage weight for
  /// splitting the shared shuffle-node bill at finalization.
  void SetCostLedger(CostLedger* ledger) { ledger_ = ledger; }

  /// Exports lifetime totals (layer + node fleet) under `prefix`.
  void ExportMetrics(MetricsRegistry* metrics,
                     const std::string& prefix) const;

  /// Called once per second by the coordinator with current resident bytes;
  /// adjusts the shuffle-node fleet target and samples node crashes.
  void Tick();

  /// Writes one stage's shuffle output: `total_bytes` split into
  /// `num_partitions` partitions destined for downstream tasks.
  /// `object_store_puts`/`gets` are the request counts this shuffle would
  /// cost if it went entirely through cloud storage; the S3 share is billed
  /// proportionally to the bytes that overflow to the store.
  /// Returns the fraction of bytes that had to fall back to cloud storage.
  double Write(int64_t query_id, int stage_id, int64_t total_bytes,
               int64_t num_partitions, int64_t object_store_puts);

  /// Reads a stage's shuffle output from the consumer side, billing GETs
  /// for the fraction resident in cloud storage. Returns that store-resident
  /// fraction (0.0 when everything is node-resident or nothing was written),
  /// so the engine knows how exposed the read is to store brownouts.
  double Read(int64_t query_id, int stage_id, int64_t object_store_gets);

  /// Frees all intermediate state of a finished query.
  void ReleaseQuery(int64_t query_id);

  /// Drains the fleet at end of workload. Asserts that no resident shuffle
  /// state leaked: every query must have been released first.
  void Shutdown();

  int64_t resident_bytes() const { return resident_bytes_; }
  int64_t num_nodes() const { return fleet_.num_ready(); }
  int64_t node_capacity_bytes() const {
    return fleet_.num_ready() * cost_->shuffle_node_memory_bytes;
  }
  int64_t total_fallback_bytes() const { return total_fallback_bytes_; }
  int64_t total_written_bytes() const { return total_written_bytes_; }
  int64_t total_nodes_crashed() const { return total_nodes_crashed_; }
  int64_t total_partitions_lost() const { return total_partitions_lost_; }
  /// Reads for (query, stage) state this layer never saw written — an
  /// engine bookkeeping bug when nonzero (see shuffle.unmatched_reads).
  int64_t total_unmatched_reads() const { return total_unmatched_reads_; }
  int64_t node_launch_failures() const {
    return fleet_.total_launch_failures();
  }

 private:
  struct StageState {
    int64_t node_bytes = 0;       // bytes held on shuffle nodes
    int64_t node_partitions = 0;  // partitions held on shuffle nodes
    int64_t store_bytes = 0;      // bytes held in the object store
    std::vector<std::string> store_keys;
  };

  /// Reclaims one node and destroys its share of resident partitions.
  void CrashOneNode();

  Simulation* sim_;
  const CostModel* cost_;
  BillingMeter* meter_;
  ObjectStore* object_store_;
  VmFleet fleet_;
  ShuffleProvisioner provisioner_;
  FaultInjector* injector_ = nullptr;
  CostLedger* ledger_ = nullptr;
  PartitionLossCallback on_partitions_lost_;
  /// Bytes currently stored on shuffle nodes (aggregate; individual node
  /// occupancy is modelled as a shared pool with per-node capacity checks
  /// at write time via the hash-placement path).
  int64_t node_used_bytes_ = 0;
  int64_t resident_bytes_ = 0;
  int64_t total_fallback_bytes_ = 0;
  int64_t total_written_bytes_ = 0;
  int64_t total_nodes_crashed_ = 0;
  int64_t total_partitions_lost_ = 0;
  int64_t total_unmatched_reads_ = 0;
  std::unordered_map<int64_t, std::unordered_map<int, StageState>> queries_;
};

}  // namespace cackle

#endif  // CACKLE_ENGINE_SHUFFLE_LAYER_H_
