#ifndef CACKLE_EXEC_BLOOM_H_
#define CACKLE_EXEC_BLOOM_H_

#include <bit>
#include <cstdint>
#include <vector>

namespace cackle::exec {

/// \brief Cache-line blocked bloom filter over 64-bit hashes.
///
/// Join builds insert Mix64(packed key); probes consult the filter before
/// touching the (much larger) hash table, so non-matching probe rows cost
/// one cache line instead of a probe chain. All three probe bits of a key
/// live in one 64-byte block, chosen by the hash's high bits — the low bits
/// stay free for FlatMap64's slot index, keeping the two structures'
/// collision patterns independent.
///
/// Semantics are strictly one-sided: MayContain() can return true for an
/// absent key (false positive, re-checked by the hash table) but never
/// false for an inserted one, so the filter can only skip work, never
/// change results.
class BlockedBloomFilter {
 public:
  /// Sizes the filter at ~12 bits per expected key (one 512-bit block per
  /// ~42 keys), rounded up to a power-of-two block count, minimum one block.
  explicit BlockedBloomFilter(int64_t expected_keys) {
    const uint64_t want_bits =
        12 * static_cast<uint64_t>(expected_keys < 0 ? 0 : expected_keys);
    uint64_t blocks = (want_bits + kBlockBits - 1) / kBlockBits;
    blocks = std::bit_ceil(blocks == 0 ? uint64_t{1} : blocks);
    words_.assign(blocks * kWordsPerBlock, 0);
    block_mask_ = blocks - 1;
  }

  void Insert(uint64_t hash) {
    uint64_t* block = BlockFor(hash);
    const uint32_t h = static_cast<uint32_t>(hash);
    SetBit(block, h & 511);
    SetBit(block, (h >> 9) & 511);
    SetBit(block, (h >> 18) & 511);
  }

  bool MayContain(uint64_t hash) const {
    const uint64_t* block = BlockFor(hash);
    const uint32_t h = static_cast<uint32_t>(hash);
    return TestBit(block, h & 511) && TestBit(block, (h >> 9) & 511) &&
           TestBit(block, (h >> 18) & 511);
  }

  int64_t SizeBytes() const {
    return static_cast<int64_t>(words_.size() * sizeof(uint64_t));
  }

 private:
  static constexpr uint64_t kBlockBits = 512;
  static constexpr size_t kWordsPerBlock = 8;

  uint64_t* BlockFor(uint64_t hash) {
    return &words_[((hash >> 32) & block_mask_) * kWordsPerBlock];
  }
  const uint64_t* BlockFor(uint64_t hash) const {
    return &words_[((hash >> 32) & block_mask_) * kWordsPerBlock];
  }
  static void SetBit(uint64_t* block, uint32_t pos) {
    block[pos >> 6] |= uint64_t{1} << (pos & 63);
  }
  static bool TestBit(const uint64_t* block, uint32_t pos) {
    return (block[pos >> 6] >> (pos & 63)) & 1;
  }

  std::vector<uint64_t> words_;
  uint64_t block_mask_ = 0;
};

}  // namespace cackle::exec

#endif  // CACKLE_EXEC_BLOOM_H_
