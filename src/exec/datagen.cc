#include "exec/datagen.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace cackle::exec {
namespace {

// Region/nation comment text is independent of the caller's seed (both
// tables are fixed 5- and 25-row TPC-H dimension tables baked into the
// golden fixtures), so they draw from fixed named streams. The values keep
// the historical literal seeds so regeneration stays bit-identical.
constexpr uint64_t kRegionCommentSeed = 1;
constexpr uint64_t kNationCommentSeed = 2;

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};
// TPC-H nation -> region mapping.
struct NationSpec {
  const char* name;
  int64_t region;
};
const NationSpec kNations[25] = {
    {"ALGERIA", 0},      {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},       {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},       {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},    {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},        {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},      {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},        {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},      {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL",
                            "FOB"};
const char* kShipInstruct[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                               "TAKE BACK RETURN"};
const char* kContainers1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainers2[] = {"CASE", "BOX", "BAG", "JAR", "PKG", "PACK",
                              "CAN", "DRUM"};
const char* kTypes1[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                         "PROMO"};
const char* kTypes2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                         "BRUSHED"};
const char* kTypes3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kColors[] = {"almond", "antique", "aquamarine", "azure", "beige",
                         "bisque", "black", "blanched", "blue", "blush",
                         "brown", "burlywood", "chartreuse", "chiffon",
                         "chocolate", "coral", "cornflower", "cream",
                         "cyan", "dark", "deep", "dim", "dodger", "drab",
                         "firebrick", "forest", "frosted", "gainsboro",
                         "ghost", "goldenrod", "green", "grey", "honeydew",
                         "hot", "indian", "ivory", "khaki", "lace",
                         "lavender", "lawn", "lemon", "light", "lime",
                         "linen", "magenta", "maroon", "medium", "metallic",
                         "midnight", "mint", "misty", "moccasin", "navajo",
                         "navy", "olive", "orange", "orchid", "pale",
                         "papaya", "peach", "peru", "pink", "plum", "powder",
                         "puff", "purple", "red", "rose", "rosy", "royal",
                         "saddle", "salmon", "sandy", "seashell", "sienna",
                         "sky", "slate", "smoke", "snow", "spring", "steel",
                         "tan", "thistle", "tomato", "turquoise", "violet",
                         "wheat", "white", "yellow"};
const char* kCommentWords[] = {
    "carefully", "quickly", "furiously", "slyly",    "blithely", "regular",
    "final",     "ironic",  "pending",   "bold",     "express",  "silent",
    "even",      "packages", "deposits", "accounts", "requests", "theodolites",
    "platelets", "foxes",   "instructions", "dependencies", "pinto", "beans",
    "asymptotes", "courts", "ideas",     "dolphins", "sleep",    "haggle",
    "nag",       "wake",    "cajole",    "engage",   "detect",   "integrate"};

template <size_t N>
const char* Pick(const char* const (&arr)[N], Rng* rng) {
  return arr[rng->NextBounded(N)];
}

std::string MakeComment(Rng* rng, int min_words, int max_words,
                        const char* keyword = nullptr) {
  const int words = static_cast<int>(
      rng->NextInt(min_words, max_words));
  std::string out;
  const int keyword_at =
      keyword != nullptr ? static_cast<int>(rng->NextBounded(
                               static_cast<uint64_t>(words)))
                         : -1;
  for (int w = 0; w < words; ++w) {
    if (!out.empty()) out += ' ';
    if (w == keyword_at) {
      out += keyword;
    } else {
      out += Pick(kCommentWords, rng);
    }
  }
  return out;
}

std::string MakePhone(int64_t nation_key, Rng* rng) {
  // Country code = nation_key + 10, per the spec.
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d",
                static_cast<int>(nation_key + 10),
                static_cast<int>(rng->NextInt(100, 999)),
                static_cast<int>(rng->NextInt(100, 999)),
                static_cast<int>(rng->NextInt(1000, 9999)));
  return buf;
}

Table MakeRegion() {
  Table t({{"r_regionkey", DataType::kInt64},
           {"r_name", DataType::kString},
           {"r_comment", DataType::kString}});
  Rng rng(kRegionCommentSeed);
  for (int64_t r = 0; r < 5; ++r) {
    t.column(0).AppendInt(r);
    t.column(1).AppendString(kRegions[r]);
    t.column(2).AppendString(MakeComment(&rng, 4, 10));
  }
  t.FinishBulkAppend();
  return t;
}

Table MakeNation() {
  Table t({{"n_nationkey", DataType::kInt64},
           {"n_name", DataType::kString},
           {"n_regionkey", DataType::kInt64},
           {"n_comment", DataType::kString}});
  Rng rng(kNationCommentSeed);
  for (int64_t n = 0; n < 25; ++n) {
    t.column(0).AppendInt(n);
    t.column(1).AppendString(kNations[n].name);
    t.column(2).AppendInt(kNations[n].region);
    t.column(3).AppendString(MakeComment(&rng, 4, 10));
  }
  t.FinishBulkAppend();
  return t;
}

}  // namespace

int64_t TpchRows(const char* table, double sf) {
  auto scaled = [sf](double base) {
    return std::max<int64_t>(1, static_cast<int64_t>(std::llround(base * sf)));
  };
  if (std::strcmp(table, "region") == 0) return 5;
  if (std::strcmp(table, "nation") == 0) return 25;
  if (std::strcmp(table, "supplier") == 0) return scaled(10'000);
  if (std::strcmp(table, "part") == 0) return scaled(200'000);
  if (std::strcmp(table, "partsupp") == 0) return scaled(800'000);
  if (std::strcmp(table, "customer") == 0) return scaled(150'000);
  if (std::strcmp(table, "orders") == 0) return scaled(1'500'000);
  CACKLE_CHECK(false) << "unknown table " << table;
  __builtin_unreachable();
}

Catalog GenerateTpch(double scale_factor, uint64_t seed) {
  CACKLE_CHECK_GT(scale_factor, 0.0);
  Catalog cat;
  cat.region = MakeRegion();
  cat.nation = MakeNation();
  Rng master(seed);

  const int64_t num_supplier = TpchRows("supplier", scale_factor);
  const int64_t num_part = TpchRows("part", scale_factor);
  const int64_t num_customer = TpchRows("customer", scale_factor);
  const int64_t num_orders = TpchRows("orders", scale_factor);

  // --- supplier ---
  {
    Rng rng = master.Fork();
    Table t({{"s_suppkey", DataType::kInt64},
             {"s_name", DataType::kString},
             {"s_address", DataType::kString},
             {"s_nationkey", DataType::kInt64},
             {"s_phone", DataType::kString},
             {"s_acctbal", DataType::kFloat64},
             {"s_comment", DataType::kString}});
    for (int64_t k = 1; k <= num_supplier; ++k) {
      const int64_t nation = rng.NextInt(0, 24);
      t.column(0).AppendInt(k);
      char name[32];
      std::snprintf(name, sizeof(name), "Supplier#%09lld",
                    static_cast<long long>(k));
      t.column(1).AppendString(name);
      t.column(2).AppendString(MakeComment(&rng, 2, 4));
      t.column(3).AppendInt(nation);
      t.column(4).AppendString(MakePhone(nation, &rng));
      t.column(5).AppendDouble(rng.NextDouble(-999.99, 9999.99));
      // ~0.05% suppliers have "Customer ... Complaints" comments (Q16).
      const bool complaints = rng.NextBernoulli(0.005);
      t.column(6).AppendString(
          complaints ? "the Customer of slow Complaints " +
                           MakeComment(&rng, 3, 6)
                     : MakeComment(&rng, 6, 12));
    }
    t.FinishBulkAppend();
    cat.supplier = std::move(t);
  }

  // --- part ---
  {
    Rng rng = master.Fork();
    Table t({{"p_partkey", DataType::kInt64},
             {"p_name", DataType::kString},
             {"p_mfgr", DataType::kString},
             {"p_brand", DataType::kString},
             {"p_type", DataType::kString},
             {"p_size", DataType::kInt64},
             {"p_container", DataType::kString},
             {"p_retailprice", DataType::kFloat64},
             {"p_comment", DataType::kString}});
    for (int64_t k = 1; k <= num_part; ++k) {
      t.column(0).AppendInt(k);
      // p_name: five distinct colors.
      std::string name;
      for (int w = 0; w < 5; ++w) {
        if (w > 0) name += ' ';
        name += Pick(kColors, &rng);
      }
      t.column(1).AppendString(name);
      const int m = static_cast<int>(rng.NextInt(1, 5));
      char mfgr[32];
      std::snprintf(mfgr, sizeof(mfgr), "Manufacturer#%d", m);
      t.column(2).AppendString(mfgr);
      char brand[32];
      std::snprintf(brand, sizeof(brand), "Brand#%d%d", m,
                    static_cast<int>(rng.NextInt(1, 5)));
      t.column(3).AppendString(brand);
      std::string type = Pick(kTypes1, &rng);
      type += ' ';
      type += Pick(kTypes2, &rng);
      type += ' ';
      type += Pick(kTypes3, &rng);
      t.column(4).AppendString(type);
      t.column(5).AppendInt(rng.NextInt(1, 50));
      std::string container = Pick(kContainers1, &rng);
      container += ' ';
      container += Pick(kContainers2, &rng);
      t.column(6).AppendString(container);
      // Spec formula: 90000 + ((partkey/10) % 20001) + 100*(partkey % 1000),
      // all over 100.
      t.column(7).AppendDouble(
          (90000.0 + static_cast<double>((k / 10) % 20001) +
           100.0 * static_cast<double>(k % 1000)) /
          100.0);
      t.column(8).AppendString(MakeComment(&rng, 2, 5));
    }
    t.FinishBulkAppend();
    cat.part = std::move(t);
  }

  // --- partsupp: 4 suppliers per part, spec key formula ---
  {
    Rng rng = master.Fork();
    Table t({{"ps_partkey", DataType::kInt64},
             {"ps_suppkey", DataType::kInt64},
             {"ps_availqty", DataType::kInt64},
             {"ps_supplycost", DataType::kFloat64},
             {"ps_comment", DataType::kString}});
    for (int64_t k = 1; k <= num_part; ++k) {
      for (int64_t i = 0; i < 4; ++i) {
        const int64_t s = num_supplier;
        const int64_t suppkey =
            (k + (i * ((s / 4) + (k - 1) / s))) % s + 1;
        t.column(0).AppendInt(k);
        t.column(1).AppendInt(suppkey);
        t.column(2).AppendInt(rng.NextInt(1, 9999));
        t.column(3).AppendDouble(rng.NextDouble(1.0, 1000.0));
        t.column(4).AppendString(MakeComment(&rng, 2, 6));
      }
    }
    t.FinishBulkAppend();
    cat.partsupp = std::move(t);
  }

  // --- customer ---
  {
    Rng rng = master.Fork();
    Table t({{"c_custkey", DataType::kInt64},
             {"c_name", DataType::kString},
             {"c_address", DataType::kString},
             {"c_nationkey", DataType::kInt64},
             {"c_phone", DataType::kString},
             {"c_acctbal", DataType::kFloat64},
             {"c_mktsegment", DataType::kString},
             {"c_comment", DataType::kString}});
    for (int64_t k = 1; k <= num_customer; ++k) {
      const int64_t nation = rng.NextInt(0, 24);
      t.column(0).AppendInt(k);
      char name[32];
      std::snprintf(name, sizeof(name), "Customer#%09lld",
                    static_cast<long long>(k));
      t.column(1).AppendString(name);
      t.column(2).AppendString(MakeComment(&rng, 2, 4));
      t.column(3).AppendInt(nation);
      t.column(4).AppendString(MakePhone(nation, &rng));
      t.column(5).AppendDouble(rng.NextDouble(-999.99, 9999.99));
      t.column(6).AppendString(Pick(kSegments, &rng));
      t.column(7).AppendString(MakeComment(&rng, 6, 12));
    }
    t.FinishBulkAppend();
    cat.customer = std::move(t);
  }

  // --- orders + lineitem ---
  {
    Rng rng = master.Fork();
    Table orders({{"o_orderkey", DataType::kInt64},
                  {"o_custkey", DataType::kInt64},
                  {"o_orderstatus", DataType::kString},
                  {"o_totalprice", DataType::kFloat64},
                  {"o_orderdate", DataType::kInt64},
                  {"o_orderpriority", DataType::kString},
                  {"o_clerk", DataType::kString},
                  {"o_shippriority", DataType::kInt64},
                  {"o_comment", DataType::kString}});
    Table lineitem({{"l_orderkey", DataType::kInt64},
                    {"l_partkey", DataType::kInt64},
                    {"l_suppkey", DataType::kInt64},
                    {"l_linenumber", DataType::kInt64},
                    {"l_quantity", DataType::kFloat64},
                    {"l_extendedprice", DataType::kFloat64},
                    {"l_discount", DataType::kFloat64},
                    {"l_tax", DataType::kFloat64},
                    {"l_returnflag", DataType::kString},
                    {"l_linestatus", DataType::kString},
                    {"l_shipdate", DataType::kInt64},
                    {"l_commitdate", DataType::kInt64},
                    {"l_receiptdate", DataType::kInt64},
                    {"l_shipinstruct", DataType::kString},
                    {"l_shipmode", DataType::kString},
                    {"l_comment", DataType::kString}});
    const int64_t current_date = DateFromCivil(1995, 6, 17);
    for (int64_t o = 1; o <= num_orders; ++o) {
      // Sparse order keys: 8 per group of 32 (spec).
      const int64_t orderkey = ((o - 1) / 8) * 32 + ((o - 1) % 8) + 1;
      // Only two-thirds of customers have orders: custkey never = 0 mod 3.
      int64_t custkey = rng.NextInt(1, num_customer);
      while (custkey % 3 == 0) custkey = rng.NextInt(1, num_customer);
      const int64_t orderdate =
          rng.NextInt(kTpchStartDate, kTpchEndDate - 151);
      const int64_t num_lines = rng.NextInt(1, 7);
      double totalprice = 0.0;
      int fulfilled = 0;
      for (int64_t l = 1; l <= num_lines; ++l) {
        const int64_t partkey = rng.NextInt(1, num_part);
        const int64_t i = rng.NextInt(0, 3);
        const int64_t s = num_supplier;
        const int64_t suppkey =
            (partkey + (i * ((s / 4) + (partkey - 1) / s))) % s + 1;
        const double quantity = static_cast<double>(rng.NextInt(1, 50));
        const double retail =
            (90000.0 + static_cast<double>((partkey / 10) % 20001) +
             100.0 * static_cast<double>(partkey % 1000)) /
            100.0;
        const double extprice = quantity * retail;
        const double discount =
            static_cast<double>(rng.NextInt(0, 10)) / 100.0;
        const double tax = static_cast<double>(rng.NextInt(0, 8)) / 100.0;
        const int64_t shipdate = orderdate + rng.NextInt(1, 121);
        const int64_t commitdate = orderdate + rng.NextInt(30, 90);
        const int64_t receiptdate = shipdate + rng.NextInt(1, 30);
        const bool shipped = shipdate <= current_date;
        const bool received = receiptdate <= current_date;
        fulfilled += received ? 1 : 0;
        lineitem.column(0).AppendInt(orderkey);
        lineitem.column(1).AppendInt(partkey);
        lineitem.column(2).AppendInt(suppkey);
        lineitem.column(3).AppendInt(l);
        lineitem.column(4).AppendDouble(quantity);
        lineitem.column(5).AppendDouble(extprice);
        lineitem.column(6).AppendDouble(discount);
        lineitem.column(7).AppendDouble(tax);
        lineitem.column(8).AppendString(
            received ? (rng.NextBernoulli(0.5) ? "R" : "A") : "N");
        lineitem.column(9).AppendString(shipped ? "F" : "O");
        lineitem.column(10).AppendInt(shipdate);
        lineitem.column(11).AppendInt(commitdate);
        lineitem.column(12).AppendInt(receiptdate);
        lineitem.column(13).AppendString(Pick(kShipInstruct, &rng));
        lineitem.column(14).AppendString(Pick(kShipModes, &rng));
        lineitem.column(15).AppendString(MakeComment(&rng, 2, 6));
        totalprice += extprice * (1.0 + tax) * (1.0 - discount);
      }
      orders.column(0).AppendInt(orderkey);
      orders.column(1).AppendInt(custkey);
      orders.column(2).AppendString(fulfilled == num_lines ? "F"
                                    : fulfilled == 0       ? "O"
                                                           : "P");
      orders.column(3).AppendDouble(totalprice);
      orders.column(4).AppendInt(orderdate);
      orders.column(5).AppendString(Pick(kPriorities, &rng));
      char clerk[32];
      std::snprintf(clerk, sizeof(clerk), "Clerk#%09d",
                    static_cast<int>(rng.NextInt(1, std::max<int64_t>(
                                                        1, num_orders / 1000))));
      orders.column(6).AppendString(clerk);
      orders.column(7).AppendInt(0);
      // ~1% of order comments mention "special requests" (Q13).
      orders.column(8).AppendString(
          rng.NextBernoulli(0.02)
              ? MakeComment(&rng, 3, 6) + " special requests " +
                    MakeComment(&rng, 1, 3)
              : MakeComment(&rng, 4, 10));
    }
    orders.FinishBulkAppend();
    lineitem.FinishBulkAppend();
    cat.orders = std::move(orders);
    cat.lineitem = std::move(lineitem);
  }
  // Dictionary-encode low-cardinality string columns (flags, statuses,
  // segments, names) so join/group keys over them are fixed-width codes.
  // High-cardinality columns (comments, addresses) are left plain by the
  // profitability rule in Column::DictEncode.
  cat.region.DictEncodeStringColumns();
  cat.nation.DictEncodeStringColumns();
  cat.supplier.DictEncodeStringColumns();
  cat.part.DictEncodeStringColumns();
  cat.partsupp.DictEncodeStringColumns();
  cat.customer.DictEncodeStringColumns();
  cat.orders.DictEncodeStringColumns();
  cat.lineitem.DictEncodeStringColumns();
  return cat;
}

}  // namespace cackle::exec
