#ifndef CACKLE_EXEC_DATAGEN_H_
#define CACKLE_EXEC_DATAGEN_H_

#include <cstdint>

#include "common/rng.h"
#include "exec/table.h"

namespace cackle::exec {

/// \brief The eight TPC-H base tables.
struct Catalog {
  Table region;
  Table nation;
  Table supplier;
  Table part;
  Table partsupp;
  Table customer;
  Table orders;
  Table lineitem;

  int64_t TotalRows() const {
    return region.num_rows() + nation.num_rows() + supplier.num_rows() +
           part.num_rows() + partsupp.num_rows() + customer.num_rows() +
           orders.num_rows() + lineitem.num_rows();
  }
  int64_t TotalBytes() const {
    return region.EstimateBytes() + nation.EstimateBytes() +
           supplier.EstimateBytes() + part.EstimateBytes() +
           partsupp.EstimateBytes() + customer.EstimateBytes() +
           orders.EstimateBytes() + lineitem.EstimateBytes();
  }
};

/// \brief Deterministic TPC-H data generator (dbgen equivalent at laptop
/// scale).
///
/// Follows the specification's schema, key relationships and value
/// distributions: sparse order keys, the ps_suppkey formula, customers
/// without orders, date ranges 1992-01-01..1998-08-02, Brand#MN / container
/// / segment / priority vocabularies, l_extendedprice derived from
/// quantity x part retail price, and so on. Comment/name text is synthetic
/// filler with embedded spec keywords (e.g. "special requests", colors in
/// p_name) so the LIKE-predicate queries remain selective as specified.
///
/// `scale_factor` 1.0 corresponds to the full 8.66M-row dataset; tests use
/// 0.01 (~87k rows) and examples 0.05-0.1.
Catalog GenerateTpch(double scale_factor, uint64_t seed = 20260707);

/// Row counts at a given scale factor (lineitem is approximate: the per-
/// order line count is random in 1..7).
int64_t TpchRows(const char* table, double scale_factor);

/// Dates used across queries.
inline constexpr int64_t kTpchStartDate = DateFromCivil(1992, 1, 1);
inline constexpr int64_t kTpchEndDate = DateFromCivil(1998, 8, 2);

}  // namespace cackle::exec

#endif  // CACKLE_EXEC_DATAGEN_H_
