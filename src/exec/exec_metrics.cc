#include "exec/exec_metrics.h"

#include "common/metric_names.h"
#include "common/metrics.h"

namespace cackle::exec {

void ExecKernelMetrics::Reset() {
  flat_table_builds.store(0, std::memory_order_relaxed);
  flat_table_resizes.store(0, std::memory_order_relaxed);
  key_fallback_activations.store(0, std::memory_order_relaxed);
  key_packed_activations.store(0, std::memory_order_relaxed);
  dict_columns_encoded.store(0, std::memory_order_relaxed);
  dict_encodes_abandoned.store(0, std::memory_order_relaxed);
  dict_total_entries.store(0, std::memory_order_relaxed);
  gather_rows.store(0, std::memory_order_relaxed);
  selection_filters.store(0, std::memory_order_relaxed);
  dict_predicate_evals.store(0, std::memory_order_relaxed);
  morsel_tasks.store(0, std::memory_order_relaxed);
  morsel_operators.store(0, std::memory_order_relaxed);
  radix_joins.store(0, std::memory_order_relaxed);
  radix_partitions.store(0, std::memory_order_relaxed);
  radix_max_partition_rows.store(0, std::memory_order_relaxed);
  bloom_builds.store(0, std::memory_order_relaxed);
  bloom_probes.store(0, std::memory_order_relaxed);
  bloom_hits.store(0, std::memory_order_relaxed);
  bloom_false_positives.store(0, std::memory_order_relaxed);
}

ExecKernelMetrics& ExecMetrics() {
  static ExecKernelMetrics* metrics = new ExecKernelMetrics();
  return *metrics;
}

void PublishExecMetrics(MetricsRegistry& registry) {
  namespace mn = metric_names;
  const ExecKernelMetrics& m = ExecMetrics();
  const auto get = [](const std::atomic<int64_t>& v) {
    return v.load(std::memory_order_relaxed);
  };
  registry.SetCounter(mn::kExecFlatTableBuilds, get(m.flat_table_builds));
  registry.SetCounter(mn::kExecFlatTableResizes, get(m.flat_table_resizes));
  registry.SetCounter(mn::kExecKeysPacked, get(m.key_packed_activations));
  registry.SetCounter(mn::kExecKeysFallback, get(m.key_fallback_activations));
  registry.SetCounter(mn::kExecDictColumnsEncoded,
                      get(m.dict_columns_encoded));
  registry.SetCounter(mn::kExecDictEncodesAbandoned,
                      get(m.dict_encodes_abandoned));
  registry.SetCounter(mn::kExecDictTotalEntries, get(m.dict_total_entries));
  registry.SetCounter(mn::kExecGatherRows, get(m.gather_rows));
  registry.SetCounter(mn::kExecFilterSelectionVectors,
                      get(m.selection_filters));
  registry.SetCounter(mn::kExecFilterDictPredicates,
                      get(m.dict_predicate_evals));
  registry.SetCounter(mn::kExecMorselTasks, get(m.morsel_tasks));
  registry.SetCounter(mn::kExecMorselOperators, get(m.morsel_operators));
  registry.SetCounter(mn::kExecRadixJoins, get(m.radix_joins));
  registry.SetCounter(mn::kExecRadixPartitions, get(m.radix_partitions));
  registry.SetCounter(mn::kExecRadixMaxPartitionRows,
                      get(m.radix_max_partition_rows));
  registry.SetCounter(mn::kExecBloomBuilds, get(m.bloom_builds));
  registry.SetCounter(mn::kExecBloomProbes, get(m.bloom_probes));
  registry.SetCounter(mn::kExecBloomHits, get(m.bloom_hits));
  registry.SetCounter(mn::kExecBloomFalsePositives,
                      get(m.bloom_false_positives));
}

}  // namespace cackle::exec
