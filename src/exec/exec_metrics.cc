#include "exec/exec_metrics.h"

#include "common/metrics.h"

namespace cackle::exec {

void ExecKernelMetrics::Reset() {
  flat_table_builds.store(0, std::memory_order_relaxed);
  flat_table_resizes.store(0, std::memory_order_relaxed);
  key_fallback_activations.store(0, std::memory_order_relaxed);
  key_packed_activations.store(0, std::memory_order_relaxed);
  dict_columns_encoded.store(0, std::memory_order_relaxed);
  dict_encodes_abandoned.store(0, std::memory_order_relaxed);
  dict_total_entries.store(0, std::memory_order_relaxed);
  gather_rows.store(0, std::memory_order_relaxed);
  selection_filters.store(0, std::memory_order_relaxed);
  dict_predicate_evals.store(0, std::memory_order_relaxed);
}

ExecKernelMetrics& ExecMetrics() {
  static ExecKernelMetrics* metrics = new ExecKernelMetrics();
  return *metrics;
}

void PublishExecMetrics(MetricsRegistry& registry) {
  const ExecKernelMetrics& m = ExecMetrics();
  const auto get = [](const std::atomic<int64_t>& v) {
    return v.load(std::memory_order_relaxed);
  };
  registry.SetCounter("exec.flat_table.builds", get(m.flat_table_builds));
  registry.SetCounter("exec.flat_table.resizes", get(m.flat_table_resizes));
  registry.SetCounter("exec.keys.packed", get(m.key_packed_activations));
  registry.SetCounter("exec.keys.fallback", get(m.key_fallback_activations));
  registry.SetCounter("exec.dict.columns_encoded",
                      get(m.dict_columns_encoded));
  registry.SetCounter("exec.dict.encodes_abandoned",
                      get(m.dict_encodes_abandoned));
  registry.SetCounter("exec.dict.total_entries", get(m.dict_total_entries));
  registry.SetCounter("exec.gather.rows", get(m.gather_rows));
  registry.SetCounter("exec.filter.selection_vectors",
                      get(m.selection_filters));
  registry.SetCounter("exec.filter.dict_predicates",
                      get(m.dict_predicate_evals));
}

}  // namespace cackle::exec
