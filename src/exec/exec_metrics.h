#ifndef CACKLE_EXEC_EXEC_METRICS_H_
#define CACKLE_EXEC_EXEC_METRICS_H_

#include <atomic>
#include <cstdint>

namespace cackle {
class MetricsRegistry;
}

namespace cackle::exec {

/// \brief Process-wide counters for the vectorized executor kernels.
///
/// Operators run on PlanExecutor pool threads, so unlike the engine-side
/// MetricsRegistry (single-threaded by construction) these are relaxed
/// atomics: racing increments are safe and the totals are exact, only the
/// interleaving is unordered. PublishTo() snapshots them into a
/// MetricsRegistry under the stable `exec.*` prefix so bench artifacts and
/// regression tests can observe kernel behaviour (fallback activations,
/// flat-table resizes, dictionary sizes).
struct ExecKernelMetrics {
  /// Flat-table builds (packed-key path) in HashJoin/HashAggregate.
  std::atomic<int64_t> flat_table_builds{0};
  /// Flat-table capacity doublings across all builds.
  std::atomic<int64_t> flat_table_resizes{0};
  /// Operator calls that fell back to the heap RowKey path because the key
  /// columns do not pack into 64 bits (or string keys lack a shared dict).
  std::atomic<int64_t> key_fallback_activations{0};
  /// Operator calls that used the packed fixed-width key path.
  std::atomic<int64_t> key_packed_activations{0};
  /// Columns successfully dictionary-encoded / encode attempts abandoned
  /// because the distinct count exceeded the profitability caps.
  std::atomic<int64_t> dict_columns_encoded{0};
  std::atomic<int64_t> dict_encodes_abandoned{0};
  /// Total dictionary entries across encoded columns (sizes, summed).
  std::atomic<int64_t> dict_total_entries{0};
  /// Rows materialized through the gather kernels (AppendGather*).
  std::atomic<int64_t> gather_rows{0};
  /// Filter calls answered via selection vectors.
  std::atomic<int64_t> selection_filters{0};
  /// Dictionary-aware predicate evaluations (match computed per dict entry,
  /// then applied per row via codes).
  std::atomic<int64_t> dict_predicate_evals{0};
  /// Morsel tasks scheduled on the pool by intra-operator loops / operator
  /// invocations that split into more than one morsel.
  std::atomic<int64_t> morsel_tasks{0};
  std::atomic<int64_t> morsel_operators{0};
  /// Radix-partitioned join builds, total partitions built by them, and the
  /// largest single partition's build rows (high-water across the process).
  std::atomic<int64_t> radix_joins{0};
  std::atomic<int64_t> radix_partitions{0};
  std::atomic<int64_t> radix_max_partition_rows{0};
  /// Bloom pushdown: filters built, probe-side consultations, probes the
  /// filter passed, and passed probes the hash table then rejected (the
  /// filter's false positives).
  std::atomic<int64_t> bloom_builds{0};
  std::atomic<int64_t> bloom_probes{0};
  std::atomic<int64_t> bloom_hits{0};
  std::atomic<int64_t> bloom_false_positives{0};

  void Reset();
};

/// The process-wide instance.
ExecKernelMetrics& ExecMetrics();

/// Snapshots the counters into `registry` under `exec.*`:
///   exec.flat_table.builds, exec.flat_table.resizes,
///   exec.keys.packed, exec.keys.fallback,
///   exec.dict.columns_encoded, exec.dict.encodes_abandoned,
///   exec.dict.total_entries, exec.gather.rows,
///   exec.filter.selection_vectors, exec.filter.dict_predicates,
///   exec.morsel.tasks, exec.morsel.operators,
///   exec.radix.joins, exec.radix.partitions, exec.radix.max_partition_rows,
///   exec.bloom.builds, exec.bloom.probes, exec.bloom.hits,
///   exec.bloom.false_positives
void PublishExecMetrics(MetricsRegistry& registry);

}  // namespace cackle::exec

#endif  // CACKLE_EXEC_EXEC_METRICS_H_
