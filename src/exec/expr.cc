#include "exec/expr.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_set>

#include "common/logging.h"
#include "exec/exec_metrics.h"

namespace cackle::exec {
namespace {

bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kFloat64;
}

/// Reads a numeric column value as double.
double NumAt(const Column& c, int64_t row) {
  if (c.type() == DataType::kInt64) {
    return static_cast<double>(c.ints()[static_cast<size_t>(row)]);
  }
  return c.doubles()[static_cast<size_t>(row)];
}

/// Borrows the input column when `e` is a plain column reference; otherwise
/// evaluates into `storage` and returns that.
const Column* BorrowOrEval(const Expr& e, const Table& input,
                           Column* storage) {
  if (const Column* c = e.TryBorrow(input)) return c;
  *storage = e.Eval(input);
  return storage;
}

/// Keeps sel[i] iff test(sel[i]); in-place compaction.
template <typename TestFn>
void CompactSelection(std::vector<int64_t>& sel, TestFn test) {
  size_t w = 0;
  for (size_t i = 0; i < sel.size(); ++i) {
    if (test(sel[i])) sel[w++] = sel[i];
  }
  sel.resize(w);
}

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

// --- typed branchless selection kernels -------------------------------------
//
// The generic paths above branch per row on the predicate outcome, which
// costs a misprediction per selectivity flip and blocks vectorization. The
// kernels below write the candidate row unconditionally and advance the
// write cursor by the comparison result (`sel[w] = r; w += hit`), so the
// loop body is branch-free and the typed compare auto-vectorizes. Scalar
// semantics are preserved exactly: same rows survive, in the same order.

/// Fills `sel` (must be empty) with every row of `xs` matching
/// `cmp(xs[r], lit)` — the fused iota+filter first pass.
template <typename T, typename Cmp>
void SelectAgainstLiteral(std::vector<int64_t>& sel, const std::vector<T>& xs,
                          T lit, Cmp cmp) {
  const size_t n = xs.size();
  sel.resize(n);
  size_t w = 0;
  for (size_t r = 0; r < n; ++r) {
    sel[w] = static_cast<int64_t>(r);
    w += cmp(xs[r], lit) ? 1 : 0;
  }
  sel.resize(w);
}

/// Branch-free in-place refine of `sel` against a literal.
template <typename T, typename Cmp>
void RefineAgainstLiteral(std::vector<int64_t>& sel, const std::vector<T>& xs,
                          T lit, Cmp cmp) {
  size_t w = 0;
  for (size_t i = 0; i < sel.size(); ++i) {
    const int64_t r = sel[i];
    sel[w] = r;
    w += cmp(xs[static_cast<size_t>(r)], lit) ? 1 : 0;
  }
  sel.resize(w);
}

/// Branch-free in-place refine of `sel` comparing two same-typed columns.
template <typename T, typename Cmp>
void RefineAgainstColumn(std::vector<int64_t>& sel, const std::vector<T>& xs,
                         const std::vector<T>& ys, Cmp cmp) {
  size_t w = 0;
  for (size_t i = 0; i < sel.size(); ++i) {
    const int64_t r = sel[i];
    sel[w] = r;
    w += cmp(xs[static_cast<size_t>(r)], ys[static_cast<size_t>(r)]) ? 1 : 0;
  }
  sel.resize(w);
}

/// Invokes `dispatch` with the comparator lambda for `op`, hoisting the
/// operator switch out of the row loops so each kernel instantiation is one
/// tight vectorizable loop.
template <typename Dispatch>
void WithComparator(CmpOp op, Dispatch&& dispatch) {
  switch (op) {
    case CmpOp::kEq: dispatch([](auto x, auto y) { return x == y; }); break;
    case CmpOp::kNe: dispatch([](auto x, auto y) { return x != y; }); break;
    case CmpOp::kLt: dispatch([](auto x, auto y) { return x < y; }); break;
    case CmpOp::kLe: dispatch([](auto x, auto y) { return x <= y; }); break;
    case CmpOp::kGt: dispatch([](auto x, auto y) { return x > y; }); break;
    case CmpOp::kGe: dispatch([](auto x, auto y) { return x >= y; }); break;
  }
}

class ColRef final : public Expr {
 public:
  explicit ColRef(std::string name) : name_(std::move(name)) {}
  DataType OutputType(const Table& input) const override {
    return input.column_def(input.ColumnIndex(name_)).type;
  }
  Column Eval(const Table& input) const override {
    return input.column(name_);  // copy; fine at this scale
  }
  const Column* TryBorrow(const Table& input) const override {
    return &input.column(name_);
  }
  void CollectColumns(std::set<std::string>* out) const override {
    out->insert(name_);
  }

 private:
  std::string name_;
};

class IntLit final : public Expr {
 public:
  void CollectColumns(std::set<std::string>*) const override {}
  explicit IntLit(int64_t v) : v_(v) {}
  const int64_t* TryIntLiteral() const override { return &v_; }
  DataType OutputType(const Table&) const override {
    return DataType::kInt64;
  }
  Column Eval(const Table& input) const override {
    Column c(DataType::kInt64);
    c.ints().assign(static_cast<size_t>(input.num_rows()), v_);
    return c;
  }

 private:
  int64_t v_;
};

class DoubleLit final : public Expr {
 public:
  void CollectColumns(std::set<std::string>*) const override {}
  explicit DoubleLit(double v) : v_(v) {}
  const double* TryDoubleLiteral() const override { return &v_; }
  DataType OutputType(const Table&) const override {
    return DataType::kFloat64;
  }
  Column Eval(const Table& input) const override {
    Column c(DataType::kFloat64);
    c.doubles().assign(static_cast<size_t>(input.num_rows()), v_);
    return c;
  }

 private:
  double v_;
};

class StringLit final : public Expr {
 public:
  void CollectColumns(std::set<std::string>*) const override {}
  explicit StringLit(std::string v) : v_(std::move(v)) {}
  const std::string* TryStringLiteral() const override { return &v_; }
  DataType OutputType(const Table&) const override {
    return DataType::kString;
  }
  Column Eval(const Table& input) const override {
    Column c(DataType::kString);
    c.strings().assign(static_cast<size_t>(input.num_rows()), v_);
    return c;
  }

 private:
  std::string v_;
};

enum class ArithOp { kAdd, kSub, kMul, kDiv };

class Arith final : public Expr {
 public:
  void CollectColumns(std::set<std::string>* out) const override {
    a_->CollectColumns(out);
    b_->CollectColumns(out);
  }
  Arith(ArithOp op, ExprPtr a, ExprPtr b)
      : op_(op), a_(std::move(a)), b_(std::move(b)) {}
  DataType OutputType(const Table& input) const override {
    const DataType ta = a_->OutputType(input);
    const DataType tb = b_->OutputType(input);
    CACKLE_CHECK(IsNumeric(ta) && IsNumeric(tb));
    if (op_ == ArithOp::kDiv) return DataType::kFloat64;
    return (ta == DataType::kInt64 && tb == DataType::kInt64)
               ? DataType::kInt64
               : DataType::kFloat64;
  }
  Column Eval(const Table& input) const override {
    const Column ca = a_->Eval(input);
    const Column cb = b_->Eval(input);
    const int64_t n = input.num_rows();
    if (OutputType(input) == DataType::kInt64) {
      Column out(DataType::kInt64);
      out.ints().resize(static_cast<size_t>(n));
      for (int64_t r = 0; r < n; ++r) {
        const int64_t x = ca.ints()[static_cast<size_t>(r)];
        const int64_t y = cb.ints()[static_cast<size_t>(r)];
        int64_t v = 0;
        switch (op_) {
          case ArithOp::kAdd: v = x + y; break;
          case ArithOp::kSub: v = x - y; break;
          case ArithOp::kMul: v = x * y; break;
          case ArithOp::kDiv: v = 0; break;  // unreachable (kDiv -> double)
        }
        out.ints()[static_cast<size_t>(r)] = v;
      }
      return out;
    }
    Column out(DataType::kFloat64);
    out.doubles().resize(static_cast<size_t>(n));
    for (int64_t r = 0; r < n; ++r) {
      const double x = NumAt(ca, r);
      const double y = NumAt(cb, r);
      double v = 0;
      switch (op_) {
        case ArithOp::kAdd: v = x + y; break;
        case ArithOp::kSub: v = x - y; break;
        case ArithOp::kMul: v = x * y; break;
        case ArithOp::kDiv: v = y == 0.0 ? 0.0 : x / y; break;
      }
      out.doubles()[static_cast<size_t>(r)] = v;
    }
    return out;
  }

 private:
  ArithOp op_;
  ExprPtr a_;
  ExprPtr b_;
};

class Compare final : public Expr {
 public:
  void CollectColumns(std::set<std::string>* out) const override {
    a_->CollectColumns(out);
    b_->CollectColumns(out);
  }
  Compare(CmpOp op, ExprPtr a, ExprPtr b)
      : op_(op), a_(std::move(a)), b_(std::move(b)) {}
  DataType OutputType(const Table&) const override {
    return DataType::kInt64;
  }
  Column Eval(const Table& input) const override {
    const Column ca = a_->Eval(input);
    const Column cb = b_->Eval(input);
    const int64_t n = input.num_rows();
    Column out(DataType::kInt64);
    out.ints().resize(static_cast<size_t>(n));
    if (ca.type() == DataType::kString) {
      CACKLE_CHECK(cb.type() == DataType::kString);
      for (int64_t r = 0; r < n; ++r) {
        const int cmp = ca.strings()[static_cast<size_t>(r)].compare(
            cb.strings()[static_cast<size_t>(r)]);
        out.ints()[static_cast<size_t>(r)] = Apply(cmp);
      }
    } else {
      for (int64_t r = 0; r < n; ++r) {
        const double x = NumAt(ca, r);
        const double y = NumAt(cb, r);
        const int cmp = x < y ? -1 : (x > y ? 1 : 0);
        out.ints()[static_cast<size_t>(r)] = Apply(cmp);
      }
    }
    return out;
  }

  void InitSelection(const Table& input,
                     std::vector<int64_t>& sel) const override {
    // Column-vs-literal first pass: fused iota+filter, one branchless sweep
    // over the column instead of materializing the full iota and refining.
    if (const Column* ca = a_->TryBorrow(input)) {
      if (ca->type() == DataType::kInt64) {
        if (const int64_t* lit = b_->TryIntLiteral()) {
          WithComparator(op_, [&](auto cmp) {
            SelectAgainstLiteral(sel, ca->ints(), *lit, cmp);
          });
          return;
        }
      } else if (ca->type() == DataType::kFloat64) {
        if (const double* lit = b_->TryDoubleLiteral()) {
          WithComparator(op_, [&](auto cmp) {
            SelectAgainstLiteral(sel, ca->doubles(), *lit, cmp);
          });
          return;
        }
      }
    }
    sel.reserve(static_cast<size_t>(input.num_rows()));
    for (int64_t r = 0; r < input.num_rows(); ++r) sel.push_back(r);
    Refine(input, sel);
  }

  void Refine(const Table& input, std::vector<int64_t>& sel) const override {
    if (sel.empty()) return;
    Column sa;
    Column sb;
    const Column* ca = BorrowOrEval(*a_, input, &sa);
    // Same-typed numeric comparisons use the branchless typed kernels;
    // int64-vs-int64 compares exactly instead of through doubles (identical
    // for every value below 2^53, which covers all generated data). Mixed
    // int/double operands keep the promoting scalar path below.
    if (ca->type() == DataType::kInt64) {
      if (const int64_t* lit = b_->TryIntLiteral()) {
        WithComparator(op_, [&](auto cmp) {
          RefineAgainstLiteral(sel, ca->ints(), *lit, cmp);
        });
        return;
      }
    } else if (ca->type() == DataType::kFloat64) {
      if (const double* lit = b_->TryDoubleLiteral()) {
        WithComparator(op_, [&](auto cmp) {
          RefineAgainstLiteral(sel, ca->doubles(), *lit, cmp);
        });
        return;
      }
    }
    if (ca->type() == DataType::kString) {
      // Dictionary fast path: a dict-encoded column against a string
      // literal evaluates the comparison once per dictionary entry, then
      // tests fixed-width codes per row.
      const std::string* lit = b_->TryStringLiteral();
      if (lit != nullptr && ca->has_dict()) {
        const StringDictionary& dict = ca->dict();
        std::vector<uint8_t> dmatch(static_cast<size_t>(dict.size()));
        for (size_t d = 0; d < dmatch.size(); ++d) {
          dmatch[d] = Apply(dict.values()[d].compare(*lit)) != 0;
        }
        const std::vector<int32_t>& codes = ca->codes();
        ExecMetrics().dict_predicate_evals.fetch_add(
            1, std::memory_order_relaxed);
        CompactSelection(sel, [&](int64_t r) {
          return dmatch[static_cast<size_t>(codes[static_cast<size_t>(r)])] !=
                 0;
        });
        return;
      }
      const Column* cb = BorrowOrEval(*b_, input, &sb);
      CACKLE_CHECK(cb->type() == DataType::kString);
      const auto& xs = ca->strings();
      const auto& ys = cb->strings();
      CompactSelection(sel, [&](int64_t r) {
        const size_t i = static_cast<size_t>(r);
        return Apply(xs[i].compare(ys[i])) != 0;
      });
      return;
    }
    const Column* cb = BorrowOrEval(*b_, input, &sb);
    if (ca->type() == cb->type()) {
      if (ca->type() == DataType::kInt64) {
        WithComparator(op_, [&](auto cmp) {
          RefineAgainstColumn(sel, ca->ints(), cb->ints(), cmp);
        });
      } else {
        WithComparator(op_, [&](auto cmp) {
          RefineAgainstColumn(sel, ca->doubles(), cb->doubles(), cmp);
        });
      }
      return;
    }
    CompactSelection(sel, [&](int64_t r) {
      const double x = NumAt(*ca, r);
      const double y = NumAt(*cb, r);
      return Apply(x < y ? -1 : (x > y ? 1 : 0)) != 0;
    });
  }

 private:
  int64_t Apply(int cmp) const {
    switch (op_) {
      case CmpOp::kEq: return cmp == 0;
      case CmpOp::kNe: return cmp != 0;
      case CmpOp::kLt: return cmp < 0;
      case CmpOp::kLe: return cmp <= 0;
      case CmpOp::kGt: return cmp > 0;
      case CmpOp::kGe: return cmp >= 0;
    }
    return 0;
  }

  CmpOp op_;
  ExprPtr a_;
  ExprPtr b_;
};

enum class BoolOp { kAnd, kOr, kNot };

class Logical final : public Expr {
 public:
  void CollectColumns(std::set<std::string>* out) const override {
    a_->CollectColumns(out);
    if (b_ != nullptr) b_->CollectColumns(out);
  }
  Logical(BoolOp op, ExprPtr a, ExprPtr b)
      : op_(op), a_(std::move(a)), b_(std::move(b)) {}
  DataType OutputType(const Table&) const override {
    return DataType::kInt64;
  }
  Column Eval(const Table& input) const override {
    const Column ca = a_->Eval(input);
    const int64_t n = input.num_rows();
    Column out(DataType::kInt64);
    out.ints().resize(static_cast<size_t>(n));
    if (op_ == BoolOp::kNot) {
      for (int64_t r = 0; r < n; ++r) {
        out.ints()[static_cast<size_t>(r)] =
            ca.ints()[static_cast<size_t>(r)] == 0;
      }
      return out;
    }
    const Column cb = b_->Eval(input);
    for (int64_t r = 0; r < n; ++r) {
      const bool x = ca.ints()[static_cast<size_t>(r)] != 0;
      const bool y = cb.ints()[static_cast<size_t>(r)] != 0;
      out.ints()[static_cast<size_t>(r)] =
          (op_ == BoolOp::kAnd) ? (x && y) : (x || y);
    }
    return out;
  }

  void InitSelection(const Table& input,
                     std::vector<int64_t>& sel) const override {
    if (op_ == BoolOp::kAnd) {
      // Each AND leg only inspects rows that survived the previous legs.
      a_->InitSelection(input, sel);
      if (!sel.empty()) b_->Refine(input, sel);
      return;
    }
    Expr::InitSelection(input, sel);
  }

  void Refine(const Table& input, std::vector<int64_t>& sel) const override {
    if (sel.empty()) return;
    if (op_ == BoolOp::kAnd) {
      a_->Refine(input, sel);
      if (!sel.empty()) b_->Refine(input, sel);
      return;
    }
    Expr::Refine(input, sel);
  }

 private:
  BoolOp op_;
  ExprPtr a_;
  ExprPtr b_;
};

class InIntExpr final : public Expr {
 public:
  void CollectColumns(std::set<std::string>* out) const override {
    x_->CollectColumns(out);
  }
  InIntExpr(ExprPtr x, std::vector<int64_t> values)
      : x_(std::move(x)), values_(values.begin(), values.end()) {}
  DataType OutputType(const Table&) const override {
    return DataType::kInt64;
  }
  Column Eval(const Table& input) const override {
    const Column cx = x_->Eval(input);
    const int64_t n = input.num_rows();
    Column out(DataType::kInt64);
    out.ints().resize(static_cast<size_t>(n));
    for (int64_t r = 0; r < n; ++r) {
      out.ints()[static_cast<size_t>(r)] =
          values_.count(cx.ints()[static_cast<size_t>(r)]) > 0;
    }
    return out;
  }

  void Refine(const Table& input, std::vector<int64_t>& sel) const override {
    if (sel.empty()) return;
    Column storage;
    const Column* cx = BorrowOrEval(*x_, input, &storage);
    const auto& xs = cx->ints();
    CompactSelection(sel, [&](int64_t r) {
      return values_.count(xs[static_cast<size_t>(r)]) > 0;
    });
  }

 private:
  ExprPtr x_;
  std::unordered_set<int64_t> values_;
};

class InStringExpr final : public Expr {
 public:
  void CollectColumns(std::set<std::string>* out) const override {
    x_->CollectColumns(out);
  }
  InStringExpr(ExprPtr x, std::vector<std::string> values)
      : x_(std::move(x)), values_(values.begin(), values.end()) {}
  DataType OutputType(const Table&) const override {
    return DataType::kInt64;
  }
  Column Eval(const Table& input) const override {
    const Column cx = x_->Eval(input);
    const int64_t n = input.num_rows();
    Column out(DataType::kInt64);
    out.ints().resize(static_cast<size_t>(n));
    for (int64_t r = 0; r < n; ++r) {
      out.ints()[static_cast<size_t>(r)] =
          values_.count(cx.strings()[static_cast<size_t>(r)]) > 0;
    }
    return out;
  }

  void Refine(const Table& input, std::vector<int64_t>& sel) const override {
    if (sel.empty()) return;
    Column storage;
    const Column* cx = BorrowOrEval(*x_, input, &storage);
    if (cx->has_dict()) {
      const StringDictionary& dict = cx->dict();
      std::vector<uint8_t> dmatch(static_cast<size_t>(dict.size()));
      for (size_t d = 0; d < dmatch.size(); ++d) {
        dmatch[d] = values_.count(dict.values()[d]) > 0;
      }
      const std::vector<int32_t>& codes = cx->codes();
      ExecMetrics().dict_predicate_evals.fetch_add(1,
                                                   std::memory_order_relaxed);
      CompactSelection(sel, [&](int64_t r) {
        return dmatch[static_cast<size_t>(codes[static_cast<size_t>(r)])] != 0;
      });
      return;
    }
    const auto& xs = cx->strings();
    CompactSelection(sel, [&](int64_t r) {
      return values_.count(xs[static_cast<size_t>(r)]) > 0;
    });
  }

 private:
  ExprPtr x_;
  std::unordered_set<std::string> values_;
};

enum class StrMatch { kContains, kPrefix, kSuffix, kContainsSeq };

class StringMatch final : public Expr {
 public:
  void CollectColumns(std::set<std::string>* out) const override {
    x_->CollectColumns(out);
  }
  StringMatch(StrMatch kind, ExprPtr x, std::string a, std::string b = "")
      : kind_(kind), x_(std::move(x)), a_(std::move(a)), b_(std::move(b)) {}
  DataType OutputType(const Table&) const override {
    return DataType::kInt64;
  }
  Column Eval(const Table& input) const override {
    const Column cx = x_->Eval(input);
    const int64_t n = input.num_rows();
    Column out(DataType::kInt64);
    out.ints().resize(static_cast<size_t>(n));
    for (int64_t r = 0; r < n; ++r) {
      out.ints()[static_cast<size_t>(r)] =
          MatchOne(cx.strings()[static_cast<size_t>(r)]);
    }
    return out;
  }

  void InitSelection(const Table& input,
                     std::vector<int64_t>& sel) const override {
    sel.reserve(static_cast<size_t>(input.num_rows()));
    for (int64_t r = 0; r < input.num_rows(); ++r) sel.push_back(r);
    Refine(input, sel);
  }

  void Refine(const Table& input, std::vector<int64_t>& sel) const override {
    if (sel.empty()) return;
    Column storage;
    const Column* cx = BorrowOrEval(*x_, input, &storage);
    if (cx->has_dict()) {
      // LIKE over a dictionary column: run the substring scan once per
      // dictionary entry, then test codes per row.
      const StringDictionary& dict = cx->dict();
      std::vector<uint8_t> dmatch(static_cast<size_t>(dict.size()));
      for (size_t d = 0; d < dmatch.size(); ++d) {
        dmatch[d] = MatchOne(dict.values()[d]);
      }
      const std::vector<int32_t>& codes = cx->codes();
      ExecMetrics().dict_predicate_evals.fetch_add(1,
                                                   std::memory_order_relaxed);
      CompactSelection(sel, [&](int64_t r) {
        return dmatch[static_cast<size_t>(codes[static_cast<size_t>(r)])] != 0;
      });
      return;
    }
    const auto& xs = cx->strings();
    CompactSelection(
        sel, [&](int64_t r) { return MatchOne(xs[static_cast<size_t>(r)]); });
  }

 private:
  bool MatchOne(const std::string& s) const {
    switch (kind_) {
      case StrMatch::kContains:
        return s.find(a_) != std::string::npos;
      case StrMatch::kPrefix:
        return s.rfind(a_, 0) == 0;
      case StrMatch::kSuffix:
        return s.size() >= a_.size() &&
               s.compare(s.size() - a_.size(), a_.size(), a_) == 0;
      case StrMatch::kContainsSeq: {
        const size_t p = s.find(a_);
        return p != std::string::npos &&
               s.find(b_, p + a_.size()) != std::string::npos;
      }
    }
    return false;
  }

  StrMatch kind_;
  ExprPtr x_;
  std::string a_;
  std::string b_;
};

class IfExpr final : public Expr {
 public:
  void CollectColumns(std::set<std::string>* out) const override {
    cond_->CollectColumns(out);
    a_->CollectColumns(out);
    b_->CollectColumns(out);
  }
  IfExpr(ExprPtr cond, ExprPtr a, ExprPtr b)
      : cond_(std::move(cond)), a_(std::move(a)), b_(std::move(b)) {}
  DataType OutputType(const Table& input) const override {
    const DataType ta = a_->OutputType(input);
    const DataType tb = b_->OutputType(input);
    if (ta == DataType::kString || tb == DataType::kString) {
      CACKLE_CHECK(ta == tb);
      return DataType::kString;
    }
    return (ta == DataType::kInt64 && tb == DataType::kInt64)
               ? DataType::kInt64
               : DataType::kFloat64;
  }
  Column Eval(const Table& input) const override {
    const Column cc = cond_->Eval(input);
    const Column ca = a_->Eval(input);
    const Column cb = b_->Eval(input);
    const int64_t n = input.num_rows();
    const DataType out_type = OutputType(input);
    Column out(out_type);
    for (int64_t r = 0; r < n; ++r) {
      const bool take_a = cc.ints()[static_cast<size_t>(r)] != 0;
      const Column& src = take_a ? ca : cb;
      switch (out_type) {
        case DataType::kInt64:
          out.ints().push_back(src.ints()[static_cast<size_t>(r)]);
          break;
        case DataType::kFloat64:
          out.doubles().push_back(NumAt(src, r));
          break;
        case DataType::kString:
          out.strings().push_back(src.strings()[static_cast<size_t>(r)]);
          break;
      }
    }
    return out;
  }

 private:
  ExprPtr cond_;
  ExprPtr a_;
  ExprPtr b_;
};

class YearExpr final : public Expr {
 public:
  void CollectColumns(std::set<std::string>* out) const override {
    date_->CollectColumns(out);
  }
  explicit YearExpr(ExprPtr date) : date_(std::move(date)) {}
  DataType OutputType(const Table&) const override {
    return DataType::kInt64;
  }
  Column Eval(const Table& input) const override {
    const Column cd = date_->Eval(input);
    const int64_t n = input.num_rows();
    Column out(DataType::kInt64);
    out.ints().resize(static_cast<size_t>(n));
    for (int64_t r = 0; r < n; ++r) {
      out.ints()[static_cast<size_t>(r)] =
          CivilFromDate(cd.ints()[static_cast<size_t>(r)]).year;
    }
    return out;
  }

 private:
  ExprPtr date_;
};

class SubstrExpr final : public Expr {
 public:
  void CollectColumns(std::set<std::string>* out) const override {
    x_->CollectColumns(out);
  }
  SubstrExpr(ExprPtr x, int n) : x_(std::move(x)), n_(n) {}
  DataType OutputType(const Table&) const override {
    return DataType::kString;
  }
  Column Eval(const Table& input) const override {
    const Column cx = x_->Eval(input);
    Column out(DataType::kString);
    out.strings().reserve(static_cast<size_t>(input.num_rows()));
    for (const std::string& s : cx.strings()) {
      out.strings().push_back(s.substr(0, static_cast<size_t>(n_)));
    }
    return out;
  }

 private:
  ExprPtr x_;
  int n_;
};

}  // namespace

ExprPtr Col(std::string name) { return std::make_shared<ColRef>(std::move(name)); }
ExprPtr Lit(int64_t v) { return std::make_shared<IntLit>(v); }
ExprPtr Lit(double v) { return std::make_shared<DoubleLit>(v); }
ExprPtr Lit(std::string v) { return std::make_shared<StringLit>(std::move(v)); }

ExprPtr Add(ExprPtr a, ExprPtr b) {
  return std::make_shared<Arith>(ArithOp::kAdd, std::move(a), std::move(b));
}
ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return std::make_shared<Arith>(ArithOp::kSub, std::move(a), std::move(b));
}
ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return std::make_shared<Arith>(ArithOp::kMul, std::move(a), std::move(b));
}
ExprPtr Div(ExprPtr a, ExprPtr b) {
  return std::make_shared<Arith>(ArithOp::kDiv, std::move(a), std::move(b));
}

ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return std::make_shared<Compare>(CmpOp::kEq, std::move(a), std::move(b));
}
ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return std::make_shared<Compare>(CmpOp::kNe, std::move(a), std::move(b));
}
ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return std::make_shared<Compare>(CmpOp::kLt, std::move(a), std::move(b));
}
ExprPtr Le(ExprPtr a, ExprPtr b) {
  return std::make_shared<Compare>(CmpOp::kLe, std::move(a), std::move(b));
}
ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return std::make_shared<Compare>(CmpOp::kGt, std::move(a), std::move(b));
}
ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return std::make_shared<Compare>(CmpOp::kGe, std::move(a), std::move(b));
}

ExprPtr And(ExprPtr a, ExprPtr b) {
  return std::make_shared<Logical>(BoolOp::kAnd, std::move(a), std::move(b));
}
ExprPtr Or(ExprPtr a, ExprPtr b) {
  return std::make_shared<Logical>(BoolOp::kOr, std::move(a), std::move(b));
}
ExprPtr Not(ExprPtr a) {
  return std::make_shared<Logical>(BoolOp::kNot, std::move(a), nullptr);
}

ExprPtr AllOf(std::vector<ExprPtr> exprs) {
  CACKLE_CHECK(!exprs.empty());
  ExprPtr out = exprs[0];
  for (size_t i = 1; i < exprs.size(); ++i) out = And(out, exprs[i]);
  return out;
}

ExprPtr Between(ExprPtr x, ExprPtr lo, ExprPtr hi) {
  ExprPtr lower = Ge(x, std::move(lo));
  ExprPtr upper = Le(std::move(x), std::move(hi));
  return And(std::move(lower), std::move(upper));
}

ExprPtr InInt(ExprPtr x, std::vector<int64_t> values) {
  return std::make_shared<InIntExpr>(std::move(x), std::move(values));
}
ExprPtr InString(ExprPtr x, std::vector<std::string> values) {
  return std::make_shared<InStringExpr>(std::move(x), std::move(values));
}

ExprPtr StrContains(ExprPtr x, std::string needle) {
  return std::make_shared<StringMatch>(StrMatch::kContains, std::move(x),
                                       std::move(needle));
}
ExprPtr StrPrefix(ExprPtr x, std::string prefix) {
  return std::make_shared<StringMatch>(StrMatch::kPrefix, std::move(x),
                                       std::move(prefix));
}
ExprPtr StrSuffix(ExprPtr x, std::string suffix) {
  return std::make_shared<StringMatch>(StrMatch::kSuffix, std::move(x),
                                       std::move(suffix));
}
ExprPtr StrContainsSeq(ExprPtr x, std::string first, std::string second) {
  return std::make_shared<StringMatch>(StrMatch::kContainsSeq, std::move(x),
                                       std::move(first), std::move(second));
}

ExprPtr If(ExprPtr cond, ExprPtr a, ExprPtr b) {
  return std::make_shared<IfExpr>(std::move(cond), std::move(a), std::move(b));
}

ExprPtr Year(ExprPtr date) { return std::make_shared<YearExpr>(std::move(date)); }

ExprPtr Substr(ExprPtr x, int n) {
  return std::make_shared<SubstrExpr>(std::move(x), n);
}

std::set<std::string> ReferencedColumns(const ExprPtr& expr) {
  std::set<std::string> out;
  if (expr != nullptr) expr->CollectColumns(&out);
  return out;
}

void Expr::InitSelection(const Table& input, std::vector<int64_t>& sel) const {
  const Column mask = Eval(input);
  const std::vector<int64_t>& m = mask.ints();
  size_t hits = 0;
  for (int64_t v : m) hits += (v != 0);
  sel.reserve(hits);
  for (size_t r = 0; r < m.size(); ++r) {
    if (m[r] != 0) sel.push_back(static_cast<int64_t>(r));
  }
}

void Expr::Refine(const Table& input, std::vector<int64_t>& sel) const {
  if (sel.empty()) return;
  const Column mask = Eval(input);
  const std::vector<int64_t>& m = mask.ints();
  CompactSelection(sel,
                   [&](int64_t r) { return m[static_cast<size_t>(r)] != 0; });
}

std::vector<int64_t> EvalPredicateSelection(const ExprPtr& pred,
                                            const Table& input) {
  std::vector<int64_t> sel;
  CACKLE_CHECK(pred != nullptr);
  pred->InitSelection(input, sel);
  ExecMetrics().selection_filters.fetch_add(1, std::memory_order_relaxed);
  return sel;
}

}  // namespace cackle::exec
