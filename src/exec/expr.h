#ifndef CACKLE_EXEC_EXPR_H_
#define CACKLE_EXEC_EXPR_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "exec/table.h"

namespace cackle::exec {

/// \brief A vectorized scalar expression evaluated over a Table.
///
/// Expressions are immutable trees built with the factory functions below
/// (Col, Lit, Add, Lt, And, ...). Boolean results are kInt64 columns of
/// 0/1. Arithmetic on mixed int/double promotes to double.
class Expr {
 public:
  virtual ~Expr() = default;
  /// Result type given the input schema.
  virtual DataType OutputType(const Table& input) const = 0;
  /// Evaluates over all rows of `input`.
  virtual Column Eval(const Table& input) const = 0;
  /// Adds the names of all referenced columns to `out` (used by the
  /// logical optimizer for predicate pushdown and column pruning).
  virtual void CollectColumns(std::set<std::string>* out) const = 0;

  // --- selection-vector kernels (vectorized Filter) -------------------------
  //
  // Instead of materializing a 0/1 mask column per predicate node and then
  // copying survivors, Filter asks the predicate tree for a selection
  // vector of matching row indices. Conjunctions refine the selection in
  // place (each AND leg only inspects surviving rows), and leaf predicates
  // provide typed kernels that read columns directly — including
  // dictionary-aware paths that evaluate a string predicate once per
  // dictionary entry and then test fixed-width codes per row.

  /// Appends the indices of rows where this (boolean 0/1 int64) expression
  /// is non-zero to `sel` (which must be empty). Default implementation
  /// evaluates the full mask with a counting first pass.
  virtual void InitSelection(const Table& input,
                             std::vector<int64_t>& sel) const;

  /// Filters `sel` in place, keeping rows where this predicate is non-zero.
  virtual void Refine(const Table& input, std::vector<int64_t>& sel) const;

  /// For plain column references: the input column, borrowed without a
  /// copy. Null for computed expressions.
  virtual const Column* TryBorrow(const Table& input) const {
    (void)input;
    return nullptr;
  }

  /// For string literals: the literal value. Null otherwise.
  virtual const std::string* TryStringLiteral() const { return nullptr; }

  /// For int/double literals: the literal value, null otherwise. These let
  /// the selection kernels lower column-vs-literal comparisons to typed
  /// branchless loops (no per-row double conversion, no literal-column
  /// materialization) that the compiler auto-vectorizes.
  virtual const int64_t* TryIntLiteral() const { return nullptr; }
  virtual const double* TryDoubleLiteral() const { return nullptr; }
};

using ExprPtr = std::shared_ptr<const Expr>;

/// Row indices (ascending) of `input` where `pred` is non-zero.
std::vector<int64_t> EvalPredicateSelection(const ExprPtr& pred,
                                            const Table& input);

/// Convenience: referenced columns of a (possibly null) expression.
std::set<std::string> ReferencedColumns(const ExprPtr& expr);

/// Column reference by name (resolved against the input schema per batch).
ExprPtr Col(std::string name);
/// Literals.
ExprPtr Lit(int64_t v);
ExprPtr Lit(double v);
ExprPtr Lit(std::string v);

/// Arithmetic (numeric inputs).
ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr Mul(ExprPtr a, ExprPtr b);
ExprPtr Div(ExprPtr a, ExprPtr b);

/// Comparisons (numeric or string; both sides must match kind).
ExprPtr Eq(ExprPtr a, ExprPtr b);
ExprPtr Ne(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr Le(ExprPtr a, ExprPtr b);
ExprPtr Gt(ExprPtr a, ExprPtr b);
ExprPtr Ge(ExprPtr a, ExprPtr b);

/// Boolean connectives over 0/1 int columns.
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr a);
/// Convenience n-ary and.
ExprPtr AllOf(std::vector<ExprPtr> exprs);

/// a <= x && x <= b.
ExprPtr Between(ExprPtr x, ExprPtr lo, ExprPtr hi);

/// Set membership.
ExprPtr InInt(ExprPtr x, std::vector<int64_t> values);
ExprPtr InString(ExprPtr x, std::vector<std::string> values);

/// String predicates (the executor's LIKE subset: '%kw%', 'kw%', '%kw').
ExprPtr StrContains(ExprPtr x, std::string needle);
ExprPtr StrPrefix(ExprPtr x, std::string prefix);
ExprPtr StrSuffix(ExprPtr x, std::string suffix);
/// '%kw1%kw2%' (two keywords in order, used by Q13's NOT LIKE).
ExprPtr StrContainsSeq(ExprPtr x, std::string first, std::string second);

/// if (cond) a else b; a and b must share a type kind.
ExprPtr If(ExprPtr cond, ExprPtr a, ExprPtr b);

/// Extracts the year of a date column (int64 days) as int64.
ExprPtr Year(ExprPtr date);

/// First `n` characters of a string column.
ExprPtr Substr(ExprPtr x, int n);

}  // namespace cackle::exec

#endif  // CACKLE_EXEC_EXPR_H_
