#ifndef CACKLE_EXEC_FLAT_HASH_H_
#define CACKLE_EXEC_FLAT_HASH_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace cackle::exec {

/// Strong 64-bit mixer (splitmix64 finalizer). Packed keys are often dense
/// small integers, so the identity hash would cluster; this spreads them.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// \brief Open-addressing (linear probing, power-of-two capacity) map from
/// `uint64_t` packed keys to non-negative `int64_t` values.
///
/// This is the build side of the executor's vectorized hash join /
/// aggregate: one flat allocation, no per-key nodes, no chaining pointers.
/// Values are row or group ids, always >= 0; -1 marks an empty slot, so no
/// separate occupancy bitmap is needed. Grows at 7/8 load factor.
class FlatMap64 {
 public:
  explicit FlatMap64(int64_t expected = 0) {
    size_t cap = 16;
    while (cap * 7 < static_cast<size_t>(expected < 0 ? 0 : expected) * 8) {
      cap *= 2;
    }
    keys_.assign(cap, 0);
    vals_.assign(cap, kEmpty);
    mask_ = cap - 1;
  }

  int64_t size() const { return size_; }
  int64_t capacity() const { return static_cast<int64_t>(vals_.size()); }
  int64_t resizes() const { return resizes_; }

  /// Returns the value slot for `key`, inserting `fresh` when absent;
  /// `*inserted` reports which happened.
  int64_t FindOrInsert(uint64_t key, int64_t fresh, bool* inserted) {
    return FindOrInsertHashed(key, Mix64(key), fresh, inserted);
  }

  /// FindOrInsert with the caller-supplied hash (must equal Mix64(key));
  /// lets batch loops compute each hash once and share it with radix
  /// partitioning and bloom filters.
  int64_t FindOrInsertHashed(uint64_t key, uint64_t hash, int64_t fresh,
                             bool* inserted) {
    size_t idx = hash & mask_;
    for (;;) {
      if (vals_[idx] == kEmpty) {
        keys_[idx] = key;
        vals_[idx] = fresh;
        ++size_;
        *inserted = true;
        if (static_cast<size_t>(size_) * 8 > mask_ * 7) Grow();
        return fresh;
      }
      if (keys_[idx] == key) {
        *inserted = false;
        return vals_[idx];
      }
      idx = (idx + 1) & mask_;
    }
  }

  /// Overwrites the value for `key` (which must already be present or be
  /// freshly inserted via FindOrInsert).
  void Update(uint64_t key, int64_t value) {
    size_t idx = Mix64(key) & mask_;
    while (vals_[idx] != kEmpty) {
      if (keys_[idx] == key) {
        vals_[idx] = value;
        return;
      }
      idx = (idx + 1) & mask_;
    }
    CACKLE_CHECK(false) << "FlatMap64::Update of absent key";
  }

  /// Value for `key`, or -1 when absent.
  int64_t Find(uint64_t key) const { return FindHashed(key, Mix64(key)); }

  /// Find with the caller-supplied hash (must equal Mix64(key)).
  int64_t FindHashed(uint64_t key, uint64_t hash) const {
    size_t idx = hash & mask_;
    while (vals_[idx] != kEmpty) {
      if (keys_[idx] == key) return vals_[idx];
      idx = (idx + 1) & mask_;
    }
    return kEmpty;
  }

  /// Prefetches the home slot for `hash`; batch probe loops issue a wave of
  /// prefetches, then probe, hiding the table's cache misses.
  void Prefetch(uint64_t hash) const {
    const size_t idx = hash & mask_;
    __builtin_prefetch(&keys_[idx]);
    __builtin_prefetch(&vals_[idx]);
  }

 private:
  static constexpr int64_t kEmpty = -1;

  void Grow() {
    const size_t new_cap = (mask_ + 1) * 2;
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<int64_t> old_vals = std::move(vals_);
    keys_.assign(new_cap, 0);
    vals_.assign(new_cap, kEmpty);
    mask_ = new_cap - 1;
    for (size_t i = 0; i < old_vals.size(); ++i) {
      if (old_vals[i] == kEmpty) continue;
      size_t idx = Mix64(old_keys[i]) & mask_;
      while (vals_[idx] != kEmpty) idx = (idx + 1) & mask_;
      keys_[idx] = old_keys[i];
      vals_[idx] = old_vals[i];
    }
    ++resizes_;
  }

  std::vector<uint64_t> keys_;
  std::vector<int64_t> vals_;
  size_t mask_ = 0;
  int64_t size_ = 0;
  int64_t resizes_ = 0;
};

}  // namespace cackle::exec

#endif  // CACKLE_EXEC_FLAT_HASH_H_
