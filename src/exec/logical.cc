#include "exec/logical.h"

#include <sstream>

#include "common/logging.h"
#include "exec/datagen.h"

namespace cackle::exec {

LogicalNodePtr LScan(std::string table_name) {
  auto node = std::make_shared<LogicalNode>();
  node->type = LogicalOpType::kScan;
  node->table_name = std::move(table_name);
  return node;
}

LogicalNodePtr LFilter(LogicalNodePtr input, ExprPtr predicate) {
  CACKLE_CHECK(predicate != nullptr);
  // Collapse adjacent filters into one conjunct list so the pushdown rule
  // can move the pieces independently.
  if (input->type == LogicalOpType::kFilter) {
    input->conjuncts.push_back(std::move(predicate));
    return input;
  }
  auto node = std::make_shared<LogicalNode>();
  node->type = LogicalOpType::kFilter;
  node->children = {std::move(input)};
  node->conjuncts.push_back(std::move(predicate));
  return node;
}

LogicalNodePtr LProject(LogicalNodePtr input, std::vector<NamedExpr> items) {
  CACKLE_CHECK(!items.empty());
  auto node = std::make_shared<LogicalNode>();
  node->type = LogicalOpType::kProject;
  node->children = {std::move(input)};
  node->projections = std::move(items);
  return node;
}

LogicalNodePtr LJoin(LogicalNodePtr left, LogicalNodePtr right,
                     std::vector<std::string> left_keys,
                     std::vector<std::string> right_keys, JoinType type) {
  CACKLE_CHECK_EQ(left_keys.size(), right_keys.size());
  CACKLE_CHECK(!left_keys.empty());
  auto node = std::make_shared<LogicalNode>();
  node->type = LogicalOpType::kJoin;
  node->children = {std::move(left), std::move(right)};
  node->left_keys = std::move(left_keys);
  node->right_keys = std::move(right_keys);
  node->join_type = type;
  return node;
}

LogicalNodePtr LAggregate(LogicalNodePtr input,
                          std::vector<std::string> group_by,
                          std::vector<AggSpec> aggregates) {
  CACKLE_CHECK(!aggregates.empty());
  auto node = std::make_shared<LogicalNode>();
  node->type = LogicalOpType::kAggregate;
  node->children = {std::move(input)};
  node->group_by = std::move(group_by);
  node->aggregates = std::move(aggregates);
  return node;
}

LogicalNodePtr LSort(LogicalNodePtr input, std::vector<SortKey> keys,
                     int64_t limit) {
  auto node = std::make_shared<LogicalNode>();
  node->type = LogicalOpType::kSort;
  node->children = {std::move(input)};
  node->sort_keys = std::move(keys);
  node->limit = limit;
  return node;
}

void TableResolver::Register(std::string name, const Table* table) {
  CACKLE_CHECK(table != nullptr);
  tables_.emplace_back(std::move(name), table);
}

TableResolver TableResolver::ForCatalog(const Catalog& catalog) {
  TableResolver resolver;
  resolver.Register("region", &catalog.region);
  resolver.Register("nation", &catalog.nation);
  resolver.Register("supplier", &catalog.supplier);
  resolver.Register("part", &catalog.part);
  resolver.Register("partsupp", &catalog.partsupp);
  resolver.Register("customer", &catalog.customer);
  resolver.Register("orders", &catalog.orders);
  resolver.Register("lineitem", &catalog.lineitem);
  return resolver;
}

const Table* TableResolver::Find(const std::string& name) const {
  for (const auto& [n, t] : tables_) {
    if (n == name) return t;
  }
  return nullptr;
}

namespace {

/// Builds a zero-row table with the given schema, so expression output
/// types can be inferred without data.
Table EmptyOf(const std::vector<ColumnDef>& schema) { return Table(schema); }

int FindDef(const std::vector<ColumnDef>& schema, const std::string& name) {
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

StatusOr<std::vector<ColumnDef>> OutputSchema(const LogicalNodePtr& node,
                                              const TableResolver& resolver) {
  CACKLE_CHECK(node != nullptr);
  switch (node->type) {
    case LogicalOpType::kScan: {
      const Table* table = resolver.Find(node->table_name);
      if (table == nullptr) {
        return Status::NotFound("unknown table " + node->table_name);
      }
      if (node->scan_columns.empty()) return table->schema();
      std::vector<ColumnDef> out;
      for (const std::string& name : node->scan_columns) {
        const int i = FindDef(table->schema(), name);
        if (i < 0) {
          return Status::NotFound("table " + node->table_name +
                                  " has no column " + name);
        }
        out.push_back(table->schema()[static_cast<size_t>(i)]);
      }
      return out;
    }
    case LogicalOpType::kFilter: {
      CACKLE_ASSIGN_OR_RETURN(const std::vector<ColumnDef> child,
                              OutputSchema(node->children[0], resolver));
      for (const ExprPtr& conjunct : node->conjuncts) {
        for (const std::string& ref : ReferencedColumns(conjunct)) {
          if (FindDef(child, ref) < 0) {
            return Status::NotFound("filter references missing column " +
                                    ref);
          }
        }
      }
      return child;
    }
    case LogicalOpType::kProject: {
      CACKLE_ASSIGN_OR_RETURN(const std::vector<ColumnDef> child,
                              OutputSchema(node->children[0], resolver));
      const Table empty = EmptyOf(child);
      std::vector<ColumnDef> out;
      for (const NamedExpr& item : node->projections) {
        // Verify references resolve before asking for the type.
        for (const std::string& ref : ReferencedColumns(item.expr)) {
          if (FindDef(child, ref) < 0) {
            return Status::NotFound("projection references missing column " +
                                    ref);
          }
        }
        out.push_back(ColumnDef{item.name, item.expr->OutputType(empty)});
      }
      return out;
    }
    case LogicalOpType::kJoin: {
      CACKLE_ASSIGN_OR_RETURN(std::vector<ColumnDef> left,
                              OutputSchema(node->children[0], resolver));
      CACKLE_ASSIGN_OR_RETURN(const std::vector<ColumnDef> right,
                              OutputSchema(node->children[1], resolver));
      for (const std::string& key : node->left_keys) {
        if (FindDef(left, key) < 0) {
          return Status::NotFound("join: left side has no column " + key);
        }
      }
      for (const std::string& key : node->right_keys) {
        if (FindDef(right, key) < 0) {
          return Status::NotFound("join: right side has no column " + key);
        }
      }
      if (node->join_type == JoinType::kLeftSemi ||
          node->join_type == JoinType::kLeftAnti) {
        return left;
      }
      for (const ColumnDef& def : right) {
        if (FindDef(left, def.name) >= 0) {
          return Status::InvalidArgument("join: duplicate output column " +
                                         def.name);
        }
        left.push_back(def);
      }
      return left;
    }
    case LogicalOpType::kAggregate: {
      CACKLE_ASSIGN_OR_RETURN(const std::vector<ColumnDef> child,
                              OutputSchema(node->children[0], resolver));
      const Table empty = EmptyOf(child);
      std::vector<ColumnDef> out;
      for (const std::string& key : node->group_by) {
        const int i = FindDef(child, key);
        if (i < 0) return Status::NotFound("group key missing: " + key);
        out.push_back(child[static_cast<size_t>(i)]);
      }
      for (const AggSpec& agg : node->aggregates) {
        DataType type = DataType::kFloat64;
        if (agg.op == AggOp::kCount || agg.op == AggOp::kCountDistinct) {
          type = DataType::kInt64;
        } else if (agg.input != nullptr &&
                   agg.input->OutputType(empty) == DataType::kInt64 &&
                   (agg.op == AggOp::kMin || agg.op == AggOp::kMax ||
                    agg.op == AggOp::kSum)) {
          type = DataType::kInt64;
        }
        out.push_back(ColumnDef{agg.name, type});
      }
      return out;
    }
    case LogicalOpType::kSort:
      return OutputSchema(node->children[0], resolver);
  }
  return Status::Internal("unreachable");
}

namespace {

void ToStringImpl(const LogicalNodePtr& node, int depth, std::ostream& os) {
  const std::string indent(static_cast<size_t>(depth) * 2, ' ');
  os << indent;
  switch (node->type) {
    case LogicalOpType::kScan: {
      os << "Scan(" << node->table_name;
      if (!node->scan_columns.empty()) {
        os << " cols=[";
        for (size_t i = 0; i < node->scan_columns.size(); ++i) {
          os << (i ? "," : "") << node->scan_columns[i];
        }
        os << "]";
      }
      if (!node->scan_predicates.empty()) {
        os << " predicates=" << node->scan_predicates.size();
      }
      os << ")\n";
      return;
    }
    case LogicalOpType::kFilter:
      os << "Filter(conjuncts=" << node->conjuncts.size() << ")\n";
      break;
    case LogicalOpType::kProject:
      os << "Project(items=" << node->projections.size() << ")\n";
      break;
    case LogicalOpType::kJoin: {
      os << "Join(";
      switch (node->join_type) {
        case JoinType::kInner: os << "inner"; break;
        case JoinType::kLeftOuter: os << "left_outer"; break;
        case JoinType::kLeftSemi: os << "semi"; break;
        case JoinType::kLeftAnti: os << "anti"; break;
      }
      os << " on ";
      for (size_t i = 0; i < node->left_keys.size(); ++i) {
        os << (i ? "," : "") << node->left_keys[i] << "="
           << node->right_keys[i];
      }
      if (node->broadcast_right) os << " broadcast";
      os << ")\n";
      break;
    }
    case LogicalOpType::kAggregate: {
      os << "Aggregate(group=[";
      for (size_t i = 0; i < node->group_by.size(); ++i) {
        os << (i ? "," : "") << node->group_by[i];
      }
      os << "] aggs=" << node->aggregates.size() << ")\n";
      break;
    }
    case LogicalOpType::kSort:
      os << "Sort(keys=" << node->sort_keys.size();
      if (node->limit >= 0) os << " limit=" << node->limit;
      os << ")\n";
      break;
  }
  for (const LogicalNodePtr& child : node->children) {
    ToStringImpl(child, depth + 1, os);
  }
}

}  // namespace

std::string LogicalToString(const LogicalNodePtr& node) {
  std::ostringstream os;
  ToStringImpl(node, 0, os);
  return os.str();
}

}  // namespace cackle::exec
