#ifndef CACKLE_EXEC_LOGICAL_H_
#define CACKLE_EXEC_LOGICAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/operators.h"
#include "exec/table.h"

namespace cackle::exec {

/// \brief Logical relational operators.
///
/// The hand-built TPC-H plans in tpch_queries_*.cc are *physical* plans —
/// stages, task counts, shuffle keys chosen by hand, the way the paper's
/// system receives them ("Cackle is a query execution engine. It receives
/// physical query plans"). This layer is the planner front-end above that
/// interface: build a logical tree, let the optimizer push filters / prune
/// columns / pick join strategies, and lower it to a StagePlan that the
/// executor (or the engine's profiler) runs.
enum class LogicalOpType {
  kScan,
  kFilter,
  kProject,
  kJoin,
  kAggregate,
  kSort,
};

struct LogicalNode;
using LogicalNodePtr = std::shared_ptr<LogicalNode>;

/// \brief One node of a logical plan tree. Field groups are used according
/// to `type`; the builders below construct well-formed nodes.
struct LogicalNode {
  LogicalOpType type;
  std::vector<LogicalNodePtr> children;

  // kScan
  std::string table_name;
  /// Columns to read (empty = all); filled in by the pruning rule.
  std::vector<std::string> scan_columns;
  /// Predicate pushed into the scan by the optimizer.
  std::vector<ExprPtr> scan_predicates;

  // kFilter: a conjunction (kept split so pushdown can move conjuncts
  // independently).
  std::vector<ExprPtr> conjuncts;

  // kProject
  std::vector<NamedExpr> projections;

  // kJoin
  JoinType join_type = JoinType::kInner;
  std::vector<std::string> left_keys;
  std::vector<std::string> right_keys;
  /// Set by the optimizer: build/broadcast the right side to every task
  /// instead of co-partitioning. Always valid; a cost heuristic decides.
  bool broadcast_right = false;

  // kAggregate
  std::vector<std::string> group_by;
  std::vector<AggSpec> aggregates;

  // kSort
  std::vector<SortKey> sort_keys;
  int64_t limit = -1;
};

// Builders.
LogicalNodePtr LScan(std::string table_name);
LogicalNodePtr LFilter(LogicalNodePtr input, ExprPtr predicate);
LogicalNodePtr LProject(LogicalNodePtr input, std::vector<NamedExpr> items);
LogicalNodePtr LJoin(LogicalNodePtr left, LogicalNodePtr right,
                     std::vector<std::string> left_keys,
                     std::vector<std::string> right_keys,
                     JoinType type = JoinType::kInner);
LogicalNodePtr LAggregate(LogicalNodePtr input,
                          std::vector<std::string> group_by,
                          std::vector<AggSpec> aggregates);
LogicalNodePtr LSort(LogicalNodePtr input, std::vector<SortKey> keys,
                     int64_t limit = -1);

/// \brief Resolves logical table names to base tables (and provides row
/// counts for the optimizer's heuristics).
class TableResolver {
 public:
  void Register(std::string name, const Table* table);
  /// Registers the eight TPC-H tables under their standard names.
  static TableResolver ForCatalog(const struct Catalog& catalog);

  const Table* Find(const std::string& name) const;  // nullptr when absent

 private:
  std::vector<std::pair<std::string, const Table*>> tables_;
};

/// \brief Output schema of a logical node (used by validation, pruning and
/// lowering). Fails on unknown tables/columns or malformed nodes.
[[nodiscard]] StatusOr<std::vector<ColumnDef>> OutputSchema(const LogicalNodePtr& node,
                                              const TableResolver& resolver);

/// Renders the tree one node per line with indentation — the optimizer
/// tests assert on this.
std::string LogicalToString(const LogicalNodePtr& node);

}  // namespace cackle::exec

#endif  // CACKLE_EXEC_LOGICAL_H_
