#include "exec/lowering.h"

#include <algorithm>

#include "common/logging.h"
#include "exec/query_builder.h"

namespace cackle::exec {
namespace {

struct Lowering {
  PlanBuilder* builder;
  const TableResolver* resolver;
  int tasks;

  /// Lowers `node` into stages whose final output is hash-partitioned on
  /// `out_keys` into `out_partitions` (empty keys + 1 = gather). Returns
  /// the producing stage id.
  StatusOr<int> Lower(const LogicalNodePtr& node,
                      std::vector<std::string> out_keys, int out_partitions);
};

StatusOr<int> Lowering::Lower(const LogicalNodePtr& node,
                              std::vector<std::string> out_keys,
                              int out_partitions) {
  switch (node->type) {
    case LogicalOpType::kScan: {
      const Table* table = resolver->Find(node->table_name);
      if (table == nullptr) {
        return Status::NotFound("unknown table " + node->table_name);
      }
      ExprPtr filter;
      if (!node->scan_predicates.empty()) {
        filter = AllOf(node->scan_predicates);
      }
      std::vector<std::string> cols = node->scan_columns;
      if (cols.empty()) {
        for (const ColumnDef& def : table->schema()) {
          cols.push_back(def.name);
        }
      }
      std::vector<NamedExpr> projections;
      for (const std::string& name : cols) {
        projections.push_back(NamedExpr{Col(name), name});
      }
      return builder->AddScan("scan_" + node->table_name, table, tasks,
                              std::move(filter), std::move(projections),
                              std::move(out_keys), out_partitions);
    }
    case LogicalOpType::kFilter: {
      // Row-local: keep the child partitioned the same way and filter each
      // partition.
      const bool gathered = out_partitions == 1 && out_keys.empty();
      CACKLE_ASSIGN_OR_RETURN(
          const int child,
          Lower(node->children[0], out_keys, gathered ? 1 : tasks));
      const ExprPtr predicate = AllOf(node->conjuncts);
      auto run = [predicate](const TaskInput& in) {
        return Filter(*in.tables[0], predicate);
      };
      if (gathered) {
        return builder->AddSingleTask("filter", {child}, std::move(run));
      }
      return builder->AddPartitionedStage("filter", {child}, {false}, tasks,
                                          std::move(run), std::move(out_keys),
                                          out_partitions);
    }
    case LogicalOpType::kProject: {
      const bool gathered = out_partitions == 1 && out_keys.empty();
      // The child must be partitioned on columns that exist *below* the
      // projection; out_keys name post-projection columns. Use an
      // arbitrary-but-consistent child partitioning: the first
      // pass-through input column of the projection, or gather when there
      // is none.
      std::vector<std::string> child_keys;
      if (!gathered) {
        for (const NamedExpr& item : node->projections) {
          const std::set<std::string> refs = ReferencedColumns(item.expr);
          if (refs.size() == 1) {
            child_keys = {*refs.begin()};
            break;
          }
        }
      }
      const bool child_gathered = !gathered && child_keys.empty();
      CACKLE_ASSIGN_OR_RETURN(
          const int child,
          Lower(node->children[0], child_keys,
                (gathered || child_gathered) ? 1 : tasks));
      auto projections = node->projections;
      auto run = [projections](const TaskInput& in) {
        return Project(*in.tables[0], nullptr, projections);
      };
      if (gathered || child_gathered) {
        return builder->AddSingleTask("project", {child}, std::move(run),
                                      std::move(out_keys), out_partitions);
      }
      return builder->AddPartitionedStage("project", {child}, {false}, tasks,
                                          std::move(run), std::move(out_keys),
                                          out_partitions);
    }
    case LogicalOpType::kJoin: {
      // Key types must match or the hash join would silently mismatch.
      CACKLE_ASSIGN_OR_RETURN(const std::vector<ColumnDef> left_schema,
                              OutputSchema(node->children[0], *resolver));
      CACKLE_ASSIGN_OR_RETURN(const std::vector<ColumnDef> right_schema,
                              OutputSchema(node->children[1], *resolver));
      auto type_of = [](const std::vector<ColumnDef>& schema,
                        const std::string& name) {
        for (const ColumnDef& def : schema) {
          if (def.name == name) return def.type;
        }
        return DataType::kInt64;
      };
      for (size_t k = 0; k < node->left_keys.size(); ++k) {
        if (type_of(left_schema, node->left_keys[k]) !=
            type_of(right_schema, node->right_keys[k])) {
          return Status::InvalidArgument(
              "join key type mismatch on " + node->left_keys[k] + " vs " +
              node->right_keys[k]);
        }
      }
      const JoinType join_type = node->join_type;
      const auto left_keys = node->left_keys;
      const auto right_keys = node->right_keys;
      auto run = [left_keys, right_keys, join_type](const TaskInput& in) {
        return HashJoin(*in.tables[0], left_keys, *in.tables[1], right_keys,
                        join_type);
      };
      if (node->broadcast_right) {
        CACKLE_ASSIGN_OR_RETURN(const int right,
                                Lower(node->children[1], {}, 1));
        CACKLE_ASSIGN_OR_RETURN(const int left,
                                Lower(node->children[0], left_keys, tasks));
        return builder->AddPartitionedStage(
            "broadcast_join", {left, right}, {false, true}, tasks,
            std::move(run), std::move(out_keys), out_partitions);
      }
      CACKLE_ASSIGN_OR_RETURN(const int left,
                              Lower(node->children[0], left_keys, tasks));
      CACKLE_ASSIGN_OR_RETURN(const int right,
                              Lower(node->children[1], right_keys, tasks));
      return builder->AddPartitionedStage(
          "hash_join", {left, right}, {false, false}, tasks, std::move(run),
          std::move(out_keys), out_partitions);
    }
    case LogicalOpType::kAggregate: {
      const auto group_by = node->group_by;
      const auto aggregates = node->aggregates;
      auto run = [group_by, aggregates](const TaskInput& in) {
        return HashAggregate(*in.tables[0], group_by, aggregates);
      };
      if (group_by.empty()) {
        // Global aggregate: gather everything into one task.
        CACKLE_ASSIGN_OR_RETURN(const int child,
                                Lower(node->children[0], {}, 1));
        return builder->AddSingleTask("global_aggregate", {child},
                                      std::move(run), std::move(out_keys),
                                      out_partitions);
      }
      // Groups are complete within a partition when the input is shuffled
      // on the group keys.
      CACKLE_ASSIGN_OR_RETURN(const int child,
                              Lower(node->children[0], group_by, tasks));
      return builder->AddPartitionedStage(
          "aggregate", {child}, {false}, tasks, std::move(run),
          std::move(out_keys), out_partitions);
    }
    case LogicalOpType::kSort: {
      CACKLE_ASSIGN_OR_RETURN(const int child,
                              Lower(node->children[0], {}, 1));
      const auto keys = node->sort_keys;
      const int64_t limit = node->limit;
      return builder->AddSingleTask(
          "sort", {child},
          [keys, limit](const TaskInput& in) {
            return SortBy(*in.tables[0], keys, limit);
          },
          std::move(out_keys), out_partitions);
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace

StatusOr<StagePlan> LowerToStagePlan(const LogicalNodePtr& plan,
                                     const TableResolver& resolver,
                                     const PlanConfig& config,
                                     std::string name) {
  CACKLE_RETURN_IF_ERROR(OutputSchema(plan, resolver).status());
  PlanBuilder builder(std::move(name));
  Lowering lowering{&builder, &resolver, config.tasks};
  CACKLE_RETURN_IF_ERROR(lowering.Lower(plan, {}, 1).status());
  StagePlan stage_plan = builder.Build();
  ValidatePlan(stage_plan);
  return stage_plan;
}

}  // namespace cackle::exec
