#ifndef CACKLE_EXEC_LOWERING_H_
#define CACKLE_EXEC_LOWERING_H_

#include <string>

#include "common/status.h"
#include "exec/logical.h"
#include "exec/plan.h"
#include "exec/tpch_queries.h"

namespace cackle::exec {

/// \brief Lowers an (optimized) logical plan to a physical StagePlan in
/// Cackle's execution model: parallel scan stages with pushed predicates
/// and pruned columns, co-partitioned hash-join stages (or broadcast joins,
/// which gather the small side to one partition), partition-wise
/// aggregation (groups are complete within a partition because the input
/// is shuffled on the group keys), and a single-task final sort/gather.
///
/// The resulting plan runs on PlanExecutor exactly like the hand-built
/// TPC-H plans, and obeys the same partition-invariance property: results
/// are identical for any `config.tasks`.
[[nodiscard]] StatusOr<StagePlan> LowerToStagePlan(const LogicalNodePtr& plan,
                                     const TableResolver& resolver,
                                     const PlanConfig& config = PlanConfig(),
                                     std::string name = "logical_plan");

}  // namespace cackle::exec

#endif  // CACKLE_EXEC_LOWERING_H_
