#ifndef CACKLE_EXEC_OP_CONTEXT_H_
#define CACKLE_EXEC_OP_CONTEXT_H_

#include <cstdint>
#include <functional>

namespace cackle {
class ThreadPool;
}

namespace cackle::exec {

/// \brief Ambient execution context for intra-operator parallelism.
///
/// Operators (HashJoin, HashAggregate, PartitionByHash) are invoked through
/// stage `run` closures captured at lowering time, so executor knobs cannot
/// travel through operator signatures without rethreading every call site.
/// Instead the executor installs an OpExecContext in a thread-local slot
/// around each task body (ScopedOpExecContext in PlanRun::RunTask) and
/// operators read it via CurrentOpExecContext(). With no context installed
/// (unit tests, direct operator calls) the defaults reproduce serial
/// behavior exactly.
///
/// Determinism contract: every knob here changes only how work is split and
/// scheduled, never the produced rows or their order. Morsel partial states
/// land in per-index slots and merge in morsel-index order; radix
/// partitioning keeps each key's build rows in ascending row order; the
/// bloom filter only ever skips keys the hash table would also miss.
struct OpExecContext {
  /// Pool for intra-operator morsel/partition tasks; null runs them inline
  /// (still in the same deterministic order).
  ThreadPool* pool = nullptr;
  /// Rows per morsel for intra-operator splitting. 0 disables splitting.
  int64_t morsel_rows = 0;
  /// Radix bits for the partitioned hash-join build (2^bits partitions).
  /// 0 keeps the single flat build table.
  int radix_bits = 0;
  /// Build a blocked bloom filter from the join build side and consult it
  /// before each hash-table probe (false positives re-checked, never wrong;
  /// true matches never dropped).
  bool bloom_pushdown = false;
  /// Scratch reporting hook: an operator calls this once with the transient
  /// high-water bytes of its side allocations (packed-key vectors, radix
  /// partition lists, bloom filter, morsel emit buffers) so
  /// PlanRunStats::peak_resident_bytes can account for them. May be null.
  std::function<void(int64_t)> report_scratch_bytes;
};

namespace internal {
inline thread_local const OpExecContext* g_op_exec_context = nullptr;
}  // namespace internal

/// The context installed on this thread, or an all-defaults context (serial,
/// no morsels, no radix, no bloom) when none is installed.
inline const OpExecContext& CurrentOpExecContext() {
  static const OpExecContext kDefault;
  const OpExecContext* ctx = internal::g_op_exec_context;
  return ctx != nullptr ? *ctx : kDefault;
}

/// RAII installer for the thread-local context (same idiom as
/// ScopedLogContext). The referenced context must outlive the scope.
class ScopedOpExecContext {
 public:
  explicit ScopedOpExecContext(const OpExecContext* ctx)
      : previous_(internal::g_op_exec_context) {
    internal::g_op_exec_context = ctx;
  }
  ~ScopedOpExecContext() { internal::g_op_exec_context = previous_; }

  ScopedOpExecContext(const ScopedOpExecContext&) = delete;
  ScopedOpExecContext& operator=(const ScopedOpExecContext&) = delete;

 private:
  const OpExecContext* previous_;
};

}  // namespace cackle::exec

#endif  // CACKLE_EXEC_OP_CONTEXT_H_
