#include "exec/operators.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <unordered_map>

#include "common/logging.h"

namespace cackle::exec {
namespace {

/// A hashable/comparable composite key over selected columns of a row.
struct RowKey {
  std::vector<int64_t> ints;
  std::vector<std::string> strings;

  bool operator==(const RowKey& other) const {
    return ints == other.ints && strings == other.strings;
  }
};

struct RowKeyHash {
  size_t operator()(const RowKey& key) const {
    size_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](size_t v) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    for (int64_t v : key.ints) mix(std::hash<int64_t>{}(v));
    for (const std::string& s : key.strings) mix(std::hash<std::string>{}(s));
    return h;
  }
};

RowKey ExtractKey(const Table& t, const std::vector<int>& cols, int64_t row) {
  RowKey key;
  for (int c : cols) {
    const Column& col = t.column(c);
    switch (col.type()) {
      case DataType::kInt64:
        key.ints.push_back(col.ints()[static_cast<size_t>(row)]);
        break;
      case DataType::kFloat64:
        // Group/join on doubles: bit-cast for exact matching.
        key.ints.push_back(static_cast<int64_t>(
            std::hash<double>{}(col.doubles()[static_cast<size_t>(row)])));
        break;
      case DataType::kString:
        key.strings.push_back(col.strings()[static_cast<size_t>(row)]);
        break;
    }
  }
  return key;
}

std::vector<int> ResolveColumns(const Table& t,
                                const std::vector<std::string>& names) {
  std::vector<int> out;
  out.reserve(names.size());
  for (const std::string& n : names) out.push_back(t.ColumnIndex(n));
  return out;
}

}  // namespace

Table Filter(const Table& input, const ExprPtr& predicate) {
  CACKLE_CHECK(predicate != nullptr);
  const Column mask = predicate->Eval(input);
  std::vector<int64_t> keep;
  for (int64_t r = 0; r < input.num_rows(); ++r) {
    if (mask.ints()[static_cast<size_t>(r)] != 0) keep.push_back(r);
  }
  return input.TakeRows(keep);
}

Table Project(const Table& input, const ExprPtr& filter,
              const std::vector<NamedExpr>& projections) {
  const Table* source = &input;
  Table filtered;
  if (filter != nullptr) {
    filtered = Filter(input, filter);
    source = &filtered;
  }
  Table out;
  for (const NamedExpr& ne : projections) {
    Column col = ne.expr->Eval(*source);
    out.AddColumn(ColumnDef{ne.name, col.type()}, std::move(col));
  }
  return out;
}

Table HashJoin(const Table& left, const std::vector<std::string>& left_keys,
               const Table& right, const std::vector<std::string>& right_keys,
               JoinType type) {
  CACKLE_CHECK_EQ(left_keys.size(), right_keys.size());
  CACKLE_CHECK(!left_keys.empty());
  const std::vector<int> lcols = ResolveColumns(left, left_keys);
  const std::vector<int> rcols = ResolveColumns(right, right_keys);

  const bool emit_right =
      type == JoinType::kInner || type == JoinType::kLeftOuter;
  // Output schema: left columns then right columns; duplicate names CHECKed.
  std::vector<ColumnDef> defs = left.schema();
  if (emit_right) {
    for (const ColumnDef& def : right.schema()) {
      for (const ColumnDef& existing : defs) {
        CACKLE_CHECK(existing.name != def.name)
            << "duplicate column in join output: " << def.name;
      }
      defs.push_back(def);
    }
  }
  Table out(defs);

  // Build on the right side.
  std::unordered_map<RowKey, std::vector<int64_t>, RowKeyHash> build;
  build.reserve(static_cast<size_t>(right.num_rows()));
  for (int64_t r = 0; r < right.num_rows(); ++r) {
    build[ExtractKey(right, rcols, r)].push_back(r);
  }

  auto append_joined = [&](int64_t lrow, int64_t rrow) {
    for (int c = 0; c < left.num_columns(); ++c) {
      out.column(c).AppendFrom(left.column(c), lrow);
    }
    if (emit_right) {
      for (int c = 0; c < right.num_columns(); ++c) {
        Column& dst = out.column(left.num_columns() + c);
        if (rrow >= 0) {
          dst.AppendFrom(right.column(c), rrow);
        } else {
          // Left-outer null padding.
          switch (dst.type()) {
            case DataType::kInt64:
              dst.AppendInt(0);
              break;
            case DataType::kFloat64:
              dst.AppendDouble(0.0);
              break;
            case DataType::kString:
              dst.AppendString("");
              break;
          }
        }
      }
    }
  };

  for (int64_t l = 0; l < left.num_rows(); ++l) {
    const auto it = build.find(ExtractKey(left, lcols, l));
    const bool matched = it != build.end();
    switch (type) {
      case JoinType::kInner:
        if (matched) {
          for (int64_t r : it->second) append_joined(l, r);
        }
        break;
      case JoinType::kLeftOuter:
        if (matched) {
          for (int64_t r : it->second) append_joined(l, r);
        } else {
          append_joined(l, -1);
        }
        break;
      case JoinType::kLeftSemi:
        if (matched) append_joined(l, -1);
        break;
      case JoinType::kLeftAnti:
        if (!matched) append_joined(l, -1);
        break;
    }
  }
  out.FinishBulkAppend();
  return out;
}

Table HashAggregate(const Table& input,
                    const std::vector<std::string>& group_by,
                    const std::vector<AggSpec>& aggregates) {
  const std::vector<int> gcols = ResolveColumns(input, group_by);

  // Evaluate aggregate inputs once over the whole table.
  std::vector<Column> agg_inputs;
  agg_inputs.reserve(aggregates.size());
  for (const AggSpec& spec : aggregates) {
    if (spec.input != nullptr) {
      agg_inputs.push_back(spec.input->Eval(input));
    } else {
      CACKLE_CHECK(spec.op == AggOp::kCount);
      agg_inputs.emplace_back(DataType::kInt64);
    }
  }

  struct GroupState {
    int64_t first_row = 0;
    std::vector<double> sum;
    std::vector<double> min;
    std::vector<double> max;
    std::vector<int64_t> count;
    std::vector<std::set<int64_t>> distinct_i;
    std::vector<std::set<std::string>> distinct_s;
  };
  auto init_state = [&](int64_t row) {
    GroupState s;
    s.first_row = row;
    s.sum.assign(aggregates.size(), 0.0);
    s.min.assign(aggregates.size(), 0.0);
    s.max.assign(aggregates.size(), 0.0);
    s.count.assign(aggregates.size(), 0);
    s.distinct_i.resize(aggregates.size());
    s.distinct_s.resize(aggregates.size());
    return s;
  };

  std::unordered_map<RowKey, GroupState, RowKeyHash> groups;
  std::vector<const RowKey*> order;  // first-seen order for determinism

  auto numeric_at = [](const Column& c, int64_t row) {
    return c.type() == DataType::kInt64
               ? static_cast<double>(c.ints()[static_cast<size_t>(row)])
               : c.doubles()[static_cast<size_t>(row)];
  };

  for (int64_t r = 0; r < input.num_rows(); ++r) {
    RowKey key = ExtractKey(input, gcols, r);
    auto [it, inserted] = groups.try_emplace(std::move(key), init_state(r));
    if (inserted) order.push_back(&it->first);
    GroupState& state = it->second;
    for (size_t a = 0; a < aggregates.size(); ++a) {
      const AggSpec& spec = aggregates[a];
      if (spec.op == AggOp::kCount && spec.input == nullptr) {
        ++state.count[a];
        continue;
      }
      const Column& in = agg_inputs[a];
      if (spec.op == AggOp::kCountDistinct) {
        if (in.type() == DataType::kString) {
          state.distinct_s[a].insert(in.strings()[static_cast<size_t>(r)]);
        } else if (in.type() == DataType::kInt64) {
          state.distinct_i[a].insert(in.ints()[static_cast<size_t>(r)]);
        } else {
          CACKLE_CHECK(false) << "count distinct over doubles unsupported";
        }
        continue;
      }
      const double v = numeric_at(in, r);
      if (state.count[a] == 0) {
        state.min[a] = state.max[a] = v;
      } else {
        state.min[a] = std::min(state.min[a], v);
        state.max[a] = std::max(state.max[a], v);
      }
      state.sum[a] += v;
      ++state.count[a];
    }
  }

  // Global aggregate over empty input still yields one row of zeros.
  const bool global = group_by.empty();
  if (global && groups.empty()) {
    RowKey key;
    auto [it, inserted] = groups.try_emplace(key, init_state(0));
    CACKLE_CHECK(inserted);
    order.push_back(&it->first);
  }

  // Output schema: group columns (original defs) then aggregates.
  std::vector<ColumnDef> defs;
  for (size_t g = 0; g < gcols.size(); ++g) {
    defs.push_back(input.column_def(gcols[static_cast<size_t>(g)]));
  }
  for (size_t a = 0; a < aggregates.size(); ++a) {
    const AggSpec& spec = aggregates[a];
    DataType type = DataType::kFloat64;
    if (spec.op == AggOp::kCount || spec.op == AggOp::kCountDistinct) {
      type = DataType::kInt64;
    } else if (spec.input != nullptr &&
               spec.input->OutputType(input) == DataType::kInt64 &&
               (spec.op == AggOp::kMin || spec.op == AggOp::kMax ||
                spec.op == AggOp::kSum)) {
      type = DataType::kInt64;
    }
    defs.push_back(ColumnDef{spec.name, type});
  }
  Table out(defs);

  for (const RowKey* key_ptr : order) {
    const GroupState& state = groups.at(*key_ptr);
    // Group key values come from the group's first input row.
    for (size_t g = 0; g < gcols.size(); ++g) {
      out.column(static_cast<int>(g))
          .AppendFrom(input.column(gcols[g]), state.first_row);
    }
    for (size_t a = 0; a < aggregates.size(); ++a) {
      const AggSpec& spec = aggregates[a];
      Column& dst = out.column(static_cast<int>(gcols.size() + a));
      double value = 0.0;
      switch (spec.op) {
        case AggOp::kSum:
          value = state.sum[a];
          break;
        case AggOp::kMin:
          value = state.min[a];
          break;
        case AggOp::kMax:
          value = state.max[a];
          break;
        case AggOp::kAvg:
          value = state.count[a] > 0
                      ? state.sum[a] / static_cast<double>(state.count[a])
                      : 0.0;
          break;
        case AggOp::kCount:
          dst.AppendInt(state.count[a]);
          continue;
        case AggOp::kCountDistinct:
          dst.AppendInt(static_cast<int64_t>(state.distinct_i[a].size() +
                                             state.distinct_s[a].size()));
          continue;
      }
      if (dst.type() == DataType::kInt64) {
        dst.AppendInt(static_cast<int64_t>(value));
      } else {
        dst.AppendDouble(value);
      }
    }
  }
  out.FinishBulkAppend();
  return out;
}

Table SortBy(const Table& input, const std::vector<SortKey>& keys,
             int64_t limit) {
  std::vector<int> cols;
  cols.reserve(keys.size());
  for (const SortKey& k : keys) cols.push_back(input.ColumnIndex(k.column));
  std::vector<int64_t> rows(static_cast<size_t>(input.num_rows()));
  std::iota(rows.begin(), rows.end(), 0);
  std::stable_sort(rows.begin(), rows.end(), [&](int64_t a, int64_t b) {
    for (size_t k = 0; k < keys.size(); ++k) {
      const Column& c = input.column(cols[k]);
      int cmp = 0;
      switch (c.type()) {
        case DataType::kInt64: {
          const int64_t x = c.ints()[static_cast<size_t>(a)];
          const int64_t y = c.ints()[static_cast<size_t>(b)];
          cmp = x < y ? -1 : (x > y ? 1 : 0);
          break;
        }
        case DataType::kFloat64: {
          const double x = c.doubles()[static_cast<size_t>(a)];
          const double y = c.doubles()[static_cast<size_t>(b)];
          cmp = x < y ? -1 : (x > y ? 1 : 0);
          break;
        }
        case DataType::kString:
          cmp = c.strings()[static_cast<size_t>(a)].compare(
              c.strings()[static_cast<size_t>(b)]);
          break;
      }
      if (cmp != 0) return keys[k].ascending ? cmp < 0 : cmp > 0;
    }
    return false;
  });
  if (limit >= 0 && limit < static_cast<int64_t>(rows.size())) {
    rows.resize(static_cast<size_t>(limit));
  }
  return input.TakeRows(rows);
}

std::vector<Table> PartitionByHash(const Table& input,
                                   const std::vector<std::string>& key_columns,
                                   int64_t num_partitions) {
  CACKLE_CHECK_GT(num_partitions, 0);
  const std::vector<int> cols = ResolveColumns(input, key_columns);
  std::vector<Table> parts;
  parts.reserve(static_cast<size_t>(num_partitions));
  for (int64_t p = 0; p < num_partitions; ++p) parts.emplace_back(input.schema());
  RowKeyHash hasher;
  for (int64_t r = 0; r < input.num_rows(); ++r) {
    const size_t h = hasher(ExtractKey(input, cols, r));
    parts[h % static_cast<size_t>(num_partitions)].AppendRowFrom(input, r);
  }
  return parts;
}

Table RenameColumns(const Table& input, const std::vector<std::string>& names) {
  CACKLE_CHECK_EQ(static_cast<int>(names.size()), input.num_columns());
  Table out;
  for (int c = 0; c < input.num_columns(); ++c) {
    out.AddColumn(ColumnDef{names[static_cast<size_t>(c)],
                            input.column_def(c).type},
                  input.column(c));
  }
  return out;
}

Table SelectColumns(const Table& input, const std::vector<std::string>& names) {
  Table out;
  for (const std::string& name : names) {
    const int c = input.ColumnIndex(name);
    out.AddColumn(input.column_def(c), input.column(c));
  }
  return out;
}

}  // namespace cackle::exec
