#include "exec/operators.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <numeric>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "exec/bloom.h"
#include "exec/exec_metrics.h"
#include "exec/flat_hash.h"
#include "exec/op_context.h"

namespace cackle::exec {
namespace {

/// Canonical bit pattern of a double used as a join/group key: injective
/// (distinct doubles stay distinct) except that -0.0 is folded into +0.0 so
/// the two values that compare equal also key equal.
inline int64_t DoubleKeyBits(double v) {
  if (v == 0.0) v = 0.0;  // -0.0 -> +0.0
  return std::bit_cast<int64_t>(v);
}

/// A hashable/comparable composite key over selected columns of a row.
/// Fallback representation for keys the packed-uint64 fast path can't
/// express (see PlanPackedKeys below).
struct RowKey {
  std::vector<int64_t> ints;
  std::vector<std::string> strings;

  bool operator==(const RowKey& other) const {
    return ints == other.ints && strings == other.strings;
  }
};

struct RowKeyHash {
  size_t operator()(const RowKey& key) const {
    size_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](size_t v) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    for (int64_t v : key.ints) mix(std::hash<int64_t>{}(v));
    for (const std::string& s : key.strings) mix(std::hash<std::string>{}(s));
    return h;
  }
};

RowKey ExtractKey(const Table& t, const std::vector<int>& cols, int64_t row) {
  RowKey key;
  for (int c : cols) {
    const Column& col = t.column(c);
    switch (col.type()) {
      case DataType::kInt64:
        key.ints.push_back(col.ints()[static_cast<size_t>(row)]);
        break;
      case DataType::kFloat64:
        // Exact value identity: the full bit pattern, not a hash of it
        // (hashing here collapsed distinct doubles into one key).
        key.ints.push_back(
            DoubleKeyBits(col.doubles()[static_cast<size_t>(row)]));
        break;
      case DataType::kString:
        key.strings.push_back(col.strings()[static_cast<size_t>(row)]);
        break;
    }
  }
  return key;
}

std::vector<int> ResolveColumns(const Table& t,
                                const std::vector<std::string>& names) {
  std::vector<int> out;
  out.reserve(names.size());
  for (const std::string& n : names) out.push_back(t.ColumnIndex(n));
  return out;
}

// --- packed composite keys --------------------------------------------------
//
// When every key column fits a fixed-width bit field, a whole composite key
// packs injectively into one uint64_t and the build side becomes a flat
// open-addressing table (FlatMap64) instead of a node-based unordered_map:
//   * kInt64  : value - min, sized by the observed [min, max] range
//               (range taken over BOTH sides of a join);
//   * kString : the dictionary code (requires the sidecar; for joins the
//               probe side is re-coded into the build side's dictionary,
//               with an out-of-range sentinel code for values the build
//               dictionary does not contain — those can never match);
//   * kFloat64: all 64 bits of the canonical pattern.
// Keys that don't fit (no dictionary, > 64 total bits, mismatched types)
// fall back to the RowKey path above.

struct PackedCol {
  enum class Src { kIntRange, kDict, kDictRemap, kDouble };
  Src src = Src::kIntRange;
  const std::vector<int64_t>* ints = nullptr;
  const std::vector<double>* doubles = nullptr;
  const std::vector<int32_t>* codes = nullptr;
  std::vector<int32_t> remap;  // kDictRemap: probe code -> build code
  int64_t base = 0;
  int bits = 0;
  int shift = 0;
};

inline uint64_t PackRow(const std::vector<PackedCol>& plan, int64_t row) {
  uint64_t key = 0;
  for (const PackedCol& pc : plan) {
    uint64_t v = 0;
    switch (pc.src) {
      case PackedCol::Src::kIntRange:
        v = static_cast<uint64_t>((*pc.ints)[static_cast<size_t>(row)]) -
            static_cast<uint64_t>(pc.base);
        break;
      case PackedCol::Src::kDict:
        v = static_cast<uint64_t>((*pc.codes)[static_cast<size_t>(row)]);
        break;
      case PackedCol::Src::kDictRemap:
        v = static_cast<uint64_t>(pc.remap[static_cast<size_t>(
            (*pc.codes)[static_cast<size_t>(row)])]);
        break;
      case PackedCol::Src::kDouble:
        v = static_cast<uint64_t>(DoubleKeyBits(
            (*pc.doubles)[static_cast<size_t>(row)]));
        break;
    }
    if (pc.bits != 0) key |= v << pc.shift;
  }
  return key;
}

/// Assigns bit offsets; returns false when the composite needs > 64 bits.
bool FinishLayout(std::vector<PackedCol>* a, std::vector<PackedCol>* b) {
  int shift = 0;
  for (size_t i = 0; i < a->size(); ++i) {
    (*a)[i].shift = shift;
    if (b != nullptr) (*b)[i].shift = shift;
    shift += (*a)[i].bits;
    if (shift > 64) return false;
  }
  return true;
}

int IntRangeBits(const std::vector<int64_t>& xs, bool* any, int64_t* mn,
                 int64_t* mx) {
  for (int64_t v : xs) {
    if (!*any) {
      *mn = *mx = v;
      *any = true;
    } else {
      *mn = std::min(*mn, v);
      *mx = std::max(*mx, v);
    }
  }
  const uint64_t span =
      *any ? static_cast<uint64_t>(*mx) - static_cast<uint64_t>(*mn) : 0;
  return span == 0 ? 0 : std::bit_width(span);
}

/// Plans packed layouts for a join's probe (left) and build (right) sides.
/// The two plans must agree bit-for-bit on equal keys, so integer ranges are
/// taken over both columns and string codes are expressed in the build
/// side's dictionary space.
bool PlanJoinPack(const Table& left, const std::vector<int>& lcols,
                  const Table& right, const std::vector<int>& rcols,
                  std::vector<PackedCol>* lplan,
                  std::vector<PackedCol>* rplan) {
  for (size_t i = 0; i < lcols.size(); ++i) {
    const Column& lc = left.column(lcols[i]);
    const Column& rc = right.column(rcols[i]);
    if (lc.type() != rc.type()) return false;
    PackedCol lp, rp;
    switch (lc.type()) {
      case DataType::kInt64: {
        bool any = false;
        int64_t mn = 0, mx = 0;
        IntRangeBits(lc.ints(), &any, &mn, &mx);
        const int bits = IntRangeBits(rc.ints(), &any, &mn, &mx);
        lp.src = rp.src = PackedCol::Src::kIntRange;
        lp.base = rp.base = mn;
        lp.bits = rp.bits = bits;
        lp.ints = &lc.ints();
        rp.ints = &rc.ints();
        break;
      }
      case DataType::kString: {
        if (!lc.has_dict() || !rc.has_dict()) return false;
        const uint64_t size = static_cast<uint64_t>(rc.dict().size());
        rp.src = PackedCol::Src::kDict;
        rp.codes = &rc.codes();
        // bit_width(size) also covers the sentinel code == size.
        rp.bits = size == 0 ? 0 : std::bit_width(size);
        lp.bits = rp.bits;
        lp.codes = &lc.codes();
        if (lc.dict_ptr() == rc.dict_ptr()) {
          lp.src = PackedCol::Src::kDict;
        } else {
          lp.src = PackedCol::Src::kDictRemap;
          lp.remap.reserve(static_cast<size_t>(lc.dict().size()));
          for (const std::string& s : lc.dict().values()) {
            const int32_t code = rc.dict().CodeOf(s);
            lp.remap.push_back(code >= 0 ? code
                                         : static_cast<int32_t>(size));
          }
        }
        break;
      }
      case DataType::kFloat64:
        lp.src = rp.src = PackedCol::Src::kDouble;
        lp.bits = rp.bits = 64;
        lp.doubles = &lc.doubles();
        rp.doubles = &rc.doubles();
        break;
    }
    lplan->push_back(std::move(lp));
    rplan->push_back(std::move(rp));
  }
  return FinishLayout(lplan, rplan);
}

/// Plans a packed layout over one table's key columns (group-by keys).
bool PlanGroupPack(const Table& t, const std::vector<int>& cols,
                   std::vector<PackedCol>* plan) {
  for (int c : cols) {
    const Column& col = t.column(c);
    PackedCol pc;
    switch (col.type()) {
      case DataType::kInt64: {
        bool any = false;
        int64_t mn = 0, mx = 0;
        pc.bits = IntRangeBits(col.ints(), &any, &mn, &mx);
        pc.src = PackedCol::Src::kIntRange;
        pc.base = mn;
        pc.ints = &col.ints();
        break;
      }
      case DataType::kString: {
        if (!col.has_dict()) return false;
        const uint64_t size = static_cast<uint64_t>(col.dict().size());
        pc.src = PackedCol::Src::kDict;
        pc.codes = &col.codes();
        pc.bits = size <= 1 ? 0 : std::bit_width(size - 1);
        break;
      }
      case DataType::kFloat64:
        pc.src = PackedCol::Src::kDouble;
        pc.bits = 64;
        pc.doubles = &col.doubles();
        break;
    }
    plan->push_back(std::move(pc));
  }
  return FinishLayout(plan, nullptr);
}

/// Initial FlatMap64 sizing: at most the row count, at most the packed key
/// space, and never a huge up-front allocation (growth is amortized-cheap,
/// oversizing a low-cardinality aggregate's table is not).
int64_t ExpectedKeys(int64_t rows, const std::vector<PackedCol>& plan) {
  int bits = 0;
  for (const PackedCol& pc : plan) bits += pc.bits;
  if (bits < 20) rows = std::min<int64_t>(rows, int64_t{1} << bits);
  return std::min<int64_t>(rows, int64_t{1} << 20);
}

// --- morsel scheduling ------------------------------------------------------

/// Number of fixed row-range morsels [0, n) splits into under `ctx`.
int64_t MorselCount(int64_t n, const OpExecContext& ctx) {
  if (n <= 0) return 0;
  if (ctx.morsel_rows <= 0 || n <= ctx.morsel_rows) return 1;
  return (n + ctx.morsel_rows - 1) / ctx.morsel_rows;
}

/// Runs `fn(begin, end, morsel_index)` over the morsels of [0, n). Morsels
/// only ever write disjoint per-index state, so ordering inside the wave is
/// free: with a pool they run as TaskGroup tasks (the caller helps while
/// waiting), otherwise inline in morsel-index order. Any merge of morsel
/// partials happens in the caller, in morsel-index order — that rule is
/// what keeps results bit-identical at every thread count.
template <typename Fn>
void ForEachMorsel(int64_t n, const OpExecContext& ctx, const Fn& fn) {
  const int64_t count = MorselCount(n, ctx);
  if (count <= 1) {
    if (count == 1) fn(int64_t{0}, n, int64_t{0});
    return;
  }
  const int64_t step = ctx.morsel_rows;
  ExecMetrics().morsel_operators.fetch_add(1, std::memory_order_relaxed);
  ExecMetrics().morsel_tasks.fetch_add(count, std::memory_order_relaxed);
  if (ctx.pool == nullptr) {
    for (int64_t m = 0; m < count; ++m) {
      fn(m * step, std::min(n, (m + 1) * step), m);
    }
    return;
  }
  TaskGroup group(ctx.pool, "morsel");
  for (int64_t m = 0; m < count; ++m) {
    group.Submit(
        [&fn, n, step, m] { fn(m * step, std::min(n, (m + 1) * step), m); });
  }
  group.Wait();
}

/// True when operators should fan their internal phases onto the pool.
bool IntraOpParallel(const OpExecContext& ctx) {
  return ctx.pool != nullptr && ctx.morsel_rows > 0;
}

/// Raises the process-wide radix max-partition-rows high-water mark.
void RaiseRadixMaxPartitionRows(int64_t rows) {
  auto& mx = ExecMetrics().radix_max_partition_rows;
  int64_t cur = mx.load(std::memory_order_relaxed);
  while (rows > cur &&
         !mx.compare_exchange_weak(cur, rows, std::memory_order_relaxed)) {
  }
}

}  // namespace

Table Filter(const Table& input, const ExprPtr& predicate) {
  CACKLE_CHECK(predicate != nullptr);
  const std::vector<int64_t> keep = EvalPredicateSelection(predicate, input);
  return input.GatherRows(keep);
}

Table Project(const Table& input, const ExprPtr& filter,
              const std::vector<NamedExpr>& projections) {
  const Table* source = &input;
  Table filtered;
  if (filter != nullptr) {
    filtered = Filter(input, filter);
    source = &filtered;
  }
  Table out;
  for (const NamedExpr& ne : projections) {
    Column col = ne.expr->Eval(*source);
    out.AddColumn(ColumnDef{ne.name, col.type()}, std::move(col));
  }
  return out;
}

Table HashJoin(const Table& left, const std::vector<std::string>& left_keys,
               const Table& right, const std::vector<std::string>& right_keys,
               JoinType type) {
  CACKLE_CHECK_EQ(left_keys.size(), right_keys.size());
  CACKLE_CHECK(!left_keys.empty());
  const std::vector<int> lcols = ResolveColumns(left, left_keys);
  const std::vector<int> rcols = ResolveColumns(right, right_keys);

  const bool emit_right =
      type == JoinType::kInner || type == JoinType::kLeftOuter;
  // Output schema: left columns then right columns; duplicate names CHECKed.
  std::vector<ColumnDef> defs = left.schema();
  if (emit_right) {
    for (const ColumnDef& def : right.schema()) {
      for (const ColumnDef& existing : defs) {
        CACKLE_CHECK(existing.name != def.name)
            << "duplicate column in join output: " << def.name;
      }
      defs.push_back(def);
    }
  }

  // Build side: map key -> group id; per group, a chain of build rows in
  // ascending row order (head/tail/next), matching insertion order of the
  // old per-key vectors. Probe resolves each left row to a group id.
  std::vector<int64_t> head;
  std::vector<int64_t> tail;
  std::vector<int64_t> next(static_cast<size_t>(right.num_rows()), -1);
  std::vector<int64_t> probe_gid(static_cast<size_t>(left.num_rows()), -1);

  const OpExecContext& ctx = CurrentOpExecContext();
  int64_t scratch_bytes = 0;
  std::vector<PackedCol> lplan, rplan;
  if (PlanJoinPack(left, lcols, right, rcols, &lplan, &rplan)) {
    ExecMetrics().key_packed_activations.fetch_add(1,
                                                   std::memory_order_relaxed);
    const int64_t nr = right.num_rows();
    const int64_t nl = left.num_rows();
    // Packed build keys and hashes, precomputed morsel-parallel (each
    // morsel writes a disjoint range). Group-id assignment below stays
    // ordered, which pins chain contents to ascending build-row order.
    std::vector<uint64_t> rkeys(static_cast<size_t>(nr));
    std::vector<uint64_t> rhash(static_cast<size_t>(nr));
    ForEachMorsel(nr, ctx, [&](int64_t b, int64_t e, int64_t) {
      for (int64_t r = b; r < e; ++r) {
        const uint64_t key = PackRow(rplan, r);
        rkeys[static_cast<size_t>(r)] = key;
        rhash[static_cast<size_t>(r)] = Mix64(key);
      }
    });
    scratch_bytes += nr * 16;

    std::unique_ptr<BlockedBloomFilter> bloom;
    if (ctx.bloom_pushdown) {
      bloom = std::make_unique<BlockedBloomFilter>(nr);
      for (int64_t r = 0; r < nr; ++r) {
        bloom->Insert(rhash[static_cast<size_t>(r)]);
      }
      ExecMetrics().bloom_builds.fetch_add(1, std::memory_order_relaxed);
      scratch_bytes += bloom->SizeBytes();
    }

    const int radix_bits = ctx.radix_bits;
    // Radix state (empty on the single-table path): per-partition hash
    // tables and the partition-order group-id offsets.
    std::vector<FlatMap64> part_maps;
    std::vector<int64_t> gid_base;
    FlatMap64 map(radix_bits > 0 ? 0 : ExpectedKeys(nr, rplan));
    if (radix_bits > 0) {
      // Radix-partitioned build: rows spread by the hash's TOP bits (slot
      // probing uses the low bits, so within-partition distribution keeps
      // full hash quality), then each partition's table builds as an
      // independent task. All rows of a key land in one partition and are
      // appended in ascending row order, so every group's chain — and the
      // emitted rows — are identical to the single-table build.
      ExecMetrics().radix_joins.fetch_add(1, std::memory_order_relaxed);
      const int num_parts = 1 << radix_bits;
      const int shift = 64 - radix_bits;
      std::vector<std::vector<int64_t>> part_rows(
          static_cast<size_t>(num_parts));
      for (auto& rows : part_rows) {
        rows.reserve(static_cast<size_t>(nr / num_parts + 1));
      }
      for (int64_t r = 0; r < nr; ++r) {
        part_rows[rhash[static_cast<size_t>(r)] >> shift].push_back(r);
      }
      int64_t max_part = 0;
      for (const auto& rows : part_rows) {
        max_part = std::max(max_part, static_cast<int64_t>(rows.size()));
      }
      ExecMetrics().radix_partitions.fetch_add(num_parts,
                                               std::memory_order_relaxed);
      RaiseRadixMaxPartitionRows(max_part);
      scratch_bytes += nr * 8;

      part_maps.resize(static_cast<size_t>(num_parts));
      std::vector<std::vector<int64_t>> part_heads(
          static_cast<size_t>(num_parts));
      std::vector<std::vector<int64_t>> part_tails(
          static_cast<size_t>(num_parts));
      auto build_partition = [&](int p) {
        const auto pi = static_cast<size_t>(p);
        const std::vector<int64_t>& rows = part_rows[pi];
        FlatMap64 pmap(static_cast<int64_t>(rows.size()));
        std::vector<int64_t>& phead = part_heads[pi];
        std::vector<int64_t>& ptail = part_tails[pi];
        for (const int64_t r : rows) {
          bool inserted = false;
          const int64_t g = pmap.FindOrInsertHashed(
              rkeys[static_cast<size_t>(r)], rhash[static_cast<size_t>(r)],
              static_cast<int64_t>(phead.size()), &inserted);
          if (inserted) {
            phead.push_back(r);
            ptail.push_back(r);
          } else {
            // Each build row belongs to exactly one partition, so these
            // writes into the shared chain array are disjoint.
            next[static_cast<size_t>(ptail[static_cast<size_t>(g)])] = r;
            ptail[static_cast<size_t>(g)] = r;
          }
        }
        part_maps[pi] = std::move(pmap);
      };
      if (ctx.pool != nullptr) {
        TaskGroup group(ctx.pool, "radix_build");
        for (int p = 0; p < num_parts; ++p) {
          group.Submit([&build_partition, p] { build_partition(p); });
        }
        group.Wait();
      } else {
        for (int p = 0; p < num_parts; ++p) build_partition(p);
      }
      // Global group ids: partition-order offsets over concatenated heads.
      gid_base.assign(static_cast<size_t>(num_parts) + 1, 0);
      int64_t resizes = 0;
      for (int p = 0; p < num_parts; ++p) {
        const auto pi = static_cast<size_t>(p);
        gid_base[pi + 1] =
            gid_base[pi] + static_cast<int64_t>(part_heads[pi].size());
        resizes += part_maps[pi].resizes();
        scratch_bytes += part_maps[pi].capacity() * 16 +
                         static_cast<int64_t>(part_heads[pi].size()) * 16;
      }
      head.resize(static_cast<size_t>(gid_base[static_cast<size_t>(
          num_parts)]));
      for (int p = 0; p < num_parts; ++p) {
        const auto pi = static_cast<size_t>(p);
        std::copy(part_heads[pi].begin(), part_heads[pi].end(),
                  head.begin() + gid_base[pi]);
      }
      ExecMetrics().flat_table_builds.fetch_add(num_parts,
                                                std::memory_order_relaxed);
      ExecMetrics().flat_table_resizes.fetch_add(resizes,
                                                 std::memory_order_relaxed);
    } else {
      // Single-table build: ordered FindOrInsert over the precomputed keys
      // — group numbering and chains identical to the pre-morsel code.
      for (int64_t r = 0; r < nr; ++r) {
        bool inserted = false;
        const int64_t gid = map.FindOrInsertHashed(
            rkeys[static_cast<size_t>(r)], rhash[static_cast<size_t>(r)],
            static_cast<int64_t>(head.size()), &inserted);
        if (inserted) {
          head.push_back(r);
          tail.push_back(r);
        } else {
          next[static_cast<size_t>(tail[static_cast<size_t>(gid)])] = r;
          tail[static_cast<size_t>(gid)] = r;
        }
      }
      ExecMetrics().flat_table_builds.fetch_add(1, std::memory_order_relaxed);
      ExecMetrics().flat_table_resizes.fetch_add(map.resizes(),
                                                 std::memory_order_relaxed);
      scratch_bytes += map.capacity() * 16;
    }

    // Probe: morsel-parallel over left rows, each morsel writing its own
    // probe_gid slots. Keys hash in 8-row batches feeding a prefetch wave
    // before the dependent table walks; the bloom filter (when built)
    // screens each probe first — a miss is definitely absent (gid -1 is
    // exactly what the table would return), a pass is re-checked.
    ForEachMorsel(nl, ctx, [&](int64_t b, int64_t e, int64_t) {
      int64_t probes = 0;
      int64_t bloom_pass = 0;
      int64_t false_pos = 0;
      constexpr int64_t kBatch = 8;
      uint64_t keys[kBatch];
      uint64_t hashes[kBatch];
      for (int64_t base = b; base < e; base += kBatch) {
        const int64_t cnt = std::min(kBatch, e - base);
        for (int64_t i = 0; i < cnt; ++i) {
          keys[i] = PackRow(lplan, base + i);
          hashes[i] = Mix64(keys[i]);
        }
        for (int64_t i = 0; i < cnt; ++i) {
          if (radix_bits > 0) {
            part_maps[hashes[i] >> (64 - radix_bits)].Prefetch(hashes[i]);
          } else {
            map.Prefetch(hashes[i]);
          }
        }
        for (int64_t i = 0; i < cnt; ++i) {
          const auto l = static_cast<size_t>(base + i);
          if (bloom != nullptr) {
            ++probes;
            if (!bloom->MayContain(hashes[i])) continue;  // gid stays -1
            ++bloom_pass;
          }
          int64_t g;
          if (radix_bits > 0) {
            const size_t p = hashes[i] >> (64 - radix_bits);
            const int64_t local = part_maps[p].FindHashed(keys[i], hashes[i]);
            g = local < 0 ? -1 : gid_base[p] + local;
          } else {
            g = map.FindHashed(keys[i], hashes[i]);
          }
          if (bloom != nullptr && g < 0) ++false_pos;
          probe_gid[l] = g;
        }
      }
      if (bloom != nullptr) {
        ExecMetrics().bloom_probes.fetch_add(probes,
                                             std::memory_order_relaxed);
        ExecMetrics().bloom_hits.fetch_add(bloom_pass,
                                           std::memory_order_relaxed);
        ExecMetrics().bloom_false_positives.fetch_add(
            false_pos, std::memory_order_relaxed);
      }
    });
  } else {
    ExecMetrics().key_fallback_activations.fetch_add(
        1, std::memory_order_relaxed);
    std::unordered_map<RowKey, int64_t, RowKeyHash> map;
    map.reserve(static_cast<size_t>(right.num_rows()));
    for (int64_t r = 0; r < right.num_rows(); ++r) {
      auto [it, inserted] = map.try_emplace(ExtractKey(right, rcols, r),
                                            static_cast<int64_t>(head.size()));
      if (inserted) {
        head.push_back(r);
        tail.push_back(r);
      } else {
        next[static_cast<size_t>(tail[static_cast<size_t>(it->second)])] = r;
        tail[static_cast<size_t>(it->second)] = r;
      }
    }
    for (int64_t l = 0; l < left.num_rows(); ++l) {
      const auto it = map.find(ExtractKey(left, lcols, l));
      if (it != map.end()) probe_gid[static_cast<size_t>(l)] = it->second;
    }
  }

  // Emit as row-index lists: morsel-parallel into per-morsel chunks, then
  // concatenated in morsel-index order == ascending left-row order, so the
  // output rows match the serial single-loop emit exactly.
  const int64_t emit_rows = left.num_rows();
  const size_t num_chunks =
      static_cast<size_t>(std::max<int64_t>(MorselCount(emit_rows, ctx), 1));
  std::vector<std::vector<int64_t>> chunk_l(num_chunks);
  std::vector<std::vector<int64_t>> chunk_r(num_chunks);
  ForEachMorsel(emit_rows, ctx, [&](int64_t b, int64_t e, int64_t m) {
    std::vector<int64_t>& li = chunk_l[static_cast<size_t>(m)];
    std::vector<int64_t>& ri = chunk_r[static_cast<size_t>(m)];
    li.reserve(static_cast<size_t>(e - b));
    if (emit_right) ri.reserve(static_cast<size_t>(e - b));
    for (int64_t l = b; l < e; ++l) {
      const int64_t gid = probe_gid[static_cast<size_t>(l)];
      switch (type) {
        case JoinType::kInner:
          if (gid >= 0) {
            for (int64_t r = head[static_cast<size_t>(gid)]; r >= 0;
                 r = next[static_cast<size_t>(r)]) {
              li.push_back(l);
              ri.push_back(r);
            }
          }
          break;
        case JoinType::kLeftOuter:
          if (gid >= 0) {
            for (int64_t r = head[static_cast<size_t>(gid)]; r >= 0;
                 r = next[static_cast<size_t>(r)]) {
              li.push_back(l);
              ri.push_back(r);
            }
          } else {
            li.push_back(l);
            ri.push_back(-1);  // null-padded below
          }
          break;
        case JoinType::kLeftSemi:
          if (gid >= 0) li.push_back(l);
          break;
        case JoinType::kLeftAnti:
          if (gid < 0) li.push_back(l);
          break;
      }
    }
  });
  std::vector<int64_t> left_idx;
  std::vector<int64_t> right_idx;
  if (num_chunks == 1) {
    left_idx = std::move(chunk_l[0]);
    right_idx = std::move(chunk_r[0]);
  } else {
    int64_t total = 0;
    for (const auto& c : chunk_l) total += static_cast<int64_t>(c.size());
    left_idx.reserve(static_cast<size_t>(total));
    if (emit_right) right_idx.reserve(static_cast<size_t>(total));
    for (size_t m = 0; m < num_chunks; ++m) {
      left_idx.insert(left_idx.end(), chunk_l[m].begin(), chunk_l[m].end());
      if (emit_right) {
        right_idx.insert(right_idx.end(), chunk_r[m].begin(),
                         chunk_r[m].end());
      }
    }
    scratch_bytes += total * (emit_right ? 16 : 8);  // the transient chunks
  }
  if (ctx.report_scratch_bytes != nullptr) {
    ctx.report_scratch_bytes(scratch_bytes);
  }

  if (!emit_right) return left.GatherRows(left_idx);

  Table out(defs);
  // Materialize with one gather per column; columns are independent
  // destinations, so with intra-operator parallelism on they gather as
  // concurrent pool tasks.
  const int total_cols = left.num_columns() + right.num_columns();
  auto gather_column = [&](int c) {
    if (c < left.num_columns()) {
      out.column(c).AppendGather(left.column(c), left_idx);
      return;
    }
    const int rc = c - left.num_columns();
    Column& dst = out.column(c);
    if (type == JoinType::kLeftOuter) {
      dst.AppendGatherPadded(right.column(rc), right_idx);
    } else {
      dst.AppendGather(right.column(rc), right_idx);
    }
  };
  if (IntraOpParallel(ctx) && total_cols > 1) {
    TaskGroup group(ctx.pool, "join_materialize");
    for (int c = 0; c < total_cols; ++c) {
      group.Submit([&gather_column, c] { gather_column(c); });
    }
    group.Wait();
  } else {
    for (int c = 0; c < total_cols; ++c) gather_column(c);
  }
  out.FinishBulkAppend();
  return out;
}

Table HashAggregate(const Table& input,
                    const std::vector<std::string>& group_by,
                    const std::vector<AggSpec>& aggregates) {
  const std::vector<int> gcols = ResolveColumns(input, group_by);
  const int64_t n = input.num_rows();

  // Evaluate aggregate inputs once over the whole table.
  std::vector<Column> agg_inputs;
  agg_inputs.reserve(aggregates.size());
  for (const AggSpec& spec : aggregates) {
    if (spec.input != nullptr) {
      agg_inputs.push_back(spec.input->Eval(input));
    } else {
      CACKLE_CHECK(spec.op == AggOp::kCount);
      agg_inputs.emplace_back(DataType::kInt64);
    }
  }

  // Pass 1: group id per row + first-seen row per group (group output order
  // is first-seen, as before). Packed keys precompute morsel-parallel; the
  // group-id assignment itself walks rows in order, which is what pins
  // first-seen numbering — and therefore output row order — to the serial
  // result.
  const OpExecContext& ctx = CurrentOpExecContext();
  int64_t scratch_bytes = 0;
  std::vector<int64_t> gid(static_cast<size_t>(n));
  std::vector<int64_t> first_rows;
  std::vector<PackedCol> plan;
  if (PlanGroupPack(input, gcols, &plan)) {
    ExecMetrics().key_packed_activations.fetch_add(1,
                                                   std::memory_order_relaxed);
    std::vector<uint64_t> keys(static_cast<size_t>(n));
    ForEachMorsel(n, ctx, [&](int64_t b, int64_t e, int64_t) {
      for (int64_t r = b; r < e; ++r) {
        keys[static_cast<size_t>(r)] = PackRow(plan, r);
      }
    });
    scratch_bytes += n * 8;
    int key_bits = 0;
    for (const PackedCol& pc : plan) key_bits += pc.bits;
    if (key_bits <= 20) {
      // Small key space: a direct-address table replaces hashing entirely
      // (the common TPC-H aggregates group on a handful of dictionary
      // codes). First-seen numbering in row order — identical to the hash
      // path.
      std::vector<int64_t> direct(size_t{1} << key_bits, -1);
      for (int64_t r = 0; r < n; ++r) {
        const uint64_t key = keys[static_cast<size_t>(r)];
        int64_t g = direct[key];
        if (g < 0) {
          g = static_cast<int64_t>(first_rows.size());
          direct[key] = g;
          first_rows.push_back(r);
        }
        gid[static_cast<size_t>(r)] = g;
      }
      scratch_bytes += static_cast<int64_t>(direct.size()) * 8;
    } else {
      FlatMap64 map(ExpectedKeys(n, plan));
      for (int64_t r = 0; r < n; ++r) {
        bool inserted = false;
        gid[static_cast<size_t>(r)] = map.FindOrInsert(
            keys[static_cast<size_t>(r)],
            static_cast<int64_t>(first_rows.size()), &inserted);
        if (inserted) first_rows.push_back(r);
      }
      ExecMetrics().flat_table_builds.fetch_add(1, std::memory_order_relaxed);
      ExecMetrics().flat_table_resizes.fetch_add(map.resizes(),
                                                 std::memory_order_relaxed);
      scratch_bytes += map.capacity() * 16;
    }
  } else {
    ExecMetrics().key_fallback_activations.fetch_add(
        1, std::memory_order_relaxed);
    std::unordered_map<RowKey, int64_t, RowKeyHash> map;
    for (int64_t r = 0; r < n; ++r) {
      auto [it, inserted] =
          map.try_emplace(ExtractKey(input, gcols, r),
                          static_cast<int64_t>(first_rows.size()));
      if (inserted) first_rows.push_back(r);
      gid[static_cast<size_t>(r)] = it->second;
    }
  }

  // Global aggregate over empty input still yields one row of zeros.
  const bool global = group_by.empty();
  const int64_t num_groups =
      (global && first_rows.empty()) ? 1
                                     : static_cast<int64_t>(first_rows.size());

  // Pass 2: one typed accumulation loop per aggregate. Each group
  // accumulates in ascending row order — the same order as the previous
  // row-at-a-time implementation, so float sums are bit-identical. With
  // intra-operator parallelism the aggregates run as concurrent tasks:
  // parallelism comes from splitting ACROSS aggregates (each writes only
  // its own accumulator vectors), never from splitting a float sum across
  // row ranges, which would reassociate additions and change low bits.
  const size_t na = aggregates.size();
  std::vector<std::vector<double>> sums(na), mins(na), maxs(na);
  std::vector<std::vector<int64_t>> counts(na);
  std::vector<std::vector<std::set<int64_t>>> distinct_i(na);
  std::vector<std::vector<std::set<std::string>>> distinct_s(na);
  auto run_aggregate = [&](size_t a) {
    const AggSpec& spec = aggregates[a];
    if (spec.op == AggOp::kCount) {
      counts[a].assign(static_cast<size_t>(num_groups), 0);
      for (int64_t r = 0; r < n; ++r) {
        ++counts[a][static_cast<size_t>(gid[static_cast<size_t>(r)])];
      }
      return;
    }
    const Column& in = agg_inputs[a];
    if (spec.op == AggOp::kCountDistinct) {
      if (in.type() == DataType::kString) {
        distinct_s[a].resize(static_cast<size_t>(num_groups));
        for (int64_t r = 0; r < n; ++r) {
          distinct_s[a][static_cast<size_t>(gid[static_cast<size_t>(r)])]
              .insert(in.strings()[static_cast<size_t>(r)]);
        }
      } else if (in.type() == DataType::kInt64) {
        distinct_i[a].resize(static_cast<size_t>(num_groups));
        for (int64_t r = 0; r < n; ++r) {
          distinct_i[a][static_cast<size_t>(gid[static_cast<size_t>(r)])]
              .insert(in.ints()[static_cast<size_t>(r)]);
        }
      } else {
        CACKLE_CHECK(false) << "count distinct over doubles unsupported";
      }
      return;
    }
    sums[a].assign(static_cast<size_t>(num_groups), 0.0);
    mins[a].assign(static_cast<size_t>(num_groups), 0.0);
    maxs[a].assign(static_cast<size_t>(num_groups), 0.0);
    counts[a].assign(static_cast<size_t>(num_groups), 0);
    auto accumulate = [&](auto&& value_at) {
      for (int64_t r = 0; r < n; ++r) {
        const size_t g =
            static_cast<size_t>(gid[static_cast<size_t>(r)]);
        const double v = value_at(static_cast<size_t>(r));
        if (counts[a][g] == 0) {
          mins[a][g] = maxs[a][g] = v;
        } else {
          mins[a][g] = std::min(mins[a][g], v);
          maxs[a][g] = std::max(maxs[a][g], v);
        }
        sums[a][g] += v;
        ++counts[a][g];
      }
    };
    if (in.type() == DataType::kInt64) {
      const std::vector<int64_t>& xs = in.ints();
      accumulate([&](size_t r) { return static_cast<double>(xs[r]); });
    } else {
      const std::vector<double>& xs = in.doubles();
      accumulate([&](size_t r) { return xs[r]; });
    }
  };
  scratch_bytes += n * 8;  // the gid vector
  if (ctx.report_scratch_bytes != nullptr) {
    ctx.report_scratch_bytes(scratch_bytes);
  }
  if (IntraOpParallel(ctx) && na > 1) {
    TaskGroup group(ctx.pool, "aggregate");
    for (size_t a = 0; a < na; ++a) {
      group.Submit([&run_aggregate, a] { run_aggregate(a); });
    }
    group.Wait();
  } else {
    for (size_t a = 0; a < na; ++a) run_aggregate(a);
  }

  // Output schema: group columns (original defs) then aggregates.
  std::vector<ColumnDef> defs;
  for (size_t g = 0; g < gcols.size(); ++g) {
    defs.push_back(input.column_def(gcols[static_cast<size_t>(g)]));
  }
  for (size_t a = 0; a < na; ++a) {
    const AggSpec& spec = aggregates[a];
    DataType type = DataType::kFloat64;
    if (spec.op == AggOp::kCount || spec.op == AggOp::kCountDistinct) {
      type = DataType::kInt64;
    } else if (spec.input != nullptr &&
               spec.input->OutputType(input) == DataType::kInt64 &&
               (spec.op == AggOp::kMin || spec.op == AggOp::kMax ||
                spec.op == AggOp::kSum)) {
      type = DataType::kInt64;
    }
    defs.push_back(ColumnDef{spec.name, type});
  }
  Table out(defs);

  // Group key values come from each group's first input row: one gather per
  // key column (keeps any dictionary sidecar).
  for (size_t g = 0; g < gcols.size(); ++g) {
    out.column(static_cast<int>(g))
        .AppendGather(input.column(gcols[g]), first_rows);
  }
  for (int64_t grp = 0; grp < num_groups; ++grp) {
    const size_t gi = static_cast<size_t>(grp);
    for (size_t a = 0; a < na; ++a) {
      const AggSpec& spec = aggregates[a];
      Column& dst = out.column(static_cast<int>(gcols.size() + a));
      double value = 0.0;
      switch (spec.op) {
        case AggOp::kSum:
          value = sums[a][gi];
          break;
        case AggOp::kMin:
          value = mins[a][gi];
          break;
        case AggOp::kMax:
          value = maxs[a][gi];
          break;
        case AggOp::kAvg:
          value = counts[a][gi] > 0
                      ? sums[a][gi] / static_cast<double>(counts[a][gi])
                      : 0.0;
          break;
        case AggOp::kCount:
          dst.AppendInt(counts[a][gi]);
          continue;
        case AggOp::kCountDistinct: {
          const size_t di =
              distinct_i[a].empty() ? 0 : distinct_i[a][gi].size();
          const size_t ds =
              distinct_s[a].empty() ? 0 : distinct_s[a][gi].size();
          dst.AppendInt(static_cast<int64_t>(di + ds));
          continue;
        }
      }
      if (dst.type() == DataType::kInt64) {
        dst.AppendInt(static_cast<int64_t>(value));
      } else {
        dst.AppendDouble(value);
      }
    }
  }
  out.FinishBulkAppend();
  return out;
}

Table SortBy(const Table& input, const std::vector<SortKey>& keys,
             int64_t limit) {
  std::vector<int> cols;
  cols.reserve(keys.size());
  for (const SortKey& k : keys) cols.push_back(input.ColumnIndex(k.column));
  std::vector<int64_t> rows(static_cast<size_t>(input.num_rows()));
  std::iota(rows.begin(), rows.end(), 0);
  std::stable_sort(rows.begin(), rows.end(), [&](int64_t a, int64_t b) {
    for (size_t k = 0; k < keys.size(); ++k) {
      const Column& c = input.column(cols[k]);
      int cmp = 0;
      switch (c.type()) {
        case DataType::kInt64: {
          const int64_t x = c.ints()[static_cast<size_t>(a)];
          const int64_t y = c.ints()[static_cast<size_t>(b)];
          cmp = x < y ? -1 : (x > y ? 1 : 0);
          break;
        }
        case DataType::kFloat64: {
          const double x = c.doubles()[static_cast<size_t>(a)];
          const double y = c.doubles()[static_cast<size_t>(b)];
          cmp = x < y ? -1 : (x > y ? 1 : 0);
          break;
        }
        case DataType::kString:
          cmp = c.strings()[static_cast<size_t>(a)].compare(
              c.strings()[static_cast<size_t>(b)]);
          break;
      }
      if (cmp != 0) return keys[k].ascending ? cmp < 0 : cmp > 0;
    }
    return false;
  });
  if (limit >= 0 && limit < static_cast<int64_t>(rows.size())) {
    rows.resize(static_cast<size_t>(limit));
  }
  return input.TakeRows(rows);
}

std::vector<Table> PartitionByHash(const Table& input,
                                   const std::vector<std::string>& key_columns,
                                   int64_t num_partitions) {
  CACKLE_CHECK_GT(num_partitions, 0);
  const std::vector<int> cols = ResolveColumns(input, key_columns);

  // The partition id must stay identical to RowKeyHash(ExtractKey(...)) —
  // shuffle placement feeds row order downstream — so this streams the same
  // mix (numeric columns first, then string columns) without materializing
  // RowKeys. String columns with a dictionary hash each distinct value once.
  std::vector<const Column*> num_cols;
  struct StrCol {
    const Column* col;
    std::vector<size_t> code_hash;  // per-dictionary-entry hash, if dict
  };
  std::vector<StrCol> str_cols;
  for (int c : cols) {
    const Column& col = input.column(c);
    if (col.type() == DataType::kString) {
      StrCol sc{&col, {}};
      if (col.has_dict()) {
        sc.code_hash.reserve(static_cast<size_t>(col.dict().size()));
        for (const std::string& s : col.dict().values()) {
          sc.code_hash.push_back(std::hash<std::string>{}(s));
        }
      }
      str_cols.push_back(std::move(sc));
    } else {
      num_cols.push_back(&col);
    }
  }

  std::vector<std::vector<int64_t>> part_rows(
      static_cast<size_t>(num_partitions));
  const size_t reserve_hint =
      static_cast<size_t>(input.num_rows() / num_partitions + 1);
  for (auto& rows : part_rows) rows.reserve(reserve_hint);

  // Column-at-a-time hashing: each row's hash applies the per-column mixes
  // in the same order the old row-at-a-time loop did (numeric columns then
  // string columns), so the hash values — and therefore shuffle placement
  // and downstream row order — are bit-identical. Iterating rows innermost
  // turns the per-row column chase into sequential typed scans that
  // auto-vectorize; morsels split the row ranges (disjoint hash writes).
  const OpExecContext& ctx = CurrentOpExecContext();
  const int64_t n = input.num_rows();
  std::vector<size_t> hash(static_cast<size_t>(n), 0xcbf29ce484222325ULL);
  ForEachMorsel(n, ctx, [&](int64_t b, int64_t e, int64_t) {
    const auto mix = [](size_t& h, size_t v) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    for (const Column* col : num_cols) {
      if (col->type() == DataType::kInt64) {
        const std::vector<int64_t>& xs = col->ints();
        for (int64_t r = b; r < e; ++r) {
          mix(hash[static_cast<size_t>(r)],
              std::hash<int64_t>{}(xs[static_cast<size_t>(r)]));
        }
      } else {
        const std::vector<double>& xs = col->doubles();
        for (int64_t r = b; r < e; ++r) {
          mix(hash[static_cast<size_t>(r)],
              std::hash<int64_t>{}(DoubleKeyBits(xs[static_cast<size_t>(r)])));
        }
      }
    }
    for (const StrCol& sc : str_cols) {
      if (!sc.code_hash.empty()) {
        const std::vector<int32_t>& codes = sc.col->codes();
        for (int64_t r = b; r < e; ++r) {
          mix(hash[static_cast<size_t>(r)],
              sc.code_hash[static_cast<size_t>(codes[static_cast<size_t>(r)])]);
        }
      } else {
        const std::vector<std::string>& xs = sc.col->strings();
        for (int64_t r = b; r < e; ++r) {
          mix(hash[static_cast<size_t>(r)],
              std::hash<std::string>{}(xs[static_cast<size_t>(r)]));
        }
      }
    }
  });
  for (int64_t r = 0; r < n; ++r) {
    part_rows[hash[static_cast<size_t>(r)] %
              static_cast<size_t>(num_partitions)]
        .push_back(r);
  }
  if (ctx.report_scratch_bytes != nullptr) {
    ctx.report_scratch_bytes(n * 8);
  }

  // Partition gathers write independent tables; with intra-operator
  // parallelism on they run as concurrent pool tasks, landing in per-index
  // slots.
  std::vector<Table> parts(static_cast<size_t>(num_partitions));
  if (IntraOpParallel(ctx) && num_partitions > 1) {
    TaskGroup group(ctx.pool, "partition_gather");
    for (int64_t p = 0; p < num_partitions; ++p) {
      group.Submit([&input, &parts, &part_rows, p] {
        parts[static_cast<size_t>(p)] =
            input.GatherRows(part_rows[static_cast<size_t>(p)]);
      });
    }
    group.Wait();
  } else {
    for (int64_t p = 0; p < num_partitions; ++p) {
      parts[static_cast<size_t>(p)] =
          input.GatherRows(part_rows[static_cast<size_t>(p)]);
    }
  }
  return parts;
}

Table RenameColumns(const Table& input, const std::vector<std::string>& names) {
  CACKLE_CHECK_EQ(static_cast<int>(names.size()), input.num_columns());
  Table out;
  for (int c = 0; c < input.num_columns(); ++c) {
    out.AddColumn(ColumnDef{names[static_cast<size_t>(c)],
                            input.column_def(c).type},
                  input.column(c));
  }
  return out;
}

Table SelectColumns(const Table& input, const std::vector<std::string>& names) {
  Table out;
  for (const std::string& name : names) {
    const int c = input.ColumnIndex(name);
    out.AddColumn(input.column_def(c), input.column(c));
  }
  return out;
}

}  // namespace cackle::exec
