#include "exec/operators.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <numeric>
#include <set>
#include <unordered_map>

#include "common/logging.h"
#include "exec/exec_metrics.h"
#include "exec/flat_hash.h"

namespace cackle::exec {
namespace {

/// Canonical bit pattern of a double used as a join/group key: injective
/// (distinct doubles stay distinct) except that -0.0 is folded into +0.0 so
/// the two values that compare equal also key equal.
inline int64_t DoubleKeyBits(double v) {
  if (v == 0.0) v = 0.0;  // -0.0 -> +0.0
  return std::bit_cast<int64_t>(v);
}

/// A hashable/comparable composite key over selected columns of a row.
/// Fallback representation for keys the packed-uint64 fast path can't
/// express (see PlanPackedKeys below).
struct RowKey {
  std::vector<int64_t> ints;
  std::vector<std::string> strings;

  bool operator==(const RowKey& other) const {
    return ints == other.ints && strings == other.strings;
  }
};

struct RowKeyHash {
  size_t operator()(const RowKey& key) const {
    size_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](size_t v) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    for (int64_t v : key.ints) mix(std::hash<int64_t>{}(v));
    for (const std::string& s : key.strings) mix(std::hash<std::string>{}(s));
    return h;
  }
};

RowKey ExtractKey(const Table& t, const std::vector<int>& cols, int64_t row) {
  RowKey key;
  for (int c : cols) {
    const Column& col = t.column(c);
    switch (col.type()) {
      case DataType::kInt64:
        key.ints.push_back(col.ints()[static_cast<size_t>(row)]);
        break;
      case DataType::kFloat64:
        // Exact value identity: the full bit pattern, not a hash of it
        // (hashing here collapsed distinct doubles into one key).
        key.ints.push_back(
            DoubleKeyBits(col.doubles()[static_cast<size_t>(row)]));
        break;
      case DataType::kString:
        key.strings.push_back(col.strings()[static_cast<size_t>(row)]);
        break;
    }
  }
  return key;
}

std::vector<int> ResolveColumns(const Table& t,
                                const std::vector<std::string>& names) {
  std::vector<int> out;
  out.reserve(names.size());
  for (const std::string& n : names) out.push_back(t.ColumnIndex(n));
  return out;
}

// --- packed composite keys --------------------------------------------------
//
// When every key column fits a fixed-width bit field, a whole composite key
// packs injectively into one uint64_t and the build side becomes a flat
// open-addressing table (FlatMap64) instead of a node-based unordered_map:
//   * kInt64  : value - min, sized by the observed [min, max] range
//               (range taken over BOTH sides of a join);
//   * kString : the dictionary code (requires the sidecar; for joins the
//               probe side is re-coded into the build side's dictionary,
//               with an out-of-range sentinel code for values the build
//               dictionary does not contain — those can never match);
//   * kFloat64: all 64 bits of the canonical pattern.
// Keys that don't fit (no dictionary, > 64 total bits, mismatched types)
// fall back to the RowKey path above.

struct PackedCol {
  enum class Src { kIntRange, kDict, kDictRemap, kDouble };
  Src src = Src::kIntRange;
  const std::vector<int64_t>* ints = nullptr;
  const std::vector<double>* doubles = nullptr;
  const std::vector<int32_t>* codes = nullptr;
  std::vector<int32_t> remap;  // kDictRemap: probe code -> build code
  int64_t base = 0;
  int bits = 0;
  int shift = 0;
};

inline uint64_t PackRow(const std::vector<PackedCol>& plan, int64_t row) {
  uint64_t key = 0;
  for (const PackedCol& pc : plan) {
    uint64_t v = 0;
    switch (pc.src) {
      case PackedCol::Src::kIntRange:
        v = static_cast<uint64_t>((*pc.ints)[static_cast<size_t>(row)]) -
            static_cast<uint64_t>(pc.base);
        break;
      case PackedCol::Src::kDict:
        v = static_cast<uint64_t>((*pc.codes)[static_cast<size_t>(row)]);
        break;
      case PackedCol::Src::kDictRemap:
        v = static_cast<uint64_t>(pc.remap[static_cast<size_t>(
            (*pc.codes)[static_cast<size_t>(row)])]);
        break;
      case PackedCol::Src::kDouble:
        v = static_cast<uint64_t>(DoubleKeyBits(
            (*pc.doubles)[static_cast<size_t>(row)]));
        break;
    }
    if (pc.bits != 0) key |= v << pc.shift;
  }
  return key;
}

/// Assigns bit offsets; returns false when the composite needs > 64 bits.
bool FinishLayout(std::vector<PackedCol>* a, std::vector<PackedCol>* b) {
  int shift = 0;
  for (size_t i = 0; i < a->size(); ++i) {
    (*a)[i].shift = shift;
    if (b != nullptr) (*b)[i].shift = shift;
    shift += (*a)[i].bits;
    if (shift > 64) return false;
  }
  return true;
}

int IntRangeBits(const std::vector<int64_t>& xs, bool* any, int64_t* mn,
                 int64_t* mx) {
  for (int64_t v : xs) {
    if (!*any) {
      *mn = *mx = v;
      *any = true;
    } else {
      *mn = std::min(*mn, v);
      *mx = std::max(*mx, v);
    }
  }
  const uint64_t span =
      *any ? static_cast<uint64_t>(*mx) - static_cast<uint64_t>(*mn) : 0;
  return span == 0 ? 0 : std::bit_width(span);
}

/// Plans packed layouts for a join's probe (left) and build (right) sides.
/// The two plans must agree bit-for-bit on equal keys, so integer ranges are
/// taken over both columns and string codes are expressed in the build
/// side's dictionary space.
bool PlanJoinPack(const Table& left, const std::vector<int>& lcols,
                  const Table& right, const std::vector<int>& rcols,
                  std::vector<PackedCol>* lplan,
                  std::vector<PackedCol>* rplan) {
  for (size_t i = 0; i < lcols.size(); ++i) {
    const Column& lc = left.column(lcols[i]);
    const Column& rc = right.column(rcols[i]);
    if (lc.type() != rc.type()) return false;
    PackedCol lp, rp;
    switch (lc.type()) {
      case DataType::kInt64: {
        bool any = false;
        int64_t mn = 0, mx = 0;
        IntRangeBits(lc.ints(), &any, &mn, &mx);
        const int bits = IntRangeBits(rc.ints(), &any, &mn, &mx);
        lp.src = rp.src = PackedCol::Src::kIntRange;
        lp.base = rp.base = mn;
        lp.bits = rp.bits = bits;
        lp.ints = &lc.ints();
        rp.ints = &rc.ints();
        break;
      }
      case DataType::kString: {
        if (!lc.has_dict() || !rc.has_dict()) return false;
        const uint64_t size = static_cast<uint64_t>(rc.dict().size());
        rp.src = PackedCol::Src::kDict;
        rp.codes = &rc.codes();
        // bit_width(size) also covers the sentinel code == size.
        rp.bits = size == 0 ? 0 : std::bit_width(size);
        lp.bits = rp.bits;
        lp.codes = &lc.codes();
        if (lc.dict_ptr() == rc.dict_ptr()) {
          lp.src = PackedCol::Src::kDict;
        } else {
          lp.src = PackedCol::Src::kDictRemap;
          lp.remap.reserve(static_cast<size_t>(lc.dict().size()));
          for (const std::string& s : lc.dict().values()) {
            const int32_t code = rc.dict().CodeOf(s);
            lp.remap.push_back(code >= 0 ? code
                                         : static_cast<int32_t>(size));
          }
        }
        break;
      }
      case DataType::kFloat64:
        lp.src = rp.src = PackedCol::Src::kDouble;
        lp.bits = rp.bits = 64;
        lp.doubles = &lc.doubles();
        rp.doubles = &rc.doubles();
        break;
    }
    lplan->push_back(std::move(lp));
    rplan->push_back(std::move(rp));
  }
  return FinishLayout(lplan, rplan);
}

/// Plans a packed layout over one table's key columns (group-by keys).
bool PlanGroupPack(const Table& t, const std::vector<int>& cols,
                   std::vector<PackedCol>* plan) {
  for (int c : cols) {
    const Column& col = t.column(c);
    PackedCol pc;
    switch (col.type()) {
      case DataType::kInt64: {
        bool any = false;
        int64_t mn = 0, mx = 0;
        pc.bits = IntRangeBits(col.ints(), &any, &mn, &mx);
        pc.src = PackedCol::Src::kIntRange;
        pc.base = mn;
        pc.ints = &col.ints();
        break;
      }
      case DataType::kString: {
        if (!col.has_dict()) return false;
        const uint64_t size = static_cast<uint64_t>(col.dict().size());
        pc.src = PackedCol::Src::kDict;
        pc.codes = &col.codes();
        pc.bits = size <= 1 ? 0 : std::bit_width(size - 1);
        break;
      }
      case DataType::kFloat64:
        pc.src = PackedCol::Src::kDouble;
        pc.bits = 64;
        pc.doubles = &col.doubles();
        break;
    }
    plan->push_back(std::move(pc));
  }
  return FinishLayout(plan, nullptr);
}

/// Initial FlatMap64 sizing: at most the row count, at most the packed key
/// space, and never a huge up-front allocation (growth is amortized-cheap,
/// oversizing a low-cardinality aggregate's table is not).
int64_t ExpectedKeys(int64_t rows, const std::vector<PackedCol>& plan) {
  int bits = 0;
  for (const PackedCol& pc : plan) bits += pc.bits;
  if (bits < 20) rows = std::min<int64_t>(rows, int64_t{1} << bits);
  return std::min<int64_t>(rows, int64_t{1} << 20);
}

}  // namespace

Table Filter(const Table& input, const ExprPtr& predicate) {
  CACKLE_CHECK(predicate != nullptr);
  const std::vector<int64_t> keep = EvalPredicateSelection(predicate, input);
  return input.GatherRows(keep);
}

Table Project(const Table& input, const ExprPtr& filter,
              const std::vector<NamedExpr>& projections) {
  const Table* source = &input;
  Table filtered;
  if (filter != nullptr) {
    filtered = Filter(input, filter);
    source = &filtered;
  }
  Table out;
  for (const NamedExpr& ne : projections) {
    Column col = ne.expr->Eval(*source);
    out.AddColumn(ColumnDef{ne.name, col.type()}, std::move(col));
  }
  return out;
}

Table HashJoin(const Table& left, const std::vector<std::string>& left_keys,
               const Table& right, const std::vector<std::string>& right_keys,
               JoinType type) {
  CACKLE_CHECK_EQ(left_keys.size(), right_keys.size());
  CACKLE_CHECK(!left_keys.empty());
  const std::vector<int> lcols = ResolveColumns(left, left_keys);
  const std::vector<int> rcols = ResolveColumns(right, right_keys);

  const bool emit_right =
      type == JoinType::kInner || type == JoinType::kLeftOuter;
  // Output schema: left columns then right columns; duplicate names CHECKed.
  std::vector<ColumnDef> defs = left.schema();
  if (emit_right) {
    for (const ColumnDef& def : right.schema()) {
      for (const ColumnDef& existing : defs) {
        CACKLE_CHECK(existing.name != def.name)
            << "duplicate column in join output: " << def.name;
      }
      defs.push_back(def);
    }
  }

  // Build side: map key -> group id; per group, a chain of build rows in
  // ascending row order (head/tail/next), matching insertion order of the
  // old per-key vectors. Probe resolves each left row to a group id.
  std::vector<int64_t> head;
  std::vector<int64_t> tail;
  std::vector<int64_t> next(static_cast<size_t>(right.num_rows()), -1);
  std::vector<int64_t> probe_gid(static_cast<size_t>(left.num_rows()), -1);

  std::vector<PackedCol> lplan, rplan;
  if (PlanJoinPack(left, lcols, right, rcols, &lplan, &rplan)) {
    ExecMetrics().key_packed_activations.fetch_add(1,
                                                   std::memory_order_relaxed);
    FlatMap64 map(ExpectedKeys(right.num_rows(), rplan));
    for (int64_t r = 0; r < right.num_rows(); ++r) {
      bool inserted = false;
      const int64_t gid = map.FindOrInsert(
          PackRow(rplan, r), static_cast<int64_t>(head.size()), &inserted);
      if (inserted) {
        head.push_back(r);
        tail.push_back(r);
      } else {
        next[static_cast<size_t>(tail[static_cast<size_t>(gid)])] = r;
        tail[static_cast<size_t>(gid)] = r;
      }
    }
    ExecMetrics().flat_table_builds.fetch_add(1, std::memory_order_relaxed);
    ExecMetrics().flat_table_resizes.fetch_add(map.resizes(),
                                               std::memory_order_relaxed);
    for (int64_t l = 0; l < left.num_rows(); ++l) {
      probe_gid[static_cast<size_t>(l)] = map.Find(PackRow(lplan, l));
    }
  } else {
    ExecMetrics().key_fallback_activations.fetch_add(
        1, std::memory_order_relaxed);
    std::unordered_map<RowKey, int64_t, RowKeyHash> map;
    map.reserve(static_cast<size_t>(right.num_rows()));
    for (int64_t r = 0; r < right.num_rows(); ++r) {
      auto [it, inserted] = map.try_emplace(ExtractKey(right, rcols, r),
                                            static_cast<int64_t>(head.size()));
      if (inserted) {
        head.push_back(r);
        tail.push_back(r);
      } else {
        next[static_cast<size_t>(tail[static_cast<size_t>(it->second)])] = r;
        tail[static_cast<size_t>(it->second)] = r;
      }
    }
    for (int64_t l = 0; l < left.num_rows(); ++l) {
      const auto it = map.find(ExtractKey(left, lcols, l));
      if (it != map.end()) probe_gid[static_cast<size_t>(l)] = it->second;
    }
  }

  // Emit as row-index lists, then materialize with one gather per column.
  std::vector<int64_t> left_idx;
  std::vector<int64_t> right_idx;
  left_idx.reserve(static_cast<size_t>(left.num_rows()));
  if (emit_right) right_idx.reserve(static_cast<size_t>(left.num_rows()));
  for (int64_t l = 0; l < left.num_rows(); ++l) {
    const int64_t gid = probe_gid[static_cast<size_t>(l)];
    switch (type) {
      case JoinType::kInner:
        if (gid >= 0) {
          for (int64_t r = head[static_cast<size_t>(gid)]; r >= 0;
               r = next[static_cast<size_t>(r)]) {
            left_idx.push_back(l);
            right_idx.push_back(r);
          }
        }
        break;
      case JoinType::kLeftOuter:
        if (gid >= 0) {
          for (int64_t r = head[static_cast<size_t>(gid)]; r >= 0;
               r = next[static_cast<size_t>(r)]) {
            left_idx.push_back(l);
            right_idx.push_back(r);
          }
        } else {
          left_idx.push_back(l);
          right_idx.push_back(-1);  // null-padded below
        }
        break;
      case JoinType::kLeftSemi:
        if (gid >= 0) left_idx.push_back(l);
        break;
      case JoinType::kLeftAnti:
        if (gid < 0) left_idx.push_back(l);
        break;
    }
  }

  if (!emit_right) return left.GatherRows(left_idx);

  Table out(defs);
  for (int c = 0; c < left.num_columns(); ++c) {
    out.column(c).AppendGather(left.column(c), left_idx);
  }
  for (int c = 0; c < right.num_columns(); ++c) {
    Column& dst = out.column(left.num_columns() + c);
    if (type == JoinType::kLeftOuter) {
      dst.AppendGatherPadded(right.column(c), right_idx);
    } else {
      dst.AppendGather(right.column(c), right_idx);
    }
  }
  out.FinishBulkAppend();
  return out;
}

Table HashAggregate(const Table& input,
                    const std::vector<std::string>& group_by,
                    const std::vector<AggSpec>& aggregates) {
  const std::vector<int> gcols = ResolveColumns(input, group_by);
  const int64_t n = input.num_rows();

  // Evaluate aggregate inputs once over the whole table.
  std::vector<Column> agg_inputs;
  agg_inputs.reserve(aggregates.size());
  for (const AggSpec& spec : aggregates) {
    if (spec.input != nullptr) {
      agg_inputs.push_back(spec.input->Eval(input));
    } else {
      CACKLE_CHECK(spec.op == AggOp::kCount);
      agg_inputs.emplace_back(DataType::kInt64);
    }
  }

  // Pass 1: group id per row + first-seen row per group (group output order
  // is first-seen, as before).
  std::vector<int64_t> gid(static_cast<size_t>(n));
  std::vector<int64_t> first_rows;
  std::vector<PackedCol> plan;
  if (PlanGroupPack(input, gcols, &plan)) {
    ExecMetrics().key_packed_activations.fetch_add(1,
                                                   std::memory_order_relaxed);
    FlatMap64 map(ExpectedKeys(n, plan));
    for (int64_t r = 0; r < n; ++r) {
      bool inserted = false;
      gid[static_cast<size_t>(r)] = map.FindOrInsert(
          PackRow(plan, r), static_cast<int64_t>(first_rows.size()),
          &inserted);
      if (inserted) first_rows.push_back(r);
    }
    ExecMetrics().flat_table_builds.fetch_add(1, std::memory_order_relaxed);
    ExecMetrics().flat_table_resizes.fetch_add(map.resizes(),
                                               std::memory_order_relaxed);
  } else {
    ExecMetrics().key_fallback_activations.fetch_add(
        1, std::memory_order_relaxed);
    std::unordered_map<RowKey, int64_t, RowKeyHash> map;
    for (int64_t r = 0; r < n; ++r) {
      auto [it, inserted] =
          map.try_emplace(ExtractKey(input, gcols, r),
                          static_cast<int64_t>(first_rows.size()));
      if (inserted) first_rows.push_back(r);
      gid[static_cast<size_t>(r)] = it->second;
    }
  }

  // Global aggregate over empty input still yields one row of zeros.
  const bool global = group_by.empty();
  const int64_t num_groups =
      (global && first_rows.empty()) ? 1
                                     : static_cast<int64_t>(first_rows.size());

  // Pass 2: one typed accumulation loop per aggregate. Each group
  // accumulates in ascending row order — the same order as the previous
  // row-at-a-time implementation, so float sums are bit-identical.
  const size_t na = aggregates.size();
  std::vector<std::vector<double>> sums(na), mins(na), maxs(na);
  std::vector<std::vector<int64_t>> counts(na);
  std::vector<std::vector<std::set<int64_t>>> distinct_i(na);
  std::vector<std::vector<std::set<std::string>>> distinct_s(na);
  for (size_t a = 0; a < na; ++a) {
    const AggSpec& spec = aggregates[a];
    if (spec.op == AggOp::kCount) {
      counts[a].assign(static_cast<size_t>(num_groups), 0);
      for (int64_t r = 0; r < n; ++r) {
        ++counts[a][static_cast<size_t>(gid[static_cast<size_t>(r)])];
      }
      continue;
    }
    const Column& in = agg_inputs[a];
    if (spec.op == AggOp::kCountDistinct) {
      if (in.type() == DataType::kString) {
        distinct_s[a].resize(static_cast<size_t>(num_groups));
        for (int64_t r = 0; r < n; ++r) {
          distinct_s[a][static_cast<size_t>(gid[static_cast<size_t>(r)])]
              .insert(in.strings()[static_cast<size_t>(r)]);
        }
      } else if (in.type() == DataType::kInt64) {
        distinct_i[a].resize(static_cast<size_t>(num_groups));
        for (int64_t r = 0; r < n; ++r) {
          distinct_i[a][static_cast<size_t>(gid[static_cast<size_t>(r)])]
              .insert(in.ints()[static_cast<size_t>(r)]);
        }
      } else {
        CACKLE_CHECK(false) << "count distinct over doubles unsupported";
      }
      continue;
    }
    sums[a].assign(static_cast<size_t>(num_groups), 0.0);
    mins[a].assign(static_cast<size_t>(num_groups), 0.0);
    maxs[a].assign(static_cast<size_t>(num_groups), 0.0);
    counts[a].assign(static_cast<size_t>(num_groups), 0);
    auto accumulate = [&](auto&& value_at) {
      for (int64_t r = 0; r < n; ++r) {
        const size_t g =
            static_cast<size_t>(gid[static_cast<size_t>(r)]);
        const double v = value_at(static_cast<size_t>(r));
        if (counts[a][g] == 0) {
          mins[a][g] = maxs[a][g] = v;
        } else {
          mins[a][g] = std::min(mins[a][g], v);
          maxs[a][g] = std::max(maxs[a][g], v);
        }
        sums[a][g] += v;
        ++counts[a][g];
      }
    };
    if (in.type() == DataType::kInt64) {
      const std::vector<int64_t>& xs = in.ints();
      accumulate([&](size_t r) { return static_cast<double>(xs[r]); });
    } else {
      const std::vector<double>& xs = in.doubles();
      accumulate([&](size_t r) { return xs[r]; });
    }
  }

  // Output schema: group columns (original defs) then aggregates.
  std::vector<ColumnDef> defs;
  for (size_t g = 0; g < gcols.size(); ++g) {
    defs.push_back(input.column_def(gcols[static_cast<size_t>(g)]));
  }
  for (size_t a = 0; a < na; ++a) {
    const AggSpec& spec = aggregates[a];
    DataType type = DataType::kFloat64;
    if (spec.op == AggOp::kCount || spec.op == AggOp::kCountDistinct) {
      type = DataType::kInt64;
    } else if (spec.input != nullptr &&
               spec.input->OutputType(input) == DataType::kInt64 &&
               (spec.op == AggOp::kMin || spec.op == AggOp::kMax ||
                spec.op == AggOp::kSum)) {
      type = DataType::kInt64;
    }
    defs.push_back(ColumnDef{spec.name, type});
  }
  Table out(defs);

  // Group key values come from each group's first input row: one gather per
  // key column (keeps any dictionary sidecar).
  for (size_t g = 0; g < gcols.size(); ++g) {
    out.column(static_cast<int>(g))
        .AppendGather(input.column(gcols[g]), first_rows);
  }
  for (int64_t grp = 0; grp < num_groups; ++grp) {
    const size_t gi = static_cast<size_t>(grp);
    for (size_t a = 0; a < na; ++a) {
      const AggSpec& spec = aggregates[a];
      Column& dst = out.column(static_cast<int>(gcols.size() + a));
      double value = 0.0;
      switch (spec.op) {
        case AggOp::kSum:
          value = sums[a][gi];
          break;
        case AggOp::kMin:
          value = mins[a][gi];
          break;
        case AggOp::kMax:
          value = maxs[a][gi];
          break;
        case AggOp::kAvg:
          value = counts[a][gi] > 0
                      ? sums[a][gi] / static_cast<double>(counts[a][gi])
                      : 0.0;
          break;
        case AggOp::kCount:
          dst.AppendInt(counts[a][gi]);
          continue;
        case AggOp::kCountDistinct: {
          const size_t di =
              distinct_i[a].empty() ? 0 : distinct_i[a][gi].size();
          const size_t ds =
              distinct_s[a].empty() ? 0 : distinct_s[a][gi].size();
          dst.AppendInt(static_cast<int64_t>(di + ds));
          continue;
        }
      }
      if (dst.type() == DataType::kInt64) {
        dst.AppendInt(static_cast<int64_t>(value));
      } else {
        dst.AppendDouble(value);
      }
    }
  }
  out.FinishBulkAppend();
  return out;
}

Table SortBy(const Table& input, const std::vector<SortKey>& keys,
             int64_t limit) {
  std::vector<int> cols;
  cols.reserve(keys.size());
  for (const SortKey& k : keys) cols.push_back(input.ColumnIndex(k.column));
  std::vector<int64_t> rows(static_cast<size_t>(input.num_rows()));
  std::iota(rows.begin(), rows.end(), 0);
  std::stable_sort(rows.begin(), rows.end(), [&](int64_t a, int64_t b) {
    for (size_t k = 0; k < keys.size(); ++k) {
      const Column& c = input.column(cols[k]);
      int cmp = 0;
      switch (c.type()) {
        case DataType::kInt64: {
          const int64_t x = c.ints()[static_cast<size_t>(a)];
          const int64_t y = c.ints()[static_cast<size_t>(b)];
          cmp = x < y ? -1 : (x > y ? 1 : 0);
          break;
        }
        case DataType::kFloat64: {
          const double x = c.doubles()[static_cast<size_t>(a)];
          const double y = c.doubles()[static_cast<size_t>(b)];
          cmp = x < y ? -1 : (x > y ? 1 : 0);
          break;
        }
        case DataType::kString:
          cmp = c.strings()[static_cast<size_t>(a)].compare(
              c.strings()[static_cast<size_t>(b)]);
          break;
      }
      if (cmp != 0) return keys[k].ascending ? cmp < 0 : cmp > 0;
    }
    return false;
  });
  if (limit >= 0 && limit < static_cast<int64_t>(rows.size())) {
    rows.resize(static_cast<size_t>(limit));
  }
  return input.TakeRows(rows);
}

std::vector<Table> PartitionByHash(const Table& input,
                                   const std::vector<std::string>& key_columns,
                                   int64_t num_partitions) {
  CACKLE_CHECK_GT(num_partitions, 0);
  const std::vector<int> cols = ResolveColumns(input, key_columns);

  // The partition id must stay identical to RowKeyHash(ExtractKey(...)) —
  // shuffle placement feeds row order downstream — so this streams the same
  // mix (numeric columns first, then string columns) without materializing
  // RowKeys. String columns with a dictionary hash each distinct value once.
  std::vector<const Column*> num_cols;
  struct StrCol {
    const Column* col;
    std::vector<size_t> code_hash;  // per-dictionary-entry hash, if dict
  };
  std::vector<StrCol> str_cols;
  for (int c : cols) {
    const Column& col = input.column(c);
    if (col.type() == DataType::kString) {
      StrCol sc{&col, {}};
      if (col.has_dict()) {
        sc.code_hash.reserve(static_cast<size_t>(col.dict().size()));
        for (const std::string& s : col.dict().values()) {
          sc.code_hash.push_back(std::hash<std::string>{}(s));
        }
      }
      str_cols.push_back(std::move(sc));
    } else {
      num_cols.push_back(&col);
    }
  }

  std::vector<std::vector<int64_t>> part_rows(
      static_cast<size_t>(num_partitions));
  const size_t reserve_hint =
      static_cast<size_t>(input.num_rows() / num_partitions + 1);
  for (auto& rows : part_rows) rows.reserve(reserve_hint);

  for (int64_t r = 0; r < input.num_rows(); ++r) {
    size_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](size_t v) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    for (const Column* col : num_cols) {
      const int64_t v =
          col->type() == DataType::kInt64
              ? col->ints()[static_cast<size_t>(r)]
              : DoubleKeyBits(col->doubles()[static_cast<size_t>(r)]);
      mix(std::hash<int64_t>{}(v));
    }
    for (const StrCol& sc : str_cols) {
      if (!sc.code_hash.empty()) {
        mix(sc.code_hash[static_cast<size_t>(
            sc.col->codes()[static_cast<size_t>(r)])]);
      } else {
        mix(std::hash<std::string>{}(
            sc.col->strings()[static_cast<size_t>(r)]));
      }
    }
    part_rows[h % static_cast<size_t>(num_partitions)].push_back(r);
  }

  std::vector<Table> parts;
  parts.reserve(static_cast<size_t>(num_partitions));
  for (int64_t p = 0; p < num_partitions; ++p) {
    parts.push_back(input.GatherRows(part_rows[static_cast<size_t>(p)]));
  }
  return parts;
}

Table RenameColumns(const Table& input, const std::vector<std::string>& names) {
  CACKLE_CHECK_EQ(static_cast<int>(names.size()), input.num_columns());
  Table out;
  for (int c = 0; c < input.num_columns(); ++c) {
    out.AddColumn(ColumnDef{names[static_cast<size_t>(c)],
                            input.column_def(c).type},
                  input.column(c));
  }
  return out;
}

Table SelectColumns(const Table& input, const std::vector<std::string>& names) {
  Table out;
  for (const std::string& name : names) {
    const int c = input.ColumnIndex(name);
    out.AddColumn(input.column_def(c), input.column(c));
  }
  return out;
}

}  // namespace cackle::exec
