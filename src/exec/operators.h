#ifndef CACKLE_EXEC_OPERATORS_H_
#define CACKLE_EXEC_OPERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/expr.h"
#include "exec/table.h"

namespace cackle::exec {

/// \brief One output column of a projection: expression + name.
struct NamedExpr {
  ExprPtr expr;
  std::string name;
};

/// Evaluates `projections` over `input`, producing a new table. A null
/// filter keeps all rows; otherwise only rows where `filter` is non-zero
/// survive (filter applied before projection).
Table Project(const Table& input, const ExprPtr& filter,
              const std::vector<NamedExpr>& projections);

/// Filters rows where `predicate` is non-zero, keeping the schema.
Table Filter(const Table& input, const ExprPtr& predicate);

/// \brief Join kinds supported by HashJoin.
enum class JoinType {
  kInner,
  /// All left rows; unmatched right columns default to 0 / 0.0 / "".
  kLeftOuter,
  /// Left rows with at least one match (no right columns in the output).
  kLeftSemi,
  /// Left rows with no match (no right columns in the output).
  kLeftAnti,
};

/// \brief Hash join on equality of `left_keys` and `right_keys` (same count
/// and matching types; int64 or string keys). Inner/outer outputs all left
/// columns followed by all right columns; name collisions on the right get
/// a "r_" prefix... the caller should deduplicate names beforehand (CHECKed).
Table HashJoin(const Table& left, const std::vector<std::string>& left_keys,
               const Table& right, const std::vector<std::string>& right_keys,
               JoinType type = JoinType::kInner);

/// \brief Aggregate functions.
enum class AggOp { kSum, kMin, kMax, kCount, kAvg, kCountDistinct };

struct AggSpec {
  AggOp op;
  /// Input expression; may be null for kCount (count rows).
  ExprPtr input;
  std::string name;
};

/// \brief Group-by hash aggregation. `group_by` columns are carried through;
/// aggregates are appended. With an empty `group_by`, produces exactly one
/// row (global aggregate), even for empty input (sums 0, counts 0).
Table HashAggregate(const Table& input,
                    const std::vector<std::string>& group_by,
                    const std::vector<AggSpec>& aggregates);

/// \brief Sort keys: column name + direction.
struct SortKey {
  std::string column;
  bool ascending = true;
};

/// Sorts (stable) by `keys`; keeps the first `limit` rows when limit >= 0.
Table SortBy(const Table& input, const std::vector<SortKey>& keys,
             int64_t limit = -1);

/// Splits `input` into `num_partitions` tables by hashing `key_columns`
/// (used by the stage executor's shuffle).
std::vector<Table> PartitionByHash(const Table& input,
                                   const std::vector<std::string>& key_columns,
                                   int64_t num_partitions);

/// Renames columns (size must match the schema width).
Table RenameColumns(const Table& input, const std::vector<std::string>& names);

/// Keeps only the named columns, in the given order.
Table SelectColumns(const Table& input, const std::vector<std::string>& names);

}  // namespace cackle::exec

#endif  // CACKLE_EXEC_OPERATORS_H_
