#include "exec/optimizer.h"

#include <algorithm>

#include "common/logging.h"

namespace cackle::exec {
namespace {

bool SchemaHasAll(const std::vector<ColumnDef>& schema,
                  const std::set<std::string>& columns) {
  for (const std::string& name : columns) {
    bool found = false;
    for (const ColumnDef& def : schema) found |= def.name == name;
    if (!found) return false;
  }
  return true;
}

/// Whether every column in `columns` passes through `project` unchanged
/// (projected as a bare column reference under the same name), so a filter
/// referencing them can move below the projection.
bool PassesThrough(const LogicalNode& project,
                   const std::set<std::string>& columns) {
  for (const std::string& name : columns) {
    bool ok = false;
    for (const NamedExpr& item : project.projections) {
      if (item.name != name) continue;
      const std::set<std::string> refs = ReferencedColumns(item.expr);
      ok = refs.size() == 1 && *refs.begin() == name;
      break;
    }
    if (!ok) return false;
  }
  return true;
}

/// Pushes one conjunct as deep as possible into `node`; returns true when
/// the conjunct was absorbed (else the caller keeps it in a Filter above).
bool PushConjunct(const LogicalNodePtr& node, const ExprPtr& conjunct,
                  const TableResolver& resolver) {
  const std::set<std::string> refs = ReferencedColumns(conjunct);
  switch (node->type) {
    case LogicalOpType::kScan: {
      const Table* table = resolver.Find(node->table_name);
      if (table == nullptr) return false;
      if (!SchemaHasAll(table->schema(), refs)) return false;
      node->scan_predicates.push_back(conjunct);
      return true;
    }
    case LogicalOpType::kFilter:
      if (!PushConjunct(node->children[0], conjunct, resolver)) {
        node->conjuncts.push_back(conjunct);
      }
      return true;
    case LogicalOpType::kProject: {
      if (!PassesThrough(*node, refs)) return false;
      if (!PushConjunct(node->children[0], conjunct, resolver)) {
        // Wrap the child in a filter below the projection.
        node->children[0] = LFilter(node->children[0], conjunct);
      }
      return true;
    }
    case LogicalOpType::kJoin: {
      auto left_schema = OutputSchema(node->children[0], resolver);
      if (left_schema.ok() && SchemaHasAll(*left_schema, refs)) {
        if (!PushConjunct(node->children[0], conjunct, resolver)) {
          node->children[0] = LFilter(node->children[0], conjunct);
        }
        return true;
      }
      // Right-side pushes are only safe for inner joins (an outer join
      // would need the unmatched padding to survive; semi/anti right sides
      // do not appear in the output at all, so a conjunct referencing them
      // must be part of the join, not a post-filter).
      if (node->join_type != JoinType::kInner) return false;
      auto right_schema = OutputSchema(node->children[1], resolver);
      if (right_schema.ok() && SchemaHasAll(*right_schema, refs)) {
        if (!PushConjunct(node->children[1], conjunct, resolver)) {
          node->children[1] = LFilter(node->children[1], conjunct);
        }
        return true;
      }
      return false;
    }
    case LogicalOpType::kAggregate:
      // A conjunct over group-by columns only could move below, but
      // aggregate semantics with having-style filters are subtle; keep it
      // above (correct, just not optimal).
      return false;
    case LogicalOpType::kSort:
      // Filtering before a limit changes results; only push when there is
      // no limit.
      if (node->limit >= 0) return false;
      if (!PushConjunct(node->children[0], conjunct, resolver)) {
        node->children[0] = LFilter(node->children[0], conjunct);
      }
      return true;
  }
  return false;
}

Status PushDownFilters(const LogicalNodePtr& node,
                       const TableResolver& resolver) {
  for (LogicalNodePtr& child : node->children) {
    // Absorb filter children whose conjuncts all push through.
    if (child->type == LogicalOpType::kFilter) {
      std::vector<ExprPtr> kept;
      for (const ExprPtr& conjunct : child->conjuncts) {
        if (!PushConjunct(child->children[0], conjunct, resolver)) {
          kept.push_back(conjunct);
        }
      }
      if (kept.empty()) {
        child = child->children[0];
      } else {
        child->conjuncts = std::move(kept);
      }
    }
    CACKLE_RETURN_IF_ERROR(PushDownFilters(child, resolver));
  }
  return Status::OK();
}

void ChooseBroadcastJoins(const LogicalNodePtr& node,
                          const TableResolver& resolver,
                          const OptimizerOptions& options) {
  for (const LogicalNodePtr& child : node->children) {
    ChooseBroadcastJoins(child, resolver, options);
  }
  if (node->type == LogicalOpType::kJoin) {
    node->broadcast_right = EstimateRows(node->children[1], resolver) <=
                            options.broadcast_row_threshold;
  }
}

/// Columns of `node`'s output that `parent_needs` requires, mapped to what
/// node's own child must produce; prunes scan columns along the way.
Status PruneColumns(const LogicalNodePtr& node,
                    const std::set<std::string>& parent_needs,
                    const TableResolver& resolver) {
  switch (node->type) {
    case LogicalOpType::kScan: {
      const Table* table = resolver.Find(node->table_name);
      if (table == nullptr) {
        return Status::NotFound("unknown table " + node->table_name);
      }
      std::set<std::string> needed = parent_needs;
      for (const ExprPtr& pred : node->scan_predicates) {
        const std::set<std::string> refs = ReferencedColumns(pred);
        needed.insert(refs.begin(), refs.end());
      }
      node->scan_columns.clear();
      for (const ColumnDef& def : table->schema()) {
        if (needed.count(def.name)) node->scan_columns.push_back(def.name);
      }
      if (node->scan_columns.empty() && !table->schema().empty()) {
        // Keep at least one column so row counts survive.
        node->scan_columns.push_back(table->schema()[0].name);
      }
      return Status::OK();
    }
    case LogicalOpType::kFilter: {
      std::set<std::string> needed = parent_needs;
      for (const ExprPtr& conjunct : node->conjuncts) {
        const std::set<std::string> refs = ReferencedColumns(conjunct);
        needed.insert(refs.begin(), refs.end());
      }
      return PruneColumns(node->children[0], needed, resolver);
    }
    case LogicalOpType::kProject: {
      std::set<std::string> needed;
      for (const NamedExpr& item : node->projections) {
        const std::set<std::string> refs = ReferencedColumns(item.expr);
        needed.insert(refs.begin(), refs.end());
      }
      return PruneColumns(node->children[0], needed, resolver);
    }
    case LogicalOpType::kJoin: {
      CACKLE_ASSIGN_OR_RETURN(const std::vector<ColumnDef> left_schema,
                              OutputSchema(node->children[0], resolver));
      std::set<std::string> left_needs;
      std::set<std::string> right_needs;
      for (const std::string& name : parent_needs) {
        bool in_left = false;
        for (const ColumnDef& def : left_schema) in_left |= def.name == name;
        if (in_left) {
          left_needs.insert(name);
        } else {
          right_needs.insert(name);
        }
      }
      left_needs.insert(node->left_keys.begin(), node->left_keys.end());
      right_needs.insert(node->right_keys.begin(), node->right_keys.end());
      CACKLE_RETURN_IF_ERROR(
          PruneColumns(node->children[0], left_needs, resolver));
      return PruneColumns(node->children[1], right_needs, resolver);
    }
    case LogicalOpType::kAggregate: {
      std::set<std::string> needed(node->group_by.begin(),
                                   node->group_by.end());
      for (const AggSpec& agg : node->aggregates) {
        const std::set<std::string> refs = ReferencedColumns(agg.input);
        needed.insert(refs.begin(), refs.end());
      }
      return PruneColumns(node->children[0], needed, resolver);
    }
    case LogicalOpType::kSort: {
      std::set<std::string> needed = parent_needs;
      for (const SortKey& key : node->sort_keys) needed.insert(key.column);
      return PruneColumns(node->children[0], needed, resolver);
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace

int64_t EstimateRows(const LogicalNodePtr& node,
                     const TableResolver& resolver) {
  switch (node->type) {
    case LogicalOpType::kScan: {
      const Table* table = resolver.Find(node->table_name);
      double rows = table == nullptr
                        ? 1'000'000.0
                        : static_cast<double>(table->num_rows());
      for (size_t i = 0; i < node->scan_predicates.size(); ++i) rows *= 0.25;
      return std::max<int64_t>(1, static_cast<int64_t>(rows));
    }
    case LogicalOpType::kFilter: {
      double rows =
          static_cast<double>(EstimateRows(node->children[0], resolver));
      for (size_t i = 0; i < node->conjuncts.size(); ++i) rows *= 0.25;
      return std::max<int64_t>(1, static_cast<int64_t>(rows));
    }
    case LogicalOpType::kProject:
    case LogicalOpType::kSort:
      return EstimateRows(node->children[0], resolver);
    case LogicalOpType::kJoin: {
      const int64_t left = EstimateRows(node->children[0], resolver);
      const int64_t right = EstimateRows(node->children[1], resolver);
      return std::min(left, right);
    }
    case LogicalOpType::kAggregate:
      return std::max<int64_t>(
          1, EstimateRows(node->children[0], resolver) / 10);
  }
  return 1;
}

StatusOr<LogicalNodePtr> Optimize(LogicalNodePtr plan,
                                  const TableResolver& resolver,
                                  const OptimizerOptions& options) {
  // Validate the input tree first: every rule below may assume schemas
  // resolve.
  CACKLE_RETURN_IF_ERROR(OutputSchema(plan, resolver).status());

  if (options.push_down_filters) {
    // The root itself may be a filter; wrap in a trivial holder so the rule
    // sees it as a child.
    auto holder = std::make_shared<LogicalNode>();
    holder->type = LogicalOpType::kSort;  // placeholder; only children used
    holder->children = {plan};
    CACKLE_RETURN_IF_ERROR(PushDownFilters(holder, resolver));
    plan = holder->children[0];
  }
  if (options.choose_broadcast_joins) {
    ChooseBroadcastJoins(plan, resolver, options);
  }
  if (options.prune_columns) {
    CACKLE_ASSIGN_OR_RETURN(const std::vector<ColumnDef> root_schema,
                            OutputSchema(plan, resolver));
    std::set<std::string> all;
    for (const ColumnDef& def : root_schema) all.insert(def.name);
    CACKLE_RETURN_IF_ERROR(PruneColumns(plan, all, resolver));
  }
  // The rules must preserve schema validity.
  CACKLE_RETURN_IF_ERROR(OutputSchema(plan, resolver).status());
  return plan;
}

}  // namespace cackle::exec
