#ifndef CACKLE_EXEC_OPTIMIZER_H_
#define CACKLE_EXEC_OPTIMIZER_H_

#include <cstdint>

#include "common/status.h"
#include "exec/logical.h"

namespace cackle::exec {

/// \brief Optimizer knobs.
struct OptimizerOptions {
  /// A join's right side is broadcast (replicated to every task) instead of
  /// co-partitioned when its estimated row count is at most this.
  int64_t broadcast_row_threshold = 50'000;
  /// Rule toggles (for ablation and tests).
  bool push_down_filters = true;
  bool prune_columns = true;
  bool choose_broadcast_joins = true;
};

/// \brief Rule-based logical optimizer. Applies, in order:
///
///  1. *Filter pushdown*: each conjunct moves as deep as its referenced
///     columns allow — through projections (when the referenced columns
///     pass through unchanged), into the matching side of a join, and into
///     the scan itself (`scan_predicates`).
///  2. *Broadcast selection*: joins whose right side is estimated small
///     (scans of small tables, shrunk by filters) are marked
///     `broadcast_right`, avoiding a shuffle of the big side.
///  3. *Column pruning*: scans read only the columns some ancestor needs
///     (`scan_columns`).
///
/// The input tree is consumed; the returned tree produces identical results
/// (tested against unoptimized execution) with less work.
[[nodiscard]] StatusOr<LogicalNodePtr> Optimize(LogicalNodePtr plan,
                                  const TableResolver& resolver,
                                  const OptimizerOptions& options = {});

/// Row-count estimate used by broadcast selection (exposed for tests):
/// base-table rows for scans, scaled by 0.25 per pushed filter conjunct,
/// preserved through projections, min(left, right) for inner joins.
int64_t EstimateRows(const LogicalNodePtr& node,
                     const TableResolver& resolver);

}  // namespace cackle::exec

#endif  // CACKLE_EXEC_OPTIMIZER_H_
