#include "exec/plan.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "exec/operators.h"

namespace cackle::exec {

PlanExecutor::PlanExecutor(int num_threads) : num_threads_(num_threads) {
  CACKLE_CHECK_GE(num_threads, 1);
}

const StagePlan& ValidatePlan(const StagePlan& plan) {
  CACKLE_CHECK(!plan.stages.empty()) << plan.name << ": empty plan";
  for (size_t i = 0; i < plan.stages.size(); ++i) {
    const PlanStage& stage = plan.stages[i];
    CACKLE_CHECK_GT(stage.num_tasks, 0) << plan.name << "/" << stage.label;
    CACKLE_CHECK(stage.run != nullptr) << plan.name << "/" << stage.label;
    CACKLE_CHECK_EQ(stage.deps.size(), stage.broadcast.size())
        << plan.name << "/" << stage.label;
    CACKLE_CHECK_GT(stage.output_partitions, 0);
    for (size_t d = 0; d < stage.deps.size(); ++d) {
      const int dep = stage.deps[d];
      CACKLE_CHECK_GE(dep, 0);
      CACKLE_CHECK_LT(dep, static_cast<int>(i))
          << plan.name << ": deps must be topological";
      const PlanStage& upstream = plan.stages[static_cast<size_t>(dep)];
      if (stage.broadcast[d]) {
        CACKLE_CHECK_EQ(upstream.output_partitions, 1)
            << plan.name << "/" << stage.label
            << ": broadcast dep must gather to one partition";
      } else {
        CACKLE_CHECK_EQ(upstream.output_partitions, stage.num_tasks)
            << plan.name << "/" << stage.label
            << ": partitioned dep must match task count";
      }
    }
  }
  const PlanStage& last = plan.stages.back();
  CACKLE_CHECK_EQ(last.output_partitions, 1)
      << plan.name << ": final stage must gather to one partition";
  return plan;
}

Table PlanExecutor::Execute(const StagePlan& plan, PlanRunStats* stats) {
  ValidatePlan(plan);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<StageOutput> outputs(plan.stages.size());
  if (stats != nullptr) {
    stats->stages.clear();
    stats->stages.resize(plan.stages.size());
  }

  for (size_t i = 0; i < plan.stages.size(); ++i) {
    const PlanStage& stage = plan.stages[i];
    StageStats* sstats = stats != nullptr ? &stats->stages[i] : nullptr;
    if (sstats != nullptr) {
      sstats->label = stage.label;
      sstats->num_tasks = stage.num_tasks;
    }
    std::vector<Table> task_outputs(static_cast<size_t>(stage.num_tasks));
    std::vector<int64_t> task_micros(static_cast<size_t>(stage.num_tasks), 0);
    auto run_one_task = [&](int t) {
      TaskInput input;
      input.tables.reserve(stage.deps.size());
      for (size_t d = 0; d < stage.deps.size(); ++d) {
        const StageOutput& up = outputs[static_cast<size_t>(stage.deps[d])];
        const size_t part = stage.broadcast[d] ? 0 : static_cast<size_t>(t);
        CACKLE_CHECK_LT(part, up.partitions.size());
        input.tables.push_back(&up.partitions[part]);
      }
      const auto task_start = std::chrono::steady_clock::now();
      task_outputs[static_cast<size_t>(t)] = stage.run(t, input);
      const auto task_end = std::chrono::steady_clock::now();
      task_micros[static_cast<size_t>(t)] =
          std::chrono::duration_cast<std::chrono::microseconds>(task_end -
                                                                task_start)
              .count();
    };
    if (num_threads_ <= 1 || stage.num_tasks == 1) {
      for (int t = 0; t < stage.num_tasks; ++t) run_one_task(t);
    } else {
      // Tasks of one stage are independent: pull indices from a shared
      // counter on a small pool. Outputs land in per-index slots, so the
      // result is identical to serial execution.
      std::atomic<int> next_task{0};
      const int workers = std::min(num_threads_, stage.num_tasks);
      std::vector<std::thread> pool;
      pool.reserve(static_cast<size_t>(workers));
      for (int w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
          for (;;) {
            const int t = next_task.fetch_add(1);
            if (t >= stage.num_tasks) break;
            run_one_task(t);
          }
        });
      }
      for (std::thread& worker : pool) worker.join();
    }
    if (sstats != nullptr) {
      sstats->task_micros = std::move(task_micros);
    }

    // Shuffle: partition task outputs for consumers.
    StageOutput& out = outputs[i];
    if (stage.output_partitions == 1) {
      out.partitions.push_back(Concat(task_outputs));
    } else {
      CACKLE_CHECK(!stage.output_keys.empty())
          << plan.name << "/" << stage.label
          << ": multi-partition output needs keys";
      std::vector<std::vector<Table>> per_partition(
          static_cast<size_t>(stage.output_partitions));
      for (const Table& to : task_outputs) {
        std::vector<Table> parts =
            PartitionByHash(to, stage.output_keys, stage.output_partitions);
        for (size_t p = 0; p < parts.size(); ++p) {
          per_partition[p].push_back(std::move(parts[p]));
        }
      }
      for (auto& group : per_partition) {
        out.partitions.push_back(Concat(group));
      }
    }
    if (sstats != nullptr) {
      for (const Table& p : out.partitions) {
        sstats->output_bytes += p.EstimateBytes();
        sstats->output_rows += p.num_rows();
      }
    }
    // Inputs of fully-consumed earlier stages could be freed here; at test
    // scale we keep them for simplicity.
  }

  if (stats != nullptr) {
    stats->total_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  }
  CACKLE_CHECK_EQ(outputs.back().partitions.size(), 1u);
  return std::move(outputs.back().partitions[0]);
}

}  // namespace cackle::exec
