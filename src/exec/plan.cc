#include "exec/plan.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <utility>

#include "common/logging.h"
#include "common/metric_names.h"
#include "common/metrics.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "exec/op_context.h"
#include "exec/operators.h"

namespace cackle::exec {

PlanExecutor::PlanExecutor(int num_threads)
    : PlanExecutor(ExecutorOptions{num_threads, true, true}) {}

PlanExecutor::PlanExecutor(const ExecutorOptions& options)
    : options_(options) {
  CACKLE_CHECK_GE(options.num_threads, 1);
}

PlanExecutor::~PlanExecutor() = default;

ThreadPool* PlanExecutor::EnsurePool() {
  if (pool_ == nullptr) {
    // The calling thread helps while waiting on task groups, so N-1 workers
    // plus the caller give num_threads concurrent executors.
    pool_ = std::make_unique<ThreadPool>(options_.num_threads - 1);
  }
  return pool_.get();
}

void PlanExecutor::ExportMetrics(MetricsRegistry* metrics,
                                 const std::string& prefix) const {
  metrics->SetCounter(prefix + metric_names::kSuffixPlansRun, plans_run_);
  metrics->SetCounter(prefix + metric_names::kSuffixStagesRun, stages_run_);
  if (pool_ != nullptr) pool_->ExportMetrics(metrics, prefix);
}

const StagePlan& ValidatePlan(const StagePlan& plan) {
  CACKLE_CHECK(!plan.stages.empty()) << plan.name << ": empty plan";
  for (size_t i = 0; i < plan.stages.size(); ++i) {
    const PlanStage& stage = plan.stages[i];
    CACKLE_CHECK_GT(stage.num_tasks, 0) << plan.name << "/" << stage.label;
    CACKLE_CHECK(stage.run != nullptr) << plan.name << "/" << stage.label;
    CACKLE_CHECK_EQ(stage.deps.size(), stage.broadcast.size())
        << plan.name << "/" << stage.label;
    CACKLE_CHECK_GT(stage.output_partitions, 0)
        << plan.name << "/" << stage.label;
    for (size_t d = 0; d < stage.deps.size(); ++d) {
      const int dep = stage.deps[d];
      CACKLE_CHECK_GE(dep, 0);
      CACKLE_CHECK_LT(dep, static_cast<int>(i))
          << plan.name << ": deps must be topological";
      const PlanStage& upstream = plan.stages[static_cast<size_t>(dep)];
      if (stage.broadcast[d]) {
        CACKLE_CHECK_EQ(upstream.output_partitions, 1)
            << plan.name << "/" << stage.label
            << ": broadcast dep must gather to one partition";
      } else {
        CACKLE_CHECK_EQ(upstream.output_partitions, stage.num_tasks)
            << plan.name << "/" << stage.label
            << ": partitioned dep must match task count";
      }
    }
  }
  const PlanStage& last = plan.stages.back();
  CACKLE_CHECK_EQ(last.output_partitions, 1)
      << plan.name << ": final stage must gather to one partition";
  return plan;
}

namespace {

/// One plan execution: per-stage runtime state plus the phase functions
/// every driver (serial, pooled-barrier, pooled-pipelined) runs in the same
/// per-slot order, which is what keeps results bit-identical.
///
/// A stage flows through three phases:
///   task phase      RunTask(i, t)        -> task_outputs[t]
///   partition phase PartitionTask(i, t)  -> parts[t][p]     (multi-part)
///                   or one GatherConcat(i)                  (single-part)
///   concat phase    ConcatPartition(i, p)-> outputs[i].partitions[p]
/// followed by FinishStage(i) bookkeeping. Upstream inputs are only read
/// during the task phase, so consumer refcounts drop when it ends and a
/// fully-consumed stage's partitions are freed immediately.
class PlanRun {
 public:
  PlanRun(const StagePlan& plan, const ExecutorOptions& options,
          PlanRunStats* stats)
      : plan_(plan),
        options_(options),
        stats_(stats),
        outputs_(plan.stages.size()),
        stages_(plan.stages.size()) {
    if (stats_ != nullptr) {
      stats_->stages.clear();
      stats_->stages.resize(plan.stages.size());
      stats_->peak_resident_bytes = 0;
    }
    for (size_t i = 0; i < plan_.stages.size(); ++i) {
      const PlanStage& stage = plan_.stages[i];
      StageState& state = stages_[i];
      state.deps_left.store(static_cast<int>(stage.deps.size()),
                            std::memory_order_relaxed);
      state.tasks_left.store(stage.num_tasks, std::memory_order_relaxed);
      state.task_outputs.resize(static_cast<size_t>(stage.num_tasks));
      state.task_micros.assign(static_cast<size_t>(stage.num_tasks), 0);
      for (const int dep : stage.deps) {
        stages_[static_cast<size_t>(dep)].consumers_left.fetch_add(
            1, std::memory_order_relaxed);
        consumers_[dep].push_back(static_cast<int>(i));
      }
      if (stats_ != nullptr) {
        stats_->stages[i].label = stage.label;
        stats_->stages[i].num_tasks = stage.num_tasks;
      }
    }
  }

  Table Run(ThreadPool* pool) {
    op_context_.pool = pool;
    op_context_.morsel_rows = options_.morsel_rows;
    op_context_.radix_bits = options_.radix_bits;
    op_context_.bloom_pushdown = options_.enable_bloom_pushdown;
    op_context_.report_scratch_bytes = [this](int64_t bytes) {
      ReportScratch(bytes);
    };
    if (pool == nullptr) {
      RunSerial();
    } else if (options_.pipeline) {
      RunPipelined(pool);
    } else {
      RunBarrier(pool);
    }
    if (stats_ != nullptr) {
      // All pool tasks have completed (the run drivers wait), but the
      // analysis cannot see that quiescence; take the lock for the final
      // read rather than annotating it away.
      MutexLock lock(&residency_mu_);
      stats_->peak_resident_bytes = peak_resident_;
    }
    CACKLE_CHECK_EQ(outputs_.back().partitions.size(), 1u) << plan_.name;
    return std::move(outputs_.back().partitions[0]);
  }

 private:
  struct StageState {
    std::atomic<int> deps_left{0};
    std::atomic<int> tasks_left{0};
    std::atomic<int> partitions_left{0};
    std::atomic<int> concats_left{0};
    std::atomic<int> consumers_left{0};
    std::vector<Table> task_outputs;
    /// parts[t][p]: task t's hash partition p (multi-partition shuffle).
    std::vector<std::vector<Table>> parts;
    std::vector<int64_t> task_micros;
    /// Bytes this stage's finished partitions hold (set by FinishStage,
    /// read under residency_mu_ when the stage is freed).
    int64_t resident_bytes = 0;
  };

  // --- phase bodies (identical work in every driver) -----------------------

  void RunTask(size_t i, int t) {
    const PlanStage& stage = plan_.stages[i];
    const ScopedLogContext ctx(plan_.name + "/" + stage.label);
    const ScopedOpExecContext op_ctx(&op_context_);
    StageState& state = stages_[i];
    TaskInput input;
    input.tables.reserve(stage.deps.size());
    for (size_t d = 0; d < stage.deps.size(); ++d) {
      const StageOutput& up = outputs_[static_cast<size_t>(stage.deps[d])];
      const size_t part = stage.broadcast[d] ? 0 : static_cast<size_t>(t);
      CACKLE_CHECK_LT(part, up.partitions.size());
      input.tables.push_back(&up.partitions[part]);
    }
    // Per-task wall time feeds profiling stats only, never query
    // results or billing.
    // NOLINTNEXTLINE(cackle-determinism): profiling-only timing.
    const auto t0 = std::chrono::steady_clock::now();
    state.task_outputs[static_cast<size_t>(t)] = stage.run(t, input);
    state.task_micros[static_cast<size_t>(t)] =
        std::chrono::duration_cast<std::chrono::microseconds>(
            // NOLINTNEXTLINE(cackle-determinism): profiling-only timing.
            std::chrono::steady_clock::now() - t0)
            .count();
  }

  void PartitionTask(size_t i, int t) {
    const PlanStage& stage = plan_.stages[i];
    const ScopedLogContext ctx(plan_.name + "/" + stage.label);
    const ScopedOpExecContext op_ctx(&op_context_);
    StageState& state = stages_[i];
    state.parts[static_cast<size_t>(t)] =
        PartitionByHash(state.task_outputs[static_cast<size_t>(t)],
                        stage.output_keys, stage.output_partitions);
    // The raw task output is fully partitioned now; drop it early.
    state.task_outputs[static_cast<size_t>(t)] = Table();
  }

  void ConcatPartition(size_t i, int p) {
    StageState& state = stages_[i];
    std::vector<Table> group;
    group.reserve(state.parts.size());
    for (auto& task_parts : state.parts) {
      group.push_back(std::move(task_parts[static_cast<size_t>(p)]));
    }
    outputs_[i].partitions[static_cast<size_t>(p)] = Concat(group);
  }

  void GatherConcat(size_t i) {
    StageState& state = stages_[i];
    outputs_[i].partitions[0] = Concat(state.task_outputs);
    state.task_outputs.clear();
  }

  /// Folds one operator's transient scratch high-water (radix partition
  /// lists, bloom filters, packed-key and emit buffers) into the peak
  /// residency figure. Concurrent operators each raise the peak against the
  /// same resident base, which understates overlap but never hides an
  /// operator's footprint entirely.
  void ReportScratch(int64_t bytes) {
    MutexLock lock(&residency_mu_);
    peak_resident_ = std::max(peak_resident_, current_resident_ + bytes);
  }

  /// Drops one consumer reference on every dependency of stage `i` (called
  /// once its task phase — the only phase that reads inputs — completes).
  void ReleaseInputs(size_t i) {
    for (const int dep : plan_.stages[i].deps) {
      StageState& up = stages_[static_cast<size_t>(dep)];
      if (up.consumers_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        FreeStageOutput(static_cast<size_t>(dep));
      }
    }
  }

  void FreeStageOutput(size_t i) {
    if (!options_.release_stage_outputs) return;
    if (i + 1 == plan_.stages.size()) return;  // the plan result
    {
      MutexLock lock(&residency_mu_);
      current_resident_ -= stages_[i].resident_bytes;
    }
    outputs_[i].partitions.clear();
    outputs_[i].partitions.shrink_to_fit();
  }

  /// Post-shuffle bookkeeping: stats, residency accounting, buffer cleanup.
  void FinishStage(size_t i) {
    StageState& state = stages_[i];
    state.parts.clear();
    state.task_outputs.clear();
    int64_t bytes = 0;
    int64_t rows = 0;
    for (const Table& p : outputs_[i].partitions) {
      bytes += p.EstimateBytes();
      rows += p.num_rows();
    }
    state.resident_bytes = bytes;
    {
      MutexLock lock(&residency_mu_);
      current_resident_ += bytes;
      peak_resident_ = std::max(peak_resident_, current_resident_);
    }
    if (stats_ != nullptr) {
      StageStats& sstats = stats_->stages[i];
      sstats.task_micros = std::move(state.task_micros);
      sstats.output_bytes = bytes;
      sstats.output_rows = rows;
    }
    // A stage nothing consumes (and that isn't the result) can go now.
    if (state.consumers_left.load(std::memory_order_acquire) == 0) {
      FreeStageOutput(i);
    }
  }

  void PrepareShuffle(size_t i) {
    const PlanStage& stage = plan_.stages[i];
    StageState& state = stages_[i];
    outputs_[i].partitions.resize(
        static_cast<size_t>(stage.output_partitions));
    if (stage.output_partitions > 1) {
      CACKLE_CHECK(!stage.output_keys.empty())
          << plan_.name << "/" << stage.label
          << ": multi-partition output needs keys";
      state.parts.resize(static_cast<size_t>(stage.num_tasks));
    }
  }

  // --- drivers -------------------------------------------------------------

  void RunSerial() {
    for (size_t i = 0; i < plan_.stages.size(); ++i) {
      const PlanStage& stage = plan_.stages[i];
      for (int t = 0; t < stage.num_tasks; ++t) RunTask(i, t);
      ReleaseInputs(i);
      PrepareShuffle(i);
      if (stage.output_partitions == 1) {
        GatherConcat(i);
      } else {
        for (int t = 0; t < stage.num_tasks; ++t) PartitionTask(i, t);
        for (int p = 0; p < stage.output_partitions; ++p) {
          ConcatPartition(i, p);
        }
      }
      FinishStage(i);
    }
  }

  void RunBarrier(ThreadPool* pool) {
    for (size_t i = 0; i < plan_.stages.size(); ++i) {
      const PlanStage& stage = plan_.stages[i];
      TaskGroup group(pool, plan_.name + "/" + stage.label);
      for (int t = 0; t < stage.num_tasks; ++t) {
        group.Submit([this, i, t] { RunTask(i, t); });
      }
      group.Wait();
      ReleaseInputs(i);
      PrepareShuffle(i);
      if (stage.output_partitions == 1) {
        GatherConcat(i);
      } else {
        for (int t = 0; t < stage.num_tasks; ++t) {
          group.Submit([this, i, t] { PartitionTask(i, t); });
        }
        group.Wait();
        for (int p = 0; p < stage.output_partitions; ++p) {
          group.Submit([this, i, p] { ConcatPartition(i, p); });
        }
        group.Wait();
      }
      FinishStage(i);
    }
  }

  /// DAG-pipelined: a stage is scheduled the moment its last dependency
  /// finishes its shuffle, so independent stages overlap. All chaining
  /// happens inside running tasks (successors are submitted before the
  /// current task retires), so the single plan-wide group's outstanding
  /// count only reaches zero when the whole DAG has drained.
  void RunPipelined(ThreadPool* pool) {
    group_ = std::make_unique<TaskGroup>(pool, plan_.name);
    for (size_t i = 0; i < plan_.stages.size(); ++i) {
      if (plan_.stages[i].deps.empty()) ScheduleStage(i);
    }
    group_->Wait();
    group_.reset();
  }

  void ScheduleStage(size_t i) {
    for (int t = 0; t < plan_.stages[i].num_tasks; ++t) {
      group_->Submit([this, i, t] {
        RunTask(i, t);
        OnTaskDone(i);
      });
    }
  }

  void OnTaskDone(size_t i) {
    StageState& state = stages_[i];
    if (state.tasks_left.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
    ReleaseInputs(i);
    PrepareShuffle(i);
    const PlanStage& stage = plan_.stages[i];
    if (stage.output_partitions == 1) {
      GatherConcat(i);
      CompleteStage(i);
      return;
    }
    state.partitions_left.store(stage.num_tasks, std::memory_order_release);
    for (int t = 0; t < stage.num_tasks; ++t) {
      group_->Submit([this, i, t] {
        PartitionTask(i, t);
        OnPartitionDone(i);
      });
    }
  }

  void OnPartitionDone(size_t i) {
    StageState& state = stages_[i];
    if (state.partitions_left.fetch_sub(1, std::memory_order_acq_rel) != 1) {
      return;
    }
    const int partitions = plan_.stages[i].output_partitions;
    state.concats_left.store(partitions, std::memory_order_release);
    for (int p = 0; p < partitions; ++p) {
      group_->Submit([this, i, p] {
        ConcatPartition(i, p);
        OnConcatDone(i);
      });
    }
  }

  void OnConcatDone(size_t i) {
    if (stages_[i].concats_left.fetch_sub(1, std::memory_order_acq_rel) ==
        1) {
      CompleteStage(i);
    }
  }

  void CompleteStage(size_t i) {
    FinishStage(i);
    const auto it = consumers_.find(static_cast<int>(i));
    if (it == consumers_.end()) return;
    for (const int consumer : it->second) {
      StageState& down = stages_[static_cast<size_t>(consumer)];
      if (down.deps_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        ScheduleStage(static_cast<size_t>(consumer));
      }
    }
  }

  const StagePlan& plan_;
  const ExecutorOptions& options_;
  PlanRunStats* stats_;
  std::vector<StageOutput> outputs_;
  std::vector<StageState> stages_;
  /// Stage -> dependent stage ids (one entry per dep edge, duplicates kept
  /// so deps_left/consumers_left stay consistent with repeated deps).
  std::map<int, std::vector<int>> consumers_;
  std::unique_ptr<TaskGroup> group_;
  /// Installed thread-locally around every task body (ScopedOpExecContext)
  /// so operators see the executor's intra-operator knobs.
  OpExecContext op_context_;
  /// Residency accounting is the one piece of PlanRun state concurrent
  /// tasks mutate outside per-index slots; everything else merges in fixed
  /// index order (see the class comment on determinism).
  Mutex residency_mu_;
  int64_t current_resident_ CACKLE_GUARDED_BY(residency_mu_) = 0;
  int64_t peak_resident_ CACKLE_GUARDED_BY(residency_mu_) = 0;
};

}  // namespace

Table PlanExecutor::Execute(const StagePlan& plan, PlanRunStats* stats) {
  ValidatePlan(plan);
  // Plan wall time feeds PlanRunStats for benchmarks only; results and
  // metrics stay deterministic.
  // NOLINTNEXTLINE(cackle-determinism): profiling-only timing.
  const auto t0 = std::chrono::steady_clock::now();
  const bool pooled =
      options_.num_threads > 1 &&
      !(plan.stages.size() == 1 && plan.stages[0].num_tasks == 1);
  PlanRun run(plan, options_, stats);
  Table result = run.Run(pooled ? EnsurePool() : nullptr);
  ++plans_run_;
  stages_run_ += static_cast<int64_t>(plan.stages.size());
  if (stats != nullptr) {
    stats->total_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                              // NOLINTNEXTLINE(cackle-determinism): ditto.
                              std::chrono::steady_clock::now() - t0)
                              .count();
  }
  return result;
}

}  // namespace cackle::exec
