#ifndef CACKLE_EXEC_PLAN_H_
#define CACKLE_EXEC_PLAN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/table.h"

namespace cackle {
class MetricsRegistry;
class ThreadPool;
}  // namespace cackle

namespace cackle::exec {

/// \brief Output of one executed stage: one table per shuffle partition.
struct StageOutput {
  std::vector<Table> partitions;
};

/// \brief Inputs handed to a task: for each dependency, the partitions this
/// task should read. Broadcast dependencies supply every task the same
/// single partition; partitioned dependencies supply partition
/// `task_index`.
struct TaskInput {
  std::vector<const Table*> tables;  // one per dependency, in deps order
};

/// \brief A stage of a physical query plan, Cackle-style: `num_tasks`
/// independent tasks that each consume their share of the upstream shuffle
/// and produce output rows. After all tasks finish, the stage's output is
/// hash-partitioned on `output_keys` into `output_partitions` partitions
/// for downstream stages (empty keys + 1 partition = gather/broadcast).
struct PlanStage {
  std::string label;
  std::vector<int> deps;
  /// For each dep: true = every task reads the dep's single gathered
  /// partition (broadcast); false = task t reads the dep's partition t
  /// (requires dep.output_partitions == num_tasks).
  std::vector<bool> broadcast;
  int num_tasks = 1;
  /// Runs task `task_index`; `input.tables[i]` corresponds to deps[i].
  std::function<Table(int task_index, const TaskInput& input)> run;
  std::vector<std::string> output_keys;
  int output_partitions = 1;
};

/// \brief A full query plan: stages in topological order; the last stage's
/// single gathered partition is the query result.
struct StagePlan {
  std::string name;
  std::vector<PlanStage> stages;
};

/// \brief Per-stage execution statistics captured by the executor — the raw
/// material for Cackle QueryProfiles.
struct StageStats {
  std::string label;
  int num_tasks = 0;
  std::vector<int64_t> task_micros;
  int64_t output_bytes = 0;  // bytes shuffled to downstream stages
  int64_t output_rows = 0;
};

struct PlanRunStats {
  std::vector<StageStats> stages;
  int64_t total_micros = 0;
  /// Peak bytes of live stage shuffle outputs during the run. With input
  /// release enabled (the default) a stage's partitions are freed after its
  /// last consumer finishes reading them, so on deep plans this is well
  /// below the sum of all stage output bytes.
  int64_t peak_resident_bytes = 0;
};

/// \brief Execution knobs for PlanExecutor.
struct ExecutorOptions {
  /// Total executor threads. 1 = serial in index order. With N >= 2 the
  /// executor keeps a persistent work-stealing pool of N-1 workers and the
  /// calling thread helps while waiting, so N threads execute tasks.
  int num_threads = 1;
  /// When pooled: schedule stages along the plan's dependency DAG so
  /// independent stages overlap (no per-stage join barrier). When false,
  /// stages still run their tasks and shuffle steps on the pool but
  /// barrier between phases in stage index order.
  bool pipeline = true;
  /// Free a stage's shuffle partitions once every consumer stage has
  /// finished its task phase (the final stage's result is always kept).
  bool release_stage_outputs = true;
  /// Intra-operator parallelism: rows per morsel for HashJoin/HashAggregate
  /// build, probe, and emit loops (chunks scheduled as pool tasks inside one
  /// stage task; partial states merge in morsel-index order, so results stay
  /// bit-identical at any thread count). 0 (default) keeps single loops.
  int64_t morsel_rows = 0;
  /// Radix-partitioned hash-join build: partition both sides by the key
  /// hash's top `radix_bits` bits into 2^bits cache-sized partitions and
  /// build/probe each as an independent task. 0 (default) keeps the single
  /// flat build table. Results are row-identical either way.
  int radix_bits = 0;
  /// Build a blocked bloom filter during join builds and consult it before
  /// each hash-table probe; false positives are re-checked by the table, so
  /// results never change. Off by default.
  bool enable_bloom_pushdown = false;
};

/// \brief Executes a StagePlan, measuring each task's wall time and each
/// stage's shuffled output size.
///
/// With `num_threads` == 1 (default) everything runs serially in index
/// order. With more threads the executor runs stage tasks, per-task hash
/// partitioning, and per-partition concatenation as tasks on a persistent
/// work-stealing ThreadPool, and (with `pipeline`) overlaps independent
/// stages by scheduling along the dependency DAG. Results are bit-identical
/// in every configuration: task outputs land in per-index slots and every
/// merge (partition collection, concatenation) walks fixed index order, so
/// even floating-point summation order matches serial execution.
///
/// The pool persists across Execute() calls for the executor's lifetime.
/// One executor must not be used from several threads at once.
class PlanExecutor {
 public:
  explicit PlanExecutor(int num_threads = 1);
  explicit PlanExecutor(const ExecutorOptions& options);
  ~PlanExecutor();

  PlanExecutor(const PlanExecutor&) = delete;
  PlanExecutor& operator=(const PlanExecutor&) = delete;

  /// Runs the plan; returns the result table. `stats` may be null.
  Table Execute(const StagePlan& plan, PlanRunStats* stats = nullptr);

  int num_threads() const { return options_.num_threads; }
  const ExecutorOptions& options() const { return options_; }

  /// Exports pool counters (tasks run, steals, queue depth, busy time) and
  /// executor totals under `prefix`, conventionally "exec.pool".
  void ExportMetrics(MetricsRegistry* metrics,
                     const std::string& prefix) const;

 private:
  /// Lazily creates the persistent pool (num_threads - 1 workers).
  ThreadPool* EnsurePool();

  ExecutorOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  int64_t plans_run_ = 0;
  int64_t stages_run_ = 0;
};

/// Validates stage ids/deps/partition contracts; aborts on violation.
/// Returns the plan for chaining.
const StagePlan& ValidatePlan(const StagePlan& plan);

}  // namespace cackle::exec

#endif  // CACKLE_EXEC_PLAN_H_
