#ifndef CACKLE_EXEC_PLAN_H_
#define CACKLE_EXEC_PLAN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exec/table.h"

namespace cackle::exec {

/// \brief Output of one executed stage: one table per shuffle partition.
struct StageOutput {
  std::vector<Table> partitions;
};

/// \brief Inputs handed to a task: for each dependency, the partitions this
/// task should read. Broadcast dependencies supply every task the same
/// single partition; partitioned dependencies supply partition
/// `task_index`.
struct TaskInput {
  std::vector<const Table*> tables;  // one per dependency, in deps order
};

/// \brief A stage of a physical query plan, Cackle-style: `num_tasks`
/// independent tasks that each consume their share of the upstream shuffle
/// and produce output rows. After all tasks finish, the stage's output is
/// hash-partitioned on `output_keys` into `output_partitions` partitions
/// for downstream stages (empty keys + 1 partition = gather/broadcast).
struct PlanStage {
  std::string label;
  std::vector<int> deps;
  /// For each dep: true = every task reads the dep's single gathered
  /// partition (broadcast); false = task t reads the dep's partition t
  /// (requires dep.output_partitions == num_tasks).
  std::vector<bool> broadcast;
  int num_tasks = 1;
  /// Runs task `task_index`; `input.tables[i]` corresponds to deps[i].
  std::function<Table(int task_index, const TaskInput& input)> run;
  std::vector<std::string> output_keys;
  int output_partitions = 1;
};

/// \brief A full query plan: stages in topological order; the last stage's
/// single gathered partition is the query result.
struct StagePlan {
  std::string name;
  std::vector<PlanStage> stages;
};

/// \brief Per-stage execution statistics captured by the executor — the raw
/// material for Cackle QueryProfiles.
struct StageStats {
  std::string label;
  int num_tasks = 0;
  std::vector<int64_t> task_micros;
  int64_t output_bytes = 0;  // bytes shuffled to downstream stages
  int64_t output_rows = 0;
};

struct PlanRunStats {
  std::vector<StageStats> stages;
  int64_t total_micros = 0;
};

/// \brief Executes a StagePlan stage by stage, measuring each task's wall
/// time and each stage's shuffled output size.
///
/// With `num_threads` == 1 (default) tasks run serially in index order;
/// with more threads, each stage's tasks run concurrently on a pool (tasks
/// of one stage are independent by construction — they read disjoint or
/// broadcast partitions). Results are identical either way: task outputs
/// are collected by task index before the shuffle step.
class PlanExecutor {
 public:
  explicit PlanExecutor(int num_threads = 1);

  /// Runs the plan; returns the result table. `stats` may be null.
  Table Execute(const StagePlan& plan, PlanRunStats* stats = nullptr);

  int num_threads() const { return num_threads_; }

 private:
  int num_threads_;
};

/// Validates stage ids/deps/partition contracts; aborts on violation.
/// Returns the plan for chaining.
const StagePlan& ValidatePlan(const StagePlan& plan);

}  // namespace cackle::exec

#endif  // CACKLE_EXEC_PLAN_H_
