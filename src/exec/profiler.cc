#include "exec/profiler.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/metric_names.h"
#include "exec/plan.h"

namespace cackle::exec {

std::vector<QueryProfile> ProfileQuery(int query_id, const Catalog& catalog,
                                       const ProfilerOptions& options) {
  PlanExecutor executor(options.exec_threads);
  std::vector<QueryProfile> profiles =
      ProfileQueryOn(query_id, catalog, options, &executor);
  if (options.metrics != nullptr) {
    executor.ExportMetrics(options.metrics, metric_names::kPrefixExecPool);
  }
  return profiles;
}

std::vector<QueryProfile> ProfileQueryOn(int query_id, const Catalog& catalog,
                                         const ProfilerOptions& options,
                                         PlanExecutor* executor) {
  const StagePlan plan =
      BuildTpchPlan(query_id, catalog, options.plan_config);
  PlanRunStats stats;
  executor->Execute(plan, &stats);
  CACKLE_CHECK_EQ(stats.stages.size(), plan.stages.size());

  std::vector<QueryProfile> profiles;
  for (int sf : options.target_scale_factors) {
    const double scale =
        static_cast<double>(sf) / options.measured_scale_factor;
    QueryProfile profile;
    profile.query_id = query_id;
    profile.scale_factor = sf;
    profile.name = plan.name + "_sf" + std::to_string(sf);
    // First pass: scaled task counts per stage (needed for consumer-task
    // GET accounting below).
    std::vector<int> scaled_tasks(plan.stages.size());
    for (size_t i = 0; i < plan.stages.size(); ++i) {
      // Task sizes are fixed (container-sized), so the task count grows
      // with the data volume; single-task coordination stages stay single.
      const int measured = plan.stages[i].num_tasks;
      if (measured <= 1) {
        scaled_tasks[i] = 1;
      } else {
        scaled_tasks[i] = static_cast<int>(std::clamp<double>(
            std::lround(static_cast<double>(measured) * std::sqrt(scale)),
            measured, 512.0));
      }
    }
    for (size_t i = 0; i < plan.stages.size(); ++i) {
      const PlanStage& stage = plan.stages[i];
      const StageStats& sstats = stats.stages[i];
      StageProfile sp;
      sp.stage_id = static_cast<int>(i);
      sp.dependencies = stage.deps;
      sp.num_tasks = scaled_tasks[i];
      // Median measured task time, calibrated and floored.
      std::vector<int64_t> micros = sstats.task_micros;
      std::sort(micros.begin(), micros.end());
      const int64_t median_us =
          micros.empty() ? 0 : micros[micros.size() / 2];
      sp.task_duration_ms = std::max<int64_t>(
          options.min_task_ms,
          static_cast<int64_t>(static_cast<double>(median_us) *
                               options.micros_to_task_ms / 1000.0 *
                               std::sqrt(scale)));
      // Shuffle volume scales linearly with data size.
      const bool is_final = (i + 1 == plan.stages.size());
      if (!is_final) {
        sp.shuffle_bytes_out = std::max<int64_t>(
            1024, static_cast<int64_t>(
                      static_cast<double>(sstats.output_bytes) * scale));
        int64_t consumer_tasks = 0;
        for (size_t j = 0; j < plan.stages.size(); ++j) {
          for (int dep : plan.stages[j].deps) {
            if (dep == static_cast<int>(i)) consumer_tasks += scaled_tasks[j];
          }
        }
        sp.object_store_puts = 2LL * sp.num_tasks;
        sp.object_store_gets =
            static_cast<int64_t>(sp.num_tasks) *
            std::max<int64_t>(1, consumer_tasks);
      }
      profile.stages.push_back(std::move(sp));
    }
    CACKLE_CHECK_OK(profile.Validate());
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

std::vector<QueryProfile> ProfileAllQueries(const Catalog& catalog,
                                            const ProfilerOptions& options) {
  // One executor for the whole sweep: the work-stealing pool spins up once
  // and every plan's stages reuse the same workers.
  PlanExecutor executor(options.exec_threads);
  std::vector<QueryProfile> all;
  for (int q : AllTpchQueryIds()) {
    std::vector<QueryProfile> profiles =
        ProfileQueryOn(q, catalog, options, &executor);
    for (auto& p : profiles) all.push_back(std::move(p));
  }
  if (options.metrics != nullptr) {
    executor.ExportMetrics(options.metrics, metric_names::kPrefixExecPool);
  }
  return all;
}

}  // namespace cackle::exec
