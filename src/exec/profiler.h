#ifndef CACKLE_EXEC_PROFILER_H_
#define CACKLE_EXEC_PROFILER_H_

#include <cstdint>
#include <vector>

#include "exec/datagen.h"
#include "exec/tpch_queries.h"
#include "workload/query_profile.h"

namespace cackle {
class MetricsRegistry;
}

namespace cackle::exec {

class PlanExecutor;

/// \brief Options for profile extraction.
struct ProfilerOptions {
  /// Scale factor of the catalog the plans execute on.
  double measured_scale_factor = 0.01;
  /// Executor threads for the measurement runs. 1 (the default) keeps
  /// per-task durations free of same-host contention, which is what the
  /// checked-in profile library is derived with; larger values run the 25
  /// plans on the shared work-stealing pool (faster wall clock, e.g. for
  /// interactive re-profiling).
  int exec_threads = 1;
  /// When set, pool/executor counters are exported here under "exec.pool"
  /// after profiling.
  MetricsRegistry* metrics = nullptr;
  /// Scale factors to emit profiles for (task counts and shuffle volumes
  /// are extrapolated; per-task durations are held constant because tasks
  /// are sized for fixed containers).
  std::vector<int> target_scale_factors = {10, 50, 100};
  /// Tasks per stage during measurement.
  PlanConfig plan_config;
  /// Calibration: measured single-core microseconds are translated to
  /// simulated task milliseconds such that a full leaf scan task lands in
  /// the few-second range the paper observes on Lambda at SF 100.
  double micros_to_task_ms = 1.0;
  /// Floor for emitted per-task durations.
  int64_t min_task_ms = 500;
};

/// \brief Runs every query plan on a real catalog, capturing the stage DAG,
/// per-task durations, shuffle output sizes and object-store request counts
/// (2 PUTs per producer task, producer x consumer GETs — Section 7.1.3's
/// accounting), then scales them to the target scale factors. This is the
/// reproduction of the paper's profile collection (Section 5.1): they run
/// each TPC-H query on AWS Lambda five times and keep the median run's
/// statistics; we run on the in-process executor instead.
///
/// The returned profiles are in the same format as
/// `ProfileLibrary::BuiltinTpch()` and can be serialized with
/// SerializeProfiles() to regenerate the library shipped with the repo.
std::vector<QueryProfile> ProfileAllQueries(const Catalog& catalog,
                                            const ProfilerOptions& options);

/// Profiles a single query (exposed for tests).
std::vector<QueryProfile> ProfileQuery(int query_id, const Catalog& catalog,
                                       const ProfilerOptions& options);

/// Profiles a single query on a caller-provided executor. ProfileAllQueries
/// uses this to reuse one persistent thread pool across all 25 plans.
std::vector<QueryProfile> ProfileQueryOn(int query_id, const Catalog& catalog,
                                         const ProfilerOptions& options,
                                         PlanExecutor* executor);

}  // namespace cackle::exec

#endif  // CACKLE_EXEC_PROFILER_H_
