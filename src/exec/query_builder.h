#ifndef CACKLE_EXEC_QUERY_BUILDER_H_
#define CACKLE_EXEC_QUERY_BUILDER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "exec/operators.h"
#include "exec/plan.h"

namespace cackle::exec {

/// \brief Helper for assembling StagePlans. Internal to the query builders.
class PlanBuilder {
 public:
  explicit PlanBuilder(std::string name) { plan_.name = std::move(name); }

  /// Generic stage; returns its id.
  int AddStage(PlanStage stage) {
    plan_.stages.push_back(std::move(stage));
    return static_cast<int>(plan_.stages.size()) - 1;
  }

  /// Parallel scan of a base table: each task reads a row slice, applies
  /// `filter` (nullable) and `projections`, and shuffles on `out_keys` into
  /// `out_partitions` partitions (empty keys + 1 partition = gather).
  int AddScan(std::string label, const Table* table, int tasks,
              ExprPtr filter, std::vector<NamedExpr> projections,
              std::vector<std::string> out_keys, int out_partitions) {
    PlanStage stage;
    stage.label = std::move(label);
    stage.num_tasks = tasks;
    stage.output_keys = std::move(out_keys);
    stage.output_partitions = out_partitions;
    stage.run = [table, tasks, filter = std::move(filter),
                 projections = std::move(projections)](
                    int t, const TaskInput&) -> Table {
      const int64_t n = table->num_rows();
      const int64_t begin = n * t / tasks;
      const int64_t end = n * (t + 1) / tasks;
      const Table slice = table->Slice(begin, end);
      return Project(slice, filter, projections);
    };
    return AddStage(std::move(stage));
  }

  /// Single-task stage transforming the gathered outputs of `deps`
  /// (each broadcast). Used for final sorts and small build sides.
  int AddSingleTask(std::string label, std::vector<int> deps,
                    std::function<Table(const TaskInput&)> fn,
                    std::vector<std::string> out_keys = {},
                    int out_partitions = 1) {
    PlanStage stage;
    stage.label = std::move(label);
    stage.deps = std::move(deps);
    stage.broadcast.assign(stage.deps.size(), true);
    stage.num_tasks = 1;
    stage.output_keys = std::move(out_keys);
    stage.output_partitions = out_partitions;
    stage.run = [fn = std::move(fn)](int, const TaskInput& input) {
      return fn(input);
    };
    return AddStage(std::move(stage));
  }

  /// Parallel stage over co-partitioned inputs: `deps[i]` is broadcast when
  /// `broadcast[i]`, else its partition t feeds task t.
  int AddPartitionedStage(
      std::string label, std::vector<int> deps, std::vector<bool> broadcast,
      int tasks, std::function<Table(const TaskInput&)> fn,
      std::vector<std::string> out_keys = {}, int out_partitions = 1) {
    PlanStage stage;
    stage.label = std::move(label);
    stage.deps = std::move(deps);
    stage.broadcast = std::move(broadcast);
    stage.num_tasks = tasks;
    stage.output_keys = std::move(out_keys);
    stage.output_partitions = out_partitions;
    stage.run = [fn = std::move(fn)](int, const TaskInput& input) {
      return fn(input);
    };
    return AddStage(std::move(stage));
  }

  StagePlan Build() { return std::move(plan_); }

 private:
  StagePlan plan_;
};

}  // namespace cackle::exec

#endif  // CACKLE_EXEC_QUERY_BUILDER_H_
