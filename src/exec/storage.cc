#include "exec/storage.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "common/logging.h"
#include "exec/operators.h"

namespace cackle::exec {
namespace {

constexpr uint32_t kMagic = 0x434b4c46;  // "CKLF"
constexpr uint32_t kVersion = 1;

enum class Encoding : uint8_t {
  kInt64Plain = 0,
  kInt64Rle = 1,
  kInt64Delta = 2,
  kFloat64Plain = 3,
  kStringPlain = 4,
  kStringDict = 5,
};

// --- primitive writers/readers -------------------------------------------

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutI64(std::string* out, int64_t v) { PutU64(out, static_cast<uint64_t>(v)); }

void PutF64(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, 8);
  PutU64(out, bits);
}

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void PutString(std::string* out, const std::string& s) {
  PutVarint(out, s.size());
  out->append(s);
}

/// Bounds-checked sequential reader over the file bytes.
class ByteReader {
 public:
  explicit ByteReader(const std::string& bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }
  size_t position() const { return pos_; }

  uint8_t GetU8() {
    if (!Require(1)) return 0;
    return static_cast<uint8_t>(bytes_[pos_++]);
  }
  uint32_t GetU32() {
    if (!Require(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_++])) << (8 * i);
    }
    return v;
  }
  uint64_t GetU64() {
    if (!Require(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_++])) << (8 * i);
    }
    return v;
  }
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  double GetF64() {
    const uint64_t bits = GetU64();
    double v = 0;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  uint64_t GetVarint() {
    uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (!Require(1) || shift > 63) {
        ok_ = false;
        return 0;
      }
      const uint8_t byte = static_cast<uint8_t>(bytes_[pos_++]);
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    return v;
  }
  std::string GetString() {
    const uint64_t len = GetVarint();
    if (!Require(len)) return "";
    std::string s = bytes_.substr(pos_, len);
    pos_ += len;
    return s;
  }
  void Skip(uint64_t n) {
    if (Require(n)) pos_ += n;
  }

 private:
  bool Require(uint64_t n) {
    if (!ok_ || pos_ + n > bytes_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::string& bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// --- column chunk encoding -----------------------------------------------

std::string EncodeInt64Plain(const int64_t* v, int64_t n) {
  std::string out;
  out.reserve(static_cast<size_t>(n) * 8);
  for (int64_t i = 0; i < n; ++i) PutI64(&out, v[i]);
  return out;
}

std::string EncodeInt64Rle(const int64_t* v, int64_t n) {
  std::string out;
  int64_t i = 0;
  while (i < n) {
    int64_t run = 1;
    while (i + run < n && v[i + run] == v[i]) ++run;
    PutVarint(&out, static_cast<uint64_t>(run));
    PutVarint(&out, ZigZag(v[i]));
    i += run;
  }
  return out;
}

std::string EncodeInt64Delta(const int64_t* v, int64_t n) {
  std::string out;
  int64_t prev = 0;
  for (int64_t i = 0; i < n; ++i) {
    PutVarint(&out, ZigZag(v[i] - prev));
    prev = v[i];
  }
  return out;
}

void EncodeInt64Chunk(const std::vector<int64_t>& values, int64_t begin,
                      int64_t end, std::string* out) {
  const int64_t n = end - begin;
  const int64_t* v = values.data() + begin;
  int64_t mn = v[0];
  int64_t mx = v[0];
  for (int64_t i = 1; i < n; ++i) {
    mn = std::min(mn, v[i]);
    mx = std::max(mx, v[i]);
  }
  std::string plain = EncodeInt64Plain(v, n);
  std::string rle = EncodeInt64Rle(v, n);
  std::string delta = EncodeInt64Delta(v, n);
  Encoding enc = Encoding::kInt64Plain;
  const std::string* chosen = &plain;
  if (rle.size() < chosen->size()) {
    enc = Encoding::kInt64Rle;
    chosen = &rle;
  }
  if (delta.size() < chosen->size()) {
    enc = Encoding::kInt64Delta;
    chosen = &delta;
  }
  PutU8(out, static_cast<uint8_t>(enc));
  PutI64(out, mn);
  PutI64(out, mx);
  PutU64(out, chosen->size());
  out->append(*chosen);
}

void EncodeFloat64Chunk(const std::vector<double>& values, int64_t begin,
                        int64_t end, std::string* out) {
  const int64_t n = end - begin;
  double mn = values[static_cast<size_t>(begin)];
  double mx = mn;
  for (int64_t i = begin + 1; i < end; ++i) {
    mn = std::min(mn, values[static_cast<size_t>(i)]);
    mx = std::max(mx, values[static_cast<size_t>(i)]);
  }
  PutU8(out, static_cast<uint8_t>(Encoding::kFloat64Plain));
  PutF64(out, mn);
  PutF64(out, mx);
  PutU64(out, static_cast<uint64_t>(n) * 8);
  for (int64_t i = begin; i < end; ++i) {
    PutF64(out, values[static_cast<size_t>(i)]);
  }
}

void EncodeStringChunk(const std::vector<std::string>& values, int64_t begin,
                       int64_t end, std::string* out) {
  const int64_t n = end - begin;
  const std::string* mn = &values[static_cast<size_t>(begin)];
  const std::string* mx = mn;
  std::unordered_map<std::string, uint32_t> dict;
  for (int64_t i = begin; i < end; ++i) {
    const std::string& s = values[static_cast<size_t>(i)];
    if (s < *mn) mn = &s;
    if (s > *mx) mx = &s;
    dict.try_emplace(s, 0);
  }
  const bool use_dict = dict.size() * 2 <= static_cast<size_t>(n);
  std::string payload;
  if (use_dict) {
    // Assign dictionary codes in first-occurrence order for determinism.
    std::vector<const std::string*> entries;
    std::unordered_map<std::string, uint32_t> codes;
    for (int64_t i = begin; i < end; ++i) {
      const std::string& s = values[static_cast<size_t>(i)];
      auto [it, inserted] =
          codes.try_emplace(s, static_cast<uint32_t>(entries.size()));
      if (inserted) entries.push_back(&it->first);
    }
    PutVarint(&payload, entries.size());
    for (const std::string* e : entries) PutString(&payload, *e);
    for (int64_t i = begin; i < end; ++i) {
      PutVarint(&payload, codes.at(values[static_cast<size_t>(i)]));
    }
    PutU8(out, static_cast<uint8_t>(Encoding::kStringDict));
  } else {
    for (int64_t i = begin; i < end; ++i) {
      PutString(&payload, values[static_cast<size_t>(i)]);
    }
    PutU8(out, static_cast<uint8_t>(Encoding::kStringPlain));
  }
  PutString(out, *mn);
  PutString(out, *mx);
  PutU64(out, payload.size());
  out->append(payload);
}

/// Fast path for columns carrying a dictionary sidecar: per-chunk distinct
/// sets and first-occurrence codes come from the global codes (no string
/// hashing). Produces bytes identical to the string-based path above.
void EncodeStringChunkFromCodes(const Column& col, int64_t begin, int64_t end,
                                std::string* out) {
  const int64_t n = end - begin;
  const StringDictionary& dict = col.dict();
  const std::vector<int32_t>& codes = col.codes();
  // Global code -> chunk-local code, in first-occurrence order.
  std::vector<int32_t> local(static_cast<size_t>(dict.size()), -1);
  std::vector<int32_t> entries;  // local -> global
  for (int64_t i = begin; i < end; ++i) {
    const int32_t g = codes[static_cast<size_t>(i)];
    if (local[static_cast<size_t>(g)] < 0) {
      local[static_cast<size_t>(g)] = static_cast<int32_t>(entries.size());
      entries.push_back(g);
    }
  }
  const std::string* mn = &dict.value(entries[0]);
  const std::string* mx = mn;
  for (int32_t g : entries) {
    const std::string& s = dict.value(g);
    if (s < *mn) mn = &s;
    if (s > *mx) mx = &s;
  }
  const bool use_dict = entries.size() * 2 <= static_cast<size_t>(n);
  std::string payload;
  if (use_dict) {
    PutVarint(&payload, entries.size());
    for (int32_t g : entries) PutString(&payload, dict.value(g));
    for (int64_t i = begin; i < end; ++i) {
      PutVarint(&payload, static_cast<uint64_t>(local[static_cast<size_t>(
                              codes[static_cast<size_t>(i)])]));
    }
    PutU8(out, static_cast<uint8_t>(Encoding::kStringDict));
  } else {
    for (int64_t i = begin; i < end; ++i) {
      PutString(&payload, dict.value(codes[static_cast<size_t>(i)]));
    }
    PutU8(out, static_cast<uint8_t>(Encoding::kStringPlain));
  }
  PutString(out, *mn);
  PutString(out, *mx);
  PutU64(out, payload.size());
  out->append(payload);
}

// --- chunk decoding --------------------------------------------------------

struct ChunkStats {
  double num_min = 0;
  double num_max = 0;
  std::string str_min;
  std::string str_max;
};

/// Reads a chunk header; leaves the reader positioned at the payload.
/// Returns encoding + payload size via out-params.
bool ReadChunkHeader(ByteReader* reader, DataType type, Encoding* enc,
                     ChunkStats* stats, uint64_t* payload_size) {
  *enc = static_cast<Encoding>(reader->GetU8());
  switch (type) {
    case DataType::kInt64: {
      stats->num_min = static_cast<double>(reader->GetI64());
      stats->num_max = static_cast<double>(reader->GetI64());
      break;
    }
    case DataType::kFloat64:
      stats->num_min = reader->GetF64();
      stats->num_max = reader->GetF64();
      break;
    case DataType::kString:
      stats->str_min = reader->GetString();
      stats->str_max = reader->GetString();
      break;
  }
  *payload_size = reader->GetU64();
  return reader->ok();
}

Column DecodeChunk(ByteReader* reader, DataType type, Encoding enc,
                   int64_t rows) {
  Column col(type);
  switch (enc) {
    case Encoding::kInt64Plain:
      for (int64_t i = 0; i < rows; ++i) col.AppendInt(reader->GetI64());
      break;
    case Encoding::kInt64Rle: {
      int64_t produced = 0;
      while (produced < rows && reader->ok()) {
        const int64_t run = static_cast<int64_t>(reader->GetVarint());
        const int64_t value = UnZigZag(reader->GetVarint());
        for (int64_t i = 0; i < run && produced < rows; ++i, ++produced) {
          col.AppendInt(value);
        }
      }
      break;
    }
    case Encoding::kInt64Delta: {
      int64_t prev = 0;
      for (int64_t i = 0; i < rows; ++i) {
        prev += UnZigZag(reader->GetVarint());
        col.AppendInt(prev);
      }
      break;
    }
    case Encoding::kFloat64Plain:
      for (int64_t i = 0; i < rows; ++i) col.AppendDouble(reader->GetF64());
      break;
    case Encoding::kStringPlain:
      for (int64_t i = 0; i < rows; ++i) col.AppendString(reader->GetString());
      break;
    case Encoding::kStringDict: {
      const uint64_t dict_size = reader->GetVarint();
      std::vector<std::string> dict;
      dict.reserve(dict_size);
      for (uint64_t i = 0; i < dict_size; ++i) dict.push_back(reader->GetString());
      std::vector<int32_t> codes;
      codes.reserve(static_cast<size_t>(rows));
      bool codes_valid = true;
      for (int64_t i = 0; i < rows; ++i) {
        const uint64_t code = reader->GetVarint();
        if (code < dict.size()) {
          col.AppendString(dict[code]);
          codes.push_back(static_cast<int32_t>(code));
        } else {
          col.AppendString("");
          codes_valid = false;  // corrupt chunk: no sidecar
        }
      }
      // Keep the on-disk dictionary as the column's sidecar so downstream
      // joins/aggregates get fixed-width codes for free.
      if (codes_valid && !dict.empty()) {
        col.AttachDictionary(
            std::make_shared<StringDictionary>(std::move(dict)),
            std::move(codes));
      }
      break;
    }
  }
  return col;
}

bool RangeCanMatch(const ColumnRange& range, DataType type,
                   const ChunkStats& stats) {
  if (type == DataType::kString) {
    if (range.equals.has_value()) {
      return *range.equals >= stats.str_min && *range.equals <= stats.str_max;
    }
    return true;
  }
  if (range.lo.has_value() && stats.num_max < *range.lo) return false;
  if (range.hi.has_value() && stats.num_min > *range.hi) return false;
  return true;
}

/// Builds the exact row filter for the pushed-down ranges.
ExprPtr RangesToExpr(const std::vector<ColumnRange>& ranges,
                     const std::vector<ColumnDef>& schema) {
  ExprPtr filter;
  auto conjoin = [&filter](ExprPtr e) {
    filter = filter == nullptr ? std::move(e) : And(filter, std::move(e));
  };
  for (const ColumnRange& range : ranges) {
    DataType type = DataType::kInt64;
    for (const ColumnDef& def : schema) {
      if (def.name == range.column) type = def.type;
    }
    if (type == DataType::kString) {
      if (range.equals.has_value()) {
        conjoin(Eq(Col(range.column), Lit(*range.equals)));
      }
      continue;
    }
    if (range.lo.has_value()) {
      conjoin(type == DataType::kInt64
                  ? Ge(Col(range.column),
                       Lit(static_cast<int64_t>(std::ceil(*range.lo))))
                  : Ge(Col(range.column), Lit(*range.lo)));
    }
    if (range.hi.has_value()) {
      conjoin(type == DataType::kInt64
                  ? Le(Col(range.column),
                       Lit(static_cast<int64_t>(std::floor(*range.hi))))
                  : Le(Col(range.column), Lit(*range.hi)));
    }
  }
  return filter;
}

}  // namespace

std::string WriteTableFile(const Table& table,
                           const StorageWriteOptions& options) {
  CACKLE_CHECK_GT(table.num_columns(), 0);
  CACKLE_CHECK_GT(options.rows_per_stripe, 0);
  std::string out;
  PutU32(&out, kMagic);
  PutU32(&out, kVersion);
  PutU32(&out, static_cast<uint32_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    PutU8(&out, static_cast<uint8_t>(table.column_def(c).type));
    PutString(&out, table.column_def(c).name);
  }
  PutU64(&out, static_cast<uint64_t>(table.num_rows()));
  PutU64(&out, static_cast<uint64_t>(options.rows_per_stripe));
  const int64_t stripes =
      (table.num_rows() + options.rows_per_stripe - 1) /
      options.rows_per_stripe;
  PutU32(&out, static_cast<uint32_t>(stripes));
  for (int64_t s = 0; s < stripes; ++s) {
    const int64_t begin = s * options.rows_per_stripe;
    const int64_t end =
        std::min(table.num_rows(), begin + options.rows_per_stripe);
    PutU32(&out, static_cast<uint32_t>(end - begin));
    for (int c = 0; c < table.num_columns(); ++c) {
      const Column& col = table.column(c);
      switch (col.type()) {
        case DataType::kInt64:
          EncodeInt64Chunk(col.ints(), begin, end, &out);
          break;
        case DataType::kFloat64:
          EncodeFloat64Chunk(col.doubles(), begin, end, &out);
          break;
        case DataType::kString:
          if (col.has_dict()) {
            EncodeStringChunkFromCodes(col, begin, end, &out);
          } else {
            EncodeStringChunk(col.strings(), begin, end, &out);
          }
          break;
      }
    }
  }
  return out;
}

namespace {

struct FileHeader {
  std::vector<ColumnDef> schema;
  int64_t num_rows = 0;
  int64_t rows_per_stripe = 0;
  int64_t num_stripes = 0;
};

Status ReadHeader(ByteReader* reader, FileHeader* header) {
  if (reader->GetU32() != kMagic) {
    return Status::InvalidArgument("not a cackle table file (bad magic)");
  }
  if (reader->GetU32() != kVersion) {
    return Status::InvalidArgument("unsupported table file version");
  }
  const uint32_t num_columns = reader->GetU32();
  if (num_columns == 0 || num_columns > 10'000) {
    return Status::InvalidArgument("implausible column count");
  }
  for (uint32_t c = 0; c < num_columns; ++c) {
    const uint8_t type = reader->GetU8();
    if (type > static_cast<uint8_t>(DataType::kString)) {
      return Status::InvalidArgument("unknown column type");
    }
    header->schema.push_back(
        ColumnDef{reader->GetString(), static_cast<DataType>(type)});
  }
  header->num_rows = static_cast<int64_t>(reader->GetU64());
  header->rows_per_stripe = static_cast<int64_t>(reader->GetU64());
  header->num_stripes = reader->GetU32();
  if (!reader->ok()) return Status::InvalidArgument("truncated header");
  return Status::OK();
}

}  // namespace

StatusOr<TableFileInfo> InspectTableFile(const std::string& bytes) {
  ByteReader reader(bytes);
  FileHeader header;
  CACKLE_RETURN_IF_ERROR(ReadHeader(&reader, &header));
  TableFileInfo info;
  info.num_rows = header.num_rows;
  info.num_stripes = header.num_stripes;
  info.schema = header.schema;
  info.file_bytes = static_cast<int64_t>(bytes.size());
  return info;
}

StatusOr<Table> ReadTableFile(const std::string& bytes) {
  auto result = ScanTableFile(bytes, {}, {});
  if (!result.ok()) return result.status();
  return std::move(result.value().table);
}

StatusOr<ScanFileResult> ScanTableFile(const std::string& bytes,
                                       const std::vector<std::string>& columns,
                                       const std::vector<ColumnRange>& ranges,
                                       const ExprPtr& residual) {
  ByteReader reader(bytes);
  FileHeader header;
  CACKLE_RETURN_IF_ERROR(ReadHeader(&reader, &header));

  // Columns to decode: projection union range columns (empty = all).
  std::vector<bool> decode(header.schema.size(), columns.empty());
  auto mark = [&](const std::string& name) -> Status {
    for (size_t c = 0; c < header.schema.size(); ++c) {
      if (header.schema[c].name == name) {
        decode[c] = true;
        return Status::OK();
      }
    }
    return Status::NotFound("no column named " + name);
  };
  for (const std::string& name : columns) CACKLE_RETURN_IF_ERROR(mark(name));
  for (const ColumnRange& range : ranges) CACKLE_RETURN_IF_ERROR(mark(range.column));

  ScanFileResult result;
  result.stripes_total = header.num_stripes;
  std::vector<ColumnDef> decoded_schema;
  for (size_t c = 0; c < header.schema.size(); ++c) {
    if (decode[c]) decoded_schema.push_back(header.schema[c]);
  }
  std::vector<Table> stripe_tables;

  for (int64_t s = 0; s < header.num_stripes; ++s) {
    const int64_t stripe_rows = reader.GetU32();
    if (!reader.ok()) return Status::InvalidArgument("truncated stripe");
    // First pass over the stripe: headers + skip decision.
    Table stripe(decoded_schema);
    bool skip = false;
    std::vector<Column> cols;
    for (size_t c = 0; c < header.schema.size(); ++c) {
      Encoding enc;
      ChunkStats stats;
      uint64_t payload = 0;
      if (!ReadChunkHeader(&reader, header.schema[c].type, &enc, &stats,
                           &payload)) {
        return Status::InvalidArgument("truncated chunk header");
      }
      // Statistics-based skipping: if any pushed-down range cannot match
      // this chunk, the whole stripe is skipped.
      if (!skip) {
        for (const ColumnRange& range : ranges) {
          if (range.column == header.schema[c].name &&
              !RangeCanMatch(range, header.schema[c].type, stats)) {
            skip = true;
            break;
          }
        }
      }
      if (skip || !decode[c]) {
        reader.Skip(payload);
        cols.emplace_back(header.schema[c].type);
      } else {
        const size_t before = reader.position();
        cols.push_back(
            DecodeChunk(&reader, header.schema[c].type, enc, stripe_rows));
        result.bytes_decoded += static_cast<int64_t>(reader.position() - before);
        if (!reader.ok()) return Status::InvalidArgument("truncated chunk");
      }
    }
    if (skip) {
      ++result.stripes_skipped;
      continue;
    }
    Table decoded;
    for (size_t c = 0, out = 0; c < header.schema.size(); ++c) {
      if (decode[c]) {
        decoded.AddColumn(header.schema[c], std::move(cols[c]));
        ++out;
      }
    }
    // Exact filtering of surviving stripes.
    const ExprPtr range_filter = RangesToExpr(ranges, header.schema);
    if (range_filter != nullptr) decoded = Filter(decoded, range_filter);
    if (residual != nullptr) decoded = Filter(decoded, residual);
    stripe_tables.push_back(std::move(decoded));
  }

  if (stripe_tables.empty()) {
    result.table = Table(decoded_schema);
  } else {
    result.table = Concat(stripe_tables);
  }
  // Project away range-only columns.
  if (!columns.empty()) {
    result.table = SelectColumns(result.table, columns);
  }
  return result;
}

}  // namespace cackle::exec

// --- catalog helpers --------------------------------------------------------

namespace cackle::exec {

StoredCatalog EncodeCatalog(const Catalog& catalog,
                            const StorageWriteOptions& options) {
  StoredCatalog stored;
  stored.region = WriteTableFile(catalog.region, options);
  stored.nation = WriteTableFile(catalog.nation, options);
  stored.supplier = WriteTableFile(catalog.supplier, options);
  stored.part = WriteTableFile(catalog.part, options);
  stored.partsupp = WriteTableFile(catalog.partsupp, options);
  stored.customer = WriteTableFile(catalog.customer, options);
  stored.orders = WriteTableFile(catalog.orders, options);
  stored.lineitem = WriteTableFile(catalog.lineitem, options);
  return stored;
}

StatusOr<Catalog> DecodeCatalog(const StoredCatalog& stored) {
  Catalog catalog;
  struct Entry {
    const std::string* bytes;
    Table* table;
  };
  const Entry entries[] = {
      {&stored.region, &catalog.region},
      {&stored.nation, &catalog.nation},
      {&stored.supplier, &catalog.supplier},
      {&stored.part, &catalog.part},
      {&stored.partsupp, &catalog.partsupp},
      {&stored.customer, &catalog.customer},
      {&stored.orders, &catalog.orders},
      {&stored.lineitem, &catalog.lineitem},
  };
  for (const Entry& entry : entries) {
    auto table = ReadTableFile(*entry.bytes);
    if (!table.ok()) return table.status();
    *entry.table = std::move(table).value();
  }
  return catalog;
}

}  // namespace cackle::exec
