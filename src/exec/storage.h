#ifndef CACKLE_EXEC_STORAGE_H_
#define CACKLE_EXEC_STORAGE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/datagen.h"
#include "exec/expr.h"
#include "exec/table.h"

namespace cackle::exec {

/// \brief A columnar table file format in the spirit of ORC (Section 7.1.1:
/// base tables are stored in ORC in cloud storage and scanned in chunks).
///
/// Layout: a header (magic, schema), then stripes of `rows_per_stripe`
/// rows. Each stripe stores every column in an encoded chunk preceded by
/// min/max statistics, enabling two scan-time optimizations:
///   - *projection pushdown*: only requested columns are decoded;
///   - *predicate pushdown*: stripes whose [min, max] range cannot satisfy
///     a conjunctive range predicate are skipped without decoding.
///
/// Encodings (chosen per chunk by size): int64 columns use either plain
/// little-endian, delta-varint, or run-length; float64 plain; string
/// columns use dictionary encoding when the dictionary is small, plain
/// length-prefixed otherwise.
///
/// The format is self-contained bytes (store them in an ObjectStore, a
/// file, anywhere). It is not wire-compatible with real ORC — it
/// reproduces the *behaviour* the paper depends on: chunked columnar scans
/// from cloud storage with statistics-based skipping.

/// Options for writing.
struct StorageWriteOptions {
  int64_t rows_per_stripe = 4096;
};

/// Serializes a table. Aborts on unwritable input (no columns).
std::string WriteTableFile(const Table& table,
                           const StorageWriteOptions& options = {});

/// Reads back the full table.
[[nodiscard]] StatusOr<Table> ReadTableFile(const std::string& bytes);

/// \brief A simple conjunctive range predicate on one column, usable for
/// stripe skipping. For int64/float64 columns: value in [lo, hi]; for
/// strings: equality only.
struct ColumnRange {
  std::string column;
  // Numeric bounds (inclusive); use the numeric fields for int/double
  // columns and `equals` for strings.
  std::optional<double> lo;
  std::optional<double> hi;
  std::optional<std::string> equals;
};

/// Result of a pushed-down scan.
struct ScanFileResult {
  Table table;
  int64_t stripes_total = 0;
  int64_t stripes_skipped = 0;
  int64_t bytes_decoded = 0;
};

/// \brief Scans a table file with projection + predicate pushdown.
///
/// `columns` selects the output columns (empty = all). `ranges` are ANDed;
/// stripes provably outside any range are skipped via statistics. Rows in
/// surviving stripes are still filtered exactly, and `residual` (nullable)
/// is applied afterwards, so results match a full-table Filter.
[[nodiscard]] StatusOr<ScanFileResult> ScanTableFile(const std::string& bytes,
                                       const std::vector<std::string>& columns,
                                       const std::vector<ColumnRange>& ranges,
                                       const ExprPtr& residual = nullptr);

/// Per-file metadata (for tests and tooling).
struct TableFileInfo {
  int64_t num_rows = 0;
  int64_t num_stripes = 0;
  std::vector<ColumnDef> schema;
  int64_t file_bytes = 0;
};
[[nodiscard]] StatusOr<TableFileInfo> InspectTableFile(const std::string& bytes);

/// \brief A TPC-H catalog serialized to table files — the at-rest form the
/// paper keeps in cloud storage.
struct StoredCatalog {
  std::string region;
  std::string nation;
  std::string supplier;
  std::string part;
  std::string partsupp;
  std::string customer;
  std::string orders;
  std::string lineitem;

  int64_t TotalBytes() const {
    return static_cast<int64_t>(region.size() + nation.size() +
                                supplier.size() + part.size() +
                                partsupp.size() + customer.size() +
                                orders.size() + lineitem.size());
  }
};

/// Serializes / deserializes all eight base tables.
StoredCatalog EncodeCatalog(const Catalog& catalog,
                            const StorageWriteOptions& options = {});
[[nodiscard]] StatusOr<Catalog> DecodeCatalog(const StoredCatalog& stored);

}  // namespace cackle::exec

#endif  // CACKLE_EXEC_STORAGE_H_
