#include "exec/table.h"

#include <sstream>

#include "common/table_printer.h"

namespace cackle::exec {

int64_t Column::size() const {
  switch (type_) {
    case DataType::kInt64:
      return static_cast<int64_t>(ints_.size());
    case DataType::kFloat64:
      return static_cast<int64_t>(doubles_.size());
    case DataType::kString:
      return static_cast<int64_t>(strings_.size());
  }
  return 0;
}

void Column::Reserve(int64_t n) {
  switch (type_) {
    case DataType::kInt64:
      ints_.reserve(static_cast<size_t>(n));
      break;
    case DataType::kFloat64:
      doubles_.reserve(static_cast<size_t>(n));
      break;
    case DataType::kString:
      strings_.reserve(static_cast<size_t>(n));
      break;
  }
}

void Column::AppendFrom(const Column& other, int64_t row) {
  CACKLE_CHECK(type_ == other.type_);
  const size_t r = static_cast<size_t>(row);
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(other.ints_[r]);
      break;
    case DataType::kFloat64:
      doubles_.push_back(other.doubles_[r]);
      break;
    case DataType::kString:
      strings_.push_back(other.strings_[r]);
      break;
  }
}

int64_t Column::EstimateBytes() const {
  switch (type_) {
    case DataType::kInt64:
      return static_cast<int64_t>(ints_.size()) * 8;
    case DataType::kFloat64:
      return static_cast<int64_t>(doubles_.size()) * 8;
    case DataType::kString: {
      int64_t bytes = 0;
      for (const std::string& s : strings_) {
        bytes += 4 + static_cast<int64_t>(s.size());
      }
      return bytes;
    }
  }
  return 0;
}

std::string Column::ValueToString(int64_t row) const {
  const size_t r = static_cast<size_t>(row);
  switch (type_) {
    case DataType::kInt64:
      return std::to_string(ints_[r]);
    case DataType::kFloat64:
      return FormatDouble(doubles_[r], 4);
    case DataType::kString:
      return strings_[r];
  }
  return "";
}

Table::Table(std::vector<ColumnDef> defs) : defs_(std::move(defs)) {
  columns_.reserve(defs_.size());
  for (const ColumnDef& def : defs_) columns_.emplace_back(def.type);
}

int Table::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int Table::ColumnIndex(std::string_view name) const {
  const int i = FindColumn(name);
  CACKLE_CHECK_GE(i, 0) << "no column named " << name;
  return i;
}

void Table::AddColumn(ColumnDef def, Column column) {
  CACKLE_CHECK(def.type == column.type());
  if (!defs_.empty()) {
    CACKLE_CHECK_EQ(column.size(), num_rows_);
  } else {
    num_rows_ = column.size();
  }
  defs_.push_back(std::move(def));
  columns_.push_back(std::move(column));
}

void Table::FinishBulkAppend() {
  CACKLE_CHECK(!columns_.empty());
  num_rows_ = columns_[0].size();
  for (const Column& c : columns_) CACKLE_CHECK_EQ(c.size(), num_rows_);
}

void Table::AppendRowFrom(const Table& other, int64_t row) {
  CACKLE_CHECK_EQ(columns_.size(), other.columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendFrom(other.columns_[c], row);
  }
  ++num_rows_;
}

Table Table::Slice(int64_t begin, int64_t end) const {
  CACKLE_CHECK_GE(begin, 0);
  CACKLE_CHECK_LE(begin, end);
  CACKLE_CHECK_LE(end, num_rows_);
  Table out(defs_);
  for (int64_t r = begin; r < end; ++r) out.AppendRowFrom(*this, r);
  return out;
}

Table Table::TakeRows(const std::vector<int64_t>& rows) const {
  Table out(defs_);
  for (int64_t r : rows) out.AppendRowFrom(*this, r);
  return out;
}

int64_t Table::EstimateBytes() const {
  int64_t bytes = 0;
  for (const Column& c : columns_) bytes += c.EstimateBytes();
  return bytes;
}

std::string Table::ToString(int64_t max_rows) const {
  std::vector<std::string> headers;
  headers.reserve(defs_.size());
  for (const ColumnDef& def : defs_) headers.push_back(def.name);
  TablePrinter printer(headers);
  const int64_t n = std::min(num_rows_, max_rows);
  for (int64_t r = 0; r < n; ++r) {
    printer.BeginRow();
    for (const Column& c : columns_) printer.AddCell(c.ValueToString(r));
  }
  std::ostringstream os;
  printer.PrintText(os);
  if (n < num_rows_) os << "... (" << num_rows_ - n << " more rows)\n";
  return os.str();
}

Table Concat(const std::vector<Table>& tables) {
  if (tables.empty()) return Table();
  Table out(tables[0].schema());
  for (const Table& t : tables) {
    CACKLE_CHECK_EQ(t.num_columns(), out.num_columns());
    for (int64_t r = 0; r < t.num_rows(); ++r) out.AppendRowFrom(t, r);
  }
  return out;
}

}  // namespace cackle::exec
