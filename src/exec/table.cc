#include "exec/table.h"

#include <sstream>

#include "common/table_printer.h"
#include "exec/exec_metrics.h"

namespace cackle::exec {

// --- StringDictionary -------------------------------------------------------

StringDictionary::StringDictionary(std::vector<std::string> values)
    : values_(std::move(values)) {
  index_.reserve(values_.size());
  for (size_t i = 0; i < values_.size(); ++i) {
    index_.try_emplace(values_[i], static_cast<int32_t>(i));
  }
}

int32_t StringDictionary::CodeOf(const std::string& s) const {
  const auto it = index_.find(s);
  return it == index_.end() ? -1 : it->second;
}

// --- Column -----------------------------------------------------------------

int64_t Column::size() const {
  switch (type_) {
    case DataType::kInt64:
      return static_cast<int64_t>(ints_.size());
    case DataType::kFloat64:
      return static_cast<int64_t>(doubles_.size());
    case DataType::kString:
      return static_cast<int64_t>(strings_.size());
  }
  return 0;
}

void Column::Reserve(int64_t n) {
  switch (type_) {
    case DataType::kInt64:
      ints_.reserve(static_cast<size_t>(n));
      break;
    case DataType::kFloat64:
      doubles_.reserve(static_cast<size_t>(n));
      break;
    case DataType::kString:
      strings_.reserve(static_cast<size_t>(n));
      if (dict_ != nullptr) codes_.reserve(static_cast<size_t>(n));
      break;
  }
}

bool Column::DictEncode(int64_t max_dict_size) {
  CACKLE_CHECK(type_ == DataType::kString);
  if (dict_ != nullptr) return true;
  const int64_t rows = static_cast<int64_t>(strings_.size());
  // Profitability rule: a dictionary pays when values repeat. The +64 slack
  // lets tiny tables (nation, region) encode even at distinct == rows, so
  // their keys stay packable after joins.
  std::unordered_map<std::string, int32_t> index;
  std::vector<int32_t> codes;
  codes.reserve(strings_.size());
  std::vector<std::string> values;
  for (const std::string& s : strings_) {
    auto [it, inserted] =
        index.try_emplace(s, static_cast<int32_t>(values.size()));
    if (inserted) {
      values.push_back(s);
      const int64_t distinct = static_cast<int64_t>(values.size());
      if (distinct > max_dict_size || distinct * 2 > rows + 64) {
        ExecMetrics().dict_encodes_abandoned.fetch_add(
            1, std::memory_order_relaxed);
        return false;
      }
    }
    codes.push_back(it->second);
  }
  dict_ = std::make_shared<StringDictionary>(std::move(values));
  codes_ = std::move(codes);
  ExecMetrics().dict_columns_encoded.fetch_add(1, std::memory_order_relaxed);
  ExecMetrics().dict_total_entries.fetch_add(dict_->size(),
                                             std::memory_order_relaxed);
  return true;
}

void Column::AttachDictionary(DictPtr dict, std::vector<int32_t> codes) {
  CACKLE_CHECK(type_ == DataType::kString);
  CACKLE_CHECK(dict != nullptr);
  CACKLE_CHECK_EQ(codes.size(), strings_.size());
  if (!codes.empty()) {
    // Spot-check the invariant on the first and last rows.
    CACKLE_CHECK(dict->value(codes.front()) == strings_.front());
    CACKLE_CHECK(dict->value(codes.back()) == strings_.back());
  }
  dict_ = std::move(dict);
  codes_ = std::move(codes);
}

void Column::AppendFrom(const Column& other, int64_t row) {
  CACKLE_CHECK(type_ == other.type_);
  const size_t r = static_cast<size_t>(row);
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(other.ints_[r]);
      break;
    case DataType::kFloat64:
      doubles_.push_back(other.doubles_[r]);
      break;
    case DataType::kString: {
      if (strings_.empty() && dict_ == nullptr && other.dict_ != nullptr) {
        dict_ = other.dict_;  // adopt on first append into an empty column
      }
      if (dict_ != nullptr) {
        if (dict_ == other.dict_) {
          codes_.push_back(other.codes_[r]);
        } else {
          DropDictionary();
        }
      }
      strings_.push_back(other.strings_[r]);
      break;
    }
  }
}

void Column::AppendRange(const Column& src, int64_t begin, int64_t end) {
  CACKLE_CHECK(type_ == src.type_);
  const size_t b = static_cast<size_t>(begin);
  const size_t e = static_cast<size_t>(end);
  switch (type_) {
    case DataType::kInt64:
      ints_.insert(ints_.end(), src.ints_.begin() + b, src.ints_.begin() + e);
      break;
    case DataType::kFloat64:
      doubles_.insert(doubles_.end(), src.doubles_.begin() + b,
                      src.doubles_.begin() + e);
      break;
    case DataType::kString: {
      if (strings_.empty() && dict_ == nullptr && src.dict_ != nullptr) {
        dict_ = src.dict_;
      }
      if (dict_ != nullptr) {
        if (dict_ == src.dict_) {
          codes_.insert(codes_.end(), src.codes_.begin() + b,
                        src.codes_.begin() + e);
        } else {
          DropDictionary();
        }
      }
      strings_.insert(strings_.end(), src.strings_.begin() + b,
                      src.strings_.begin() + e);
      break;
    }
  }
}

void Column::AppendGather(const Column& src, const std::vector<int64_t>& rows) {
  CACKLE_CHECK(type_ == src.type_);
  ExecMetrics().gather_rows.fetch_add(static_cast<int64_t>(rows.size()),
                                      std::memory_order_relaxed);
  switch (type_) {
    case DataType::kInt64: {
      const size_t base = ints_.size();
      ints_.resize(base + rows.size());
      int64_t* out = ints_.data() + base;
      const int64_t* in = src.ints_.data();
      for (size_t i = 0; i < rows.size(); ++i) {
        out[i] = in[static_cast<size_t>(rows[i])];
      }
      break;
    }
    case DataType::kFloat64: {
      const size_t base = doubles_.size();
      doubles_.resize(base + rows.size());
      double* out = doubles_.data() + base;
      const double* in = src.doubles_.data();
      for (size_t i = 0; i < rows.size(); ++i) {
        out[i] = in[static_cast<size_t>(rows[i])];
      }
      break;
    }
    case DataType::kString: {
      if (strings_.empty() && dict_ == nullptr && src.dict_ != nullptr) {
        dict_ = src.dict_;
      }
      if (dict_ != nullptr) {
        if (dict_ == src.dict_) {
          const size_t base = codes_.size();
          codes_.resize(base + rows.size());
          int32_t* out = codes_.data() + base;
          const int32_t* in = src.codes_.data();
          for (size_t i = 0; i < rows.size(); ++i) {
            out[i] = in[static_cast<size_t>(rows[i])];
          }
        } else {
          DropDictionary();
        }
      }
      strings_.reserve(strings_.size() + rows.size());
      for (const int64_t r : rows) {
        strings_.push_back(src.strings_[static_cast<size_t>(r)]);
      }
      break;
    }
  }
}

void Column::AppendGatherPadded(const Column& src,
                                const std::vector<int64_t>& rows) {
  CACKLE_CHECK(type_ == src.type_);
  ExecMetrics().gather_rows.fetch_add(static_cast<int64_t>(rows.size()),
                                      std::memory_order_relaxed);
  switch (type_) {
    case DataType::kInt64: {
      const size_t base = ints_.size();
      ints_.resize(base + rows.size());
      int64_t* out = ints_.data() + base;
      const int64_t* in = src.ints_.data();
      for (size_t i = 0; i < rows.size(); ++i) {
        out[i] = rows[i] >= 0 ? in[static_cast<size_t>(rows[i])] : 0;
      }
      break;
    }
    case DataType::kFloat64: {
      const size_t base = doubles_.size();
      doubles_.resize(base + rows.size());
      double* out = doubles_.data() + base;
      const double* in = src.doubles_.data();
      for (size_t i = 0; i < rows.size(); ++i) {
        out[i] = rows[i] >= 0 ? in[static_cast<size_t>(rows[i])] : 0.0;
      }
      break;
    }
    case DataType::kString: {
      DropDictionary();  // pad values may be absent from any dictionary
      strings_.reserve(strings_.size() + rows.size());
      for (const int64_t r : rows) {
        if (r >= 0) {
          strings_.push_back(src.strings_[static_cast<size_t>(r)]);
        } else {
          strings_.emplace_back();
        }
      }
      break;
    }
  }
}

int64_t Column::EstimateBytes() const {
  switch (type_) {
    case DataType::kInt64:
      return static_cast<int64_t>(ints_.size()) * 8;
    case DataType::kFloat64:
      return static_cast<int64_t>(doubles_.size()) * 8;
    case DataType::kString: {
      int64_t bytes = 0;
      for (const std::string& s : strings_) {
        bytes += 4 + static_cast<int64_t>(s.size());
      }
      if (dict_ != nullptr) {
        // The sidecar is real resident memory: 4 bytes/row of codes plus
        // the dictionary's own strings. Counting it keeps the executor's
        // peak-residency accounting honest now that operators report their
        // scratch (radix partitions, bloom filters) the same way.
        bytes += static_cast<int64_t>(codes_.size()) * 4;
        for (const std::string& s : dict_->values()) {
          bytes += 4 + static_cast<int64_t>(s.size());
        }
      }
      return bytes;
    }
  }
  return 0;
}

std::string Column::ValueToString(int64_t row) const {
  const size_t r = static_cast<size_t>(row);
  switch (type_) {
    case DataType::kInt64:
      return std::to_string(ints_[r]);
    case DataType::kFloat64:
      return FormatDouble(doubles_[r], 4);
    case DataType::kString:
      return strings_[r];
  }
  return "";
}

// --- Table ------------------------------------------------------------------

Table::Table(std::vector<ColumnDef> defs) : defs_(std::move(defs)) {
  columns_.reserve(defs_.size());
  for (const ColumnDef& def : defs_) columns_.emplace_back(def.type);
}

int Table::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int Table::ColumnIndex(std::string_view name) const {
  const int i = FindColumn(name);
  CACKLE_CHECK_GE(i, 0) << "no column named " << name;
  return i;
}

void Table::AddColumn(ColumnDef def, Column column) {
  CACKLE_CHECK(def.type == column.type());
  if (!defs_.empty()) {
    CACKLE_CHECK_EQ(column.size(), num_rows_);
  } else {
    num_rows_ = column.size();
  }
  defs_.push_back(std::move(def));
  columns_.push_back(std::move(column));
}

void Table::FinishBulkAppend() {
  CACKLE_CHECK(!columns_.empty());
  num_rows_ = columns_[0].size();
  for (const Column& c : columns_) CACKLE_CHECK_EQ(c.size(), num_rows_);
}

void Table::AppendRowFrom(const Table& other, int64_t row) {
  CACKLE_CHECK_EQ(columns_.size(), other.columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendFrom(other.columns_[c], row);
  }
  ++num_rows_;
}

Table Table::Slice(int64_t begin, int64_t end) const {
  CACKLE_CHECK_GE(begin, 0);
  CACKLE_CHECK_LE(begin, end);
  CACKLE_CHECK_LE(end, num_rows_);
  Table out(defs_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    out.columns_[c].AppendRange(columns_[c], begin, end);
  }
  out.num_rows_ = end - begin;
  return out;
}

Table Table::GatherRows(const std::vector<int64_t>& rows) const {
  Table out(defs_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    out.columns_[c].AppendGather(columns_[c], rows);
  }
  out.num_rows_ = static_cast<int64_t>(rows.size());
  return out;
}

Table Table::TakeRows(const std::vector<int64_t>& rows) const {
  return GatherRows(rows);
}

void Table::DictEncodeStringColumns(int64_t max_dict_size) {
  for (Column& c : columns_) {
    if (c.type() == DataType::kString) c.DictEncode(max_dict_size);
  }
}

int64_t Table::EstimateBytes() const {
  int64_t bytes = 0;
  for (const Column& c : columns_) bytes += c.EstimateBytes();
  return bytes;
}

std::string Table::ToString(int64_t max_rows) const {
  std::vector<std::string> headers;
  headers.reserve(defs_.size());
  for (const ColumnDef& def : defs_) headers.push_back(def.name);
  TablePrinter printer(headers);
  const int64_t n = std::min(num_rows_, max_rows);
  for (int64_t r = 0; r < n; ++r) {
    printer.BeginRow();
    for (const Column& c : columns_) printer.AddCell(c.ValueToString(r));
  }
  std::ostringstream os;
  printer.PrintText(os);
  if (n < num_rows_) os << "... (" << num_rows_ - n << " more rows)\n";
  return os.str();
}

// --- Concat -----------------------------------------------------------------

namespace {

/// Concatenates string column `c` of `tables` into `out`, unioning
/// dictionaries when every non-empty chunk has one. The union keeps
/// first-occurrence order across inputs, so equal strings from different
/// chunks share one code.
void ConcatStringColumn(const std::vector<Table>& tables, int c, int64_t rows,
                        Column* out) {
  bool all_dict = true;
  const DictPtr* shared = nullptr;
  bool same_ptr = true;
  for (const Table& t : tables) {
    if (t.num_rows() == 0) continue;
    const Column& col = t.column(c);
    if (!col.has_dict()) {
      all_dict = false;
      break;
    }
    if (shared == nullptr) {
      shared = &col.dict_ptr();
    } else if (*shared != col.dict_ptr()) {
      same_ptr = false;
    }
  }
  if (!all_dict || shared == nullptr) {
    // Plain concatenation (also the empty-input case).
    std::vector<std::string>& outs = out->strings();
    outs.reserve(static_cast<size_t>(rows));
    for (const Table& t : tables) {
      const auto& src = t.column(c).strings();
      outs.insert(outs.end(), src.begin(), src.end());
    }
    return;
  }

  std::vector<int32_t> codes;
  codes.reserve(static_cast<size_t>(rows));
  DictPtr dict;
  if (same_ptr) {
    dict = *shared;
    for (const Table& t : tables) {
      if (t.num_rows() == 0) continue;
      const auto& src = t.column(c).codes();
      codes.insert(codes.end(), src.begin(), src.end());
    }
  } else {
    // Union the input dictionaries in first-occurrence order.
    std::vector<std::string> values;
    std::unordered_map<std::string, int32_t> index;
    for (const Table& t : tables) {
      if (t.num_rows() == 0) continue;
      const Column& col = t.column(c);
      std::vector<int32_t> remap;
      remap.reserve(static_cast<size_t>(col.dict().size()));
      for (const std::string& v : col.dict().values()) {
        auto [it, inserted] =
            index.try_emplace(v, static_cast<int32_t>(values.size()));
        if (inserted) values.push_back(v);
        remap.push_back(it->second);
      }
      for (const int32_t code : col.codes()) {
        codes.push_back(remap[static_cast<size_t>(code)]);
      }
    }
    dict = std::make_shared<StringDictionary>(std::move(values));
  }
  {
    std::vector<std::string>& outs = out->strings();
    outs.reserve(static_cast<size_t>(rows));
    for (const Table& t : tables) {
      const auto& src = t.column(c).strings();
      outs.insert(outs.end(), src.begin(), src.end());
    }
  }
  out->AttachDictionary(std::move(dict), std::move(codes));
}

}  // namespace

Table Concat(const std::vector<Table>& tables) {
  if (tables.empty()) return Table();
  int64_t rows = 0;
  for (const Table& t : tables) {
    CACKLE_CHECK_EQ(t.num_columns(), tables[0].num_columns());
    rows += t.num_rows();
  }
  Table out(tables[0].schema());
  if (out.num_columns() == 0) {
    for (const Table& t : tables) {
      for (int64_t r = 0; r < t.num_rows(); ++r) out.AppendRowFrom(t, r);
    }
    return out;
  }
  for (int c = 0; c < out.num_columns(); ++c) {
    Column& dst = out.column(c);
    if (dst.type() == DataType::kString) {
      ConcatStringColumn(tables, c, rows, &dst);
      continue;
    }
    dst.Reserve(rows);
    for (const Table& t : tables) {
      dst.AppendRange(t.column(c), 0, t.num_rows());
    }
  }
  if (out.num_columns() > 0) out.FinishBulkAppend();
  return out;
}

}  // namespace cackle::exec
