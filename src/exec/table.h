#ifndef CACKLE_EXEC_TABLE_H_
#define CACKLE_EXEC_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "exec/types.h"

namespace cackle::exec {

/// \brief A typed column of values. Only the vector matching `type` is
/// populated.
class Column {
 public:
  Column() : type_(DataType::kInt64) {}
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }

  int64_t size() const;
  void Reserve(int64_t n);

  // Typed access. The CHECKed accessors catch type confusion early.
  std::vector<int64_t>& ints() {
    CACKLE_CHECK(type_ == DataType::kInt64);
    return ints_;
  }
  const std::vector<int64_t>& ints() const {
    CACKLE_CHECK(type_ == DataType::kInt64);
    return ints_;
  }
  std::vector<double>& doubles() {
    CACKLE_CHECK(type_ == DataType::kFloat64);
    return doubles_;
  }
  const std::vector<double>& doubles() const {
    CACKLE_CHECK(type_ == DataType::kFloat64);
    return doubles_;
  }
  std::vector<std::string>& strings() {
    CACKLE_CHECK(type_ == DataType::kString);
    return strings_;
  }
  const std::vector<std::string>& strings() const {
    CACKLE_CHECK(type_ == DataType::kString);
    return strings_;
  }

  void AppendInt(int64_t v) { ints().push_back(v); }
  void AppendDouble(double v) { doubles().push_back(v); }
  void AppendString(std::string v) { strings().push_back(std::move(v)); }

  /// Appends row `row` of `other` (same type) to this column.
  void AppendFrom(const Column& other, int64_t row);

  /// Approximate in-memory/serialized size, used for shuffle accounting.
  int64_t EstimateBytes() const;

  /// Renders row `row` for result printing / test comparison.
  std::string ValueToString(int64_t row) const;

 private:
  DataType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

/// \brief Column name + type.
struct ColumnDef {
  std::string name;
  DataType type;
};

/// \brief An in-memory columnar table (also used for intermediate batches).
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<ColumnDef> defs);

  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  const std::vector<ColumnDef>& schema() const { return defs_; }
  const ColumnDef& column_def(int i) const {
    return defs_[static_cast<size_t>(i)];
  }

  /// Index of the column named `name`; aborts when absent.
  int ColumnIndex(std::string_view name) const;
  /// -1 when absent.
  int FindColumn(std::string_view name) const;

  Column& column(int i) { return columns_[static_cast<size_t>(i)]; }
  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  const Column& column(std::string_view name) const {
    return columns_[static_cast<size_t>(ColumnIndex(name))];
  }

  /// Adds a column; its size must equal num_rows (or define it when this is
  /// the first column).
  void AddColumn(ColumnDef def, Column column);

  /// Recomputes num_rows from column sizes after bulk appends; all columns
  /// must agree.
  void FinishBulkAppend();

  /// Appends row `row` of `other` (same schema) to this table.
  void AppendRowFrom(const Table& other, int64_t row);

  /// Rows [begin, end).
  Table Slice(int64_t begin, int64_t end) const;

  /// Keeps the rows whose index is listed (in order).
  Table TakeRows(const std::vector<int64_t>& rows) const;

  int64_t EstimateBytes() const;

  /// Renders the table (header + rows) for debugging and result checks;
  /// doubles rounded to `decimals`.
  std::string ToString(int64_t max_rows = 50) const;

 private:
  std::vector<ColumnDef> defs_;
  std::vector<Column> columns_;
  int64_t num_rows_ = 0;
};

/// Concatenates tables with identical schemas (empty input -> empty table).
Table Concat(const std::vector<Table>& tables);

}  // namespace cackle::exec

#endif  // CACKLE_EXEC_TABLE_H_
