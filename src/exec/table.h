#ifndef CACKLE_EXEC_TABLE_H_
#define CACKLE_EXEC_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "exec/types.h"

namespace cackle::exec {

/// \brief An immutable, shared dictionary of distinct strings.
///
/// String columns may carry a dictionary sidecar: per-row `int32_t` codes
/// into a shared dictionary, alongside the materialized strings. Codes give
/// the executor fixed-width join/group keys (see operators.cc) without
/// changing what `strings()` returns. Code order is first-occurrence order,
/// so encoding is deterministic for a given value sequence.
class StringDictionary {
 public:
  explicit StringDictionary(std::vector<std::string> values);

  int64_t size() const { return static_cast<int64_t>(values_.size()); }
  const std::string& value(int32_t code) const {
    return values_[static_cast<size_t>(code)];
  }
  const std::vector<std::string>& values() const { return values_; }
  /// Code of `s`, or -1 when absent.
  int32_t CodeOf(const std::string& s) const;

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, int32_t> index_;
};

using DictPtr = std::shared_ptr<const StringDictionary>;

/// \brief A typed column of values. Only the vector matching `type` is
/// populated.
///
/// String columns may additionally carry a dictionary sidecar (`dict()` +
/// `codes()`); the invariant is `strings()[i] == dict().value(codes()[i])`
/// for every row. Mutable access to `strings()` (including AppendString)
/// drops the sidecar to keep the invariant trivially true; the bulk append
/// paths (AppendFrom / AppendRange / AppendGather) propagate it.
class Column {
 public:
  Column() : type_(DataType::kInt64) {}
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }

  int64_t size() const;
  void Reserve(int64_t n);

  // Typed access. The CHECKed accessors catch type confusion early.
  std::vector<int64_t>& ints() {
    CACKLE_CHECK(type_ == DataType::kInt64);
    return ints_;
  }
  const std::vector<int64_t>& ints() const {
    CACKLE_CHECK(type_ == DataType::kInt64);
    return ints_;
  }
  std::vector<double>& doubles() {
    CACKLE_CHECK(type_ == DataType::kFloat64);
    return doubles_;
  }
  const std::vector<double>& doubles() const {
    CACKLE_CHECK(type_ == DataType::kFloat64);
    return doubles_;
  }
  std::vector<std::string>& strings() {
    CACKLE_CHECK(type_ == DataType::kString);
    DropDictionary();  // mutable access may desync codes
    return strings_;
  }
  const std::vector<std::string>& strings() const {
    CACKLE_CHECK(type_ == DataType::kString);
    return strings_;
  }

  void AppendInt(int64_t v) { ints().push_back(v); }
  void AppendDouble(double v) { doubles().push_back(v); }
  void AppendString(std::string v) { strings().push_back(std::move(v)); }

  // --- dictionary sidecar ---------------------------------------------------

  bool has_dict() const { return dict_ != nullptr; }
  const StringDictionary& dict() const {
    CACKLE_CHECK(dict_ != nullptr);
    return *dict_;
  }
  const DictPtr& dict_ptr() const { return dict_; }
  const std::vector<int32_t>& codes() const {
    CACKLE_CHECK(dict_ != nullptr);
    return codes_;
  }

  /// Builds a dictionary over the current strings when the distinct count is
  /// small enough (`distinct <= max_dict_size` and `distinct*2 <= rows+64`).
  /// Returns true when a dictionary was attached.
  bool DictEncode(int64_t max_dict_size = 65535);

  /// Attaches an externally built dictionary (e.g. from the storage reader).
  /// `codes` must decode to the current strings (checked on size; spot-
  /// checked on content).
  void AttachDictionary(DictPtr dict, std::vector<int32_t> codes);

  void DropDictionary() {
    dict_.reset();
    codes_.clear();
  }

  // --- bulk append kernels --------------------------------------------------

  /// Appends row `row` of `other` (same type) to this column.
  void AppendFrom(const Column& other, int64_t row);

  /// Appends rows [begin, end) of `src` in one pass.
  void AppendRange(const Column& src, int64_t begin, int64_t end);

  /// Appends `src[rows[i]]` for each i, column-major in one pass. Adopts
  /// `src`'s dictionary when this column is empty.
  void AppendGather(const Column& src, const std::vector<int64_t>& rows);

  /// Like AppendGather but a row index of -1 appends the type's default
  /// (0 / 0.0 / ""). Used for left-outer null padding; never adopts a
  /// dictionary.
  void AppendGatherPadded(const Column& src, const std::vector<int64_t>& rows);

  /// Approximate in-memory size, used for shuffle and residency accounting.
  /// Includes the dictionary sidecar (codes + dictionary strings) when one
  /// is attached — the sidecar is resident memory like any other buffer.
  int64_t EstimateBytes() const;

  /// Renders row `row` for result printing / test comparison.
  std::string ValueToString(int64_t row) const;

 private:
  DataType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  // Dictionary sidecar (kString only): codes_[i] indexes dict_.
  DictPtr dict_;
  std::vector<int32_t> codes_;
};

/// \brief Column name + type.
struct ColumnDef {
  std::string name;
  DataType type;
};

/// \brief An in-memory columnar table (also used for intermediate batches).
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<ColumnDef> defs);

  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  const std::vector<ColumnDef>& schema() const { return defs_; }
  const ColumnDef& column_def(int i) const {
    return defs_[static_cast<size_t>(i)];
  }

  /// Index of the column named `name`; aborts when absent.
  int ColumnIndex(std::string_view name) const;
  /// -1 when absent.
  int FindColumn(std::string_view name) const;

  Column& column(int i) { return columns_[static_cast<size_t>(i)]; }
  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  const Column& column(std::string_view name) const {
    return columns_[static_cast<size_t>(ColumnIndex(name))];
  }

  /// Adds a column; its size must equal num_rows (or define it when this is
  /// the first column).
  void AddColumn(ColumnDef def, Column column);

  /// Recomputes num_rows from column sizes after bulk appends; all columns
  /// must agree.
  void FinishBulkAppend();

  /// Appends row `row` of `other` (same schema) to this table.
  void AppendRowFrom(const Table& other, int64_t row);

  /// Rows [begin, end).
  Table Slice(int64_t begin, int64_t end) const;

  /// New table with rows `rows[0]`, `rows[1]`, ... copied column-major in
  /// one pass per column (the executor's materialization kernel).
  Table GatherRows(const std::vector<int64_t>& rows) const;

  /// Keeps the rows whose index is listed (in order). Alias of GatherRows.
  Table TakeRows(const std::vector<int64_t>& rows) const;

  /// Attempts to dictionary-encode every string column (see
  /// Column::DictEncode); used at datagen/load time.
  void DictEncodeStringColumns(int64_t max_dict_size = 65535);

  int64_t EstimateBytes() const;

  /// Renders the table (header + rows) for debugging and result checks;
  /// doubles rounded to `decimals`.
  std::string ToString(int64_t max_rows = 50) const;

 private:
  std::vector<ColumnDef> defs_;
  std::vector<Column> columns_;
  int64_t num_rows_ = 0;
};

/// Concatenates tables with identical schemas (empty input -> empty table).
/// String columns keep their dictionary when every input chunk carries one
/// (identical dictionaries are shared; differing ones are unioned in
/// first-occurrence order, re-coding rows as needed).
Table Concat(const std::vector<Table>& tables);

}  // namespace cackle::exec

#endif  // CACKLE_EXEC_TABLE_H_
