#include "exec/tpch_logical.h"

#include "common/logging.h"
#include "exec/types.h"

namespace cackle::exec {
namespace {

NamedExpr C(const char* name) { return NamedExpr{Col(name), name}; }

ExprPtr Revenue() {
  return Mul(Col("l_extendedprice"), Sub(Lit(1.0), Col("l_discount")));
}

LogicalNodePtr Q1() {
  const int64_t cutoff = DateFromCivil(1998, 12, 1) - 90;
  LogicalNodePtr plan =
      LFilter(LScan("lineitem"), Le(Col("l_shipdate"), Lit(cutoff)));
  plan = LProject(
      std::move(plan),
      {C("l_returnflag"), C("l_linestatus"), C("l_quantity"),
       C("l_extendedprice"), C("l_discount"),
       NamedExpr{Revenue(), "disc_price"},
       NamedExpr{Mul(Revenue(), Add(Lit(1.0), Col("l_tax"))), "charge"}});
  plan = LAggregate(
      std::move(plan), {"l_returnflag", "l_linestatus"},
      {{AggOp::kSum, Col("l_quantity"), "sum_qty"},
       {AggOp::kSum, Col("l_extendedprice"), "sum_base_price"},
       {AggOp::kSum, Col("disc_price"), "sum_disc_price"},
       {AggOp::kSum, Col("charge"), "sum_charge"},
       {AggOp::kAvg, Col("l_quantity"), "avg_qty"},
       {AggOp::kAvg, Col("l_extendedprice"), "avg_price"},
       {AggOp::kAvg, Col("l_discount"), "avg_disc"},
       {AggOp::kCount, nullptr, "count_order"}});
  return LSort(std::move(plan),
               {{"l_returnflag", true}, {"l_linestatus", true}});
}

LogicalNodePtr Q5() {
  const int64_t lo = DateFromCivil(1994, 1, 1);
  const int64_t hi = AddYears(lo, 1);
  // supplier x nation x region(ASIA), then the fact-side joins with the
  // extra c_nationkey = s_nationkey equi-condition as a second join key.
  LogicalNodePtr supp =
      LJoin(LJoin(LScan("supplier"), LScan("nation"), {"s_nationkey"},
                  {"n_nationkey"}),
            LFilter(LScan("region"), Eq(Col("r_name"), Lit("ASIA"))),
            {"n_regionkey"}, {"r_regionkey"}, JoinType::kLeftSemi);
  LogicalNodePtr fact = LJoin(
      LJoin(LFilter(LFilter(LScan("orders"),
                            Ge(Col("o_orderdate"), Lit(lo))),
                    Lt(Col("o_orderdate"), Lit(hi))),
            LScan("customer"), {"o_custkey"}, {"c_custkey"}),
      LScan("lineitem"), {"o_orderkey"}, {"l_orderkey"});
  LogicalNodePtr joined =
      LJoin(std::move(fact), std::move(supp),
            {"l_suppkey", "c_nationkey"}, {"s_suppkey", "s_nationkey"});
  LogicalNodePtr shaped =
      LProject(std::move(joined),
               {C("n_name"), NamedExpr{Revenue(), "revenue"}});
  LogicalNodePtr agg = LAggregate(std::move(shaped), {"n_name"},
                                  {{AggOp::kSum, Col("revenue"), "revenue"}});
  return LSort(std::move(agg), {{"revenue", false}});
}

LogicalNodePtr Q6() {
  const int64_t lo = DateFromCivil(1994, 1, 1);
  const int64_t hi = AddYears(lo, 1);
  LogicalNodePtr plan = LFilter(
      LScan("lineitem"),
      AllOf({Ge(Col("l_shipdate"), Lit(lo)), Lt(Col("l_shipdate"), Lit(hi)),
             Ge(Col("l_discount"), Lit(0.05)),
             Le(Col("l_discount"), Lit(0.07)),
             Lt(Col("l_quantity"), Lit(24.0))}));
  plan = LProject(std::move(plan),
                  {NamedExpr{Mul(Col("l_extendedprice"), Col("l_discount")),
                             "amount"}});
  return LAggregate(std::move(plan), {},
                    {{AggOp::kSum, Col("amount"), "revenue"}});
}

LogicalNodePtr Q10() {
  const int64_t lo = DateFromCivil(1993, 10, 1);
  const int64_t hi = AddMonths(lo, 3);
  LogicalNodePtr plan = LJoin(
      LJoin(LJoin(LFilter(LFilter(LScan("orders"),
                                  Ge(Col("o_orderdate"), Lit(lo))),
                          Lt(Col("o_orderdate"), Lit(hi))),
                  LFilter(LScan("lineitem"),
                          Eq(Col("l_returnflag"), Lit("R"))),
                  {"o_orderkey"}, {"l_orderkey"}),
            LScan("customer"), {"o_custkey"}, {"c_custkey"}),
      LScan("nation"), {"c_nationkey"}, {"n_nationkey"});
  LogicalNodePtr shaped = LProject(
      std::move(plan),
      {C("c_custkey"), C("c_name"), C("c_acctbal"), C("n_name"),
       C("c_address"), C("c_phone"), C("c_comment"),
       NamedExpr{Revenue(), "revenue"}});
  LogicalNodePtr agg = LAggregate(
      std::move(shaped),
      {"c_custkey", "c_name", "c_acctbal", "c_phone", "n_name", "c_address",
       "c_comment"},
      {{AggOp::kSum, Col("revenue"), "revenue"}});
  // Match the physical plan's column order for comparison.
  LogicalNodePtr reordered = LProject(
      std::move(agg),
      {C("c_custkey"), C("c_name"), C("revenue"), C("c_acctbal"),
       C("n_name"), C("c_address"), C("c_phone"), C("c_comment")});
  return LSort(std::move(reordered),
               {{"revenue", false}, {"c_custkey", true}}, 20);
}

LogicalNodePtr Q12() {
  const int64_t lo = DateFromCivil(1994, 1, 1);
  const int64_t hi = AddYears(lo, 1);
  const ExprPtr high = Or(Eq(Col("o_orderpriority"), Lit("1-URGENT")),
                          Eq(Col("o_orderpriority"), Lit("2-HIGH")));
  LogicalNodePtr line = LFilter(
      LScan("lineitem"),
      AllOf({InString(Col("l_shipmode"), {"MAIL", "SHIP"}),
             Lt(Col("l_commitdate"), Col("l_receiptdate")),
             Lt(Col("l_shipdate"), Col("l_commitdate")),
             Ge(Col("l_receiptdate"), Lit(lo)),
             Lt(Col("l_receiptdate"), Lit(hi))}));
  LogicalNodePtr joined = LJoin(std::move(line), LScan("orders"),
                                {"l_orderkey"}, {"o_orderkey"});
  LogicalNodePtr shaped = LProject(
      std::move(joined),
      {C("l_shipmode"),
       NamedExpr{If(high, Lit(int64_t{1}), Lit(int64_t{0})), "high_line"},
       NamedExpr{If(high, Lit(int64_t{0}), Lit(int64_t{1})), "low_line"}});
  LogicalNodePtr agg = LAggregate(
      std::move(shaped), {"l_shipmode"},
      {{AggOp::kSum, Col("high_line"), "high_line_count"},
       {AggOp::kSum, Col("low_line"), "low_line_count"}});
  return LSort(std::move(agg), {{"l_shipmode", true}});
}

LogicalNodePtr Q14() {
  const int64_t lo = DateFromCivil(1995, 9, 1);
  const int64_t hi = AddMonths(lo, 1);
  LogicalNodePtr line =
      LFilter(LFilter(LScan("lineitem"), Ge(Col("l_shipdate"), Lit(lo))),
              Lt(Col("l_shipdate"), Lit(hi)));
  LogicalNodePtr joined = LJoin(std::move(line), LScan("part"),
                                {"l_partkey"}, {"p_partkey"});
  LogicalNodePtr shaped = LProject(
      std::move(joined),
      {NamedExpr{If(StrPrefix(Col("p_type"), "PROMO"), Revenue(), Lit(0.0)),
                 "promo_revenue"},
       NamedExpr{Revenue(), "revenue"}});
  LogicalNodePtr agg = LAggregate(
      std::move(shaped), {},
      {{AggOp::kSum, Col("promo_revenue"), "promo"},
       {AggOp::kSum, Col("revenue"), "total"}});
  return LProject(std::move(agg),
                  {NamedExpr{Mul(Lit(100.0), Div(Col("promo"), Col("total"))),
                             "promo_revenue"}});
}

LogicalNodePtr Q19() {
  LogicalNodePtr line = LFilter(
      LScan("lineitem"),
      And(InString(Col("l_shipmode"), {"AIR", "REG AIR"}),
          Eq(Col("l_shipinstruct"), Lit("DELIVER IN PERSON"))));
  LogicalNodePtr joined = LJoin(std::move(line), LScan("part"),
                                {"l_partkey"}, {"p_partkey"});
  const ExprPtr b1 = AllOf(
      {Eq(Col("p_brand"), Lit("Brand#12")),
       InString(Col("p_container"), {"SM CASE", "SM BOX", "SM PACK",
                                     "SM PKG"}),
       Between(Col("l_quantity"), Lit(1.0), Lit(11.0)),
       Between(Col("p_size"), Lit(int64_t{1}), Lit(int64_t{5}))});
  const ExprPtr b2 = AllOf(
      {Eq(Col("p_brand"), Lit("Brand#23")),
       InString(Col("p_container"), {"MED BAG", "MED BOX", "MED PKG",
                                     "MED PACK"}),
       Between(Col("l_quantity"), Lit(10.0), Lit(20.0)),
       Between(Col("p_size"), Lit(int64_t{1}), Lit(int64_t{10}))});
  const ExprPtr b3 = AllOf(
      {Eq(Col("p_brand"), Lit("Brand#34")),
       InString(Col("p_container"), {"LG CASE", "LG BOX", "LG PACK",
                                     "LG PKG"}),
       Between(Col("l_quantity"), Lit(20.0), Lit(30.0)),
       Between(Col("p_size"), Lit(int64_t{1}), Lit(int64_t{15}))});
  LogicalNodePtr filtered =
      LFilter(std::move(joined), Or(Or(b1, b2), b3));
  LogicalNodePtr shaped = LProject(std::move(filtered),
                                   {NamedExpr{Revenue(), "revenue"}});
  return LAggregate(std::move(shaped), {},
                    {{AggOp::kSum, Col("revenue"), "revenue"}});
}

}  // namespace

std::vector<int> LogicalTpchQueryIds() { return {1, 5, 6, 10, 12, 14, 19}; }

LogicalNodePtr LogicalTpch(int query_id) {
  switch (query_id) {
    case 1: return Q1();
    case 5: return Q5();
    case 6: return Q6();
    case 10: return Q10();
    case 12: return Q12();
    case 14: return Q14();
    case 19: return Q19();
    default:
      CACKLE_CHECK(false) << "no logical formulation for query " << query_id;
      __builtin_unreachable();
  }
}

}  // namespace cackle::exec
