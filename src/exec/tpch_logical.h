#ifndef CACKLE_EXEC_TPCH_LOGICAL_H_
#define CACKLE_EXEC_TPCH_LOGICAL_H_

#include <vector>

#include "exec/logical.h"

namespace cackle::exec {

/// \brief Logical-plan formulations of a subset of TPC-H.
///
/// The hand-built plans in tpch_queries_*.cc are the physical ground truth
/// (the form the paper's engine receives). These logical formulations
/// exercise the planner front-end — write the query declaratively, let the
/// optimizer push filters/prune/broadcast, lower, execute — and are tested
/// to produce identical results to the physical plans. Covered shapes:
/// scan-aggregate (Q1, Q6), broadcast-chain joins (Q5, Q10), semi join
/// (Q3's customer filter via the physical plan uses semi; here Q5/Q10 use
/// plain inner joins), disjunctive predicates (Q19), conditional
/// aggregation (Q12, Q14).
LogicalNodePtr LogicalTpch(int query_id);

/// Query ids with a logical formulation.
std::vector<int> LogicalTpchQueryIds();

}  // namespace cackle::exec

#endif  // CACKLE_EXEC_TPCH_LOGICAL_H_
