#include "exec/tpch_queries.h"

#include "common/logging.h"
#include "exec/tpch_queries_internal.h"

namespace cackle::exec {

std::vector<int> AllTpchQueryIds() {
  std::vector<int> ids;
  for (int q = 1; q <= 25; ++q) ids.push_back(q);
  return ids;
}

StagePlan BuildTpchPlan(int query_id, const Catalog& catalog,
                        const PlanConfig& config) {
  using namespace internal;  // NOLINT: query builders
  switch (query_id) {
    case 1: return BuildQ1(catalog, config);
    case 2: return BuildQ2(catalog, config);
    case 3: return BuildQ3(catalog, config);
    case 4: return BuildQ4(catalog, config);
    case 5: return BuildQ5(catalog, config);
    case 6: return BuildQ6(catalog, config);
    case 7: return BuildQ7(catalog, config);
    case 8: return BuildQ8(catalog, config);
    case 9: return BuildQ9(catalog, config);
    case 10: return BuildQ10(catalog, config);
    case 11: return BuildQ11(catalog, config);
    case 12: return BuildQ12(catalog, config);
    case 13: return BuildQ13(catalog, config);
    case 14: return BuildQ14(catalog, config);
    case 15: return BuildQ15(catalog, config);
    case 16: return BuildQ16(catalog, config);
    case 17: return BuildQ17(catalog, config);
    case 18: return BuildQ18(catalog, config);
    case 19: return BuildQ19(catalog, config);
    case 20: return BuildQ20(catalog, config);
    case 21: return BuildQ21(catalog, config);
    case 22: return BuildQ22(catalog, config);
    case 23: return BuildQ23Iterative(catalog, config);
    case 24: return BuildQ24Reporting(catalog, config);
    case 25: return BuildQ25MultiFact(catalog, config);
    default:
      CACKLE_CHECK(false) << "unknown query id " << query_id;
      __builtin_unreachable();
  }
}

}  // namespace cackle::exec
