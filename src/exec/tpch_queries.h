#ifndef CACKLE_EXEC_TPCH_QUERIES_H_
#define CACKLE_EXEC_TPCH_QUERIES_H_

#include <cstdint>
#include <vector>

#include "exec/datagen.h"
#include "exec/plan.h"

namespace cackle::exec {

/// \brief Knobs for plan construction.
struct PlanConfig {
  /// Tasks per parallel stage (scans, partitioned joins, aggregations).
  /// Results must be identical for any value >= 1 — the partition-
  /// invariance property tests rely on it.
  int tasks = 4;
};

/// \brief Builds the physical plan for TPC-H query `query_id` (1..22) or a
/// DS-like addition (23 = iterative, 24 = reporting, 25 = multi-fact; the
/// Section 7.1.6 mix). Plans follow the paper's execution model: a DAG of
/// stages, each a set of fixed-size tasks, joins realized as broadcast or
/// partitioned hash joins, results exchanged between stages through
/// hash-partitioned shuffles.
///
/// `catalog` must outlive the returned plan (stages capture table
/// pointers).
StagePlan BuildTpchPlan(int query_id, const Catalog& catalog,
                        const PlanConfig& config = PlanConfig());

/// All implemented query ids (1..25).
std::vector<int> AllTpchQueryIds();

}  // namespace cackle::exec

#endif  // CACKLE_EXEC_TPCH_QUERIES_H_
