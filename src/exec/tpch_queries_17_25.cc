// TPC-H queries 17-22 and the three DS-like additions (23 iterative,
// 24 reporting, 25 multi-fact-table) as Cackle-style stage plans.

#include "exec/tpch_queries_internal.h"

namespace cackle::exec::internal {

// Q17: small-quantity-order revenue.
StagePlan BuildQ17(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("tpch_q17");
  const int J = cfg.tasks;
  const int part = b.AddScan(
      "scan_part", &cat.part, J,
      And(Eq(Col("p_brand"), Lit("Brand#23")),
          Eq(Col("p_container"), Lit("MED BOX"))),
      {C("p_partkey")}, {"p_partkey"}, J);
  const int line = b.AddScan(
      "scan_lineitem", &cat.lineitem, J, nullptr,
      {C("l_partkey"), C("l_quantity"), C("l_extendedprice")},
      {"l_partkey"}, J);
  const int join = b.AddPartitionedStage(
      "join_avg_filter", {line, part}, {false, false}, J,
      [](const TaskInput& in) {
        Table j = HashJoin(*in.tables[0], {"l_partkey"}, *in.tables[1],
                           {"p_partkey"}, JoinType::kLeftSemi);
        if (j.num_rows() == 0) {
          Table empty;
          Column c(DataType::kFloat64);
          empty.AddColumn({"l_extendedprice", DataType::kFloat64},
                          std::move(c));
          return empty;
        }
        // Per-part average quantity is local: co-partitioned on partkey.
        Table avg = RenameColumns(
            HashAggregate(j, {"l_partkey"},
                          {{AggOp::kAvg, Col("l_quantity"), "avg_qty"}}),
            {"avg_partkey", "avg_qty"});
        Table matched = HashJoin(j, {"l_partkey"}, avg, {"avg_partkey"});
        matched = Filter(
            matched, Lt(Col("l_quantity"), Mul(Lit(0.2), Col("avg_qty"))));
        return SelectColumns(matched, {"l_extendedprice"});
      });
  b.AddSingleTask("final", {join}, [](const TaskInput& in) {
    const Table sum = HashAggregate(
        *in.tables[0], {}, {{AggOp::kSum, Col("l_extendedprice"), "total"}});
    return Project(sum, nullptr,
                   {N(Div(Col("total"), Lit(7.0)), "avg_yearly")});
  });
  return b.Build();
}

// Q18: large volume customers (sum(l_quantity) > threshold).
StagePlan BuildQ18(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("tpch_q18");
  const int J = cfg.tasks;
  // The spec threshold is 300 at SF>=1; scale down so the query stays
  // non-empty on small test catalogs.
  const double threshold = cat.orders.num_rows() > 500'000 ? 300.0 : 150.0;
  const int line = b.AddScan("scan_lineitem", &cat.lineitem, J, nullptr,
                             {C("l_orderkey"), C("l_quantity")},
                             {"l_orderkey"}, J);
  const int big = b.AddPartitionedStage(
      "having_sum_qty", {line}, {false}, J,
      [threshold](const TaskInput& in) {
        Table per_order = HashAggregate(
            *in.tables[0], {"l_orderkey"},
            {{AggOp::kSum, Col("l_quantity"), "sum_qty"}});
        return Filter(per_order, Gt(Col("sum_qty"), Lit(threshold)));
      },
      {"l_orderkey"}, J);
  const int orders = b.AddScan(
      "scan_orders", &cat.orders, J, nullptr,
      {C("o_orderkey"), C("o_custkey"), C("o_orderdate"), C("o_totalprice")},
      {"o_orderkey"}, J);
  const int ojoin = b.AddPartitionedStage(
      "join_orders", {big, orders}, {false, false}, J,
      [](const TaskInput& in) {
        return HashJoin(*in.tables[0], {"l_orderkey"}, *in.tables[1],
                        {"o_orderkey"});
      },
      {"o_custkey"}, J);
  const int cust = b.AddScan("scan_customer", &cat.customer, J, nullptr,
                             {C("c_custkey"), C("c_name")}, {"c_custkey"}, J);
  const int cjoin = b.AddPartitionedStage(
      "join_customer", {ojoin, cust}, {false, false}, J,
      [](const TaskInput& in) {
        Table j = HashJoin(*in.tables[0], {"o_custkey"}, *in.tables[1],
                           {"c_custkey"});
        return SelectColumns(j, {"c_name", "c_custkey", "o_orderkey",
                                 "o_orderdate", "o_totalprice", "sum_qty"});
      });
  b.AddSingleTask("top100", {cjoin}, [](const TaskInput& in) {
    return SortBy(*in.tables[0],
                  {{"o_totalprice", false}, {"o_orderdate", true}}, 100);
  });
  return b.Build();
}

// Q19: discounted revenue (disjunctive brand/container/quantity predicate).
StagePlan BuildQ19(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("tpch_q19");
  const int J = cfg.tasks;
  const int part = b.AddScan(
      "scan_part", &cat.part, J, nullptr,
      {C("p_partkey"), C("p_brand"), C("p_container"), C("p_size")},
      {"p_partkey"}, J);
  const int line = b.AddScan(
      "scan_lineitem", &cat.lineitem, J,
      And(InString(Col("l_shipmode"), {"AIR", "REG AIR"}),
          Eq(Col("l_shipinstruct"), Lit("DELIVER IN PERSON"))),
      {C("l_partkey"), C("l_quantity"), N(Revenue(), "revenue")},
      {"l_partkey"}, J);
  const int join = b.AddPartitionedStage(
      "join_disjunction", {line, part}, {false, false}, J,
      [](const TaskInput& in) {
        Table j = HashJoin(*in.tables[0], {"l_partkey"}, *in.tables[1],
                           {"p_partkey"});
        const ExprPtr b1 = AllOf(
            {Eq(Col("p_brand"), Lit("Brand#12")),
             InString(Col("p_container"),
                      {"SM CASE", "SM BOX", "SM PACK", "SM PKG"}),
             Between(Col("l_quantity"), Lit(1.0), Lit(11.0)),
             Between(Col("p_size"), Lit(int64_t{1}), Lit(int64_t{5}))});
        const ExprPtr b2 = AllOf(
            {Eq(Col("p_brand"), Lit("Brand#23")),
             InString(Col("p_container"),
                      {"MED BAG", "MED BOX", "MED PKG", "MED PACK"}),
             Between(Col("l_quantity"), Lit(10.0), Lit(20.0)),
             Between(Col("p_size"), Lit(int64_t{1}), Lit(int64_t{10}))});
        const ExprPtr b3 = AllOf(
            {Eq(Col("p_brand"), Lit("Brand#34")),
             InString(Col("p_container"),
                      {"LG CASE", "LG BOX", "LG PACK", "LG PKG"}),
             Between(Col("l_quantity"), Lit(20.0), Lit(30.0)),
             Between(Col("p_size"), Lit(int64_t{1}), Lit(int64_t{15}))});
        Table matched = Filter(j, Or(Or(b1, b2), b3));
        return HashAggregate(matched, {},
                             {{AggOp::kSum, Col("revenue"), "revenue"}});
      });
  b.AddSingleTask("final", {join}, [](const TaskInput& in) {
    return HashAggregate(*in.tables[0], {},
                         {{AggOp::kSum, Col("revenue"), "revenue"}});
  });
  return b.Build();
}

// Q20: potential part promotion (nested aggregation + semi joins).
StagePlan BuildQ20(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("tpch_q20");
  const int J = cfg.tasks;
  const Catalog* catp = &cat;
  const int64_t lo = DateFromCivil(1994, 1, 1);
  const int64_t hi = AddYears(lo, 1);
  const int part = b.AddScan("scan_part", &cat.part, J,
                             StrPrefix(Col("p_name"), "forest"),
                             {C("p_partkey")}, {"p_partkey"}, J);
  const int line = b.AddScan(
      "scan_lineitem", &cat.lineitem, J,
      And(Ge(Col("l_shipdate"), Lit(lo)), Lt(Col("l_shipdate"), Lit(hi))),
      {C("l_partkey"), C("l_suppkey"), C("l_quantity")}, {"l_partkey"}, J);
  const int ps = b.AddScan("scan_partsupp", &cat.partsupp, J, nullptr,
                           {C("ps_partkey"), C("ps_suppkey"),
                            C("ps_availqty")},
                           {"ps_partkey"}, J);
  const int eligible = b.AddPartitionedStage(
      "eligible_partsupp", {ps, line, part}, {false, false, false}, J,
      [](const TaskInput& in) {
        // Half the shipped 1994 quantity per (part, supp).
        Table shipped = RenameColumns(
            HashAggregate(*in.tables[1], {"l_partkey", "l_suppkey"},
                          {{AggOp::kSum, Col("l_quantity"), "sum_qty"}}),
            {"sq_partkey", "sq_suppkey", "sum_qty"});
        Table j = HashJoin(*in.tables[0], {"ps_partkey"}, *in.tables[2],
                           {"p_partkey"}, JoinType::kLeftSemi);
        j = HashJoin(j, {"ps_partkey", "ps_suppkey"}, shipped,
                     {"sq_partkey", "sq_suppkey"});
        j = Filter(j, Gt(Mul(Col("ps_availqty"), Lit(1.0)),
                         Mul(Lit(0.5), Col("sum_qty"))));
        return SelectColumns(j, {"ps_suppkey"});
      });
  b.AddSingleTask("suppliers", {eligible}, [catp](const TaskInput& in) {
    const Table n = Filter(catp->nation, Eq(Col("n_name"), Lit("CANADA")));
    Table s = HashJoin(catp->supplier, {"s_nationkey"}, n, {"n_nationkey"});
    s = HashJoin(s, {"s_suppkey"}, *in.tables[0], {"ps_suppkey"},
                 JoinType::kLeftSemi);
    s = SelectColumns(s, {"s_name", "s_address"});
    return SortBy(s, {{"s_name", true}});
  });
  return b.Build();
}

// Q21: suppliers who kept orders waiting.
StagePlan BuildQ21(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("tpch_q21");
  const int J = cfg.tasks;
  const Catalog* catp = &cat;
  const int line_all = b.AddScan(
      "scan_lineitem_all", &cat.lineitem, J, nullptr,
      {C("l_orderkey"), C("l_suppkey"),
       N(If(Gt(Col("l_receiptdate"), Col("l_commitdate")), Lit(int64_t{1}),
            Lit(int64_t{0})),
         "is_late")},
      {"l_orderkey"}, J);
  const int orders = b.AddScan(
      "scan_orders", &cat.orders, J,
      Eq(Col("o_orderstatus"), Lit("F")), {C("o_orderkey")}, {"o_orderkey"},
      J);
  const int supp_saudi = b.AddSingleTask(
      "saudi_suppliers", {}, [catp](const TaskInput&) {
        const Table n =
            Filter(catp->nation, Eq(Col("n_name"), Lit("SAUDI ARABIA")));
        Table s = HashJoin(catp->supplier, {"s_nationkey"}, n,
                           {"n_nationkey"});
        return SelectColumns(s, {"s_suppkey", "s_name"});
      });
  const int waits = b.AddPartitionedStage(
      "waiting_analysis", {line_all, orders, supp_saudi},
      {false, false, true}, J,
      [](const TaskInput& in) {
        // Keep finished orders only.
        Table l = HashJoin(*in.tables[0], {"l_orderkey"}, *in.tables[1],
                           {"o_orderkey"}, JoinType::kLeftSemi);
        if (l.num_rows() == 0) {
          Table empty;
          empty.AddColumn({"s_name", DataType::kString},
                          Column(DataType::kString));
          return empty;
        }
        // Per order: distinct suppliers overall and among late lines
        // (co-partitioned by orderkey, so both are local).
        Table late = Filter(l, Eq(Col("is_late"), Lit(int64_t{1})));
        Table all_supp = RenameColumns(
            HashAggregate(l, {"l_orderkey"},
                          {{AggOp::kCountDistinct, Col("l_suppkey"),
                            "nsupp"}}),
            {"a_orderkey", "nsupp"});
        Table late_supp = RenameColumns(
            HashAggregate(late, {"l_orderkey"},
                          {{AggOp::kCountDistinct, Col("l_suppkey"),
                            "nlate"}}),
            {"b_orderkey", "nlate"});
        // l1: late lines of Saudi suppliers.
        Table l1 = HashJoin(late, {"l_suppkey"}, *in.tables[2],
                            {"s_suppkey"});
        l1 = HashJoin(l1, {"l_orderkey"}, all_supp, {"a_orderkey"});
        l1 = HashJoin(l1, {"l_orderkey"}, late_supp, {"b_orderkey"});
        // exists other supplier in the order; not exists other late
        // supplier.
        l1 = Filter(l1, And(Gt(Col("nsupp"), Lit(int64_t{1})),
                            Eq(Col("nlate"), Lit(int64_t{1}))));
        return SelectColumns(l1, {"s_name"});
      },
      {"s_name"}, J);
  const int agg = b.AddPartitionedStage(
      "count_per_supplier", {waits}, {false}, J, [](const TaskInput& in) {
        return HashAggregate(*in.tables[0], {"s_name"},
                             {{AggOp::kCount, nullptr, "numwait"}});
      });
  b.AddSingleTask("top100", {agg}, [](const TaskInput& in) {
    return SortBy(*in.tables[0], {{"numwait", false}, {"s_name", true}},
                  100);
  });
  return b.Build();
}

// Q22: global sales opportunity.
StagePlan BuildQ22(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("tpch_q22");
  const int J = cfg.tasks;
  const Catalog* catp = &cat;
  const std::vector<std::string> codes = {"13", "31", "23", "29",
                                          "30", "18", "17"};
  const int cust = b.AddScan(
      "scan_customer", &cat.customer, J,
      InString(Substr(Col("c_phone"), 2), codes),
      {C("c_custkey"), C("c_acctbal"),
       N(Substr(Col("c_phone"), 2), "cntrycode")},
      {"c_custkey"}, J);
  const int orders = b.AddScan("scan_orders", &cat.orders, J, nullptr,
                               {C("o_custkey")}, {"o_custkey"}, J);
  const int avg_bal = b.AddSingleTask(
      "avg_positive_balance", {},
      [catp, codes](const TaskInput&) {
        const Table pos =
            Filter(catp->customer,
                   And(InString(Substr(Col("c_phone"), 2), codes),
                       Gt(Col("c_acctbal"), Lit(0.0))));
        return HashAggregate(pos, {},
                             {{AggOp::kAvg, Col("c_acctbal"), "avg_bal"}});
      });
  const int anti = b.AddPartitionedStage(
      "anti_join", {cust, orders, avg_bal}, {false, false, true}, J,
      [](const TaskInput& in) {
        const double avg =
            in.tables[2]->column("avg_bal").doubles()[0];
        Table c = Filter(*in.tables[0], Gt(Col("c_acctbal"), Lit(avg)));
        c = HashJoin(c, {"c_custkey"}, *in.tables[1], {"o_custkey"},
                     JoinType::kLeftAnti);
        return HashAggregate(c, {"cntrycode"},
                             {{AggOp::kCount, nullptr, "numcust"},
                              {AggOp::kSum, Col("c_acctbal"), "totacctbal"}});
      },
      {"cntrycode"}, J);
  const int agg = b.AddPartitionedStage(
      "reaggregate", {anti}, {false}, J, [](const TaskInput& in) {
        return HashAggregate(
            *in.tables[0], {"cntrycode"},
            {{AggOp::kSum, Col("numcust"), "numcust"},
             {AggOp::kSum, Col("totacctbal"), "totacctbal"}});
      });
  b.AddSingleTask("sort", {agg}, [](const TaskInput& in) {
    return SortBy(*in.tables[0], {{"cntrycode", true}});
  });
  return b.Build();
}

// Q23 (DS-like iterative, in the spirit of TPC-DS 24): two dependent passes
// over the fact table — pass 1 computes per-customer 1995 spending and its
// mean; pass 2 re-joins 1996 activity for the customers above the mean.
StagePlan BuildQ23Iterative(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("dslike_q24_iterative");
  const int J = cfg.tasks;
  const int64_t y95 = DateFromCivil(1995, 1, 1);
  const int64_t y96 = DateFromCivil(1996, 1, 1);
  const int64_t y97 = DateFromCivil(1997, 1, 1);
  const int orders95 = b.AddScan(
      "scan_orders_1995", &cat.orders, J,
      And(Ge(Col("o_orderdate"), Lit(y95)), Lt(Col("o_orderdate"), Lit(y96))),
      {C("o_custkey"), C("o_totalprice")}, {"o_custkey"}, J);
  // Per-customer sums are disjoint across custkey partitions, so gathering
  // the partial aggregates to one partition yields the full result.
  const int spend95 = b.AddPartitionedStage(
      "spending_1995", {orders95}, {false}, J, [](const TaskInput& in) {
        return HashAggregate(*in.tables[0], {"o_custkey"},
                             {{AggOp::kSum, Col("o_totalprice"), "spend95"}});
      });
  const int above_avg = b.AddSingleTask(
      "above_average_customers", {spend95}, [](const TaskInput& in) {
        const Table avg = HashAggregate(
            *in.tables[0], {}, {{AggOp::kAvg, Col("spend95"), "avg_spend"}});
        const double mean = avg.column("avg_spend").doubles()[0];
        return SelectColumns(
            Filter(*in.tables[0], Gt(Col("spend95"), Lit(mean))),
            {"o_custkey"});
      });
  const int orders96 = b.AddScan(
      "scan_orders_1996", &cat.orders, J,
      And(Ge(Col("o_orderdate"), Lit(y96)), Lt(Col("o_orderdate"), Lit(y97))),
      {C("o_custkey"), C("o_totalprice"), N(Year(Col("o_orderdate")),
                                            "o_year")},
      {"o_custkey"}, J);
  const int pass2 = b.AddPartitionedStage(
      "pass2_join", {orders96, above_avg}, {false, true}, J,
      [](const TaskInput& in) {
        // Rename the broadcast side to avoid a duplicate o_custkey column.
        const Table key_cust =
            RenameColumns(*in.tables[1], {"k_custkey"});
        Table j = HashJoin(*in.tables[0], {"o_custkey"}, key_cust,
                           {"k_custkey"}, JoinType::kLeftSemi);
        return HashAggregate(j, {},
                             {{AggOp::kSum, Col("o_totalprice"),
                               "repeat_revenue"},
                              {AggOp::kCount, nullptr, "repeat_orders"}});
      });
  b.AddSingleTask("final", {pass2}, [](const TaskInput& in) {
    return HashAggregate(
        *in.tables[0], {},
        {{AggOp::kSum, Col("repeat_revenue"), "repeat_revenue"},
         {AggOp::kSum, Col("repeat_orders"), "repeat_orders"}});
  });
  return b.Build();
}

// Q24 (DS-like reporting, in the spirit of TPC-DS 58): revenue per brand in
// three consecutive windows, aligned in one report.
StagePlan BuildQ24Reporting(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("dslike_q58_reporting");
  const int J = cfg.tasks;
  const int part = b.AddScan("scan_part", &cat.part, J, nullptr,
                             {C("p_partkey"), C("p_brand")}, {"p_partkey"},
                             J);
  auto window_scan = [&](const char* label, int64_t lo) {
    return b.AddScan(
        label, &cat.lineitem, J,
        And(Ge(Col("l_shipdate"), Lit(lo)),
            Lt(Col("l_shipdate"), Lit(AddMonths(lo, 2)))),
        {C("l_partkey"), N(Revenue(), "revenue")}, {"l_partkey"}, J);
  };
  const int w1 = window_scan("scan_window_a", DateFromCivil(1995, 1, 1));
  const int w2 = window_scan("scan_window_b", DateFromCivil(1995, 3, 1));
  const int w3 = window_scan("scan_window_c", DateFromCivil(1995, 5, 1));
  // Tag each window's rows with the brand, re-shuffling by brand so the
  // alignment join below sees complete per-brand revenue in one partition.
  auto brand_stage = [&](const char* label, int window_stage,
                         const char* rev_name) {
    return b.AddPartitionedStage(
        label, {window_stage, part}, {false, false}, J,
        [rev_name](const TaskInput& in) {
          Table j = HashJoin(*in.tables[0], {"l_partkey"}, *in.tables[1],
                             {"p_partkey"});
          return RenameColumns(SelectColumns(j, {"p_brand", "revenue"}),
                               {"p_brand", rev_name});
        },
        {"p_brand"}, J);
  };
  const int ba = brand_stage("brand_window_a", w1, "rev_a");
  const int bb = brand_stage("brand_window_b", w2, "rev_b");
  const int bc = brand_stage("brand_window_c", w3, "rev_c");
  const int align = b.AddPartitionedStage(
      "align_brands", {ba, bb, bc}, {false, false, false}, J,
      [](const TaskInput& in) {
        // Brands are co-partitioned across the three windows here, so the
        // per-brand sums and the alignment join are complete.
        Table a = HashAggregate(*in.tables[0], {"p_brand"},
                                {{AggOp::kSum, Col("rev_a"), "rev_a"}});
        a = RenameColumns(a, {"b_a", "rev_a"});
        Table bt = HashAggregate(*in.tables[1], {"p_brand"},
                                 {{AggOp::kSum, Col("rev_b"), "rev_b"}});
        bt = RenameColumns(bt, {"b_b", "rev_b"});
        Table c = HashAggregate(*in.tables[2], {"p_brand"},
                                {{AggOp::kSum, Col("rev_c"), "rev_c"}});
        c = RenameColumns(c, {"b_c", "rev_c"});
        Table j = HashJoin(a, {"b_a"}, bt, {"b_b"});
        j = HashJoin(j, {"b_a"}, c, {"b_c"});
        return SelectColumns(j, {"b_a", "rev_a", "rev_b", "rev_c"});
      });
  b.AddSingleTask("report", {align}, [](const TaskInput& in) {
    Table t = Project(
        *in.tables[0], nullptr,
        {N(Col("b_a"), "p_brand"), C("rev_a"), C("rev_b"), C("rev_c"),
         N(Div(Add(Add(Col("rev_a"), Col("rev_b")), Col("rev_c")), Lit(3.0)),
           "avg_window_revenue")});
    return SortBy(t, {{"avg_window_revenue", false}, {"p_brand", true}}, 50);
  });
  return b.Build();
}

// Q25 (DS-like multi-fact, in the spirit of TPC-DS 81): margin analysis over
// three fact tables — lineitem x orders x partsupp — by supplier nation and
// year.
StagePlan BuildQ25MultiFact(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("dslike_q81_multifact");
  const int J = cfg.tasks;
  const Catalog* catp = &cat;
  const int line = b.AddScan(
      "scan_lineitem", &cat.lineitem, J, nullptr,
      {C("l_orderkey"), C("l_partkey"), C("l_suppkey"), C("l_quantity"),
       N(Revenue(), "revenue")},
      {"l_partkey"}, J);
  const int ps = b.AddScan(
      "scan_partsupp", &cat.partsupp, J, nullptr,
      {C("ps_partkey"), C("ps_suppkey"), C("ps_supplycost")}, {"ps_partkey"},
      J);
  const int lps = b.AddPartitionedStage(
      "join_lineitem_partsupp", {line, ps}, {false, false}, J,
      [](const TaskInput& in) {
        Table j = HashJoin(*in.tables[0], {"l_partkey", "l_suppkey"},
                           *in.tables[1], {"ps_partkey", "ps_suppkey"});
        return SelectColumns(
            Project(j, nullptr,
                    {C("l_orderkey"), C("l_suppkey"),
                     N(Sub(Col("revenue"), Mul(Col("ps_supplycost"),
                                               Col("l_quantity"))),
                       "margin")}),
            {"l_orderkey", "l_suppkey", "margin"});
      },
      {"l_orderkey"}, J);
  const int orders = b.AddScan(
      "scan_orders", &cat.orders, J, nullptr,
      {C("o_orderkey"), N(Year(Col("o_orderdate")), "o_year")},
      {"o_orderkey"}, J);
  const int supp_nation = b.AddSingleTask(
      "supplier_nation", {}, [catp](const TaskInput&) {
        Table s = HashJoin(catp->supplier, {"s_nationkey"}, catp->nation,
                           {"n_nationkey"});
        return SelectColumns(s, {"s_suppkey", "n_name"});
      });
  const int join = b.AddPartitionedStage(
      "join_orders", {lps, orders, supp_nation}, {false, false, true}, J,
      [](const TaskInput& in) {
        Table j = HashJoin(*in.tables[0], {"l_orderkey"}, *in.tables[1],
                           {"o_orderkey"});
        j = HashJoin(j, {"l_suppkey"}, *in.tables[2], {"s_suppkey"});
        return HashAggregate(j, {"n_name", "o_year"},
                             {{AggOp::kSum, Col("margin"), "total_margin"},
                              {AggOp::kCount, nullptr, "line_count"}});
      },
      {"n_name", "o_year"}, J);
  const int agg = b.AddPartitionedStage(
      "reaggregate", {join}, {false}, J, [](const TaskInput& in) {
        return HashAggregate(
            *in.tables[0], {"n_name", "o_year"},
            {{AggOp::kSum, Col("total_margin"), "total_margin"},
             {AggOp::kSum, Col("line_count"), "line_count"}});
      });
  b.AddSingleTask("sort", {agg}, [](const TaskInput& in) {
    return SortBy(*in.tables[0],
                  {{"n_name", true}, {"o_year", true}});
  });
  return b.Build();
}

}  // namespace cackle::exec::internal
