// TPC-H queries 1-8 as Cackle-style stage plans. Each plan is a DAG of
// stages with fixed task parallelism; joins are broadcast (small build
// sides gathered to one partition) or partitioned hash joins
// (co-partitioned shuffles), matching the physical plans described in
// Section 7.1.4 of the paper.

#include "exec/tpch_queries_internal.h"

namespace cackle::exec::internal {

// Q1: pricing summary report.
StagePlan BuildQ1(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("tpch_q01");
  const int J = cfg.tasks;
  const int64_t cutoff = DateFromCivil(1998, 12, 1) - 90;
  const int scan = b.AddScan(
      "scan_lineitem", &cat.lineitem, J,
      Le(Col("l_shipdate"), Lit(cutoff)),
      {C("l_returnflag"), C("l_linestatus"), C("l_quantity"),
       C("l_extendedprice"), C("l_discount"),
       N(Mul(Col("l_extendedprice"), Sub(Lit(1.0), Col("l_discount"))),
         "disc_price"),
       N(Mul(Mul(Col("l_extendedprice"), Sub(Lit(1.0), Col("l_discount"))),
             Add(Lit(1.0), Col("l_tax"))),
         "charge")},
      {"l_returnflag", "l_linestatus"}, J);
  const int agg = b.AddPartitionedStage(
      "aggregate", {scan}, {false}, J,
      [](const TaskInput& in) {
        return HashAggregate(
            *in.tables[0], {"l_returnflag", "l_linestatus"},
            {{AggOp::kSum, Col("l_quantity"), "sum_qty"},
             {AggOp::kSum, Col("l_extendedprice"), "sum_base_price"},
             {AggOp::kSum, Col("disc_price"), "sum_disc_price"},
             {AggOp::kSum, Col("charge"), "sum_charge"},
             {AggOp::kAvg, Col("l_quantity"), "avg_qty"},
             {AggOp::kAvg, Col("l_extendedprice"), "avg_price"},
             {AggOp::kAvg, Col("l_discount"), "avg_disc"},
             {AggOp::kCount, nullptr, "count_order"}});
      });
  b.AddSingleTask("sort", {agg}, [](const TaskInput& in) {
    return SortBy(*in.tables[0],
                  {{"l_returnflag", true}, {"l_linestatus", true}});
  });
  return b.Build();
}

// Q2: minimum cost supplier in EUROPE for size-15 %BRASS parts.
StagePlan BuildQ2(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("tpch_q02");
  const int J = cfg.tasks;
  const int part_scan = b.AddScan(
      "scan_part", &cat.part, J,
      And(Eq(Col("p_size"), Lit(int64_t{15})),
          StrSuffix(Col("p_type"), "BRASS")),
      {C("p_partkey"), C("p_mfgr")}, {"p_partkey"}, J);
  const Catalog* catp = &cat;
  const int supp_europe = b.AddSingleTask(
      "suppliers_in_europe", {}, [catp](const TaskInput&) {
        const Table nr = HashJoin(
            Filter(catp->region, Eq(Col("r_name"), Lit("EUROPE"))),
            {"r_regionkey"}, catp->nation, {"n_regionkey"});
        Table s = HashJoin(catp->supplier, {"s_nationkey"}, nr,
                           {"n_nationkey"});
        return SelectColumns(s, {"s_suppkey", "s_acctbal", "s_name", "n_name",
                                 "s_address", "s_phone", "s_comment"});
      });
  const int ps_scan = b.AddScan(
      "scan_partsupp", &cat.partsupp, J, nullptr,
      {C("ps_partkey"), C("ps_suppkey"), C("ps_supplycost")}, {"ps_partkey"},
      J);
  const int join = b.AddPartitionedStage(
      "join_min_cost", {part_scan, ps_scan, supp_europe},
      {false, false, true}, J,
      [](const TaskInput& in) {
        Table j = HashJoin(*in.tables[1], {"ps_partkey"}, *in.tables[0],
                           {"p_partkey"});
        j = HashJoin(j, {"ps_suppkey"}, *in.tables[2], {"s_suppkey"});
        if (j.num_rows() == 0) return SelectColumns(j, {"s_acctbal", "s_name",
                                                        "n_name", "p_partkey",
                                                        "p_mfgr", "s_address",
                                                        "s_phone",
                                                        "s_comment"});
        // Keep rows whose supplycost equals the per-part minimum
        // (co-partitioned by partkey, so the minimum is local). Rename the
        // aggregate's key to avoid a duplicate column in the join output.
        Table mins = RenameColumns(
            HashAggregate(j, {"ps_partkey"},
                          {{AggOp::kMin, Col("ps_supplycost"), "min_cost"}}),
            {"min_partkey", "min_cost"});
        Table matched =
            HashJoin(j, {"ps_partkey"}, mins, {"min_partkey"});
        return SelectColumns(
            Filter(matched, Eq(Col("ps_supplycost"), Col("min_cost"))),
            {"s_acctbal", "s_name", "n_name", "p_partkey", "p_mfgr",
             "s_address", "s_phone", "s_comment"});
      });
  b.AddSingleTask("sort", {join}, [](const TaskInput& in) {
    return SortBy(*in.tables[0],
                  {{"s_acctbal", false},
                   {"n_name", true},
                   {"s_name", true},
                   {"p_partkey", true}},
                  100);
  });
  return b.Build();
}

// Q3: shipping priority.
StagePlan BuildQ3(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("tpch_q03");
  const int J = cfg.tasks;
  const int64_t date = DateFromCivil(1995, 3, 15);
  const int cust = b.AddScan(
      "scan_customer", &cat.customer, J,
      Eq(Col("c_mktsegment"), Lit("BUILDING")), {C("c_custkey")},
      {"c_custkey"}, J);
  const int orders = b.AddScan(
      "scan_orders", &cat.orders, J, Lt(Col("o_orderdate"), Lit(date)),
      {C("o_orderkey"), C("o_custkey"), C("o_orderdate"),
       C("o_shippriority")},
      {"o_custkey"}, J);
  const int co = b.AddPartitionedStage(
      "join_customer_orders", {orders, cust}, {false, false}, J,
      [](const TaskInput& in) {
        return HashJoin(*in.tables[0], {"o_custkey"}, *in.tables[1],
                        {"c_custkey"}, JoinType::kLeftSemi);
      },
      {"o_orderkey"}, J);
  const int line = b.AddScan(
      "scan_lineitem", &cat.lineitem, J, Gt(Col("l_shipdate"), Lit(date)),
      {C("l_orderkey"), N(Revenue(), "revenue")}, {"l_orderkey"}, J);
  const int join = b.AddPartitionedStage(
      "join_lineitem", {line, co}, {false, false}, J,
      [](const TaskInput& in) {
        const Table j = HashJoin(*in.tables[0], {"l_orderkey"}, *in.tables[1],
                                 {"o_orderkey"});
        return HashAggregate(j,
                             {"l_orderkey", "o_orderdate", "o_shippriority"},
                             {{AggOp::kSum, Col("revenue"), "revenue"}});
      });
  b.AddSingleTask("sort", {join}, [](const TaskInput& in) {
    return SortBy(*in.tables[0], {{"revenue", false}, {"o_orderdate", true}},
                  10);
  });
  return b.Build();
}

// Q4: order priority checking.
StagePlan BuildQ4(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("tpch_q04");
  const int J = cfg.tasks;
  const int64_t lo = DateFromCivil(1993, 7, 1);
  const int64_t hi = AddMonths(lo, 3);
  const int orders = b.AddScan(
      "scan_orders", &cat.orders, J,
      And(Ge(Col("o_orderdate"), Lit(lo)), Lt(Col("o_orderdate"), Lit(hi))),
      {C("o_orderkey"), C("o_orderpriority")}, {"o_orderkey"}, J);
  const int line = b.AddScan(
      "scan_lineitem", &cat.lineitem, J,
      Lt(Col("l_commitdate"), Col("l_receiptdate")), {C("l_orderkey")},
      {"l_orderkey"}, J);
  const int semi = b.AddPartitionedStage(
      "semi_join", {orders, line}, {false, false}, J,
      [](const TaskInput& in) {
        const Table j = HashJoin(*in.tables[0], {"o_orderkey"}, *in.tables[1],
                                 {"l_orderkey"}, JoinType::kLeftSemi);
        return HashAggregate(j, {"o_orderpriority"},
                             {{AggOp::kCount, nullptr, "order_count"}});
      },
      {"o_orderpriority"}, J);
  const int agg = b.AddPartitionedStage(
      "reaggregate", {semi}, {false}, J, [](const TaskInput& in) {
        return HashAggregate(*in.tables[0], {"o_orderpriority"},
                             {{AggOp::kSum, Col("order_count"),
                               "order_count"}});
      });
  b.AddSingleTask("sort", {agg}, [](const TaskInput& in) {
    return SortBy(*in.tables[0], {{"o_orderpriority", true}});
  });
  return b.Build();
}

// Q5: local supplier volume in ASIA.
StagePlan BuildQ5(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("tpch_q05");
  const int J = cfg.tasks;
  const int64_t lo = DateFromCivil(1994, 1, 1);
  const int64_t hi = AddYears(lo, 1);
  const Catalog* catp = &cat;
  const int supp_asia = b.AddSingleTask(
      "suppliers_in_asia", {}, [catp](const TaskInput&) {
        const Table nr = HashJoin(
            Filter(catp->region, Eq(Col("r_name"), Lit("ASIA"))),
            {"r_regionkey"}, catp->nation, {"n_regionkey"});
        Table s =
            HashJoin(catp->supplier, {"s_nationkey"}, nr, {"n_nationkey"});
        return SelectColumns(s, {"s_suppkey", "s_nationkey", "n_name"});
      });
  const int cust = b.AddScan("scan_customer", &cat.customer, J, nullptr,
                             {C("c_custkey"), C("c_nationkey")},
                             {"c_custkey"}, J);
  const int orders = b.AddScan(
      "scan_orders", &cat.orders, J,
      And(Ge(Col("o_orderdate"), Lit(lo)), Lt(Col("o_orderdate"), Lit(hi))),
      {C("o_orderkey"), C("o_custkey")}, {"o_custkey"}, J);
  const int co = b.AddPartitionedStage(
      "join_customer_orders", {orders, cust}, {false, false}, J,
      [](const TaskInput& in) {
        return SelectColumns(HashJoin(*in.tables[0], {"o_custkey"},
                                      *in.tables[1], {"c_custkey"}),
                             {"o_orderkey", "c_nationkey"});
      },
      {"o_orderkey"}, J);
  const int line = b.AddScan(
      "scan_lineitem", &cat.lineitem, J, nullptr,
      {C("l_orderkey"), C("l_suppkey"), N(Revenue(), "revenue")},
      {"l_orderkey"}, J);
  const int join = b.AddPartitionedStage(
      "join_all", {line, co, supp_asia}, {false, false, true}, J,
      [](const TaskInput& in) {
        Table j = HashJoin(*in.tables[0], {"l_orderkey"}, *in.tables[1],
                           {"o_orderkey"});
        j = HashJoin(j, {"l_suppkey"}, *in.tables[2], {"s_suppkey"});
        j = Filter(j, Eq(Col("c_nationkey"), Col("s_nationkey")));
        return HashAggregate(j, {"n_name"},
                             {{AggOp::kSum, Col("revenue"), "revenue"}});
      },
      {"n_name"}, J);
  const int agg = b.AddPartitionedStage(
      "reaggregate", {join}, {false}, J, [](const TaskInput& in) {
        return HashAggregate(*in.tables[0], {"n_name"},
                             {{AggOp::kSum, Col("revenue"), "revenue"}});
      });
  b.AddSingleTask("sort", {agg}, [](const TaskInput& in) {
    return SortBy(*in.tables[0], {{"revenue", false}});
  });
  return b.Build();
}

// Q6: forecasting revenue change.
StagePlan BuildQ6(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("tpch_q06");
  const int J = cfg.tasks;
  const int64_t lo = DateFromCivil(1994, 1, 1);
  const int64_t hi = AddYears(lo, 1);
  const int scan = b.AddScan(
      "scan_lineitem", &cat.lineitem, J,
      AllOf({Ge(Col("l_shipdate"), Lit(lo)), Lt(Col("l_shipdate"), Lit(hi)),
             Ge(Col("l_discount"), Lit(0.05)),
             Le(Col("l_discount"), Lit(0.07)),
             Lt(Col("l_quantity"), Lit(24.0))}),
      {N(Mul(Col("l_extendedprice"), Col("l_discount")), "amount")}, {}, 1);
  b.AddSingleTask("aggregate", {scan}, [](const TaskInput& in) {
    return HashAggregate(*in.tables[0], {},
                         {{AggOp::kSum, Col("amount"), "revenue"}});
  });
  return b.Build();
}

// Q7: volume shipping between FRANCE and GERMANY.
StagePlan BuildQ7(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("tpch_q07");
  const int J = cfg.tasks;
  const Catalog* catp = &cat;
  const int supp_nations = b.AddSingleTask(
      "supplier_nations", {}, [catp](const TaskInput&) {
        const Table n = Filter(catp->nation,
                               Or(Eq(Col("n_name"), Lit("FRANCE")),
                                  Eq(Col("n_name"), Lit("GERMANY"))));
        Table s = HashJoin(catp->supplier, {"s_nationkey"}, n,
                           {"n_nationkey"});
        s = SelectColumns(s, {"s_suppkey", "n_name"});
        return RenameColumns(s, {"s_suppkey", "supp_nation"});
      });
  const int cust_nations = b.AddSingleTask(
      "customer_nations", {}, [catp](const TaskInput&) {
        const Table n = Filter(catp->nation,
                               Or(Eq(Col("n_name"), Lit("FRANCE")),
                                  Eq(Col("n_name"), Lit("GERMANY"))));
        Table c = HashJoin(catp->customer, {"c_nationkey"}, n,
                           {"n_nationkey"});
        c = SelectColumns(c, {"c_custkey", "n_name"});
        return RenameColumns(c, {"c_custkey", "cust_nation"});
      });
  const int orders = b.AddScan("scan_orders", &cat.orders, J, nullptr,
                               {C("o_orderkey"), C("o_custkey")},
                               {"o_custkey"}, J);
  const int co = b.AddPartitionedStage(
      "join_customer_orders", {orders, cust_nations}, {false, true}, J,
      [](const TaskInput& in) {
        return SelectColumns(HashJoin(*in.tables[0], {"o_custkey"},
                                      *in.tables[1], {"c_custkey"}),
                             {"o_orderkey", "cust_nation"});
      },
      {"o_orderkey"}, J);
  const int line = b.AddScan(
      "scan_lineitem", &cat.lineitem, J,
      And(Ge(Col("l_shipdate"), Lit(DateFromCivil(1995, 1, 1))),
          Le(Col("l_shipdate"), Lit(DateFromCivil(1996, 12, 31)))),
      {C("l_orderkey"), C("l_suppkey"), N(Revenue(), "volume"),
       N(Year(Col("l_shipdate")), "l_year")},
      {"l_orderkey"}, J);
  const int join = b.AddPartitionedStage(
      "join_all", {line, co, supp_nations}, {false, false, true}, J,
      [](const TaskInput& in) {
        Table j = HashJoin(*in.tables[0], {"l_orderkey"}, *in.tables[1],
                           {"o_orderkey"});
        j = HashJoin(j, {"l_suppkey"}, *in.tables[2], {"s_suppkey"});
        j = Filter(j, Ne(Col("supp_nation"), Col("cust_nation")));
        return HashAggregate(j, {"supp_nation", "cust_nation", "l_year"},
                             {{AggOp::kSum, Col("volume"), "revenue"}});
      },
      {"supp_nation", "cust_nation", "l_year"}, J);
  const int agg = b.AddPartitionedStage(
      "reaggregate", {join}, {false}, J, [](const TaskInput& in) {
        return HashAggregate(*in.tables[0],
                             {"supp_nation", "cust_nation", "l_year"},
                             {{AggOp::kSum, Col("revenue"), "revenue"}});
      });
  b.AddSingleTask("sort", {agg}, [](const TaskInput& in) {
    return SortBy(*in.tables[0], {{"supp_nation", true},
                                  {"cust_nation", true},
                                  {"l_year", true}});
  });
  return b.Build();
}

// Q8: national market share of BRAZIL in AMERICA for a part type.
StagePlan BuildQ8(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("tpch_q08");
  const int J = cfg.tasks;
  const Catalog* catp = &cat;
  const int part = b.AddScan(
      "scan_part", &cat.part, J,
      Eq(Col("p_type"), Lit("ECONOMY ANODIZED STEEL")), {C("p_partkey")},
      {"p_partkey"}, J);
  const int line = b.AddScan(
      "scan_lineitem", &cat.lineitem, J, nullptr,
      {C("l_orderkey"), C("l_partkey"), C("l_suppkey"),
       N(Revenue(), "volume")},
      {"l_partkey"}, J);
  const int pl = b.AddPartitionedStage(
      "join_part_lineitem", {line, part}, {false, false}, J,
      [](const TaskInput& in) {
        return SelectColumns(
            HashJoin(*in.tables[0], {"l_partkey"}, *in.tables[1],
                     {"p_partkey"}, JoinType::kLeftSemi),
            {"l_orderkey", "l_suppkey", "volume"});
      },
      {"l_orderkey"}, J);
  const int cust_america = b.AddSingleTask(
      "customers_in_america", {}, [catp](const TaskInput&) {
        const Table nr = HashJoin(
            Filter(catp->region, Eq(Col("r_name"), Lit("AMERICA"))),
            {"r_regionkey"}, catp->nation, {"n_regionkey"});
        Table c = HashJoin(catp->customer, {"c_nationkey"}, nr,
                           {"n_nationkey"});
        return SelectColumns(c, {"c_custkey"});
      });
  const int orders = b.AddScan(
      "scan_orders", &cat.orders, J,
      And(Ge(Col("o_orderdate"), Lit(DateFromCivil(1995, 1, 1))),
          Le(Col("o_orderdate"), Lit(DateFromCivil(1996, 12, 31)))),
      {C("o_orderkey"), C("o_custkey"), N(Year(Col("o_orderdate")),
                                          "o_year")},
      {"o_orderkey"}, J);
  const int supp_nation = b.AddSingleTask(
      "supplier_nation", {}, [catp](const TaskInput&) {
        Table s = HashJoin(catp->supplier, {"s_nationkey"}, catp->nation,
                           {"n_nationkey"});
        s = SelectColumns(s, {"s_suppkey", "n_name"});
        return RenameColumns(s, {"s_suppkey", "supp_nation"});
      });
  const int join = b.AddPartitionedStage(
      "join_all", {pl, orders, cust_america, supp_nation},
      {false, false, true, true}, J,
      [](const TaskInput& in) {
        Table j = HashJoin(*in.tables[0], {"l_orderkey"}, *in.tables[1],
                           {"o_orderkey"});
        j = HashJoin(j, {"o_custkey"}, *in.tables[2], {"c_custkey"},
                     JoinType::kLeftSemi);
        j = HashJoin(j, {"l_suppkey"}, *in.tables[3], {"s_suppkey"});
        Table shaped = Project(
            j, nullptr,
            {C("o_year"), C("volume"),
             N(If(Eq(Col("supp_nation"), Lit("BRAZIL")), Col("volume"),
                  Lit(0.0)),
               "brazil_volume")});
        return HashAggregate(
            shaped, {"o_year"},
            {{AggOp::kSum, Col("brazil_volume"), "brazil_volume"},
             {AggOp::kSum, Col("volume"), "total_volume"}});
      },
      {"o_year"}, J);
  const int agg = b.AddPartitionedStage(
      "reaggregate", {join}, {false}, J, [](const TaskInput& in) {
        return HashAggregate(
            *in.tables[0], {"o_year"},
            {{AggOp::kSum, Col("brazil_volume"), "brazil_volume"},
             {AggOp::kSum, Col("total_volume"), "total_volume"}});
      });
  b.AddSingleTask("market_share", {agg}, [](const TaskInput& in) {
    Table shares = Project(
        *in.tables[0], nullptr,
        {C("o_year"),
         N(Div(Col("brazil_volume"), Col("total_volume")), "mkt_share")});
    return SortBy(shares, {{"o_year", true}});
  });
  return b.Build();
}

}  // namespace cackle::exec::internal
