// TPC-H queries 9-16 as Cackle-style stage plans.

#include "exec/tpch_queries_internal.h"

namespace cackle::exec::internal {

// Q9: product type profit measure ("%green%" parts).
StagePlan BuildQ9(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("tpch_q09");
  const int J = cfg.tasks;
  const Catalog* catp = &cat;
  const int part = b.AddScan("scan_part", &cat.part, J,
                             StrContains(Col("p_name"), "green"),
                             {C("p_partkey")}, {"p_partkey"}, J);
  const int ps = b.AddScan(
      "scan_partsupp", &cat.partsupp, J, nullptr,
      {C("ps_partkey"), C("ps_suppkey"), C("ps_supplycost")}, {"ps_partkey"},
      J);
  const int line = b.AddScan(
      "scan_lineitem", &cat.lineitem, J, nullptr,
      {C("l_orderkey"), C("l_partkey"), C("l_suppkey"), C("l_quantity"),
       N(Revenue(), "revenue")},
      {"l_partkey"}, J);
  const int supp_nation = b.AddSingleTask(
      "supplier_nation", {}, [catp](const TaskInput&) {
        Table s = HashJoin(catp->supplier, {"s_nationkey"}, catp->nation,
                           {"n_nationkey"});
        return SelectColumns(s, {"s_suppkey", "n_name"});
      });
  const int plps = b.AddPartitionedStage(
      "join_part_lineitem_partsupp", {line, part, ps}, {false, false, false},
      J,
      [](const TaskInput& in) {
        Table j = HashJoin(*in.tables[0], {"l_partkey"}, *in.tables[1],
                           {"p_partkey"}, JoinType::kLeftSemi);
        j = HashJoin(j, {"l_partkey", "l_suppkey"}, *in.tables[2],
                     {"ps_partkey", "ps_suppkey"});
        return SelectColumns(Project(j, nullptr,
                                     {C("l_orderkey"), C("l_suppkey"),
                                      N(Sub(Col("revenue"),
                                            Mul(Col("ps_supplycost"),
                                                Col("l_quantity"))),
                                        "amount")}),
                             {"l_orderkey", "l_suppkey", "amount"});
      },
      {"l_orderkey"}, J);
  const int orders = b.AddScan(
      "scan_orders", &cat.orders, J, nullptr,
      {C("o_orderkey"), N(Year(Col("o_orderdate")), "o_year")},
      {"o_orderkey"}, J);
  const int join = b.AddPartitionedStage(
      "join_orders_supplier", {plps, orders, supp_nation},
      {false, false, true}, J,
      [](const TaskInput& in) {
        Table j = HashJoin(*in.tables[0], {"l_orderkey"}, *in.tables[1],
                           {"o_orderkey"});
        j = HashJoin(j, {"l_suppkey"}, *in.tables[2], {"s_suppkey"});
        return HashAggregate(j, {"n_name", "o_year"},
                             {{AggOp::kSum, Col("amount"), "sum_profit"}});
      },
      {"n_name", "o_year"}, J);
  const int agg = b.AddPartitionedStage(
      "reaggregate", {join}, {false}, J, [](const TaskInput& in) {
        return HashAggregate(*in.tables[0], {"n_name", "o_year"},
                             {{AggOp::kSum, Col("sum_profit"),
                               "sum_profit"}});
      });
  b.AddSingleTask("sort", {agg}, [](const TaskInput& in) {
    return SortBy(*in.tables[0], {{"n_name", true}, {"o_year", false}});
  });
  return b.Build();
}

// Q10: returned item reporting (top 20 customers).
StagePlan BuildQ10(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("tpch_q10");
  const int J = cfg.tasks;
  const int64_t lo = DateFromCivil(1993, 10, 1);
  const int64_t hi = AddMonths(lo, 3);
  const int cust = b.AddScan(
      "scan_customer", &cat.customer, J, nullptr,
      {C("c_custkey"), C("c_name"), C("c_acctbal"), C("c_address"),
       C("c_nationkey"), C("c_phone"), C("c_comment")},
      {"c_custkey"}, J);
  const int orders = b.AddScan(
      "scan_orders", &cat.orders, J,
      And(Ge(Col("o_orderdate"), Lit(lo)), Lt(Col("o_orderdate"), Lit(hi))),
      {C("o_orderkey"), C("o_custkey")}, {"o_orderkey"}, J);
  const int line = b.AddScan(
      "scan_lineitem", &cat.lineitem, J,
      Eq(Col("l_returnflag"), Lit("R")),
      {C("l_orderkey"), N(Revenue(), "revenue")}, {"l_orderkey"}, J);
  const int lo_join = b.AddPartitionedStage(
      "join_lineitem_orders", {line, orders}, {false, false}, J,
      [](const TaskInput& in) {
        Table j = HashJoin(*in.tables[0], {"l_orderkey"}, *in.tables[1],
                           {"o_orderkey"});
        return HashAggregate(j, {"o_custkey"},
                             {{AggOp::kSum, Col("revenue"), "revenue"}});
      },
      {"o_custkey"}, J);
  const int join = b.AddPartitionedStage(
      "join_customer", {lo_join, cust}, {false, false}, J,
      [](const TaskInput& in) {
        Table per_cust = HashAggregate(
            *in.tables[0], {"o_custkey"},
            {{AggOp::kSum, Col("revenue"), "revenue"}});
        return HashJoin(per_cust, {"o_custkey"}, *in.tables[1],
                        {"c_custkey"});
      });
  const Table* nation = &cat.nation;
  b.AddSingleTask("top20", {join}, [nation](const TaskInput& in) {
    Table j = HashJoin(*in.tables[0], {"c_nationkey"}, *nation,
                       {"n_nationkey"});
    j = SelectColumns(j, {"c_custkey", "c_name", "revenue", "c_acctbal",
                          "n_name", "c_address", "c_phone", "c_comment"});
    return SortBy(j, {{"revenue", false}, {"c_custkey", true}}, 20);
  });
  return b.Build();
}

// Q11: important stock identification in GERMANY.
StagePlan BuildQ11(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("tpch_q11");
  const int J = cfg.tasks;
  const Catalog* catp = &cat;
  const int supp_germany = b.AddSingleTask(
      "suppliers_in_germany", {}, [catp](const TaskInput&) {
        const Table n =
            Filter(catp->nation, Eq(Col("n_name"), Lit("GERMANY")));
        Table s = HashJoin(catp->supplier, {"s_nationkey"}, n,
                           {"n_nationkey"});
        return SelectColumns(s, {"s_suppkey"});
      });
  const int ps = b.AddScan(
      "scan_partsupp", &cat.partsupp, J, nullptr,
      {C("ps_partkey"), C("ps_suppkey"),
       N(Mul(Col("ps_supplycost"),
             Mul(Col("ps_availqty"), Lit(1.0))),
         "value")},
      {"ps_partkey"}, J);
  const int per_part = b.AddPartitionedStage(
      "per_part_value", {ps, supp_germany}, {false, true}, J,
      [](const TaskInput& in) {
        const Table j = HashJoin(*in.tables[0], {"ps_suppkey"},
                                 *in.tables[1], {"s_suppkey"},
                                 JoinType::kLeftSemi);
        return HashAggregate(j, {"ps_partkey"},
                             {{AggOp::kSum, Col("value"), "value"}});
      });
  b.AddSingleTask("threshold_filter", {per_part}, [](const TaskInput& in) {
    const Table total = HashAggregate(
        *in.tables[0], {}, {{AggOp::kSum, Col("value"), "total"}});
    const double threshold =
        total.column("total").doubles()[0] * 0.0001;
    Table filtered =
        Filter(*in.tables[0], Gt(Col("value"), Lit(threshold)));
    return SortBy(filtered, {{"value", false}, {"ps_partkey", true}});
  });
  return b.Build();
}

// Q12: shipping modes and order priority.
StagePlan BuildQ12(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("tpch_q12");
  const int J = cfg.tasks;
  const int64_t lo = DateFromCivil(1994, 1, 1);
  const int64_t hi = AddYears(lo, 1);
  const int orders = b.AddScan(
      "scan_orders", &cat.orders, J, nullptr,
      {C("o_orderkey"), C("o_orderpriority")}, {"o_orderkey"}, J);
  const int line = b.AddScan(
      "scan_lineitem", &cat.lineitem, J,
      AllOf({InString(Col("l_shipmode"), {"MAIL", "SHIP"}),
             Lt(Col("l_commitdate"), Col("l_receiptdate")),
             Lt(Col("l_shipdate"), Col("l_commitdate")),
             Ge(Col("l_receiptdate"), Lit(lo)),
             Lt(Col("l_receiptdate"), Lit(hi))}),
      {C("l_orderkey"), C("l_shipmode")}, {"l_orderkey"}, J);
  const int join = b.AddPartitionedStage(
      "join_count", {line, orders}, {false, false}, J,
      [](const TaskInput& in) {
        Table j = HashJoin(*in.tables[0], {"l_orderkey"}, *in.tables[1],
                           {"o_orderkey"});
        Table shaped = Project(
            j, nullptr,
            {C("l_shipmode"),
             N(If(Or(Eq(Col("o_orderpriority"), Lit("1-URGENT")),
                     Eq(Col("o_orderpriority"), Lit("2-HIGH"))),
                  Lit(int64_t{1}), Lit(int64_t{0})),
               "high_line"),
             N(If(Or(Eq(Col("o_orderpriority"), Lit("1-URGENT")),
                     Eq(Col("o_orderpriority"), Lit("2-HIGH"))),
                  Lit(int64_t{0}), Lit(int64_t{1})),
               "low_line")});
        return HashAggregate(
            shaped, {"l_shipmode"},
            {{AggOp::kSum, Col("high_line"), "high_line_count"},
             {AggOp::kSum, Col("low_line"), "low_line_count"}});
      },
      {"l_shipmode"}, J);
  const int agg = b.AddPartitionedStage(
      "reaggregate", {join}, {false}, J, [](const TaskInput& in) {
        return HashAggregate(
            *in.tables[0], {"l_shipmode"},
            {{AggOp::kSum, Col("high_line_count"), "high_line_count"},
             {AggOp::kSum, Col("low_line_count"), "low_line_count"}});
      });
  b.AddSingleTask("sort", {agg}, [](const TaskInput& in) {
    return SortBy(*in.tables[0], {{"l_shipmode", true}});
  });
  return b.Build();
}

// Q13: customer distribution (left outer join with comment filter).
StagePlan BuildQ13(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("tpch_q13");
  const int J = cfg.tasks;
  const int cust = b.AddScan("scan_customer", &cat.customer, J, nullptr,
                             {C("c_custkey")}, {"c_custkey"}, J);
  const int orders = b.AddScan(
      "scan_orders", &cat.orders, J,
      Not(StrContainsSeq(Col("o_comment"), "special", "requests")),
      {C("o_orderkey"), C("o_custkey")}, {"o_custkey"}, J);
  const int outer = b.AddPartitionedStage(
      "outer_join_count", {cust, orders}, {false, false}, J,
      [](const TaskInput& in) {
        Table j = HashJoin(*in.tables[0], {"c_custkey"}, *in.tables[1],
                           {"o_custkey"}, JoinType::kLeftOuter);
        // Unmatched customers get o_orderkey = 0 padding; count real ones.
        Table shaped = Project(
            j, nullptr,
            {C("c_custkey"),
             N(If(Gt(Col("o_orderkey"), Lit(int64_t{0})), Lit(int64_t{1}),
                  Lit(int64_t{0})),
               "has_order")});
        return HashAggregate(shaped, {"c_custkey"},
                             {{AggOp::kSum, Col("has_order"), "c_count"}});
      },
      {"c_count"}, J);
  const int dist = b.AddPartitionedStage(
      "distribution", {outer}, {false}, J, [](const TaskInput& in) {
        return HashAggregate(*in.tables[0], {"c_count"},
                             {{AggOp::kCount, nullptr, "custdist"}});
      });
  b.AddSingleTask("sort", {dist}, [](const TaskInput& in) {
    return SortBy(*in.tables[0], {{"custdist", false}, {"c_count", false}});
  });
  return b.Build();
}

// Q14: promotion effect.
StagePlan BuildQ14(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("tpch_q14");
  const int J = cfg.tasks;
  const int64_t lo = DateFromCivil(1995, 9, 1);
  const int64_t hi = AddMonths(lo, 1);
  const int part = b.AddScan("scan_part", &cat.part, J, nullptr,
                             {C("p_partkey"), C("p_type")}, {"p_partkey"}, J);
  const int line = b.AddScan(
      "scan_lineitem", &cat.lineitem, J,
      And(Ge(Col("l_shipdate"), Lit(lo)), Lt(Col("l_shipdate"), Lit(hi))),
      {C("l_partkey"), N(Revenue(), "revenue")}, {"l_partkey"}, J);
  const int join = b.AddPartitionedStage(
      "join_promo", {line, part}, {false, false}, J,
      [](const TaskInput& in) {
        Table j = HashJoin(*in.tables[0], {"l_partkey"}, *in.tables[1],
                           {"p_partkey"});
        Table shaped = Project(
            j, nullptr,
            {N(If(StrPrefix(Col("p_type"), "PROMO"), Col("revenue"),
                  Lit(0.0)),
               "promo_revenue"),
             C("revenue")});
        return HashAggregate(
            shaped, {},
            {{AggOp::kSum, Col("promo_revenue"), "promo"},
             {AggOp::kSum, Col("revenue"), "total"}});
      });
  b.AddSingleTask("ratio", {join}, [](const TaskInput& in) {
    const Table totals = HashAggregate(
        *in.tables[0], {},
        {{AggOp::kSum, Col("promo"), "promo"},
         {AggOp::kSum, Col("total"), "total"}});
    return Project(totals, nullptr,
                   {N(Mul(Lit(100.0), Div(Col("promo"), Col("total"))),
                      "promo_revenue")});
  });
  return b.Build();
}

// Q15: top supplier (revenue view + max).
StagePlan BuildQ15(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("tpch_q15");
  const int J = cfg.tasks;
  const Catalog* catp = &cat;
  const int64_t lo = DateFromCivil(1996, 1, 1);
  const int64_t hi = AddMonths(lo, 3);
  const int line = b.AddScan(
      "scan_lineitem", &cat.lineitem, J,
      And(Ge(Col("l_shipdate"), Lit(lo)), Lt(Col("l_shipdate"), Lit(hi))),
      {C("l_suppkey"), N(Revenue(), "revenue")}, {"l_suppkey"}, J);
  const int view = b.AddPartitionedStage(
      "revenue_view", {line}, {false}, J, [](const TaskInput& in) {
        return HashAggregate(*in.tables[0], {"l_suppkey"},
                             {{AggOp::kSum, Col("revenue"),
                               "total_revenue"}});
      });
  b.AddSingleTask("max_join", {view}, [catp](const TaskInput& in) {
    const Table& view_table = *in.tables[0];
    const Table max_rev = HashAggregate(
        view_table, {}, {{AggOp::kMax, Col("total_revenue"), "max_rev"}});
    const double max_value = max_rev.column("max_rev").doubles()[0];
    Table top = Filter(view_table,
                       Ge(Col("total_revenue"), Lit(max_value - 1e-6)));
    Table j = HashJoin(top, {"l_suppkey"}, catp->supplier, {"s_suppkey"});
    j = SelectColumns(j, {"s_suppkey", "s_name", "s_address", "s_phone",
                          "total_revenue"});
    return SortBy(j, {{"s_suppkey", true}});
  });
  return b.Build();
}

// Q16: parts/supplier relationship.
StagePlan BuildQ16(const Catalog& cat, const PlanConfig& cfg) {
  PlanBuilder b("tpch_q16");
  const int J = cfg.tasks;
  const Catalog* catp = &cat;
  const int part = b.AddScan(
      "scan_part", &cat.part, J,
      AllOf({Ne(Col("p_brand"), Lit("Brand#45")),
             Not(StrPrefix(Col("p_type"), "MEDIUM POLISHED")),
             InInt(Col("p_size"), {49, 14, 23, 45, 19, 3, 36, 9})}),
      {C("p_partkey"), C("p_brand"), C("p_type"), C("p_size")},
      {"p_partkey"}, J);
  const int complainers = b.AddSingleTask(
      "complaint_suppliers", {}, [catp](const TaskInput&) {
        return SelectColumns(
            Filter(catp->supplier,
                   StrContainsSeq(Col("s_comment"), "Customer",
                                  "Complaints")),
            {"s_suppkey"});
      });
  const int ps = b.AddScan("scan_partsupp", &cat.partsupp, J, nullptr,
                           {C("ps_partkey"), C("ps_suppkey")},
                           {"ps_partkey"}, J);
  const int join = b.AddPartitionedStage(
      "join_anti", {ps, part, complainers}, {false, false, true}, J,
      [](const TaskInput& in) {
        Table j = HashJoin(*in.tables[0], {"ps_partkey"}, *in.tables[1],
                           {"p_partkey"});
        j = HashJoin(j, {"ps_suppkey"}, *in.tables[2], {"s_suppkey"},
                     JoinType::kLeftAnti);
        return SelectColumns(j, {"p_brand", "p_type", "p_size",
                                 "ps_suppkey"});
      },
      {"p_brand", "p_type", "p_size"}, J);
  const int agg = b.AddPartitionedStage(
      "count_distinct", {join}, {false}, J, [](const TaskInput& in) {
        return HashAggregate(*in.tables[0], {"p_brand", "p_type", "p_size"},
                             {{AggOp::kCountDistinct, Col("ps_suppkey"),
                               "supplier_cnt"}});
      });
  b.AddSingleTask("sort", {agg}, [](const TaskInput& in) {
    return SortBy(*in.tables[0], {{"supplier_cnt", false},
                                  {"p_brand", true},
                                  {"p_type", true},
                                  {"p_size", true}});
  });
  return b.Build();
}

}  // namespace cackle::exec::internal
