#ifndef CACKLE_EXEC_TPCH_QUERIES_INTERNAL_H_
#define CACKLE_EXEC_TPCH_QUERIES_INTERNAL_H_

#include "exec/datagen.h"
#include "exec/query_builder.h"
#include "exec/tpch_queries.h"

namespace cackle::exec::internal {

/// Shorthand: pass-through projection column.
inline NamedExpr C(const char* name) { return NamedExpr{Col(name), name}; }
/// Shorthand: named expression.
inline NamedExpr N(ExprPtr e, const char* name) {
  return NamedExpr{std::move(e), name};
}

/// l_extendedprice * (1 - l_discount).
inline ExprPtr Revenue() {
  return Mul(Col("l_extendedprice"), Sub(Lit(1.0), Col("l_discount")));
}

StagePlan BuildQ1(const Catalog& cat, const PlanConfig& cfg);
StagePlan BuildQ2(const Catalog& cat, const PlanConfig& cfg);
StagePlan BuildQ3(const Catalog& cat, const PlanConfig& cfg);
StagePlan BuildQ4(const Catalog& cat, const PlanConfig& cfg);
StagePlan BuildQ5(const Catalog& cat, const PlanConfig& cfg);
StagePlan BuildQ6(const Catalog& cat, const PlanConfig& cfg);
StagePlan BuildQ7(const Catalog& cat, const PlanConfig& cfg);
StagePlan BuildQ8(const Catalog& cat, const PlanConfig& cfg);
StagePlan BuildQ9(const Catalog& cat, const PlanConfig& cfg);
StagePlan BuildQ10(const Catalog& cat, const PlanConfig& cfg);
StagePlan BuildQ11(const Catalog& cat, const PlanConfig& cfg);
StagePlan BuildQ12(const Catalog& cat, const PlanConfig& cfg);
StagePlan BuildQ13(const Catalog& cat, const PlanConfig& cfg);
StagePlan BuildQ14(const Catalog& cat, const PlanConfig& cfg);
StagePlan BuildQ15(const Catalog& cat, const PlanConfig& cfg);
StagePlan BuildQ16(const Catalog& cat, const PlanConfig& cfg);
StagePlan BuildQ17(const Catalog& cat, const PlanConfig& cfg);
StagePlan BuildQ18(const Catalog& cat, const PlanConfig& cfg);
StagePlan BuildQ19(const Catalog& cat, const PlanConfig& cfg);
StagePlan BuildQ20(const Catalog& cat, const PlanConfig& cfg);
StagePlan BuildQ21(const Catalog& cat, const PlanConfig& cfg);
StagePlan BuildQ22(const Catalog& cat, const PlanConfig& cfg);
StagePlan BuildQ23Iterative(const Catalog& cat, const PlanConfig& cfg);
StagePlan BuildQ24Reporting(const Catalog& cat, const PlanConfig& cfg);
StagePlan BuildQ25MultiFact(const Catalog& cat, const PlanConfig& cfg);

}  // namespace cackle::exec::internal

#endif  // CACKLE_EXEC_TPCH_QUERIES_INTERNAL_H_
