#include "exec/types.h"

#include <cstdio>

namespace cackle::exec {
namespace {

constexpr bool IsLeap(int64_t y) {
  return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0);
}

constexpr unsigned DaysInMonth(int64_t y, unsigned m) {
  constexpr unsigned kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeap(y)) return 29;
  return kDays[m - 1];
}

}  // namespace

std::string_view DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat64:
      return "float64";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

int64_t AddMonths(int64_t date, int64_t months) {
  const CivilDate c = CivilFromDate(date);
  int64_t total = c.year * 12 + static_cast<int64_t>(c.month) - 1 + months;
  const int64_t y = (total >= 0 ? total : total - 11) / 12;
  const unsigned m = static_cast<unsigned>(total - y * 12) + 1;
  unsigned d = c.day;
  const unsigned dim = DaysInMonth(y, m);
  if (d > dim) d = dim;
  return DateFromCivil(y, m, d);
}

std::string FormatDate(int64_t date) {
  const CivilDate c = CivilFromDate(date);
  // Wide enough for the full %lld range (sign + 19 digits) plus
  // "-MM-DD" and the terminator; 24 drew -Wformat-truncation under -O3.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04lld-%02u-%02u",
                static_cast<long long>(c.year), c.month, c.day);
  return buf;
}

}  // namespace cackle::exec
