#ifndef CACKLE_EXEC_TYPES_H_
#define CACKLE_EXEC_TYPES_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace cackle::exec {

/// \brief Column data types of the mini executor.
///
/// Dates are stored as kInt64 days-since-civil-epoch (see DateFromCivil);
/// decimals as kFloat64 (sufficient for TPC-H aggregates at test scale).
enum class DataType : uint8_t {
  kInt64 = 0,
  kFloat64 = 1,
  kString = 2,
};

std::string_view DataTypeName(DataType type);

/// \brief Days since 1970-01-01 for a proleptic Gregorian date
/// (Howard Hinnant's civil-days algorithm; valid for all TPC-H dates).
constexpr int64_t DateFromCivil(int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

/// \brief Inverse of DateFromCivil.
struct CivilDate {
  int64_t year;
  unsigned month;
  unsigned day;
};
constexpr CivilDate CivilFromDate(int64_t z) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  return CivilDate{y + (m <= 2), m, d};
}

/// Adds `months` calendar months, clamping the day to the target month's
/// length (TPC-H interval semantics).
int64_t AddMonths(int64_t date, int64_t months);
inline int64_t AddYears(int64_t date, int64_t years) {
  return AddMonths(date, years * 12);
}

/// Formats as YYYY-MM-DD.
std::string FormatDate(int64_t date);

}  // namespace cackle::exec

#endif  // CACKLE_EXEC_TYPES_H_
