#include "model/analytical_model.h"

#include <algorithm>

#include "common/logging.h"
#include "strategy/allocation_model.h"
#include "strategy/shuffle_provisioner.h"

namespace cackle {

ModelResult AnalyticalModel::Run(ProvisioningStrategy* strategy,
                                 const DemandCurve& demand,
                                 const ModelOptions& options,
                                 bool record_series) const {
  ModelResult result;
  result.compute = EvaluateStrategy(strategy, demand.tasks_per_second(),
                                    *cost_, record_series);

  if (options.include_shuffle) {
    ShuffleProvisioner provisioner(cost_);
    AllocationModel nodes(cost_->shuffle_node_startup_ms / 1000,
                          cost_->shuffle_node_min_billing_ms / 1000,
                          cost_->shuffle_node_cost_per_hour / 3600.0,
                          /*elastic_price_per_s=*/0.0);
    const int64_t seconds = demand.duration_seconds();
    for (int64_t s = 0; s < seconds; ++s) {
      const int64_t resident = demand.ShuffleBytesAt(s);
      const int64_t target = provisioner.Step(resident);
      const auto step = nodes.Step(target, /*demand=*/0);
      const int64_t capacity =
          step.available * cost_->shuffle_node_memory_bytes;
      // When resident intermediate state exceeds provisioned node memory,
      // the overflowing fraction of this second's shuffle traffic goes
      // through cloud storage and is billed per request (the Starling
      // fallback path).
      double overflow_fraction = 0.0;
      if (resident > capacity && resident > 0) {
        overflow_fraction = static_cast<double>(resident - capacity) /
                            static_cast<double>(resident);
      }
      const double puts =
          static_cast<double>(demand.PutsAt(s)) * overflow_fraction;
      const double gets =
          static_cast<double>(demand.GetsAt(s)) * overflow_fraction;
      result.object_store_puts += static_cast<int64_t>(puts + 0.5);
      result.object_store_gets += static_cast<int64_t>(gets + 0.5);
      result.object_store_cost += puts * cost_->object_store_put_cost +
                                  gets * cost_->object_store_get_cost;
    }
    nodes.Finish();
    result.shuffle_node_cost = nodes.vm_cost();
  }

  if (options.include_coordinator) {
    const double hours =
        static_cast<double>(demand.duration_seconds()) / 3600.0;
    result.coordinator_cost = cost_->coordinator_cost_per_hour * hours;
  }
  return result;
}

}  // namespace cackle
