#ifndef CACKLE_MODEL_ANALYTICAL_MODEL_H_
#define CACKLE_MODEL_ANALYTICAL_MODEL_H_

#include <cstdint>
#include <vector>

#include "cloud/cost_model.h"
#include "strategy/cost_calculator.h"
#include "strategy/strategy.h"
#include "workload/demand.h"

namespace cackle {

/// \brief Full analytical-model result for one strategy on one workload.
struct ModelResult {
  /// Execution-layer compute (VMs + elastic pool).
  StrategyEvaluation compute;
  /// Shuffling layer: provisioned shuffle nodes plus cloud-storage requests
  /// for the overflow.
  double shuffle_node_cost = 0.0;
  double object_store_cost = 0.0;
  int64_t object_store_puts = 0;
  int64_t object_store_gets = 0;
  /// Coordinator VM rental over the workload (included when requested).
  double coordinator_cost = 0.0;

  double compute_cost() const { return compute.total(); }
  double shuffle_cost() const { return shuffle_node_cost + object_store_cost; }
  double total() const {
    return compute_cost() + shuffle_cost() + coordinator_cost;
  }
};

/// \brief Options for an analytical-model run.
struct ModelOptions {
  /// Model the shuffling layer (Section 5.6). Off for the pure compute
  /// experiments of Figures 5-10, on when comparing end-to-end costs.
  bool include_shuffle = false;
  /// Charge the single always-on coordinator VM.
  bool include_coordinator = false;
};

/// \brief The analytical model of Section 5: second-by-second accounting of
/// a workload's demand against a provisioning strategy and the cost model.
///
/// Compute: demand is served by available provisioned VMs first; the excess
/// runs on the elastic pool (delegated to EvaluateStrategy, shared with the
/// dynamic strategy's internal expert evaluation). Shuffling: shuffle nodes
/// follow the Section 5.6 policy (trailing 20-minute max of resident
/// intermediate state, 16 GB floor); when resident state exceeds provisioned
/// node memory, the overflow's reads and writes go to cloud storage at
/// per-request prices.
class AnalyticalModel {
 public:
  explicit AnalyticalModel(const CostModel* cost) : cost_(cost) {}

  ModelResult Run(ProvisioningStrategy* strategy, const DemandCurve& demand,
                  const ModelOptions& options = ModelOptions(),
                  bool record_series = false) const;

 private:
  const CostModel* cost_;
};

}  // namespace cackle

#endif  // CACKLE_MODEL_ANALYTICAL_MODEL_H_
