#include "model/warehouse_simulator.h"

#include <algorithm>
#include <deque>
#include <functional>

#include "common/logging.h"

namespace cackle {

WarehouseOptions DatabricksSmallFixed(int clusters) {
  WarehouseOptions o;
  o.name = "databricks_small_" + std::to_string(clusters) + "clusters";
  o.min_clusters = o.max_clusters = clusters;
  o.slots_per_cluster = 6;
  o.cluster_cost_per_hour = 12 * 0.70;  // 12 DBU x $0.70/DBU-hour
  o.speed_factor = 1.0;
  return o;
}

WarehouseOptions DatabricksSmallAuto() {
  WarehouseOptions o = DatabricksSmallFixed(1);
  o.name = "databricks_small_auto";
  o.min_clusters = 1;
  o.max_clusters = 8;
  return o;
}

WarehouseOptions DatabricksMediumFixed(int clusters) {
  WarehouseOptions o;
  o.name = "databricks_medium_" + std::to_string(clusters) + "clusters";
  o.min_clusters = o.max_clusters = clusters;
  o.slots_per_cluster = 16;
  o.cluster_cost_per_hour = 24 * 0.70;  // 24 DBU
  o.speed_factor = 0.65;
  return o;
}

WarehouseOptions DatabricksMediumAuto() {
  WarehouseOptions o = DatabricksMediumFixed(1);
  o.name = "databricks_medium_auto";
  o.min_clusters = 1;
  o.max_clusters = 5;
  return o;
}

WarehouseOptions RedshiftServerless8Rpu() {
  WarehouseOptions o;
  o.name = "redshift_serverless_8rpu";
  o.min_clusters = o.max_clusters = 1;
  o.slots_per_cluster = 7;
  o.cluster_cost_per_hour = 8 * 0.36;  // 8 RPU x $0.36/RPU-hour
  o.speed_factor = 0.85;
  o.serverless_billing = true;
  return o;
}

WarehouseOptions SnowflakeLikeMultiCluster(bool economy) {
  WarehouseOptions o;
  o.name = economy ? "snowflake_like_economy" : "snowflake_like_standard";
  o.min_clusters = 1;
  o.max_clusters = 6;
  o.slots_per_cluster = 8;
  o.cluster_cost_per_hour = 2.0 * 3.0;  // 2 credits/hour x $3/credit
  o.speed_factor = 0.8;
  if (economy) {
    // Economy: only add a cluster once enough work has queued to keep it
    // busy; release aggressively.
    o.queue_before_scale_up_ms = 60 * kMillisPerSecond;
    o.min_queued_for_scale_up = 12;
    o.idle_before_release_ms = 2 * kMillisPerMinute;
  } else {
    o.queue_before_scale_up_ms = 10 * kMillisPerSecond;
    o.min_queued_for_scale_up = 1;
  }
  return o;
}

namespace {

enum class ClusterState { kStarting, kRunning, kReleased };

struct Cluster {
  ClusterState state = ClusterState::kStarting;
  int busy_slots = 0;
  SimTimeMs started_ms = 0;
  SimTimeMs idle_since_ms = 0;
};

struct QueuedQuery {
  size_t index;
  SimTimeMs enqueued_ms;
};

}  // namespace

WarehouseResult RunWarehouseSimulation(
    const std::vector<QueryArrival>& arrivals, const ProfileLibrary& library,
    const WarehouseOptions& options) {
  CACKLE_CHECK_GE(options.max_clusters, options.min_clusters);
  CACKLE_CHECK_GE(options.min_clusters, 1);
  Simulation sim;
  WarehouseResult result;
  result.name = options.name;

  std::vector<Cluster> clusters;
  std::deque<QueuedQuery> queue;
  int64_t running_queries = 0;
  // Serverless billing state: the start of the current busy period.
  SimTimeMs busy_since = -1;
  double serverless_billed_ms = 0;
  SimTimeMs fixed_billing_cluster_ms = 0;  // accumulated cluster runtime

  auto live_clusters = [&] {
    int64_t n = 0;
    for (const Cluster& c : clusters) {
      if (c.state != ClusterState::kReleased) ++n;
    }
    return n;
  };

  std::function<void()> dispatch;

  auto start_cluster = [&] {
    clusters.push_back(Cluster{});
    Cluster& c = clusters.back();
    c.started_ms = sim.NowMs();
    const size_t idx = clusters.size() - 1;
    ++result.clusters_started;
    sim.ScheduleAfter(options.cluster_startup_ms, [&, idx] {
      if (clusters[idx].state == ClusterState::kStarting) {
        clusters[idx].state = ClusterState::kRunning;
        clusters[idx].idle_since_ms = sim.NowMs();
        dispatch();
      }
    });
    result.peak_clusters = std::max(result.peak_clusters, live_clusters());
  };

  auto release_cluster = [&](size_t idx) {
    Cluster& c = clusters[idx];
    CACKLE_CHECK(c.state == ClusterState::kRunning);
    CACKLE_CHECK_EQ(c.busy_slots, 0);
    c.state = ClusterState::kReleased;
    fixed_billing_cluster_ms += sim.NowMs() - c.started_ms;
  };

  auto maybe_release = [&](size_t idx) {
    // Release surplus idle clusters after the idle threshold.
    Cluster& c = clusters[idx];
    if (c.state != ClusterState::kRunning || c.busy_slots > 0) return;
    if (live_clusters() <= options.min_clusters) return;
    if (sim.NowMs() - c.idle_since_ms >= options.idle_before_release_ms) {
      release_cluster(idx);
    }
  };

  auto run_query = [&](size_t cluster_idx, size_t query_idx,
                       SimTimeMs enqueued_ms) {
    Cluster& c = clusters[cluster_idx];
    ++c.busy_slots;
    ++running_queries;
    if (running_queries == 1) busy_since = sim.NowMs();
    const QueryProfile& profile =
        library.at(arrivals[query_idx].profile_index);
    const SimTimeMs run_ms = std::max<SimTimeMs>(
        500, static_cast<SimTimeMs>(static_cast<double>(
                 profile.CriticalPathMs()) * options.speed_factor));
    if (sim.NowMs() - enqueued_ms >= 1000) ++result.queries_queued;
    sim.ScheduleAfter(run_ms, [&, cluster_idx, query_idx] {
      Cluster& cl = clusters[cluster_idx];
      --cl.busy_slots;
      --running_queries;
      if (running_queries == 0 && busy_since >= 0) {
        // Close the serverless busy period with the 60 s minimum.
        serverless_billed_ms += static_cast<double>(
            std::max<SimTimeMs>(sim.NowMs() - busy_since, kMillisPerMinute));
        busy_since = -1;
      }
      result.latencies_s.Add(
          MsToSeconds(sim.NowMs() - arrivals[query_idx].arrival_ms));
      if (cl.busy_slots == 0) {
        cl.idle_since_ms = sim.NowMs();
        sim.ScheduleAfter(options.idle_before_release_ms,
                          [&, cluster_idx] { maybe_release(cluster_idx); });
      }
      dispatch();
    });
  };

  dispatch = [&] {
    while (!queue.empty()) {
      // Find a running cluster with a free slot.
      size_t chosen = clusters.size();
      for (size_t i = 0; i < clusters.size(); ++i) {
        if (clusters[i].state == ClusterState::kRunning &&
            clusters[i].busy_slots < options.slots_per_cluster) {
          chosen = i;
          break;
        }
      }
      if (chosen == clusters.size()) break;
      const QueuedQuery q = queue.front();
      queue.pop_front();
      run_query(chosen, q.index, q.enqueued_ms);
    }
    // Auto-scaling: if the head of the queue has waited past the threshold
    // and capacity remains, request one more cluster (only one starting at
    // a time, mirroring add-a-cluster-at-a-time behaviour).
    if (static_cast<int64_t>(queue.size()) >=
            options.min_queued_for_scale_up &&
        !queue.empty() &&
        sim.NowMs() - queue.front().enqueued_ms >=
            options.queue_before_scale_up_ms &&
        live_clusters() < options.max_clusters) {
      bool starting = false;
      for (const Cluster& c : clusters) {
        starting |= (c.state == ClusterState::kStarting);
      }
      if (!starting) start_cluster();
    }
  };

  // Initial fleet.
  for (int i = 0; i < options.min_clusters; ++i) start_cluster();
  // Initial clusters are pre-provisioned before the workload begins: mark
  // them running at t=0 (the paper warms baselines up before measuring).
  for (Cluster& c : clusters) {
    c.state = ClusterState::kRunning;
  }

  for (size_t q = 0; q < arrivals.size(); ++q) {
    sim.ScheduleAt(arrivals[q].arrival_ms, [&, q] {
      queue.push_back(QueuedQuery{q, sim.NowMs()});
      dispatch();
      if (!queue.empty()) {
        // Re-check the scale-up condition when this query ages past the
        // threshold.
        sim.ScheduleAfter(options.queue_before_scale_up_ms,
                          [&] { dispatch(); });
      }
    });
  }

  sim.RunToCompletion();
  CACKLE_CHECK_EQ(result.latencies_s.size(), arrivals.size());

  // Billing.
  if (options.serverless_billing) {
    if (busy_since >= 0) {
      serverless_billed_ms += static_cast<double>(std::max<SimTimeMs>(
          sim.NowMs() - busy_since, kMillisPerMinute));
    }
    result.cost = options.cluster_cost_per_hour * serverless_billed_ms /
                  static_cast<double>(kMillisPerHour);
  } else {
    for (const Cluster& c : clusters) {
      if (c.state != ClusterState::kReleased) {
        fixed_billing_cluster_ms += sim.NowMs() - c.started_ms;
      }
    }
    result.cost = options.cluster_cost_per_hour *
                  static_cast<double>(fixed_billing_cluster_ms) /
                  static_cast<double>(kMillisPerHour);
  }
  return result;
}

}  // namespace cackle
