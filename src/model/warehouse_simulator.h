#ifndef CACKLE_MODEL_WAREHOUSE_SIMULATOR_H_
#define CACKLE_MODEL_WAREHOUSE_SIMULATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "sim/simulation.h"
#include "workload/profile_library.h"
#include "workload/workload_generator.h"

namespace cackle {

/// \brief Configuration of a conventional cloud data-warehouse baseline
/// (Databricks-SQL-like or Redshift-Serverless-like; Sections 7.1.7/7.1.8).
///
/// The baselines capture the documented behaviours the paper contrasts with
/// Cackle: queries run on a set of clusters with bounded concurrency; when
/// all slots are taken, queries queue; auto-scaling adds a cluster only
/// after queries have queued for a while and new clusters take minutes to
/// come online; surplus clusters are released slowly. Fixed warehouses bill
/// all clusters for the whole workload; serverless billing charges only
/// while queries are running, with a one-minute minimum per busy period.
struct WarehouseOptions {
  std::string name = "warehouse";
  int min_clusters = 1;
  int max_clusters = 1;
  /// Queries running concurrently per cluster before queueing.
  int slots_per_cluster = 10;
  /// Dollars per cluster-hour (e.g. Databricks small = 12 DBU x $0.70).
  double cluster_cost_per_hour = 8.4;
  /// Query latency = profile critical path x this factor (warm local-disk
  /// caches make warehouses faster than cloud-storage-bound execution).
  double speed_factor = 0.6;
  /// Time for a newly requested cluster to come online.
  SimTimeMs cluster_startup_ms = 150 * kMillisPerSecond;
  /// A queued query older than this triggers a scale-up request.
  SimTimeMs queue_before_scale_up_ms = 30 * kMillisPerSecond;
  /// Additionally require at least this many queued queries before scaling
  /// up (Snowflake's "economy" multi-cluster policy waits for a real
  /// backlog; "standard" scales on any queueing).
  int64_t min_queued_for_scale_up = 1;
  /// An idle surplus cluster is released after this long.
  SimTimeMs idle_before_release_ms = 10 * kMillisPerMinute;
  /// Redshift-Serverless-style billing: charged only while at least one
  /// query is running, with a 60 s minimum per busy period.
  bool serverless_billing = false;
};

/// Canonical baseline configurations used by the Figure 1/14 benches.
WarehouseOptions DatabricksSmallFixed(int clusters = 5);
WarehouseOptions DatabricksSmallAuto();
WarehouseOptions DatabricksMediumFixed(int clusters = 3);
WarehouseOptions DatabricksMediumAuto();
WarehouseOptions RedshiftServerless8Rpu();
/// Snowflake-like multi-cluster warehouse (related work, [29]): standard
/// policy scales on any sustained queueing; economy waits for a backlog.
WarehouseOptions SnowflakeLikeMultiCluster(bool economy);

/// \brief Result of a warehouse baseline run.
struct WarehouseResult {
  std::string name;
  SampleSet latencies_s;
  double cost = 0.0;
  int64_t clusters_started = 0;
  int64_t peak_clusters = 0;
  int64_t queries_queued = 0;  // queries that waited at least one second
};

/// Simulates the warehouse on a generated workload.
WarehouseResult RunWarehouseSimulation(
    const std::vector<QueryArrival>& arrivals, const ProfileLibrary& library,
    const WarehouseOptions& options);

}  // namespace cackle

#endif  // CACKLE_MODEL_WAREHOUSE_SIMULATOR_H_
