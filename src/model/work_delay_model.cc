#include "model/work_delay_model.h"

#include <algorithm>
#include <functional>
#include <queue>

#include "common/logging.h"

namespace cackle {
namespace {

struct ReadyTask {
  int64_t query_seq;  // submission order: smaller = higher priority
  int stage_id;
  int task_index;
  SimTimeMs duration_ms;

  bool operator>(const ReadyTask& other) const {
    if (query_seq != other.query_seq) return query_seq > other.query_seq;
    if (stage_id != other.stage_id) return stage_id > other.stage_id;
    return task_index > other.task_index;
  }
};

struct QueryState {
  const QueryProfile* profile = nullptr;
  SimTimeMs arrival_ms = 0;
  std::vector<int> deps_remaining;   // per stage
  std::vector<int> tasks_remaining;  // per stage
  int stages_remaining = 0;
};

}  // namespace

WorkDelayResult RunWorkDelaySimulation(
    const std::vector<QueryArrival>& arrivals, const ProfileLibrary& library,
    int64_t num_workers, const CostModel& cost) {
  CACKLE_CHECK_GT(num_workers, 0);
  Simulation sim;
  WorkDelayResult result;

  std::vector<QueryState> queries(arrivals.size());
  std::priority_queue<ReadyTask, std::vector<ReadyTask>, std::greater<>>
      ready;
  int64_t free_workers = num_workers;

  // Forward declarations via std::function so completions can dispatch.
  std::function<void()> dispatch;
  std::function<void(int64_t, int)> on_stage_ready;
  std::function<void(int64_t, int)> on_task_done;

  on_stage_ready = [&](int64_t q, int stage_id) {
    const QueryState& state = queries[static_cast<size_t>(q)];
    const StageProfile& stage =
        state.profile->stages[static_cast<size_t>(stage_id)];
    for (int t = 0; t < stage.num_tasks; ++t) {
      ready.push(ReadyTask{q, stage_id, t, stage.TaskDuration(t)});
    }
    dispatch();
  };

  on_task_done = [&](int64_t q, int stage_id) {
    QueryState& state = queries[static_cast<size_t>(q)];
    ++free_workers;
    ++result.tasks_executed;
    if (--state.tasks_remaining[static_cast<size_t>(stage_id)] == 0) {
      // Stage complete: unblock dependents; maybe complete the query.
      if (--state.stages_remaining == 0) {
        result.latencies_s.Add(MsToSeconds(sim.NowMs() - state.arrival_ms));
        result.makespan_ms = std::max(result.makespan_ms, sim.NowMs());
      }
      for (size_t s = 0; s < state.profile->stages.size(); ++s) {
        for (int dep : state.profile->stages[s].dependencies) {
          if (dep == stage_id) {
            if (--state.deps_remaining[s] == 0) {
              on_stage_ready(q, static_cast<int>(s));
            }
          }
        }
      }
    }
    dispatch();
  };

  dispatch = [&] {
    while (free_workers > 0 && !ready.empty()) {
      const ReadyTask task = ready.top();
      ready.pop();
      --free_workers;
      // Durations are rounded up to whole seconds, minimum one, matching
      // the analytical model's demand accounting.
      const SimTimeMs dur =
          std::max<SimTimeMs>(1000, (task.duration_ms + 999) / 1000 * 1000);
      sim.ScheduleAfter(dur, [&on_task_done, task] {
        on_task_done(task.query_seq, task.stage_id);
      });
    }
  };

  for (size_t q = 0; q < arrivals.size(); ++q) {
    QueryState& state = queries[q];
    state.profile = &library.at(arrivals[q].profile_index);
    state.arrival_ms = arrivals[q].arrival_ms;
    state.stages_remaining = static_cast<int>(state.profile->stages.size());
    state.deps_remaining.resize(state.profile->stages.size());
    state.tasks_remaining.resize(state.profile->stages.size());
    for (size_t s = 0; s < state.profile->stages.size(); ++s) {
      state.deps_remaining[s] =
          static_cast<int>(state.profile->stages[s].dependencies.size());
      state.tasks_remaining[s] = state.profile->stages[s].num_tasks;
    }
    sim.ScheduleAt(state.arrival_ms, [&, q] {
      const QueryState& st = queries[q];
      for (size_t s = 0; s < st.profile->stages.size(); ++s) {
        if (st.deps_remaining[s] == 0) {
          on_stage_ready(static_cast<int64_t>(q), static_cast<int>(s));
        }
      }
    });
  }

  sim.RunToCompletion();
  CACKLE_CHECK_EQ(result.latencies_s.size(), arrivals.size());

  // The fixed fleet is rented for the full makespan.
  result.cost = static_cast<double>(num_workers) *
                MsToSeconds(result.makespan_ms) * cost.VmCostPerSecond();
  return result;
}

SampleSet UnconstrainedLatencies(const std::vector<QueryArrival>& arrivals,
                                 const ProfileLibrary& library) {
  SampleSet latencies;
  for (const QueryArrival& qa : arrivals) {
    // Round each stage's wall time up to whole task-seconds like the
    // delaying simulation does, for an apples-to-apples comparison.
    const QueryProfile& p = library.at(qa.profile_index);
    std::vector<SimTimeMs> finish(p.stages.size(), 0);
    SimTimeMs end = 0;
    for (size_t i = 0; i < p.stages.size(); ++i) {
      SimTimeMs start = 0;
      for (int dep : p.stages[i].dependencies) {
        start = std::max(start, finish[static_cast<size_t>(dep)]);
      }
      const SimTimeMs dur = std::max<SimTimeMs>(
          1000, (p.stages[i].MaxTaskDuration() + 999) / 1000 * 1000);
      finish[i] = start + dur;
      end = std::max(end, finish[i]);
    }
    latencies.Add(MsToSeconds(end));
  }
  return latencies;
}

}  // namespace cackle
