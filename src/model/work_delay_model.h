#ifndef CACKLE_MODEL_WORK_DELAY_MODEL_H_
#define CACKLE_MODEL_WORK_DELAY_MODEL_H_

#include <cstdint>
#include <vector>

#include "cloud/cost_model.h"
#include "common/stats.h"
#include "sim/simulation.h"
#include "workload/profile_library.h"
#include "workload/workload_generator.h"

namespace cackle {

/// \brief Result of simulating a work-delaying system (Section 5.5).
struct WorkDelayResult {
  /// Per-query latency (submission to completion), seconds.
  SampleSet latencies_s;
  /// Compute cost: the fixed fleet rented for the whole makespan.
  double cost = 0.0;
  /// Time until the last query finished.
  SimTimeMs makespan_ms = 0;
  int64_t tasks_executed = 0;
};

/// \brief Simulates the conventional OLAP provisioning model: a fixed fleet
/// of `num_workers` task slots; work queues FIFO (priority to the earliest
/// submitted query) until a slot frees up. Unlike Cackle there is no elastic
/// pool, so demand spikes translate into queueing delay instead of cost.
///
/// Used for Figure 11's cost-vs-p95-latency frontier of fixed provisionings.
WorkDelayResult RunWorkDelaySimulation(
    const std::vector<QueryArrival>& arrivals, const ProfileLibrary& library,
    int64_t num_workers, const CostModel& cost);

/// \brief Latencies of the same workload under Cackle's execution model:
/// tasks never queue (the elastic pool absorbs overflow), so each query
/// completes after its unconstrained critical path.
SampleSet UnconstrainedLatencies(const std::vector<QueryArrival>& arrivals,
                                 const ProfileLibrary& library);

}  // namespace cackle

#endif  // CACKLE_MODEL_WORK_DELAY_MODEL_H_
