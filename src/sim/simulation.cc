#include "sim/simulation.h"

#include "common/logging.h"

namespace cackle {

Simulation::~Simulation() {
  // Events still queued (cancelled or simply never reached) are owned here.
  while (!queue_.empty()) {
    delete queue_.top();
    queue_.pop();
  }
}

uint64_t Simulation::ScheduleAt(SimTimeMs when, Callback cb) {
  CACKLE_CHECK_GE(when, now_) << "cannot schedule in the past";
  Event* ev = new Event{when, next_seq_++, std::move(cb), false};
  queue_.push(ev);
  pending_.push_back(ev);
  ++live_events_;
  return ev->seq;
}

Simulation::Event* Simulation::FindPending(uint64_t seq) {
  if (seq < base_seq_) return nullptr;
  const uint64_t slot = seq - base_seq_;
  if (slot >= pending_.size()) return nullptr;
  return pending_[slot];
}

bool Simulation::Cancel(uint64_t event_id) {
  Event* ev = FindPending(event_id);
  if (ev == nullptr || ev->cancelled) return false;
  ev->cancelled = true;
  --live_events_;
  return true;
}

void Simulation::CompactRegistry() {
  // Drop leading registry slots whose events have already executed
  // (marked nullptr) to keep memory bounded on long simulations.
  size_t drop = 0;
  while (drop < pending_.size() && pending_[drop] == nullptr) ++drop;
  if (drop > 0) {
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<ptrdiff_t>(drop));
    base_seq_ += drop;
  }
}

int64_t Simulation::RunUntil(SimTimeMs until) {
  int64_t ran = 0;
  while (!queue_.empty()) {
    Event* ev = queue_.top();
    if (ev->when > until) break;
    queue_.pop();
    const uint64_t slot = ev->seq - base_seq_;
    CACKLE_CHECK_LT(slot, pending_.size());
    pending_[slot] = nullptr;
    if (!ev->cancelled) {
      now_ = ev->when;
      --live_events_;
      Callback cb = std::move(ev->cb);
      delete ev;
      cb();
      ++ran;
      ++executed_;
    } else {
      delete ev;
    }
    if ((executed_ & 0xFFF) == 0) CompactRegistry();
  }
  if (queue_.empty()) CompactRegistry();
  if (until > now_ && queue_.empty()) now_ = until;
  return ran;
}

int64_t Simulation::RunToCompletion() {
  int64_t ran = 0;
  while (!queue_.empty()) {
    ran += RunUntil(queue_.top()->when);
  }
  CompactRegistry();
  return ran;
}

}  // namespace cackle
