#include "sim/simulation.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "common/arena.h"
#include "common/logging.h"

namespace cackle {
namespace {

constexpr SimTimeMs kMaxSimTime = std::numeric_limits<SimTimeMs>::max();
constexpr int kMaxBucketCount = 1 << 18;
constexpr SimTimeMs kMaxBucketWidthMs = SimTimeMs{1} << 30;

int64_t RoundUpPow2(int64_t v) {
  int64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

/// Scheduler backend interface. The two implementations must agree on
/// observable behavior exactly: events pop in (when, seq) order, Cancel
/// returns true iff the event was still pending, and a cancelled event
/// never pops. Memory layout and handle encoding may differ.
class Simulation::QueueImpl {
 public:
  explicit QueueImpl(Stats* stats, const SimOptions& options)
      : stats_(stats), options_(options) {}
  virtual ~QueueImpl() = default;

  /// Enqueues an event; returns its cancellation handle.
  virtual uint64_t Schedule(SimTimeMs when, uint64_t seq, Callback cb) = 0;
  /// Cancels a pending event (true iff it was live). The callback is
  /// destroyed immediately; a stale handle (already fired, already
  /// cancelled, or recycled storage) safely returns false.
  virtual bool Cancel(uint64_t id) = 0;
  /// Pops the earliest live event if its time is <= `limit`, moving its
  /// callback into `*cb`. Returns false when no live event qualifies.
  virtual bool PopNext(SimTimeMs limit, SimTimeMs* when, Callback* cb) = 0;
  /// Resident entries, including cancelled tombstones.
  virtual int64_t entries() const = 0;

 protected:
  Stats* stats_;
  const SimOptions options_;
};

// ---------------------------------------------------------------------------
// Binary-heap reference scheduler: the original kernel — one heap-allocated
// event per schedule, a std::priority_queue of pointers, and a flat seq-
// indexed registry for cancellation. Kept verbatim (plus tombstone
// compaction) as the differential-testing reference and perf baseline.
// ---------------------------------------------------------------------------

class Simulation::BinaryHeapQueue : public Simulation::QueueImpl {
 public:
  using QueueImpl::QueueImpl;

  ~BinaryHeapQueue() override {
    while (!queue_.empty()) {
      delete queue_.top();
      queue_.pop();
    }
  }

  uint64_t Schedule(SimTimeMs when, uint64_t seq, Callback cb) override {
    Event* ev = new Event{when, seq, std::move(cb), false};
    queue_.push(ev);
    pending_.push_back(ev);
    return seq;
  }

  bool Cancel(uint64_t id) override {
    Event* ev = FindPending(id);
    if (ev == nullptr || ev->cancelled) return false;
    ev->cancelled = true;
    ev->cb.reset();
    ++tombstones_;
    MaybeCompact();
    return true;
  }

  bool PopNext(SimTimeMs limit, SimTimeMs* when, Callback* cb) override {
    while (!queue_.empty()) {
      Event* ev = queue_.top();
      if (!ev->cancelled && ev->when > limit) return false;
      queue_.pop();
      ClearRegistrySlot(ev->seq);
      if (ev->cancelled) {
        --tombstones_;
        delete ev;
        continue;
      }
      *when = ev->when;
      *cb = std::move(ev->cb);
      delete ev;
      if ((++pops_ & 0xFFF) == 0) CompactRegistry();
      return true;
    }
    CompactRegistry();
    return false;
  }

  int64_t entries() const override {
    return static_cast<int64_t>(queue_.size());
  }

 private:
  struct Event {
    SimTimeMs when;
    uint64_t seq;
    Callback cb;
    bool cancelled = false;
  };
  struct EventOrder {
    bool operator()(const Event* a, const Event* b) const {
      if (a->when != b->when) return a->when > b->when;
      return a->seq > b->seq;
    }
  };

  Event* FindPending(uint64_t seq) {
    if (seq < base_seq_) return nullptr;
    const uint64_t slot = seq - base_seq_;
    if (slot >= pending_.size()) return nullptr;
    return pending_[slot];
  }

  void ClearRegistrySlot(uint64_t seq) {
    const uint64_t slot = seq - base_seq_;
    CACKLE_CHECK_LT(slot, pending_.size());
    pending_[slot] = nullptr;
  }

  void CompactRegistry() {
    // Drop leading registry slots whose events already executed (marked
    // nullptr) to keep memory bounded on long simulations.
    size_t drop = 0;
    while (drop < pending_.size() && pending_[drop] == nullptr) ++drop;
    if (drop > 0) {
      pending_.erase(pending_.begin(),
                     pending_.begin() + static_cast<ptrdiff_t>(drop));
      base_seq_ += drop;
    }
  }

  void MaybeCompact() {
    const int64_t live = entries() - tombstones_;
    if (tombstones_ <= options_.min_compaction_tombstones ||
        tombstones_ <= 2 * live) {
      return;
    }
    std::vector<Event*> keep;
    keep.reserve(static_cast<size_t>(live));
    while (!queue_.empty()) {
      Event* ev = queue_.top();
      queue_.pop();
      if (ev->cancelled) {
        ClearRegistrySlot(ev->seq);
        delete ev;
        ++stats_->tombstones_purged;
      } else {
        keep.push_back(ev);
      }
    }
    for (Event* ev : keep) queue_.push(ev);
    tombstones_ = 0;
    ++stats_->compactions;
    CompactRegistry();
  }

  std::priority_queue<Event*, std::vector<Event*>, EventOrder> queue_;
  // Flat cancellation registry, slot = seq - base_seq_. Entries are nulled
  // as events run; the leading executed prefix is dropped periodically.
  std::vector<Event*> pending_;
  uint64_t base_seq_ = 0;
  int64_t tombstones_ = 0;
  uint64_t pops_ = 0;
};

// ---------------------------------------------------------------------------
// Calendar-queue scheduler: a bucketed wheel over the near future with a
// min-heap overflow for far-future events, arena-allocated event nodes, and
// generation-checked handles.
//
// Layout invariants (the determinism argument lives in DESIGN.md):
//  - `batch_` holds the extracted front run, sorted by (when, seq); every
//    batch entry orders strictly before every wheel/overflow entry.
//  - each wheel bucket holds only entries of its *current* window
//    [window, window + width) — far-future events sit in `overflow_` until
//    the advancing horizon migrates them, so buckets never mix revolutions.
//  - within a bucket, entries at equal `when` appear in ascending `seq`
//    order (appends happen in schedule order; migration pops the overflow
//    heap in (when, seq) order before any direct append can occur).
//  - a cancelled event frees its node immediately (generation bump); the
//    queue entry left behind is a tombstone skipped on pop and removed in
//    bulk by the lazy compaction sweep.
// ---------------------------------------------------------------------------

class Simulation::CalendarQueue : public Simulation::QueueImpl {
 public:
  CalendarQueue(Stats* stats, const SimOptions& options)
      : QueueImpl(stats, options) {
    bucket_count_ = static_cast<int>(RoundUpPow2(
        std::max(2, options.initial_bucket_count)));
    width_shift_ = ShiftFor(std::max<SimTimeMs>(1,
        options.initial_bucket_width_ms));
    buckets_.resize(static_cast<size_t>(bucket_count_));
  }

  uint64_t Schedule(SimTimeMs when, uint64_t seq, Callback cb) override {
    const uint32_t slot = pool_.Alloc();
    Node& node = pool_.at(slot);
    node.cb = std::move(cb);
    node.when = when;
    node.seq = seq;
    node.live = true;
    Insert(Entry{when, seq, slot, node.gen});
    MaybeResize();
    return MakeId(slot, node.gen);
  }

  bool Cancel(uint64_t id) override {
    const uint32_t slot = static_cast<uint32_t>(id & 0xffffffffu);
    const uint32_t gen = static_cast<uint32_t>(id >> 32);
    if (static_cast<size_t>(slot) >= pool_.size()) return false;
    Node& node = pool_.at(slot);
    if (!node.live || node.gen != gen) return false;
    FreeNode(slot, node);
    ++tombstones_;
    MaybeCompact();
    return true;
  }

  bool PopNext(SimTimeMs limit, SimTimeMs* when, Callback* cb) override {
    for (;;) {
      while (!BatchEmpty() && IsStale(batch_[batch_head_])) {
        BatchPopFront();
        --tombstones_;
      }
      if (BatchEmpty()) {
        if (!Refill()) return false;
        continue;
      }
      const Entry front = batch_[batch_head_];
      if (front.when > limit) return false;
      BatchPopFront();
      Node& node = pool_.at(front.slot);
      *when = front.when;
      *cb = std::move(node.cb);
      FreeNode(front.slot, node);
      return true;
    }
  }

  int64_t entries() const override {
    return wheel_entries_ + static_cast<int64_t>(overflow_.size()) +
           static_cast<int64_t>(batch_.size() - batch_head_);
  }

 private:
  struct Node {
    Callback cb;
    SimTimeMs when = 0;
    uint64_t seq = 0;
    uint32_t gen = 1;
    bool live = false;
  };
  struct Entry {
    SimTimeMs when;
    uint64_t seq;
    uint32_t slot;
    uint32_t gen;
  };
  struct EntryAfter {
    // Min-heap order for the overflow: pop earliest (when, seq) first.
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  static bool EntryBefore(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  static uint64_t MakeId(uint32_t slot, uint32_t gen) {
    return (static_cast<uint64_t>(gen) << 32) | slot;
  }

  static int ShiftFor(SimTimeMs width) {
    int shift = 0;
    while ((SimTimeMs{1} << shift) < width) ++shift;
    return shift;
  }

  SimTimeMs Width() const { return SimTimeMs{1} << width_shift_; }
  SimTimeMs Horizon() const {
    return window_ + (static_cast<SimTimeMs>(bucket_count_) << width_shift_);
  }
  size_t BucketIndex(SimTimeMs when) const {
    return static_cast<size_t>((when >> width_shift_) &
                               (bucket_count_ - 1));
  }
  bool IsStale(const Entry& e) const {
    const Node& node = pool_.at(e.slot);
    return !node.live || node.gen != e.gen;
  }

  bool BatchEmpty() const { return batch_head_ == batch_.size(); }
  void BatchPopFront() {
    if (++batch_head_ == batch_.size()) {
      batch_.clear();
      batch_head_ = 0;
    }
  }

  void FreeNode(uint32_t slot, Node& node) {
    node.cb.reset();
    node.live = false;
    ++node.gen;
    pool_.Free(slot);
  }

  int64_t LiveCount() const { return entries() - tombstones_; }

  void Insert(const Entry& e) {
    if (!BatchEmpty() && e.when < batch_.back().when) {
      // Precedes part of the already-extracted run: splice it in. Every
      // batch entry orders before the whole wheel, so this preserves the
      // batch invariant; the new event's seq is the largest so far, which
      // upper_bound places after any equal-time batch entries.
      batch_.insert(std::upper_bound(batch_.begin() +
                                         static_cast<ptrdiff_t>(batch_head_),
                                     batch_.end(), e, EntryBefore),
                    e);
    } else if (e.when < window_) {
      // Before every wheel window (the clock has not caught up with the
      // wheel cursor) but at-or-after the batch tail: extend the run.
      batch_.push_back(e);
    } else if (e.when >= Horizon()) {
      overflow_.push(e);
    } else {
      buckets_[BucketIndex(e.when)].push_back(e);
      ++wheel_entries_;
    }
  }

  /// Ensures batch_ is non-empty, walking the wheel cursor forward (and
  /// migrating overflow entries as the horizon advances). Returns false
  /// when no live entries remain anywhere.
  bool Refill() {
    while (BatchEmpty()) {
      if (wheel_entries_ == 0) {
        if (overflow_.empty()) return false;
        // Fast-forward the wheel straight to the earliest overflow event
        // instead of stepping through empty buckets.
        window_ = overflow_.top().when & ~(Width() - 1);
        Migrate();
        continue;
      }
      std::vector<Entry>& bucket = buckets_[BucketIndex(window_)];
      if (bucket.empty()) {
        window_ += Width();
        Migrate();
        continue;
      }
      // Extract the earliest tie group. Bucket order is append order, so
      // equal-time entries come out in ascending seq — FIFO for free.
      // Tombstones ride along deliberately: checking staleness here would
      // dereference the pool node for every entry (a cold cache line per
      // event); PopNext already skips stale batch entries while touching
      // the same line it needs for the callback anyway.
      SimTimeMs min_when = bucket[0].when;
      for (const Entry& e : bucket) min_when = std::min(min_when, e.when);
      size_t w = 0;
      for (size_t r = 0; r < bucket.size(); ++r) {
        if (bucket[r].when == min_when) {
#if defined(__GNUC__) || defined(__clang__)
          // PopNext touches the pool node (staleness + callback) right
          // after this; start pulling the line now so the pop doesn't
          // stall on a cold miss at large populations.
          __builtin_prefetch(&pool_.at(bucket[r].slot));
#endif
          batch_.push_back(bucket[r]);
          --wheel_entries_;
        } else {
          bucket[w++] = bucket[r];
        }
      }
      bucket.resize(w);
    }
    return true;
  }

  /// Moves overflow entries now inside the horizon into their buckets.
  /// The heap pops in (when, seq) order, so equal-time entries land in a
  /// bucket in seq order ahead of any later direct appends.
  void Migrate() {
    const SimTimeMs horizon = Horizon();
    while (!overflow_.empty() && overflow_.top().when < horizon) {
      const Entry e = overflow_.top();
      overflow_.pop();
      if (IsStale(e)) {
        --tombstones_;
        continue;
      }
      buckets_[BucketIndex(e.when)].push_back(e);
      ++wheel_entries_;
      ++stats_->overflow_migrations;
    }
  }

  /// Grows the wheel (and re-derives the bucket width from the live event
  /// span) once average occupancy passes 2 events/bucket, keeping
  /// schedule/pop O(1) amortized as the population grows.
  void MaybeResize() {
    if (bucket_count_ >= kMaxBucketCount) return;
    if (LiveCount() <= 2 * static_cast<int64_t>(bucket_count_)) return;

    std::vector<Entry> all;
    all.reserve(static_cast<size_t>(wheel_entries_) + overflow_.size());
    for (std::vector<Entry>& bucket : buckets_) {
      for (const Entry& e : bucket) {
        if (IsStale(e)) {
          --tombstones_;
          ++stats_->tombstones_purged;
        } else {
          all.push_back(e);
        }
      }
      bucket.clear();
    }
    while (!overflow_.empty()) {
      const Entry e = overflow_.top();
      overflow_.pop();
      if (IsStale(e)) {
        --tombstones_;
        ++stats_->tombstones_purged;
      } else {
        all.push_back(e);
      }
    }
    wheel_entries_ = 0;
    if (all.empty()) return;

    // Sort up front: the width estimate below needs quantiles, and the
    // redistribution needs (when, seq) order so each bucket's equal-time
    // runs stay seq-sorted.
    std::sort(all.begin(), all.end(), EntryBefore);
    const int64_t n = static_cast<int64_t>(all.size());
    const SimTimeMs min_when = all.front().when;
    // Width ~ quantile-span/n targets one event per bucket across the bulk
    // of the live population. Using the full span here is the classic
    // calendar-queue skew trap: one far-future outlier (a timeout, a spot
    // lifetime) would inflate the width until every near-term event lands
    // in a single bucket and pops degrade to O(n). Events beyond the
    // quantile simply wait in the overflow heap and migrate in later.
    const size_t q_idx = static_cast<size_t>((3 * n) / 4);
    const SimTimeMs q_when = all[std::min(q_idx, all.size() - 1)].when;
    const int64_t q_n = std::max<int64_t>(static_cast<int64_t>(q_idx), 1);
    const SimTimeMs span = q_when - min_when + 1;
    SimTimeMs width = 1;
    while (width < span / q_n && width < kMaxBucketWidthMs) width <<= 1;
    width_shift_ = ShiftFor(width);
    bucket_count_ = static_cast<int>(
        std::min<int64_t>(RoundUpPow2(2 * n), kMaxBucketCount));
    buckets_.assign(static_cast<size_t>(bucket_count_), {});
    window_ = min_when & ~(Width() - 1);
    const SimTimeMs horizon = Horizon();
    for (Entry& e : all) {
      if (e.when >= horizon) {
        overflow_.push(e);
      } else {
        buckets_[BucketIndex(e.when)].push_back(e);
        ++wheel_entries_;
      }
    }
    ++stats_->calendar_resizes;
  }

  /// Bulk tombstone sweep, triggered from Cancel once stale entries exceed
  /// both the configured floor and 2x the live population.
  void MaybeCompact() {
    if (tombstones_ <= options_.min_compaction_tombstones ||
        tombstones_ <= 2 * LiveCount()) {
      return;
    }
    for (std::vector<Entry>& bucket : buckets_) {
      size_t w = 0;
      for (size_t r = 0; r < bucket.size(); ++r) {
        if (IsStale(bucket[r])) {
          --wheel_entries_;
          ++stats_->tombstones_purged;
        } else {
          bucket[w++] = bucket[r];
        }
      }
      bucket.resize(w);
    }
    std::vector<Entry> keep;
    keep.reserve(overflow_.size());
    while (!overflow_.empty()) {
      const Entry e = overflow_.top();
      overflow_.pop();
      if (IsStale(e)) {
        ++stats_->tombstones_purged;
      } else {
        keep.push_back(e);
      }
    }
    for (const Entry& e : keep) overflow_.push(e);
    const auto stale_batch = [this](const Entry& e) {
      if (!IsStale(e)) return false;
      ++stats_->tombstones_purged;
      return true;
    };
    batch_.erase(batch_.begin(),
                 batch_.begin() + static_cast<ptrdiff_t>(batch_head_));
    batch_head_ = 0;
    batch_.erase(std::remove_if(batch_.begin(), batch_.end(), stale_batch),
                 batch_.end());
    tombstones_ = 0;
    ++stats_->compactions;
  }

  SlabPool<Node> pool_{1024};
  std::vector<std::vector<Entry>> buckets_;
  std::priority_queue<Entry, std::vector<Entry>, EntryAfter> overflow_;
  /// Extracted front run, sorted by (when, seq), consumed from
  /// batch_head_; see class comment. A vector+cursor rather than a deque:
  /// the pop path is hot and the cursor keeps it branch-cheap and
  /// contiguous.
  std::vector<Entry> batch_;
  size_t batch_head_ = 0;
  int bucket_count_ = 0;
  int width_shift_ = 0;
  /// Start of the current bucket's window (multiple of Width()).
  SimTimeMs window_ = 0;
  int64_t wheel_entries_ = 0;
  int64_t tombstones_ = 0;
};

// ---------------------------------------------------------------------------
// Simulation facade: clock, sequence numbers, live/executed accounting.
// ---------------------------------------------------------------------------

Simulation::Simulation() : Simulation(SimOptions{}) {}

Simulation::Simulation(const SimOptions& options) : options_(options) {
  if (options_.scheduler == SimScheduler::kBinaryHeap) {
    queue_ = std::make_unique<BinaryHeapQueue>(&stats_, options_);
  } else {
    queue_ = std::make_unique<CalendarQueue>(&stats_, options_);
  }
}

Simulation::~Simulation() = default;

uint64_t Simulation::ScheduleAt(SimTimeMs when, Callback cb) {
  CACKLE_CHECK_GE(when, now_) << "cannot schedule in the past";
  const uint64_t id = queue_->Schedule(when, next_seq_++, std::move(cb));
  ++live_events_;
  ++stats_.scheduled;
  stats_.peak_queue_entries =
      std::max(stats_.peak_queue_entries, queue_->entries());
  return id;
}

bool Simulation::Cancel(uint64_t event_id) {
  if (!queue_->Cancel(event_id)) return false;
  --live_events_;
  ++stats_.cancelled;
  return true;
}

int64_t Simulation::RunUntil(SimTimeMs until) {
  int64_t ran = 0;
  SimTimeMs when = 0;
  Callback cb;
  while (queue_->PopNext(until, &when, &cb)) {
    now_ = when;
    --live_events_;
    cb();
    cb.reset();
    ++ran;
    ++executed_;
  }
  // With no live events left, the clock owes the caller the full interval.
  // (Keyed on *live* events: lingering cancelled tombstones must not pin
  // the clock, one of the accounting guarantees regression-tested in
  // simulation_test.)
  if (until > now_ && live_events_ == 0) now_ = until;
  return ran;
}

int64_t Simulation::RunToCompletion() {
  int64_t ran = 0;
  SimTimeMs when = 0;
  Callback cb;
  while (queue_->PopNext(kMaxSimTime, &when, &cb)) {
    now_ = when;
    --live_events_;
    cb();
    cb.reset();
    ++ran;
    ++executed_;
  }
  return ran;
}

int64_t Simulation::queue_entries() const { return queue_->entries(); }

}  // namespace cackle
